(* impexn: the command-line face of the library.

   impexn eval -e "(1/0) + error \"Urk\""          exception sets
   impexn eval --engine machine -e "fib 10"        run on the machine
   impexn run prog.hs --input "ab"                 perform main :: IO
   impexn laws                                     the Section 4.5 table
   impexn encode -e "1/0 + 2"                      show the ExVal encoding
   impexn optimize -e "..." [--fixed-order]        the pipeline + report *)

open Imprecise
open Cmdliner

type engine = E_denot | E_machine | E_fixed_l2r | E_fixed_r2l | E_exval

let engine_conv =
  let parse = function
    | "denot" | "imprecise" -> Ok E_denot
    | "machine" -> Ok E_machine
    | "fixed-l2r" | "fixed" -> Ok E_fixed_l2r
    | "fixed-r2l" -> Ok E_fixed_r2l
    | "exval" -> Ok E_exval
    | s -> Error (`Msg (Printf.sprintf "unknown engine %S" s))
  in
  Arg.conv (parse, fun ppf _ -> Fmt.string ppf "<engine>")

let expr_arg =
  Arg.(
    required
    & opt (some string) None
    & info [ "e"; "expr" ] ~docv:"EXPR" ~doc:"Expression to evaluate.")

let engine_arg =
  Arg.(
    value
    & opt engine_conv E_denot
    & info [ "engine" ] ~docv:"ENGINE"
        ~doc:
          "Evaluation engine: $(b,denot) (imprecise sets), $(b,machine) \
           (stack-trimming), $(b,fixed-l2r), $(b,fixed-r2l) (precise \
           baselines), $(b,exval) (explicit encoding).")

let fuel_arg =
  Arg.(
    value
    & opt int 200_000
    & info [ "fuel" ] ~docv:"N" ~doc:"Evaluation fuel / machine steps.")

let parse_or_die src =
  try parse src
  with Parse_error msg ->
    Fmt.epr "parse error: %s@." msg;
    exit 2

let optimize_flag =
  Arg.(
    value & flag
    & info [ "O"; "optimize" ]
        ~doc:
          "Optimise with the linted imprecise pipeline before evaluating. \
           A lint rejection prints the offending pass and exits 3.")

(* Optimise a Prelude-wrapped term; a lint rejection is a hard error
   (exit 3) — the optimiser refused its own output, so nothing sound
   remains to evaluate. *)
let optimize_or_die e =
  match Pipeline.optimize Pipeline.Imprecise e with
  | e', _report -> e'
  | exception (Lint.Lint_error _ as err) ->
      Fmt.epr "%a@." Lint.pp_lint_error err;
      exit 3

let eval_cmd =
  let run engine fuel opt src =
    let e = parse_or_die src in
    let e = if opt then optimize_or_die e else e in
    (match engine with
    | E_denot ->
        let d = Denot.run_deep ~config:(Denot.with_fuel fuel) e in
        Fmt.pr "%a@." Value.pp_deep d
    | E_machine ->
        let config = { Machine.default_config with fuel = fuel * 10 } in
        let d, stats = Machine.run_deep ~config e in
        Fmt.pr "%a@.-- %a@." Value.pp_deep d Stats.pp stats
    | E_fixed_l2r ->
        Fmt.pr "%a@." Fixed.pp_outcome
          (Fixed.run_deep ~fuel Fixed.Left_to_right e)
    | E_fixed_r2l ->
        Fmt.pr "%a@." Fixed.pp_outcome
          (Fixed.run_deep ~fuel Fixed.Right_to_left e)
    | E_exval ->
        let d =
          Exval.decode_deep
            (Denot.run_deep ~config:(Denot.with_fuel fuel) (Exval.encode e))
        in
        Fmt.pr "%a@." Value.pp_deep d);
    0
  in
  Cmd.v
    (Cmd.info "eval" ~doc:"Evaluate an expression under a chosen semantics.")
    Term.(const run $ engine_arg $ fuel_arg $ optimize_flag $ expr_arg)

let set_cmd =
  let run fuel src =
    let e = parse_or_die src in
    Fmt.pr "%a@." Exn_set.pp
      (Denot.exception_set ~config:(Denot.with_fuel fuel) e);
    0
  in
  Cmd.v
    (Cmd.info "set"
       ~doc:"Print the semantic exception set S⟦e⟧ of an expression.")
    Term.(const run $ fuel_arg $ expr_arg)

let run_cmd =
  let file_arg =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"FILE" ~doc:"Program file defining main :: IO a.")
  in
  let input_arg =
    Arg.(
      value & opt string ""
      & info [ "input" ] ~docv:"STR" ~doc:"Characters for getChar.")
  in
  let machine_arg =
    Arg.(
      value & flag
      & info [ "machine" ]
          ~doc:"Perform on the abstract machine instead of the semantic LTS.")
  in
  let seed_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "seed" ] ~docv:"N"
          ~doc:
            "Oracle seed for getException's choice from the exception set \
             (semantic engine only; default: pick the smallest member).")
  in
  let run file input machine seed opt =
    let src = In_channel.with_open_text file In_channel.input_all in
    let prog =
      try parse_program src
      with Parse_error msg ->
        Fmt.epr "parse error: %s@." msg;
        exit 2
    in
    let prog = if opt then optimize_or_die prog else prog in
    if machine then begin
      let r = run_io_machine ~input prog in
      print_string r.Machine_io.output;
      Fmt.pr "@.-- %a@." Machine_io.pp_outcome r.Machine_io.outcome;
      match r.Machine_io.outcome with Machine_io.Done _ -> 0 | _ -> 1
    end
    else begin
      let oracle =
        match seed with
        | Some s -> Oracle.create ~seed:s
        | None -> Oracle.first ()
      in
      let r = run_io ~oracle ~input prog in
      print_string (Io.output_string_of r);
      Fmt.pr "@.-- %a@." Io.pp_outcome r.Io.outcome;
      match r.Io.outcome with Io.Done _ -> 0 | _ -> 1
    end
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Run a program's main under the IO semantics.")
    Term.(
      const run $ file_arg $ input_arg $ machine_arg $ seed_arg
      $ optimize_flag)

let laws_cmd =
  let run () =
    let rows = Laws.table () in
    Fmt.pr "%a" Laws.pp_table rows;
    if List.for_all Laws.matches_claim rows then begin
      Fmt.pr "all claims verified.@.";
      0
    end
    else begin
      Fmt.pr "CLAIM MISMATCH — see (!) cells.@.";
      1
    end
  in
  Cmd.v
    (Cmd.info "laws"
       ~doc:
         "Print the Section 4.5 transformation-validity table, verified \
          empirically under all three designs.")
    Term.(const run $ const ())

let encode_cmd =
  let run src =
    let e = parse_or_die src in
    Fmt.pr "%s@.@.-- code size x%.2f@."
      (to_string (Exval.encode (parse_raw src)))
      (Exval.code_blowup e);
    0
  in
  Cmd.v
    (Cmd.info "encode"
       ~doc:"Show the explicit ExVal encoding (Section 2.1) of an expression.")
    Term.(const run $ expr_arg)

let typecheck_cmd =
  let run src =
    match Imprecise.typecheck src with
    | Ok t ->
        Fmt.pr "%s@." (Infer.ty_to_string t);
        0
    | Error e ->
        Fmt.epr "type error: %a@." Infer.pp_error e;
        1
  in
  Cmd.v
    (Cmd.info "typecheck"
       ~doc:
         "Infer the Hindley-Milner type of an expression under the           Prelude.")
    Term.(const run $ expr_arg)

let optimize_cmd =
  let fixed_arg =
    Arg.(
      value & flag
      & info [ "fixed-order" ]
          ~doc:
            "Use the fixed-order pipeline (order-changing rewrites gated \
             by the effect analysis).")
  in
  let run fixed src =
    let e = parse_or_die src in
    let mode =
      if fixed then Pipeline.Fixed_order_with_effect_analysis
      else Pipeline.Imprecise
    in
    let e', report = Pipeline.optimize mode e in
    Fmt.pr "%s@.@.-- %a@." (to_string e') Pipeline.pp_report report;
    0
  in
  Cmd.v
    (Cmd.info "optimize" ~doc:"Run the optimisation pipeline and report.")
    Term.(const run $ fixed_arg $ expr_arg)

let trace_cmd =
  let file_arg =
    Arg.(
      value
      & pos 0 (some file) None
      & info [] ~docv:"FILE" ~doc:"Program file defining main :: IO a.")
  in
  let expr_opt_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "e"; "expr" ] ~docv:"EXPR"
          ~doc:"Trace a pure expression instead of a program file.")
  in
  let input_arg =
    Arg.(
      value & opt string ""
      & info [ "input" ] ~docv:"STR" ~doc:"Characters for getChar.")
  in
  let denot_arg =
    Arg.(
      value & flag
      & info [ "denot" ]
          ~doc:
            "Trace the denotational IO layer (oracle picks carry the \
             un-chosen members of the exception set) instead of the \
             machine.")
  in
  let seed_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "seed" ] ~docv:"N" ~doc:"Oracle seed (denotational layer).")
  in
  (* The uncaught exception's origin, recovered from the event stream
     (the machine that produced it lives inside the IO driver). *)
  let origin_from_trace tr e =
    List.fold_left
      (fun acc ev ->
        match ev with
        | (Obs.Ev_raise (x, o) | Obs.Ev_rethrow (x, o)) when x = e -> Some o
        | _ -> acc)
      None (Obs.events tr)
  in
  let pr_uncaught tr e =
    match origin_from_trace tr e with
    | Some o -> Fmt.pr "-- uncaught: %a (from %a)@." Exn.pp e Obs.pp_origin o
    | None -> Fmt.pr "-- uncaught: %a@." Exn.pp e
  in
  let run file expr input denot seed =
    let tr = Obs.create ~capacity:4096 ~on:true () in
    let print_events () =
      Fmt.pr "== flight recorder: %d event(s) ==@." (Obs.seen tr);
      List.iteri
        (fun i ev -> Fmt.pr "%4d  %a@." i Obs.pp_event ev)
        (Obs.events tr)
    in
    match (expr, file) with
    | None, None ->
        Fmt.epr "trace: provide FILE or --expr EXPR@.";
        2
    | Some src, _ ->
        (* Pure expression on the machine, under a catch mark. The
           denotational set is computed first so the un-chosen members
           carry their own raise-site origins. *)
        let e = parse_or_die src in
        let dset = Denot.exception_set e in
        let m = Machine.create ~trace:tr () in
        let a = Machine.alloc m e in
        let r = Machine.force_catch m a in
        print_events ();
        (match r with
        | Ok _ -> Fmt.pr "-- value: %a@." Value.pp_deep (Machine.deep m a)
        | Error (Machine.Fail_exn x) | Error (Machine.Fail_async x) ->
            Fmt.pr "-- caught: %a@." (Machine.pp_exn_with_origin m) x;
            Fmt.pr "-- denotational set: %a@."
              (Exn_set.pp_annotated Value.pp_exn_with_origin)
              dset
        | Error Machine.Fail_diverged -> Fmt.pr "-- diverged@.");
        0
    | None, Some f ->
        let src = In_channel.with_open_text f In_channel.input_all in
        let prog =
          try parse_program src
          with Parse_error msg ->
            Fmt.epr "parse error: %s@." msg;
            exit 2
        in
        if denot then begin
          let oracle =
            match seed with
            | Some s -> Oracle.create ~seed:s
            | None -> Oracle.first ()
          in
          let r = run_io ~oracle ~trace:tr ~input prog in
          print_events ();
          Fmt.pr "-- output: %S@." (Io.output_string_of r);
          (match r.Io.outcome with
          | Io.Uncaught x ->
              Fmt.pr "-- uncaught: %a@." Value.pp_exn_with_origin x
          | o -> Fmt.pr "-- %a@." Io.pp_outcome o);
          match r.Io.outcome with Io.Done _ -> 0 | _ -> 1
        end
        else begin
          let r = run_io_machine ~trace:tr ~input prog in
          print_events ();
          Fmt.pr "-- output: %S@." r.Machine_io.output;
          (match r.Machine_io.outcome with
          | Machine_io.Uncaught x -> pr_uncaught tr x
          | o -> Fmt.pr "-- %a@." Machine_io.pp_outcome o);
          match r.Machine_io.outcome with Machine_io.Done _ -> 0 | _ -> 1
        end
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:
         "Run with the flight recorder on and print the provenance-\
          annotated event log: every raise with its origin (site label, \
          stack depth, step), poisoned and paused thunks, catches, \
          oracle picks, mask transitions, bracket acquire/release, GC.")
    Term.(
      const run $ file_arg $ expr_opt_arg $ input_arg $ denot_arg
      $ seed_arg)

let fuzz_cmd =
  let run runs seconds seed minimize smoke corpus_dir crash_dir persist
      inject quiet =
    let vconfig =
      List.fold_left
        (fun v name ->
          match Fuzz.inject_bug name v with
          | Ok v -> v
          | Error msg ->
              Fmt.epr "%s@." msg;
              exit 2)
        Differ.default_vconfig inject
    in
    let cfg =
      {
        Fuzz.default_config with
        Fuzz.seed;
        runs;
        seconds;
        corpus_dir = Some corpus_dir;
        crash_dir = Some crash_dir;
        persist;
        vconfig;
        log = (if quiet then ignore else fun s -> Fmt.epr "%s@." s);
      }
    in
    match minimize with
    | Some file -> (
        match Fuzz.minimize_file cfg file with
        | Error msg ->
            Fmt.epr "%s@." msg;
            2
        | Ok None ->
            Fmt.pr "%s: no violation@." file;
            0
        | Ok (Some c) ->
            Fmt.pr "%s: %s@.%s@.minimised to %d nodes:@.%s@." file
              c.Fuzz.check c.Fuzz.detail c.Fuzz.minimized_size
              (Pretty.expr_to_string c.Fuzz.minimized);
            Option.iter (Fmt.pr "%s@.") c.Fuzz.dump;
            1)
    | None ->
        let cfg =
          if smoke then
            { cfg with Fuzz.runs = 400; seconds = None; persist = false }
          else cfg
        in
        let report = Fuzz.run cfg in
        Fmt.pr "%a" Fuzz.pp_report report;
        if inject = [] then if Fuzz.passed report then 0 else 1
        else if Fuzz.passed report then begin
          (* A campaign with a deliberately-broken evaluator must fail;
             passing means the fuzzer has lost its teeth. *)
          Fmt.epr
            "injected bug%s (%s) was NOT caught@."
            (if List.length inject = 1 then "" else "s")
            (String.concat ", " inject);
          1
        end
        else begin
          Fmt.pr "injected bug caught as expected.@.";
          0
        end
  in
  let runs_arg =
    Arg.(
      value & opt int 500
      & info [ "runs" ] ~docv:"N"
          ~doc:"Total executions (corpus replay + exploration).")
  in
  let seconds_arg =
    Arg.(
      value
      & opt (some float) None
      & info [ "seconds" ] ~docv:"S"
          ~doc:"Wall-clock budget in seconds (overrides $(b,--runs)).")
  in
  let seed_arg =
    Arg.(
      value & opt int 42
      & info [ "seed" ] ~docv:"SEED"
          ~doc:"Campaign seed; same seed, same campaign.")
  in
  let minimize_arg =
    Arg.(
      value
      & opt (some file) None
      & info [ "minimize" ] ~docv:"FILE"
          ~doc:
            "Replay one $(b,.impexn) file and greedily minimise any \
             violation it triggers.")
  in
  let smoke_arg =
    Arg.(
      value & flag
      & info [ "smoke" ]
          ~doc:
            "CI mode: deterministically replay the committed corpus plus \
             a short exploration burst (400 runs), never persisting.")
  in
  let corpus_arg =
    Arg.(
      value & opt string "fuzz/corpus"
      & info [ "corpus" ] ~docv:"DIR" ~doc:"Corpus directory.")
  in
  let crashes_arg =
    Arg.(
      value & opt string "fuzz/crashes"
      & info [ "crashes" ] ~docv:"DIR"
          ~doc:"Where minimised counterexamples and dumps are written.")
  in
  let persist_arg =
    Arg.(
      value & flag
      & info [ "persist" ]
          ~doc:"Write inputs that found new coverage back to the corpus.")
  in
  let inject_arg =
    Arg.(
      value
      & opt_all string []
      & info [ "inject-bug" ] ~docv:"BUG"
          ~doc:
            "Reintroduce a known bug ($(b,no-poison), $(b,no-app-union), \
             $(b,no-case-finding)) and demand the campaign catches it: \
             exit 0 iff it fails.")
  in
  let quiet_arg =
    Arg.(value & flag & info [ "quiet" ] ~doc:"No progress lines.")
  in
  Cmd.v
    (Cmd.info "fuzz"
       ~doc:
         "Coverage-guided metamorphic differential fuzzing across all six \
          evaluators (denotational, slot machine, reference machine, fixed \
          orders) and the four IO layers, with flight-recorder event-kind \
          coverage, transformation-law oracles, fault schedules, corpus \
          persistence and crash minimisation.")
    Term.(
      const run $ runs_arg $ seconds_arg $ seed_arg $ minimize_arg
      $ smoke_arg $ corpus_arg $ crashes_arg $ persist_arg $ inject_arg
      $ quiet_arg)

let faults_cmd =
  let run count kills quiet =
    (* Phase 1: the general fault suite (baselines, [count] seeded
       schedules over every applicable layer, the supervisor
       scenario). *)
    let report = Faultinject.run_suite ~count () in
    if not quiet then Fmt.pr "%a@." Faultinject.pp_report report;
    (* Phase 2: the throwTo/killThread axis specifically — keep
       generating seeded schedules until [kills] of them carry
       thread-targeted exceptions, and check every concurrent layer.
       Violations come back with a flight-recorder dump of an
       instrumented replay, so a failing schedule is diagnosable from
       the CI log alone. *)
    let conc_templates =
      List.filter (fun t -> t.Faultinject.conc_only) Faultinject.templates
    in
    let scheduled = ref 0 and checks = ref 0 and violations = ref [] in
    let seed = ref 0 in
    while !scheduled < kills && !seed < 100 * (max kills 1) do
      List.iter
        (fun t ->
          if !scheduled < kills then
            let f = Faultinject.gen_fault ~seed:!seed t in
            if f.Faultinject.kills <> [] then begin
              incr scheduled;
              List.iter
                (fun layer ->
                  let n, vs = Faultinject.check_one t f layer in
                  checks := !checks + n;
                  violations := !violations @ vs)
                (Faultinject.layers_for t)
            end)
        conc_templates;
      incr seed
    done;
    if not quiet then
      Fmt.pr "kill schedules: %d executed, %d checks@." !scheduled !checks;
    match (report.Faultinject.violations, !violations) with
    | [], [] ->
        if not quiet then Fmt.pr "all fault-injection invariants hold@.";
        0
    | suite_vs, kill_vs ->
        List.iter (Fmt.epr "violation: %s@.") suite_vs;
        List.iter (Fmt.epr "kill-schedule violation: %s@.") kill_vs;
        1
  in
  let count_arg =
    Arg.(
      value & opt int 250
      & info [ "count" ] ~docv:"N"
          ~doc:"Seeded fault schedules for the general suite.")
  in
  let kills_arg =
    Arg.(
      value & opt int 100
      & info [ "kills" ] ~docv:"N"
          ~doc:
            "Seeded schedules that must carry thread-targeted \
             throwTo/killThread exceptions, each run on every concurrent \
             layer.")
  in
  let quiet_arg =
    Arg.(value & flag & info [ "quiet" ] ~doc:"Only report violations.")
  in
  Cmd.v
    (Cmd.info "faults"
       ~doc:
         "Cross-layer fault injection: seeded schedules of asynchronous \
          events, thread-targeted kills, resource ceilings, starved fuel \
          and truncated input, checked against the exception-safety \
          invariants on all four IO layers. Exits nonzero on any \
          violation, with a flight-recorder replay of the failing \
          schedule.")
    Term.(const run $ count_arg $ kills_arg $ quiet_arg)

(* ------------------------------------------------------------------ *)
(* impexn serve: evaluation-as-a-service                               *)
(* ------------------------------------------------------------------ *)

let flat s = String.map (function '\n' | '\r' -> ' ' | c -> c) s

(* Single-client mode: the line protocol over stdin/stdout. Each input
   line is fed to the session and the engine then runs to quiescence —
   with one client there is nobody to interleave with, but evaluation is
   still sliced, so wall-clock timeouts and the crash barrier behave
   exactly as in socket mode. *)
let serve_stdio engine =
  let sess = Serve.session engine in
  let flush () =
    List.iter print_endline (Serve.drain sess);
    flush stdout
  in
  (try
     while not (Serve.closed sess) do
       let line = input_line stdin in
       Serve.feed sess line;
       Serve.run_all engine;
       flush ()
     done
   with End_of_file ->
     Serve.run_all engine;
     flush ());
  0

(* Multi-client mode: a select loop on 127.0.0.1. Between IO rounds the
   engine advances a bounded burst of slices, so one client's divergent
   program cannot starve another's [ping] — the scheduling quantum is
   the engine's slice, not the request. *)
let serve_tcp engine port =
  let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt sock Unix.SO_REUSEADDR true;
  Unix.bind sock (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
  Unix.listen sock 64;
  Fmt.epr "impexn serve: listening on 127.0.0.1:%d@." port;
  (* fd, session, partial-line buffer *)
  let conns : (Unix.file_descr * Serve.session * Buffer.t) list ref =
    ref []
  in
  let drop fd =
    (try Unix.close fd with Unix.Unix_error _ -> ());
    conns := List.filter (fun (fd', _, _) -> fd' <> fd) !conns
  in
  let feed_chunk sess buf bytes n =
    for i = 0 to n - 1 do
      let c = Bytes.get bytes i in
      if c = '\n' then begin
        Serve.feed sess (Buffer.contents buf);
        Buffer.clear buf
      end
      else if c <> '\r' then Buffer.add_char buf c
    done
  in
  let write_all fd s =
    let b = Bytes.of_string (s ^ "\n") in
    let rec go off =
      if off < Bytes.length b then
        let n = Unix.write fd b off (Bytes.length b - off) in
        go (off + n)
    in
    go 0
  in
  while true do
    let timeout = if Serve.inflight engine > 0 then 0.0 else 0.2 in
    let fds = sock :: List.map (fun (fd, _, _) -> fd) !conns in
    let ready, _, _ =
      try Unix.select fds [] [] timeout
      with Unix.Unix_error (Unix.EINTR, _, _) -> ([], [], [])
    in
    if List.mem sock ready then begin
      let c, _ = Unix.accept sock in
      conns := (c, Serve.session engine, Buffer.create 256) :: !conns
    end;
    List.iter
      (fun (fd, sess, buf) ->
        if fd <> sock && List.mem fd ready then
          let bytes = Bytes.create 4096 in
          match Unix.read fd bytes 0 4096 with
          | 0 -> drop fd
          | n -> feed_chunk sess buf bytes n
          | exception Unix.Unix_error _ -> drop fd)
      (List.filter (fun (fd, _, _) -> fd <> sock) !conns);
    let rec burst n = if n > 0 && Serve.tick engine then burst (n - 1) in
    burst 64;
    List.iter
      (fun (fd, sess, _) ->
        List.iter
          (fun line ->
            try write_all fd line with Unix.Unix_error _ -> drop fd)
          (Serve.drain sess);
        if Serve.closed sess then drop fd)
      !conns
  done;
  0

(* CI self-check: replay the built-in corpus dictionary through the
   engine twice (so the compiled-program cache must hit), differentially
   check every pure reply against a one-shot evaluation, then interleave
   quota-violating, divergent and timing-out programs and demand the
   engine answers each with the right structured error — all on the one
   engine instance, which must survive the lot. *)
let smoke_serve engine =
  let sess = Serve.session engine in
  let submit id opts src =
    Serve.feed sess
      (if opts = "" then Printf.sprintf "eval %s" id
       else Printf.sprintf "eval %s %s" id opts);
    List.iter (Serve.feed sess) (String.split_on_char '\n' src);
    Serve.feed sess "."
  in
  let failures = ref 0 in
  let check what cond =
    if not cond then begin
      incr failures;
      Fmt.epr "smoke FAIL: %s@." what
    end
  in
  (* Reference: one-shot evaluation under a catch, same shape as the
     serve reply, with quotas high enough that only the program's own
     behaviour shows. *)
  let reference id e =
    let m = Machine.create () in
    let a = Machine.alloc m e in
    match Machine.force_catch m a with
    | Ok _ ->
        Printf.sprintf "ok %s %s" id
          (flat (Fmt.str "%a" Value.pp_deep (Machine.deep m a)))
    | Error (Machine.Fail_exn x) | Error (Machine.Fail_async x) ->
        Printf.sprintf "err %s exn %s" id (flat (Fmt.str "%a" Exn.pp x))
    | Error Machine.Fail_diverged ->
        Printf.sprintf "err %s quota:fuel" id
  in
  let pure =
    List.filter
      (fun e ->
        match e.Corpus.mode with
        | Corpus.M_int | Corpus.M_list | Corpus.M_any -> true
        | _ -> false)
      (Corpus.dictionary ())
  in
  (* Under [--optimize] the engine runs the linted pipeline before
     resolution, so the reference must evaluate the same optimised term —
     the smoke then differentially checks serve's optimise+compile path
     against a one-shot slot machine on the independently optimised
     corpus. *)
  let prep e =
    let w = Prelude.wrap e in
    if (Serve.config engine).Serve.optimize then
      fst (Pipeline.optimize Pipeline.Imprecise w)
    else w
  in
  let expected = Hashtbl.create 64 in
  let submit_round round =
    List.iteri
      (fun i e ->
        let id = Printf.sprintf "%s%d" round i in
        let src = Pretty.expr_to_string e.Corpus.expr in
        Hashtbl.replace expected id (reference id (prep e.Corpus.expr));
        submit id "" src)
      pure
  in
  submit_round "a";
  Serve.run_all engine;
  submit_round "b";
  Serve.run_all engine;
  let replies = Serve.drain sess in
  List.iter
    (fun reply ->
      match String.split_on_char ' ' reply with
      | _ :: id :: _ -> (
          match Hashtbl.find_opt expected id with
          | Some want ->
              check
                (Printf.sprintf "%s: got %S want %S" id reply want)
                (String.length reply >= String.length want
                && String.sub reply 0 (String.length want) = want)
          | None -> check ("unexpected reply id " ^ id) false)
      | _ -> check ("malformed reply " ^ reply) false)
    replies;
  check
    (Printf.sprintf "all %d pure replies arrive (got %d)"
       (2 * List.length pure) (List.length replies))
    (List.length replies = 2 * List.length pure);
  (* Fault mode: the four ways a request can be killed, plus a survivor
     riding along. *)
  let expect_err id opts src kind =
    submit id opts src;
    Serve.run_all engine;
    match Serve.drain sess with
    | [ reply ] ->
        let prefix = Printf.sprintf "err %s %s" id kind in
        check
          (Printf.sprintf "%s: got %S want prefix %S" id reply prefix)
          (String.length reply >= String.length prefix
          && String.sub reply 0 (String.length prefix) = prefix)
    | rs ->
        check
          (Printf.sprintf "%s: expected one reply, got %d" id
             (List.length rs))
          false
  in
  expect_err "heapbomb" "heap=2000" "length (replicate 100000 1)"
    "quota:heap";
  expect_err "stackbomb" "stack=500 fuel=5000000 heap=2000000"
    "sum (enumFromTo 1 20000)" "quota:stack";
  expect_err "fuelburn" "fuel=20000" "sum (enumFromTo 1 200000)"
    "quota:fuel";
  expect_err "blackhole" "" "let rec black = black + 1 in black"
    "quota:fuel";
  expect_err "spinner" "fuel=1000000000 timeout=200"
    "let rec go n = if n > 0 then go n else 0 in go 1" "timeout";
  submit "survivor" "" "sum (enumFromTo 1 100)";
  Serve.run_all engine;
  (match Serve.drain sess with
  | [ r ] -> check ("survivor: " ^ r) (r = "ok survivor 5050")
  | rs ->
      check
        (Printf.sprintf "survivor: %d replies" (List.length rs))
        false);
  let c = Serve.counters engine in
  check "cache hits > 0" (c.Serve.cache_hits > 0);
  check "quota_heap counted" (c.Serve.quota_heap >= 1);
  check "quota_stack counted" (c.Serve.quota_stack >= 1);
  check "quota_fuel counted" (c.Serve.quota_fuel >= 2);
  check "timeouts counted" (c.Serve.timeouts >= 1);
  check "no crashes" (c.Serve.crashes = 0);
  Fmt.pr "serve smoke: %d requests, %d ok, cache %d/%d, %s@." c.Serve.requests
    c.Serve.ok c.Serve.cache_hits
    (c.Serve.cache_hits + c.Serve.cache_misses)
    (if !failures = 0 then "all checks passed" else "CHECKS FAILED");
  Fmt.pr "%s@." (Serve.stats_json engine);
  if !failures = 0 then 0 else 1

let serve_cmd =
  let port_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "port" ] ~docv:"PORT"
          ~doc:
            "Listen on 127.0.0.1:$(docv) (multi-client). Without it the \
             protocol runs over stdin/stdout.")
  in
  let smoke_arg =
    Arg.(
      value & flag
      & info [ "smoke" ]
          ~doc:
            "CI self-check: replay the built-in corpus through the engine \
             (twice, so the compiled-program cache must hit), \
             differentially check replies against one-shot evaluation, \
             then a fault-mode round of quota violators, divergers and a \
             timing-out spinner. Exit 0 iff every check holds.")
  in
  let fuel_q =
    Arg.(
      value & opt int Serve.default_config.Serve.fuel
      & info [ "fuel" ] ~docv:"N" ~doc:"Default per-request step quota.")
  in
  let heap_q =
    Arg.(
      value & opt int Serve.default_config.Serve.heap
      & info [ "heap" ] ~docv:"N"
          ~doc:"Default per-request heap quota (cells).")
  in
  let stack_q =
    Arg.(
      value & opt int Serve.default_config.Serve.stack
      & info [ "stack" ] ~docv:"N"
          ~doc:"Default per-request stack quota (frames).")
  in
  let timeout_q =
    Arg.(
      value & opt int Serve.default_config.Serve.timeout_ms
      & info [ "timeout" ] ~docv:"MS"
          ~doc:"Default per-request wall-clock deadline (0 disables).")
  in
  let slice_q =
    Arg.(
      value & opt int Serve.default_config.Serve.slice
      & info [ "slice" ] ~docv:"N"
          ~doc:"Steps per scheduling quantum between interrupt checks.")
  in
  let inflight_q =
    Arg.(
      value & opt int Serve.default_config.Serve.max_inflight
      & info [ "max-inflight" ] ~docv:"N"
          ~doc:"Admission bound; beyond it requests answer overloaded.")
  in
  let mem_q =
    Arg.(
      value & opt int Serve.default_config.Serve.mem_budget
      & info [ "mem-budget" ] ~docv:"CELLS"
          ~doc:
            "Paused-heap budget; past it the oldest paused request is \
             evicted.")
  in
  let cache_q =
    Arg.(
      value & opt int Serve.default_config.Serve.cache_capacity
      & info [ "cache" ] ~docv:"N"
          ~doc:"Compiled-program cache capacity (LRU entries).")
  in
  let dump_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "dump-dir" ] ~docv:"DIR"
          ~doc:"Write crash-barrier flight-recorder dumps here.")
  in
  let trace_arg =
    Arg.(
      value & flag
      & info [ "trace" ]
          ~doc:"Run request machines with the flight recorder enabled.")
  in
  let backend_arg =
    Arg.(
      value
      & opt (enum [ ("slot", Serve.Slot); ("bytecode", Serve.Bytecode) ])
          Serve.default_config.Serve.backend
      & info [ "backend" ] ~docv:"BACKEND"
          ~doc:
            "Request evaluator: $(b,slot) (the tree-walking slot machine) \
             or $(b,bytecode) (the flat compiled backend — same \
             quota/timeout contract, measured multi-x faster; the \
             compiled-program cache then stores bytecode).")
  in
  let serve_opt_arg =
    Arg.(
      value & flag
      & info [ "optimize" ]
          ~doc:
            "Run the linted imprecise optimisation pipeline on every \
             submission before resolution. Optimised and unoptimised \
             submissions never share a compiled-program cache entry; a \
             lint rejection answers $(b,err ... lint) and the daemon \
             stays up.")
  in
  let run port smoke fuel heap stack timeout_ms slice max_inflight
      mem_budget cache_capacity dump_dir trace backend optimize =
    let config =
      {
        Serve.default_config with
        Serve.backend;
        Serve.fuel;
        heap;
        stack;
        timeout_ms;
        slice;
        max_inflight;
        mem_budget;
        cache_capacity;
        dump_dir;
        trace;
        optimize;
      }
    in
    let engine = Serve.create ~config () in
    if smoke then smoke_serve engine
    else
      match port with
      | Some p -> serve_tcp engine p
      | None -> serve_stdio engine
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Evaluation-as-a-service: a long-running, multi-tenant daemon \
          over a line protocol. Per-request fuel/heap/stack quotas via \
          the resource latches, wall-clock timeouts via pause-cell \
          suspension, admission control and oldest-paused eviction under \
          memory pressure, a crash barrier writing flight-recorder \
          dumps, and a compiled-program cache keyed by source hash. \
          Verbs: eval, stats, ping, quit.")
    Term.(
      const run $ port_arg $ smoke_arg $ fuel_q $ heap_q $ stack_q
      $ timeout_q $ slice_q $ inflight_q $ mem_q $ cache_q $ dump_arg
      $ trace_arg $ backend_arg $ serve_opt_arg)

let main_cmd =
  let doc = "A semantics for imprecise exceptions (PLDI 1999), executable." in
  Cmd.group
    (Cmd.info "impexn" ~version:"1.0.0" ~doc)
    [
      eval_cmd; set_cmd; run_cmd; laws_cmd; encode_cmd; optimize_cmd;
      typecheck_cmd; trace_cmd; fuzz_cmd; faults_cmd; serve_cmd;
    ]

let () = exit (Cmd.eval' main_cmd)
