(* impexn: the command-line face of the library.

   impexn eval -e "(1/0) + error \"Urk\""          exception sets
   impexn eval --engine machine -e "fib 10"        run on the machine
   impexn run prog.hs --input "ab"                 perform main :: IO
   impexn laws                                     the Section 4.5 table
   impexn encode -e "1/0 + 2"                      show the ExVal encoding
   impexn optimize -e "..." [--fixed-order]        the pipeline + report *)

open Imprecise
open Cmdliner

type engine = E_denot | E_machine | E_fixed_l2r | E_fixed_r2l | E_exval

let engine_conv =
  let parse = function
    | "denot" | "imprecise" -> Ok E_denot
    | "machine" -> Ok E_machine
    | "fixed-l2r" | "fixed" -> Ok E_fixed_l2r
    | "fixed-r2l" -> Ok E_fixed_r2l
    | "exval" -> Ok E_exval
    | s -> Error (`Msg (Printf.sprintf "unknown engine %S" s))
  in
  Arg.conv (parse, fun ppf _ -> Fmt.string ppf "<engine>")

let expr_arg =
  Arg.(
    required
    & opt (some string) None
    & info [ "e"; "expr" ] ~docv:"EXPR" ~doc:"Expression to evaluate.")

let engine_arg =
  Arg.(
    value
    & opt engine_conv E_denot
    & info [ "engine" ] ~docv:"ENGINE"
        ~doc:
          "Evaluation engine: $(b,denot) (imprecise sets), $(b,machine) \
           (stack-trimming), $(b,fixed-l2r), $(b,fixed-r2l) (precise \
           baselines), $(b,exval) (explicit encoding).")

let fuel_arg =
  Arg.(
    value
    & opt int 200_000
    & info [ "fuel" ] ~docv:"N" ~doc:"Evaluation fuel / machine steps.")

let parse_or_die src =
  try parse src
  with Parse_error msg ->
    Fmt.epr "parse error: %s@." msg;
    exit 2

let eval_cmd =
  let run engine fuel src =
    let e = parse_or_die src in
    (match engine with
    | E_denot ->
        let d = Denot.run_deep ~config:(Denot.with_fuel fuel) e in
        Fmt.pr "%a@." Value.pp_deep d
    | E_machine ->
        let config = { Machine.default_config with fuel = fuel * 10 } in
        let d, stats = Machine.run_deep ~config e in
        Fmt.pr "%a@.-- %a@." Value.pp_deep d Stats.pp stats
    | E_fixed_l2r ->
        Fmt.pr "%a@." Fixed.pp_outcome
          (Fixed.run_deep ~fuel Fixed.Left_to_right e)
    | E_fixed_r2l ->
        Fmt.pr "%a@." Fixed.pp_outcome
          (Fixed.run_deep ~fuel Fixed.Right_to_left e)
    | E_exval ->
        let d =
          Exval.decode_deep
            (Denot.run_deep ~config:(Denot.with_fuel fuel) (Exval.encode e))
        in
        Fmt.pr "%a@." Value.pp_deep d);
    0
  in
  Cmd.v
    (Cmd.info "eval" ~doc:"Evaluate an expression under a chosen semantics.")
    Term.(const run $ engine_arg $ fuel_arg $ expr_arg)

let set_cmd =
  let run fuel src =
    let e = parse_or_die src in
    Fmt.pr "%a@." Exn_set.pp
      (Denot.exception_set ~config:(Denot.with_fuel fuel) e);
    0
  in
  Cmd.v
    (Cmd.info "set"
       ~doc:"Print the semantic exception set S⟦e⟧ of an expression.")
    Term.(const run $ fuel_arg $ expr_arg)

let run_cmd =
  let file_arg =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"FILE" ~doc:"Program file defining main :: IO a.")
  in
  let input_arg =
    Arg.(
      value & opt string ""
      & info [ "input" ] ~docv:"STR" ~doc:"Characters for getChar.")
  in
  let machine_arg =
    Arg.(
      value & flag
      & info [ "machine" ]
          ~doc:"Perform on the abstract machine instead of the semantic LTS.")
  in
  let seed_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "seed" ] ~docv:"N"
          ~doc:
            "Oracle seed for getException's choice from the exception set \
             (semantic engine only; default: pick the smallest member).")
  in
  let run file input machine seed =
    let src = In_channel.with_open_text file In_channel.input_all in
    let prog =
      try parse_program src
      with Parse_error msg ->
        Fmt.epr "parse error: %s@." msg;
        exit 2
    in
    if machine then begin
      let r = run_io_machine ~input prog in
      print_string r.Machine_io.output;
      Fmt.pr "@.-- %a@." Machine_io.pp_outcome r.Machine_io.outcome;
      match r.Machine_io.outcome with Machine_io.Done _ -> 0 | _ -> 1
    end
    else begin
      let oracle =
        match seed with
        | Some s -> Oracle.create ~seed:s
        | None -> Oracle.first ()
      in
      let r = run_io ~oracle ~input prog in
      print_string (Io.output_string_of r);
      Fmt.pr "@.-- %a@." Io.pp_outcome r.Io.outcome;
      match r.Io.outcome with Io.Done _ -> 0 | _ -> 1
    end
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Run a program's main under the IO semantics.")
    Term.(const run $ file_arg $ input_arg $ machine_arg $ seed_arg)

let laws_cmd =
  let run () =
    let rows = Laws.table () in
    Fmt.pr "%a" Laws.pp_table rows;
    if List.for_all Laws.matches_claim rows then begin
      Fmt.pr "all claims verified.@.";
      0
    end
    else begin
      Fmt.pr "CLAIM MISMATCH — see (!) cells.@.";
      1
    end
  in
  Cmd.v
    (Cmd.info "laws"
       ~doc:
         "Print the Section 4.5 transformation-validity table, verified \
          empirically under all three designs.")
    Term.(const run $ const ())

let encode_cmd =
  let run src =
    let e = parse_or_die src in
    Fmt.pr "%s@.@.-- code size x%.2f@."
      (to_string (Exval.encode (parse_raw src)))
      (Exval.code_blowup e);
    0
  in
  Cmd.v
    (Cmd.info "encode"
       ~doc:"Show the explicit ExVal encoding (Section 2.1) of an expression.")
    Term.(const run $ expr_arg)

let typecheck_cmd =
  let run src =
    match Imprecise.typecheck src with
    | Ok t ->
        Fmt.pr "%s@." (Infer.ty_to_string t);
        0
    | Error e ->
        Fmt.epr "type error: %a@." Infer.pp_error e;
        1
  in
  Cmd.v
    (Cmd.info "typecheck"
       ~doc:
         "Infer the Hindley-Milner type of an expression under the           Prelude.")
    Term.(const run $ expr_arg)

let optimize_cmd =
  let fixed_arg =
    Arg.(
      value & flag
      & info [ "fixed-order" ]
          ~doc:
            "Use the fixed-order pipeline (order-changing rewrites gated \
             by the effect analysis).")
  in
  let run fixed src =
    let e = parse_or_die src in
    let mode =
      if fixed then Pipeline.Fixed_order_with_effect_analysis
      else Pipeline.Imprecise
    in
    let e', report = Pipeline.optimize mode e in
    Fmt.pr "%s@.@.-- %a@." (to_string e') Pipeline.pp_report report;
    0
  in
  Cmd.v
    (Cmd.info "optimize" ~doc:"Run the optimisation pipeline and report.")
    Term.(const run $ fixed_arg $ expr_arg)

let trace_cmd =
  let file_arg =
    Arg.(
      value
      & pos 0 (some file) None
      & info [] ~docv:"FILE" ~doc:"Program file defining main :: IO a.")
  in
  let expr_opt_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "e"; "expr" ] ~docv:"EXPR"
          ~doc:"Trace a pure expression instead of a program file.")
  in
  let input_arg =
    Arg.(
      value & opt string ""
      & info [ "input" ] ~docv:"STR" ~doc:"Characters for getChar.")
  in
  let denot_arg =
    Arg.(
      value & flag
      & info [ "denot" ]
          ~doc:
            "Trace the denotational IO layer (oracle picks carry the \
             un-chosen members of the exception set) instead of the \
             machine.")
  in
  let seed_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "seed" ] ~docv:"N" ~doc:"Oracle seed (denotational layer).")
  in
  (* The uncaught exception's origin, recovered from the event stream
     (the machine that produced it lives inside the IO driver). *)
  let origin_from_trace tr e =
    List.fold_left
      (fun acc ev ->
        match ev with
        | (Obs.Ev_raise (x, o) | Obs.Ev_rethrow (x, o)) when x = e -> Some o
        | _ -> acc)
      None (Obs.events tr)
  in
  let pr_uncaught tr e =
    match origin_from_trace tr e with
    | Some o -> Fmt.pr "-- uncaught: %a (from %a)@." Exn.pp e Obs.pp_origin o
    | None -> Fmt.pr "-- uncaught: %a@." Exn.pp e
  in
  let run file expr input denot seed =
    let tr = Obs.create ~capacity:4096 ~on:true () in
    let print_events () =
      Fmt.pr "== flight recorder: %d event(s) ==@." (Obs.seen tr);
      List.iteri
        (fun i ev -> Fmt.pr "%4d  %a@." i Obs.pp_event ev)
        (Obs.events tr)
    in
    match (expr, file) with
    | None, None ->
        Fmt.epr "trace: provide FILE or --expr EXPR@.";
        2
    | Some src, _ ->
        (* Pure expression on the machine, under a catch mark. The
           denotational set is computed first so the un-chosen members
           carry their own raise-site origins. *)
        let e = parse_or_die src in
        let dset = Denot.exception_set e in
        let m = Machine.create ~trace:tr () in
        let a = Machine.alloc m e in
        let r = Machine.force_catch m a in
        print_events ();
        (match r with
        | Ok _ -> Fmt.pr "-- value: %a@." Value.pp_deep (Machine.deep m a)
        | Error (Machine.Fail_exn x) | Error (Machine.Fail_async x) ->
            Fmt.pr "-- caught: %a@." (Machine.pp_exn_with_origin m) x;
            Fmt.pr "-- denotational set: %a@."
              (Exn_set.pp_annotated Value.pp_exn_with_origin)
              dset
        | Error Machine.Fail_diverged -> Fmt.pr "-- diverged@.");
        0
    | None, Some f ->
        let src = In_channel.with_open_text f In_channel.input_all in
        let prog =
          try parse_program src
          with Parse_error msg ->
            Fmt.epr "parse error: %s@." msg;
            exit 2
        in
        if denot then begin
          let oracle =
            match seed with
            | Some s -> Oracle.create ~seed:s
            | None -> Oracle.first ()
          in
          let r = run_io ~oracle ~trace:tr ~input prog in
          print_events ();
          Fmt.pr "-- output: %S@." (Io.output_string_of r);
          (match r.Io.outcome with
          | Io.Uncaught x ->
              Fmt.pr "-- uncaught: %a@." Value.pp_exn_with_origin x
          | o -> Fmt.pr "-- %a@." Io.pp_outcome o);
          match r.Io.outcome with Io.Done _ -> 0 | _ -> 1
        end
        else begin
          let r = run_io_machine ~trace:tr ~input prog in
          print_events ();
          Fmt.pr "-- output: %S@." r.Machine_io.output;
          (match r.Machine_io.outcome with
          | Machine_io.Uncaught x -> pr_uncaught tr x
          | o -> Fmt.pr "-- %a@." Machine_io.pp_outcome o);
          match r.Machine_io.outcome with Machine_io.Done _ -> 0 | _ -> 1
        end
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:
         "Run with the flight recorder on and print the provenance-\
          annotated event log: every raise with its origin (site label, \
          stack depth, step), poisoned and paused thunks, catches, \
          oracle picks, mask transitions, bracket acquire/release, GC.")
    Term.(
      const run $ file_arg $ expr_opt_arg $ input_arg $ denot_arg
      $ seed_arg)

let fuzz_cmd =
  let run runs seconds seed minimize smoke corpus_dir crash_dir persist
      inject quiet =
    let vconfig =
      List.fold_left
        (fun v name ->
          match Fuzz.inject_bug name v with
          | Ok v -> v
          | Error msg ->
              Fmt.epr "%s@." msg;
              exit 2)
        Differ.default_vconfig inject
    in
    let cfg =
      {
        Fuzz.default_config with
        Fuzz.seed;
        runs;
        seconds;
        corpus_dir = Some corpus_dir;
        crash_dir = Some crash_dir;
        persist;
        vconfig;
        log = (if quiet then ignore else fun s -> Fmt.epr "%s@." s);
      }
    in
    match minimize with
    | Some file -> (
        match Fuzz.minimize_file cfg file with
        | Error msg ->
            Fmt.epr "%s@." msg;
            2
        | Ok None ->
            Fmt.pr "%s: no violation@." file;
            0
        | Ok (Some c) ->
            Fmt.pr "%s: %s@.%s@.minimised to %d nodes:@.%s@." file
              c.Fuzz.check c.Fuzz.detail c.Fuzz.minimized_size
              (Pretty.expr_to_string c.Fuzz.minimized);
            Option.iter (Fmt.pr "%s@.") c.Fuzz.dump;
            1)
    | None ->
        let cfg =
          if smoke then
            { cfg with Fuzz.runs = 400; seconds = None; persist = false }
          else cfg
        in
        let report = Fuzz.run cfg in
        Fmt.pr "%a" Fuzz.pp_report report;
        if inject = [] then if Fuzz.passed report then 0 else 1
        else if Fuzz.passed report then begin
          (* A campaign with a deliberately-broken evaluator must fail;
             passing means the fuzzer has lost its teeth. *)
          Fmt.epr
            "injected bug%s (%s) was NOT caught@."
            (if List.length inject = 1 then "" else "s")
            (String.concat ", " inject);
          1
        end
        else begin
          Fmt.pr "injected bug caught as expected.@.";
          0
        end
  in
  let runs_arg =
    Arg.(
      value & opt int 500
      & info [ "runs" ] ~docv:"N"
          ~doc:"Total executions (corpus replay + exploration).")
  in
  let seconds_arg =
    Arg.(
      value
      & opt (some float) None
      & info [ "seconds" ] ~docv:"S"
          ~doc:"Wall-clock budget in seconds (overrides $(b,--runs)).")
  in
  let seed_arg =
    Arg.(
      value & opt int 42
      & info [ "seed" ] ~docv:"SEED"
          ~doc:"Campaign seed; same seed, same campaign.")
  in
  let minimize_arg =
    Arg.(
      value
      & opt (some file) None
      & info [ "minimize" ] ~docv:"FILE"
          ~doc:
            "Replay one $(b,.impexn) file and greedily minimise any \
             violation it triggers.")
  in
  let smoke_arg =
    Arg.(
      value & flag
      & info [ "smoke" ]
          ~doc:
            "CI mode: deterministically replay the committed corpus plus \
             a short exploration burst (400 runs), never persisting.")
  in
  let corpus_arg =
    Arg.(
      value & opt string "fuzz/corpus"
      & info [ "corpus" ] ~docv:"DIR" ~doc:"Corpus directory.")
  in
  let crashes_arg =
    Arg.(
      value & opt string "fuzz/crashes"
      & info [ "crashes" ] ~docv:"DIR"
          ~doc:"Where minimised counterexamples and dumps are written.")
  in
  let persist_arg =
    Arg.(
      value & flag
      & info [ "persist" ]
          ~doc:"Write inputs that found new coverage back to the corpus.")
  in
  let inject_arg =
    Arg.(
      value
      & opt_all string []
      & info [ "inject-bug" ] ~docv:"BUG"
          ~doc:
            "Reintroduce a known bug ($(b,no-poison), $(b,no-app-union), \
             $(b,no-case-finding)) and demand the campaign catches it: \
             exit 0 iff it fails.")
  in
  let quiet_arg =
    Arg.(value & flag & info [ "quiet" ] ~doc:"No progress lines.")
  in
  Cmd.v
    (Cmd.info "fuzz"
       ~doc:
         "Coverage-guided metamorphic differential fuzzing across all five \
          evaluators (denotational, slot machine, reference machine, fixed \
          orders) and the four IO layers, with flight-recorder event-kind \
          coverage, transformation-law oracles, fault schedules, corpus \
          persistence and crash minimisation.")
    Term.(
      const run $ runs_arg $ seconds_arg $ seed_arg $ minimize_arg
      $ smoke_arg $ corpus_arg $ crashes_arg $ persist_arg $ inject_arg
      $ quiet_arg)

let faults_cmd =
  let run count kills quiet =
    (* Phase 1: the general fault suite (baselines, [count] seeded
       schedules over every applicable layer, the supervisor
       scenario). *)
    let report = Faultinject.run_suite ~count () in
    if not quiet then Fmt.pr "%a@." Faultinject.pp_report report;
    (* Phase 2: the throwTo/killThread axis specifically — keep
       generating seeded schedules until [kills] of them carry
       thread-targeted exceptions, and check every concurrent layer.
       Violations come back with a flight-recorder dump of an
       instrumented replay, so a failing schedule is diagnosable from
       the CI log alone. *)
    let conc_templates =
      List.filter (fun t -> t.Faultinject.conc_only) Faultinject.templates
    in
    let scheduled = ref 0 and checks = ref 0 and violations = ref [] in
    let seed = ref 0 in
    while !scheduled < kills && !seed < 100 * (max kills 1) do
      List.iter
        (fun t ->
          if !scheduled < kills then
            let f = Faultinject.gen_fault ~seed:!seed t in
            if f.Faultinject.kills <> [] then begin
              incr scheduled;
              List.iter
                (fun layer ->
                  let n, vs = Faultinject.check_one t f layer in
                  checks := !checks + n;
                  violations := !violations @ vs)
                (Faultinject.layers_for t)
            end)
        conc_templates;
      incr seed
    done;
    if not quiet then
      Fmt.pr "kill schedules: %d executed, %d checks@." !scheduled !checks;
    match (report.Faultinject.violations, !violations) with
    | [], [] ->
        if not quiet then Fmt.pr "all fault-injection invariants hold@.";
        0
    | suite_vs, kill_vs ->
        List.iter (Fmt.epr "violation: %s@.") suite_vs;
        List.iter (Fmt.epr "kill-schedule violation: %s@.") kill_vs;
        1
  in
  let count_arg =
    Arg.(
      value & opt int 250
      & info [ "count" ] ~docv:"N"
          ~doc:"Seeded fault schedules for the general suite.")
  in
  let kills_arg =
    Arg.(
      value & opt int 100
      & info [ "kills" ] ~docv:"N"
          ~doc:
            "Seeded schedules that must carry thread-targeted \
             throwTo/killThread exceptions, each run on every concurrent \
             layer.")
  in
  let quiet_arg =
    Arg.(value & flag & info [ "quiet" ] ~doc:"Only report violations.")
  in
  Cmd.v
    (Cmd.info "faults"
       ~doc:
         "Cross-layer fault injection: seeded schedules of asynchronous \
          events, thread-targeted kills, resource ceilings, starved fuel \
          and truncated input, checked against the exception-safety \
          invariants on all four IO layers. Exits nonzero on any \
          violation, with a flight-recorder replay of the failing \
          schedule.")
    Term.(const run $ count_arg $ kills_arg $ quiet_arg)

let main_cmd =
  let doc = "A semantics for imprecise exceptions (PLDI 1999), executable." in
  Cmd.group
    (Cmd.info "impexn" ~version:"1.0.0" ~doc)
    [
      eval_cmd; set_cmd; run_cmd; laws_cmd; encode_cmd; optimize_cmd;
      typecheck_cmd; trace_cmd; fuzz_cmd; faults_cmd;
    ]

let () = exit (Cmd.eval' main_cmd)
