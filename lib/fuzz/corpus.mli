(** The fuzzer's corpus: interesting inputs, as terms.

    Entries carry a {!mode} saying which differential harness a term is
    meant for (pure int / pure list / any pure / IO / concurrent IO) and
    round-trip through [.impexn] files — surface syntax prefixed with
    [--] comment headers, so the committed corpus is both replayable and
    readable:

    {v
    -- impexn fuzz corpus
    -- mode: io
    putInt 3 >>= \u -> return 7
    v}

    The built-in {!dictionary} seeds every campaign: the paper's running
    examples, one instance of every transformation rule in
    {!Transform.Rules} (claimed-[Invalid] rules ride in with their
    witnessing instances, so the metamorphic layer's non-law witnesses
    are found deterministically), and IO/concurrency programs shaped to
    reach each flight-recorder event kind — pause/resume, bracket
    acquire/release, masking, oracle picks, forks. *)

type mode = M_int | M_list | M_any | M_io | M_conc

val mode_name : mode -> string
val mode_of_string : string -> mode option

type entry = {
  name : string;
  mode : mode;
  expr : Lang.Syntax.expr;  (** Open over the Prelude (wrap to run). *)
}

val dictionary : unit -> entry list

val to_text : entry -> string
val of_text : name:string -> string -> (entry, string) result

val save : dir:string -> entry -> unit
(** Write [dir/<name>.impexn] (creates [dir] if needed). *)

val load_dir : string -> entry list * (string * string) list
(** All [*.impexn] files under the directory (sorted), parsed; second
    component is the unparsable files with their errors. A missing
    directory is an empty corpus. *)
