(** The fuzzing campaign driver.

    A campaign is seeded and fully deterministic: one
    [Random.State] drives QCheck2 generation, mode choice and
    mutation choice, so [--seed S --runs N] replays identically.

    Structure of a run:

    + {e replay}: every corpus entry — the built-in {!Corpus.dictionary}
      plus any [*.impexn] files under [corpus_dir] — goes through the
      {!Differ} harness for its mode and (pure modes) the {!Metamorph}
      oracles. This deterministically witnesses the claimed-invalid
      rules and re-checks every previously-interesting input.
    + {e explore}: until the run/second budget is exhausted, either
      generate a fresh term ({!Gen.Gen_term} — the mode is chosen by
      weighted coin) or mutate a random corpus entry (exception-site
      grafting, rule rewriting, [mapException]/mask/bracket wrapping,
      crossover). Inputs that change the {!Coverage} signature are
      retained (and persisted when [persist] is set).
    + {e minimise}: each violation is greedily shrunk with
      {!Gen.Gen_term.shrink} under "the same check still fails" (same
      per-run seed, scratch metamorphic state), and written to
      [crash_dir] with its flight-recorder dump. One crash is kept per
      distinct check name; repeats only count.

    A campaign {e passes} when there are no crashes, no unwitnessed
    non-laws, and no unparsable corpus files. *)

type config = {
  seed : int;
  runs : int;  (** Total executions (replay + explore); used when [seconds] is [None]. *)
  seconds : float option;  (** Wall-clock budget; overrides [runs]. *)
  corpus_dir : string option;
  crash_dir : string option;
  persist : bool;  (** Write new-coverage inputs back to [corpus_dir]. *)
  vconfig : Differ.vconfig;
  max_retained : int;  (** Cap on inputs retained by coverage. *)
  log : string -> unit;  (** Progress lines (default: dropped). *)
}

val default_config : config

val inject_bug : string -> Differ.vconfig -> (Differ.vconfig, string) result
(** Map a [--inject-bug] name to the evaluator misconfiguration that
    reintroduces it: ["no-poison"] (footnote 3: abandoned thunks are not
    overwritten with [raise ex]), ["no-app-union"] (Section 4.2's
    rejected application rule), ["no-case-finding"] (Section 4.3's
    rejected case rule). The campaign is then expected to {e fail}. *)

val bug_names : string list

type crash = {
  entry : Corpus.entry;  (** The input that first tripped the check. *)
  check : string;
  detail : string;
  minimized : Lang.Syntax.expr;
  minimized_size : int;  (** AST nodes in the minimised witness. *)
  occurrences : int;  (** How many inputs tripped this check in total. *)
  dump : string option;  (** Flight-recorder dump from the first trip. *)
}

type report = {
  total_runs : int;
  replayed : int;
  generated : int;
  mutated : int;
  retained : int;  (** Inputs kept for new coverage. *)
  crashes : crash list;
  coverage : Coverage.t;
  meta : Metamorph.state;
  corpus_errors : (string * string) list;
  elapsed : float;  (** CPU seconds. *)
}

val passed : report -> bool
val pp_report : report Fmt.t

val run : config -> report

val minimize_file : config -> string -> (crash option, string) result
(** Replay one [.impexn] file through its mode's harness; on a
    violation, minimise and return the crash ([Ok None] if it passes). *)
