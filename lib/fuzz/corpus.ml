open Lang.Syntax
module B = Lang.Builder

type mode = M_int | M_list | M_any | M_io | M_conc

let mode_name = function
  | M_int -> "int"
  | M_list -> "list"
  | M_any -> "any"
  | M_io -> "io"
  | M_conc -> "conc"

let mode_of_string = function
  | "int" -> Some M_int
  | "list" -> Some M_list
  | "any" -> Some M_any
  | "io" -> Some M_io
  | "conc" -> Some M_conc
  | _ -> None

type entry = { name : string; mode : mode; expr : expr }

(* ------------------------------------------------------------------ *)
(* The built-in dictionary                                             *)
(* ------------------------------------------------------------------ *)

let put_int e = App (Var "putInt", e)
let sum_to n = B.apps (B.var "sum") [ B.apps (B.var "enumFromTo") [ B.int 1; B.int n ] ]

(* getException e >>= \r -> case r of { OK v -> return v; Bad _ -> return d } *)
let recover ?(default = 0) e =
  B.io_bind (B.get_exception e)
    (B.lam "r"
       (B.case (B.var "r")
          [
            (B.pcon "OK" [ "v" ], B.io_return (B.var "v"));
            (B.pcon "Bad" [ "_e" ], B.io_return (B.int default));
          ]))

let pure_seeds =
  [
    ("div-plus-error", M_int, B.div_zero_plus_error);
    ("shared-poison", M_int, Let ("x", B.(int 1 / int 0), B.(var "x" + var "x")));
    ("black-hole", M_int, B.black);
    ( "map-exception",
      M_int,
      B.map_exception
        (B.lam "e" (B.exn_con Lang.Exn.Overflow))
        B.(int 1 / int 0 + B.error "u") );
    ( "case-exceptional-scrutinee",
      M_int,
      B.case
        (B.pair B.(int 1 / int 0) (B.int 2))
        [ (B.pcon "Pair" [ "a"; "b" ], B.var "b") ] );
    ("seq-error", M_int, B.seq (B.error "s") (B.int 5));
    ("overflow", M_int, B.(int 65536 * int 65536 * int 65536));
    ("prelude-sum", M_int, sum_to 20);
    ("head-nil", M_int, B.app (B.var "head") B.nil);
    ( "shared-exceptional-list",
      M_list,
      Let ("x", B.(int 1 / int 0), B.cons (B.var "x") (B.cons (B.var "x") B.nil))
    );
  ]

let rule_seeds () =
  List.concat_map
    (fun (r : Transform.Rules.rule) ->
      List.mapi
        (fun i inst ->
          ( Printf.sprintf "rule-%s-%d" r.Transform.Rules.name i,
            M_any,
            inst ))
        r.Transform.Rules.instances)
    Transform.Rules.all

let io_seeds =
  [
    (* A shared thunk caught twice: an async event delivered during the
       first force leaves pause cells, the second force resumes them. *)
    ( "io-pause-resume",
      M_io,
      Let
        ( "x",
          sum_to 60,
          B.io_bind
            (B.get_exception (B.var "x"))
            (B.lam "r"
               (B.io_bind
                  (B.get_exception (B.var "x"))
                  (B.lam "s" (B.io_return (B.int 0))))) ) );
    ( "io-bracket-exn",
      M_io,
      B.io_bracket (B.io_return (B.int 1))
        (B.lam "r" (put_int (B.int 9)))
        (B.lam "r"
           (B.io_bind (put_int (B.int 3))
              (B.lam "u" (B.io_return B.(int 1 / int 0))))) );
    ( "io-mask",
      M_io,
      B.io_mask (B.io_bind (put_int (B.int 5)) (B.lam "u" (B.io_return (B.int 2))))
    );
    ( "io-timeout",
      M_io,
      B.io_timeout (B.int 1)
        (B.io_bind (put_int (B.int 1))
           (B.lam "u"
              (B.io_bind (put_int (B.int 2)) (B.lam "w" (B.io_return (B.int 0))))))
    );
    ( "io-on-exception",
      M_io,
      B.io_on_exception
        (B.io_bind (put_int (B.int 3)) (B.lam "u" (B.io_return B.(int 1 / int 0))))
        (put_int (B.int 8)) );
    ("io-oracle-pick", M_io, recover B.div_zero_plus_error);
    ("io-getexn-blackhole", M_io, recover ~default:7 B.black);
  ]

let conc_seeds =
  [
    ( "conc-handoff",
      M_conc,
      B.io_bind
        (Con ("NewMVar", []))
        (B.lam "r"
           (B.io_bind
              (Con ("Fork", [ Con ("PutMVar", [ Var "r"; B.int 7 ]) ]))
              (B.lam "u"
                 (B.io_bind
                    (Con ("TakeMVar", [ Var "r" ]))
                    (B.lam "v" (put_int (B.var "v"))))))) );
    ( "conc-fork-exceptional",
      M_conc,
      B.io_bind
        (Con ("Fork", [ B.io_return B.(int 3 / int 0) ]))
        (B.lam "u"
           (B.io_bind (put_int (B.int 4)) (B.lam "w" (B.io_return (B.int 1)))))
    );
    ( "conc-two-forks",
      M_conc,
      B.io_bind
        (Con ("Fork", [ put_int (B.int 1) ]))
        (B.lam "u"
           (B.io_bind
              (Con ("Fork", [ put_int (B.int 2) ]))
              (B.lam "w" (B.io_return (B.int 0))))) );
    ( "conc-self-throw",
      (* A self-send is synchronous on both layers: caught as Bad. *)
      M_conc,
      B.io_bind
        (B.get_exception
           (B.io_bind
              (Con ("MyThreadId", []))
              (B.lam "t"
                 (B.io_bind
                    (Con ("ThrowTo", [ Var "t"; Con ("ThreadKilled", []) ]))
                    (B.lam "u" (B.io_return (B.int 1)))))))
        (B.lam "r"
           (B.case (Var "r")
              [
                (B.pcon "OK" [ "x" ], put_int (B.var "x"));
                (B.pcon "Bad" [ "e" ], put_int (B.int 0));
              ])) );
    ( "conc-kill-finished",
      (* Kill a child that already finished: silently dropped. *)
      M_conc,
      B.io_bind
        (Con ("Fork", [ put_int (B.int 2) ]))
        (B.lam "t"
           (B.io_bind
              (Con ("ThrowTo", [ Var "t"; Con ("ThreadKilled", []) ]))
              (B.lam "u" (put_int (B.int 6))))) );
  ]

let dictionary () =
  List.map
    (fun (name, mode, expr) -> { name; mode; expr })
    (pure_seeds @ rule_seeds () @ io_seeds @ conc_seeds)

(* ------------------------------------------------------------------ *)
(* File format                                                         *)
(* ------------------------------------------------------------------ *)

let to_text e =
  Printf.sprintf "-- impexn fuzz corpus\n-- mode: %s\n%s\n" (mode_name e.mode)
    (Lang.Pretty.expr_to_string e.expr)

let header_mode text =
  let lines = String.split_on_char '\n' text in
  List.fold_left
    (fun acc line ->
      match acc with
      | Some _ -> acc
      | None ->
          let line = String.trim line in
          if String.length line > 2 && String.sub line 0 2 = "--" then
            let rest = String.trim (String.sub line 2 (String.length line - 2)) in
            if String.length rest > 5 && String.sub rest 0 5 = "mode:" then
              mode_of_string
                (String.trim (String.sub rest 5 (String.length rest - 5)))
            else None
          else None)
    None lines

let of_text ~name text =
  let mode = Option.value ~default:M_any (header_mode text) in
  match Lang.Parser.parse_expr text with
  | expr -> Ok { name; mode; expr }
  | exception Lang.Parser.Error (msg, line, col) ->
      Error (Printf.sprintf "%d:%d: %s" line col msg)

let rec mkdirs dir =
  if not (Sys.file_exists dir) then begin
    let parent = Filename.dirname dir in
    if String.length parent < String.length dir then mkdirs parent;
    Sys.mkdir dir 0o755
  end

let save ~dir e =
  mkdirs dir;
  let path = Filename.concat dir (e.name ^ ".impexn") in
  let oc = open_out path in
  output_string oc (to_text e);
  close_out oc

let load_dir dir =
  if not (Sys.file_exists dir && Sys.is_directory dir) then ([], [])
  else
    let files =
      Sys.readdir dir |> Array.to_list
      |> List.filter (fun f -> Filename.check_suffix f ".impexn")
      |> List.sort String.compare
    in
    List.fold_left
      (fun (oks, errs) f ->
        let path = Filename.concat dir f in
        let ic = open_in_bin path in
        let len = in_channel_length ic in
        let text = really_input_string ic len in
        close_in ic;
        match of_text ~name:(Filename.chop_suffix f ".impexn") text with
        | Ok e -> (e :: oks, errs)
        | Error msg -> (oks, (f, msg) :: errs))
      ([], []) files
    |> fun (oks, errs) -> (List.rev oks, List.rev errs)
