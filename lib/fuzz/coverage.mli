(** The fuzzer's coverage signal.

    Two complementary maps, both fed by artefacts the machinery already
    produces (no extra instrumentation in the layers themselves):

    - the {e event-kind bitmap}: which of the {!Obs.event} constructors
      have ever been recorded by any run — raise, rethrow, catch, poison,
      pause, resume, mask push/pop, async delivery, gc, bracket
      acquire/release, oracle pick, throwTo, kill delivery, blocked
      recovery, other IO, lint failure. 18 kinds; a campaign exercising
      all the machinery hits the 17 non-failure kinds (lint-fail is a
      failure kind and is excluded from {!kind_coverage}).
    - {e stats buckets}: each {!Machine.Stats} counter (and the IO-layer
      {!Semantics.Iosem.counters}) quantised to a power-of-two bucket.
      An input that drives a counter into a bucket never seen before
      (first collection, first poisoned thunk, ten-times-deeper stack)
      counts as new coverage even when it records no new event kind.

    An input is {e interesting} — retained in the corpus — when running
    it changes either map. *)

type t

val create : unit -> t

val n_kinds : int
(** Number of {!Obs.event} constructors (18). *)

val kind_name : int -> string

val note_event : t -> Obs.event -> unit

val note_events : t -> Obs.event list -> unit

val note_counter : t -> string -> int -> unit
(** Record counter [name] at this value's power-of-two bucket. *)

val note_stats : t -> Machine.Stats.t -> unit

val note_io_counters : t -> Semantics.Iosem.counters -> unit

val signature : t -> int * int
(** [(kinds hit, stats buckets seen)] — compare before/after a run to
    decide whether the input found new coverage. *)

val kinds_hit : t -> int

val kind_coverage : t -> float
(** Fraction of non-failure event kinds hit, in [0,1]. *)

val missing_kinds : t -> string list
(** Non-failure kinds never recorded. *)

val kind_counts : t -> (string * int) list
(** Events recorded per kind, for the campaign report. *)

val buckets_seen : t -> int

val pp : t Fmt.t
