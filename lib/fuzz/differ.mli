(** The differential driver: one term, every evaluator, one verdict.

    Pure terms run through all six engines — the imprecise denotational
    semantics (the reference), the slot-compiled machine {!Machine.Stg},
    the name-based machine {!Machine.Stg_ref}, the flat bytecode backend
    {!Machine.Bytecode}, and the precise fixed-order evaluator under
    both orders — and the results are cross-checked:

    - every implementation result {e implements} the denotation (C13,
      via {!Semantics.Refine.implements_deep});
    - the three machines agree exactly (same representative member);
    - the machine agrees with fixed-order left-to-right (both are
      deterministic left-to-right call-by-need evaluators).

    IO and concurrent programs run through the four IO layers with a
    shared flight recorder, under a clean schedule (strict cross-layer
    agreement, [Oracle.first]), a GC-every-3-transitions schedule
    (collections must be transparent), and a seeded asynchronous
    schedule (invariants only: termination classes and bracket balance —
    delivery timing is layer-relative, so exact agreement is not owed).
    Programs containing [WithTimeout]/[Retry] are {e timing-sensitive}:
    the layers count ticks differently, so only the invariant checks
    apply to them.

    Machine fuel-exhaustion and denotational fuel differ, so any side
    whose result contains [DBad All] (bottom) is exempt from exact
    agreement — the {e implements} direction still applies.

    When [optimize_variants] is on (the default), pure terms are
    additionally optimised by the linted imprecise pipeline and re-run
    through all six engines against the optimised denotation; a
    {!Transform.Lint.Lint_error} is reported as an ["optimizer-lint"]
    violation.

    All runs feed the optional {!Coverage} accumulator with recorded
    events and stats; on any violation the shared recorder's crash dump
    rides along in the result. *)

type vconfig = {
  denot_fuel : int;
  machine_fuel : int;
  fixed_fuel : int;
  depth : int;  (** Deep-forcing depth for result comparison. *)
  io_max_steps : int;  (** IO transition budget, every layer. *)
  poison_thunks : bool;
      (** Bug-injection toggle: [false] reintroduces the footnote-3
          poison-replay bug in both machines. *)
  app_union : bool;  (** Bug-injection: the rejected Section 4.2 design. *)
  case_finding : bool;  (** Bug-injection: the rejected Section 4.3 design. *)
  optimize_variants : bool;
      (** Also run every pure evaluator on the imprecise pipeline's
          output (linted, {!Transform.Pipeline.optimize}): the optimised
          denotation may only gain information, every implementation
          must implement it, and the machines must keep agreeing. *)
  break_pass : string option;
      (** Bug-injection: thread a {!Transform.Pipeline.ablations} name
          into the pipeline — the linter must catch it (flagged as
          ["optimizer-lint"] rather than crashing the campaign). *)
}

val default_vconfig : vconfig

type violation = { check : string; detail : string }

val pp_violation : violation Fmt.t

type result = {
  violations : violation list;
  dump : string option;
      (** Flight-recorder dump of the run, present iff violations. *)
}

val check_pure : ?cov:Coverage.t -> vconfig -> Lang.Syntax.expr -> result
(** Cross-check one pure term (open over the Prelude). *)

val check_io :
  ?cov:Coverage.t -> vconfig -> seed:int -> Lang.Syntax.expr -> result
(** Cross-check one [IO Int] program across {!Semantics.Iosem},
    {!Machine.Machine_io} and the two concurrent layers, plus the GC and
    async fault schedules. [seed] drives the seeded-oracle fault run. *)

val check_conc :
  ?cov:Coverage.t -> vconfig -> seed:int -> Lang.Syntax.expr -> result
(** Cross-check one concurrent program ({!Semantics.Conc} vs
    {!Machine.Machine_conc}): termination classes, output multisets,
    thread counts, bracket balance; plus an async fault schedule. *)
