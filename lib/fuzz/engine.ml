open Lang.Syntax
module B = Lang.Builder
module G = QCheck2.Gen
module Gen_term = Gen.Gen_term
module Denot = Semantics.Denot

type config = {
  seed : int;
  runs : int;
  seconds : float option;
  corpus_dir : string option;
  crash_dir : string option;
  persist : bool;
  vconfig : Differ.vconfig;
  max_retained : int;
  log : string -> unit;
}

let default_config =
  {
    seed = 0;
    runs = 500;
    seconds = None;
    corpus_dir = None;
    crash_dir = None;
    persist = false;
    vconfig = Differ.default_vconfig;
    max_retained = 256;
    log = ignore;
  }

let bug_names =
  [ "no-poison"; "no-app-union"; "no-case-finding"; "broken-opt-pass" ]

let inject_bug name (v : Differ.vconfig) =
  match name with
  | "no-poison" -> Ok { v with Differ.poison_thunks = false }
  | "no-app-union" -> Ok { v with Differ.app_union = false }
  | "no-case-finding" -> Ok { v with Differ.case_finding = false }
  | "broken-opt-pass" ->
      (* A deliberately corrupted optimiser pass: the lint ablation
         drops a live binder, which the post-pass checker must catch
         and report as an optimizer-lint violation. *)
      Ok
        {
          v with
          Differ.optimize_variants = true;
          break_pass = Some "unbind-var";
        }
  | _ ->
      Error
        (Printf.sprintf "unknown bug %S (known: %s)" name
           (String.concat ", " bug_names))

type crash = {
  entry : Corpus.entry;
  check : string;
  detail : string;
  minimized : expr;
  minimized_size : int;
  occurrences : int;
  dump : string option;
}

type report = {
  total_runs : int;
  replayed : int;
  generated : int;
  mutated : int;
  retained : int;
  crashes : crash list;
  coverage : Coverage.t;
  meta : Metamorph.state;
  corpus_errors : (string * string) list;
  elapsed : float;
}

let passed r =
  r.crashes = [] && r.corpus_errors = [] && Metamorph.unwitnessed r.meta = []

(* ------------------------------------------------------------------ *)
(* Running one entry                                                   *)
(* ------------------------------------------------------------------ *)

let metamorph_config (v : Differ.vconfig) =
  {
    Denot.default_config with
    fuel = v.Differ.denot_fuel;
    app_union = v.Differ.app_union;
    case_finding = v.Differ.case_finding;
  }

(* All violations of one entry, as (check, detail, dump). [meta] is the
   campaign state during exploration and a scratch state during
   minimisation (so shrink probes don't pollute the witness tallies). *)
let run_entry ?cov ~vconfig ~meta ~rseed (e : Corpus.entry) =
  match e.Corpus.mode with
  | Corpus.M_int | Corpus.M_list | Corpus.M_any ->
      let d = Differ.check_pure ?cov vconfig e.Corpus.expr in
      let mv =
        Metamorph.check_pure ~config:(metamorph_config vconfig) meta
          e.Corpus.expr
      in
      List.map
        (fun (v : Differ.violation) ->
          (v.Differ.check, v.Differ.detail, d.Differ.dump))
        d.Differ.violations
      @ List.map
          (fun (v : Metamorph.violation) ->
            (v.Metamorph.oracle, v.Metamorph.detail, None))
          mv
  | Corpus.M_io ->
      let d = Differ.check_io ?cov vconfig ~seed:rseed e.Corpus.expr in
      List.map
        (fun (v : Differ.violation) ->
          (v.Differ.check, v.Differ.detail, d.Differ.dump))
        d.Differ.violations
  | Corpus.M_conc ->
      let d = Differ.check_conc ?cov vconfig ~seed:rseed e.Corpus.expr in
      List.map
        (fun (v : Differ.violation) ->
          (v.Differ.check, v.Differ.detail, d.Differ.dump))
        d.Differ.violations

(* ------------------------------------------------------------------ *)
(* Minimisation                                                        *)
(* ------------------------------------------------------------------ *)

(* Greedy descent over the strictly-decreasing structural shrinker:
   replace the witness by its first shrink candidate that still trips
   the same check. Candidate probes are capped so a slow-to-reproduce
   check cannot stall the campaign. *)
let prelude_names =
  lazy (Lang.Subst.String_set.of_list Lang.Prelude.names)

(* Shrink candidates may expose the body of a binder, leaving its
   variable free; such terms are not programs, so the minimiser only
   follows candidates closed under the Prelude. *)
let closed_under_prelude e =
  Lang.Subst.String_set.subset (Lang.Subst.free_vars e)
    (Lazy.force prelude_names)

let minimize ~vconfig ~rseed ~check (e : Corpus.entry) =
  let probes = ref 0 in
  let still_fails cand =
    closed_under_prelude cand
    && begin
         incr probes;
         !probes <= 2_000
         && List.exists
              (fun (c, _, _) -> String.equal c check)
              (run_entry ~vconfig ~meta:(Metamorph.create ()) ~rseed
                 { e with Corpus.expr = cand })
       end
  in
  let rec go cur steps =
    if steps <= 0 then cur
    else
      match List.find_opt still_fails (Gen_term.shrink cur) with
      | Some smaller -> go smaller (steps - 1)
      | None -> cur
  in
  go e.Corpus.expr 300

(* ------------------------------------------------------------------ *)
(* Generation and mutation                                             *)
(* ------------------------------------------------------------------ *)

let gen_fresh rng n =
  let pick = Random.State.int rng 12 in
  let mode, g =
    if pick < 4 then (Corpus.M_int, Gen_term.gen_int ())
    else if pick < 6 then (Corpus.M_list, Gen_term.gen_list ())
    else if pick < 10 then (Corpus.M_io, Gen_term.gen_io ())
    else (Corpus.M_conc, Gen_term.gen_conc ())
  in
  {
    Corpus.name = Printf.sprintf "gen-%06d" n;
    mode;
    expr = G.generate1 ~rand:rng g;
  }

let exn_grafts =
  [|
    B.(int 1 / int 0);
    B.error "mut";
    B.raise_exn Lang.Exn.Overflow;
    B.int 0;
    B.int 1;
  |]

(* Replace the [idx]-th subterm in pre-order ({!Transform.Rewrite.subterms}
   numbering). *)
let replace_nth root idx repl =
  let n = ref (-1) in
  let rec go e =
    incr n;
    if !n = idx then repl
    else
      match e with
      | Var _ | Lit _ -> e
      | Lam (x, b) -> Lam (x, go b)
      | App (f, x) ->
          let f = go f in
          App (f, go x)
      | Con (c, es) -> Con (c, List.map go es)
      | Case (s, alts) ->
          let s = go s in
          Case (s, List.map (fun a -> { a with rhs = go a.rhs }) alts)
      | Let (x, e1, e2) ->
          let e1 = go e1 in
          Let (x, e1, go e2)
      | Letrec (bs, b) ->
          let bs = List.map (fun (x, e1) -> (x, go e1)) bs in
          Letrec (bs, go b)
      | Prim (p, es) -> Prim (p, List.map go es)
      | Raise e -> Raise (go e)
      | Fix e -> Fix (go e)
  in
  go root

let put_int e = App (Var "putInt", e)

let mutate rng (corpus : Corpus.entry array) (e : Corpus.entry) n =
  let graft expr =
    let subs = Transform.Rewrite.subterms expr in
    let len = List.length subs in
    if len <= 1 then None
    else
      let idx = 1 + Random.State.int rng (len - 1) in
      let repl = exn_grafts.(Random.State.int rng (Array.length exn_grafts)) in
      Some (replace_nth expr idx repl)
  in
  let crossover expr =
    let mates =
      Array.to_list corpus
      |> List.filter (fun (m : Corpus.entry) -> m.Corpus.mode = e.Corpus.mode)
    in
    match mates with
    | [] -> None
    | _ ->
        let mate = List.nth mates (Random.State.int rng (List.length mates)) in
        let donor = Transform.Rewrite.subterms mate.Corpus.expr in
        let piece = List.nth donor (Random.State.int rng (List.length donor)) in
        let subs = Transform.Rewrite.subterms expr in
        let len = List.length subs in
        if len <= 1 then None
        else Some (replace_nth expr (1 + Random.State.int rng (len - 1)) piece)
  in
  let rule_rewrite expr =
    let rules = Transform.Rules.all in
    let r = List.nth rules (Random.State.int rng (List.length rules)) in
    Transform.Rewrite.first_site r.Transform.Rules.applies expr
  in
  let expr = e.Corpus.expr in
  let mutated =
    match e.Corpus.mode with
    | Corpus.M_int | Corpus.M_list | Corpus.M_any -> (
        match Random.State.int rng 5 with
        | 0 when e.Corpus.mode = Corpus.M_int ->
            Some (Let ("zz", expr, B.(var "zz" + var "zz")))
        | 0 -> Some (B.seq expr expr)
        | 1 -> graft expr
        | 2 -> rule_rewrite expr
        | 3 ->
            Some
              (B.map_exception
                 (B.lam "ze" (B.exn_con Lang.Exn.Overflow))
                 expr)
        | _ -> crossover expr)
    | Corpus.M_io | Corpus.M_conc -> (
        match Random.State.int rng 4 with
        | 0 -> Some (B.io_mask expr)
        | 1 ->
            Some
              (B.io_bracket
                 (B.io_return (B.int 1))
                 (B.lam "zr" (put_int (B.int 9)))
                 (B.lam "zr" expr))
        | 2 -> Some (B.io_bind (put_int (B.int 7)) (B.lam "zu" expr))
        | _ -> graft expr)
  in
  Option.map
    (fun expr ->
      { e with Corpus.name = Printf.sprintf "gen-%06d" n; expr })
    mutated

(* ------------------------------------------------------------------ *)
(* The campaign                                                        *)
(* ------------------------------------------------------------------ *)

let run cfg =
  let rng = Random.State.make [| cfg.seed; 0x1e9 |] in
  let cov = Coverage.create () in
  let meta = Metamorph.create () in
  let start = Sys.time () in
  let dict = Corpus.dictionary () in
  let file_corpus, corpus_errors =
    match cfg.corpus_dir with Some d -> Corpus.load_dir d | None -> ([], [])
  in
  let corpus = ref (Array.of_list (dict @ file_corpus)) in
  let retained = ref 0 in
  let replayed = ref 0 in
  let generated = ref 0 in
  let mutated = ref 0 in
  let total = ref 0 in
  let crashes : (string, crash) Hashtbl.t = Hashtbl.create 8 in
  let handle (e : Corpus.entry) rseed violations =
    List.iter
      (fun (check, detail, dump) ->
        match Hashtbl.find_opt crashes check with
        | Some c ->
            Hashtbl.replace crashes check
              { c with occurrences = c.occurrences + 1 }
        | None ->
            cfg.log
              (Printf.sprintf "! %s on %s — minimising" check e.Corpus.name);
            let minimized = minimize ~vconfig:cfg.vconfig ~rseed ~check e in
            let crash =
              {
                entry = e;
                check;
                detail;
                minimized;
                minimized_size = size minimized;
                occurrences = 1;
                dump;
              }
            in
            Hashtbl.add crashes check crash;
            Option.iter
              (fun dir ->
                Corpus.save ~dir
                  {
                    e with
                    Corpus.name = Printf.sprintf "crash-%s" check;
                    expr = minimized;
                  };
                let path = Filename.concat dir ("crash-" ^ check ^ ".txt") in
                let oc = open_out path in
                Printf.fprintf oc
                  "check: %s\ndetail: %s\noriginal (%s):\n%s\n\nminimised \
                   (%d nodes):\n%s\n\n%s\n"
                  check detail e.Corpus.name
                  (Lang.Pretty.expr_to_string e.Corpus.expr)
                  (size minimized)
                  (Lang.Pretty.expr_to_string minimized)
                  (Option.value dump ~default:"(no dump)");
                close_out oc)
              cfg.crash_dir)
      violations
  in
  let run_one (e : Corpus.entry) =
    incr total;
    let rseed = cfg.seed + !total in
    let before = Coverage.signature cov in
    let violations = run_entry ~cov ~vconfig:cfg.vconfig ~meta ~rseed e in
    handle e rseed violations;
    if Coverage.signature cov <> before && !retained < cfg.max_retained then begin
      incr retained;
      corpus := Array.append !corpus [| e |];
      if cfg.persist then
        Option.iter (fun dir -> Corpus.save ~dir e) cfg.corpus_dir
    end
  in
  (* Phase 1: replay the corpus (dictionary + files). *)
  Array.iter
    (fun e ->
      incr replayed;
      run_one e)
    !corpus;
  cfg.log
    (Printf.sprintf "replayed %d corpus entries; coverage %d/%d" !replayed
       (Coverage.kinds_hit cov) Coverage.n_kinds);
  (* Phase 2: explore. *)
  let continue () =
    match cfg.seconds with
    | Some s -> Sys.time () -. start < s
    | None -> !total < cfg.runs
  in
  while continue () do
    let n = !total + 1 in
    let entry =
      let mutating =
        Array.length !corpus > 0 && Random.State.int rng 4 = 0
      in
      if mutating then
        let src = !corpus.(Random.State.int rng (Array.length !corpus)) in
        match mutate rng !corpus src n with
        | Some e ->
            incr mutated;
            e
        | None ->
            incr generated;
            gen_fresh rng n
      else begin
        incr generated;
        gen_fresh rng n
      end
    in
    run_one entry;
    if !total mod 250 = 0 then
      cfg.log
        (Printf.sprintf
           "%d runs (%d generated, %d mutated); coverage %d/%d kinds, %d \
            buckets; %d retained; %d distinct crashes"
           !total !generated !mutated (Coverage.kinds_hit cov) Coverage.n_kinds
           (Coverage.buckets_seen cov) !retained (Hashtbl.length crashes))
  done;
  {
    total_runs = !total;
    replayed = !replayed;
    generated = !generated;
    mutated = !mutated;
    retained = !retained;
    crashes =
      Hashtbl.fold (fun _ c acc -> c :: acc) crashes []
      |> List.sort (fun a b -> String.compare a.check b.check);
    coverage = cov;
    meta;
    corpus_errors;
    elapsed = Sys.time () -. start;
  }

let minimize_file cfg path =
  if not (Sys.file_exists path) then Error (path ^ ": no such file")
  else
    let ic = open_in_bin path in
    let text = really_input_string ic (in_channel_length ic) in
    close_in ic;
    let name = Filename.remove_extension (Filename.basename path) in
    match Corpus.of_text ~name text with
    | Error e -> Error (path ^ ": " ^ e)
    | Ok entry -> (
        let rseed = cfg.seed + 1 in
        match
          run_entry ~vconfig:cfg.vconfig ~meta:(Metamorph.create ()) ~rseed
            entry
        with
        | [] -> Ok None
        | (check, detail, dump) :: _ ->
            let minimized = minimize ~vconfig:cfg.vconfig ~rseed ~check entry in
            Ok
              (Some
                 {
                   entry;
                   check;
                   detail;
                   minimized;
                   minimized_size = size minimized;
                   occurrences = 1;
                   dump;
                 }))

let pp_report ppf r =
  Fmt.pf ppf "fuzz campaign: %d runs (%d replayed, %d generated, %d mutated) \
              in %.1fs@."
    r.total_runs r.replayed r.generated r.mutated r.elapsed;
  Fmt.pf ppf "%a" Coverage.pp r.coverage;
  Fmt.pf ppf "corpus: %d inputs retained for new coverage@." r.retained;
  List.iter
    (fun (f, e) -> Fmt.pf ppf "corpus file error: %s: %s@." f e)
    r.corpus_errors;
  let rules_checked =
    List.filter (fun (_, applied, _) -> applied > 0) (Metamorph.summary r.meta)
  in
  Fmt.pf ppf "metamorphic oracles applied: %d (witnessed non-laws: %d)@."
    (List.fold_left (fun acc (_, a, _) -> acc + a) 0 rules_checked)
    (List.fold_left (fun acc (_, _, w) -> acc + w) 0 rules_checked);
  List.iter
    (fun o -> Fmt.pf ppf "UNWITNESSED non-law: %s@." o)
    (Metamorph.unwitnessed r.meta);
  (match r.crashes with
  | [] -> Fmt.pf ppf "no violations.@."
  | cs ->
      List.iter
        (fun c ->
          Fmt.pf ppf
            "VIOLATION %s (%d occurrence%s)@.  first on: %s@.  %s@.  \
             minimised to %d nodes: %s@."
            c.check c.occurrences
            (if c.occurrences = 1 then "" else "s")
            c.entry.Corpus.name c.detail c.minimized_size
            (Lang.Pretty.expr_to_string c.minimized))
        cs);
  Fmt.pf ppf "verdict: %s@." (if passed r then "PASS" else "FAIL")
