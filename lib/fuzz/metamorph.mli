(** The metamorphic layer: every transformation law is a fuzz oracle.

    For each generated pure term [t] and each rule in {!Transform.Rules}
    that fires somewhere in [t] (leftmost-outermost), the rewritten term
    is evaluated alongside the original and the observed relation is
    checked against the rule's {e claimed} status:

    - claimed [Identity] must observe denotational equality;
    - claimed [Refinement] must observe [Equal] or [Refines] — the
      Section 4.5 "legitimate to gain information" direction;
    - claimed [Invalid] may observe anything, but the campaign {e must}
      observe an actual inequality at least once — deliberate non-laws
      are witnessed, not assumed (the built-in corpus replays each
      rule's witnessing instance, so a campaign that finds no witness
      indicates the semantics stopped distinguishing the designs).

    The fixed-order claims are checked the same way under
    {!Semantics.Fixed.Left_to_right}.

    On top of the rule catalogue, three synthetic oracles:

    - {e seq-insert}: for [let x = e in body] with [body] demanded-strict
      in [x], inserting [seq x body] must preserve-or-refine;
    - {e widen-plus}: for a term denoting [DInt n] (resp. a finite
      exception set [s]), [t + raise E] must denote exactly [DBad {E}]
      (resp. [DBad (s ∪ {E})]) — the Section 4.2 [⊕] equation run in
      reverse;
    - {e roundtrip}: [parse (pretty t)] is alpha-equal to [t].

    Terms whose evaluation bottoms out (fuel, black holes) are exempt
    from the equality obligations: at a finite approximation a bottomed
    side sits below everything, so only the refinement direction is
    meaningful there. *)

type state

val create : unit -> state

type violation = {
  oracle : string;
  lhs : Lang.Syntax.expr;  (** Un-wrapped (Prelude-open) original. *)
  rhs : Lang.Syntax.expr;
  detail : string;
}

val pp_violation : violation Fmt.t

val check_pure :
  ?config:Semantics.Denot.config ->
  ?depth:int ->
  state ->
  Lang.Syntax.expr ->
  violation list
(** Run every applicable oracle on one pure term (open over the
    Prelude); tallies applications and non-law witnesses in [state]. *)

val summary : state -> (string * int * int) list
(** Per-oracle [(name, times applied, inequality witnesses)]. *)

val unwitnessed : state -> string list
(** Claimed-[Invalid] rules (imprecise or fixed-order design) whose
    invalidity was never witnessed during the campaign — each entry is a
    failure of the campaign, not of the semantics. *)
