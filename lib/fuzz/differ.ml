open Lang.Syntax
module Denot = Semantics.Denot
module Fixed = Semantics.Fixed
module Io = Semantics.Iosem
module Conc = Semantics.Conc
module Oracle = Semantics.Oracle
module Exn_set = Semantics.Exn_set
module V = Semantics.Sem_value
module Refine = Semantics.Refine
module Stg = Machine.Stg
module Stg_ref = Machine.Stg_ref
module Bytecode = Machine.Bytecode
module Machine_io = Machine.Machine_io
module Machine_conc = Machine.Machine_conc

type vconfig = {
  denot_fuel : int;
  machine_fuel : int;
  fixed_fuel : int;
  depth : int;
  io_max_steps : int;
  poison_thunks : bool;
  app_union : bool;
  case_finding : bool;
  optimize_variants : bool;
  break_pass : string option;
}

let default_vconfig =
  {
    denot_fuel = 50_000;
    machine_fuel = 400_000;
    fixed_fuel = 200_000;
    depth = 24;
    io_max_steps = 4_000;
    poison_thunks = true;
    app_union = true;
    case_finding = true;
    optimize_variants = true;
    break_pass = None;
  }

type violation = { check : string; detail : string }

let pp_violation ppf v = Fmt.pf ppf "[%s] %s" v.check v.detail

type result = { violations : violation list; dump : string option }

let denot_config v =
  {
    Denot.default_config with
    fuel = v.denot_fuel;
    app_union = v.app_union;
    case_finding = v.case_finding;
  }

let stg_config v =
  {
    Stg.default_config with
    fuel = v.machine_fuel;
    poison_thunks = v.poison_thunks;
    blackhole_nontermination = true;
  }

let ref_config v =
  {
    Stg_ref.default_config with
    fuel = v.machine_fuel;
    poison_thunks = v.poison_thunks;
    blackhole_nontermination = true;
  }

let rec contains_bottom = function
  | V.DBad s -> Exn_set.is_all s
  | V.DCon (_, ds) -> List.exists contains_bottom ds
  | V.DInt _ | V.DChar _ | V.DString _ | V.DFun | V.DCut -> false

let rec bad_sets acc = function
  | V.DBad s -> s :: acc
  | V.DCon (_, ds) -> List.fold_left bad_sets acc ds
  | V.DInt _ | V.DChar _ | V.DString _ | V.DFun | V.DCut -> acc

(* C13 lifted through structure: the precise evaluator aborts the whole
   deep forcing at the first exceptional component, so [Raised e]
   implements a structured denotation whenever [e] is a member of some
   exception set occurring anywhere inside it. *)
let raised_implements e d =
  contains_bottom d || List.exists (Exn_set.mem e) (bad_sets [] d)

let exn_of_deep = function
  | V.DCon (name, []) -> Lang.Exn.of_constructor name None
  | V.DCon (name, [ V.DString s ]) -> Lang.Exn.of_constructor name (Some s)
  | V.DCon (name, [ V.DInt n ]) ->
      Lang.Exn.of_constructor_p name (Some (Lang.Exn.P_int n))
  | _ -> None

(* Denot and the machines leave pure [getException] uninterpreted (a
   [GetException] constructor around the possibly-exceptional argument);
   the fixed-order baseline interprets it, returning [OK v] or a caught
   [Bad e]. The interpretation implements the symbolic form when the
   caught member belongs to the argument's exception set. *)
let rec fixed_deep_implements fd dl =
  match (fd, dl) with
  | _, V.DBad s when Exn_set.is_all s -> true
  | V.DCon ("OK", [ d ]), V.DCon ("GetException", [ dd ]) ->
      fixed_deep_implements d dd
  | V.DCon ("Bad", [ de ]), V.DCon ("GetException", [ dd ]) -> (
      match (exn_of_deep de, bad_sets [] dd) with
      | Some e, sets -> List.exists (Exn_set.mem e) sets
      | None, _ -> false)
  | V.DCon (c1, ds1), V.DCon (c2, ds2) ->
      String.equal c1 c2
      && List.length ds1 = List.length ds2
      && List.for_all2 fixed_deep_implements ds1 ds2
  | _ -> Refine.implements_deep fd dl

let fixed_implements fo dl =
  match fo with
  | Fixed.Value d -> fixed_deep_implements d dl
  | Fixed.Raised e -> raised_implements e dl
  | Fixed.Diverged -> true

let uses_get_exception t =
  List.exists
    (function
      | Con ("GetException", _) -> true
      | Var "getException" -> true
      | _ -> false)
    (Transform.Rewrite.subterms t)

(* A [DBad] buried inside a constructor: the machine's per-field deep
   forcing and the precise evaluator's abort-on-first-raise legitimately
   disagree on such values, so exact comparisons skip them. *)
let rec has_nested_bad inside = function
  | V.DBad _ -> inside
  | V.DCon (_, ds) -> List.exists (has_nested_bad true) ds
  | V.DInt _ | V.DChar _ | V.DString _ | V.DFun | V.DCut -> false

(* Structural agreement between two *implementation* results: each
   reports a single representative member of the semantic set, and the
   members may legitimately differ, so exceptional positions (and
   source-level exception-constructor values, e.g. a caught [Bad e]
   carried into the result) compare equal regardless of which exception
   they hold. *)
let is_exn_con name =
  Lang.Exn.is_declared name
  || List.exists
       (fun e -> String.equal (Lang.Exn.constructor_name e) name)
       Lang.Exn.all_known

let rec agree_modulo_exn a b =
  match (a, b) with
  | V.DBad _, V.DBad _ -> true
  | V.DCon (c1, _), V.DCon (c2, _) when is_exn_con c1 && is_exn_con c2 -> true
  | V.DCon (c1, a1), V.DCon (c2, a2) ->
      String.equal c1 c2
      && List.length a1 = List.length a2
      && List.for_all2 agree_modulo_exn a1 a2
  | _ -> V.deep_equal a b

let timing_sensitive t =
  List.exists
    (function Con (("WithTimeout" | "Retry"), _) -> true | _ -> false)
    (Transform.Rewrite.subterms t)

let is_prefix a b =
  let shorter, longer =
    if String.length a <= String.length b then (a, b) else (b, a)
  in
  String.equal shorter (String.sub longer 0 (String.length shorter))

let multiset s =
  let cs = List.init (String.length s) (String.get s) in
  List.sort Char.compare cs

let note_cov cov tr stats_list io_counters_list =
  match cov with
  | None -> ()
  | Some c ->
      Coverage.note_events c (Obs.events tr);
      List.iter (Coverage.note_stats c) stats_list;
      List.iter (Coverage.note_io_counters c) io_counters_list

let finish ?(extra = []) tr note violations =
  let violations = List.rev violations in
  let dump =
    if violations = [] then None
    else
      Some
        (Obs.dump ~last:48
           ~extra:
             (("violations",
               String.concat "; "
                 (List.map (fun v -> v.check ^ ": " ^ v.detail) violations))
             :: extra)
           ~note tr)
  in
  { violations; dump }

(* ------------------------------------------------------------------ *)
(* Pure terms: six evaluators                                          *)
(* ------------------------------------------------------------------ *)

let check_pure ?cov v t =
  let w = Lang.Prelude.wrap t in
  let tr = Obs.create ~capacity:1024 ~on:true () in
  let violations = ref [] in
  let flag check detail = violations := { check; detail } :: !violations in
  let dl = Denot.run_deep ~config:(denot_config v) ~depth:v.depth w in
  let m = Stg.create ~config:(stg_config v) ~trace:tr () in
  let d_stg = Stg.deep ~depth:v.depth m (Stg.alloc m w) in
  (* Exercise the root catch/poison machinery for coverage on a fresh
     allocation: catching at the root abandons it black-holed, so a
     [deep] after [force_catch] is not the term's denotation and feeds
     no comparison. *)
  ignore (Stg.force_catch m (Stg.alloc m w));
  let mr = Stg_ref.create ~config:(ref_config v) ~trace:tr () in
  let d_ref = Stg_ref.deep ~depth:v.depth mr (Stg_ref.alloc mr w) in
  let ref_stats = Stg_ref.stats mr in
  (* The sixth evaluator: the flat bytecode backend, under the same
     machine config (it shares the slot machine's config record). *)
  let mb =
    Bytecode.create ~config:(stg_config v) ~trace:tr (Bytecode.compile (Lang.Resolve.expr w))
  in
  let d_bc = Bytecode.deep ~depth:v.depth mb (Bytecode.entry mb) in
  ignore (Bytecode.force_catch mb (Bytecode.entry mb));
  let fo_l = Fixed.run_deep ~fuel:v.fixed_fuel ~depth:v.depth Fixed.Left_to_right w in
  let fo_r = Fixed.run_deep ~fuel:v.fixed_fuel ~depth:v.depth Fixed.Right_to_left w in
  let pd = Fmt.str "%a" V.pp_deep in
  if not (Refine.implements_deep d_stg dl) then
    flag "stg-implements-denot"
      (Printf.sprintf "machine %s !⊑ denot %s" (pd d_stg) (pd dl));
  if not (Refine.implements_deep d_ref dl) then
    flag "stg-ref-implements-denot"
      (Printf.sprintf "reference machine %s !⊑ denot %s" (pd d_ref) (pd dl));
  if not (fixed_implements fo_l dl) then
    flag "fixed-l2r-implements-denot"
      (Fmt.str "fixed L2R %a !⊑ denot %s" Fixed.pp_outcome fo_l (pd dl));
  if not (fixed_implements fo_r dl) then
    flag "fixed-r2l-implements-denot"
      (Fmt.str "fixed R2L %a !⊑ denot %s" Fixed.pp_outcome fo_r (pd dl));
  if not (Refine.implements_deep d_bc dl) then
    flag "bytecode-implements-denot"
      (Printf.sprintf "bytecode %s !⊑ denot %s" (pd d_bc) (pd dl));
  if
    (not (contains_bottom d_stg))
    && (not (contains_bottom d_ref))
    && not (V.deep_equal d_stg d_ref)
  then
    flag "stg-vs-stg-ref"
      (Printf.sprintf "slot machine %s <> reference machine %s" (pd d_stg)
         (pd d_ref));
  if
    (not (contains_bottom d_stg))
    && (not (contains_bottom d_bc))
    && not (V.deep_equal d_stg d_bc)
  then
    flag "stg-vs-bytecode"
      (Printf.sprintf "slot machine %s <> bytecode %s" (pd d_stg) (pd d_bc));
  (let fd_l = Fixed.outcome_to_deep fo_l in
   if
     (not (uses_get_exception t))
     && (not (contains_bottom d_stg))
     && (not (contains_bottom fd_l))
     && (not (has_nested_bad false d_stg))
     && (not (has_nested_bad false fd_l))
     && not (V.deep_equal d_stg fd_l)
   then
     flag "stg-vs-fixed-l2r"
       (Printf.sprintf "machine %s <> fixed L2R %s" (pd d_stg) (pd fd_l)));
  note_cov cov tr [ Stg.stats m; ref_stats; Bytecode.stats mb ] [];
  (* Optimized variants: run the imprecise pipeline (every pass
     linted) and re-run each evaluator on its output. The optimiser
     may only gain information (denot ⊑ denot of optimised), every
     implementation must still implement the optimised denotation
     (C13), and the deterministic machines must keep agreeing with
     each other. A lint rejection surfaces as a structured violation
     instead of killing the campaign. *)
  (if v.optimize_variants then
     match
       Transform.Pipeline.optimize ?break_pass:v.break_pass ~trace:tr
         Transform.Pipeline.Imprecise w
     with
     | exception Transform.Lint.Lint_error { pass; violations = lvs; _ } ->
         flag "optimizer-lint"
           (Fmt.str "lint rejected pass %s: %a" pass
              Fmt.(list ~sep:(any "; ") Transform.Lint.pp_violation)
              lvs)
     | wo, _report ->
         let dlo = Denot.run_deep ~config:(denot_config v) ~depth:v.depth wo in
         if not (V.deep_leq dl dlo) then
           flag "optimized-denot-leq"
             (Printf.sprintf "optimised term lost information: %s !⊑ %s"
                (pd dl) (pd dlo));
         let mo = Stg.create ~config:(stg_config v) ~trace:tr () in
         let d_so = Stg.deep ~depth:v.depth mo (Stg.alloc mo wo) in
         let mro = Stg_ref.create ~config:(ref_config v) ~trace:tr () in
         let d_ro = Stg_ref.deep ~depth:v.depth mro (Stg_ref.alloc mro wo) in
         let mbo =
           Bytecode.create ~config:(stg_config v) ~trace:tr
             (Bytecode.compile (Lang.Resolve.expr wo))
         in
         let d_bo = Bytecode.deep ~depth:v.depth mbo (Bytecode.entry mbo) in
         let fo_lo =
           Fixed.run_deep ~fuel:v.fixed_fuel ~depth:v.depth Fixed.Left_to_right
             wo
         in
         let fo_ro =
           Fixed.run_deep ~fuel:v.fixed_fuel ~depth:v.depth Fixed.Right_to_left
             wo
         in
         if not (Refine.implements_deep d_so dlo) then
           flag "optimized-stg-implements-denot"
             (Printf.sprintf "machine %s !⊑ optimised denot %s" (pd d_so)
                (pd dlo));
         if not (Refine.implements_deep d_ro dlo) then
           flag "optimized-stg-ref-implements-denot"
             (Printf.sprintf "reference machine %s !⊑ optimised denot %s"
                (pd d_ro) (pd dlo));
         if not (Refine.implements_deep d_bo dlo) then
           flag "optimized-bytecode-implements-denot"
             (Printf.sprintf "bytecode %s !⊑ optimised denot %s" (pd d_bo)
                (pd dlo));
         if not (fixed_implements fo_lo dlo) then
           flag "optimized-fixed-l2r-implements-denot"
             (Fmt.str "fixed L2R %a !⊑ optimised denot %s" Fixed.pp_outcome
                fo_lo (pd dlo));
         if not (fixed_implements fo_ro dlo) then
           flag "optimized-fixed-r2l-implements-denot"
             (Fmt.str "fixed R2L %a !⊑ optimised denot %s" Fixed.pp_outcome
                fo_ro (pd dlo));
         if
           (not (contains_bottom d_so))
           && (not (contains_bottom d_bo))
           && not (V.deep_equal d_so d_bo)
         then
           flag "optimized-stg-vs-bytecode"
             (Printf.sprintf "slot machine %s <> bytecode %s on optimised term"
                (pd d_so) (pd d_bo));
         note_cov cov tr [ Stg.stats mo; Stg_ref.stats mro; Bytecode.stats mbo ] []);
  finish
    ~extra:[ ("term", Lang.Pretty.expr_to_string t); ("denot", pd dl) ]
    tr "pure differential violation" !violations

(* ------------------------------------------------------------------ *)
(* IO programs: four layers + fault schedules                          *)
(* ------------------------------------------------------------------ *)

let bracket_balance_io flag check (c : Io.counters) terminated =
  if terminated && c.Io.brackets_entered <> c.Io.brackets_released then
    flag check
      (Printf.sprintf "brackets entered %d <> released %d"
         c.Io.brackets_entered c.Io.brackets_released)

let bracket_balance_stats flag check (s : Machine.Stats.t) terminated =
  if terminated && s.Machine.Stats.brackets_entered <> s.Machine.Stats.brackets_released
  then
    flag check
      (Printf.sprintf "brackets entered %d <> released %d"
         s.Machine.Stats.brackets_entered s.Machine.Stats.brackets_released)

let check_io ?cov v ~seed t =
  let w = Lang.Prelude.wrap t in
  let tr = Obs.create ~capacity:1024 ~on:true () in
  let violations = ref [] in
  let flag check detail = violations := { check; detail } :: !violations in
  let dcfg = denot_config v in
  let mcfg = stg_config v in
  let ts = timing_sensitive t in
  (* Clean runs, deterministic oracle: strict cross-layer agreement. *)
  let sem =
    Io.run ~config:dcfg ~oracle:(Oracle.first ()) ~trace:tr ~input:""
      ~max_steps:v.io_max_steps w
  in
  let mio =
    Machine_io.run ~config:mcfg ~trace:tr ~input:""
      ~max_transitions:v.io_max_steps w
  in
  let sem_out = Io.output_string_of sem in
  (if not ts then begin
     if not (is_prefix sem_out mio.Machine_io.output) then
       flag "io-output"
         (Printf.sprintf "iosem wrote %S, machine wrote %S" sem_out
            mio.Machine_io.output);
     let outcome_ok =
       match (sem.Io.outcome, mio.Machine_io.outcome) with
       | Io.Done d1, Machine_io.Done d2 -> Refine.implements_deep d2 d1
       | Io.Uncaught _, Machine_io.Uncaught _ -> true
       | Io.Io_diverged, _ | _, Machine_io.Io_diverged -> true
       | Io.Stuck _, Machine_io.Stuck _ -> true
       | _ -> false
     in
     if not outcome_ok then
       flag "io-outcome"
         (Fmt.str "iosem %a, machine %a" Io.pp_outcome sem.Io.outcome
            Machine_io.pp_outcome mio.Machine_io.outcome)
   end);
  let sem_terminated =
    match sem.Io.outcome with Io.Done _ | Io.Uncaught _ -> true | _ -> false
  in
  let mio_terminated =
    match mio.Machine_io.outcome with
    | Machine_io.Done _ | Machine_io.Uncaught _ -> true
    | _ -> false
  in
  bracket_balance_io flag "iosem-bracket-balance" sem.Io.counters sem_terminated;
  bracket_balance_stats flag "machine-io-bracket-balance" mio.Machine_io.stats
    mio_terminated;
  (* Concurrent layers run the same (single-threaded) program. *)
  let csem =
    Conc.run ~config:dcfg ~oracle:(Oracle.first ()) ~trace:tr ~input:""
      ~max_steps:v.io_max_steps w
  in
  (if not ts then
     let ok =
       match (sem.Io.outcome, csem.Conc.outcome) with
       | Io.Done d1, Conc.Done d2 ->
           contains_bottom d1 || contains_bottom d2 || V.deep_equal d1 d2
       | Io.Uncaught _, Conc.Uncaught _ -> true
       | Io.Io_diverged, _ | _, Conc.Diverged -> true
       | Io.Stuck _, Conc.Stuck _ -> true
       | _ -> false
     in
     if not ok then
       flag "iosem-vs-conc"
         (Fmt.str "iosem %a, conc %a" Io.pp_outcome sem.Io.outcome
            Conc.pp_outcome csem.Conc.outcome));
  let mconc =
    Machine_conc.run ~config:mcfg ~trace:tr ~input:""
      ~max_transitions:v.io_max_steps w
  in
  (if not ts then
     let ok =
       match (mio.Machine_io.outcome, mconc.Machine_conc.outcome) with
       | Machine_io.Done d1, Machine_conc.Done d2 ->
           contains_bottom d1 || contains_bottom d2 || agree_modulo_exn d1 d2
       | Machine_io.Uncaught _, Machine_conc.Uncaught _ -> true
       | Machine_io.Io_diverged, _ | _, Machine_conc.Diverged -> true
       | Machine_io.Stuck _, Machine_conc.Stuck _ -> true
       | _ -> false
     in
     if not ok then
       flag "machine-io-vs-machine-conc"
         (Fmt.str "machine io %a, machine conc %a" Machine_io.pp_outcome
            mio.Machine_io.outcome Machine_conc.pp_outcome
            mconc.Machine_conc.outcome));
  (* Fault schedule 1: GC every 3 transitions must be transparent. *)
  let mio_gc =
    Machine_io.run ~config:mcfg ~trace:tr ~input:""
      ~max_transitions:v.io_max_steps ~gc_every:3 w
  in
  (if not ts then begin
     if not (String.equal mio.Machine_io.output mio_gc.Machine_io.output) then
       flag "gc-transparency-output"
         (Printf.sprintf "without gc %S, with gc %S" mio.Machine_io.output
            mio_gc.Machine_io.output);
     let ok =
       match (mio.Machine_io.outcome, mio_gc.Machine_io.outcome) with
       | Machine_io.Done d1, Machine_io.Done d2 ->
           contains_bottom d1 || contains_bottom d2 || agree_modulo_exn d1 d2
       | Machine_io.Uncaught _, Machine_io.Uncaught _ -> true
       | Machine_io.Io_diverged, Machine_io.Io_diverged -> true
       | Machine_io.Stuck _, Machine_io.Stuck _ -> true
       | _ -> false
     in
     if not ok then
       flag "gc-transparency-outcome"
         (Fmt.str "without gc %a, with gc %a" Machine_io.pp_outcome
            mio.Machine_io.outcome Machine_io.pp_outcome
            mio_gc.Machine_io.outcome)
   end);
  (* Fault schedule 2: a seeded async interrupt — invariants only
     (delivery timing is layer-relative). *)
  let async_at = 2 + (abs seed mod 7) in
  let sem_async =
    Io.run ~config:dcfg ~oracle:(Oracle.create ~seed) ~trace:tr ~input:""
      ~async:[ (async_at, Lang.Exn.Interrupt) ] ~max_steps:v.io_max_steps w
  in
  let mio_async =
    Machine_io.run ~config:mcfg ~trace:tr ~input:""
      ~async:[ (async_at * 20, Lang.Exn.Interrupt) ]
      ~max_transitions:v.io_max_steps w
  in
  bracket_balance_io flag "iosem-async-bracket-balance" sem_async.Io.counters
    (match sem_async.Io.outcome with
    | Io.Done _ | Io.Uncaught _ -> true
    | _ -> false);
  bracket_balance_stats flag "machine-io-async-bracket-balance"
    mio_async.Machine_io.stats
    (match mio_async.Machine_io.outcome with
    | Machine_io.Done _ | Machine_io.Uncaught _ -> true
    | _ -> false);
  note_cov cov tr
    [ mio.Machine_io.stats; mio_gc.Machine_io.stats; mio_async.Machine_io.stats;
      mconc.Machine_conc.stats ]
    [ sem.Io.counters; csem.Conc.counters; sem_async.Io.counters ];
  finish
    ~extra:[ ("program", Lang.Pretty.expr_to_string t) ]
    tr "io differential violation" !violations

(* ------------------------------------------------------------------ *)
(* Concurrent programs: the two concurrent layers                      *)
(* ------------------------------------------------------------------ *)

let check_conc ?cov v ~seed t =
  let w = Lang.Prelude.wrap t in
  let tr = Obs.create ~capacity:1024 ~on:true () in
  let violations = ref [] in
  let flag check detail = violations := { check; detail } :: !violations in
  let dcfg = denot_config v in
  let mcfg = stg_config v in
  let ts = timing_sensitive t in
  let csem =
    Conc.run ~config:dcfg ~oracle:(Oracle.first ()) ~trace:tr ~input:""
      ~max_steps:v.io_max_steps w
  in
  let mconc =
    Machine_conc.run ~config:mcfg ~trace:tr ~input:""
      ~max_transitions:v.io_max_steps w
  in
  (if not ts then begin
     let ok =
       match (csem.Conc.outcome, mconc.Machine_conc.outcome) with
       | Conc.Done d1, Machine_conc.Done d2 ->
           contains_bottom d1 || contains_bottom d2 || agree_modulo_exn d1 d2
       | Conc.Uncaught _, Machine_conc.Uncaught _ -> true
       | Conc.Deadlock, Machine_conc.Deadlock -> true
       | Conc.Diverged, _ | _, Machine_conc.Diverged -> true
       | Conc.Stuck _, Machine_conc.Stuck _ -> true
       | _ -> false
     in
     if not ok then
       flag "conc-outcome"
         (Fmt.str "semantic %a, machine %a" Conc.pp_outcome csem.Conc.outcome
            Machine_conc.pp_outcome mconc.Machine_conc.outcome);
     (match (csem.Conc.outcome, mconc.Machine_conc.outcome) with
     | Conc.Done _, Machine_conc.Done _ ->
         let so = Conc.output_string_of csem in
         if multiset so <> multiset mconc.Machine_conc.output then
           flag "conc-output-multiset"
             (Printf.sprintf "semantic wrote %S, machine wrote %S" so
                mconc.Machine_conc.output)
     | _ -> ());
     if csem.Conc.threads_spawned <> mconc.Machine_conc.threads_spawned then
       flag "conc-threads-spawned"
         (Printf.sprintf "semantic spawned %d, machine spawned %d"
            csem.Conc.threads_spawned mconc.Machine_conc.threads_spawned)
   end);
  bracket_balance_io flag "conc-bracket-balance" csem.Conc.counters
    (match csem.Conc.outcome with
    | Conc.Done _ | Conc.Uncaught _ -> true
    | _ -> false);
  bracket_balance_stats flag "machine-conc-bracket-balance"
    mconc.Machine_conc.stats
    (match mconc.Machine_conc.outcome with
    | Machine_conc.Done _ | Machine_conc.Uncaught _ -> true
    | _ -> false);
  (* Async fault: invariants only. *)
  let async_at = 2 + (abs seed mod 5) in
  let csem_a =
    Conc.run ~config:dcfg ~oracle:(Oracle.create ~seed) ~trace:tr ~input:""
      ~async:[ (async_at, Lang.Exn.Interrupt) ] ~max_steps:v.io_max_steps w
  in
  let mconc_a =
    Machine_conc.run ~config:mcfg ~trace:tr ~input:""
      ~async:[ (async_at * 20, Lang.Exn.Interrupt) ]
      ~max_transitions:v.io_max_steps w
  in
  bracket_balance_io flag "conc-async-bracket-balance" csem_a.Conc.counters
    (match csem_a.Conc.outcome with
    | Conc.Done _ | Conc.Uncaught _ -> true
    | _ -> false);
  bracket_balance_stats flag "machine-conc-async-bracket-balance"
    mconc_a.Machine_conc.stats
    (match mconc_a.Machine_conc.outcome with
    | Machine_conc.Done _ | Machine_conc.Uncaught _ -> true
    | _ -> false);
  note_cov cov tr
    [ mconc.Machine_conc.stats; mconc_a.Machine_conc.stats ]
    [ csem.Conc.counters; csem_a.Conc.counters ];
  finish
    ~extra:[ ("program", Lang.Pretty.expr_to_string t) ]
    tr "concurrency differential violation" !violations
