let n_kinds = 18

let kind_of_event : Obs.event -> int = function
  | Obs.Ev_raise _ -> 0
  | Obs.Ev_rethrow _ -> 1
  | Obs.Ev_catch _ -> 2
  | Obs.Ev_poison _ -> 3
  | Obs.Ev_pause _ -> 4
  | Obs.Ev_resume _ -> 5
  | Obs.Ev_mask_push -> 6
  | Obs.Ev_mask_pop -> 7
  | Obs.Ev_async _ -> 8
  | Obs.Ev_gc _ -> 9
  | Obs.Ev_acquire -> 10
  | Obs.Ev_release -> 11
  | Obs.Ev_oracle_pick _ -> 12
  | Obs.Ev_io _ -> 13
  | Obs.Ev_throwto _ -> 14
  | Obs.Ev_kill_delivered _ -> 15
  | Obs.Ev_blocked_recover _ -> 16
  | Obs.Ev_lint_fail _ -> 17

let kind_name = function
  | 0 -> "raise"
  | 1 -> "rethrow"
  | 2 -> "catch"
  | 3 -> "poison"
  | 4 -> "pause"
  | 5 -> "resume"
  | 6 -> "mask-push"
  | 7 -> "mask-pop"
  | 8 -> "async"
  | 9 -> "gc"
  | 10 -> "acquire"
  | 11 -> "release"
  | 12 -> "oracle-pick"
  | 13 -> "io"
  | 14 -> "throwto"
  | 15 -> "kill-delivered"
  | 16 -> "blocked-recover"
  | 17 -> "lint-fail"
  | _ -> "?"

type t = {
  counts : int array;  (** events recorded, per kind *)
  buckets : (string * int, unit) Hashtbl.t;
}

let create () = { counts = Array.make n_kinds 0; buckets = Hashtbl.create 64 }

let note_event t ev =
  let k = kind_of_event ev in
  t.counts.(k) <- t.counts.(k) + 1

let note_events t evs = List.iter (note_event t) evs

(* Power-of-two bucketing: 0, 1, 2, 4, 8, ... collapse runs that differ
   only by noise, while order-of-magnitude jumps count as new. *)
let bucket v =
  if v <= 0 then 0
  else
    let rec go b v = if v = 0 then b else go (b + 1) (v lsr 1) in
    go 0 v

let note_counter t name v =
  let key = (name, bucket v) in
  if not (Hashtbl.mem t.buckets key) then Hashtbl.add t.buckets key ()

let note_stats t (s : Machine.Stats.t) =
  note_counter t "steps" s.steps;
  note_counter t "allocations" s.allocations;
  note_counter t "updates" s.updates;
  note_counter t "max_stack" s.max_stack;
  note_counter t "frames_trimmed" s.frames_trimmed;
  note_counter t "thunks_poisoned" s.thunks_poisoned;
  note_counter t "thunks_paused" s.thunks_paused;
  note_counter t "catches" s.catches;
  note_counter t "collections" s.collections;
  note_counter t "async_delivered" s.async_delivered;
  note_counter t "brackets_entered" s.brackets_entered;
  note_counter t "timeouts_fired" s.timeouts_fired;
  note_counter t "masked_sections" s.masked_sections;
  note_counter t "env_lookups" s.env_lookups;
  note_counter t "slot_reads" s.slot_reads;
  note_counter t "throwtos_delivered" s.throwtos_delivered;
  note_counter t "blocked_recoveries" s.blocked_recoveries

let note_io_counters t (c : Semantics.Iosem.counters) =
  note_counter t "io.async_delivered" c.async_delivered;
  note_counter t "io.brackets_entered" c.brackets_entered;
  note_counter t "io.timeouts_fired" c.timeouts_fired;
  note_counter t "io.masked_sections" c.masked_sections;
  note_counter t "io.retries" c.retries;
  note_counter t "io.throwtos_delivered" c.throwtos_delivered;
  note_counter t "io.blocked_recoveries" c.blocked_recoveries

let kinds_hit t =
  Array.fold_left (fun n c -> if c > 0 then n + 1 else n) 0 t.counts

let buckets_seen t = Hashtbl.length t.buckets
let signature t = (kinds_hit t, buckets_seen t)

(* lint-fail is a failure kind: a healthy campaign must never record
   it, so it does not count against (or toward) expected coverage. *)
let expected_in_clean_run k = k <> 17
let n_expected = n_kinds - 1

let kind_coverage t =
  let hit =
    Array.to_list t.counts
    |> List.filteri (fun k _ -> expected_in_clean_run k)
    |> List.fold_left (fun n c -> if c > 0 then n + 1 else n) 0
  in
  float_of_int hit /. float_of_int n_expected

let missing_kinds t =
  List.filteri
    (fun k _ -> expected_in_clean_run k && t.counts.(k) = 0)
    (List.init n_kinds kind_name)

let kind_counts t = List.init n_kinds (fun k -> (kind_name k, t.counts.(k)))

let pp ppf t =
  Fmt.pf ppf "event kinds: %d/%d (%.0f%%); stats buckets: %d@." (kinds_hit t)
    n_kinds
    (100. *. kind_coverage t)
    (buckets_seen t);
  List.iter
    (fun (name, c) ->
      Fmt.pf ppf "  %-12s %s@." name
        (if c = 0 then "MISSING" else string_of_int c))
    (kind_counts t)
