open Lang.Syntax
module B = Lang.Builder
module Rules = Transform.Rules
module Rewrite = Transform.Rewrite
module Refine = Transform.Refine
module Denot = Semantics.Denot
module Fixed = Semantics.Fixed
module Exn_set = Semantics.Exn_set
module V = Semantics.Sem_value
module Strictness = Analysis.Strictness

type tally = { mutable applied : int; mutable witnessed : int }

type state = (string, tally) Hashtbl.t

let create () : state = Hashtbl.create 64

let tally (st : state) name =
  match Hashtbl.find_opt st name with
  | Some t -> t
  | None ->
      let t = { applied = 0; witnessed = 0 } in
      Hashtbl.add st name t;
      t

type violation = {
  oracle : string;
  lhs : expr;
  rhs : expr;
  detail : string;
}

let pp_violation ppf v =
  Fmt.pf ppf "[%s] %s@.  lhs: %a@.  rhs: %a" v.oracle v.detail
    Lang.Pretty.pp_expr v.lhs Lang.Pretty.pp_expr v.rhs

(* A [DBad All] anywhere in a forced result means some component hit the
   approximation's bottom (fuel, black hole): at that approximation the
   side is below its true denotation, so equality obligations do not
   apply — only the refinement direction remains checkable, and we skip
   rather than risk flagging a fuel artefact. *)
let rec contains_bottom = function
  | V.DBad s -> Exn_set.is_all s
  | V.DCon (_, ds) -> List.exists contains_bottom ds
  | V.DInt _ | V.DChar _ | V.DString _ | V.DFun | V.DCut -> false

let outcome_bottom = function
  | Fixed.Diverged -> true
  | Fixed.Value d -> contains_bottom d
  | Fixed.Raised _ -> false

let check_pure ?(config = Denot.default_config) ?(depth = 24) (st : state) t =
  let violations = ref [] in
  let flag oracle lhs rhs detail =
    violations := { oracle; lhs; rhs; detail } :: !violations
  in
  let wrap = Lang.Prelude.wrap in
  let w = wrap t in
  let run e = Denot.run_deep ~config ~depth e in
  let runf e = Fixed.run_deep ~fuel:config.Denot.fuel ~depth Fixed.Left_to_right e in
  let dl = run w in
  let fl = lazy (runf w) in
  (* --- the rule catalogue ------------------------------------------ *)
  List.iter
    (fun (r : Rules.rule) ->
      match Rewrite.first_site r.Rules.applies t with
      | None -> ()
      | Some t' ->
          let w' = wrap t' in
          let dr = run w' in
          let bottomed = contains_bottom dl || contains_bottom dr in
          let v = Refine.compare_deep dl dr in
          let name_imp = r.Rules.name ^ "@imprecise" in
          let ta = tally st name_imp in
          ta.applied <- ta.applied + 1;
          (match r.Rules.imprecise with
          | Rules.Identity ->
              if (not bottomed) && not (Refine.verdict_equal v Refine.Equal)
              then
                flag name_imp t t'
                  (Fmt.str "claimed identity, observed %a: %a vs %a"
                     Refine.pp_verdict v V.pp_deep dl V.pp_deep dr)
          | Rules.Refinement ->
              if
                (not bottomed)
                && not
                     (Refine.verdict_equal v Refine.Equal
                     || Refine.verdict_equal v Refine.Refines)
              then
                flag name_imp t t'
                  (Fmt.str "claimed refinement, observed %a: %a vs %a"
                     Refine.pp_verdict v V.pp_deep dl V.pp_deep dr)
          | Rules.Invalid -> (
              match v with
              | Refine.Refined_by | Refine.Incomparable ->
                  ta.witnessed <- ta.witnessed + 1
              | Refine.Equal | Refine.Refines -> ()));
          let fo = Lazy.force fl and fo' = runf w' in
          let fbottom = outcome_bottom fo || outcome_bottom fo' in
          let name_fix = r.Rules.name ^ "@fixed" in
          let tf = tally st name_fix in
          tf.applied <- tf.applied + 1;
          let feq = Fixed.outcome_equal fo fo' in
          (match r.Rules.fixed_order with
          | Rules.Identity ->
              if (not fbottom) && not feq then
                flag name_fix t t'
                  (Fmt.str "claimed fixed-order identity, observed %a vs %a"
                     Fixed.pp_outcome fo Fixed.pp_outcome fo')
          | Rules.Refinement ->
              if
                (not fbottom)
                && not
                     (V.deep_leq (Fixed.outcome_to_deep fo)
                        (Fixed.outcome_to_deep fo'))
              then
                flag name_fix t t'
                  (Fmt.str "claimed fixed-order refinement, observed %a vs %a"
                     Fixed.pp_outcome fo Fixed.pp_outcome fo')
          | Rules.Invalid ->
              if not feq then tf.witnessed <- tf.witnessed + 1))
    Rules.all;
  (* --- seq-insert: strictness-driven [seq] is preserve-or-refine --- *)
  (let seq_site = function
     | Let (x, e1, body)
       when Lang.Subst.String_set.mem x
              (Strictness.demanded Strictness.empty_sigs body) ->
         Some (Let (x, e1, B.seq (Var x) body))
     | _ -> None
   in
   match Rewrite.first_site seq_site t with
   | None -> ()
   | Some t' ->
       let ta = tally st "seq-insert" in
       ta.applied <- ta.applied + 1;
       let dr = run (wrap t') in
       if not (contains_bottom dl || contains_bottom dr) then
         let v = Refine.compare_deep dl dr in
         if
           not
             (Refine.verdict_equal v Refine.Equal
             || Refine.verdict_equal v Refine.Refines)
         then
           flag "seq-insert" t t'
             (Fmt.str "seq insertion observed %a: %a vs %a" Refine.pp_verdict
                v V.pp_deep dl V.pp_deep dr));
  (* --- widen-plus: S⟦t + raise E⟧ = S⟦t⟧ ∪ {E} exactly ------------- *)
  (let exn = Lang.Exn.Assertion_failed "widen" in
   let expected =
     match dl with
     | V.DInt _ -> Some (V.DBad (Exn_set.singleton exn))
     | V.DBad s when not (Exn_set.is_all s) ->
         Some (V.DBad (Exn_set.union s (Exn_set.singleton exn)))
     | _ -> None
   in
   match expected with
   | None -> ()
   | Some expected ->
       let t' = B.(t + raise_exn exn) in
       let ta = tally st "widen-plus" in
       ta.applied <- ta.applied + 1;
       let dr = run (wrap t') in
       if not (V.deep_equal dr expected) then
         flag "widen-plus" t t'
           (Fmt.str "expected %a, got %a" V.pp_deep expected V.pp_deep dr));
  (* --- roundtrip: parse (pretty t) = t up to alpha ----------------- *)
  (let ta = tally st "roundtrip" in
   ta.applied <- ta.applied + 1;
   let printed = Lang.Pretty.expr_to_string t in
   match Lang.Parser.parse_expr printed with
   | t2 ->
       if not (Lang.Subst.alpha_equal t t2) then
         flag "roundtrip" t t2
           (Fmt.str "pretty/parse changed the term: %s" printed)
   | exception Lang.Parser.Error (msg, line, col) ->
       flag "roundtrip" t t
         (Printf.sprintf "pretty output fails to parse at %d:%d: %s (%s)"
            line col msg printed));
  (* --- pipeline: every pass linted, and the optimiser may only gain
     information ---------------------------------------------------- *)
  (let ta = tally st "pipeline" in
   ta.applied <- ta.applied + 1;
   match Transform.Pipeline.optimize Transform.Pipeline.Imprecise w with
   | opt, _report ->
       if not (Lang.Syntax.equal opt w) then
         let dr = run opt in
         if not (V.deep_leq dl dr) then
           flag "pipeline" t opt
             (Fmt.str "optimised term lost information: %a vs %a" V.pp_deep
                dl V.pp_deep dr)
   | exception Transform.Lint.Lint_error { pass; violations = lvs; _ } ->
       flag "pipeline-lint" t t
         (Fmt.str "lint rejected pass %s: %a" pass
            Fmt.(list ~sep:(any "; ") Transform.Lint.pp_violation)
            lvs));
  List.rev !violations

let summary (st : state) =
  Hashtbl.fold (fun name t acc -> (name, t.applied, t.witnessed) :: acc) st []
  |> List.sort (fun (a, _, _) (b, _, _) -> String.compare a b)

let unwitnessed (st : state) =
  List.concat_map
    (fun (r : Rules.rule) ->
      let check design claimed =
        if not (Rules.status_equal claimed Rules.Invalid) then []
        else
          let name = r.Rules.name ^ "@" ^ design in
          match Hashtbl.find_opt st name with
          | Some t when t.witnessed > 0 -> []
          | _ -> [ name ]
      in
      check "imprecise" r.Rules.imprecise @ check "fixed" r.Rules.fixed_order)
    Rules.all
