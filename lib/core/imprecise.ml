(** The public face of the library: one module that re-exports every layer
    and provides the high-level entry points a user needs to parse,
    evaluate, perform, optimise and compare programs under the paper's
    semantics and its baselines.

    {1 Layers}

    - {!Syntax}, {!Parser}, {!Pretty}, {!Prelude}: the lazy mini-Haskell of
      Figure 1 (extended), its concrete syntax and standard library.
    - {!Exn}, {!Exn_set}, {!Value}, {!Denot}: the imprecise denotational
      semantics with exception sets (Section 4).
    - {!Io}, {!Oracle}: the operational IO layer (Section 4.4, 5.1).
    - {!Obs}: the flight recorder — structured transition tracing and
      exception provenance shared by every machine and IO layer.
    - {!Resolve}, {!Machine}, {!Machine_io}, {!Stats}: the compile-to-slots
      pass and the stack-trimming implementation (Section 3.3);
      {!Machine_ref} is the name-based baseline it is measured against.
    - {!Bytecode}: the flat bytecode backend — the resolved IR compiled
      to a contiguous instruction array with superinstructions and
      per-case-site inline caches; same machine contract, multi-x
      faster.
    - {!Fixed}, {!Exval}: the rejected baseline designs (Sections 2, 3.4).
    - {!Strictness}, {!Effects}: the analyses.
    - {!Rules}, {!Refine}, {!Laws}, {!Pipeline}: the transformation
      algebra (Section 4.5).
    - {!Infer}: Hindley–Milner type inference (the paper assumes typed
      programs; this checks them).
    - {!Gen}: random well-typed term generation for testing.
    - {!Fuzz} (with {!Coverage}, {!Corpus}, {!Metamorph}, {!Differ}): the
      coverage-guided metamorphic differential fuzzer over all six
      evaluators.
    - {!Serve}: evaluation-as-a-service — the quota-enforcing,
      degrade-gracefully engine behind [impexn serve], with its
      compiled-program cache. *)

module Syntax = Lang.Syntax
module Token = Lang.Token
module Lexer = Lang.Lexer
module Parser = Lang.Parser
module Pretty = Lang.Pretty
module Prelude = Lang.Prelude
module Builder = Lang.Builder
module Subst = Lang.Subst
module Prim = Lang.Prim
module Con_info = Lang.Con_info
module Exn = Lang.Exn
module Obs = Obs
module Exn_set = Semantics.Exn_set
module Value = Semantics.Sem_value
module Denot = Semantics.Denot
module Io = Semantics.Iosem
module Conc = Semantics.Conc
module Oracle = Semantics.Oracle
module Fixed = Semantics.Fixed
module Exval = Semantics.Exval
module Resolve = Lang.Resolve
module Machine_io = Machine.Machine_io
module Machine_conc = Machine.Machine_conc
module Stats = Machine.Stats
module Machine_ref = Machine.Stg_ref
module Bytecode = Machine.Bytecode
module Machine = Machine.Stg
module Strictness = Analysis.Strictness
module Effects = Analysis.Exn_analysis
module Faultinject = Analysis.Faultinject
module Rules = Transform.Rules
module Refine = Transform.Refine
module Laws = Transform.Laws
module Pipeline = Transform.Pipeline
module Lint = Transform.Lint
module Rewrite = Transform.Rewrite
module Gen = Gen.Gen_term
module Infer = Types.Infer
module Coverage = Fuzz.Coverage
module Corpus = Fuzz.Corpus
module Metamorph = Fuzz.Metamorph
module Differ = Fuzz.Differ
module Fuzz = Fuzz.Engine
module Serve = Serve

(** {1 High-level API} *)

exception Parse_error of string
(** Raised by {!parse} and {!parse_program} with a located message. *)

(** Parse one expression (without the Prelude). *)
let parse_raw src =
  try Lang.Parser.parse_expr src
  with Lang.Parser.Error (msg, line, col) ->
    raise (Parse_error (Printf.sprintf "%d:%d: %s" line col msg))

(** Parse one expression and close it under the Prelude. *)
let parse src = Lang.Prelude.wrap (parse_raw src)

(** Parse a whole program (a series of declarations defining [main]) and
    close it under the Prelude. *)
let parse_program src =
  try Lang.Prelude.wrap_program (Lang.Parser.parse_program src)
  with Lang.Parser.Error (msg, line, col) ->
    raise (Parse_error (Printf.sprintf "%d:%d: %s" line col msg))

(** Evaluate a closed expression with the imprecise denotational semantics
    and force the result deeply. *)
let eval ?config ?depth e = Semantics.Denot.run_deep ?config ?depth e

(** Evaluate source text: [eval_string "1/0 + error \"Urk\""]. *)
let eval_string ?config ?depth src = eval ?config ?depth (parse src)

(** The exception set [S⟦e⟧] of a closed expression ([∅] for normal
    values). *)
let exception_set ?config e = Semantics.Denot.exception_set ?config e

(** Run a closed [IO] expression under the operational semantics
    (Section 4.4). *)
let run_io ?config ?oracle ?trace ?input ?async e =
  Semantics.Iosem.run ?config ?oracle ?trace ?input ?async e

(** Run a closed [IO] expression on the abstract machine. *)
let run_io_machine ?config ?trace ?input ?async e =
  Machine_io.run ?config ?trace ?input ?async e

(** Evaluate on the abstract machine (pure, deep) and return the value
    with the machine's cost counters. *)
let eval_machine ?config ?depth e = Machine.run_deep ?config ?depth e

(** [getException e] as a one-shot convenience: evaluate under a catch and
    return either the WHNF-forced deep value or the caught exception. *)
let try_eval ?config e =
  let m = Machine.create ?config () in
  let a = Machine.alloc m e in
  match Machine.force_catch m a with
  | Ok _ -> Ok (Machine.deep m a)
  | Error (Machine.Fail_exn exn) | Error (Machine.Fail_async exn) ->
      Error (Some exn)
  | Error Machine.Fail_diverged -> Error None

(** Pretty-print a term. *)
let to_string = Lang.Pretty.expr_to_string

(** Infer the type of source text under the Prelude. *)
let typecheck src = Types.Infer.check_string src
