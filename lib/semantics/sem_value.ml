module Exn = Lang.Exn

type whnf = Ok_v of value | Bad of Exn_set.t

and value =
  | VInt of int
  | VChar of char
  | VString of string
  | VCon of string * thunk list
  | VFun of (thunk -> whnf)

and thunk = { mutable state : state }
and state = Forced of whnf | Delayed of (unit -> whnf) | Busy

let delay f = { state = Delayed f }

let delay_self f =
  let rec t = { state = Delayed (fun () -> f t) } in
  t
let from_whnf w = { state = Forced w }

let force t =
  match t.state with
  | Forced w -> w
  | Busy ->
      (* A cyclic demand: the thunk's value depends on itself strictly,
         i.e. a black hole. Denotationally this is bottom = Bad All. We do
         not memoize Bad All here: an enclosing [Fix] unrolling may still
         complete and overwrite the state with the real value. *)
      Bad Exn_set.bottom
  | Delayed f ->
      t.state <- Busy;
      let w = try f () with Stack_overflow -> Bad Exn_set.bottom in
      t.state <- Forced w;
      w

let s_of = function Ok_v _ -> Exn_set.empty | Bad s -> s

let bad_all = Bad Exn_set.bottom
let bad e = Bad (Exn_set.singleton e)
let bad_empty = Bad Exn_set.empty

(* Shared provenance registry for the denotational layer: every labelled
   raise site deposits the origin of its exception here, keyed by the
   exception constant (most recent raise wins), so [getException]'s
   chosen member can be printed with where it came from. Denotational
   evaluation has no step counter or stack depth, so origins carry the
   label only. *)
let provenance : Obs.provenance = Obs.new_provenance ()

let bad_at ~label e =
  Obs.set_origin provenance e (Obs.origin ~label ~depth:0 ~step:0);
  Bad (Exn_set.singleton e)

let pp_exn_with_origin ppf e = Obs.pp_exn_with provenance ppf e
let vint n = Ok_v (VInt n)

let vcon0 c = Ok_v (VCon (c, []))

let vbool b = vcon0 (if b then Lang.Syntax.c_true else Lang.Syntax.c_false)

let exn_to_value (e : Exn.t) =
  let name = Exn.constructor_name e in
  match Exn.payload e with
  | Some (Exn.P_string s) ->
      Ok_v (VCon (name, [ from_whnf (Ok_v (VString s)) ]))
  | Some (Exn.P_int n) -> Ok_v (VCon (name, [ from_whnf (Ok_v (VInt n)) ]))
  | None -> vcon0 name

let exn_of_whnf (w : whnf) : (Exn.t, whnf) result =
  match w with
  | Bad _ -> Error w
  | Ok_v (VCon (name, args)) -> (
      let payload =
        match args with
        | [] -> Ok None
        | [ t ] -> (
            match force t with
            | Ok_v (VString s) -> Ok (Some (Exn.P_string s))
            | Ok_v (VInt n) -> Ok (Some (Exn.P_int n))
            | Ok_v _ ->
                Result.Error
                  (Bad
                     (Exn_set.singleton
                        (Exn.Type_error "exception payload is not a string")))
            | Bad _ as b -> Result.Error b)
        | _ :: _ :: _ ->
            Result.Error
              (Bad
                 (Exn_set.singleton
                    (Exn.Type_error "exception constructor arity")))
      in
      match payload with
      | Result.Error e -> Error e
      | Ok p -> (
          match Exn.of_constructor_p name p with
          | Some e -> Ok e
          | None ->
              Error
                (Bad
                   (Exn_set.singleton
                      (Exn.Type_error
                         (Printf.sprintf "%s is not an exception constructor"
                            name))))))
  | Ok_v _ ->
      Error
        (Bad (Exn_set.singleton (Exn.Type_error "raise: not an exception")))

type deep =
  | DInt of int
  | DChar of char
  | DString of string
  | DCon of string * deep list
  | DFun
  | DBad of Exn_set.t
  | DCut

let rec deep_of_whnf ?(depth = 64) (w : whnf) : deep =
  if depth <= 0 then DCut
  else
    match w with
    | Bad s -> DBad s
    | Ok_v (VInt n) -> DInt n
    | Ok_v (VChar c) -> DChar c
    | Ok_v (VString s) -> DString s
    | Ok_v (VFun _) -> DFun
    | Ok_v (VCon (c, args)) ->
        DCon (c, List.map (fun t -> deep_force ~depth:(depth - 1) t) args)

and deep_force ?(depth = 64) t = deep_of_whnf ~depth (force t)

let rec deep_equal a b =
  match (a, b) with
  | DInt x, DInt y -> x = y
  | DChar x, DChar y -> x = y
  | DString x, DString y -> String.equal x y
  | DCon (c1, a1), DCon (c2, a2) ->
      String.equal c1 c2
      && List.length a1 = List.length a2
      && List.for_all2 deep_equal a1 a2
  | DFun, DFun -> true
  | DBad s1, DBad s2 -> Exn_set.equal s1 s2
  | DCut, DCut -> true
  | ( (DInt _ | DChar _ | DString _ | DCon _ | DFun | DBad _ | DCut),
      (DInt _ | DChar _ | DString _ | DCon _ | DFun | DBad _ | DCut) ) ->
      false

let rec deep_leq a b =
  match (a, b) with
  | DBad s, _ when Exn_set.is_all s -> true
  | DBad s1, DBad s2 -> Exn_set.leq s1 s2
  | DCon (c1, a1), DCon (c2, a2) ->
      String.equal c1 c2
      && List.length a1 = List.length a2
      && List.for_all2 deep_leq a1 a2
  | DCut, _ | _, DCut ->
      (* A cut-off carries no information either way; treat it as
         compatible so that depth-bounded comparison is conservative
         towards "related". *)
      true
  | (DInt _ | DChar _ | DString _ | DFun), _ -> deep_equal a b
  | DBad _, (DInt _ | DChar _ | DString _ | DCon _ | DFun) -> false
  | DCon _, (DInt _ | DChar _ | DString _ | DFun | DBad _) -> false

let rec pp_deep ppf = function
  | DInt n -> Fmt.int ppf n
  | DChar c -> Fmt.pf ppf "%C" c
  | DString s -> Fmt.pf ppf "%S" s
  | DCon (c, []) -> Fmt.string ppf c
  | DCon (c, args) ->
      Fmt.pf ppf "(%s %a)" c Fmt.(list ~sep:sp pp_deep) args
  | DFun -> Fmt.string ppf "<fun>"
  | DBad s -> Fmt.pf ppf "Bad %a" Exn_set.pp s
  | DCut -> Fmt.string ppf "..."

let pp_whnf ppf w = pp_deep ppf (deep_of_whnf ~depth:6 w)
