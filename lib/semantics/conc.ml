open Lang.Syntax
open Sem_value
module Exn = Lang.Exn

type event =
  | E_write of int * char
  | E_read of int * char
  | E_fork of int * int
  | E_block of int
  | E_wake of int
  | E_thread_done of int
  | E_thread_died of int * Exn.t
  | E_async of int * Exn.t
  | E_sleep of int * int
  | E_throwto of int * int * Exn.t

type outcome =
  | Done of deep
  | Uncaught of Exn.t
  | Deadlock
  | Diverged
  | Stuck of string

type result = {
  trace : event list;
  outcome : outcome;
  threads_spawned : int;
  context_switches : int;
  counters : Iosem.counters;
}

let pp_event ppf = function
  | E_write (t, c) -> Fmt.pf ppf "t%d!%C" t c
  | E_read (t, c) -> Fmt.pf ppf "t%d?%C" t c
  | E_fork (p, c) -> Fmt.pf ppf "t%d forks t%d" p c
  | E_block t -> Fmt.pf ppf "t%d blocks" t
  | E_wake t -> Fmt.pf ppf "t%d wakes" t
  | E_thread_done t -> Fmt.pf ppf "t%d done" t
  | E_thread_died (t, e) -> Fmt.pf ppf "t%d died: %a" t Exn.pp e
  | E_async (t, e) -> Fmt.pf ppf "t%d async %a" t Exn.pp e
  | E_sleep (t, until) -> Fmt.pf ppf "t%d sleeps until %d" t until
  | E_throwto (s, d, e) -> Fmt.pf ppf "t%d throws %a to t%d" s Exn.pp e d

let pp_outcome ppf = function
  | Done d -> Fmt.pf ppf "Done %a" pp_deep d
  | Uncaught e -> Fmt.pf ppf "Uncaught %a" Exn.pp e
  | Deadlock -> Fmt.string ppf "Deadlock"
  | Diverged -> Fmt.string ppf "Diverged"
  | Stuck msg -> Fmt.pf ppf "Stuck %S" msg

(* Thread and MVar bookkeeping. *)

(* Same IO continuation frames as {!Iosem}, one stack per thread. *)
type frame =
  | F_k of thunk
  | F_bracket of thunk * thunk
  | F_release of thunk
  | F_onexn of thunk
  | F_mask_pop
  | F_unmask_pop
  | F_timeout of int
  | F_retry of thunk * int * int
  | F_rethrow of Exn.t
  | F_restore of thunk
  | F_catch
      (** [getException] on an IO action (GHC's [try]): a normal result
          pops as [OK v], an unwinding exception — including one
          delivered while the thread is blocked — stops here as [Bad]. *)

type thread_state =
  | Runnable of thunk * frame list  (** IO value, continuation frames *)
  | Blocked_take of int * frame list
  | Blocked_put of int * thunk * frame list
      (** mvar, value to deposit, frames *)
  | Sleeping of int * thunk * frame list
      (** Wake at the given clock tick and re-perform the action
          ([Retry]'s deterministic backoff). *)
  | Finished

type thread = {
  tid : int;
  mutable state : thread_state;
  mutable mask : int;
  mutable pending_exns : Exn.t list;
      (** Thread-targeted asynchronous exceptions ([throwTo], kill
          schedules), FIFO, delivered only while [mask = 0]. *)
}

type mvar = {
  mutable contents : thunk option;
  mutable take_waiters : int list;  (** FIFO: oldest last *)
  mutable put_waiters : int list;
}

let mvar_con = "MVarRef"

let run ?(config = Denot.default_config) ?(oracle = Oracle.first ())
    ?(trace = Obs.create ()) ?(input = "") ?(async = []) ?(kills = [])
    ?(max_steps = 200_000) (e : expr) =
  let tr = trace in
  let trace_rev = ref [] in
  let emit ev = trace_rev := ev :: !trace_rev in
  let threads : thread list ref = ref [] in
  let next_tid = ref 0 in
  let spawned = ref 0 in
  let switches = ref 0 in
  let clock = ref 0 in
  let pending = ref async in
  let counters = Iosem.fresh_counters () in
  let mvars : (int, mvar) Hashtbl.t = Hashtbl.create 8 in
  let next_mvar = ref 0 in
  let input_pos = ref 0 in
  let main_result : outcome option ref = ref None in

  let kills = ref kills in
  let new_thread m_thunk frames =
    let tid = !next_tid in
    incr next_tid;
    incr spawned;
    let t =
      { tid; state = Runnable (m_thunk, frames); mask = 0; pending_exns = [] }
    in
    threads := !threads @ [ t ];
    t
  in

  let fuel_handle = Denot.handle config in
  let main_thread =
    new_thread
      (delay (fun () -> Denot.eval_in fuel_handle Denot.empty_env e))
      []
  in

  let return_thunk w = from_whnf (Ok_v (VCon (c_return, [ from_whnf w ]))) in

  let apply f_thunk arg =
    delay (fun () ->
        match force f_thunk with
        | Ok_v (VFun f) -> f arg
        | Ok_v _ ->
            Bad (Exn_set.singleton (Exn.Type_error "applied a non-function"))
        | Bad s -> Bad s)
  in

  (* See {!Iosem}: the oracle pick, recorded with the un-chosen rest. *)
  let pick s =
    let x = Oracle.pick_exception oracle s in
    if Obs.on tr then begin
      let unchosen =
        match Exn_set.elements s with
        | None -> []
        | Some es -> List.filter (fun e -> e <> x) es
      in
      Obs.record tr (Obs.Ev_oracle_pick (x, unchosen))
    end;
    x
  in
  let enter_mask t =
    t.mask <- t.mask + 1;
    counters.masked_sections <- counters.masked_sections + 1;
    if Obs.on tr then Obs.record tr Obs.Ev_mask_push
  in
  let leave_mask t =
    t.mask <- max 0 (t.mask - 1);
    if Obs.on tr then Obs.record tr Obs.Ev_mask_pop
  in

  let pending_async (t : thread) =
    if t.mask > 0 then None
    else
      match !pending with
      | (k, x) :: rest when !clock >= k ->
          pending := rest;
          Some x
      | _ -> None
  in

  let finish (t : thread) (value : thunk) =
    emit (E_thread_done t.tid);
    if t.tid = main_thread.tid then
      main_result := Some (Done (deep_force ~depth:64 value));
    t.state <- Finished
  in

  let die (t : thread) (exn : Exn.t) =
    if t.tid = main_thread.tid then main_result := Some (Uncaught exn)
    else emit (E_thread_died (t.tid, exn));
    t.state <- Finished
  in

  (* Normal return [v] through thread [t]'s frames; installs the next
     runnable action (or finishes the thread). *)
  let rec pop_t (t : thread) (v : thunk) (stack : frame list) : unit =
    match stack with
    | [] -> finish t v
    | F_k k :: rest -> (
        match force k with
        | Ok_v (VFun f) -> t.state <- Runnable (delay (fun () -> f v), rest)
        | Ok_v _ -> main_result := Some (Stuck ">>=: not a function")
        | Bad s -> unwind_t t (pick s) rest)
    | F_bracket (rel, use) :: rest ->
        counters.brackets_entered <- counters.brackets_entered + 1;
        if Obs.on tr then Obs.record tr Obs.Ev_acquire;
        leave_mask t;
        t.state <- Runnable (apply use v, F_release (apply rel v) :: rest)
    | F_release r :: rest ->
        counters.brackets_released <- counters.brackets_released + 1;
        if Obs.on tr then Obs.record tr Obs.Ev_release;
        enter_mask t;
        t.state <- Runnable (r, F_mask_pop :: F_restore v :: rest)
    | F_onexn _ :: rest -> pop_t t v rest
    | F_mask_pop :: rest ->
        leave_mask t;
        pop_t t v rest
    | F_unmask_pop :: rest ->
        t.mask <- t.mask + 1;
        pop_t t v rest
    | F_timeout _ :: rest ->
        pop_t t (from_whnf (Ok_v (VCon (c_just, [ v ])))) rest
    | F_retry _ :: rest -> pop_t t v rest
    | F_rethrow e :: rest -> unwind_t t e rest
    | F_restore saved :: rest -> pop_t t saved rest
    | F_catch :: rest ->
        if Obs.on tr then Obs.record tr (Obs.Ev_catch None);
        pop_t t (from_whnf (Ok_v (VCon (c_ok, [ v ])))) rest

  (* Exceptional return through [t]'s frames: run releases and handlers,
     or kill the thread at the bottom. *)
  and unwind_t (t : thread) (e : Exn.t) (stack : frame list) : unit =
    match stack with
    | [] -> die t e
    | F_k _ :: rest -> unwind_t t e rest
    | F_bracket _ :: rest ->
        leave_mask t;
        unwind_t t e rest
    | F_release r :: rest ->
        counters.brackets_released <- counters.brackets_released + 1;
        if Obs.on tr then Obs.record tr Obs.Ev_release;
        enter_mask t;
        t.state <- Runnable (r, F_mask_pop :: F_rethrow e :: rest)
    | F_onexn h :: rest ->
        enter_mask t;
        t.state <- Runnable (h, F_mask_pop :: F_rethrow e :: rest)
    | F_mask_pop :: rest ->
        leave_mask t;
        unwind_t t e rest
    | F_unmask_pop :: rest ->
        t.mask <- t.mask + 1;
        unwind_t t e rest
    | F_timeout _ :: rest when e = Exn.Timeout ->
        pop_t t (from_whnf (Ok_v (VCon (c_nothing, [])))) rest
    | F_timeout _ :: rest -> unwind_t t e rest
    | F_retry (action, attempts, backoff) :: rest ->
        if attempts > 0 then begin
          counters.retries <- counters.retries + 1;
          let until = !clock + backoff in
          emit (E_sleep (t.tid, until));
          t.state <-
            Sleeping
              (until, action, F_retry (action, attempts - 1, 2 * backoff) :: rest)
        end
        else unwind_t t e rest
    | F_rethrow _ :: rest -> unwind_t t e rest
    | F_restore _ :: rest -> unwind_t t e rest
    | F_catch :: rest ->
        if Obs.on tr then Obs.record tr (Obs.Ev_catch (Some e));
        pop_t t
          (from_whnf (Ok_v (VCon (c_bad, [ from_whnf (exn_to_value e) ]))))
          rest
  in

  let find_thread tid = List.find (fun t -> t.tid = tid) !threads in

  let wake tid =
    let t = find_thread tid in
    (match t.state with
    | Blocked_take (mv, frames) -> (
        let m = Hashtbl.find mvars mv in
        match m.contents with
        | Some v ->
            m.contents <- None;
            emit (E_wake tid);
            t.state <- Runnable (return_thunk (force v), frames)
        | None -> () (* someone else won the race; stay blocked *))
    | Blocked_put (mv, v, frames) -> (
        let m = Hashtbl.find mvars mv in
        match m.contents with
        | None ->
            m.contents <- Some v;
            emit (E_wake tid);
            t.state <- Runnable (return_thunk (Ok_v (VCon (c_unit, []))), frames)
        | Some _ -> ())
    | Runnable _ | Sleeping _ | Finished -> ())
  in

  let find_thread_opt tid = List.find_opt (fun t -> t.tid = tid) !threads in

  (* Forget a thread that is being woken exceptionally: it no longer
     waits on any MVar. *)
  let scrub_waiters tid =
    Hashtbl.iter
      (fun _ m ->
        m.take_waiters <- List.filter (fun x -> x <> tid) m.take_waiters;
        m.put_waiters <- List.filter (fun x -> x <> tid) m.put_waiters)
      mvars
  in

  let take_pending_exn (t : thread) =
    if t.mask > 0 then None
    else
      match t.pending_exns with
      | [] -> None
      | x :: rest ->
          t.pending_exns <- rest;
          Some x
  in

  (* Thread-targeted delivery by unwinding [t]'s frames: releases and
     handlers run, an [F_catch] (getException-on-IO) stops it. *)
  let deliver_unwind (t : thread) (x : Exn.t) (frames : frame list) =
    counters.throwtos_delivered <- counters.throwtos_delivered + 1;
    if Obs.on tr then Obs.record tr (Obs.Ev_kill_delivered (t.tid, x));
    emit (E_async (t.tid, x));
    scrub_waiters t.tid;
    unwind_t t x frames
  in

  let as_mvar_id (w : whnf) : (int, string) Result.t =
    match w with
    | Ok_v (VCon (c, [ idt ])) when String.equal c mvar_con -> (
        match force idt with
        | Ok_v (VInt id) -> Result.Ok id
        | _ -> Result.Error "corrupt MVar reference")
    | _ -> Result.Error "not an MVar"
  in

  let expired (t : thread) stack =
    t.mask = 0
    && List.exists (function F_timeout d -> d <= !clock | _ -> false) stack
  in

  (* One transition for one thread. Returns [true] if it made progress. *)
  let step (t : thread) : bool =
    match t.state with
    | Finished | Blocked_take _ | Blocked_put _ | Sleeping _ -> false
    | Runnable (m_thunk, frames) -> (
        incr switches;
        incr clock;
        (* Fresh per-transition budget; see Iosem. *)
        Denot.refill fuel_handle;
        match take_pending_exn t with
        | Some x ->
            (* A thread-targeted exception is due (thread is unmasked).
               If the interrupted action is a [getException] it is caught
               right here — §5.1 delivery at getException; otherwise
               unwind the thread's frames (releases and handlers run). *)
            (match force m_thunk with
            | Ok_v (VCon (c, [ _ ])) when String.equal c c_get_exception ->
                counters.throwtos_delivered <-
                  counters.throwtos_delivered + 1;
                if Obs.on tr then begin
                  Obs.record tr (Obs.Ev_kill_delivered (t.tid, x));
                  Obs.record tr (Obs.Ev_catch (Some x))
                end;
                emit (E_async (t.tid, x));
                t.state <-
                  Runnable
                    ( return_thunk
                        (Ok_v (VCon (c_bad, [ from_whnf (exn_to_value x) ]))),
                      frames )
            | _ -> deliver_unwind t x frames);
            true
        | None -> (
            if expired t frames then begin
              counters.timeouts_fired <- counters.timeouts_fired + 1;
              if Obs.on tr then Obs.record tr (Obs.Ev_io "timeout fired");
              unwind_t t Exn.Timeout frames;
              true
            end
            else
              match force m_thunk with
          | Bad s ->
              if Oracle.diverge_on_non_termination oracle s then begin
                main_result := Some Diverged;
                true
              end
              else begin
                unwind_t t (pick s) frames;
                true
              end
          | Ok_v (VCon (c, [ v ])) when String.equal c c_return ->
              pop_t t v frames;
              true
          | Ok_v (VCon (c, [ m1; k ])) when String.equal c c_bind ->
              t.state <- Runnable (m1, F_k k :: frames);
              true
          | Ok_v (VCon (c, [])) when String.equal c c_get_char ->
              if !input_pos >= String.length input then begin
                main_result := Some (Stuck "getChar: end of input");
                true
              end
              else begin
                let ch = input.[!input_pos] in
                incr input_pos;
                emit (E_read (t.tid, ch));
                t.state <- Runnable (return_thunk (Ok_v (VChar ch)), frames);
                true
              end
          | Ok_v (VCon (c, [ v ])) when String.equal c c_put_char -> (
              match force v with
              | Ok_v (VChar ch) ->
                  emit (E_write (t.tid, ch));
                  t.state <-
                    Runnable (return_thunk (Ok_v (VCon (c_unit, []))), frames);
                  true
              | Ok_v _ ->
                  main_result := Some (Stuck "putChar: not a character");
                  true
              | Bad s ->
                  unwind_t t (pick s) frames;
                  true)
          | Ok_v (VCon (c, [ v ])) when String.equal c c_get_exception -> (
              match pending_async t with
              | Some x ->
                  counters.async_delivered <- counters.async_delivered + 1;
                  if Obs.on tr then begin
                    Obs.record tr (Obs.Ev_async x);
                    Obs.record tr (Obs.Ev_catch (Some x))
                  end;
                  emit (E_async (t.tid, x));
                  t.state <-
                    Runnable
                      ( return_thunk
                          (Ok_v (VCon (c_bad, [ from_whnf (exn_to_value x) ]))),
                        frames );
                  true
              | None -> (
                  match force v with
                  | Ok_v (VCon (cn, _)) as w when is_io_action_constructor cn
                    ->
                      (* getException of an IO action (GHC's [try]):
                         perform it under a catch frame so exceptions it
                         raises — or that are delivered to this thread
                         while it blocks — come back as [Bad]. *)
                      t.state <- Runnable (from_whnf w, F_catch :: frames);
                      true
                  | Ok_v value ->
                      if Obs.on tr then Obs.record tr (Obs.Ev_catch None);
                      t.state <-
                        Runnable
                          ( return_thunk
                              (Ok_v (VCon (c_ok, [ from_whnf (Ok_v value) ]))),
                            frames );
                      true
                  | Bad s ->
                      let x = pick s in
                      if Obs.on tr then Obs.record tr (Obs.Ev_catch (Some x));
                      t.state <-
                        Runnable
                          ( return_thunk
                              (Ok_v
                                 (VCon (c_bad, [ from_whnf (exn_to_value x) ]))),
                            frames );
                      true))
          | Ok_v (VCon (c, [ acq; rel; use ])) when String.equal c c_bracket
            ->
              enter_mask t;
              t.state <- Runnable (acq, F_bracket (rel, use) :: frames);
              true
          | Ok_v (VCon (c, [ m1; h ])) when String.equal c c_on_exception ->
              t.state <- Runnable (m1, F_onexn h :: frames);
              true
          | Ok_v (VCon (c, [ m1 ])) when String.equal c c_mask ->
              enter_mask t;
              t.state <- Runnable (m1, F_mask_pop :: frames);
              true
          | Ok_v (VCon (c, [ m1 ])) when String.equal c c_unmask ->
              leave_mask t;
              t.state <- Runnable (m1, F_unmask_pop :: frames);
              true
          | Ok_v (VCon (c, [ n; m1 ])) when String.equal c c_timeout -> (
              match force n with
              | Ok_v (VInt k) ->
                  t.state <-
                    Runnable (m1, F_timeout (!clock + max 0 k) :: frames);
                  true
              | Ok_v _ ->
                  main_result := Some (Stuck "timeout: budget is not an integer");
                  true
              | Bad s ->
                  unwind_t t (pick s) frames;
                  true)
          | Ok_v (VCon (c, [ n; b; m1 ])) when String.equal c c_retry -> (
              match (force n, force b) with
              | Ok_v (VInt attempts), Ok_v (VInt backoff) ->
                  t.state <-
                    Runnable
                      (m1, F_retry (m1, max 0 attempts, max 1 backoff) :: frames);
                  true
              | Bad s, _ | _, Bad s ->
                  unwind_t t (pick s) frames;
                  true
              | _ ->
                  main_result :=
                    Some (Stuck "retry: attempts/backoff are not integers");
                  true)
          | Ok_v (VCon (c, [ m1 ])) when String.equal c "Fork" ->
              let child = new_thread m1 [] in
              (* The child starts at the parent's mask depth: a thread
                 forked inside an acquire is born protected, so an async
                 exception cannot slip in before its own mask/bracket. *)
              child.mask <- t.mask;
              if Obs.on tr then
                Obs.record tr
                  (Obs.Ev_io (Printf.sprintf "fork thread %d" child.tid));
              emit (E_fork (t.tid, child.tid));
              t.state <-
                Runnable (return_thunk (Ok_v (VCon (c_unit, []))), frames);
              true
          | Ok_v (VCon (c, [])) when String.equal c "NewMVar" ->
              let id = !next_mvar in
              incr next_mvar;
              Hashtbl.replace mvars id
                { contents = None; take_waiters = []; put_waiters = [] };
              t.state <-
                Runnable
                  ( return_thunk
                      (Ok_v (VCon (mvar_con, [ from_whnf (Ok_v (VInt id)) ]))),
                    frames );
              true
          | Ok_v (VCon (c, [ r ])) when String.equal c "TakeMVar" -> (
              match as_mvar_id (force r) with
              | Result.Error msg ->
                  unwind_t t (Exn.Type_error msg) frames;
                  true
              | Result.Ok id -> (
                  let m = Hashtbl.find mvars id in
                  match m.contents with
                  | Some v ->
                      m.contents <- None;
                      (* a blocked putter can now deposit *)
                      (match List.rev m.put_waiters with
                      | w :: _ ->
                          m.put_waiters <-
                            List.filter (fun x -> x <> w) m.put_waiters;
                          wake w
                      | [] -> ());
                      t.state <- Runnable (return_thunk (force v), frames);
                      true
                  | None ->
                      emit (E_block t.tid);
                      m.take_waiters <- t.tid :: m.take_waiters;
                      t.state <- Blocked_take (id, frames);
                      true))
          | Ok_v (VCon (c, [ r; v ])) when String.equal c "PutMVar" -> (
              match as_mvar_id (force r) with
              | Result.Error msg ->
                  unwind_t t (Exn.Type_error msg) frames;
                  true
              | Result.Ok id -> (
                  let m = Hashtbl.find mvars id in
                  match m.contents with
                  | None ->
                      m.contents <- Some v;
                      (match List.rev m.take_waiters with
                      | w :: _ ->
                          m.take_waiters <-
                            List.filter (fun x -> x <> w) m.take_waiters;
                          wake w
                      | [] -> ());
                      t.state <-
                        Runnable
                          (return_thunk (Ok_v (VCon (c_unit, []))), frames);
                      true
                  | Some _ ->
                      emit (E_block t.tid);
                      m.put_waiters <- t.tid :: m.put_waiters;
                      t.state <- Blocked_put (id, v, frames);
                      true))
          | Ok_v (VCon (c, [])) when String.equal c "MyThreadId" ->
              t.state <-
                Runnable
                  ( return_thunk
                      (Ok_v
                         (VCon ("ThreadId", [ from_whnf (Ok_v (VInt t.tid)) ]))),
                    frames );
              true
          | Ok_v (VCon (c, [ tt; et ])) when String.equal c "ThrowTo" -> (
              match force tt with
              | Ok_v (VCon (ct, [ nt ])) when String.equal ct "ThreadId" -> (
                  match force nt with
                  | Ok_v (VInt target) -> (
                      match exn_of_whnf (force et) with
                      | Ok x ->
                          if Obs.on tr then
                            Obs.record tr (Obs.Ev_throwto (t.tid, target, x));
                          emit (E_throwto (t.tid, target, x));
                          if target = t.tid then begin
                            (* throwTo to oneself is synchronous (GHC):
                               deliver regardless of masking. *)
                            counters.throwtos_delivered <-
                              counters.throwtos_delivered + 1;
                            if Obs.on tr then
                              Obs.record tr (Obs.Ev_kill_delivered (t.tid, x));
                            emit (E_async (t.tid, x));
                            unwind_t t x frames
                          end
                          else begin
                            (match find_thread_opt target with
                            | Some tgt -> (
                                match tgt.state with
                                | Finished ->
                                    () (* dead target: send is a no-op *)
                                | _ ->
                                    tgt.pending_exns <-
                                      tgt.pending_exns @ [ x ])
                            | None -> () (* unknown target: no-op *));
                            t.state <-
                              Runnable
                                ( return_thunk (Ok_v (VCon (c_unit, []))),
                                  frames )
                          end;
                          true
                      | Error (Bad s) ->
                          unwind_t t (pick s) frames;
                          true
                      | Error _ ->
                          unwind_t t
                            (Exn.Type_error "throwTo: not an exception")
                            frames;
                          true)
                  | Ok_v _ ->
                      unwind_t t (Exn.Type_error "throwTo: not a ThreadId")
                        frames;
                      true
                  | Bad s ->
                      unwind_t t (pick s) frames;
                      true)
              | Ok_v _ ->
                  unwind_t t (Exn.Type_error "throwTo: not a ThreadId") frames;
                  true
              | Bad s ->
                  unwind_t t (pick s) frames;
                  true)
              | Ok_v _ ->
                  main_result := Some (Stuck "not an IO value");
                  true))
  in

  let wake_sleepers () =
    List.iter
      (fun t ->
        match t.state with
        | Sleeping (until, action, frames) when until <= !clock ->
            emit (E_wake t.tid);
            t.state <- Runnable (action, frames)
        | _ -> ())
      !threads
  in

  let rec scheduler steps =
    match !main_result with
    | Some o -> o
    | None ->
        if steps >= max_steps then Diverged
        else begin
          wake_sleepers ();
          (* Due kill-schedule entries become pending thread-targeted
             exceptions (the fault-injection axis; sends to finished or
             unknown threads are dropped, like a dead [throwTo]). *)
          let due, later =
            List.partition (fun (k, _, _) -> !clock >= k) !kills
          in
          kills := later;
          List.iter
            (fun (_, target, x) ->
              match find_thread_opt target with
              | Some tgt -> (
                  match tgt.state with
                  | Finished -> ()
                  | _ -> tgt.pending_exns <- tgt.pending_exns @ [ x ])
              | None -> ())
            due;
          (* Blocked and sleeping threads cannot reach a delivery point on
             their own: interrupt them here (masked threads keep their
             pending exceptions and stay blocked). *)
          List.iter
            (fun t ->
              match t.state with
              | Blocked_take (_, frames)
              | Blocked_put (_, _, frames)
              | Sleeping (_, _, frames) -> (
                  match take_pending_exn t with
                  | Some x -> deliver_unwind t x frames
                  | None -> ())
              | Runnable _ | Finished -> ())
            !threads;
          match !main_result with
          | Some o -> o
          | None ->
              let runnable =
                List.filter
                  (fun t ->
                    match t.state with Runnable _ -> true | _ -> false)
                  !threads
              in
              let sleepers =
                List.filter_map
                  (fun t ->
                    match t.state with
                    | Sleeping (until, _, _) -> Some until
                    | _ -> None)
                  !threads
              in
              if runnable = [] then
                match sleepers with
                | [] -> (
                    (* Irrecoverably blocked. Instead of giving up with a
                       global [Deadlock], deliver [BlockedIndefinitely] to
                       every unmasked blocked thread (tid order) as a
                       catchable imprecise exception and keep scheduling;
                       only when every blocked thread is masked is this a
                       true deadlock. *)
                    let victims =
                      List.filter
                        (fun t ->
                          t.mask = 0
                          &&
                          match t.state with
                          | Blocked_take _ | Blocked_put _ -> true
                          | _ -> false)
                        !threads
                    in
                    match victims with
                    | [] -> Deadlock
                    | _ :: _ ->
                        List.iter
                          (fun t ->
                            let frames =
                              match t.state with
                              | Blocked_take (_, fs) -> fs
                              | Blocked_put (_, _, fs) -> fs
                              | _ -> []
                            in
                            counters.blocked_recoveries <-
                              counters.blocked_recoveries + 1;
                            if Obs.on tr then
                              Obs.record tr (Obs.Ev_blocked_recover t.tid);
                            emit (E_async (t.tid, Exn.Blocked_indefinitely));
                            scrub_waiters t.tid;
                            unwind_t t Exn.Blocked_indefinitely frames)
                          victims;
                        scheduler (steps + 1))
                | _ :: _ ->
                    (* Nothing to run but sleepers exist: fast-forward the
                       clock to the earliest wake-up instead of
                       deadlocking. *)
                    clock := List.fold_left min max_int sleepers;
                    scheduler (steps + 1)
              else begin
                List.iter (fun t -> ignore (step t)) runnable;
                scheduler (steps + 1)
              end
        end
  in
  let outcome =
    match scheduler 0 with
    | o -> o
    | exception Stack_overflow -> Diverged
  in
  {
    trace = List.rev !trace_rev;
    outcome;
    threads_spawned = !spawned;
    context_switches = !switches;
    counters;
  }

let output_string_of r =
  let buf = Buffer.create 16 in
  List.iter
    (function
      | E_write (_, c) -> Buffer.add_char buf c
      | _ -> ())
    r.trace;
  Buffer.contents buf
