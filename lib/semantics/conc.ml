open Lang.Syntax
open Sem_value
module Exn = Lang.Exn
module Fifo = Sched.Fifo
module Bitq = Sched.Bitq
module Heap = Sched.Heap

type event =
  | E_write of int * char
  | E_read of int * char
  | E_fork of int * int
  | E_block of int
  | E_wake of int
  | E_thread_done of int
  | E_thread_died of int * Exn.t
  | E_async of int * Exn.t
  | E_sleep of int * int
  | E_throwto of int * int * Exn.t

type outcome =
  | Done of deep
  | Uncaught of Exn.t
  | Deadlock
  | Diverged
  | Stuck of string

type result = {
  trace : event list;
  outcome : outcome;
  threads_spawned : int;
  context_switches : int;
  counters : Iosem.counters;
}

let pp_event ppf = function
  | E_write (t, c) -> Fmt.pf ppf "t%d!%C" t c
  | E_read (t, c) -> Fmt.pf ppf "t%d?%C" t c
  | E_fork (p, c) -> Fmt.pf ppf "t%d forks t%d" p c
  | E_block t -> Fmt.pf ppf "t%d blocks" t
  | E_wake t -> Fmt.pf ppf "t%d wakes" t
  | E_thread_done t -> Fmt.pf ppf "t%d done" t
  | E_thread_died (t, e) -> Fmt.pf ppf "t%d died: %a" t Exn.pp e
  | E_async (t, e) -> Fmt.pf ppf "t%d async %a" t Exn.pp e
  | E_sleep (t, until) -> Fmt.pf ppf "t%d sleeps until %d" t until
  | E_throwto (s, d, e) -> Fmt.pf ppf "t%d throws %a to t%d" s Exn.pp e d

let pp_outcome ppf = function
  | Done d -> Fmt.pf ppf "Done %a" pp_deep d
  | Uncaught e -> Fmt.pf ppf "Uncaught %a" Exn.pp e
  | Deadlock -> Fmt.string ppf "Deadlock"
  | Diverged -> Fmt.string ppf "Diverged"
  | Stuck msg -> Fmt.pf ppf "Stuck %S" msg

(* Thread, MVar and channel bookkeeping. *)

(* Same IO continuation frames as {!Iosem}, one stack per thread. *)
type frame =
  | F_k of thunk
  | F_bracket of thunk * thunk
  | F_release of thunk
  | F_onexn of thunk
  | F_mask_pop
  | F_unmask_pop
  | F_timeout of int
  | F_retry of thunk * int * int
  | F_rethrow of Exn.t
  | F_restore of thunk
  | F_catch
      (** [getException] on an IO action (GHC's [try]): a normal result
          pops as [OK v], an unwinding exception — including one
          delivered while the thread is blocked — stops here as [Bad]. *)

type thread_state =
  | Runnable of thunk * frame list  (** IO value, continuation frames *)
  | Blocked_take of int * frame list
  | Blocked_put of int * thunk * frame list
      (** mvar, value to deposit, frames *)
  | Blocked_read of int * frame list  (** channel, frames *)
  | Blocked_write of int * thunk * frame list
      (** channel, value to deposit, frames *)
  | Sleeping of int * thunk * frame list
      (** Wake at the given clock tick and re-perform the action
          ([Retry]'s deterministic backoff). *)
  | Finished

type thread = {
  tid : int;
  mutable state : thread_state;
  mutable mask : int;
  mutable pending_exns : Exn.t list;
      (** Thread-targeted asynchronous exceptions ([throwTo], kill
          schedules), FIFO, delivered only while [mask = 0] (channel
          blocking is interruptible regardless of mask). *)
  mutable stamp : int;
      (** Round in which the thread last became runnable. A thread woken
          or forked mid-round carries the current round's stamp and is
          skipped by the stepping cursor — reproducing the seed
          scheduler's runnable-snapshot-per-round semantics without
          building the snapshot. *)
  mutable blocked_on : (int Fifo.t * int Fifo.node) option;
      (** The blocked-on edge: the waiter queue this thread sits in and
          its node there. Maintained incrementally, so exceptional
          wakeups detach in O(1) instead of scanning every cell. *)
}

type mvar = {
  mutable contents : thunk option;
  take_waiters : int Fifo.t;
  put_waiters : int Fifo.t;
}

(* A bounded channel: a FIFO buffer of at most [cap] elements, plus
   waiter queues for readers of an empty buffer and writers of a full
   one. Invariants (checked under the debug flag): readers wait only
   while the buffer is empty, writers only while it is full, so a wake
   never cascades. A blocked writer's element lives in its thread state,
   not the buffer, until the deposit actually happens — killing a
   blocked writer can therefore never lose a buffered element. *)
type chan = {
  cap : int;
  buf : thunk Queue.t;
  readers : int Fifo.t;
  writers : int Fifo.t;
}

let mvar_con = "MVarRef"
let chan_con = "ChanRef"

let debug_default () = Sys.getenv_opt "IMPEXN_SCHED_DEBUG" <> None

let run ?(config = Denot.default_config) ?(oracle = Oracle.first ())
    ?(trace = Obs.create ()) ?(input = "") ?(async = []) ?(kills = [])
    ?(check_invariants = debug_default ()) ?(max_steps = 200_000) (e : expr)
    =
  let tr = trace in
  let trace_rev = ref [] in
  let emit ev = trace_rev := ev :: !trace_rev in
  let threads : (int, thread) Hashtbl.t = Hashtbl.create 64 in
  let next_tid = ref 0 in
  let spawned = ref 0 in
  let switches = ref 0 in
  let clock = ref 0 in
  let round = ref 0 in
  let pending = ref async in
  let counters = Iosem.fresh_counters () in
  let mvars : (int, mvar) Hashtbl.t = Hashtbl.create 8 in
  let next_mvar = ref 0 in
  let chans : (int, chan) Hashtbl.t = Hashtbl.create 8 in
  let next_chan = ref 0 in
  let input_pos = ref 0 in
  let main_result : outcome option ref = ref None in

  (* The scheduler indices. [runq] holds exactly the Runnable tids,
     [blockedq] exactly the Blocked_* tids, [signaled] the blocked or
     sleeping tids that may have a deliverable pending exception;
     sleepers sit in a (wake_at, tid) min-heap with lazy deletion. *)
  let runq = Bitq.create () in
  let blockedq = Bitq.create () in
  let signaled = Bitq.create () in
  let sleep_heap = Heap.create () in
  let n_sleeping = ref 0 in

  let find_thread tid = Hashtbl.find threads tid in
  let find_thread_opt tid = Hashtbl.find_opt threads tid in

  (* Every state change goes through here so the indices stay exact:
     leaving a state retires its index entry (including the blocked-on
     edge — this is the O(1) replacement for scrubbing every MVar), and
     entering one installs it. *)
  let set_state (t : thread) (st : thread_state) =
    (match t.state with
    | Runnable _ -> Bitq.remove runq t.tid
    | Blocked_take _ | Blocked_put _ | Blocked_read _ | Blocked_write _ ->
        Bitq.remove blockedq t.tid;
        (match t.blocked_on with
        | Some (q, n) -> Fifo.remove q n
        | None -> ());
        t.blocked_on <- None
    | Sleeping _ -> decr n_sleeping
    | Finished -> ());
    t.state <- st;
    match st with
    | Runnable _ ->
        Bitq.add runq t.tid;
        t.stamp <- !round
    | Blocked_take _ | Blocked_put _ | Blocked_read _ | Blocked_write _ ->
        Bitq.add blockedq t.tid;
        if t.pending_exns <> [] then Bitq.add signaled t.tid
    | Sleeping (until, _, _) ->
        incr n_sleeping;
        Heap.push sleep_heap until t.tid;
        if t.pending_exns <> [] then Bitq.add signaled t.tid
    | Finished -> ()
  in

  let kills = ref kills in
  let new_thread m_thunk frames =
    let tid = !next_tid in
    incr next_tid;
    incr spawned;
    let t =
      {
        tid;
        state = Finished;
        mask = 0;
        pending_exns = [];
        stamp = 0;
        blocked_on = None;
      }
    in
    Hashtbl.replace threads tid t;
    set_state t (Runnable (m_thunk, frames));
    t
  in

  let fuel_handle = Denot.handle config in
  let main_thread =
    new_thread
      (delay (fun () -> Denot.eval_in fuel_handle Denot.empty_env e))
      []
  in

  let return_thunk w = from_whnf (Ok_v (VCon (c_return, [ from_whnf w ]))) in

  let apply f_thunk arg =
    delay (fun () ->
        match force f_thunk with
        | Ok_v (VFun f) -> f arg
        | Ok_v _ ->
            Bad (Exn_set.singleton (Exn.Type_error "applied a non-function"))
        | Bad s -> Bad s)
  in

  (* See {!Iosem}: the oracle pick, recorded with the un-chosen rest. *)
  let pick s =
    let x = Oracle.pick_exception oracle s in
    if Obs.on tr then begin
      let unchosen =
        match Exn_set.elements s with
        | None -> []
        | Some es -> List.filter (fun e -> e <> x) es
      in
      Obs.record tr (Obs.Ev_oracle_pick (x, unchosen))
    end;
    x
  in
  let enter_mask t =
    t.mask <- t.mask + 1;
    counters.masked_sections <- counters.masked_sections + 1;
    if Obs.on tr then Obs.record tr Obs.Ev_mask_push
  in
  let leave_mask t =
    t.mask <- max 0 (t.mask - 1);
    if Obs.on tr then Obs.record tr Obs.Ev_mask_pop
  in

  let pending_async (t : thread) =
    if t.mask > 0 then None
    else
      match !pending with
      | (k, x) :: rest when !clock >= k ->
          pending := rest;
          Some x
      | _ -> None
  in

  let finish (t : thread) (value : thunk) =
    emit (E_thread_done t.tid);
    if t.tid = main_thread.tid then begin
      (* Fresh budget for the final deep force; see Iosem.pop. *)
      Denot.refill fuel_handle;
      main_result := Some (Done (deep_force ~depth:64 value))
    end;
    set_state t Finished
  in

  let die (t : thread) (exn : Exn.t) =
    if t.tid = main_thread.tid then main_result := Some (Uncaught exn)
    else emit (E_thread_died (t.tid, exn));
    set_state t Finished
  in

  (* Normal return [v] through thread [t]'s frames; installs the next
     runnable action (or finishes the thread). *)
  let rec pop_t (t : thread) (v : thunk) (stack : frame list) : unit =
    match stack with
    | [] -> finish t v
    | F_k k :: rest -> (
        (* Fresh budget: the previous action may have exhausted the
           fuel, and forcing [k] on the leftovers would collapse a
           healthy continuation to [Bad All]; see Iosem.pop. *)
        Denot.refill fuel_handle;
        match force k with
        | Ok_v (VFun f) ->
            set_state t (Runnable (delay (fun () -> f v), rest))
        | Ok_v _ -> main_result := Some (Stuck ">>=: not a function")
        | Bad s -> unwind_t t (pick s) rest)
    | F_bracket (rel, use) :: rest ->
        counters.brackets_entered <- counters.brackets_entered + 1;
        if Obs.on tr then Obs.record tr Obs.Ev_acquire;
        leave_mask t;
        set_state t (Runnable (apply use v, F_release (apply rel v) :: rest))
    | F_release r :: rest ->
        counters.brackets_released <- counters.brackets_released + 1;
        if Obs.on tr then Obs.record tr Obs.Ev_release;
        enter_mask t;
        set_state t (Runnable (r, F_mask_pop :: F_restore v :: rest))
    | F_onexn _ :: rest -> pop_t t v rest
    | F_mask_pop :: rest ->
        leave_mask t;
        pop_t t v rest
    | F_unmask_pop :: rest ->
        t.mask <- t.mask + 1;
        pop_t t v rest
    | F_timeout _ :: rest ->
        pop_t t (from_whnf (Ok_v (VCon (c_just, [ v ])))) rest
    | F_retry _ :: rest -> pop_t t v rest
    | F_rethrow e :: rest -> unwind_t t e rest
    | F_restore saved :: rest -> pop_t t saved rest
    | F_catch :: rest ->
        if Obs.on tr then Obs.record tr (Obs.Ev_catch None);
        pop_t t (from_whnf (Ok_v (VCon (c_ok, [ v ])))) rest

  (* Exceptional return through [t]'s frames: run releases and handlers,
     or kill the thread at the bottom. *)
  and unwind_t (t : thread) (e : Exn.t) (stack : frame list) : unit =
    match stack with
    | [] -> die t e
    | F_k _ :: rest -> unwind_t t e rest
    | F_bracket _ :: rest ->
        leave_mask t;
        unwind_t t e rest
    | F_release r :: rest ->
        counters.brackets_released <- counters.brackets_released + 1;
        if Obs.on tr then Obs.record tr Obs.Ev_release;
        enter_mask t;
        set_state t (Runnable (r, F_mask_pop :: F_rethrow e :: rest))
    | F_onexn h :: rest ->
        enter_mask t;
        set_state t (Runnable (h, F_mask_pop :: F_rethrow e :: rest))
    | F_mask_pop :: rest ->
        leave_mask t;
        unwind_t t e rest
    | F_unmask_pop :: rest ->
        t.mask <- t.mask + 1;
        unwind_t t e rest
    | F_timeout _ :: rest when e = Exn.Timeout ->
        pop_t t (from_whnf (Ok_v (VCon (c_nothing, [])))) rest
    | F_timeout _ :: rest -> unwind_t t e rest
    | F_retry (action, attempts, backoff) :: rest ->
        if attempts > 0 then begin
          counters.retries <- counters.retries + 1;
          let until = !clock + backoff in
          emit (E_sleep (t.tid, until));
          set_state t
            (Sleeping
               ( until,
                 action,
                 F_retry (action, attempts - 1, 2 * backoff) :: rest ))
        end
        else unwind_t t e rest
    | F_rethrow _ :: rest -> unwind_t t e rest
    | F_restore _ :: rest -> unwind_t t e rest
    | F_catch :: rest ->
        if Obs.on tr then Obs.record tr (Obs.Ev_catch (Some e));
        pop_t t
          (from_whnf (Ok_v (VCon (c_bad, [ from_whnf (exn_to_value e) ]))))
          rest
  in

  (* A normal (value-carrying) wake of an MVar waiter: the caller has
     already popped [tid] from the waiter queue. *)
  let wake tid =
    let t = find_thread tid in
    match t.state with
    | Blocked_take (mv, frames) -> (
        let m = Hashtbl.find mvars mv in
        match m.contents with
        | Some v ->
            m.contents <- None;
            emit (E_wake tid);
            set_state t (Runnable (return_thunk (force v), frames))
        | None -> () (* someone else won the race; stay blocked *))
    | Blocked_put (mv, v, frames) -> (
        let m = Hashtbl.find mvars mv in
        match m.contents with
        | None ->
            m.contents <- Some v;
            emit (E_wake tid);
            set_state t
              (Runnable (return_thunk (Ok_v (VCon (c_unit, []))), frames))
        | Some _ -> ())
    | Runnable _ | Blocked_read _ | Blocked_write _ | Sleeping _ | Finished
      ->
        ()
  in

  (* Channel wakes. The channel invariants (readers wait only on empty,
     writers only on full) guarantee the precondition of each: when a
     writer wakes a reader it has just pushed, so the buffer is
     non-empty; when a reader wakes a writer it has just popped, so
     there is room. Neither wake can strand a further waiter. *)
  let wake_reader tid =
    let t = find_thread tid in
    match t.state with
    | Blocked_read (id, frames) ->
        let c = Hashtbl.find chans id in
        let v = Queue.pop c.buf in
        emit (E_wake tid);
        set_state t (Runnable (return_thunk (force v), frames))
    | _ -> ()
  in
  let wake_writer tid =
    let t = find_thread tid in
    match t.state with
    | Blocked_write (id, v, frames) ->
        let c = Hashtbl.find chans id in
        Queue.push v c.buf;
        emit (E_wake tid);
        set_state t
          (Runnable (return_thunk (Ok_v (VCon (c_unit, []))), frames))
    | _ -> ()
  in

  let take_pending_exn (t : thread) =
    if t.mask > 0 then None
    else
      match t.pending_exns with
      | [] -> None
      | x :: rest ->
          t.pending_exns <- rest;
          Some x
  in

  (* Channel blocking is an interruptible point in the PLDI'01 sense:
     delivery there ignores the mask (unlike MVar blocking, which keeps
     this runtime's strict masked-block discipline). *)
  let take_pending_exn_interruptible (t : thread) =
    match t.pending_exns with
    | [] -> None
    | x :: rest ->
        t.pending_exns <- rest;
        Some x
  in

  (* Thread-targeted delivery by unwinding [t]'s frames: releases and
     handlers run, an [F_catch] (getException-on-IO) stops it. The
     blocked-on edge is detached by [set_state] when the unwind leaves
     the blocked state. *)
  let deliver_unwind (t : thread) (x : Exn.t) (frames : frame list) =
    counters.throwtos_delivered <- counters.throwtos_delivered + 1;
    if Obs.on tr then Obs.record tr (Obs.Ev_kill_delivered (t.tid, x));
    emit (E_async (t.tid, x));
    unwind_t t x frames
  in

  (* Queue a thread-targeted exception ([throwTo], kill schedules) and
     flag the target for round-start delivery if it cannot reach a
     delivery point on its own. *)
  let enqueue_pending (target : int) (x : Exn.t) =
    match find_thread_opt target with
    | None -> () (* unknown target: no-op *)
    | Some tgt -> (
        match tgt.state with
        | Finished -> () (* dead target: send is a no-op *)
        | Runnable _ -> tgt.pending_exns <- tgt.pending_exns @ [ x ]
        | Blocked_take _ | Blocked_put _ | Blocked_read _ | Blocked_write _
        | Sleeping _ ->
            tgt.pending_exns <- tgt.pending_exns @ [ x ];
            Bitq.add signaled tgt.tid)
  in

  let as_mvar_id (w : whnf) : (int, string) Result.t =
    match w with
    | Ok_v (VCon (c, [ idt ])) when String.equal c mvar_con -> (
        match force idt with
        | Ok_v (VInt id) -> Result.Ok id
        | _ -> Result.Error "corrupt MVar reference")
    | _ -> Result.Error "not an MVar"
  in

  let as_chan_id (w : whnf) : (int, string) Result.t =
    match w with
    | Ok_v (VCon (c, [ idt ])) when String.equal c chan_con -> (
        match force idt with
        | Ok_v (VInt id) -> Result.Ok id
        | _ -> Result.Error "corrupt channel reference")
    | _ -> Result.Error "not a channel"
  in

  let expired (t : thread) stack =
    t.mask = 0
    && List.exists (function F_timeout d -> d <= !clock | _ -> false) stack
  in

  (* One transition for one thread. Returns [true] if it made progress. *)
  let step (t : thread) : bool =
    match t.state with
    | Finished | Blocked_take _ | Blocked_put _ | Blocked_read _
    | Blocked_write _ | Sleeping _ ->
        false
    | Runnable (m_thunk, frames) -> (
        incr switches;
        incr clock;
        (* Fresh per-transition budget; see Iosem. *)
        Denot.refill fuel_handle;
        match take_pending_exn t with
        | Some x ->
            (* A thread-targeted exception is due (thread is unmasked).
               If the interrupted action is a [getException] it is caught
               right here — §5.1 delivery at getException; otherwise
               unwind the thread's frames (releases and handlers run). *)
            (match force m_thunk with
            | Ok_v (VCon (c, [ _ ])) when String.equal c c_get_exception ->
                counters.throwtos_delivered <-
                  counters.throwtos_delivered + 1;
                if Obs.on tr then begin
                  Obs.record tr (Obs.Ev_kill_delivered (t.tid, x));
                  Obs.record tr (Obs.Ev_catch (Some x))
                end;
                emit (E_async (t.tid, x));
                set_state t
                  (Runnable
                     ( return_thunk
                         (Ok_v (VCon (c_bad, [ from_whnf (exn_to_value x) ]))),
                       frames ))
            | _ -> deliver_unwind t x frames);
            true
        | None -> (
            if expired t frames then begin
              counters.timeouts_fired <- counters.timeouts_fired + 1;
              if Obs.on tr then Obs.record tr (Obs.Ev_io "timeout fired");
              unwind_t t Exn.Timeout frames;
              true
            end
            else
              match force m_thunk with
          | Bad s ->
              if Oracle.diverge_on_non_termination oracle s then begin
                main_result := Some Diverged;
                true
              end
              else begin
                unwind_t t (pick s) frames;
                true
              end
          | Ok_v (VCon (c, [ v ])) when String.equal c c_return ->
              pop_t t v frames;
              true
          | Ok_v (VCon (c, [ m1; k ])) when String.equal c c_bind ->
              set_state t (Runnable (m1, F_k k :: frames));
              true
          | Ok_v (VCon (c, [])) when String.equal c c_get_char ->
              if !input_pos >= String.length input then begin
                main_result := Some (Stuck "getChar: end of input");
                true
              end
              else begin
                let ch = input.[!input_pos] in
                incr input_pos;
                emit (E_read (t.tid, ch));
                set_state t
                  (Runnable (return_thunk (Ok_v (VChar ch)), frames));
                true
              end
          | Ok_v (VCon (c, [ v ])) when String.equal c c_put_char -> (
              match force v with
              | Ok_v (VChar ch) ->
                  emit (E_write (t.tid, ch));
                  set_state t
                    (Runnable
                       (return_thunk (Ok_v (VCon (c_unit, []))), frames));
                  true
              | Ok_v _ ->
                  main_result := Some (Stuck "putChar: not a character");
                  true
              | Bad s ->
                  unwind_t t (pick s) frames;
                  true)
          | Ok_v (VCon (c, [ v ])) when String.equal c c_get_exception -> (
              match pending_async t with
              | Some x ->
                  counters.async_delivered <- counters.async_delivered + 1;
                  if Obs.on tr then begin
                    Obs.record tr (Obs.Ev_async x);
                    Obs.record tr (Obs.Ev_catch (Some x))
                  end;
                  emit (E_async (t.tid, x));
                  set_state t
                    (Runnable
                       ( return_thunk
                           (Ok_v
                              (VCon (c_bad, [ from_whnf (exn_to_value x) ]))),
                         frames ));
                  true
              | None -> (
                  match force v with
                  | Ok_v (VCon (cn, _)) as w when is_io_action_constructor cn
                    ->
                      (* getException of an IO action (GHC's [try]):
                         perform it under a catch frame so exceptions it
                         raises — or that are delivered to this thread
                         while it blocks — come back as [Bad]. *)
                      set_state t (Runnable (from_whnf w, F_catch :: frames));
                      true
                  | Ok_v value ->
                      if Obs.on tr then Obs.record tr (Obs.Ev_catch None);
                      set_state t
                        (Runnable
                           ( return_thunk
                               (Ok_v (VCon (c_ok, [ from_whnf (Ok_v value) ]))),
                             frames ));
                      true
                  | Bad s ->
                      let x = pick s in
                      if Obs.on tr then Obs.record tr (Obs.Ev_catch (Some x));
                      set_state t
                        (Runnable
                           ( return_thunk
                               (Ok_v
                                  (VCon (c_bad, [ from_whnf (exn_to_value x) ]))),
                             frames ));
                      true))
          | Ok_v (VCon (c, [ v ])) when String.equal c c_evaluate -> (
              (* evaluate e: force the argument at exactly this point in
                 the thread's IO sequence (see Iosem). *)
              match force v with
              | Ok_v value ->
                  set_state t
                    (Runnable (return_thunk (Ok_v value), frames));
                  true
              | Bad s ->
                  if Oracle.diverge_on_non_termination oracle s then begin
                    main_result := Some Diverged;
                    true
                  end
                  else begin
                    unwind_t t (pick s) frames;
                    true
                  end)
          | Ok_v (VCon (c, [ acq; rel; use ])) when String.equal c c_bracket
            ->
              enter_mask t;
              set_state t (Runnable (acq, F_bracket (rel, use) :: frames));
              true
          | Ok_v (VCon (c, [ m1; h ])) when String.equal c c_on_exception ->
              set_state t (Runnable (m1, F_onexn h :: frames));
              true
          | Ok_v (VCon (c, [ m1 ])) when String.equal c c_mask ->
              enter_mask t;
              set_state t (Runnable (m1, F_mask_pop :: frames));
              true
          | Ok_v (VCon (c, [ m1 ])) when String.equal c c_unmask ->
              leave_mask t;
              set_state t (Runnable (m1, F_unmask_pop :: frames));
              true
          | Ok_v (VCon (c, [ n; m1 ])) when String.equal c c_timeout -> (
              match force n with
              | Ok_v (VInt k) ->
                  set_state t
                    (Runnable (m1, F_timeout (!clock + max 0 k) :: frames));
                  true
              | Ok_v _ ->
                  main_result :=
                    Some (Stuck "timeout: budget is not an integer");
                  true
              | Bad s ->
                  unwind_t t (pick s) frames;
                  true)
          | Ok_v (VCon (c, [ n; b; m1 ])) when String.equal c c_retry -> (
              match (force n, force b) with
              | Ok_v (VInt attempts), Ok_v (VInt backoff) ->
                  set_state t
                    (Runnable
                       (m1, F_retry (m1, max 0 attempts, max 1 backoff) :: frames));
                  true
              | Bad s, _ | _, Bad s ->
                  unwind_t t (pick s) frames;
                  true
              | _ ->
                  main_result :=
                    Some (Stuck "retry: attempts/backoff are not integers");
                  true)
          | Ok_v (VCon (c, [ m1 ])) when String.equal c "Fork" ->
              let child = new_thread m1 [] in
              (* The child starts at the parent's mask depth: a thread
                 forked inside an acquire is born protected, so an async
                 exception cannot slip in before its own mask/bracket. *)
              child.mask <- t.mask;
              if Obs.on tr then
                Obs.record tr
                  (Obs.Ev_io (Printf.sprintf "fork thread %d" child.tid));
              emit (E_fork (t.tid, child.tid));
              set_state t
                (Runnable (return_thunk (Ok_v (VCon (c_unit, []))), frames));
              true
          | Ok_v (VCon (c, [])) when String.equal c "NewMVar" ->
              let id = !next_mvar in
              incr next_mvar;
              Hashtbl.replace mvars id
                {
                  contents = None;
                  take_waiters = Fifo.create ();
                  put_waiters = Fifo.create ();
                };
              set_state t
                (Runnable
                   ( return_thunk
                       (Ok_v (VCon (mvar_con, [ from_whnf (Ok_v (VInt id)) ]))),
                     frames ));
              true
          | Ok_v (VCon (c, [ r ])) when String.equal c "TakeMVar" -> (
              match as_mvar_id (force r) with
              | Result.Error msg ->
                  unwind_t t (Exn.Type_error msg) frames;
                  true
              | Result.Ok id -> (
                  let m = Hashtbl.find mvars id in
                  match m.contents with
                  | Some v ->
                      m.contents <- None;
                      (* a blocked putter can now deposit *)
                      (match Fifo.pop_head m.put_waiters with
                      | Some w -> wake w
                      | None -> ());
                      set_state t (Runnable (return_thunk (force v), frames));
                      true
                  | None ->
                      emit (E_block t.tid);
                      set_state t (Blocked_take (id, frames));
                      t.blocked_on <-
                        Some
                          ( m.take_waiters,
                            Fifo.push_tail m.take_waiters t.tid );
                      true))
          | Ok_v (VCon (c, [ r; v ])) when String.equal c "PutMVar" -> (
              match as_mvar_id (force r) with
              | Result.Error msg ->
                  unwind_t t (Exn.Type_error msg) frames;
                  true
              | Result.Ok id -> (
                  let m = Hashtbl.find mvars id in
                  match m.contents with
                  | None ->
                      m.contents <- Some v;
                      (match Fifo.pop_head m.take_waiters with
                      | Some w -> wake w
                      | None -> ());
                      set_state t
                        (Runnable
                           (return_thunk (Ok_v (VCon (c_unit, []))), frames));
                      true
                  | Some _ ->
                      emit (E_block t.tid);
                      set_state t (Blocked_put (id, v, frames));
                      t.blocked_on <-
                        Some (m.put_waiters, Fifo.push_tail m.put_waiters t.tid);
                      true))
          | Ok_v (VCon (c, [ n ])) when String.equal c "NewChan" -> (
              match force n with
              | Ok_v (VInt k) ->
                  let id = !next_chan in
                  incr next_chan;
                  Hashtbl.replace chans id
                    {
                      cap = max 1 k;
                      buf = Queue.create ();
                      readers = Fifo.create ();
                      writers = Fifo.create ();
                    };
                  set_state t
                    (Runnable
                       ( return_thunk
                           (Ok_v
                              (VCon (chan_con, [ from_whnf (Ok_v (VInt id)) ]))),
                         frames ));
                  true
              | Ok_v _ ->
                  main_result :=
                    Some (Stuck "newChan: capacity is not an integer");
                  true
              | Bad s ->
                  unwind_t t (pick s) frames;
                  true)
          | Ok_v (VCon (c, [ r ])) when String.equal c "ReadChan" -> (
              match as_chan_id (force r) with
              | Result.Error msg ->
                  unwind_t t (Exn.Type_error msg) frames;
                  true
              | Result.Ok id ->
                  let ch = Hashtbl.find chans id in
                  if not (Queue.is_empty ch.buf) then begin
                    let v = Queue.pop ch.buf in
                    (* room appeared: the oldest blocked writer deposits *)
                    (match Fifo.pop_head ch.writers with
                    | Some w -> wake_writer w
                    | None -> ());
                    set_state t (Runnable (return_thunk (force v), frames))
                  end
                  else begin
                    emit (E_block t.tid);
                    set_state t (Blocked_read (id, frames));
                    t.blocked_on <-
                      Some (ch.readers, Fifo.push_tail ch.readers t.tid)
                  end;
                  true)
          | Ok_v (VCon (c, [ r; v ])) when String.equal c "WriteChan" -> (
              match as_chan_id (force r) with
              | Result.Error msg ->
                  unwind_t t (Exn.Type_error msg) frames;
                  true
              | Result.Ok id ->
                  let ch = Hashtbl.find chans id in
                  if Queue.length ch.buf < ch.cap then begin
                    Queue.push v ch.buf;
                    (match Fifo.pop_head ch.readers with
                    | Some w -> wake_reader w
                    | None -> ());
                    set_state t
                      (Runnable
                         (return_thunk (Ok_v (VCon (c_unit, []))), frames))
                  end
                  else begin
                    emit (E_block t.tid);
                    set_state t (Blocked_write (id, v, frames));
                    t.blocked_on <-
                      Some (ch.writers, Fifo.push_tail ch.writers t.tid)
                  end;
                  true)
          | Ok_v (VCon (c, [])) when String.equal c "MyThreadId" ->
              set_state t
                (Runnable
                   ( return_thunk
                       (Ok_v
                          (VCon ("ThreadId", [ from_whnf (Ok_v (VInt t.tid)) ]))),
                     frames ));
              true
          | Ok_v (VCon (c, [ tt; et ])) when String.equal c "ThrowTo" -> (
              match force tt with
              | Ok_v (VCon (ct, [ nt ])) when String.equal ct "ThreadId" -> (
                  match force nt with
                  | Ok_v (VInt target) -> (
                      match exn_of_whnf (force et) with
                      | Ok x ->
                          if Obs.on tr then
                            Obs.record tr (Obs.Ev_throwto (t.tid, target, x));
                          emit (E_throwto (t.tid, target, x));
                          if target = t.tid then begin
                            (* throwTo to oneself is synchronous (GHC):
                               deliver regardless of masking. *)
                            counters.throwtos_delivered <-
                              counters.throwtos_delivered + 1;
                            if Obs.on tr then
                              Obs.record tr (Obs.Ev_kill_delivered (t.tid, x));
                            emit (E_async (t.tid, x));
                            unwind_t t x frames
                          end
                          else begin
                            enqueue_pending target x;
                            set_state t
                              (Runnable
                                 ( return_thunk (Ok_v (VCon (c_unit, []))),
                                   frames ))
                          end;
                          true
                      | Error (Bad s) ->
                          unwind_t t (pick s) frames;
                          true
                      | Error _ ->
                          unwind_t t
                            (Exn.Type_error "throwTo: not an exception")
                            frames;
                          true)
                  | Ok_v _ ->
                      unwind_t t (Exn.Type_error "throwTo: not a ThreadId")
                        frames;
                      true
                  | Bad s ->
                      unwind_t t (pick s) frames;
                      true)
              | Ok_v _ ->
                  unwind_t t (Exn.Type_error "throwTo: not a ThreadId") frames;
                  true
              | Bad s ->
                  unwind_t t (pick s) frames;
                  true)
              | Ok_v _ ->
                  main_result := Some (Stuck "not an IO value");
                  true))
  in

  (* Round-start phase 1: wake every sleeper whose deadline passed.
     Heap entries are validated against the thread's live state (lazy
     deletion); ties pop in (deadline, tid) order. *)
  let rec wake_due_sleepers () =
    match Heap.peek sleep_heap with
    | Some (until, tid) when until <= !clock ->
        ignore (Heap.pop sleep_heap);
        let t = find_thread tid in
        (match t.state with
        | Sleeping (u, action, frames) when u = until ->
            emit (E_wake tid);
            set_state t (Runnable (action, frames))
        | _ -> () (* stale entry *));
        wake_due_sleepers ()
    | _ -> ()
  in

  (* The earliest deadline of a live sleeper, discarding stale heap
     entries on the way. *)
  let rec earliest_sleeper () =
    match Heap.peek sleep_heap with
    | None -> None
    | Some (until, tid) -> (
        match (find_thread tid).state with
        | Sleeping (u, _, _) when u = until -> Some until
        | _ ->
            ignore (Heap.pop sleep_heap);
            earliest_sleeper ())
  in

  (* Round-start phase 3: blocked and sleeping threads cannot reach a
     delivery point on their own; deliver to the flagged ones (masked
     MVar waiters and sleepers keep their pending exceptions — their
     mask cannot change while they are not runnable, so there is no
     point re-flagging them; channel waiters are interruptible
     regardless). *)
  let drain_signaled () =
    let flagged = Bitq.to_list signaled in
    List.iter
      (fun tid ->
        Bitq.remove signaled tid;
        let t = find_thread tid in
        match t.state with
        | Blocked_take (_, frames)
        | Blocked_put (_, _, frames)
        | Sleeping (_, _, frames) -> (
            match take_pending_exn t with
            | Some x -> deliver_unwind t x frames
            | None -> ())
        | Blocked_read (_, frames) | Blocked_write (_, _, frames) -> (
            match take_pending_exn_interruptible t with
            | Some x -> deliver_unwind t x frames
            | None -> ())
        | Runnable _ | Finished ->
            () (* woke up meanwhile: its own step delivers *))
      flagged
  in

  (* ---------------------------------------------------------------- *)
  (* Debug-flag invariant checks (satellite: every runnable thread in   *)
  (* the run queue exactly once, every blocked thread with exactly one  *)
  (* blocked-on edge, channel bounds), with a flight-recorder dump on   *)
  (* violation.                                                         *)
  (* ---------------------------------------------------------------- *)
  let sched_violation msg =
    let extra =
      [
        ("round", string_of_int !round);
        ("clock", string_of_int !clock);
        ("threads", string_of_int !spawned);
        ("runnable", string_of_int (Bitq.cardinal runq));
        ("blocked", string_of_int (Bitq.cardinal blockedq));
        ("sleeping", string_of_int !n_sleeping);
      ]
    in
    raise
      (Obs.Machine_invariant
         (Obs.dump ~extra ~note:("scheduler invariant: " ^ msg) tr))
  in
  let check_indices () =
    let sleeping = ref 0 in
    Hashtbl.iter
      (fun tid t ->
        (match t.state with
        | Runnable _ ->
            if not (Bitq.mem runq tid) then
              sched_violation
                (Printf.sprintf "runnable t%d missing from run queue" tid)
        | Blocked_take _ | Blocked_put _ | Blocked_read _ | Blocked_write _
          -> (
            if not (Bitq.mem blockedq tid) then
              sched_violation
                (Printf.sprintf "blocked t%d missing from blocked set" tid);
            match t.blocked_on with
            | None ->
                sched_violation
                  (Printf.sprintf "blocked t%d has no blocked-on edge" tid)
            | Some (_, n) ->
                if not n.Fifo.in_q then
                  sched_violation
                    (Printf.sprintf
                       "blocked t%d's blocked-on edge is detached" tid);
                if n.Fifo.value <> tid then
                  sched_violation
                    (Printf.sprintf
                       "blocked t%d's blocked-on edge names t%d" tid
                       n.Fifo.value))
        | Sleeping _ -> incr sleeping
        | Finished -> ());
        (match t.state with
        | Blocked_take _ | Blocked_put _ | Blocked_read _ | Blocked_write _
          ->
            ()
        | _ ->
            if t.blocked_on <> None then
              sched_violation
                (Printf.sprintf "non-blocked t%d holds a blocked-on edge"
                   tid));
        match t.state with
        | Runnable _ -> ()
        | _ ->
            if Bitq.mem runq tid then
              sched_violation
                (Printf.sprintf "non-runnable t%d in run queue" tid))
      threads;
    if !sleeping <> !n_sleeping then
      sched_violation
        (Printf.sprintf "sleeper count %d but %d threads sleeping"
           !n_sleeping !sleeping);
    Bitq.iter
      (fun tid ->
        match (find_thread tid).state with
        | Runnable _ -> ()
        | _ ->
            sched_violation
              (Printf.sprintf "run queue names non-runnable t%d" tid))
      runq;
    Bitq.iter
      (fun tid ->
        match (find_thread tid).state with
        | Blocked_take _ | Blocked_put _ | Blocked_read _ | Blocked_write _
          ->
            ()
        | _ ->
            sched_violation
              (Printf.sprintf "blocked set names non-blocked t%d" tid))
      blockedq;
    Hashtbl.iter
      (fun id c ->
        if Queue.length c.buf > c.cap then
          sched_violation
            (Printf.sprintf "channel %d holds %d > cap %d" id
               (Queue.length c.buf) c.cap);
        if Fifo.length c.readers > 0 && not (Queue.is_empty c.buf) then
          sched_violation
            (Printf.sprintf "channel %d has readers waiting on data" id);
        if Fifo.length c.writers > 0 && Queue.length c.buf < c.cap then
          sched_violation
            (Printf.sprintf "channel %d has writers waiting on room" id))
      chans
  in

  let rec scheduler steps =
    match !main_result with
    | Some o -> o
    | None ->
        if steps >= max_steps then Diverged
        else begin
          wake_due_sleepers ();
          (* Due kill-schedule entries become pending thread-targeted
             exceptions (the fault-injection axis; sends to finished or
             unknown threads are dropped, like a dead [throwTo]). *)
          let due, later =
            List.partition (fun (k, _, _) -> !clock >= k) !kills
          in
          kills := later;
          List.iter (fun (_, target, x) -> enqueue_pending target x) due;
          drain_signaled ();
          match !main_result with
          | Some o -> o
          | None ->
              if check_invariants then check_indices ();
              if Bitq.is_empty runq then begin
                if !n_sleeping > 0 then begin
                  (* Only sleepers left: fast-forward the clock to the
                     earliest wake-up instead of deadlocking. *)
                  (match earliest_sleeper () with
                  | Some until -> clock := until
                  | None -> sched_violation "sleeper heap lost an entry");
                  scheduler (steps + 1)
                end
                else begin
                  (* Irrecoverably blocked. Instead of giving up with a
                     global [Deadlock], deliver [BlockedIndefinitely] to
                     every unmasked blocked thread — and every
                     channel-blocked thread, masked or not — in tid
                     order, as a catchable imprecise exception, and keep
                     scheduling; only when every blocked thread is a
                     masked MVar waiter is this a true deadlock. *)
                  let victims = ref [] in
                  Bitq.iter
                    (fun tid ->
                      let t = find_thread tid in
                      match t.state with
                      | (Blocked_take _ | Blocked_put _) when t.mask = 0 ->
                          victims := t :: !victims
                      | Blocked_read _ | Blocked_write _ ->
                          victims := t :: !victims
                      | _ -> ())
                    blockedq;
                  match List.rev !victims with
                  | [] -> Deadlock
                  | victims ->
                      List.iter
                        (fun t ->
                          let frames =
                            match t.state with
                            | Blocked_take (_, fs) | Blocked_read (_, fs) ->
                                fs
                            | Blocked_put (_, _, fs)
                            | Blocked_write (_, _, fs) ->
                                fs
                            | _ -> []
                          in
                          counters.blocked_recoveries <-
                            counters.blocked_recoveries + 1;
                          if Obs.on tr then
                            Obs.record tr (Obs.Ev_blocked_recover t.tid);
                          emit (E_async (t.tid, Exn.Blocked_indefinitely));
                          unwind_t t Exn.Blocked_indefinitely frames)
                        victims;
                      scheduler (steps + 1)
                end
              end
              else begin
                (* The stepping round. Bumping the round counter here —
                   after the wake/kill/delivery phases — stamps threads
                   woken by those phases as steppable this round, while
                   threads woken mid-round by another thread's step are
                   stamped with the new round and skipped: exactly the
                   seed's snapshot-then-step schedule. *)
                round := !round + 1;
                let rec go i =
                  match Bitq.next_geq runq i with
                  | None -> ()
                  | Some tid ->
                      let t = find_thread tid in
                      if t.stamp <> !round then ignore (step t);
                      go (tid + 1)
                in
                go 0;
                scheduler (steps + 1)
              end
        end
  in
  let outcome =
    match scheduler 0 with
    | o -> o
    | exception Stack_overflow -> Diverged
  in
  {
    trace = List.rev !trace_rev;
    outcome;
    threads_spawned = !spawned;
    context_switches = !switches;
    counters;
  }

let output_string_of r =
  let buf = Buffer.create 16 in
  List.iter
    (function
      | E_write (_, c) -> Buffer.add_char buf c
      | _ -> ())
    r.trace;
  Buffer.contents buf
