open Lang.Syntax
module Exn = Lang.Exn
module Env_map = Map.Make (String)

type policy = Left_to_right | Right_to_left | Random of int

type outcome =
  | Value of Sem_value.deep
  | Raised of Lang.Exn.t
  | Diverged

exception Raise_exn of Exn.t
exception Diverge

(* A simple deterministic LCG; each dynamic choice point draws one bit. *)
type rng = { mutable state : int64 }

let rng_bool r =
  r.state <-
    Int64.add (Int64.mul r.state 6364136223846793005L) 1442695040888963407L;
  Int64.to_int (Int64.shift_right_logical r.state 62) land 1 = 0

type fvalue =
  | FInt of int
  | FChar of char
  | FString of string
  | FCon of string * fthunk list
  | FFun of (fthunk -> fvalue)

and fthunk = { mutable st : fstate }

and fstate =
  | Forced of fvalue
  | Delayed of (unit -> fvalue)
  | Busy
  | Failed of Exn.t
      (** A thunk whose evaluation raised: re-forcing re-raises the same
          exception (the "overwrite with raise ex" of Section 3.3). *)

type ctx = {
  mutable fuel : int;
  int_bits : int;
  left_first : unit -> bool;
}

let delay f = { st = Delayed f }
let from_value v = { st = Forced v }

let force t =
  match t.st with
  | Forced v -> v
  | Failed e -> raise (Raise_exn e)
  | Busy -> raise Diverge
  | Delayed f -> (
      t.st <- Busy;
      match f () with
      | v ->
          t.st <- Forced v;
          v
      | exception Raise_exn e ->
          t.st <- Failed e;
          raise (Raise_exn e)
      | exception Stack_overflow -> raise Diverge)

let type_error msg = raise (Raise_exn (Exn.Type_error msg))

let arith_result ctx n =
  let bound = 1 lsl (ctx.int_bits - 1) in
  if n >= -bound && n < bound then FInt n else raise (Raise_exn Exn.Overflow)

let fbool b = FCon ((if b then c_true else c_false), [])

let rec eval ctx env (e : expr) : fvalue =
  if ctx.fuel <= 0 then raise Diverge;
  ctx.fuel <- ctx.fuel - 1;
  match e with
  | Var x -> (
      match Env_map.find_opt x env with
      | Some t -> force t
      | None -> type_error (Printf.sprintf "unbound variable %s" x))
  | Lit (Lit_int n) -> FInt n
  | Lit (Lit_char c) -> FChar c
  | Lit (Lit_string s) -> FString s
  | Lam (x, body) -> FFun (fun t -> eval ctx (Env_map.add x t env) body)
  | App (e1, e2) -> (
      let arg = delay (fun () -> eval ctx env e2) in
      match eval ctx env e1 with
      | FFun g -> g arg
      | _ -> type_error "application of a non-function")
  | Con (c, [ e1 ]) when String.equal c c_get_exception ->
      (* The *pure* getException of the rejected designs: catch right
         here, deterministically under a fixed order, observably
         non-deterministically under [Random]. *)
      let t = delay (fun () -> eval ctx env e1) in
      (try FCon (c_ok, [ from_value (force t) ])
       with Raise_exn exn ->
         FCon (c_bad, [ from_value (exn_to_fvalue exn) ]))
  | Con (c, es) ->
      FCon (c, List.map (fun e -> delay (fun () -> eval ctx env e)) es)
  | Let (x, e1, e2) ->
      let t = delay (fun () -> eval ctx env e1) in
      eval ctx (Env_map.add x t env) e2
  | Letrec (binds, body) ->
      let env_cell = ref env in
      let env' =
        List.fold_left
          (fun acc (x, e1) ->
            Env_map.add x (delay (fun () -> eval ctx !env_cell e1)) acc)
          env binds
      in
      env_cell := env';
      eval ctx env' body
  | Fix e1 -> (
      match eval ctx env e1 with
      | FFun g ->
          let rec t = { st = Delayed (fun () -> g t) } in
          force t
      | _ -> type_error "fix of a non-function")
  | Raise e1 -> raise (Raise_exn (exn_of_fvalue (eval ctx env e1)))
  | Prim (p, args) -> eval_prim ctx env p args
  | Case (scrut, alts) -> (
      let v = eval ctx env scrut in
      match select_alt v alts with
      | Some (binds, rhs) ->
          let env' =
            List.fold_left
              (fun acc (x, t) -> Env_map.add x t acc)
              env binds
          in
          eval ctx env' rhs
      | None -> raise (Raise_exn (Exn.Pattern_match_fail "case")))

and select_alt v alts =
  let matches a =
    match (a.pat, v) with
    | Pcon (c, xs), FCon (c', ts)
      when String.equal c c' && List.length xs = List.length ts ->
        Some (List.combine xs ts, a.rhs)
    | Plit (Lit_int n), FInt m when n = m -> Some ([], a.rhs)
    | Plit (Lit_char c), FChar c' when c = c' -> Some ([], a.rhs)
    | Plit (Lit_string s), FString s' when String.equal s s' ->
        Some ([], a.rhs)
    | Pany None, _ -> Some ([], a.rhs)
    | Pany (Some x), _ -> Some ([ (x, from_value v) ], a.rhs)
    | (Pcon _ | Plit _), _ -> None
  in
  List.find_map matches alts

and exn_to_fvalue (e : Exn.t) : fvalue =
  let name = Exn.constructor_name e in
  match Exn.payload e with
  | Some (Exn.P_string s) -> FCon (name, [ from_value (FString s) ])
  | Some (Exn.P_int n) -> FCon (name, [ from_value (FInt n) ])
  | None -> FCon (name, [])

and exn_of_fvalue (v : fvalue) : Exn.t =
  match v with
  | FCon (name, args) -> (
      let payload =
        match args with
        | [] -> None
        | [ t ] -> (
            match force t with
            | FString s -> Some (Exn.P_string s)
            | FInt n -> Some (Exn.P_int n)
            | _ -> type_error "exception payload is not a string")
        | _ -> type_error "exception constructor arity"
      in
      match Exn.of_constructor_p name payload with
      | Some e -> e
      | None -> type_error (name ^ " is not an exception constructor"))
  | _ -> type_error "raise: not an exception"

(* Evaluate [a] and [b] in the policy's order and hand both values to
   [k]. The *only* semantic effect of the order is which exception
   surfaces first. *)
and ordered2 ctx env a b k =
  if ctx.left_first () then
    let va = eval ctx env a in
    let vb = eval ctx env b in
    k va vb
  else
    let vb = eval ctx env b in
    let va = eval ctx env a in
    k va vb

and eval_prim ctx env (p : Lang.Prim.t) (args : expr list) : fvalue =
  let module P = Lang.Prim in
  let int2 k =
    match args with
    | [ a; b ] ->
        ordered2 ctx env a b (fun va vb ->
            match (va, vb) with
            | FInt x, FInt y -> k x y
            | _ -> type_error (P.name p ^ ": expected integers"))
    | _ -> type_error (P.name p ^ ": arity")
  in
  let cmp k =
    match args with
    | [ a; b ] ->
        ordered2 ctx env a b (fun va vb ->
            match (va, vb) with
            | FInt x, FInt y -> fbool (k (Stdlib.compare x y))
            | FChar x, FChar y -> fbool (k (Stdlib.compare x y))
            | FString x, FString y -> fbool (k (String.compare x y))
            | FCon (x, []), FCon (y, []) -> fbool (k (String.compare x y))
            | _ -> type_error (P.name p ^ ": uncomparable values"))
    | _ -> type_error (P.name p ^ ": arity")
  in
  match (p, args) with
  | P.Add, _ -> int2 (fun a b -> arith_result ctx (a + b))
  | P.Sub, _ -> int2 (fun a b -> arith_result ctx (a - b))
  | P.Mul, _ -> int2 (fun a b -> arith_result ctx (a * b))
  | P.Div, _ ->
      int2 (fun a b ->
          if b = 0 then raise (Raise_exn Exn.Divide_by_zero)
          else arith_result ctx (a / b))
  | P.Mod, _ ->
      int2 (fun a b ->
          if b = 0 then raise (Raise_exn Exn.Divide_by_zero)
          else arith_result ctx (a mod b))
  | P.Neg, [ e1 ] -> (
      match eval ctx env e1 with
      | FInt a -> arith_result ctx (-a)
      | _ -> type_error "negate: expected an integer")
  | P.Eq, _ -> cmp (fun c -> c = 0)
  | P.Ne, _ -> cmp (fun c -> c <> 0)
  | P.Lt, _ -> cmp (fun c -> c < 0)
  | P.Le, _ -> cmp (fun c -> c <= 0)
  | P.Gt, _ -> cmp (fun c -> c > 0)
  | P.Ge, _ -> cmp (fun c -> c >= 0)
  | P.Seq, [ a; b ] ->
      let _ = eval ctx env a in
      eval ctx env b
  | P.Map_exception, [ ef; ev ] -> (
      (* Precise semantics: one exception; map the function over it. *)
      let fv = eval ctx env ef in
      match eval ctx env ev with
      | v -> v
      | exception Raise_exn e -> (
          match fv with
          | FFun g ->
              raise
                (Raise_exn (exn_of_fvalue (g (from_value (exn_to_fvalue e)))))
          | _ -> type_error "mapException: not a function"))
  | P.Unsafe_is_exception, [ e1 ] -> (
      try
        let _ = eval ctx env e1 in
        fbool false
      with Raise_exn _ -> fbool true)
  | P.Unsafe_get_exception, [ e1 ] -> (
      let t = delay (fun () -> eval ctx env e1) in
      try FCon (c_ok, [ from_value (force t) ])
      with Raise_exn exn -> FCon (c_bad, [ from_value (exn_to_fvalue exn) ]))
  | P.Chr, [ e1 ] -> (
      match eval ctx env e1 with
      | FInt a when a >= 0 && a < 256 -> FChar (Char.chr a)
      | FInt _ -> type_error "chr: out of range"
      | _ -> type_error "chr: expected an integer")
  | P.Ord, [ e1 ] -> (
      match eval ctx env e1 with
      | FChar c -> FInt (Char.code c)
      | _ -> type_error "ord: expected a character")
  | _, _ -> type_error (P.name p ^ ": arity")

let make_ctx ?(fuel = 200_000) ?(int_bits = 32) policy =
  let left_first =
    match policy with
    | Left_to_right -> fun () -> true
    | Right_to_left -> fun () -> false
    | Random seed ->
        let r = { state = Int64.of_int (seed lxor 0x9e3779b9) } in
        fun () -> rng_bool r
  in
  { fuel; int_bits; left_first }

(* [open Sem_value] shadows the fthunk [force] above; keep an alias. *)
let force_f = force

open Sem_value

let rec deep_of_fvalue ctx depth (v : fvalue) : deep =
  if depth <= 0 then DCut
  else
    match v with
    | FInt n -> DInt n
    | FChar c -> DChar c
    | FString s -> DString s
    | FFun _ -> DFun
    | FCon (c, args) ->
        DCon
          ( c,
            List.map
              (fun t ->
                match force_f t with
                | v' -> deep_of_fvalue ctx (depth - 1) v'
                | exception Raise_exn e -> DBad (Exn_set.singleton e)
                | exception Diverge -> DBad Exn_set.bottom)
              args )

let run ?fuel ?int_bits policy e =
  let ctx = make_ctx ?fuel ?int_bits policy in
  match eval ctx Env_map.empty e with
  | v -> Value (deep_of_fvalue ctx 1 v)
  | exception Raise_exn exn -> Raised exn
  | exception Diverge -> Diverged
  | exception Stack_overflow -> Diverged

(* Unlike [deep_of_fvalue], let exceptions escape: precise semantics
   reports the first exception encountered in evaluation order. *)
let rec deep_of_fvalue_strict ctx depth (v : fvalue) : deep =
  if depth <= 0 then DCut
  else
    match v with
    | FInt n -> DInt n
    | FChar c -> DChar c
    | FString s -> DString s
    | FFun _ -> DFun
    | FCon (c, args) ->
        DCon
          ( c,
            List.map
              (fun t -> deep_of_fvalue_strict ctx (depth - 1) (force_f t))
              args )

let run_deep ?fuel ?int_bits ?(depth = 64) policy e =
  let ctx = make_ctx ?fuel ?int_bits policy in
  match eval ctx Env_map.empty e with
  | v -> (
      (* Deep forcing continues under the same fuel budget; the first
         exception met during the walk is the program's exception. *)
      try Value (deep_of_fvalue_strict ctx depth v)
      with
      | Raise_exn exn -> Raised exn
      | Diverge -> Diverged)
  | exception Raise_exn exn -> Raised exn
  | exception Diverge -> Diverged
  | exception Stack_overflow -> Diverged

let outcome_to_deep = function
  | Value d -> d
  | Raised e -> DBad (Exn_set.singleton e)
  | Diverged -> DBad Exn_set.bottom

let pp_outcome ppf = function
  | Value d -> Fmt.pf ppf "Value %a" pp_deep d
  | Raised e -> Fmt.pf ppf "Raised %a" Exn.pp e
  | Diverged -> Fmt.string ppf "Diverged"

let outcome_equal a b =
  match (a, b) with
  | Value d1, Value d2 -> deep_equal d1 d2
  | Raised e1, Raised e2 -> Exn.equal e1 e2
  | Diverged, Diverged -> true
  | (Value _ | Raised _ | Diverged), (Value _ | Raised _ | Diverged) -> false

let outcomes ?fuel ?depth ~seeds e =
  let results = List.map (fun s -> run_deep ?fuel ?depth (Random s) e) seeds in
  List.fold_left
    (fun acc o -> if List.exists (outcome_equal o) acc then acc else o :: acc)
    [] results
  |> List.rev
