(** The implementation-refines-semantics relation (claim C13).

    "The semantics of the program is given by the set; the implementation
    is free to report any member." An implementation result {e implements}
    a denotation when every exception it actually reports is a member of
    the semantic exception set and every normal component agrees exactly.

    This is the single checker behind the differential test suite and the
    fuzzer; {!Transform.Refine} re-exports it next to the
    transformation-validity verdicts. *)

val implements_deep : Sem_value.deep -> Sem_value.deep -> bool
(** [implements_deep impl den]: [impl] (a machine or fixed-order result,
    reporting single representative exceptions, [DBad All] for
    divergence) refines [den] (the imprecise denotation). Componentwise
    on constructors; a denotational [DBad All] (bottom) admits anything;
    [DCut] admits anything on either side. *)

val implements_outcome : Fixed.outcome -> Sem_value.deep -> bool
(** {!implements_deep} after {!Fixed.outcome_to_deep}. *)
