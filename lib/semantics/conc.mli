(** Concurrency on top of the IO transition system.

    Section 4.4 notes that presenting the IO layer as a labelled transition
    system over the denotation "scales to other extensions, such as adding
    concurrency to the language [16]" (Peyton Jones–Gordon–Finne,
    Concurrent Haskell). This module substantiates the remark: a
    round-robin scheduler over multiple IO threads with [forkIO] and
    [MVar]s, running on exactly the same denotational values as
    {!Iosem}.

    New IO constructors (registered in the parser's constructor table,
    with Prelude aliases [forkIO], [newEmptyMVar], [takeMVar], [putMVar]):

    {v
    Fork (IO a)            : IO Unit     -- spawn, return to parent
    NewMVar                : IO (MVar a) -- fresh empty MVar
    TakeMVar (MVar a)      : IO a        -- blocks while empty
    PutMVar (MVar a) a     : IO Unit     -- blocks while full
    v}

    Exceptions interact with concurrency exactly as in the paper: an
    uncaught exceptional value kills only the thread that performed it
    (the main thread's death ends the program), and [getException] behaves
    as in Section 4.4 within each thread. *)

type event =
  | E_write of int * char  (** thread, character written *)
  | E_read of int * char
  | E_fork of int * int  (** parent, child *)
  | E_block of int  (** thread blocked on an MVar *)
  | E_wake of int
  | E_thread_done of int
  | E_thread_died of int * Lang.Exn.t
      (** A non-main thread performed an exceptional IO value. *)
  | E_async of int * Lang.Exn.t
      (** An asynchronous event was delivered to this thread. *)
  | E_sleep of int * int
      (** Thread sleeping until the given clock tick ([Retry] backoff). *)

type outcome =
  | Done of Sem_value.deep  (** The main thread's result. *)
  | Uncaught of Lang.Exn.t  (** The main thread died. *)
  | Deadlock  (** No thread runnable, some blocked. *)
  | Diverged
  | Stuck of string

type result = {
  trace : event list;
  outcome : outcome;
  threads_spawned : int;
  context_switches : int;
  counters : Iosem.counters;
      (** Fault/exception-safety counters, shared across all threads. *)
}

val pp_event : event Fmt.t
val pp_outcome : outcome Fmt.t

val run :
  ?config:Denot.config ->
  ?oracle:Oracle.t ->
  ?trace:Obs.t ->
  ?input:string ->
  ?async:Iosem.schedule ->
  ?max_steps:int ->
  Lang.Syntax.expr ->
  result
(** Perform a closed [IO] expression with the concurrent scheduler
    (round-robin, one transition per thread per turn). [trace] receives
    structured oracle-pick, catch, async, mask, bracket, fork and
    timeout events. *)

val output_string_of : result -> string
(** Characters written by all threads, in global order. *)
