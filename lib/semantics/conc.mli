(** Concurrency on top of the IO transition system.

    Section 4.4 notes that presenting the IO layer as a labelled transition
    system over the denotation "scales to other extensions, such as adding
    concurrency to the language [16]" (Peyton Jones–Gordon–Finne,
    Concurrent Haskell). This module substantiates the remark: a
    round-robin scheduler over multiple IO threads with [forkIO] and
    [MVar]s, running on exactly the same denotational values as
    {!Iosem}.

    New IO constructors (registered in the parser's constructor table,
    with Prelude aliases [forkIO], [newEmptyMVar], [takeMVar], [putMVar]):

    {v
    Fork (IO a)            : IO Unit     -- spawn, return to parent
    NewMVar                : IO (MVar a) -- fresh empty MVar
    TakeMVar (MVar a)      : IO a        -- blocks while empty
    PutMVar (MVar a) a     : IO Unit     -- blocks while full
    v}

    Bounded channels (Prelude aliases [newChan n], [readChan],
    [writeChan]):

    {v
    NewChan Int            : IO (Chan a) -- buffer capacity (min 1)
    ReadChan (Chan a)      : IO a        -- blocks while empty
    WriteChan (Chan a) a   : IO Unit     -- blocks while full
    v}

    Channel blocking is an {e interruptible point} in the sense of
    Marlow et al. (PLDI'01): a thread blocked on a channel receives
    pending asynchronous exceptions and [BlockedIndefinitely] even while
    its mask depth is positive, unlike MVar blocking, which keeps this
    runtime's stricter masked-block discipline (a masked blocked MVar
    thread is deaf until woken). A blocked writer's element enters the
    buffer only when the deposit succeeds, so killing a blocked writer
    never loses a buffered element.

    The scheduler itself runs on an indexed runtime — a bitmap run
    queue iterated in tid order, a tid-to-thread hash table, intrusive
    per-cell FIFO waiter queues and an incrementally maintained
    blocked-on edge per thread — with the exact same round-based
    schedule as the original list-scanning implementation (see DESIGN
    §4i).

    Exceptions interact with concurrency exactly as in the paper: an
    uncaught exceptional value kills only the thread that performed it
    (the main thread's death ends the program), and [getException] behaves
    as in Section 4.4 within each thread.

    Thread-to-thread asynchronous exceptions (Prelude aliases
    [myThreadId], [throwTo t e], [killThread t]):

    {v
    MyThreadId             : IO ThreadId -- this thread's identity
    ThrowTo ThreadId Exn   : IO Unit     -- async send; no-op if dead
    v}

    [throwTo] is a non-blocking send: the exception is queued on the
    target and delivered at the target's next scheduling point while its
    mask depth is zero ([mask]/[bracket] acquire-and-release sections
    defer delivery — Section 5.1's interruptible-operation discipline,
    made strict). A [throwTo] to oneself is synchronous, delivered
    regardless of masking, as in GHC. Delivery at a [getException] is
    caught right there as [Bad e]; anywhere else it unwinds the thread's
    frames, running releases and handlers.

    When no thread can ever run again, blocked threads with mask depth
    zero receive the catchable [BlockedIndefinitely] exception instead of
    the program reporting a global [Deadlock] (GHC's
    [BlockedIndefinitelyOnMVar]); [Deadlock] remains only for the case
    where every blocked thread is masked. *)

type event =
  | E_write of int * char  (** thread, character written *)
  | E_read of int * char
  | E_fork of int * int  (** parent, child *)
  | E_block of int  (** thread blocked on an MVar *)
  | E_wake of int
  | E_thread_done of int
  | E_thread_died of int * Lang.Exn.t
      (** A non-main thread performed an exceptional IO value. *)
  | E_async of int * Lang.Exn.t
      (** An asynchronous event was delivered to this thread. *)
  | E_sleep of int * int
      (** Thread sleeping until the given clock tick ([Retry] backoff). *)
  | E_throwto of int * int * Lang.Exn.t
      (** [throwTo]: sender, target, exception (send, not delivery). *)

type outcome =
  | Done of Sem_value.deep  (** The main thread's result. *)
  | Uncaught of Lang.Exn.t  (** The main thread died. *)
  | Deadlock
      (** No thread can ever run again and every blocked thread is
          masked, so not even [BlockedIndefinitely] can be delivered. *)
  | Diverged
  | Stuck of string

type result = {
  trace : event list;
  outcome : outcome;
  threads_spawned : int;
  context_switches : int;
  counters : Iosem.counters;
      (** Fault/exception-safety counters, shared across all threads. *)
}

val pp_event : event Fmt.t
val pp_outcome : outcome Fmt.t

val run :
  ?config:Denot.config ->
  ?oracle:Oracle.t ->
  ?trace:Obs.t ->
  ?input:string ->
  ?async:Iosem.schedule ->
  ?kills:(int * int * Lang.Exn.t) list ->
  ?check_invariants:bool ->
  ?max_steps:int ->
  Lang.Syntax.expr ->
  result
(** Perform a closed [IO] expression with the concurrent scheduler
    (round-robin, one transition per thread per turn). [trace] receives
    structured oracle-pick, catch, async, mask, bracket, fork and
    timeout events.

    [kills] is a fault-injection schedule of [(clock, tid, exn)]
    triples: once the global clock reaches [clock], [exn] is queued on
    thread [tid] exactly as if a live thread had performed
    [ThrowTo (ThreadId tid) exn]. Entries naming finished or unknown
    threads are dropped silently.

    [check_invariants] (default: set when the [IMPEXN_SCHED_DEBUG]
    environment variable is present) validates the scheduler indices
    every round — every runnable thread in the run queue exactly once,
    every blocked thread with exactly one attached blocked-on edge,
    channel buffers within bounds — and raises
    {!Obs.Machine_invariant} carrying a flight-recorder dump on
    violation. *)

val output_string_of : result -> string
(** Characters written by all threads, in global order. *)
