(** The operational semantics of the IO layer (Section 4.4), on top of the
    denotational semantics of the pure fragment.

    [IO] is treated as an algebraic data type with constructors [Return],
    [Bind], [PutChar], [GetChar] and [GetException]; this module is the
    labelled transition system that *performs* a value of that type:

    {v
    m1 → m2  ⟹  (m1 >>= k) → (m2 >>= k)
    (return v) >>= k → k v
    getChar  —?c→  return c
    putChar c —!c→ return ()
    getException (Ok v)  → return (OK v)
    getException (Bad s) → return (Bad x)      if x ∈ s
    getException (Bad s) → getException (Bad s) if NonTermination ∈ s
    getException v —¡x→  return (Bad x)        x an asynchronous event
    v}

    The oracle resolves the non-deterministic choices; asynchronous events
    are injected by a deterministic schedule (fire after a given number of
    transitions), exercising the Section 5.1 rule reproducibly.

    On top of the paper's five constructors sit the exception-safety
    combinators in the style of GHC's [Control.Exception] ([Bracket],
    [OnException], [Mask], [Unmask], [WithTimeout], [Retry]). They are
    implemented with an explicit IO continuation stack: normal returns pop
    frames, exceptions trim them — running registered releases and
    handlers on the way down. [Bracket]'s acquire and every release run
    masked (async events and timeouts are deferred), so a cleanup can
    never be torn mid-flight. *)

type event =
  | E_read of char  (** [?c] — a character was read. *)
  | E_write of char  (** [!c] — a character was written. *)
  | E_async of Lang.Exn.t  (** [¡x] — an asynchronous event was delivered. *)

type outcome =
  | Done of Sem_value.deep  (** [main] performed to [return v]. *)
  | Uncaught of Lang.Exn.t
      (** The final value (or the IO structure itself) was exceptional:
          "this simply corresponds to an uncaught exception, which the
          implementation should report" (Section 4.4). *)
  | Io_diverged
      (** Transition budget exhausted, or the oracle chose the
          self-transition for a [NonTermination] set. *)
  | Stuck of string  (** Ill-typed IO value, or input exhausted. *)

type counters = {
  mutable async_delivered : int;
      (** Asynchronous events actually delivered (not deferred by a
          mask). *)
  mutable brackets_entered : int;
      (** Acquire phases that completed, registering a release. *)
  mutable brackets_released : int;
      (** Releases run; equals [brackets_entered] whenever the program
          terminated ([Done]/[Uncaught]). *)
  mutable timeouts_fired : int;  (** [WithTimeout] deadlines that expired. *)
  mutable masked_sections : int;
      (** Times async delivery was masked (explicit [Mask], bracket
          acquire, every cleanup). *)
  mutable retries : int;  (** [Retry] re-attempts actually taken. *)
  mutable throwtos_delivered : int;
      (** Thread-targeted exceptions that reached their target (only the
          concurrent layer {!Conc} can deliver them). *)
  mutable blocked_recoveries : int;
      (** Blocked threads woken exceptionally with [BlockedIndefinitely]
          ({!Conc}'s per-thread deadlock recovery). *)
}

val fresh_counters : unit -> counters

type result = { trace : event list; outcome : outcome; counters : counters }

val pp_event : event Fmt.t
val pp_outcome : outcome Fmt.t

type schedule = (int * Lang.Exn.t) list
(** Asynchronous events: [(k, x)] delivers [x] at the first [getException]
    performed at or after transition [k]. *)

val run :
  ?config:Denot.config ->
  ?oracle:Oracle.t ->
  ?trace:Obs.t ->
  ?input:string ->
  ?async:schedule ->
  ?max_steps:int ->
  Lang.Syntax.expr ->
  result
(** Perform a closed expression of type [IO t]. [trace] receives a
    structured event per oracle pick (chosen member plus the un-chosen
    rest of the set), catch, async delivery, mask transition, bracket
    acquire/release and timeout. *)

val output_string_of : result -> string
(** The characters written, in order. *)
