open Lang.Syntax
module Exn = Lang.Exn

(* Fresh variables for the translation; the [_ev] prefix cannot clash with
   source binders produced by the parser ([_p..]) or user code (leading
   underscore followed by 'e','v' is reserved here). *)
let fresh =
  let counter = ref 0 in
  fun () ->
    incr counter;
    Printf.sprintf "_ev%d" !counter

let ok e = Con (c_ok, [ e ])
let bad e = Con (c_bad, [ e ])

(* [case scrut of { Bad b -> Bad b; OK x -> body x }] — the
   test-and-propagate pattern the paper shows in Section 2.2. *)
let propagate scrut k =
  let b = fresh () and x = fresh () in
  Case
    ( scrut,
      [
        { pat = Pcon (c_bad, [ b ]); rhs = bad (Var b) };
        { pat = Pcon (c_ok, [ x ]); rhs = k (Var x) };
      ] )

let rec encode (e : expr) : expr =
  match e with
  | Var x -> Var x
  | Lit l -> ok (Lit l)
  | Lam (x, body) -> ok (Lam (x, encode body))
  | App (e1, e2) -> propagate (encode e1) (fun f -> App (f, encode e2))
  | Con (c, [ e1 ]) when String.equal c c_get_exception ->
      (* The pure getException of Section 2.1: reify the ExVal. Every
         constructor field holds an encoded value, hence the re-wrapping
         with OK. *)
      let b = fresh () and x = fresh () in
      Case
        ( encode e1,
          [
            { pat = Pcon (c_bad, [ b ]); rhs = ok (bad (Var b)) };
            { pat = Pcon (c_ok, [ x ]); rhs = ok (ok (ok (Var x))) };
          ] )
  | Con (c, es) -> ok (Con (c, List.map encode es))
  | Case (scrut, alts) ->
      propagate (encode scrut) (fun v ->
          let do_alt a =
            match a.pat with
            | Pcon _ | Plit _ -> { a with rhs = encode a.rhs }
            | Pany None -> { a with rhs = encode a.rhs }
            | Pany (Some x) ->
                (* The binder sees the *encoded* scrutinee. *)
                { a with rhs = Let (x, ok v, encode a.rhs) }
          in
          Case (v, List.map do_alt alts))
  | Let (x, e1, e2) -> Let (x, encode e1, encode e2)
  | Letrec (binds, body) ->
      Letrec (List.map (fun (x, e1) -> (x, encode e1)) binds, encode body)
  | Fix e1 -> propagate (encode e1) (fun f -> Fix f)
  | Raise e1 ->
      (* Bad's field, like every constructor field, holds an *encoded*
         value, hence the OK re-wrap. *)
      propagate (encode e1) (fun ex -> bad (ok ex))
  | Prim (p, args) -> encode_prim p args

and encode_prim (p : Lang.Prim.t) (args : expr list) : expr =
  let module P = Lang.Prim in
  (* Force the encoded operands one after another (left to right: the
     encoding fixes the evaluation order, which is exactly the paper's
     complaint), then build the result from the raw values. *)
  let strictn args k =
    let rec go acc = function
      | [] -> k (List.rev acc)
      | a :: rest -> propagate (encode a) (fun v -> go (v :: acc) rest)
    in
    go [] args
  in
  match (p, args) with
  | P.Div, [ a; b ] | (P.Mod, [ a; b ]) ->
      strictn [ a; b ] (fun vs ->
          match vs with
          | [ x; y ] ->
              Case
                ( Prim (P.Eq, [ y; Lit (Lit_int 0) ]),
                  [
                    {
                      pat = Pcon (c_true, []);
                      rhs = bad (ok (Con ("DivideByZero", [])));
                    };
                    { pat = Pcon (c_false, []); rhs = ok (Prim (p, [ x; y ])) };
                  ] )
          | _ -> assert false)
  | P.Seq, [ a; b ] -> propagate (encode a) (fun _ -> encode b)
  | P.Map_exception, [ f; v ] ->
      let b = fresh () and x = fresh () in
      Case
        ( encode v,
          [
            {
              pat = Pcon (c_bad, [ b ]);
              rhs =
                propagate (encode f) (fun g ->
                    propagate (App (g, Var b)) (fun ex2 -> bad (ok ex2)));
            };
            { pat = Pcon (c_ok, [ x ]); rhs = ok (Var x) };
          ] )
  | P.Unsafe_get_exception, [ a ] ->
      let b = fresh () and x = fresh () in
      Case
        ( encode a,
          [
            { pat = Pcon (c_bad, [ b ]); rhs = ok (bad (Var b)) };
            { pat = Pcon (c_ok, [ x ]); rhs = ok (ok (ok (Var x))) };
          ] )
  | P.Unsafe_is_exception, [ a ] ->
      let b = fresh () and x = fresh () in
      Case
        ( encode a,
          [
            { pat = Pcon (c_bad, [ b ]); rhs = ok (Con (c_true, [])) };
            { pat = Pcon (c_ok, [ x ]); rhs = ok (Con (c_false, [])) };
          ] )
  | _, args -> strictn args (fun vs -> ok (Prim (p, vs)))

let try_expr e =
  let b = fresh () and x = fresh () in
  Case
    ( encode e,
      [
        { pat = Pcon (c_bad, [ b ]); rhs = ok (bad (Var b)) };
        { pat = Pcon (c_ok, [ x ]); rhs = ok (ok (ok (Var x))) };
      ] )

let code_blowup e =
  float_of_int (size (encode e)) /. float_of_int (size e)

open Sem_value

(* Extract the exception constant from a deeply-forced encoded Exception
   value, e.g. [DCon ("UserError", [DCon ("OK", [DString s])])]. *)
let exn_of_encoded_deep (d : deep) : Exn.t option =
  match d with
  | DCon (name, []) -> Exn.of_constructor name None
  | DCon (name, [ DCon (okc, [ DString s ]) ]) when String.equal okc c_ok ->
      Exn.of_constructor name (Some s)
  | DCon (name, [ DCon (okc, [ DInt n ]) ]) when String.equal okc c_ok ->
      Exn.of_constructor_p name (Some (Exn.P_int n))
  | _ -> None

let rec decode_deep (d : deep) : deep =
  match d with
  | DCon (c, [ inner ]) when String.equal c c_ok -> decode_value inner
  | DCon (c, [ DCon (okc, [ exnv ]) ])
    when String.equal c c_bad && String.equal okc c_ok -> (
      match exn_of_encoded_deep exnv with
      | Some e -> DBad (Exn_set.singleton e)
      | None -> DBad (Exn_set.singleton (Exn.Type_error "decode")))
  | DBad _ | DCut -> d
  | _ -> DBad (Exn_set.singleton (Exn.Type_error "decode: not an ExVal"))

and decode_value (d : deep) : deep =
  match d with
  | DInt _ | DChar _ | DString _ | DFun | DBad _ | DCut -> d
  | DCon (c, fields) -> DCon (c, List.map decode_deep fields)
