open Sem_value

let rec implements_deep (impl : deep) (den : deep) : bool =
  match (den, impl) with
  | DBad s, _ when Exn_set.is_all s -> true
  | DCut, _ | _, DCut -> true
  | DBad s_d, DBad s_i -> (
      (* The implementation reports one representative (or diverged). *)
      match Exn_set.elements s_i with
      | Some [ e ] -> Exn_set.mem e s_d
      | Some _ | None -> Exn_set.leq s_i s_d)
  | DInt a, DInt b -> a = b
  | DChar a, DChar b -> a = b
  | DString a, DString b -> String.equal a b
  | DFun, DFun -> true
  | DCon (c1, ds), DCon (c2, is) ->
      String.equal c1 c2
      && List.length ds = List.length is
      && List.for_all2 (fun d i -> implements_deep i d) ds is
  | ((DInt _ | DChar _ | DString _ | DFun | DCon _ | DBad _), _) -> false

let implements_outcome (o : Fixed.outcome) (den : deep) : bool =
  implements_deep (Fixed.outcome_to_deep o) den
