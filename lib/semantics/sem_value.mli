(** The semantic domain [M t = (t + P(E))⊥] of Section 4.1.

    A weak-head value ({!whnf}) is either a normal value ([Ok_v]) or an
    exceptional value carrying a set of exceptions ([Bad]). Bottom is
    identified with [Bad All] — "the least informative value contains all
    exceptions".

    Laziness is modelled with memoizing thunks. Forcing a thunk that is
    already being forced (a cyclic demand) yields [Bad All]: the
    denotational reading of a black hole. *)

type whnf = Ok_v of value | Bad of Exn_set.t

and value =
  | VInt of int
  | VChar of char
  | VString of string
  | VCon of string * thunk list  (** Constructors are non-strict. *)
  | VFun of (thunk -> whnf)
      (** [λx.⊥ ≠ ⊥]: a function is always a normal value (Section 4.2). *)

and thunk

val delay : (unit -> whnf) -> thunk
val delay_self : (thunk -> whnf) -> thunk
(** [delay_self f] is a thunk [t] whose forcing computes [f t] — the
    cyclic knot used for [fix]. *)

val from_whnf : whnf -> thunk
val force : thunk -> whnf
(** Memoizing; a cyclic force returns [Bad All]. *)

val s_of : whnf -> Exn_set.t
(** The auxiliary [S] of Section 4.2: ∅ on normal values, the set on
    exceptional ones. *)

val bad_all : whnf
val bad : Lang.Exn.t -> whnf
val bad_empty : whnf
(** The "strange value" [Bad {}] (Section 4.3). *)

val provenance : Obs.provenance
(** Raise-site provenance for the denotational layer, keyed by exception
    constant; most recent raise wins. Origins here carry a site label
    only (no step counter or stack depth exists denotationally). *)

val bad_at : label:string -> Lang.Exn.t -> whnf
(** [bad e], registering [label] as the exception's origin in
    {!provenance}. *)

val pp_exn_with_origin : Lang.Exn.t Fmt.t
(** Print an exception annotated with its {!provenance} origin. *)

val vint : int -> whnf
val vbool : bool -> whnf
val vcon0 : string -> whnf

val exn_to_value : Lang.Exn.t -> whnf
(** Reify an exception constant as the corresponding source-level
    constructor value (used by [getException] and [mapException]). *)

val exn_of_whnf : whnf -> (Lang.Exn.t, whnf) result
(** Interpret a WHNF as an exception constant (the argument of [raise]).
    [Error w] returns the exceptional/ill-typed result to propagate. *)

(** Fully-forced finite prefixes of values, for printing and comparison. *)
type deep =
  | DInt of int
  | DChar of char
  | DString of string
  | DCon of string * deep list
  | DFun  (** functions are not compared structurally *)
  | DBad of Exn_set.t
  | DCut  (** depth cut-off *)

val deep_force : ?depth:int -> thunk -> deep
val deep_of_whnf : ?depth:int -> whnf -> deep

val deep_equal : deep -> deep -> bool
(** Structural equality; [DFun]s compare equal, [DCut] equals only
    [DCut]. *)

val deep_leq : deep -> deep -> bool
(** The information ordering, pointwise: [DBad All] below everything,
    [DBad s ⊑ DBad s'] iff [s' ⊆ s], constructors componentwise. *)

val pp_deep : deep Fmt.t
val pp_whnf : whnf Fmt.t
(** Shallow: constructor arguments are printed to a small depth. *)
