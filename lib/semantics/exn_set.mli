(** The lattice [P(E)] of exception sets (Section 4.1).

    Ordered by *reverse* inclusion: [s1 ⊑ s2 ⇔ s2 ⊆ s1]. The bottom element
    is the set of all exceptions (to which the paper adds
    [NonTermination] and identifies the result with ⊥); the top element is
    the empty set — the "strange value" [Bad {}] used to evaluate case
    alternatives in exception-finding mode (Section 4.3).

    [E] is infinite ([UserError] carries a string), so the set of all
    exceptions is represented by the distinguished constructor [All]. *)

type t = All | Finite of Lang.Exn.Set.t

val bottom : t
(** [All] — the denotation of divergence. *)

val empty : t
(** [Finite ∅] — the top of the exceptional arm; not the denotation of any
    term (Section 4.1), but needed for exception-finding mode. *)

val singleton : Lang.Exn.t -> t
val of_list : Lang.Exn.t list -> t
val union : t -> t -> t
val mem : Lang.Exn.t -> t -> bool
val is_empty : t -> bool
val is_all : t -> bool

val leq : t -> t -> bool
(** The information ordering: [leq s1 s2] iff [s2 ⊆ s1]. *)

val equal : t -> t -> bool
val compare : t -> t -> int

val has_non_termination : t -> bool
(** Whether [NonTermination] is in the set ([All] contains everything). *)

val choose : t -> Lang.Exn.t option
(** An arbitrary member: [None] for the empty set; for [All], the
    distinguished member [Non_termination]. Deterministic (smallest member
    of a finite set); the operational layer's {!Oracle} makes the
    non-deterministic choices. *)

val elements : t -> Lang.Exn.t list option
(** [None] for [All]. *)

val cardinal : t -> int option
val map : (Lang.Exn.t -> Lang.Exn.t) -> t -> t
(** Set-map; [All] maps to [All] (the members cannot be enumerated). This is
    the semantic core of [mapException] (Section 5.4). *)

val drop_async : t -> t
(** Keep only the synchronous members, dropping asynchronous exception
    constants (which are never part of a denotation; Section 5.1). [All]
    is unchanged — its members cannot be enumerated. Formerly misnamed
    [filter_async], which read as if it removed the synchronous side. *)

val keep_async : t -> t
(** The complement of {!drop_async}: keep only the asynchronous members.
    [All] is unchanged. *)

val pp : t Fmt.t

val pp_annotated : Lang.Exn.t Fmt.t -> t Fmt.t
(** Print with a caller-supplied member printer — used by the flight
    recorder to annotate each member with its raise-site provenance. *)
