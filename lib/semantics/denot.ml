open Lang.Syntax
open Sem_value
module Exn = Lang.Exn
module Env_map = Map.Make (String)

type config = {
  fuel : int;
  int_bits : int;
  pessimistic_is_exception : bool;
  app_union : bool;
  case_finding : bool;
}

let default_config =
  {
    fuel = 200_000;
    int_bits = 32;
    pessimistic_is_exception = false;
    app_union = true;
    case_finding = true;
  }

let with_fuel fuel = { default_config with fuel }

type env = thunk Env_map.t

let empty_env = Env_map.empty
let bind = Env_map.add
let bind_whnf x w env = Env_map.add x (from_whnf w) env

type ctx = { mutable fuel : int; cfg : config }

let type_error msg = bad_at ~label:"type-error" (Exn.Type_error msg)

(* Checked arithmetic: the paper's [⊕] raises Overflow outside
   [-2^31, 2^31] (Section 4.2). *)
let arith_result cfg n =
  let bound = 1 lsl (cfg.int_bits - 1) in
  if n >= -bound && n < bound then Ok_v (VInt n)
  else bad_at ~label:"arith-overflow" Exn.Overflow

let rec eval_ctx (ctx : ctx) (env : env) (e : expr) : whnf =
  if ctx.fuel <= 0 then bad_all
  else begin
    ctx.fuel <- ctx.fuel - 1;
    match e with
    | Var x -> (
        match Env_map.find_opt x env with
        | Some t -> force t
        | None -> type_error (Printf.sprintf "unbound variable %s" x))
    | Lit (Lit_int n) -> Ok_v (VInt n)
    | Lit (Lit_char c) -> Ok_v (VChar c)
    | Lit (Lit_string s) -> Ok_v (VString s)
    | Lam (x, body) -> Ok_v (VFun (fun t -> eval_ctx ctx (bind x t env) body))
    | App (e1, e2) ->
        let arg = delay (fun () -> eval_ctx ctx env e2) in
        apply ctx (eval_ctx ctx env e1) arg
    | Con (c, es) ->
        Ok_v (VCon (c, List.map (fun e -> delay (fun () -> eval_ctx ctx env e)) es))
    | Let (x, e1, e2) ->
        let t = delay (fun () -> eval_ctx ctx env e1) in
        eval_ctx ctx (bind x t env) e2
    | Letrec (binds, body) ->
        let env_cell = ref env in
        let env' =
          List.fold_left
            (fun acc (x, e1) ->
              bind x (delay (fun () -> eval_ctx ctx !env_cell e1)) acc)
            env binds
        in
        env_cell := env';
        eval_ctx ctx env' body
    | Fix e1 ->
        (* ⟦fix e⟧ = ⊔ₖ ⟦e⟧ᵏ(⊥): the cyclic thunk below computes
           ⟦e⟧ applied to itself; a strict cycle is caught as a black
           hole by [force] and yields ⊥. *)
        force (delay_self (fun t -> apply ctx (eval_ctx ctx env e1) t))
    | Raise e1 -> (
        match exn_of_whnf (eval_ctx ctx env e1) with
        | Ok exn -> bad_at ~label:"raise" exn
        | Error w -> w)
    | Prim (p, args) -> eval_prim ctx env p args
    | Case (scrut, alts) -> eval_case ctx env (eval_ctx ctx env scrut) alts
  end

and apply ctx (f : whnf) (arg : thunk) : whnf =
  match f with
  | Ok_v (VFun g) -> g arg
  | Ok_v _ -> type_error "application of a non-function"
  | Bad s ->
      (* Exceptional function: union in the argument's exceptions, so that
         strictness-driven early evaluation of the argument stays valid
         (Section 4.2). The [app_union] ablation switches to the "simpler
         definition" the paper rejects. *)
      if ctx.cfg.app_union then Bad (Exn_set.union s (s_of (force arg)))
      else Bad s

and eval_case ctx env (scrut_w : whnf) (alts : alt list) : whnf =
  (* Exception-finding mode (Section 4.3): when the case cannot choose a
     branch, evaluate every alternative with pattern variables bound to
     Bad {} and union all the resulting exception sets with the blocking
     one.  This applies both to an exceptional scrutinee and to a value
     that matches no pattern: a failed match is just another exception
     the case raises, and covering it keeps [case_commute] an identity
     (the commuted program may surface the other scrutinee's exceptions
     first — found by fuzzing).  With [case_finding] off, "return just
     that set" — the ablation rejected in Section 4.3. *)
  let finding s =
    if not ctx.cfg.case_finding then Bad s
    else
      Bad
        (List.fold_left
           (fun acc a ->
             let env' =
               List.fold_left
                 (fun acc' x -> bind_whnf x bad_empty acc')
                 env (pat_binders a.pat)
             in
             Exn_set.union acc (s_of (eval_ctx ctx env' a.rhs)))
           s alts)
  in
  match scrut_w with
  | Ok_v v -> (
      match select_alt v alts with
      | Some (binds, rhs) ->
          let env' =
            List.fold_left (fun acc (x, t) -> bind x t acc) env binds
          in
          eval_ctx ctx env' rhs
      | None -> (
          match bad_at ~label:"case" (Exn.Pattern_match_fail "case") with
          | Bad s -> finding s
          | w -> w))
  | Bad s -> finding s

and select_alt (v : value) (alts : alt list) :
    ((string * thunk) list * expr) option =
  let matches a =
    match (a.pat, v) with
    | Pcon (c, xs), VCon (c', ts)
      when String.equal c c' && List.length xs = List.length ts ->
        Some (List.combine xs ts, a.rhs)
    | Plit (Lit_int n), VInt m when n = m -> Some ([], a.rhs)
    | Plit (Lit_char c), VChar c' when c = c' -> Some ([], a.rhs)
    | Plit (Lit_string s), VString s' when String.equal s s' ->
        Some ([], a.rhs)
    | Pany None, _ -> Some ([], a.rhs)
    | Pany (Some x), _ -> Some ([ (x, from_whnf (Ok_v v)) ], a.rhs)
    | (Pcon _ | Plit _), _ -> None
  in
  List.find_map matches alts

and eval_prim ctx env (p : Lang.Prim.t) (args : expr list) : whnf =
  let module P = Lang.Prim in
  let ev e = eval_ctx ctx env e in
  (* Force every operand and either hand the normal values to [k] or union
     all the exception sets — the generalised Section 4.2 [+] rule. *)
  let strict2 e1 e2 k =
    let w1 = ev e1 and w2 = ev e2 in
    match (w1, w2) with
    | Ok_v v1, Ok_v v2 -> k v1 v2
    | _ -> Bad (Exn_set.union (s_of w1) (s_of w2))
  in
  let strict1 e1 k = match ev e1 with Ok_v v -> k v | Bad s -> Bad s in
  let int2 e1 e2 k =
    strict2 e1 e2 (fun v1 v2 ->
        match (v1, v2) with
        | VInt a, VInt b -> k a b
        | _ -> type_error (P.name p ^ ": expected integers"))
  in
  let cmp k =
    match args with
    | [ e1; e2 ] ->
        strict2 e1 e2 (fun v1 v2 ->
            match (v1, v2) with
            | VInt a, VInt b -> vbool (k (Stdlib.compare a b))
            | VChar a, VChar b -> vbool (k (Stdlib.compare a b))
            | VString a, VString b -> vbool (k (String.compare a b))
            | VCon (a, []), VCon (b, []) -> vbool (k (String.compare a b))
            | _ -> type_error (P.name p ^ ": uncomparable values"))
    | _ -> type_error (P.name p ^ ": arity")
  in
  match (p, args) with
  | P.Add, [ e1; e2 ] -> int2 e1 e2 (fun a b -> arith_result ctx.cfg (a + b))
  | P.Sub, [ e1; e2 ] -> int2 e1 e2 (fun a b -> arith_result ctx.cfg (a - b))
  | P.Mul, [ e1; e2 ] -> int2 e1 e2 (fun a b -> arith_result ctx.cfg (a * b))
  | P.Div, [ e1; e2 ] ->
      int2 e1 e2 (fun a b ->
          if b = 0 then bad_at ~label:"div" Exn.Divide_by_zero
          else arith_result ctx.cfg (a / b))
  | P.Mod, [ e1; e2 ] ->
      int2 e1 e2 (fun a b ->
          if b = 0 then bad_at ~label:"mod" Exn.Divide_by_zero
          else arith_result ctx.cfg (a mod b))
  | P.Neg, [ e1 ] ->
      strict1 e1 (function
        | VInt a -> arith_result ctx.cfg (-a)
        | _ -> type_error "negate: expected an integer")
  | P.Eq, _ -> cmp (fun c -> c = 0)
  | P.Ne, _ -> cmp (fun c -> c <> 0)
  | P.Lt, _ -> cmp (fun c -> c < 0)
  | P.Le, _ -> cmp (fun c -> c <= 0)
  | P.Gt, _ -> cmp (fun c -> c > 0)
  | P.Ge, _ -> cmp (fun c -> c >= 0)
  | P.Seq, [ e1; e2 ] -> (
      (* seq a b ≡ case a of { _ -> b }: the imprecise case rule applies,
         so an exceptional [a] unions in the exceptions of [b]
         (exception-finding mode). *)
      match ev e1 with
      | Ok_v _ -> ev e2
      | Bad s ->
          if ctx.cfg.case_finding then Bad (Exn_set.union s (s_of (ev e2)))
          else Bad s)
  | P.Map_exception, [ ef; ev_ ] -> (
      match ev ev_ with
      | Ok_v v -> Ok_v v
      | Bad s -> Bad (map_exception_set ctx env ef s))
  | P.Unsafe_is_exception, [ e1 ] -> (
      match ev e1 with
      | Ok_v _ -> vbool false
      | Bad s ->
          if
            ctx.cfg.pessimistic_is_exception
            && Exn_set.has_non_termination s
          then bad_all
          else vbool true)
  | P.Unsafe_get_exception, [ e1 ] -> (
      (* Section 6's pure catch. Deterministic approximation: the smallest
         member stands for the set — sound only under the programmer's
         proof obligation that the set has at most one member. *)
      match ev e1 with
      | Ok_v v -> Ok_v (VCon (Lang.Syntax.c_ok, [ from_whnf (Ok_v v) ]))
      | Bad s -> (
          match Exn_set.choose s with
          | Some exn ->
              Ok_v
                (VCon
                   (Lang.Syntax.c_bad, [ from_whnf (exn_to_value exn) ]))
          | None -> Bad Exn_set.empty))
  | P.Chr, [ e1 ] ->
      strict1 e1 (function
        | VInt a when a >= 0 && a < 256 -> Ok_v (VChar (Char.chr a))
        | VInt _ -> type_error "chr: out of range"
        | _ -> type_error "chr: expected an integer")
  | P.Ord, [ e1 ] ->
      strict1 e1 (function
        | VChar c -> Ok_v (VInt (Char.code c))
        | _ -> type_error "ord: expected a character")
  | _, _ -> type_error (P.name p ^ ": arity")

(* mapException f: apply [f] to every member of the set (Section 5.4).
   [All] cannot be enumerated and maps to [All]; if [f e] is itself
   exceptional, its set is unioned into the result. *)
and map_exception_set ctx env ef s =
  let fw = eval_ctx ctx env ef in
  match s with
  | Exn_set.All -> Exn_set.All
  | Exn_set.Finite members ->
      Exn.Set.fold
        (fun exn acc ->
          let applied = apply ctx fw (from_whnf (exn_to_value exn)) in
          match exn_of_whnf applied with
          | Ok exn' -> Exn_set.union acc (Exn_set.singleton exn')
          | Error (Bad s') -> Exn_set.union acc s'
          | Error _ ->
              Exn_set.union acc
                (Exn_set.singleton
                   (Exn.Type_error "mapException: result is not an exception")))
        members Exn_set.empty

let make_ctx (config : config) : ctx = { fuel = config.fuel; cfg = config }

let eval ?(config = default_config) env e = eval_ctx (make_ctx config) env e

type handle = ctx

let handle config = make_ctx config
let refill (h : handle) = h.fuel <- h.cfg.fuel
let eval_in (h : handle) env e = eval_ctx h env e

let run ?config e = eval ?config empty_env e

let run_deep ?(config = default_config) ?(depth = 64) e =
  let ctx = make_ctx config in
  let w = eval_ctx ctx empty_env e in
  (* Deep forcing runs the residual thunks, which share [ctx]'s fuel
     budget: a divergent tail is cut off as [DBad All], not an OCaml
     loop. *)
  deep_of_whnf ~depth w

let exception_set ?config e =
  match run ?config e with Ok_v _ -> Exn_set.empty | Bad s -> s

let leq ?config ?depth a b =
  let da = run_deep ?config ?depth a and db = run_deep ?config ?depth b in
  deep_leq da db

let equal_denot ?config ?depth a b =
  let da = run_deep ?config ?depth a and db = run_deep ?config ?depth b in
  deep_equal da db
