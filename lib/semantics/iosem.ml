open Lang.Syntax
open Sem_value
module Exn = Lang.Exn

type event = E_read of char | E_write of char | E_async of Exn.t

type outcome =
  | Done of deep
  | Uncaught of Exn.t
  | Io_diverged
  | Stuck of string

type counters = {
  mutable async_delivered : int;
  mutable brackets_entered : int;
  mutable brackets_released : int;
  mutable timeouts_fired : int;
  mutable masked_sections : int;
  mutable retries : int;
  mutable throwtos_delivered : int;
  mutable blocked_recoveries : int;
}

let fresh_counters () =
  {
    async_delivered = 0;
    brackets_entered = 0;
    brackets_released = 0;
    timeouts_fired = 0;
    masked_sections = 0;
    retries = 0;
    throwtos_delivered = 0;
    blocked_recoveries = 0;
  }

type result = { trace : event list; outcome : outcome; counters : counters }

type schedule = (int * Exn.t) list

let pp_event ppf = function
  | E_read c -> Fmt.pf ppf "?%C" c
  | E_write c -> Fmt.pf ppf "!%C" c
  | E_async e -> Fmt.pf ppf "async(%a)" Exn.pp e

let pp_outcome ppf = function
  | Done d -> Fmt.pf ppf "Done %a" pp_deep d
  | Uncaught e -> Fmt.pf ppf "Uncaught %a" Exn.pp e
  | Io_diverged -> Fmt.string ppf "Io_diverged"
  | Stuck msg -> Fmt.pf ppf "Stuck %S" msg

type chan = { cap : int; buf : Sem_value.thunk Queue.t }

type state = {
  oracle : Oracle.t;
  mutable input : char list;
  mutable async : schedule;
  mutable steps : int;
  max_steps : int;
  mutable trace_rev : event list;
}

let emit st ev = st.trace_rev <- ev :: st.trace_rev

(* The pending asynchronous event, if its delivery step has been reached
   (Section 5.1): events are delivered only at getException. *)
let pending_async st =
  match st.async with
  | (k, x) :: rest when st.steps >= k ->
      st.async <- rest;
      Some x
  | _ -> None

(* The IO continuation stack. Plain [>>=] continuations ride alongside the
   administrative frames of the exception-safety combinators; normal
   returns pop frames with [pop], exceptions trim them with [unwind] —
   running the protected cleanups on the way down, exactly like the
   machine's trim-the-stack rule but one level up. *)
type frame =
  | F_k of thunk  (** [>>=] continuation awaiting the result. *)
  | F_bracket of thunk * thunk
      (** [(release, use)] — the acquire action is running (masked). *)
  | F_release of thunk
      (** The applied release action; runs on either exit path. *)
  | F_onexn of thunk  (** Handler, run only on the exceptional path. *)
  | F_mask_pop  (** Leave a [Mask] section. *)
  | F_unmask_pop  (** Leave an [Unmask] section. *)
  | F_timeout of int  (** Deadline in transitions. *)
  | F_retry of thunk * int * int
      (** [(action, attempts_left, next_backoff)]. *)
  | F_rethrow of Exn.t
      (** Continue unwinding with this exception once the cleanup above
          finishes normally; a cleanup that itself raises wins. *)
  | F_restore of thunk
      (** Continue popping with this saved value once the cleanup above
          finishes (the cleanup's own result is discarded). *)
  | F_catch
      (** [getException] on an IO action (GHC's [try]): the action runs
          above this frame; a normal result pops as [OK v], an unwinding
          exception is stopped here and pops as [Bad e]. *)

let run ?(config = Denot.default_config) ?(oracle = Oracle.first ())
    ?(trace = Obs.create ()) ?(input = "") ?(async = [])
    ?(max_steps = 100_000) (e : expr) =
  let tr = trace in
  let st =
    {
      oracle;
      input = List.init (String.length input) (String.get input);
      async;
      steps = 0;
      max_steps;
      trace_rev = [];
    }
  in
  let counters = fresh_counters () in
  (* Ask the oracle for a member of [s], recording both the chosen member
     and the members that were *not* chosen — the imprecision the
     operational layer hides. *)
  let pick s =
    let x = Oracle.pick_exception st.oracle s in
    if Obs.on tr then begin
      let unchosen =
        match Exn_set.elements s with
        | None -> []
        | Some es -> List.filter (fun e -> e <> x) es
      in
      Obs.record tr (Obs.Ev_oracle_pick (x, unchosen))
    end;
    x
  in
  (* Bounded channels in a single-threaded driver: a buffered operation
     proceeds immediately, while a blocking one is hopeless — nobody else
     can ever fill or drain the buffer — so it receives the catchable
     [Blocked_indefinitely] at once, matching {!Conc}'s quiescence
     behaviour on the same term (channel blocking is interruptible even
     under a mask, so delivery here ignores the mask too). *)
  let chans : (int, chan) Hashtbl.t = Hashtbl.create 8 in
  let next_chan = ref 0 in
  let as_chan_id (w : whnf) : (int, string) Result.t =
    match w with
    | Ok_v (VCon (c, [ idt ])) when String.equal c "ChanRef" -> (
        match force idt with
        | Ok_v (VInt id) -> Result.Ok id
        | _ -> Result.Error "corrupt channel reference")
    | _ -> Result.Error "not a channel"
  in
  let mask = ref 0 in
  let enter_mask () =
    incr mask;
    counters.masked_sections <- counters.masked_sections + 1;
    if Obs.on tr then Obs.record tr Obs.Ev_mask_push
  in
  let leave_mask () =
    mask := max 0 (!mask - 1);
    if Obs.on tr then Obs.record tr Obs.Ev_mask_pop
  in
  let fuel_handle = Denot.handle config in
  let main_thunk =
    delay (fun () -> Denot.eval_in fuel_handle Denot.empty_env e)
  in
  let return_thunk w = from_whnf (Ok_v (VCon (c_return, [ from_whnf w ]))) in
  (* Lazy application for release/use functions: an ill-typed "function"
     surfaces as an exceptional IO value, which then unwinds normally. *)
  let apply f_thunk arg =
    delay (fun () ->
        match force f_thunk with
        | Ok_v (VFun f) -> f arg
        | Ok_v _ ->
            Bad (Exn_set.singleton (Exn.Type_error "applied a non-function"))
        | Bad s -> Bad s)
  in
  let expired stack =
    !mask = 0
    && List.exists
         (function F_timeout d -> d <= st.steps | _ -> false)
         stack
  in
  let rec perform (m : thunk) (stack : frame list) : outcome =
    if st.steps >= st.max_steps then Io_diverged
    else begin
      st.steps <- st.steps + 1;
      (* Each transition gets a fresh approximation budget (a transition
         that hits bottom must not starve the rest of the program). *)
      Denot.refill fuel_handle;
      if expired stack then begin
        counters.timeouts_fired <- counters.timeouts_fired + 1;
        if Obs.on tr then Obs.record tr (Obs.Ev_io "timeout fired");
        unwind Exn.Timeout stack
      end
      else
        match force m with
        | Bad s -> (
            (* The IO structure itself is exceptional: unwind (running any
               pending releases), then report uncaught. *)
            if Oracle.diverge_on_non_termination st.oracle s then Io_diverged
            else
              match Exn_set.choose s with
              | None -> Stuck "exceptional IO value with empty set"
              | Some _ -> unwind (pick s) stack)
        | Ok_v (VCon (c, [ t ])) when String.equal c c_return -> pop t stack
        | Ok_v (VCon (c, [ m1; k ])) when String.equal c c_bind ->
            perform m1 (F_k k :: stack)
        | Ok_v (VCon (c, [])) when String.equal c c_get_char -> (
            match st.input with
            | [] -> Stuck "getChar: end of input"
            | ch :: rest ->
                st.input <- rest;
                emit st (E_read ch);
                perform (return_thunk (Ok_v (VChar ch))) stack)
        | Ok_v (VCon (c, [ t ])) when String.equal c c_put_char -> (
            match force t with
            | Ok_v (VChar ch) ->
                emit st (E_write ch);
                perform (return_thunk (vcon0 c_unit)) stack
            | Ok_v _ -> Stuck "putChar: not a character"
            | Bad s -> unwind (pick s) stack)
        | Ok_v (VCon (c, [ t ])) when String.equal c c_get_exception -> (
            match if !mask = 0 then pending_async st else None with
            | Some x ->
                (* getException v —¡x→ return (Bad x): v may be discarded
                   even if normal (Section 5.1). *)
                counters.async_delivered <- counters.async_delivered + 1;
                if Obs.on tr then begin
                  Obs.record tr (Obs.Ev_async x);
                  Obs.record tr (Obs.Ev_catch (Some x))
                end;
                emit st (E_async x);
                perform
                  (return_thunk
                     (Ok_v (VCon (c_bad, [ from_whnf (exn_to_value x) ]))))
                  stack
            | None -> (
                match force t with
                | Ok_v (VCon (cn, _) as v) when is_io_action_constructor cn ->
                    (* getException on an IO action: perform it under a
                       catch frame (GHC's [try]) so an exception raised
                       anywhere in the action — including one delivered
                       while it is blocked, in the concurrent layers —
                       pops here as [Bad]. *)
                    perform (from_whnf (Ok_v v)) (F_catch :: stack)
                | Ok_v v ->
                    if Obs.on tr then Obs.record tr (Obs.Ev_catch None);
                    perform
                      (return_thunk
                         (Ok_v (VCon (c_ok, [ from_whnf (Ok_v v) ]))))
                      stack
                | Bad s ->
                    if Oracle.diverge_on_non_termination st.oracle s then
                      Io_diverged
                    else if Exn_set.is_empty s then
                      Stuck "getException: empty exception set"
                    else
                      let x = pick s in
                      if Obs.on tr then Obs.record tr (Obs.Ev_catch (Some x));
                      perform
                        (return_thunk
                           (Ok_v
                              (VCon (c_bad, [ from_whnf (exn_to_value x) ]))))
                        stack))
        | Ok_v (VCon (c, [ t ])) when String.equal c c_evaluate -> (
            (* evaluate e: the precise forcing point. The argument is
               forced to WHNF *as this action is performed*, so its
               imprecise exception set collapses to a member at exactly
               this point in the IO sequence — unlike [return e], whose
               payload stays lazy, and observably unlike the pure value
               [Evaluate e] (an OK constructor even when e is Bad; see
               the evaluate_is_seq_return law). *)
            match force t with
            | Ok_v v -> perform (return_thunk (Ok_v v)) stack
            | Bad s ->
                if Oracle.diverge_on_non_termination st.oracle s then
                  Io_diverged
                else if Exn_set.is_empty s then
                  Stuck "evaluate: empty exception set"
                else unwind (pick s) stack)
        | Ok_v (VCon (c, [ acq; rel; use ])) when String.equal c c_bracket ->
            (* The acquire phase runs masked, so an async event cannot slip
               in between acquire completing and the release being
               registered. *)
            enter_mask ();
            perform acq (F_bracket (rel, use) :: stack)
        | Ok_v (VCon (c, [ m1; h ])) when String.equal c c_on_exception ->
            perform m1 (F_onexn h :: stack)
        | Ok_v (VCon (c, [ m1 ])) when String.equal c c_mask ->
            enter_mask ();
            perform m1 (F_mask_pop :: stack)
        | Ok_v (VCon (c, [ m1 ])) when String.equal c c_unmask ->
            leave_mask ();
            perform m1 (F_unmask_pop :: stack)
        | Ok_v (VCon (c, [ n; m1 ])) when String.equal c c_timeout -> (
            match force n with
            | Ok_v (VInt k) ->
                perform m1 (F_timeout (st.steps + max 0 k) :: stack)
            | Ok_v _ -> Stuck "timeout: budget is not an integer"
            | Bad s -> unwind (pick s) stack)
        | Ok_v (VCon (c, [ n; b; m1 ])) when String.equal c c_retry -> (
            match (force n, force b) with
            | Ok_v (VInt attempts), Ok_v (VInt backoff) ->
                perform m1
                  (F_retry (m1, max 0 attempts, max 1 backoff) :: stack)
            | Bad s, _ | _, Bad s -> unwind (pick s) stack
            | _ -> Stuck "retry: attempts/backoff are not integers")
        | Ok_v (VCon (c, [])) when String.equal c "MyThreadId" ->
            (* The single-threaded layer is its own main thread 0. *)
            perform
              (return_thunk
                 (Ok_v
                    (VCon ("ThreadId", [ from_whnf (Ok_v (VInt 0)) ]))))
              stack
        | Ok_v (VCon (c, [ tt; et ])) when String.equal c "ThrowTo" -> (
            match force tt with
            | Ok_v (VCon (ct, [ nt ])) when String.equal ct "ThreadId" -> (
                match force nt with
                | Ok_v (VInt tid) -> (
                    match exn_of_whnf (force et) with
                    | Ok x ->
                        if tid = 0 then begin
                          (* throwTo to oneself is synchronous (GHC):
                             deliver regardless of masking. *)
                          counters.throwtos_delivered <-
                            counters.throwtos_delivered + 1;
                          if Obs.on tr then begin
                            Obs.record tr (Obs.Ev_throwto (0, 0, x));
                            Obs.record tr (Obs.Ev_kill_delivered (0, x))
                          end;
                          unwind x stack
                        end
                        else
                          (* No such thread here: a send to a dead or
                             unknown ThreadId is a no-op. *)
                          perform (return_thunk (vcon0 c_unit)) stack
                    | Error (Bad s) -> unwind (pick s) stack
                    | Error _ ->
                        unwind
                          (Exn.Type_error "throwTo: not an exception")
                          stack)
                | Ok_v _ ->
                    unwind (Exn.Type_error "throwTo: not a ThreadId") stack
                | Bad s -> unwind (pick s) stack)
            | Ok_v _ ->
                unwind (Exn.Type_error "throwTo: not a ThreadId") stack
            | Bad s -> unwind (pick s) stack)
        | Ok_v (VCon (c, [ n ])) when String.equal c "NewChan" -> (
            match force n with
            | Ok_v (VInt k) ->
                let id = !next_chan in
                incr next_chan;
                Hashtbl.replace chans id
                  { cap = max 1 k; buf = Queue.create () };
                perform
                  (return_thunk
                     (Ok_v (VCon ("ChanRef", [ from_whnf (Ok_v (VInt id)) ]))))
                  stack
            | Ok_v _ -> Stuck "newChan: capacity is not an integer"
            | Bad s -> unwind (pick s) stack)
        | Ok_v (VCon (c, [ r ])) when String.equal c "ReadChan" -> (
            match as_chan_id (force r) with
            | Result.Error msg -> unwind (Exn.Type_error msg) stack
            | Result.Ok id ->
                let ch = Hashtbl.find chans id in
                if Queue.is_empty ch.buf then blocked_forever stack
                else perform (return_thunk (force (Queue.pop ch.buf))) stack)
        | Ok_v (VCon (c, [ r; v ])) when String.equal c "WriteChan" -> (
            match as_chan_id (force r) with
            | Result.Error msg -> unwind (Exn.Type_error msg) stack
            | Result.Ok id ->
                let ch = Hashtbl.find chans id in
                if Queue.length ch.buf >= ch.cap then blocked_forever stack
                else begin
                  Queue.push v ch.buf;
                  perform (return_thunk (vcon0 c_unit)) stack
                end)
        | Ok_v _ -> Stuck "not an IO value"
    end
  (* A channel operation that would block can never be woken here. *)
  and blocked_forever (stack : frame list) : outcome =
    counters.blocked_recoveries <- counters.blocked_recoveries + 1;
    if Obs.on tr then Obs.record tr (Obs.Ev_blocked_recover 0);
    emit st (E_async Exn.Blocked_indefinitely);
    unwind Exn.Blocked_indefinitely stack
  (* Normal return: pop administrative frames until the next [>>=]
     continuation (or the bottom of the stack). *)
  and pop (v : thunk) (stack : frame list) : outcome =
    match stack with
    | [] ->
        (* The final deep force is its own transition: it must not run on
           whatever fuel the last action left over. *)
        Denot.refill fuel_handle;
        Done (deep_force ~depth:64 v)
    | F_k k :: rest -> (
        (* Looking up the next continuation starts a new transition.
           Without the refill, an action whose forcing exhausted the
           budget (so it collapsed to [Bad All]) would poison the force
           of [k] too — and an exception an enclosing [F_catch] just
           caught would spuriously escape as uncaught. *)
        Denot.refill fuel_handle;
        match force k with
        | Ok_v (VFun f) -> perform (delay (fun () -> f v)) rest
        | Ok_v _ -> Stuck ">>=: continuation is not a function"
        | Bad s -> unwind (pick s) rest)
    | F_bracket (rel, use) :: rest ->
        (* Acquire finished: the release is now registered; unmask and run
           the use phase under its protection. *)
        counters.brackets_entered <- counters.brackets_entered + 1;
        if Obs.on tr then Obs.record tr Obs.Ev_acquire;
        leave_mask ();
        perform (apply use v) (F_release (apply rel v) :: rest)
    | F_release r :: rest ->
        counters.brackets_released <- counters.brackets_released + 1;
        if Obs.on tr then Obs.record tr Obs.Ev_release;
        enter_mask ();
        perform r (F_mask_pop :: F_restore v :: rest)
    | F_onexn _ :: rest -> pop v rest
    | F_mask_pop :: rest ->
        leave_mask ();
        pop v rest
    | F_unmask_pop :: rest ->
        incr mask;
        pop v rest
    | F_timeout _ :: rest ->
        pop (from_whnf (Ok_v (VCon (c_just, [ v ])))) rest
    | F_retry _ :: rest -> pop v rest
    | F_rethrow e :: rest -> unwind e rest
    | F_restore saved :: rest -> pop saved rest
    | F_catch :: rest ->
        if Obs.on tr then Obs.record tr (Obs.Ev_catch None);
        pop (from_whnf (Ok_v (VCon (c_ok, [ v ])))) rest
  (* Exceptional return: trim the stack, running releases and handlers. *)
  and unwind (e : Exn.t) (stack : frame list) : outcome =
    match stack with
    | [] -> Uncaught e
    | F_k _ :: rest -> unwind e rest
    | F_bracket _ :: rest ->
        (* The acquire itself failed: nothing was acquired, nothing to
           release. *)
        leave_mask ();
        unwind e rest
    | F_release r :: rest ->
        counters.brackets_released <- counters.brackets_released + 1;
        if Obs.on tr then Obs.record tr Obs.Ev_release;
        enter_mask ();
        perform r (F_mask_pop :: F_rethrow e :: rest)
    | F_onexn h :: rest ->
        enter_mask ();
        perform h (F_mask_pop :: F_rethrow e :: rest)
    | F_mask_pop :: rest ->
        leave_mask ();
        unwind e rest
    | F_unmask_pop :: rest ->
        incr mask;
        unwind e rest
    | F_timeout _ :: rest when e = Exn.Timeout ->
        pop (from_whnf (Ok_v (VCon (c_nothing, [])))) rest
    | F_timeout _ :: rest -> unwind e rest
    | F_retry (action, attempts, backoff) :: rest ->
        if attempts > 0 then begin
          counters.retries <- counters.retries + 1;
          (* Deterministic backoff: advance the transition clock, so the
             wait interacts reproducibly with timeouts and the async
             schedule. *)
          st.steps <- st.steps + backoff;
          perform action (F_retry (action, attempts - 1, 2 * backoff) :: rest)
        end
        else unwind e rest
    | F_rethrow _ :: rest ->
        (* A cleanup raised while unwinding: the newer exception wins. *)
        unwind e rest
    | F_restore _ :: rest -> unwind e rest
    | F_catch :: rest ->
        if Obs.on tr then Obs.record tr (Obs.Ev_catch (Some e));
        pop (from_whnf (Ok_v (VCon (c_bad, [ from_whnf (exn_to_value e) ]))))
          rest
  in
  let outcome = perform main_thunk [] in
  { trace = List.rev st.trace_rev; outcome; counters }

let output_string_of r =
  let buf = Buffer.create 16 in
  List.iter
    (function E_write c -> Buffer.add_char buf c | E_read _ | E_async _ -> ())
    r.trace;
  Buffer.contents buf
