module Exn = Lang.Exn

type t = All | Finite of Exn.Set.t

let bottom = All
let empty = Finite Exn.Set.empty
let singleton e = Finite (Exn.Set.singleton e)
let of_list es = Finite (Exn.Set.of_list es)

let union a b =
  match (a, b) with
  | All, _ | _, All -> All
  | Finite s1, Finite s2 -> Finite (Exn.Set.union s1 s2)

let mem e = function All -> true | Finite s -> Exn.Set.mem e s
let is_empty = function All -> false | Finite s -> Exn.Set.is_empty s
let is_all = function All -> true | Finite _ -> false

let leq a b =
  match (a, b) with
  | All, _ -> true
  | Finite _, All -> false
  | Finite s1, Finite s2 -> Exn.Set.subset s2 s1

let equal a b =
  match (a, b) with
  | All, All -> true
  | Finite s1, Finite s2 -> Exn.Set.equal s1 s2
  | All, Finite _ | Finite _, All -> false

let compare a b =
  match (a, b) with
  | All, All -> 0
  | All, Finite _ -> -1
  | Finite _, All -> 1
  | Finite s1, Finite s2 -> Exn.Set.compare s1 s2

let has_non_termination = mem Exn.Non_termination

let choose = function
  | All -> Some Exn.Non_termination
  | Finite s -> Exn.Set.min_elt_opt s

let elements = function All -> None | Finite s -> Some (Exn.Set.elements s)
let cardinal = function All -> None | Finite s -> Some (Exn.Set.cardinal s)

let map f = function
  | All -> All
  | Finite s -> Finite (Exn.Set.map f s)

(* Formerly (mis)named [filter_async]: it always *kept* the synchronous
   members, i.e. dropped the asynchronous ones. *)
let drop_async = function
  | All -> All
  | Finite s -> Finite (Exn.Set.filter Exn.is_synchronous s)

let keep_async = function
  | All -> All
  | Finite s -> Finite (Exn.Set.filter Exn.is_asynchronous s)

let pp ppf = function
  | All -> Fmt.string ppf "{ALL}"
  | Finite s ->
      Fmt.pf ppf "{%a}" Fmt.(list ~sep:comma Exn.pp) (Exn.Set.elements s)

let pp_annotated pp_exn ppf = function
  | All -> Fmt.string ppf "{ALL}"
  | Finite s ->
      Fmt.pf ppf "{%a}" Fmt.(list ~sep:comma pp_exn) (Exn.Set.elements s)
