(** Type-directed random term generation for property-based, differential
    and fuzz testing.

    Terms are well-typed by construction (so the only runtime failures are
    the interesting ones: raised exceptions, overflow, and — when
    [letrec_weight > 0] — detectable black holes), closed up to Prelude
    names ({!cfg.use_prelude} terms must be wrapped with
    {!Lang.Prelude.wrap} before evaluation), and terminating by
    construction except through exceptions and the explicit black-holing
    letrec — recursion otherwise enters only through Prelude functions
    applied to finite structures.

    The [sized] size parameter maps {e monotonically} to generation depth,
    so QCheck2's integrated shrinking of the random choices genuinely
    reduces a failing term instead of regenerating an unrelated one; the
    structural {!shrink} below is the complementary explicit reducer used
    by the fuzzer's minimiser. *)

type ty = T_int | T_bool | T_list_int | T_fun_ii
    (** [T_fun_ii] = int → int. *)

type cfg = {
  raise_weight : int;
      (** Relative weight of raise sites (0 = exception-free terms). *)
  div_weight : int;  (** Relative weight of [/] and [%] (0 = no division). *)
  max_depth : int;
  use_prelude : bool;  (** Allow calls to Prelude list functions. *)
  letrec_weight : int;
      (** Relative weight of [letrec] nodes: the detectable black hole of
          Section 5.2 and bounded recursion through a letrec binder
          (0 = none; {!pure_cfg} disables them to keep terms total). *)
  map_exception_weight : int;
      (** Relative weight of [mapException f e] nodes (Section 5.4);
          mappers are identity, a constant relabel, and a payload
          rewrite. *)
  sharing_weight : int;
      (** Relative weight of bindings demanded more than once ([let x = e
          in x + x], shared list elements): the call-by-need sharing whose
          poison-replay the machine must preserve (Section 3.3 fn. 3). *)
  io_combinators : bool;
      (** Allow [Bracket]/[Mask]/[WithTimeout]/[OnException] nodes in
          {!gen_io} programs. *)
}

val default_cfg : cfg
val pure_cfg : cfg
(** No raise sites, no division, no black holes: evaluates to a value. *)

val gen : ?cfg:cfg -> ty -> Lang.Syntax.expr QCheck2.Gen.t
(** A closed term of the given type. *)

val gen_int : ?cfg:cfg -> unit -> Lang.Syntax.expr QCheck2.Gen.t
val gen_list : ?cfg:cfg -> unit -> Lang.Syntax.expr QCheck2.Gen.t

val gen_io : ?cfg:cfg -> unit -> Lang.Syntax.expr QCheck2.Gen.t
(** A closed program of type [IO Int]: [return]/[>>=] chains, [putInt] of
    generated integer expressions, fully-handled [getException]
    recoveries, and (with {!cfg.io_combinators}) bracket / mask / timeout
    / onException skeletons — used to test the semantic and machine IO
    drivers against each other. *)

val gen_conc : ?cfg:cfg -> unit -> Lang.Syntax.expr QCheck2.Gen.t
(** A closed [IO Int] program using [forkIO]/[MVar]s with a fixed,
    deadlock-free communication skeleton and generated payloads — for the
    two concurrent layers only. *)

val print_expr : Lang.Syntax.expr -> string
(** For QCheck counterexample reporting. *)

val shrink : Lang.Syntax.expr -> Lang.Syntax.expr list
(** Structural shrink candidates, smallest first: subterms, β-contractions,
    let/letrec elimination, case collapse to scrutinee or a closed
    alternative, literal reduction. Every candidate strictly decreases
    (AST size, |literal|), so any greedy minimisation loop that replaces a
    term by one of its candidates terminates. *)
