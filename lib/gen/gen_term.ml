open Lang.Syntax
module B = Lang.Builder
module G = QCheck2.Gen

type ty = T_int | T_bool | T_list_int | T_fun_ii

type cfg = {
  raise_weight : int;
  div_weight : int;
  max_depth : int;
  use_prelude : bool;
  letrec_weight : int;
  map_exception_weight : int;
  sharing_weight : int;
  io_combinators : bool;
}

let default_cfg =
  {
    raise_weight = 2;
    div_weight = 2;
    max_depth = 4;
    use_prelude = true;
    letrec_weight = 1;
    map_exception_weight = 1;
    sharing_weight = 2;
    io_combinators = true;
  }

let pure_cfg =
  {
    default_cfg with
    raise_weight = 0;
    div_weight = 0;
    letrec_weight = 0;
  }

(* Environment: variables in scope, by type. *)
type env = (string * ty) list

let vars_of env ty =
  List.filter_map
    (fun (x, t) -> if t = ty then Some (Var x) else None)
    env

let fresh_name =
  let c = ref 0 in
  fun () ->
    incr c;
    Printf.sprintf "g%d" !c

(* The generator owns three declared exception constructors so every
   fuzz campaign exercises the open vocabulary: a bare tag, an Int
   payload and a String payload. [Exn.declare] is idempotent, so
   re-linking the module is harmless. *)
let () =
  Lang.Exn.declare "GenExnA" Lang.Exn.K_none;
  Lang.Exn.declare "GenExnB" Lang.Exn.K_int;
  Lang.Exn.declare "GenExnC" Lang.Exn.K_string

let gen_exn_site : expr G.t =
  G.oneof
    [
      G.return (B.raise_exn Lang.Exn.Divide_by_zero);
      G.map (fun n -> B.error (Printf.sprintf "e%d" (abs n mod 4)))
        G.small_int;
      G.return (B.raise_exn Lang.Exn.Overflow);
      G.return B.(int 1 / int 0);
      G.return (B.raise_exn (Lang.Exn.User_exception ("GenExnA", None)));
      G.map
        (fun n ->
          B.raise_exn
            (Lang.Exn.User_exception
               ("GenExnB", Some (Lang.Exn.P_int (abs n mod 8)))))
        G.small_int;
      G.return
        (B.raise_exn
           (Lang.Exn.User_exception
              ("GenExnC", Some (Lang.Exn.P_string "gen"))));
    ]

let small_lit = G.map (fun n -> B.int n) (G.int_range (-20) 20)

(* The exception-to-exception mappers fed to [mapException]: identity, a
   constant relabel, and a payload rewrite. All are closed and typed
   [Exception -> Exception]. *)
let gen_mapper : expr G.t =
  G.oneofl
    [
      B.lam "e" (B.var "e");
      B.lam "e" (B.exn_con Lang.Exn.Overflow);
      B.lam "e" (B.exn_con (Lang.Exn.User_error "mapped"));
      B.lam "e"
        (B.exn_con
           (Lang.Exn.User_exception ("GenExnB", Some (Lang.Exn.P_int 1))));
    ]

let rec gen_ty cfg (env : env) depth ty : expr G.t =
  if depth <= 0 then gen_leaf cfg env ty
  else
    match ty with
    | T_int -> gen_int_node cfg env depth
    | T_bool -> gen_bool_node cfg env depth
    | T_list_int -> gen_list_node cfg env depth
    | T_fun_ii ->
        let x = fresh_name () in
        G.map
          (fun body -> B.lam x body)
          (gen_ty cfg ((x, T_int) :: env) (depth - 1) T_int)

and gen_leaf cfg env ty : expr G.t =
  let leaf_vars = vars_of env ty in
  (* Constant leaves come first: QCheck2's integrated shrinking steers
     choices toward the head of the list, so failures report literal
     leaves rather than environment variables where possible. *)
  let base =
    match ty with
    | T_int -> [ small_lit ]
    | T_bool -> [ G.oneofl [ B.true_; B.false_ ] ]
    | T_list_int ->
        [
          G.return B.nil;
          G.map (fun n -> B.list [ B.int n ]) (G.int_range 0 9);
        ]
    | T_fun_ii ->
        [
          G.return (B.lam "z" (B.var "z"));
          G.map (fun n -> B.lam "z" B.(var "z" + int n)) (G.int_range 0 5);
        ]
  in
  let with_vars =
    if leaf_vars = [] then base else base @ [ G.oneofl leaf_vars ]
  in
  let with_raise =
    if cfg.raise_weight > 0 && ty <> T_fun_ii then
      with_vars @ [ gen_exn_site ]
    else with_vars
  in
  G.oneof with_raise

and gen_int_node cfg env depth : expr G.t =
  let sub = gen_ty cfg env (depth - 1) in
  let arith =
    G.oneofl [ Lang.Prim.Add; Lang.Prim.Sub; Lang.Prim.Mul ]
    |> fun gp -> G.bind gp (fun p ->
           G.map2 (fun a b -> Prim (p, [ a; b ])) (sub T_int) (sub T_int))
  in
  let division =
    G.oneofl [ Lang.Prim.Div; Lang.Prim.Mod ]
    |> fun gp -> G.bind gp (fun p ->
           G.map2 (fun a b -> Prim (p, [ a; b ])) (sub T_int) (sub T_int))
  in
  let conditional =
    G.map3 (fun c t f -> B.if_ c t f) (sub T_bool) (sub T_int) (sub T_int)
  in
  let let_bound =
    let x = fresh_name () in
    G.map2
      (fun e1 e2 -> Let (x, e1, e2))
      (sub T_int)
      (gen_ty cfg ((x, T_int) :: env) (depth - 1) T_int)
  in
  (* A binding used more than once: the call-by-need sharing that the
     machine's poison-replay (Section 3.3, footnote 3) must preserve —
     forcing the thunk a second time has to replay the same exception. *)
  let shared_let =
    let x = fresh_name () in
    let ctxs =
      [
        B.(var x + var x);
        B.(seq (var x) (var x));
        B.(var x * (var x + int 1));
        Con (c_pair, [ Var x; Var x ])
        |> fun p ->
        Case (p, [ { pat = Pcon (c_pair, [ "a"; "b" ]);
                     rhs = B.(var "a" + var "b") } ]);
      ]
    in
    G.map2 (fun body e -> Let (x, e, body)) (G.oneofl ctxs) (sub T_int)
  in
  let beta_redex =
    let x = fresh_name () in
    G.map2
      (fun body arg -> App (B.lam x body, arg))
      (gen_ty cfg ((x, T_int) :: env) (depth - 1) T_int)
      (sub T_int)
  in
  let apply_fun =
    G.map2 (fun f a -> App (f, a)) (sub T_fun_ii) (sub T_int)
  in
  let seq_evaluate =
    (* [seq (evaluate a) b]: as a value [evaluate a] is a WHNF
       constructor whatever [a] denotes, so this reaches the
       evaluate_is_seq_return law site in pure terms. *)
    G.map2
      (fun a b -> B.seq (Con (c_evaluate, [ a ])) b)
      (sub T_int) (sub T_int)
  in
  let seq_e =
    G.map2 (fun a b -> B.seq a b) (sub T_int) (sub T_int)
  in
  let map_exc =
    G.map2 (fun f e -> B.map_exception f e) gen_mapper (sub T_int)
  in
  let letrec_e =
    let f = fresh_name () and n = fresh_name () in
    G.oneof
      [
        (* The black hole of Section 5.2: cyclic demand, detectable. *)
        G.return (Letrec ([ (f, B.(var f + int 1)) ], Var f));
        (* Bounded structural recursion through a letrec binder. *)
        G.map2
          (fun base k ->
            Letrec
              ( [
                  ( f,
                    B.lam n
                      (B.if_
                         B.(var n <= int 0)
                         base
                         B.(var n + App (Var f, var n - int 1))) );
                ],
                App (Var f, B.int k) ))
          (gen_leaf cfg env T_int) (G.int_range 0 6);
      ]
  in
  let case_list =
    let x = fresh_name () and xs = fresh_name () in
    G.map3
      (fun scrut nil_rhs cons_rhs ->
        Case
          ( scrut,
            [
              { pat = Pcon (c_nil, []); rhs = nil_rhs };
              { pat = Pcon (c_cons, [ x; xs ]); rhs = cons_rhs };
            ] ))
      (sub T_list_int) (sub T_int)
      (gen_ty cfg ((x, T_int) :: (xs, T_list_int) :: env) (depth - 1) T_int)
  in
  let prelude_calls =
    if not cfg.use_prelude then []
    else
      [
        ( 2,
          G.map (fun l -> App (Var "sum", l)) (sub T_list_int) );
        ( 2,
          G.map (fun l -> App (Var "length", l)) (sub T_list_int) );
        ( 1,
          G.map2
            (fun l n -> B.apps (Var "index") [ l; n ])
            (sub T_list_int) (sub T_int) );
        ( 1,
          G.map (fun l -> App (Var "head", l)) (sub T_list_int) );
      ]
  in
  let weighted =
    [
      (4, gen_leaf cfg env T_int);
      (4, arith);
      (cfg.div_weight, division);
      (3, conditional);
      (2, let_bound);
      (cfg.sharing_weight, shared_let);
      (2, beta_redex);
      (2, apply_fun);
      (1, seq_e);
      (1, seq_evaluate);
      (cfg.map_exception_weight, map_exc);
      (cfg.letrec_weight, letrec_e);
      (2, case_list);
      (cfg.raise_weight, gen_exn_site);
    ]
    @ prelude_calls
  in
  G.frequency (List.filter (fun (w, _) -> w > 0) weighted)

and gen_bool_node cfg env depth : expr G.t =
  let sub = gen_ty cfg env (depth - 1) in
  let cmp =
    G.oneofl
      [ Lang.Prim.Eq; Lang.Prim.Ne; Lang.Prim.Lt; Lang.Prim.Le ]
    |> fun gp -> G.bind gp (fun p ->
           G.map2 (fun a b -> Prim (p, [ a; b ])) (sub T_int) (sub T_int))
  in
  let not_e = G.map (fun b -> B.if_ b B.false_ B.true_) (sub T_bool) in
  let null_e =
    if cfg.use_prelude then
      [ (1, G.map (fun l -> App (Var "null", l)) (sub T_list_int)) ]
    else []
  in
  G.frequency
    ([ (3, gen_leaf cfg env T_bool); (4, cmp); (1, not_e) ] @ null_e)

and gen_list_node cfg env depth : expr G.t =
  let sub = gen_ty cfg env (depth - 1) in
  let cons_e =
    G.map2 (fun x xs -> B.cons x xs) (sub T_int) (sub T_list_int)
  in
  let shared_cons =
    (* The same element thunk in two list positions — deep forcing visits
       it twice, exercising update/replay on structured results. *)
    let x = fresh_name () in
    G.map2
      (fun e tail -> Let (x, e, B.cons (Var x) (B.cons (Var x) tail)))
      (sub T_int) (sub T_list_int)
  in
  let map_exc =
    G.map2 (fun f l -> B.map_exception f l) gen_mapper (sub T_list_int)
  in
  let enum =
    G.map2
      (fun lo n -> B.apps (Var "enumFromTo") [ B.int lo; B.int (lo + n) ])
      (G.int_range (-5) 5) (G.int_range 0 8)
  in
  let take_e =
    G.map2
      (fun n l -> B.apps (Var "take") [ B.int n; l ])
      (G.int_range 0 6) (sub T_list_int)
  in
  let map_e =
    G.map2 (fun f l -> B.apps (Var "map") [ f; l ]) (sub T_fun_ii)
      (sub T_list_int)
  in
  let append_e =
    G.map2
      (fun a b -> B.apps (Var "append") [ a; b ])
      (sub T_list_int) (sub T_list_int)
  in
  let take_iterate =
    G.map3
      (fun n f x ->
        B.apps (Var "take") [ B.int n; B.apps (Var "iterate") [ f; x ] ])
      (G.int_range 0 5) (sub T_fun_ii) (sub T_int)
  in
  let prelude =
    if cfg.use_prelude then
      [ (2, enum); (2, take_e); (2, map_e); (1, append_e); (1, take_iterate) ]
    else []
  in
  G.frequency
    ([
       (3, gen_leaf cfg env T_list_int);
       (3, cons_e);
       (cfg.sharing_weight, shared_cons);
       (cfg.map_exception_weight, map_exc);
     ]
    @ prelude)

(* IO Int programs: a bind-chain of actions over the int generator. *)
let rec gen_io_node cfg env depth : expr G.t =
  let int_e = gen_ty cfg env (max 1 (depth - 1)) T_int in
  let ret = G.map (fun e -> B.io_return e) int_e in
  if depth <= 0 then ret
  else
    let bind_chain =
      let x = fresh_name () in
      G.map2
        (fun m k -> B.io_bind m (B.lam x k))
        (gen_io_node cfg env (depth - 1))
        (gen_io_node cfg ((x, T_int) :: env) (depth - 1))
    in
    let put_then =
      G.map2
        (fun e rest ->
          B.io_bind
            (App (Var "putInt", e))
            (B.lam "_" rest))
        int_e
        (gen_io_node cfg env (depth - 1))
    in
    let catch_recover =
      (* getException e >>= \r -> case r of OK v -> return v; Bad _ -> 0 *)
      let r = fresh_name () and v = fresh_name () in
      G.map
        (fun e ->
          B.io_bind
            (B.get_exception e)
            (B.lam r
               (Case
                  ( Var r,
                    [
                      {
                        pat = Pcon (c_ok, [ v ]);
                        rhs = B.io_return (Var v);
                      };
                      {
                        pat = Pcon (c_bad, [ "_e" ]);
                        rhs = B.io_return (B.int 0);
                      };
                    ] ))))
        int_e
    in
    let combinators =
      if not cfg.io_combinators then []
      else
        let r = fresh_name () in
        [
          ( 1,
            (* Sequential channel roundtrip: buffered write then read,
               exercising the channel path of the single-threaded layers. *)
            let c = fresh_name () and v = fresh_name () in
            G.map2
              (fun e rest ->
                B.io_bind
                  (Con ("NewChan", [ B.int 1 ]))
                  (B.lam c
                     (B.io_bind
                        (Con ("WriteChan", [ Var c; e ]))
                        (B.lam "_"
                           (B.io_bind
                              (Con ("ReadChan", [ Var c ]))
                              (B.lam v
                                 (B.io_bind
                                    (App (Var "putInt", Var v))
                                    (B.lam "_" rest))))))))
              int_e
              (gen_io_node cfg env (depth - 1)) );
          ( 1,
            (* A read on an empty channel is hopeless in a sequential
               driver: it must come back as a catchable
               BlockedIndefinitely in every layer. *)
            let c = fresh_name () and rn = fresh_name () in
            G.map
              (fun e ->
                B.io_bind
                  (Con ("NewChan", [ B.int 1 ]))
                  (B.lam c
                     (B.io_bind
                        (B.get_exception (Con ("ReadChan", [ Var c ])))
                        (B.lam rn
                           (B.case (Var rn)
                              [
                                (B.pcon "OK" [ "x" ], B.io_return (Var "x"));
                                (B.pcon "Bad" [ "e" ], B.io_return e);
                              ])))))
              int_e );
          ( 1,
            (* bracket: acquire returns a resource, release writes a
               marker, use continues the program — releases must balance
               acquires on every exit path. *)
            G.map2
              (fun a rest ->
                B.io_bracket (B.io_return a)
                  (B.lam r (App (Var "putInt", B.int 9)))
                  (B.lam r rest))
              int_e
              (gen_io_node cfg ((r, T_int) :: env) (depth - 1)) );
          ( 1,
            G.map (fun m -> B.io_mask m) (gen_io_node cfg env (depth - 1)) );
          ( 1,
            G.map2
              (fun k m -> B.io_timeout (B.int k) m)
              (G.int_range 1 24)
              (gen_io_node cfg env (depth - 1)) );
          ( 1,
            G.map
              (fun m ->
                B.io_on_exception m (App (Var "putInt", B.int 8)))
              (gen_io_node cfg env (depth - 1)) );
          ( 1,
            (* evaluate: the argument is forced at the perform point,
               under the catch when one is present. *)
            let rn = fresh_name () in
            G.map
              (fun e ->
                B.io_bind
                  (B.get_exception (Con (c_evaluate, [ e ])))
                  (B.lam rn
                     (B.case (Var rn)
                        [
                          (B.pcon "OK" [ "x" ], App (Var "putInt", Var "x"));
                          (B.pcon "Bad" [ "_e" ],
                           App (Var "putInt", B.int 0));
                        ])))
              int_e );
          ( 1,
            (* Typed handler dispatch: an arithmetic handler first, the
               catch-all second, over an arbitrary body. *)
            G.map
              (fun m ->
                B.apps (Var "catches")
                  [
                    m;
                    B.list
                      [
                        B.apps (Var "handler")
                          [
                            Var "matchArith";
                            B.lam "_e" (B.io_return (B.int 1));
                          ];
                        B.apps (Var "handler")
                          [
                            Var "matchAny";
                            B.lam "_e" (B.io_return (B.int 2));
                          ];
                      ];
                  ])
              (gen_io_node cfg env (depth - 1)) );
          ( 1,
            (* try: Either-shaped recovery, plus a declared-exception
               throw site under it. *)
            let rn = fresh_name () in
            G.map2
              (fun e m ->
                let body =
                  B.io_bind m
                    (B.lam "_"
                       (App (Var "throwIO", Con ("GenExnB", [ e ]))))
                in
                B.io_bind
                  (App (Var "try", body))
                  (B.lam rn
                     (B.case (Var rn)
                        [
                          (B.pcon "Left" [ "_e" ],
                           App (Var "putInt", B.int 3));
                          (B.pcon "Right" [ "x" ],
                           App (Var "putInt", Var "x"));
                        ])))
              int_e
              (gen_io_node cfg env (depth - 1)) );
        ]
    in
    G.frequency
      ([ (2, ret); (3, bind_chain); (3, put_then); (2, catch_recover) ]
      @ combinators)

(* Concurrent programs: forkIO/MVar skeletons whose communication
   structure is fixed (so they do not trivially deadlock) with generated
   payloads. *)
let gen_conc_node cfg env depth : expr G.t =
  let int_e = gen_ty cfg env (max 1 depth) T_int in
  let handoff =
    (* newEmptyMVar >>= \r -> forkIO (putMVar r e) >> (takeMVar r >>= putInt) *)
    let r = fresh_name () and v = fresh_name () in
    G.map
      (fun e ->
        B.io_bind
          (Con ("NewMVar", []))
          (B.lam r
             (B.io_bind
                (Con ("Fork", [ Con ("PutMVar", [ Var r; e ]) ]))
                (B.lam "_"
                   (B.io_bind
                      (Con ("TakeMVar", [ Var r ]))
                      (B.lam v (App (Var "putInt", Var v))))))))
      int_e
  in
  let fork_fire_and_forget =
    G.map2
      (fun e rest ->
        B.io_bind
          (Con ("Fork", [ App (Var "putInt", e) ]))
          (B.lam "_" rest))
      int_e
      (gen_io_node cfg env (max 0 (depth - 1)))
  in
  let fork_exceptional =
    (* The child dies of its own exception; the parent must survive. *)
    G.map2
      (fun e rest ->
        B.io_bind
          (Con ("Fork", [ B.io_return B.(e / int 0) ]))
          (B.lam "_" rest))
      int_e
      (gen_io_node cfg env (max 0 (depth - 1)))
  in
  let self_throw_caught =
    (* getException (myThreadId >>= \t -> throwTo t ThreadKilled >> return e)
       — a self-send is synchronous, so both layers catch it as Bad. *)
    let tn = fresh_name () and rn = fresh_name () in
    G.map
      (fun e ->
        B.io_bind
          (B.get_exception
             (B.io_bind
                (Con ("MyThreadId", []))
                (B.lam tn
                   (B.io_bind
                      (Con ("ThrowTo", [ Var tn; Con ("ThreadKilled", []) ]))
                      (B.lam "_" (B.io_return e))))))
          (B.lam rn
             (B.case (Var rn)
                [
                  (B.pcon "OK" [ "x" ], App (Var "putInt", Var "x"));
                  (B.pcon "Bad" [ "e" ], App (Var "putInt", B.int 0));
                ])))
      int_e
  in
  let kill_child =
    (* The child hands its ThreadId to the parent, which kills it; the
       parent's continuation must survive the dead child. *)
    let r = fresh_name () and tn = fresh_name () in
    G.map2
      (fun e rest ->
        B.io_bind
          (Con ("NewMVar", []))
          (B.lam r
             (B.io_bind
                (Con
                   ( "Fork",
                     [
                       B.io_bind
                         (Con ("MyThreadId", []))
                         (B.lam tn
                            (B.io_bind
                               (Con ("PutMVar", [ Var r; Var tn ]))
                               (B.lam "_" (App (Var "putInt", e)))));
                     ] ))
                (B.lam "_"
                   (B.io_bind
                      (Con ("TakeMVar", [ Var r ]))
                      (B.lam tn
                         (B.io_bind
                            (Con
                               ( "ThrowTo",
                                 [ Var tn; Con ("ThreadKilled", []) ] ))
                            (B.lam "_" rest))))))))
      int_e
      (gen_io_node cfg env (max 0 (depth - 1)))
  in
  let blocked_recover =
    (* Nobody ever puts: the blocked take must come back as a catchable
       BlockedIndefinitely, never a global deadlock. *)
    let r = fresh_name () and rn = fresh_name () in
    G.map
      (fun e ->
        B.io_bind
          (Con ("NewMVar", []))
          (B.lam r
             (B.io_bind
                (B.get_exception (Con ("TakeMVar", [ Var r ])))
                (B.lam rn
                   (B.case (Var rn)
                      [
                        (B.pcon "OK" [ "x" ], App (Var "putInt", Var "x"));
                        (B.pcon "Bad" [ "e" ], App (Var "putInt", e));
                      ])))))
      int_e
  in
  let chan_handoff =
    (* newChan 1 >>= \c -> forkIO (writeChan c e) >> (readChan c >>= putInt) *)
    let c = fresh_name () and v = fresh_name () in
    G.map
      (fun e ->
        B.io_bind
          (Con ("NewChan", [ B.int 1 ]))
          (B.lam c
             (B.io_bind
                (Con ("Fork", [ Con ("WriteChan", [ Var c; e ]) ]))
                (B.lam "_"
                   (B.io_bind
                      (Con ("ReadChan", [ Var c ]))
                      (B.lam v (App (Var "putInt", Var v))))))))
      int_e
  in
  let chan_fan_in =
    (* Two producers into a buffer of one: the second writer blocks on the
       full buffer and is woken when the drain makes room, so the wake
       path and the deposit-on-wake path both run. *)
    let c = fresh_name () and v = fresh_name () and w = fresh_name () in
    G.map2
      (fun e1 e2 ->
        B.io_bind
          (Con ("NewChan", [ B.int 1 ]))
          (B.lam c
             (B.io_bind
                (Con ("Fork", [ Con ("WriteChan", [ Var c; e1 ]) ]))
                (B.lam "_"
                   (B.io_bind
                      (Con ("Fork", [ Con ("WriteChan", [ Var c; e2 ]) ]))
                      (B.lam "_"
                         (B.io_bind
                            (Con ("ReadChan", [ Var c ]))
                            (B.lam v
                               (B.io_bind
                                  (Con ("ReadChan", [ Var c ]))
                                  (B.lam w
                                     (B.io_bind
                                        (App (Var "putInt", Var v))
                                        (B.lam "_"
                                           (App (Var "putInt", Var w))))))))))))))
      int_e int_e
  in
  let chan_blocked_recover =
    (* Nobody ever writes: the blocked read must come back as a catchable
       BlockedIndefinitely, like the MVar case above. *)
    let c = fresh_name () and rn = fresh_name () in
    G.map
      (fun e ->
        B.io_bind
          (Con ("NewChan", [ B.int 1 ]))
          (B.lam c
             (B.io_bind
                (B.get_exception (Con ("ReadChan", [ Var c ])))
                (B.lam rn
                   (B.case (Var rn)
                      [
                        (B.pcon "OK" [ "x" ], App (Var "putInt", Var "x"));
                        (B.pcon "Bad" [ "e" ], App (Var "putInt", e));
                      ])))))
      int_e
  in
  let supervised =
    (* A two-child supervision tree under a chosen strategy: one healthy
       child and one that either also completes or storms. Any
       SupervisorLimit shed by the intensity window is absorbed, so the
       observable is just the completion marker — identical under every
       fair schedule. *)
    let strat =
      G.oneofl
        [ Con ("OneForOne", []); Con ("OneForAll", []); Con ("RestForOne", []) ]
    in
    G.bind strat (fun s ->
        G.map2
          (fun e bad ->
            let child_ok = B.io_return e in
            let child_other =
              if bad then App (Var "throwIO", Con ("GenExnA", []))
              else B.io_return (B.int 0)
            in
            let sup =
              B.apps (Var "supervisorTree")
                [ s; B.int 2; B.int 8; B.list [ child_ok; child_other ] ]
            in
            B.io_bind
              (B.apps (Var "catchIO")
                 [ sup; B.lam "_e" (B.io_return B.unit_) ])
              (B.lam "_" (App (Var "putInt", B.int 1))))
          int_e G.bool)
  in
  G.frequency
    [
      (3, handoff);
      (2, fork_fire_and_forget);
      (1, fork_exceptional);
      (2, self_throw_caught);
      (2, kill_child);
      (1, blocked_recover);
      (2, chan_handoff);
      (1, chan_fan_in);
      (1, chan_blocked_recover);
      (1, supervised);
    ]

(* Size accounting: QCheck2's [sized] parameter maps *monotonically* to
   generation depth, so integrated shrinking of the size genuinely
   reduces the term (the previous [n mod k] mapping made shrinking
   regenerate at unrelated depths instead of reducing). *)
let depth_of_size cfg n = min cfg.max_depth (1 + (n / 24))

let gen_io ?(cfg = default_cfg) () =
  G.sized (fun n -> gen_io_node cfg [] (min 4 (depth_of_size cfg n)))

let gen_conc ?(cfg = default_cfg) () =
  G.sized (fun n -> gen_conc_node cfg [] (min 3 (depth_of_size cfg n)))

let gen ?(cfg = default_cfg) ty =
  G.sized (fun n -> gen_ty cfg [] (depth_of_size cfg n) ty)

let gen_int ?cfg () = gen ?cfg T_int
let gen_list ?cfg () = gen ?cfg T_list_int

let print_expr = Lang.Pretty.expr_to_string

(* ------------------------------------------------------------------ *)
(* Structural shrinking                                                *)
(* ------------------------------------------------------------------ *)

let replace_nth i x xs = List.mapi (fun j y -> if j = i then x else y) xs

(* Immediate subexpressions with their one-hole rebuilding contexts. *)
let children_with_context (e : expr) : (expr * (expr -> expr)) list =
  match e with
  | Var _ | Lit _ -> []
  | Lam (x, b) -> [ (b, fun b' -> Lam (x, b')) ]
  | App (f, a) ->
      [ (f, (fun f' -> App (f', a))); (a, fun a' -> App (f, a')) ]
  | Con (c, es) ->
      List.mapi (fun i ei -> (ei, fun e' -> Con (c, replace_nth i e' es))) es
  | Prim (p, es) ->
      List.mapi (fun i ei -> (ei, fun e' -> Prim (p, replace_nth i e' es))) es
  | Case (s, alts) ->
      (s, (fun s' -> Case (s', alts)))
      :: List.mapi
           (fun i a ->
             ( a.rhs,
               fun r -> Case (s, replace_nth i { a with rhs = r } alts) ))
           alts
  | Let (x, e1, e2) ->
      [
        (e1, (fun e1' -> Let (x, e1', e2)));
        (e2, fun e2' -> Let (x, e1, e2'));
      ]
  | Letrec (binds, body) ->
      (body, (fun b' -> Letrec (binds, b')))
      :: List.mapi
           (fun i (x, ei) ->
             (ei, fun e' -> Letrec (replace_nth i (x, e') binds, body)))
           binds
  | Raise e1 -> [ (e1, fun e' -> Raise e') ]
  | Fix e1 -> [ (e1, fun e' -> Fix e') ]

(* Close an alternative's right-hand side by plugging its binders with a
   literal, so it is a shrink candidate for the whole case. *)
let close_rhs (a : alt) =
  let plugs =
    List.map (fun x -> (x, Lit (Lit_int 0))) (pat_binders a.pat)
  in
  Lang.Subst.subst_many plugs a.rhs

let rec shrink (e : expr) : expr list =
  let special =
    match e with
    | Lit (Lit_int n) when n <> 0 ->
        if n / 2 <> 0 && n / 2 <> n then [ B.int 0; B.int (n / 2) ]
        else [ B.int 0 ]
    | Lit (Lit_string s) when String.length s > 0 -> [ B.str "" ]
    | App (Lam (x, b), a) -> [ Lang.Subst.subst x a b ]
    | Let (x, e1, e2) ->
        if Lang.Subst.is_free_in x e2 then [ Lang.Subst.subst x e1 e2 ]
        else [ e2 ]
    | Letrec (binds, body)
      when not
             (List.exists
                (fun (x, _) -> Lang.Subst.is_free_in x body)
                binds) ->
        [ body ]
    | Case (s, alts) -> s :: List.map close_rhs alts
    | Lam (x, b) -> [ b; Lang.Subst.subst x (B.int 0) b ]
    | Fix e1 -> [ e1 ]
    | Raise _ -> [ B.raise_exn Lang.Exn.Divide_by_zero ]
    | _ -> []
  in
  let subterms = List.map fst (children_with_context e) in
  let recursive =
    List.concat_map
      (fun (c, ctx) -> List.map ctx (shrink_shallow c))
      (children_with_context e)
  in
  let n = size e in
  let ok c =
    match (e, c) with
    | Lit (Lit_int a), Lit (Lit_int b) -> abs b < abs a
    | _ -> size c < n
  in
  (* Every candidate strictly decreases (size, |literal|): any greedy
     minimisation loop over [shrink] terminates. Smaller candidates are
     sorted first so the minimiser reaches small witnesses quickly. *)
  let cands =
    List.filter ok (special @ subterms @ recursive)
    |> List.filter (fun c -> size c <= n)
    |> List.sort_uniq (fun a b ->
           match Stdlib.compare (size a) (size b) with
           | 0 -> Lang.Syntax.compare a b
           | c -> c)
  in
  cands

(* One non-recursive level, used inside [shrink] to bound the candidate
   fan-out (full recursion re-enters through the minimiser's loop). *)
and shrink_shallow (e : expr) : expr list =
  match e with
  | Lit (Lit_int n) when n <> 0 -> [ B.int 0 ]
  | App (Lam (x, b), a) -> [ Lang.Subst.subst x a b ]
  | Let (x, _, e2) when not (Lang.Subst.is_free_in x e2) -> [ e2 ]
  | Case (s, _) -> [ s ]
  | _ -> List.map fst (children_with_context e)
