(* Evaluation-as-a-service: the quota-enforcing, degrade-gracefully
   engine behind [impexn serve].

   The engine is deliberately driver-agnostic: it knows nothing about
   sockets or file descriptors. A driver creates one {!session} per
   client, [feed]s it complete protocol lines, [drain]s the replies, and
   calls [tick] whenever it has spare time. Everything observable —
   admission, shedding, eviction, timeouts, crashes — happens inside the
   engine, so the whole daemon is testable in-process with an injected
   clock and no IO at all.

   Robustness design, in one paragraph: every request runs on its own
   {!Machine.Stg.t} (fresh heap, fresh counters, fresh provenance — the
   re-entrancy audit made that a machine invariant), under its own fuel,
   heap and stack quotas, so a quota breach is an ordinary imprecise
   exception inside that machine and nothing else. Wall-clock timeouts
   reuse the paper's Section 5.1 machinery verbatim: the engine injects
   an asynchronous interrupt every [slice] steps, which unwinds the
   request into resumable pause cells; at each such boundary the engine
   checks the deadline and either answers [timeout] or re-arms the next
   slice and requeues. Because pause cells persist, a paused request is
   also the unit of load shedding: when the sum of paused heaps exceeds
   the memory budget, the oldest paused request is evicted with a
   structured reply instead of letting the daemon's memory collapse.
   Anything unexpected — a machine invariant violation, a native stack
   overflow — hits the crash barrier, which writes a flight-recorder
   dump and answers [crash] to that client only. The daemon never
   dies. *)

module M = Machine.Stg
module B = Machine.Bytecode
module Stats = Machine.Stats
module R = Lang.Resolve
module Exn = Lang.Exn
module SV = Semantics.Sem_value

type backend = Slot | Bytecode

type config = {
  backend : backend;
      (** Which machine evaluates requests. [Slot] is the tree-walking
          slot machine; [Bytecode] is the flat compiled backend — same
          machine contract (latches, pause cells, provenance), measured
          multi-x faster. The compiled-program cache stores whichever
          representation the backend needs. *)
  fuel : int;  (** Default per-request machine-step quota. *)
  heap : int;  (** Default per-request heap quota, in cells. *)
  stack : int;  (** Default per-request stack quota, in frames. *)
  timeout_ms : int;
      (** Default per-request wall-clock deadline; [0] disables. *)
  depth : int;  (** Deep-forcing print depth for [ok] replies. *)
  slice : int;
      (** Steps between interrupt injections — the scheduling quantum.
          Smaller is fairer and checks deadlines more often; larger
          amortises the pause/resume cost. *)
  max_inflight : int;
      (** Admission control: requests beyond this answer [overloaded]. *)
  mem_budget : int;
      (** Load shedding: when the paused requests' heaps sum past this
          many cells, evict oldest-paused until back under (a lone
          over-budget request is kept — its own heap quota bounds it). *)
  cache_capacity : int;  (** Compiled-program cache entries (LRU). *)
  optimize : bool;
      (** Run the linted imprecise optimisation pipeline
          ({!Transform.Pipeline.optimize}) on each program between
          parsing and resolution. The optimisation mode is part of the
          compiled-program cache key, so optimised and unoptimised
          submissions of the same source never share an entry; a lint
          rejection answers [err ... lint] with a crash dump, leaving
          the daemon up. *)
  dump_dir : string option;
      (** Where the crash barrier writes flight-recorder dumps. *)
  trace : bool;  (** Run request machines with the recorder enabled. *)
  now : unit -> int64;
      (** Clock, in nanoseconds. Injectable so tests drive timeouts
          deterministically. *)
}

let default_now () = Int64.of_float (Unix.gettimeofday () *. 1e9)

let default_config =
  {
    backend = Slot;
    fuel = 500_000;
    heap = 100_000;
    stack = 10_000;
    timeout_ms = 2_000;
    depth = 64;
    slice = 4_096;
    max_inflight = 64;
    mem_budget = 2_000_000;
    cache_capacity = 256;
    optimize = false;
    dump_dir = None;
    trace = false;
    now = default_now;
  }

type counters = {
  mutable requests : int;
  mutable ok : int;
  mutable failed : int;  (** [err ... exn] replies (ordinary raises). *)
  mutable quota_heap : int;
  mutable quota_stack : int;
  mutable quota_fuel : int;
  mutable timeouts : int;
  mutable sheds : int;  (** [overloaded] replies (admission control). *)
  mutable evictions : int;  (** Oldest-paused evictions (memory). *)
  mutable parse_errors : int;
  mutable lint_rejects : int;
      (** Programs the optimiser's post-pass linter refused to ship. *)
  mutable proto_errors : int;
  mutable crashes : int;
  mutable cache_hits : int;
  mutable cache_misses : int;
  mutable cache_evictions : int;
}

let new_counters () =
  {
    requests = 0;
    ok = 0;
    failed = 0;
    quota_heap = 0;
    quota_stack = 0;
    quota_fuel = 0;
    timeouts = 0;
    sheds = 0;
    evictions = 0;
    parse_errors = 0;
    lint_rejects = 0;
    proto_errors = 0;
    crashes = 0;
    cache_hits = 0;
    cache_misses = 0;
    cache_evictions = 0;
  }

type cache_entry = {
  rx : R.rexpr;
  mutable bc : B.program option;
      (* Bytecode is compiled lazily, on the first submission that runs
         under the [Bytecode] backend, and then shared: the program
         (with its warm inline caches) serves any number of request
         machines, exactly like the slot IR does. *)
  mutable last_used : int;
}

type t = {
  cfg : config;
  cache : (string, cache_entry) Hashtbl.t;
  mutable cache_clock : int;
  c : counters;
  agg : Stats.t;
      (* Machine counters accumulated over every finished request —
         including timed-out, evicted and crashed ones, whose machines
         are gone by the time anyone asks. *)
  mutable inflight : request list;  (* run queue, front = next to run *)
  mutable next_seq : int;
}

and request = {
  rid : string;
  rsession : session;
  rm : rmachine;
  deadline : int64;
  seq : int;  (* admission order: the eviction victim is the min seq *)
  rdepth : int;
}

(* A request machine, either backend. [Bytecode.failure] and
   [Bytecode.config] are re-exported equalities to the slot machine's
   types, so everything downstream of [force_catch] — quota
   classification, timeout handling, stats aggregation — is one code
   path; only the half-dozen accessors below dispatch. *)
and rmachine = Rm_slot of M.t * M.addr | Rm_bc of B.t * B.addr

and session = {
  engine : t;
  mutable out : string list;  (* reverse order *)
  mutable mode : mode;
  mutable closed : bool;
}

and mode = Idle | Collect of collect

and collect = {
  cid : string;
  copts : opts;
  mutable body : string list;  (* reverse order *)
}

and opts = {
  o_fuel : int;
  o_heap : int;
  o_stack : int;
  o_timeout_ms : int;
  o_depth : int;
}

let create ?(config = default_config) () =
  {
    cfg = config;
    cache = Hashtbl.create 64;
    cache_clock = 0;
    c = new_counters ();
    agg = Stats.create ();
    inflight = [];
    next_seq = 0;
  }

let counters t = t.c
let machine_totals t = t.agg
let inflight t = List.length t.inflight
let cache_size t = Hashtbl.length t.cache
let config t = t.cfg

(* ------------------------------------------------------------------ *)
(* Backend dispatch                                                    *)
(* ------------------------------------------------------------------ *)

let rm_stats = function
  | Rm_slot (m, _) -> M.stats m
  | Rm_bc (m, _) -> B.stats m

let rm_heap_size = function
  | Rm_slot (m, _) -> M.heap_size m
  | Rm_bc (m, _) -> B.heap_size m

let rm_trace = function
  | Rm_slot (m, _) -> M.trace m
  | Rm_bc (m, _) -> B.trace m

let rm_inject_async rm ~at_step x =
  match rm with
  | Rm_slot (m, _) -> M.inject_async m ~at_step x
  | Rm_bc (m, _) -> B.inject_async m ~at_step x

let rm_clear_async = function
  | Rm_slot (m, _) -> M.clear_async m
  | Rm_bc (m, _) -> B.clear_async m

let rm_force_catch = function
  | Rm_slot (m, a) -> Result.map ignore (M.force_catch m a)
  | Rm_bc (m, a) -> Result.map ignore (B.force_catch m a)

let rm_deep ~depth = function
  | Rm_slot (m, a) -> M.deep ~depth m a
  | Rm_bc (m, a) -> B.deep ~depth m a

(* ------------------------------------------------------------------ *)
(* Replies                                                             *)
(* ------------------------------------------------------------------ *)

(* Replies are strictly one line each; a deep value or an error detail
   that somehow contains a newline is flattened rather than letting one
   reply masquerade as two. *)
let one_line s =
  String.map (function '\n' | '\r' -> ' ' | ch -> ch) s

let emit (s : session) line = s.out <- one_line line :: s.out

let drain (s : session) =
  let r = List.rev s.out in
  s.out <- [];
  r

let closed (s : session) = s.closed

let reply_ok s id d = emit s (Fmt.str "ok %s %a" id SV.pp_deep d)

let reply_err s id kind detail =
  if detail = "" then emit s (Fmt.str "err %s %s" id kind)
  else emit s (Fmt.str "err %s %s %s" id kind detail)

(* ------------------------------------------------------------------ *)
(* Compiled-program cache                                              *)
(* ------------------------------------------------------------------ *)

(* Keyed by the MD5 of the raw source text; the value is the resolved
   slot IR. Resolution is deterministic and the IR is immutable, so a
   cached program is shared by any number of request machines — this is
   exactly the compile-once/run-many contract of
   {!M.alloc_resolved}. Resolution always uses
   {!R.global_context}: a shared cache requires a shared constructor
   vocabulary. *)

let cache_touch t e =
  t.cache_clock <- t.cache_clock + 1;
  e.last_used <- t.cache_clock

let cache_insert t key rx =
  if Hashtbl.length t.cache >= t.cfg.cache_capacity then begin
    (* Evict the least-recently-used entry. *)
    let victim =
      Hashtbl.fold
        (fun k e acc ->
          match acc with
          | Some (_, e') when e'.last_used <= e.last_used -> acc
          | _ -> Some (k, e))
        t.cache None
    in
    match victim with
    | Some (k, _) ->
        Hashtbl.remove t.cache k;
        t.c.cache_evictions <- t.c.cache_evictions + 1
    | None -> ()
  end;
  let e = { rx; bc = None; last_used = 0 } in
  cache_touch t e;
  Hashtbl.replace t.cache key e;
  e

(* Parse as a bare expression first; if that fails, as a whole program
   (declarations defining [main]); either way close under the Prelude.
   The first error wins when both parses fail — the expression form is
   the common case and its message points at the right column. *)
let parse_source src =
  try Lang.Prelude.wrap (Lang.Parser.parse_expr src)
  with Lang.Parser.Error _ as first -> (
    try Lang.Prelude.wrap_program (Lang.Parser.parse_program src)
    with Lang.Parser.Error _ -> raise first)

(* [Error (kind, msg, dump)]: [kind] is the reply's error category
   ("parse" or "lint"); a lint rejection carries the flight-recorder
   crash dump for the barrier to write out. *)
let compile t src : (cache_entry, string * string * string option) result =
  (* The optimisation mode is part of the key: an optimised and an
     unoptimised submission of the same source must never share a
     compiled entry. *)
  let key =
    Digest.string ((if t.cfg.optimize then "O1:" else "O0:") ^ src)
  in
  match Hashtbl.find_opt t.cache key with
  | Some e ->
      t.c.cache_hits <- t.c.cache_hits + 1;
      cache_touch t e;
      Ok e
  | None -> (
      t.c.cache_misses <- t.c.cache_misses + 1;
      match parse_source src with
      | exception Lang.Parser.Error (msg, line, col) ->
          t.c.parse_errors <- t.c.parse_errors + 1;
          Error ("parse", Printf.sprintf "%d:%d: %s" line col msg, None)
      | e -> (
          if not t.cfg.optimize then Ok (cache_insert t key (R.expr e))
          else
            let tr = Obs.create ~capacity:256 ~on:true () in
            match
              Transform.Pipeline.optimize ~trace:tr
                Transform.Pipeline.Imprecise e
            with
            | eo, _report -> Ok (cache_insert t key (R.expr eo))
            | exception
                Transform.Lint.Lint_error { pass; violations; dump } ->
                t.c.lint_rejects <- t.c.lint_rejects + 1;
                Error
                  ( "lint",
                    Fmt.str "pass %s: %a" pass
                      Fmt.(list ~sep:(any "; ") Transform.Lint.pp_violation)
                      violations,
                    Some dump )))

(* Under the [Bytecode] backend the cache's unit of reuse is the
   compiled program, not the slot IR: compile on first use, then share
   (the program's inline caches stay warm across requests). *)
let bytecode_of (entry : cache_entry) =
  match entry.bc with
  | Some p -> p
  | None ->
      let p = B.compile entry.rx in
      entry.bc <- Some p;
      p

(* ------------------------------------------------------------------ *)
(* The crash barrier                                                   *)
(* ------------------------------------------------------------------ *)

let dump_counter = ref 0

let write_dump t ~rid (text : string) : string option =
  match t.cfg.dump_dir with
  | None -> None
  | Some dir ->
      incr dump_counter;
      let safe_id =
        String.map
          (fun ch ->
            match ch with
            | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '-' | '_' -> ch
            | _ -> '_')
          rid
      in
      let file =
        Filename.concat dir
          (Printf.sprintf "crash-%d-%s.dump" !dump_counter safe_id)
      in
      (try
         (try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
         let oc = open_out file in
         output_string oc text;
         output_string oc "\n";
         close_out oc
       with Sys_error _ | Unix.Unix_error _ -> ());
      Some file

(* The per-request failure that must never take the daemon down: write
   the flight-recorder dump (the invariant exception already carries
   one; anything else gets a fresh dump of the request's recorder) and
   answer [crash] to this client only. *)
let crash t (req : request) (what : string) (dump : string) =
  t.c.crashes <- t.c.crashes + 1;
  Stats.add t.agg (rm_stats req.rm);
  let where = write_dump t ~rid:req.rid dump in
  let detail =
    match where with
    | Some file -> Printf.sprintf "%s dump=%s" what file
    | None -> what
  in
  reply_err req.rsession req.rid "crash" detail

(* ------------------------------------------------------------------ *)
(* Request lifecycle                                                   *)
(* ------------------------------------------------------------------ *)

let finish t (req : request) = Stats.add t.agg (rm_stats req.rm)

let arm_slice t (req : request) =
  rm_inject_async req.rm
    ~at_step:((rm_stats req.rm).Stats.steps + t.cfg.slice)
    Exn.Timeout

(* Oldest-paused eviction: the paused requests are the only elastic
   memory the daemon holds, so when their heaps sum past the budget the
   ones that have been waiting longest are shed with a structured
   reply. A single over-budget request is never self-evicted — its own
   heap quota already bounds it. *)
let shed_memory t =
  let total () =
    List.fold_left (fun acc r -> acc + rm_heap_size r.rm) 0 t.inflight
  in
  let rec go () =
    if List.length t.inflight > 1 && total () > t.cfg.mem_budget then begin
      let victim =
        List.fold_left
          (fun acc r ->
            match acc with Some v when v.seq <= r.seq -> acc | _ -> Some r)
          None t.inflight
      in
      match victim with
      | None -> ()
      | Some v ->
          t.inflight <- List.filter (fun r -> r.seq <> v.seq) t.inflight;
          t.c.evictions <- t.c.evictions + 1;
          finish t v;
          reply_err v.rsession v.rid "evicted"
            (Printf.sprintf "memory-pressure heap=%d" (rm_heap_size v.rm));
          go ()
    end
  in
  go ()

(* One scheduling quantum for one request: resume it (re-entering its
   pause cells), and classify how the slice ended. *)
let run_slice t (req : request) =
  match rm_force_catch req.rm with
  | Ok _ ->
      (* WHNF reached. Withdraw the unfired slice interrupt, then
         deep-force for the reply; quota breaches inside the structure
         surface as [DBad] fields, exactly as one-shot [run_deep] would
         report them. *)
      rm_clear_async req.rm;
      let d = rm_deep ~depth:req.rdepth req.rm in
      finish t req;
      t.c.ok <- t.c.ok + 1;
      reply_ok req.rsession req.rid d
  | Error (M.Fail_async _) ->
      (* Our slice interrupt — the only source of asynchronous events in
         a pure serve evaluation. The request is now a bundle of pause
         cells; decide whether its wall clock has run out. *)
      if t.cfg.now () >= req.deadline then begin
        finish t req;
        t.c.timeouts <- t.c.timeouts + 1;
        reply_err req.rsession req.rid "timeout"
          (Printf.sprintf "steps=%d" (rm_stats req.rm).Stats.steps)
      end
      else begin
        arm_slice t req;
        t.inflight <- t.inflight @ [ req ];
        shed_memory t
      end
  | Error M.Fail_diverged ->
      finish t req;
      t.c.quota_fuel <- t.c.quota_fuel + 1;
      reply_err req.rsession req.rid "quota:fuel" "diverged-or-exhausted"
  | Error (M.Fail_exn e) -> (
      finish t req;
      let st = rm_stats req.rm in
      (* The latch counters distinguish a limit-triggered overflow from
         a program that merely raised the same constant. *)
      match e with
      | Exn.Heap_overflow when st.Stats.heap_overflows > 0 ->
          t.c.quota_heap <- t.c.quota_heap + 1;
          reply_err req.rsession req.rid "quota:heap"
            (Printf.sprintf "cells=%d" (rm_heap_size req.rm))
      | Exn.Stack_overflow_exn when st.Stats.stack_overflows > 0 ->
          t.c.quota_stack <- t.c.quota_stack + 1;
          reply_err req.rsession req.rid "quota:stack"
            (Printf.sprintf "max_stack=%d" st.Stats.max_stack)
      | _ ->
          t.c.failed <- t.c.failed + 1;
          (* Typed classification rides with every exceptional reply:
             the coarse hierarchy class first, then the printed value. *)
          reply_err req.rsession req.rid "exn"
            (Fmt.str "class=%s %a" (Exn.class_name e) Exn.pp e))

let tick t =
  (match t.inflight with
  | [] -> ()
  | req :: rest -> (
      t.inflight <- rest;
      try run_slice t req with
      | Obs.Machine_invariant dump -> crash t req "machine-invariant" dump
      | Stack_overflow ->
          crash t req "native-stack-overflow"
            (Obs.dump ~note:"native stack overflow in serve slice"
               (rm_trace req.rm))
      | e ->
          crash t req
            ("unexpected:" ^ one_line (Printexc.to_string e))
            (Obs.dump
               ~note:("unexpected exception: " ^ Printexc.to_string e)
               (rm_trace req.rm))));
  t.inflight <> []

let rec run_all t = if tick t then run_all t else ()

(* ------------------------------------------------------------------ *)
(* Admission                                                           *)
(* ------------------------------------------------------------------ *)

let submit t (s : session) (id : string) (o : opts) (src : string) =
  t.c.requests <- t.c.requests + 1;
  if List.length t.inflight >= t.cfg.max_inflight then begin
    (* Shed at the door: a bounded run queue and an honest [overloaded]
       beat an unbounded queue that collapses later. *)
    t.c.sheds <- t.c.sheds + 1;
    reply_err s id "overloaded"
      (Printf.sprintf "inflight=%d" (List.length t.inflight))
  end
  else
    match compile t src with
    | Error (kind, msg, dump) ->
        let msg =
          match dump with
          | None -> msg
          | Some text -> (
              match write_dump t ~rid:id text with
              | Some file -> Printf.sprintf "%s dump=%s" msg file
              | None -> msg)
        in
        reply_err s id kind msg
    | Ok entry ->
        let mcfg =
          {
            M.default_config with
            M.fuel = o.o_fuel;
            heap_limit = Some o.o_heap;
            stack_limit = Some o.o_stack;
          }
        in
        let rm =
          match t.cfg.backend with
          | Slot ->
              let m =
                M.create ~config:mcfg
                  ~trace:(Obs.create ~on:t.cfg.trace ())
                  ()
              in
              Rm_slot (m, M.alloc_resolved m entry.rx)
          | Bytecode ->
              let m =
                B.create ~config:mcfg
                  ~trace:(Obs.create ~on:t.cfg.trace ())
                  (bytecode_of entry)
              in
              Rm_bc (m, B.entry m)
        in
        let deadline =
          if o.o_timeout_ms <= 0 then Int64.max_int
          else
            Int64.add (t.cfg.now ())
              (Int64.mul (Int64.of_int o.o_timeout_ms) 1_000_000L)
        in
        let req =
          {
            rid = id;
            rsession = s;
            rm;
            deadline;
            seq = t.next_seq;
            rdepth = o.o_depth;
          }
        in
        t.next_seq <- t.next_seq + 1;
        arm_slice t req;
        t.inflight <- t.inflight @ [ req ]

(* ------------------------------------------------------------------ *)
(* The line protocol                                                   *)
(* ------------------------------------------------------------------ *)

let default_opts cfg =
  {
    o_fuel = cfg.fuel;
    o_heap = cfg.heap;
    o_stack = cfg.stack;
    o_timeout_ms = cfg.timeout_ms;
    o_depth = cfg.depth;
  }

let parse_opts cfg tokens : (opts, string) result =
  let pos_int k v =
    match int_of_string_opt v with
    | Some n when n > 0 -> Ok n
    | _ -> Error (Printf.sprintf "bad value for %s: %s" k v)
  in
  List.fold_left
    (fun acc tok ->
      match acc with
      | Error _ -> acc
      | Ok o -> (
          match String.index_opt tok '=' with
          | None -> Error ("bad option (want key=value): " ^ tok)
          | Some i -> (
              let k = String.sub tok 0 i in
              let v = String.sub tok (i + 1) (String.length tok - i - 1) in
              match k with
              | "fuel" ->
                  Result.map (fun n -> { o with o_fuel = n }) (pos_int k v)
              | "heap" ->
                  Result.map (fun n -> { o with o_heap = n }) (pos_int k v)
              | "stack" ->
                  Result.map (fun n -> { o with o_stack = n }) (pos_int k v)
              | "timeout" -> (
                  match int_of_string_opt v with
                  | Some n when n >= 0 -> Ok { o with o_timeout_ms = n }
                  | _ -> Error ("bad value for timeout: " ^ v))
              | "depth" ->
                  Result.map (fun n -> { o with o_depth = n }) (pos_int k v)
              | _ -> Error ("unknown option: " ^ k))))
    (Ok (default_opts cfg)) tokens

let stats_json t =
  let c = t.c in
  Fmt.str
    "{\"requests\":%d,\"ok\":%d,\"exn\":%d,\"quota_heap\":%d,\"quota_stack\":%d,\"quota_fuel\":%d,\"timeouts\":%d,\"sheds\":%d,\"evictions\":%d,\"parse_errors\":%d,\"lint_rejects\":%d,\"proto_errors\":%d,\"crashes\":%d,\"inflight\":%d,\"cache\":{\"hits\":%d,\"misses\":%d,\"evictions\":%d,\"entries\":%d},\"machine\":%a}"
    c.requests c.ok c.failed c.quota_heap c.quota_stack c.quota_fuel
    c.timeouts c.sheds c.evictions c.parse_errors c.lint_rejects
    c.proto_errors c.crashes (List.length t.inflight) c.cache_hits
    c.cache_misses c.cache_evictions (Hashtbl.length t.cache) Stats.pp_json
    t.agg

let session t = { engine = t; out = []; mode = Idle; closed = false }

let feed (s : session) (line : string) =
  if s.closed then ()
  else
    let t = s.engine in
    match s.mode with
    | Collect c ->
        if String.trim line = "." then begin
          s.mode <- Idle;
          submit t s c.cid c.copts (String.concat "\n" (List.rev c.body))
        end
        else c.body <- line :: c.body
    | Idle -> (
        let words =
          String.split_on_char ' ' (String.trim line)
          |> List.filter (fun w -> w <> "")
        in
        match words with
        | [] -> ()
        | [ "ping" ] -> emit s "pong"
        | [ "stats" ] -> emit s (stats_json t)
        | [ "quit" ] ->
            s.closed <- true;
            emit s "bye"
        | "eval" :: id :: opt_tokens -> (
            match parse_opts t.cfg opt_tokens with
            | Ok o -> s.mode <- Collect { cid = id; copts = o; body = [] }
            | Error msg ->
                t.c.proto_errors <- t.c.proto_errors + 1;
                reply_err s id "proto" msg)
        | [ "eval" ] ->
            t.c.proto_errors <- t.c.proto_errors + 1;
            reply_err s "-" "proto" "eval needs a request id"
        | verb :: _ ->
            t.c.proto_errors <- t.c.proto_errors + 1;
            reply_err s "-" "proto" ("unknown verb: " ^ verb))
