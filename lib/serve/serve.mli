(** Evaluation-as-a-service: the engine behind [impexn serve].

    A long-running, multi-tenant evaluation daemon over a line-oriented
    protocol. The engine is driver-agnostic — no sockets, no file
    descriptors: a driver creates one {!session} per client, {!feed}s it
    protocol lines, {!drain}s replies, and calls {!tick} to advance
    evaluation. That makes the entire daemon — quotas, timeouts,
    shedding, eviction, crash barrier — testable in-process with an
    injected clock.

    {1 Protocol}

    Requests and replies are single lines.

    {v
    eval <id> [fuel=N] [heap=N] [stack=N] [timeout=MS] [depth=N]
    <program line>...
    .
    v}

    submits the program text between the [eval] line and the lone [.]
    for evaluation under the given quotas (engine defaults otherwise).
    Other verbs: [ping] → [pong]; [stats] → a one-line JSON counter
    export; [quit] closes the session.

    Replies: [ok <id> <deep value>] or [err <id> <kind> [detail]] where
    [kind] is one of [exn], [quota:heap], [quota:stack], [quota:fuel],
    [timeout], [overloaded], [evicted], [parse], [lint], [crash],
    [proto].

    {1 Robustness model}

    Each request runs on its own {!Machine.Stg.t} under its own fuel,
    heap and stack quotas — a breach is an imprecise exception inside
    that machine only; the daemon never dies. Wall-clock timeouts reuse
    Section 5.1's pause cells: an asynchronous interrupt is injected
    every [slice] steps, unwinding the request into resumable pause
    cells; at each boundary the deadline is checked and the request
    either answers [timeout], or re-arms and requeues. Admission is
    bounded ([overloaded] past [max_inflight]); when paused heaps sum
    past [mem_budget] the oldest paused request is [evicted]. Unexpected
    machine exceptions hit a crash barrier that writes a flight-recorder
    dump and answers [crash] to that client alone. Repeat submissions
    hit a compiled-program cache (source-hash → resolved slot IR, LRU)
    and skip parse/resolve entirely. *)

type backend = Slot | Bytecode
(** Which machine evaluates requests: the tree-walking slot machine
    ({!Machine.Stg}) or the flat compiled backend ({!Machine.Bytecode}).
    Both honour the identical quota/timeout/pause-cell contract; the
    bytecode backend is measured multi-x faster and caches compiled
    programs (with warm inline caches) instead of slot IR. *)

type config = {
  backend : backend;  (** Request evaluator; default [Slot]. *)
  fuel : int;  (** Default per-request machine-step quota. *)
  heap : int;  (** Default per-request heap quota, in cells. *)
  stack : int;  (** Default per-request stack quota, in frames. *)
  timeout_ms : int;
      (** Default per-request wall-clock deadline; [0] disables. *)
  depth : int;  (** Deep-forcing print depth for [ok] replies. *)
  slice : int;  (** Steps between slice interrupts (the quantum). *)
  max_inflight : int;  (** Admission bound; beyond it: [overloaded]. *)
  mem_budget : int;  (** Paused-heap cell budget; beyond it: evict. *)
  cache_capacity : int;  (** Compiled-program cache entries (LRU). *)
  optimize : bool;
      (** Run the linted imprecise optimisation pipeline
          ({!Transform.Pipeline.optimize}) between parsing and
          resolution. The mode is part of the cache key (optimised and
          unoptimised submissions never share an entry); a lint
          rejection answers [err ... lint] with a crash dump, and the
          daemon stays up. Default [false]. *)
  dump_dir : string option;  (** Crash-barrier dump directory. *)
  trace : bool;  (** Enable each request machine's flight recorder. *)
  now : unit -> int64;  (** Nanosecond clock (injectable for tests). *)
}

val default_config : config
val default_now : unit -> int64

type counters = {
  mutable requests : int;
  mutable ok : int;
  mutable failed : int;
  mutable quota_heap : int;
  mutable quota_stack : int;
  mutable quota_fuel : int;
  mutable timeouts : int;
  mutable sheds : int;
  mutable evictions : int;
  mutable parse_errors : int;
  mutable lint_rejects : int;
  mutable proto_errors : int;
  mutable crashes : int;
  mutable cache_hits : int;
  mutable cache_misses : int;
  mutable cache_evictions : int;
}

type t
(** An engine: compiled-program cache + run queue + counters. *)

val create : ?config:config -> unit -> t
val config : t -> config

val counters : t -> counters
(** Live service counters (the [stats] verb renders these as JSON). *)

val machine_totals : t -> Machine.Stats.t
(** Machine cost counters accumulated over every finished request —
    including timed-out, evicted and crashed ones. *)

val inflight : t -> int
(** Requests currently paused in the run queue. *)

val cache_size : t -> int

val stats_json : t -> string
(** The [stats] verb's one-line JSON export. *)

type session
(** One client's protocol state: a line parser plus an outbound reply
    queue. Sessions are independent; any number share one engine. *)

val session : t -> session

val feed : session -> string -> unit
(** Feed one protocol line (without its newline). Replies accumulate in
    the session's queue; evaluation itself advances via {!tick}. *)

val drain : session -> string list
(** Pop all queued replies, oldest first. *)

val closed : session -> bool
(** True once the session has processed [quit]. *)

val tick : t -> bool
(** Run one scheduling quantum: resume the front request for one slice
    and either answer it or requeue it. Returns [true] while work
    remains. Never raises — the crash barrier converts unexpected
    machine exceptions into per-request [crash] replies. *)

val run_all : t -> unit
(** {!tick} until the run queue is empty. Terminates: every request is
    bounded by its fuel quota. *)
