(** Hindley–Milner type inference for the object language.

    The paper assumes a typed source language throughout (the [Exception]
    data type, "the type of a function makes it clear whether it can raise
    an exception" is discussed and rejected, and the domain equations in
    Section 4.1 are indexed by Haskell types). This checker makes that
    assumption checkable: programs accepted here cannot evaluate to the
    [TypeError] constant that the untyped interpreters add defensively —
    that soundness claim is property-tested.

    Features: algorithm-W with mutable-ref unification variables and an
    occurs check, let-polymorphism (generalisation at [let], [letrec] and
    top-level definitions), user [data] declarations, and the built-in
    Prelude data types. The [IO] constructors are typed specially: [Bind]'s
    first component mentions an existentially quantified intermediate type
    ([Bind : IO a -> (a -> IO b) -> IO b]), outside vanilla HM data types,
    so [Con ("Bind", _)] gets its own rule.

    Known approximations, documented rather than hidden:
    - [==] and friends are typed [∀a. a -> a -> Bool]; the dynamic
      semantics rejects comparisons of functions at run time.
    - [raise]'s argument must have type [Exception]; [mapException]'s
      function [Exception -> Exception]. *)

type ty =
  | T_var of tvar ref
  | T_con of string * ty list  (** [Int], [List Int], [IO a]... *)
  | T_arrow of ty * ty

and tvar

type scheme
(** A type scheme [∀ a1..an . ty]. *)

type env
(** Typing environment: term variables to schemes, plus the data-type
    table. *)

type error = {
  message : string;
  in_expr : Lang.Syntax.expr option;
}

val pp_error : error Fmt.t
val pp_ty : ty Fmt.t
(** Canonical printing: unification variables are renamed ['a], ['b]… *)

val initial_env : unit -> env
(** The built-in data types ([Bool], lists, [Pair], [Maybe], [ExVal],
    [Exception], [IO], [Unit]) and nothing else. *)

val add_data : env -> Lang.Syntax.data_decl -> (env, error) result
(** Register a user [data] declaration (checks that field types are
    well-formed and arities match). *)

val add_exn_decl : env -> Lang.Syntax.exn_decl -> (env, error) result
(** Register a user [exception] declaration: a new constructor of the
    existing [Exception] type (idempotent — the open vocabulary is
    monotone, so programs sharing a name type-check independently). *)

val with_prelude : unit -> env
(** [initial_env] extended with the types of every Prelude binding
    (obtained by inferring the Prelude itself — which is therefore
    type-checked on first use). *)

val infer : env -> Lang.Syntax.expr -> (ty, error) result
(** Infer the type of an expression whose free variables are bound in
    [env]. *)

val extend_letrec :
  env -> (string * Lang.Syntax.expr) list -> (env, error) result
(** Extend [env] with a [letrec] group, per-SCC generalised — exactly
    what {!infer} does for a [Letrec] before typing its body. Exposed so
    a caller typing many bodies under one unchanged group (the
    optimiser's {!Transform.Lint}) can pay for the group once. *)

val infer_program : Lang.Syntax.program -> ((string * ty) list, error) result
(** Check a whole program under the Prelude: returns the inferred type of
    every top-level definition (including [main], which must be [IO t]). *)

val check_string : string -> (ty, error) result
(** Parse (under the Prelude's names) and infer. *)

val ty_to_string : ty -> string
