open Lang.Syntax
module SMap = Map.Make (String)

type ty = T_var of tvar ref | T_con of string * ty list | T_arrow of ty * ty
and tvar = Unbound of int * int  (** id, level *) | Link of ty

type scheme = { quantified : int list; body : ty }

type con_info = {
  result_name : string;
  params : string list;
  fields : ty_expr list;
}

type env = {
  vars : scheme SMap.t;
  cons : con_info SMap.t;
  (* type name -> number of parameters; includes primitive types *)
  type_arity : int SMap.t;
}

type error = { message : string; in_expr : expr option }

exception Type_error of error

let err ?expr fmt =
  Format.kasprintf
    (fun message -> raise (Type_error { message; in_expr = expr }))
    fmt

let pp_error ppf e =
  match e.in_expr with
  | None -> Fmt.string ppf e.message
  | Some ex ->
      Fmt.pf ppf "%s@ in %a" e.message Lang.Pretty.pp_expr ex

(* ------------------------------------------------------------------ *)
(* Unification infrastructure                                          *)
(* ------------------------------------------------------------------ *)

type state = { mutable next_id : int; mutable level : int }

let st = { next_id = 0; level = 0 }

let fresh_var () =
  let id = st.next_id in
  st.next_id <- st.next_id + 1;
  T_var (ref (Unbound (id, st.level)))

let t_int = T_con ("Int", [])
let t_char = T_con ("Char", [])
let t_string = T_con ("String", [])
let t_bool = T_con ("Bool", [])
let t_exception = T_con ("Exception", [])
let t_unit = T_con ("Unit", [])
let t_io a = T_con ("IO", [ a ])
let t_exval a = T_con ("ExVal", [ a ])

let rec repr = function
  | T_var ({ contents = Link t } as r) ->
      let t' = repr t in
      r := Link t';
      t'
  | t -> t

let rec occurs (r : tvar ref) (level : int) (t : ty) : unit =
  match repr t with
  | T_var r' ->
      if r == r' then err "occurs check: cannot construct an infinite type";
      (* Propagate the lower level so generalisation stays sound. *)
      (match !r' with
      | Unbound (id, l) -> if l > level then r' := Unbound (id, level)
      | Link _ -> ())
  | T_con (_, args) -> List.iter (occurs r level) args
  | T_arrow (a, b) ->
      occurs r level a;
      occurs r level b

let rec unify (a : ty) (b : ty) : unit =
  let a = repr a and b = repr b in
  match (a, b) with
  | T_var ra, T_var rb when ra == rb -> ()
  | T_var r, t | t, T_var r ->
      let level = match !r with Unbound (_, l) -> l | Link _ -> max_int in
      occurs r level t;
      r := Link t
  | T_con (c1, a1), T_con (c2, a2)
    when String.equal c1 c2 && List.length a1 = List.length a2 ->
      List.iter2 unify a1 a2
  | T_arrow (a1, b1), T_arrow (a2, b2) ->
      unify a1 a2;
      unify b1 b2
  | _ ->
      let pp = pp_ty_internal () in
      err "cannot unify %a with %a" pp a pp b

(* Canonical printer with stable names per call site. *)
and pp_ty_internal () =
  let names : (int, string) Hashtbl.t = Hashtbl.create 8 in
  let next = ref 0 in
  let name_of id =
    match Hashtbl.find_opt names id with
    | Some n -> n
    | None ->
        let n = Printf.sprintf "'%c" (Char.chr (97 + (!next mod 26))) in
        incr next;
        Hashtbl.add names id n;
        n
  in
  let rec go lvl ppf t =
    match repr t with
    | T_var { contents = Unbound (id, _) } -> Fmt.string ppf (name_of id)
    | T_var { contents = Link _ } -> assert false
    | T_con (c, []) -> Fmt.string ppf c
    | T_con ("List", [ t1 ]) -> Fmt.pf ppf "[%a]" (go 0) t1
    | T_con ("Pair", [ a; b ]) -> Fmt.pf ppf "(%a, %a)" (go 0) a (go 0) b
    | T_con (c, args) ->
        if lvl > 1 then
          Fmt.pf ppf "(%s %a)" c Fmt.(list ~sep:sp (go 2)) args
        else Fmt.pf ppf "%s %a" c Fmt.(list ~sep:sp (go 2)) args
    | T_arrow (x, y) ->
        if lvl > 0 then Fmt.pf ppf "(%a -> %a)" (go 1) x (go 0) y
        else Fmt.pf ppf "%a -> %a" (go 1) x (go 0) y
  in
  go 0

let pp_ty ppf t = (pp_ty_internal ()) ppf t
let ty_to_string t = Fmt.str "%a" pp_ty t

(* ------------------------------------------------------------------ *)
(* Generalisation and instantiation                                    *)
(* ------------------------------------------------------------------ *)

let generalize (t : ty) : scheme =
  let quantified = ref [] in
  let rec go t =
    match repr t with
    | T_var { contents = Unbound (id, l) } ->
        if l > st.level && not (List.mem id !quantified) then
          quantified := id :: !quantified
    | T_var { contents = Link _ } -> assert false
    | T_con (_, args) -> List.iter go args
    | T_arrow (a, b) ->
        go a;
        go b
  in
  go t;
  { quantified = List.rev !quantified; body = t }

let instantiate (s : scheme) : ty =
  if s.quantified = [] then s.body
  else
    let mapping = Hashtbl.create 8 in
    List.iter (fun id -> Hashtbl.add mapping id (fresh_var ())) s.quantified;
    let rec go t =
      match repr t with
      | T_var { contents = Unbound (id, _) } as t' -> (
          match Hashtbl.find_opt mapping id with
          | Some fresh -> fresh
          | None -> t')
      | T_var { contents = Link _ } -> assert false
      | T_con (c, args) -> T_con (c, List.map go args)
      | T_arrow (a, b) -> T_arrow (go a, go b)
    in
    go s.body

let mono t = { quantified = []; body = t }

(* ------------------------------------------------------------------ *)
(* Data-type table                                                     *)
(* ------------------------------------------------------------------ *)

let builtin_data : data_decl list =
  let v x = Ty_var x in
  let c n args = Ty_con (n, args) in
  [
    { type_name = "Bool"; type_params = [];
      constructors = [ ("True", []); ("False", []) ] };
    { type_name = "Unit"; type_params = []; constructors = [ ("Unit", []) ] };
    { type_name = "List"; type_params = [ "a" ];
      constructors =
        [ ("Nil", []); ("Cons", [ v "a"; c "List" [ v "a" ] ]) ] };
    { type_name = "Pair"; type_params = [ "a"; "b" ];
      constructors = [ ("Pair", [ v "a"; v "b" ]) ] };
    { type_name = "Maybe"; type_params = [ "a" ];
      constructors = [ ("Nothing", []); ("Just", [ v "a" ]) ] };
    { type_name = "Exception"; type_params = [];
      constructors =
        [
          ("DivideByZero", []);
          ("Overflow", []);
          ("PatternMatchFail", [ c "String" [] ]);
          ("AssertionFailed", [ c "String" [] ]);
          ("UserError", [ c "String" [] ]);
          ("TypeError", [ c "String" [] ]);
          ("NonTermination", []);
          ("Interrupt", []);
          ("Timeout", []);
          ("StackOverflow", []);
          ("HeapExhaustion", []);
          ("HeapOverflow", []);
          ("ThreadKilled", []);
          ("BlockedIndefinitely", []);
          ("SupervisorLimit", [ c "Int" [] ]);
        ] };
    { type_name = "ThreadId"; type_params = [];
      constructors = [ ("ThreadId", [ c "Int" [] ]) ] };
    (* Extensible-hierarchy PR: the SomeException root (Marlow '06 —
       here a plain wrapper, since Exception is already the universal
       exception type), Either for [try], typed handler lists for
       [catches], and supervision-tree restart strategies. *)
    { type_name = "SomeException"; type_params = [];
      constructors = [ ("SomeException", [ c "Exception" [] ]) ] };
    { type_name = "Either"; type_params = [ "a"; "b" ];
      constructors = [ ("Left", [ v "a" ]); ("Right", [ v "b" ]) ] };
    { type_name = "Handler"; type_params = [ "a" ];
      constructors =
        [
          ("Handler",
           [
             Ty_fun
               (c "Exception" [],
                c "Maybe" [ c "IO" [ v "a" ] ]);
           ]);
        ] };
    { type_name = "Strategy"; type_params = [];
      constructors =
        [ ("OneForOne", []); ("OneForAll", []); ("RestForOne", []) ] };
    { type_name = "ExVal"; type_params = [ "a" ];
      constructors =
        [ ("OK", [ v "a" ]); ("Bad", [ c "Exception" [] ]) ] };
  ]

let primitive_type_arities =
  [
    ("Int", 0);
    ("Char", 0);
    ("String", 0);
    ("IO", 1);
    ("MVar", 1);
    ("Chan", 1);
  ]

(* Convert a surface type expression under a parameter mapping. *)
let rec conv_ty env (params : ty SMap.t) (t : ty_expr) : ty =
  match t with
  | Ty_var v -> (
      match SMap.find_opt v params with
      | Some ty -> ty
      | None -> err "unknown type variable %s" v)
  | Ty_fun (a, b) -> T_arrow (conv_ty env params a, conv_ty env params b)
  | Ty_con (name, args) -> (
      match SMap.find_opt name env.type_arity with
      | None -> err "unknown type constructor %s" name
      | Some n when n <> List.length args ->
          err "type constructor %s expects %d arguments, got %d" name n
            (List.length args)
      | Some _ -> T_con (name, List.map (conv_ty env params) args))

let add_data_exn env (d : data_decl) : env =
  if SMap.mem d.type_name env.type_arity then
    err "type %s is already defined" d.type_name;
  let env =
    {
      env with
      type_arity =
        SMap.add d.type_name (List.length d.type_params) env.type_arity;
    }
  in
  (* Check field types are well-formed under the declared parameters. *)
  let params =
    List.fold_left
      (fun acc p -> SMap.add p (fresh_var ()) acc)
      SMap.empty d.type_params
  in
  List.iter
    (fun (_, fields) -> List.iter (fun f -> ignore (conv_ty env params f))
        fields)
    d.constructors;
  let cons =
    List.fold_left
      (fun acc (cname, fields) ->
        if SMap.mem cname acc then err "constructor %s is already defined"
            cname;
        SMap.add cname
          { result_name = d.type_name; params = d.type_params; fields }
          acc)
      env.cons d.constructors
  in
  { env with cons }

let initial_env () =
  let env =
    {
      vars = SMap.empty;
      cons = SMap.empty;
      type_arity =
        List.fold_left
          (fun acc (n, a) -> SMap.add n a acc)
          SMap.empty primitive_type_arities;
    }
  in
  let env = List.fold_left add_data_exn env builtin_data in
  (* The exception vocabulary is global and monotone: constructors
     declared by any previously checked program (or registered directly,
     as the fuzzer does) stay in scope, mirroring the parser's
     constructor table. *)
  List.fold_left
    (fun env (name, kind) ->
      if SMap.mem name env.cons then env
      else
        let fields =
          match kind with
          | Lang.Exn.K_none -> []
          | Lang.Exn.K_int -> [ Ty_con ("Int", []) ]
          | Lang.Exn.K_string -> [ Ty_con ("String", []) ]
        in
        {
          env with
          cons =
            SMap.add name
              { result_name = "Exception"; params = []; fields }
              env.cons;
        })
    env
    (Lang.Exn.declared_list ())

let add_data env d =
  match add_data_exn env d with
  | env' -> Ok env'
  | exception Type_error e -> Error e

(* An [exception] declaration adds a constructor to the existing
   Exception type. Redeclaration is idempotent (the open vocabulary is
   monotone and the parser has already checked the payload kind is
   consistent), so programs sharing a declared name type-check
   independently. *)
let add_exn_decl_exn env (d : exn_decl) : env =
  let fields = match d.exn_payload with None -> [] | Some t -> [ t ] in
  List.iter (fun f -> ignore (conv_ty env SMap.empty f)) fields;
  if SMap.mem d.exn_name env.cons then env
  else
    {
      env with
      cons =
        SMap.add d.exn_name
          { result_name = "Exception"; params = []; fields }
          env.cons;
    }

let add_exn_decl env d =
  match add_exn_decl_exn env d with
  | env' -> Ok env'
  | exception Type_error e -> Error e

(* Instantiate a constructor: fresh parameters, field types, result. *)
let instantiate_con env cname : ty list * ty =
  match SMap.find_opt cname env.cons with
  | None -> err "unknown constructor %s" cname
  | Some info ->
      let params =
        List.fold_left
          (fun acc p -> SMap.add p (fresh_var ()) acc)
          SMap.empty info.params
      in
      let fields = List.map (conv_ty env params) info.fields in
      let result =
        T_con
          ( info.result_name,
            List.map (fun p -> SMap.find p params) info.params )
      in
      (fields, result)

(* ------------------------------------------------------------------ *)
(* SCC decomposition of letrec groups, so that Prelude-style groups    *)
(* get per-component let-polymorphism.                                 *)
(* ------------------------------------------------------------------ *)

let scc_of_bindings (binds : (string * expr) list) :
    (string * expr) list list =
  let names = List.map fst binds in
  let index_of n =
    let rec go i = function
      | [] -> None
      | x :: _ when String.equal x n -> Some i
      | _ :: rest -> go (i + 1) rest
    in
    go 0 names
  in
  let n = List.length binds in
  let adj = Array.make n [] in
  List.iteri
    (fun i (_, rhs) ->
      let fvs = Lang.Subst.free_vars rhs in
      Lang.Subst.String_set.iter
        (fun v -> match index_of v with
          | Some j -> adj.(i) <- j :: adj.(i)
          | None -> ())
        fvs)
    binds;
  (* Tarjan. *)
  let index = Array.make n (-1) in
  let lowlink = Array.make n 0 in
  let on_stack = Array.make n false in
  let stack = ref [] in
  let counter = ref 0 in
  let sccs = ref [] in
  let rec strongconnect v =
    index.(v) <- !counter;
    lowlink.(v) <- !counter;
    incr counter;
    stack := v :: !stack;
    on_stack.(v) <- true;
    List.iter
      (fun w ->
        if index.(w) = -1 then begin
          strongconnect w;
          lowlink.(v) <- min lowlink.(v) lowlink.(w)
        end
        else if on_stack.(w) then lowlink.(v) <- min lowlink.(v) index.(w))
      adj.(v);
    if lowlink.(v) = index.(v) then begin
      let rec pop acc =
        match !stack with
        | w :: rest ->
            stack := rest;
            on_stack.(w) <- false;
            if w = v then w :: acc else pop (w :: acc)
        | [] -> acc
      in
      sccs := pop [] :: !sccs
    end
  in
  for v = 0 to n - 1 do
    if index.(v) = -1 then strongconnect v
  done;
  (* Tarjan emits components in reverse topological order; reverse to get
     dependencies first. *)
  List.rev_map (List.map (fun i -> List.nth binds i)) !sccs |> List.rev
  |> fun l -> List.rev l

(* ------------------------------------------------------------------ *)
(* Inference                                                           *)
(* ------------------------------------------------------------------ *)

let lit_ty = function
  | Lit_int _ -> t_int
  | Lit_char _ -> t_char
  | Lit_string _ -> t_string

let prim_check env infer_fn (p : Lang.Prim.t) (args : expr list) : ty =
  let module P = Lang.Prim in
  let check e t = unify (infer_fn env e) t in
  match (p, args) with
  | (P.Add | P.Sub | P.Mul | P.Div | P.Mod), [ a; b ] ->
      check a t_int;
      check b t_int;
      t_int
  | P.Neg, [ a ] ->
      check a t_int;
      t_int
  | (P.Eq | P.Ne | P.Lt | P.Le | P.Gt | P.Ge), [ a; b ] ->
      (* Approximation: ∀a. a -> a -> Bool; the dynamic semantics rejects
         function comparison at run time. *)
      let t = fresh_var () in
      check a t;
      check b t;
      t_bool
  | P.Seq, [ a; b ] ->
      ignore (infer_fn env a);
      infer_fn env b
  | P.Map_exception, [ f; v ] ->
      check f (T_arrow (t_exception, t_exception));
      infer_fn env v
  | P.Unsafe_is_exception, [ a ] ->
      ignore (infer_fn env a);
      t_bool
  | P.Unsafe_get_exception, [ a ] -> t_exval (infer_fn env a)
  | P.Chr, [ a ] ->
      check a t_int;
      t_char
  | P.Ord, [ a ] ->
      check a t_char;
      t_int
  | _ -> err "primitive %s applied to %d arguments" (P.name p)
           (List.length args)

let rec infer_exn (env : env) (e : expr) : ty =
  match e with
  | Var x -> (
      match SMap.find_opt x env.vars with
      | Some s -> instantiate s
      | None -> err ~expr:e "unbound variable %s" x)
  | Lit l -> lit_ty l
  | Lam (x, body) ->
      let a = fresh_var () in
      let env' = { env with vars = SMap.add x (mono a) env.vars } in
      T_arrow (a, infer_exn env' body)
  | App (f, a) ->
      let tf = infer_exn env f in
      let ta = infer_exn env a in
      let r = fresh_var () in
      (try unify tf (T_arrow (ta, r))
       with Type_error te ->
         raise (Type_error { te with in_expr = Some e }));
      r
  (* IO constructors are GADT-like; they get dedicated rules. *)
  | Con (c, [ m; k ]) when String.equal c c_bind ->
      let a = fresh_var () and b = fresh_var () in
      unify (infer_exn env m) (t_io a);
      unify (infer_exn env k) (T_arrow (a, t_io b));
      t_io b
  | Con (c, [ v ]) when String.equal c c_return ->
      t_io (infer_exn env v)
  | Con (c, []) when String.equal c c_get_char -> t_io t_char
  | Con (c, [ v ]) when String.equal c c_put_char ->
      unify (infer_exn env v) t_char;
      t_io t_unit
  | Con (c, [ v ]) when String.equal c c_get_exception -> (
      (* getException on a value catches its exceptions; on an IO action
         it performs the action under a catch (GHC's [try]), so the OK
         payload is the action's *result*. The IO view only applies when
         the argument is concretely IO — a type-variable argument keeps
         the pure view (an HM approximation, documented in DESIGN). *)
      let tv = infer_exn env v in
      match repr tv with
      | T_con ("IO", [ a ]) -> t_io (t_exval a)
      | _ -> t_io (t_exval tv))
  | Con (c, [ acq; rel; use ]) when String.equal c c_bracket ->
      let a = fresh_var () and b = fresh_var () and r = fresh_var () in
      unify (infer_exn env acq) (t_io a);
      unify (infer_exn env rel) (T_arrow (a, t_io b));
      unify (infer_exn env use) (T_arrow (a, t_io r));
      t_io r
  | Con (c, [ m; h ]) when String.equal c c_on_exception ->
      let a = fresh_var () in
      unify (infer_exn env m) (t_io a);
      unify (infer_exn env h) (t_io (fresh_var ()));
      t_io a
  | Con (c, [ m ])
    when String.equal c c_mask || String.equal c c_unmask ->
      let a = fresh_var () in
      unify (infer_exn env m) (t_io a);
      t_io a
  | Con (c, [ n; m ]) when String.equal c c_timeout ->
      let a = fresh_var () in
      unify (infer_exn env n) t_int;
      unify (infer_exn env m) (t_io a);
      t_io (T_con ("Maybe", [ a ]))
  | Con (c, [ n; b; m ]) when String.equal c c_retry ->
      let a = fresh_var () in
      unify (infer_exn env n) t_int;
      unify (infer_exn env b) t_int;
      unify (infer_exn env m) (t_io a);
      t_io a
  | Con ("Fork", [ m ]) ->
      unify (infer_exn env m) (t_io (fresh_var ()));
      t_io t_unit
  | Con ("NewMVar", []) -> t_io (T_con ("MVar", [ fresh_var () ]))
  | Con ("TakeMVar", [ r ]) ->
      let a = fresh_var () in
      unify (infer_exn env r) (T_con ("MVar", [ a ]));
      t_io a
  | Con ("PutMVar", [ r; v ]) ->
      let a = fresh_var () in
      unify (infer_exn env r) (T_con ("MVar", [ a ]));
      unify (infer_exn env v) a;
      t_io t_unit
  | Con ("NewChan", [ n ]) ->
      unify (infer_exn env n) t_int;
      t_io (T_con ("Chan", [ fresh_var () ]))
  | Con ("ReadChan", [ r ]) ->
      let a = fresh_var () in
      unify (infer_exn env r) (T_con ("Chan", [ a ]));
      t_io a
  | Con ("WriteChan", [ r; v ]) ->
      let a = fresh_var () in
      unify (infer_exn env r) (T_con ("Chan", [ a ]));
      unify (infer_exn env v) a;
      t_io t_unit
  | Con (c, [ v ]) when String.equal c c_evaluate ->
      (* evaluate :: a -> IO a — forcing the argument is the performed
         effect; the result is the forced value itself. *)
      t_io (infer_exn env v)
  | Con ("MyThreadId", []) -> t_io (T_con ("ThreadId", []))
  | Con ("ThrowTo", [ t; x ]) ->
      unify (infer_exn env t) (T_con ("ThreadId", []));
      unify (infer_exn env x) t_exception;
      t_io t_unit
  | Con (c, args) ->
      let fields, result =
        try instantiate_con env c
        with Type_error te -> raise (Type_error { te with in_expr = Some e })
      in
      if List.length fields <> List.length args then
        err ~expr:e "constructor %s arity mismatch" c;
      List.iter2 (fun a f -> unify (infer_exn env a) f) args fields;
      result
  | Case (scrut, alts) ->
      let ts = infer_exn env scrut in
      let result = fresh_var () in
      List.iter
        (fun alt ->
          let env' = bind_pattern env ts alt.pat in
          try unify (infer_exn env' alt.rhs) result
          with Type_error te ->
            raise (Type_error { te with in_expr = Some alt.rhs }))
        alts;
      result
  | Let (x, e1, e2) ->
      let s = infer_generalized env e1 in
      infer_exn { env with vars = SMap.add x s env.vars } e2
  | Letrec (binds, body) ->
      let env' = infer_letrec env binds in
      infer_exn env' body
  | Prim (p, args) -> (
      try prim_check env infer_exn p args
      with Type_error te -> raise (Type_error { te with in_expr = Some e }))
  | Raise e1 ->
      (try unify (infer_exn env e1) t_exception
       with Type_error te ->
         raise (Type_error { te with in_expr = Some e }));
      fresh_var ()
  | Fix e1 ->
      let a = fresh_var () in
      unify (infer_exn env e1) (T_arrow (a, a));
      a

and bind_pattern env scrut_ty (p : pat) : env =
  match p with
  | Pany None -> env
  | Pany (Some x) ->
      { env with vars = SMap.add x (mono scrut_ty) env.vars }
  | Plit l ->
      unify scrut_ty (lit_ty l);
      env
  | Pcon (c, xs) -> (
      (* IO patterns are not supported (performing is the IO layer's
         job), but ordinary data constructors are. *)
      match SMap.find_opt c env.cons with
      | None -> err "cannot match on constructor %s" c
      | Some _ ->
          let fields, result = instantiate_con env c in
          unify scrut_ty result;
          if List.length fields <> List.length xs then
            err "pattern %s arity mismatch" c;
          List.fold_left2
            (fun acc x f ->
              { acc with vars = SMap.add x (mono f) acc.vars })
            env xs fields)

and infer_generalized env e1 : scheme =
  st.level <- st.level + 1;
  let t =
    match infer_exn env e1 with
    | t ->
        st.level <- st.level - 1;
        t
    | exception ex ->
        st.level <- st.level - 1;
        raise ex
  in
  generalize t

and infer_letrec env (binds : (string * expr) list) : env =
  (* Per-SCC generalisation, dependencies first: this is what lets a
     large recursive group (like the Prelude) use its members
     polymorphically. *)
  let groups = scc_of_bindings binds in
  List.fold_left
    (fun env group ->
      st.level <- st.level + 1;
      let tys =
        List.map (fun (x, _) -> (x, fresh_var ())) group
      in
      let env_mono =
        List.fold_left
          (fun acc (x, t) -> { acc with vars = SMap.add x (mono t) acc.vars })
          env tys
      in
      (match
         List.iter
           (fun (x, rhs) ->
             let t = infer_exn env_mono rhs in
             unify t (List.assoc x tys))
           group
       with
      | () -> st.level <- st.level - 1
      | exception ex ->
          st.level <- st.level - 1;
          raise ex);
      List.fold_left
        (fun acc (x, t) ->
          { acc with vars = SMap.add x (generalize t) acc.vars })
        env tys)
    env groups

let infer env e =
  match infer_exn env e with
  | t -> Ok t
  | exception Type_error te -> Error te

let extend_letrec env binds =
  match infer_letrec env binds with
  | env' -> Ok env'
  | exception Type_error te -> Error te

let with_prelude_cache : env option ref = ref None

let with_prelude () =
  match !with_prelude_cache with
  | Some env -> env
  | None -> (
      let env0 = initial_env () in
      match infer_letrec env0 Lang.Prelude.defs with
      | env ->
          with_prelude_cache := Some env;
          env
      | exception Type_error te ->
          invalid_arg
            (Fmt.str "the Prelude does not type-check: %a" pp_error te))

let infer_program (p : program) =
  match
    let env0 = with_prelude () in
    let env1 = List.fold_left add_data_exn env0 p.datas in
    let env1 = List.fold_left add_exn_decl_exn env1 p.exns in
    let env2 = infer_letrec env1 p.defs in
    let tys =
      List.map
        (fun (x, _) ->
          match SMap.find_opt x env2.vars with
          | Some s -> (x, instantiate s)
          | None -> assert false)
        p.defs
    in
    (* main must be an IO computation. *)
    (match List.assoc_opt "main" tys with
    | Some t -> unify t (t_io (fresh_var ()))
    | None -> err "program has no main");
    tys
  with
  | tys -> Ok tys
  | exception Type_error te -> Error te

let check_string src =
  match Lang.Parser.parse_expr src with
  | e -> (
      let env = with_prelude () in
      match infer env e with Ok t -> Ok t | Error te -> Error te)
  | exception Lang.Parser.Error (msg, l, c) ->
      Error { message = Printf.sprintf "parse error %d:%d %s" l c msg;
              in_expr = None }
