open Lang.Syntax
module Exn = Lang.Exn
module Env = Map.Make (String)

type t = {
  may_raise : Exn.Set.t;
  may_diverge : bool;
  unknown : bool;
}

let pure t =
  (not t.unknown) && (not t.may_diverge) && Exn.Set.is_empty t.may_raise

let none = { may_raise = Exn.Set.empty; may_diverge = false; unknown = false }
let top = { may_raise = Exn.Set.empty; may_diverge = true; unknown = true }
let raises e = { none with may_raise = Exn.Set.singleton e }

let join a b =
  {
    may_raise = Exn.Set.union a.may_raise b.may_raise;
    may_diverge = a.may_diverge || b.may_diverge;
    unknown = a.unknown || b.unknown;
  }

(* What a binder is known to be: a lambda with a latent effect (charged at
   application sites), or a plain computation whose effect is charged when
   the variable is demanded. *)
type binding = B_fun of t | B_val of t

(* Canonicalise a source-level exception constructor expression to a
   constant, when it is literal. *)
let literal_exn = function
  | Con (name, []) -> Exn.of_constructor name None
  | Con (name, [ Lit (Lit_string s) ]) -> Exn.of_constructor name (Some s)
  | Con (name, [ Lit (Lit_int n) ]) ->
      Exn.of_constructor_p name (Some (Exn.P_int n))
  | _ -> None

let rec spine acc = function
  | App (f, a) -> spine (a :: acc) f
  | head -> (head, acc)

let rec uncurry = function
  | Lam (x, b) ->
      let xs, inner = uncurry b in
      (x :: xs, inner)
  | e -> ([], e)

(* Effect of demanding [e] to WHNF under [env]. *)
let rec effect (env : binding Env.t) (e : expr) : t =
  match e with
  | Lit _ | Lam _ -> none
  | Con (_, _) -> none
  | Var x -> (
      match Env.find_opt x env with
      | Some (B_val t) -> t
      | Some (B_fun _) -> none (* the function value itself is WHNF *)
      | None -> top)
  | App _ -> (
      let head, args = spine [] e in
      (* Arguments may all be demanded by a strict callee; charge them. *)
      let args_eff =
        List.fold_left (fun acc a -> join acc (effect env a)) none args
      in
      match head with
      | Var f -> (
          match Env.find_opt f env with
          | Some (B_fun latent) -> join latent args_eff
          | Some (B_val _) | None -> top)
      | Lam _ ->
          let params, body = uncurry head in
          if List.length args <= List.length params then
            (* Approximate beta: bind arguments as unknown-value effects
               of the actual arguments. *)
            let env' =
              List.fold_left2
                (fun acc x a -> Env.add x (B_val (effect env a)) acc)
                env
                (List.filteri (fun i _ -> i < List.length args) params)
                args
            in
            join args_eff (effect env' body)
          else top
      | _ -> top)
  | Raise e1 -> (
      match literal_exn e1 with
      | Some exn -> raises exn
      | None -> join top (effect env e1))
  | Prim (p, args) -> (
      let module P = Lang.Prim in
      let args_eff =
        List.fold_left (fun acc a -> join acc (effect env a)) none args
      in
      match p with
      | P.Div | P.Mod ->
          join args_eff
            (join (raises Exn.Divide_by_zero) (raises Exn.Overflow))
      | P.Add | P.Sub | P.Mul | P.Neg -> join args_eff (raises Exn.Overflow)
      | P.Eq | P.Ne | P.Lt | P.Le | P.Gt | P.Ge | P.Seq | P.Chr | P.Ord ->
          args_eff
      | P.Map_exception ->
          (* mapException can rewrite exceptions arbitrarily. *)
          join args_eff top
      | P.Unsafe_is_exception | P.Unsafe_get_exception ->
          (* These catch: exceptions are swallowed, divergence is not. *)
          { args_eff with may_raise = Lang.Exn.Set.empty })
  | Case (scrut, alts) ->
      let scrut_eff = effect env scrut in
      let alt_eff a =
        let env' =
          List.fold_left
            (fun acc x -> Env.add x (B_val top) acc)
            env (pat_binders a.pat)
        in
        effect env' a.rhs
      in
      let branches =
        List.fold_left (fun acc a -> join acc (alt_eff a)) none alts
      in
      let fallthrough =
        (* A non-exhaustive case may fail to match. *)
        match
          List.exists (fun a -> match a.pat with Pany _ -> true | _ -> false)
            alts
        with
        | true -> none
        | false -> raises (Exn.Pattern_match_fail "case")
      in
      join scrut_eff (join branches fallthrough)
  | Let (x, e1, e2) ->
      let b =
        match e1 with
        | Lam _ ->
            let _, body = uncurry e1 in
            B_fun (effect (bind_params env e1) body)
        | _ -> B_val (effect env e1)
      in
      effect (Env.add x b env) e2
  | Letrec (binds, body) ->
      (* Recursion is treated pessimistically: every recursive function may
         diverge (the paper: one can only "hope to prove that non-recursive
         programs terminate"); its latent effect is its body's effect with
         recursive calls charged as diverging. *)
      let env0 =
        List.fold_left
          (fun acc (f, rhs) ->
            match rhs with
            | Lam _ -> Env.add f (B_fun { top with unknown = false }) acc
            | _ -> Env.add f (B_val { top with unknown = false }) acc)
          env binds
      in
      let env' =
        List.fold_left
          (fun acc (f, rhs) ->
            match rhs with
            | Lam _ ->
                let _, inner = uncurry rhs in
                let latent =
                  join
                    { none with may_diverge = true }
                    (effect (bind_params env0 rhs) inner)
                in
                Env.add f (B_fun latent) acc
            | _ ->
                Env.add f
                  (B_val (join { none with may_diverge = true }
                            (effect env0 rhs)))
                  acc)
          env0 binds
      in
      effect env' body
  | Fix _ -> { top with unknown = false }

and bind_params env lam =
  let params, _ = uncurry lam in
  List.fold_left (fun acc x -> Env.add x (B_val top) acc) env params

let analyze e = effect Env.empty e

let pp ppf t =
  if t.unknown then Fmt.string ppf "unknown"
  else
    Fmt.pf ppf "{raise: %a; diverge: %b}"
      Fmt.(list ~sep:comma Exn.pp)
      (Exn.Set.elements t.may_raise)
      t.may_diverge
