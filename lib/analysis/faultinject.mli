(** A cross-layer fault-injection harness.

    From a seeded oracle, generate a {!fault} — a schedule of asynchronous
    events (Section 5.1), optional heap/stack ceilings (catchable resource
    exhaustion in {!Machine.Stg}), a starved machine fuel budget,
    truncated input, and a GC cadence — then run a library of template
    programs under all four IO layers ({!Semantics.Iosem},
    {!Semantics.Conc}, {!Machine.Machine_io}, {!Machine.Machine_conc})
    and check the invariants that must survive any fault:

    - every surfaced uncaught exception is a member of the pure core's
      denotational exception set, or an asynchronous/resource event;
    - bracket releases run exactly once per completed acquire
      (counters and paired 'A'/'R' output markers);
    - a shared thunk interrupted mid-force never loses work (a second
      force sees the same value or exception — the pause-cell invariant);
    - [Mask] really defers delivery (a masked section is never torn);
    - with no fault injected, all four layers agree (baseline). *)

type fault = {
  seed : int;  (** Oracle seed; also seeds the layers' oracles. *)
  async : (int * Lang.Exn.t) list;
      (** Asynchronous events: deliver [x] at the first [getException] at
          or after the given transition. *)
  kills : (int * int * Lang.Exn.t) list;
      (** Thread-targeted sends [(clock, tid, exn)] — the
          [throwTo]/[killThread] fault axis, applied to the concurrent
          layers only; sends to finished or never-spawned threads are
          dropped, like a dead [throwTo]. *)
  heap_limit : int option;  (** Machine heap ceiling in cells. *)
  stack_limit : int option;  (** Machine stack ceiling in frames. *)
  starved_fuel : int option;
      (** Tiny machine fuel budget, simulating fuel exhaustion. *)
  truncate_input : bool;  (** Run with the template's input removed. *)
  gc_every : int option;
      (** Collect the machine heap every [k] IO transitions, exercising
          frame relocation under faults. *)
}

val no_fault : int -> fault
(** A fault record that injects nothing (baseline runs). *)

val clean : fault -> bool
(** No resource limits, no starved fuel and no kill schedule: the
    strictest checks apply. *)

val pp_fault : fault Fmt.t

type layer = L_iosem | L_conc | L_machine_io | L_machine_conc

val layer_name : layer -> string

type status = S_done | S_uncaught of Lang.Exn.t | S_diverged | S_stuck | S_deadlock

val status_name : status -> string

type observation = {
  status : status;
  output : string;
  entered : int;  (** Bracket acquires that completed. *)
  released : int;  (** Bracket releases that ran. *)
}

type template = {
  name : string;
  source : string;  (** Surface syntax, wrapped with the Prelude. *)
  base_input : string;
  core : string option;
      (** The pure sub-expression whose denotational exception set bounds
          the program's uncaught exceptions. *)
  conc_only : bool;  (** Uses [forkIO]/MVars: concurrent layers only. *)
  deterministic : bool;
      (** Zero-fault output is identical across layers. *)
  special : fault -> observation -> string list;
      (** Per-template invariants; returns violation messages. *)
}

val templates : template list

val observe : ?trace:Obs.t -> layer -> template -> fault -> observation
(** Run one template under one layer with the fault applied. [trace] is
    threaded into the layer's flight recorder. *)

val trace_of_failure : layer -> template -> fault -> string
(** Replay one (layer, template, fault) cell with an enabled recorder
    and return the crash-dump text. {!check_one} calls this on every
    violation, so failing schedules always report their event trace;
    passing schedules never pay for tracing. *)

val layers_for : template -> layer list

val gen_fault : seed:int -> template -> fault
(** The seeded fault generator used by {!run_suite}. *)

val check_one : template -> fault -> layer -> int * string list
(** Run and check one (template, fault, layer) cell: returns the number
    of checks evaluated and any violations. When there are violations,
    the last entry is the flight-recorder dump of an instrumented
    replay of the same schedule. *)

val baseline : template -> int * string list
(** Cross-layer agreement with no fault injected. *)

val check_supervisor : unit -> int * string list
(** The heap-exhaustion recovery scenario: under a heap ceiling the
    machine surfaces a catchable [HeapOverflow], the supervisor catches
    it, an emergency collection frees the abandoned allocations, and a
    smaller retry succeeds. *)

type report = {
  runs : int;  (** (template, layer, fault) executions performed. *)
  checks : int;  (** Individual invariant checks evaluated. *)
  violations : string list;  (** Empty iff every check passed. *)
}

val pp_report : report Fmt.t

val run_suite : ?count:int -> unit -> report
(** Run the baselines, [count] seeded fault schedules (default 250, each
    over one template on every applicable layer), and the supervisor
    scenario. *)
