(** Strictness analysis: a two-point abstract interpretation computing
    which variables are *definitely demanded* when an expression is
    demanded to WHNF.

    This drives the call-by-need → call-by-value pass that Section 3.4
    singles out: "Haskell compilers perform strictness analysis to turn
    call-by-need into call-by-value. This crucial transformation changes
    the evaluation order" — valid under the imprecise semantics, but
    requiring an exception-freedom proof under fixed-order semantics
    (see {!Exn_analysis}).

    Recursive function signatures are solved by a decreasing fixpoint from
    the all-strict top element, which is sound for strictness (a safety
    property): the analysis only claims [f] strict in an argument if
    [f ⊥ = ⊥] in that position. *)

module String_set = Lang.Subst.String_set

type signature = bool list
(** One flag per parameter of a [letrec]-bound curried function:
    [true] = the argument is definitely demanded whenever the fully
    applied call is demanded. *)

type sigs
(** Signatures for the functions bound in the analysed expression. *)

val empty_sigs : sigs
val find_sig : sigs -> string -> signature option
val sigs_to_list : sigs -> (string * signature) list

val analyze : Lang.Syntax.expr -> sigs
(** Compute signatures for every [letrec]-bound function in the
    expression (including nested ones). *)

val demanded : sigs -> Lang.Syntax.expr -> String_set.t
(** [demanded sigs e]: free variables of [e] certainly forced whenever [e]
    is forced to WHNF — restricted to demand paths along which early
    forcing is observationally safe under the imprecise semantics.
    Demand through [mapException] is deliberately not reported: it
    forces its argument but rewrites the exceptions it surfaces, so the
    transformations this analysis licenses (let-to-case, [seq]
    insertion) would change the exception set. *)

val strict_args_of_app : sigs -> Lang.Syntax.expr -> bool list
(** For an application spine [f a1 ... an] with [f] a known function,
    which argument positions are demanded. Empty if the head is
    unknown. *)

val pp_signature : signature Fmt.t
