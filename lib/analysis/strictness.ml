open Lang.Syntax
module String_set = Lang.Subst.String_set
module Sig_map = Map.Make (String)

type signature = bool list
type sigs = signature Sig_map.t

let empty_sigs = Sig_map.empty
let find_sig sigs f = Sig_map.find_opt f sigs
let sigs_to_list sigs = Sig_map.bindings sigs

let pp_signature ppf s =
  Fmt.pf ppf "%s"
    (String.concat "" (List.map (fun b -> if b then "S" else "L") s))

(* Split a function body into curried parameters and inner body. *)
let rec uncurry = function
  | Lam (x, body) ->
      let xs, inner = uncurry body in
      (x :: xs, inner)
  | e -> ([], e)

(* Application spine. *)
let rec spine acc = function
  | App (f, a) -> spine (a :: acc) f
  | head -> (head, acc)

(* Variables certainly demanded when [e] is demanded to WHNF, given
   function signatures. *)
let rec demanded_in (sigs : sigs) (e : expr) : String_set.t =
  match e with
  | Var x -> String_set.singleton x
  | Lit _ | Lam _ | Con _ -> String_set.empty
  | App _ -> (
      let head, args = spine [] e in
      match head with
      | Var f -> (
          let base = String_set.singleton f in
          match Sig_map.find_opt f sigs with
          | Some sg when List.length args = List.length sg ->
              (* Fully applied known function: strict positions are
                 demanded. *)
              List.fold_left2
                (fun acc strict a ->
                  if strict then String_set.union acc (demanded_in sigs a)
                  else acc)
                base sg args
          | Some _ | None -> base)
      | _ -> demanded_in sigs head)
  | Case (scrut, alts) ->
      let scrut_d = demanded_in sigs scrut in
      let branch_d =
        match alts with
        | [] -> String_set.empty
        | a0 :: rest ->
            let alt_d a =
              String_set.diff (demanded_in sigs a.rhs)
                (String_set.of_list (pat_binders a.pat))
            in
            List.fold_left
              (fun acc a -> String_set.inter acc (alt_d a))
              (alt_d a0) rest
      in
      String_set.union scrut_d branch_d
  | Let (x, e1, e2) ->
      let d2 = demanded_in sigs e2 in
      let d2' = String_set.remove x d2 in
      if String_set.mem x d2 then String_set.union d2' (demanded_in sigs e1)
      else d2'
  | Letrec (binds, body) ->
      let bound = String_set.of_list (List.map fst binds) in
      (* Conservative: do not chase demand through the recursive knot. *)
      String_set.diff (demanded_in sigs body) bound
  | Prim (p, args) -> (
      let module P = Lang.Prim in
      match (p, args) with
      | P.Map_exception, _ ->
          (* [mapException f v] does force [v], but it rewrites the
             exceptions [v] surfaces — so a variable demanded only
             through it is NOT safe to force early: the consumers of
             this analysis (let-to-case, seq insertion) would surface
             the un-mapped exception. Report no demand through it. *)
          String_set.empty
      | _, args ->
          List.fold_left
            (fun acc a -> String_set.union acc (demanded_in sigs a))
            String_set.empty args)
  | Raise e1 -> demanded_in sigs e1
  | Fix e1 -> demanded_in sigs e1

(* One round of signature refinement for a letrec group. *)
let refine_group (sigs : sigs) (binds : (string * expr) list) : sigs =
  List.fold_left
    (fun acc (f, rhs) ->
      let params, body = uncurry rhs in
      if params = [] then acc
      else
        let d = demanded_in sigs body in
        let sg = List.map (fun x -> String_set.mem x d) params in
        Sig_map.add f sg acc)
    sigs binds

let analyze (e : expr) : sigs =
  (* Collect every letrec group in the term. *)
  let groups = ref [] in
  let rec collect e =
    (match e with
    | Letrec (binds, _) -> groups := binds :: !groups
    | _ -> ());
    match e with
    | Var _ | Lit _ -> ()
    | Lam (_, b) | Raise b | Fix b -> collect b
    | App (a, b) | Let (_, a, b) ->
        collect a;
        collect b
    | Con (_, es) | Prim (_, es) -> List.iter collect es
    | Case (s, alts) ->
        collect s;
        List.iter (fun a -> collect a.rhs) alts
    | Letrec (binds, body) ->
        List.iter (fun (_, rhs) -> collect rhs) binds;
        collect body
  in
  collect e;
  (* Start from the all-strict top element and iterate downwards to the
     greatest fixpoint. *)
  let init =
    List.fold_left
      (fun acc binds ->
        List.fold_left
          (fun acc (f, rhs) ->
            let params, _ = uncurry rhs in
            if params = [] then acc
            else Sig_map.add f (List.map (fun _ -> true) params) acc)
          acc binds)
      Sig_map.empty !groups
  in
  let step sigs =
    List.fold_left (fun acc binds -> refine_group acc binds) sigs !groups
  in
  let rec fixpoint sigs n =
    if n > 20 then sigs
    else
      let sigs' = step sigs in
      if Sig_map.equal (List.equal Bool.equal) sigs sigs' then sigs
      else fixpoint sigs' (n + 1)
  in
  fixpoint init 0

let demanded = demanded_in

let strict_args_of_app sigs e =
  let head, args = spine [] e in
  match head with
  | Var f -> (
      match Sig_map.find_opt f sigs with
      | Some sg when List.length args = List.length sg -> sg
      | Some _ | None -> [])
  | _ -> []
