(* A cross-layer fault-injection harness.

   From a seeded oracle we generate a [fault] — a schedule of
   asynchronous events, optional heap/stack ceilings, a starved machine
   fuel budget, truncated input, and a GC cadence — then run a small
   library of template programs under all four IO layers (denotational
   {!Semantics.Iosem}, denotational concurrent {!Semantics.Conc}, machine
   {!Machine.Machine_io}, concurrent machine {!Machine.Machine_conc}) and
   check the exception-safety invariants that are supposed to survive
   *any* fault:

   - every surfaced uncaught exception is a member of the denotational
     exception set of the program's pure core (or is an asynchronous /
     resource event, which the semantics allows anywhere);
   - bracket releases run exactly once per completed acquire
     ([brackets_entered = brackets_released] whenever the program ran to
     [Done]/[Uncaught], and the 'A'/'R' output markers pair up);
   - a shared thunk interrupted mid-evaluation never loses work: a second
     force sees the same value or the same exception, never a different
     one (the pause-cell invariant, template [shared-thunk]);
   - [Mask] really defers delivery: a masked section's output is never
     torn by an injected event. *)

module Exn = Lang.Exn
module Denot = Semantics.Denot
module Exn_set = Semantics.Exn_set
module Oracle = Semantics.Oracle
module Iosem = Semantics.Iosem
module Conc = Semantics.Conc
module Stg = Machine.Stg
module Machine_io = Machine.Machine_io
module Machine_conc = Machine.Machine_conc
module Stats = Machine.Stats

type fault = {
  seed : int;
  async : (int * Exn.t) list;
  kills : (int * int * Exn.t) list;
      (** Thread-targeted sends [(clock, tid, exn)], the [throwTo] /
          [killThread] axis; concurrent layers only. *)
  heap_limit : int option;
  stack_limit : int option;
  starved_fuel : int option;
      (** Machine fuel override (tiny), simulating fuel exhaustion. *)
  truncate_input : bool;
  gc_every : int option;  (** Machine-layer collection cadence. *)
}

let no_fault seed =
  {
    seed;
    async = [];
    kills = [];
    heap_limit = None;
    stack_limit = None;
    starved_fuel = None;
    truncate_input = false;
    gc_every = None;
  }

(* A fault is "clean" when it cannot legitimately change the program's
   termination behaviour: only then do the strictest checks apply. Kill
   schedules can end threads mid-output, so they are not clean. *)
let clean f =
  f.heap_limit = None && f.stack_limit = None && f.starved_fuel = None
  && f.kills = []

let pp_fault ppf f =
  Fmt.pf ppf
    "{seed=%d; async=[%a]; kills=[%a]; heap=%a; stack=%a; fuel=%a; trunc=%b}"
    f.seed
    Fmt.(list ~sep:comma (pair ~sep:(any "@") int Exn.pp))
    f.async
    Fmt.(
      list ~sep:comma (fun ppf (k, tid, x) ->
          Fmt.pf ppf "%a→t%d@%d" Exn.pp x tid k))
    f.kills
    Fmt.(option ~none:(any "-") int)
    f.heap_limit
    Fmt.(option ~none:(any "-") int)
    f.stack_limit
    Fmt.(option ~none:(any "-") int)
    f.starved_fuel f.truncate_input

type layer = L_iosem | L_conc | L_machine_io | L_machine_conc

let layer_name = function
  | L_iosem -> "iosem"
  | L_conc -> "conc"
  | L_machine_io -> "machine_io"
  | L_machine_conc -> "machine_conc"

type status = S_done | S_uncaught of Exn.t | S_diverged | S_stuck | S_deadlock

let status_name = function
  | S_done -> "done"
  | S_uncaught e -> Fmt.str "uncaught %a" Exn.pp e
  | S_diverged -> "diverged"
  | S_stuck -> "stuck"
  | S_deadlock -> "deadlock"

type observation = {
  status : status;
  output : string;
  entered : int;  (** Bracket acquires that completed. *)
  released : int;  (** Bracket releases that ran. *)
}

(* Template programs: the [source] is surface syntax wrapped with the
   Prelude (we cannot use [Imprecise.parse] here — the core library
   depends on this one). [core] is the pure sub-expression whose
   denotational exception set bounds the uncaught exceptions the program
   may surface; [special] holds per-template invariants. *)
type template = {
  name : string;
  source : string;
  base_input : string;
  core : string option;
  conc_only : bool;
  deterministic : bool;
      (** Zero-fault output is identical across layers (false for
          templates whose output depends on the layer's clock). *)
  special : fault -> observation -> string list;
}

let parse_tbl : (string, Lang.Syntax.expr) Hashtbl.t = Hashtbl.create 32

let parse src =
  match Hashtbl.find_opt parse_tbl src with
  | Some e -> e
  | None ->
      let e = Lang.Prelude.wrap (Lang.Parser.parse_expr src) in
      Hashtbl.add parse_tbl src e;
      e

let exn_set_tbl : (string, Exn_set.t) Hashtbl.t = Hashtbl.create 8

(* The denotational exception set of a pure core, at generous fuel. *)
let core_exn_set core =
  match Hashtbl.find_opt exn_set_tbl core with
  | Some s -> s
  | None ->
      let s = Denot.exception_set (parse core) in
      Hashtbl.add exn_set_tbl core s;
      s

let count c s =
  String.fold_left (fun n ch -> if ch = c then n + 1 else n) 0 s

let no_special _ _ = []

(* ------------------------------------------------------------------ *)
(* Template library                                                    *)
(* ------------------------------------------------------------------ *)

let cores =
  [
    ("pure", "sum (enumFromTo 1 40)");
    ("divzero", "1 / 0");
    ("headnil", "head []");
    ("mixed", "(1 / 0) + error \"Urk\"");
  ]

(* T1: a supervised core inside a bracket; the supervisor catches, so the
   program always completes (an injected event only changes which [Bad]
   the supervisor sees). *)
let t_bracket_supervised (cname, core) =
  {
    name = "bracket-supervised/" ^ cname;
    source =
      Fmt.str
        "bracket (putChar 'A' >>= \\u -> return 7) (\\r -> putChar 'R') \
         (\\r -> getException (%s) >>= \\v -> putChar 'B' >>= \\u2 -> \
         return 3)"
        core;
    base_input = "";
    core = Some core;
    conc_only = false;
    deterministic = true;
    special = no_special;
  }

(* T2: the use phase forces the core unprotected — exceptional cores
   escape, but only after the release has run. *)
let t_bracket_uncaught (cname, core) =
  {
    name = "bracket-uncaught/" ^ cname;
    source =
      Fmt.str
        "putChar 'S' >>= \\u0 -> bracket (putChar 'A' >>= \\u -> return 0) \
         (\\r -> putChar 'R') (\\r -> seq (%s) (return Unit))"
        core;
    base_input = "";
    core = Some core;
    conc_only = false;
    deterministic = true;
    special = no_special;
  }

(* T3: a timeout interrupts a bracketed writer; the release must still
   run before the timeout is converted to Nothing. Output length depends
   on the layer's clock, so it is not deterministic across layers. *)
let t_timeout_bracket =
  {
    name = "timeout-bracket";
    source =
      "timeout 12 (bracket (putChar 'A' >>= \\u -> return 1) (\\r -> \
       putChar 'R') (\\r -> putList (replicate 40 'x'))) >>= \\mv -> case \
       mv of { Nothing -> putChar 'T' >>= \\u -> return 0 ; Just x -> \
       putChar 'J' >>= \\u -> return 1 }";
    base_input = "";
    core = None;
    conc_only = false;
    deterministic = false;
    special = no_special;
  }

(* T4: the pause-cell / no-lost-work invariant. A shared thunk is forced
   by two successive getExceptions; whatever faults strike, the two
   *synchronous* observations must be consistent: 'D' (both synchronous,
   yet a different value or a different exception) must never appear. An
   asynchronous [Bad] — an injected event, a resource ceiling — says
   nothing about the thunk, only about the moment, so any comparison
   involving one is excused ('w'). Cores are restricted to ones with
   at-most-singleton exception sets so the denotational oracle cannot
   legitimately pick two different representatives. *)
let t_shared_thunk (cname, core) =
  {
    name = "shared-thunk/" ^ cname;
    source =
      Fmt.str
        "let isAsync = \\ex -> case ex of { Interrupt -> True; Timeout -> \
         True; HeapExhaustion -> True; HeapOverflow -> True; \
         StackOverflow -> True; zz -> False } in let shared = %s in \
         getException shared >>= \\a -> getException shared >>= \\b -> \
         case a of { OK x -> case b of { OK y -> (if x == y then putChar \
         'E' else putChar 'D') >>= \\u -> return 1 ; Bad e2 -> (if \
         isAsync e2 then putChar 'w' else putChar 'D') >>= \\u -> return \
         2 } ; Bad e1 -> case b of { Bad e2 -> (if eqExn e1 e2 then \
         putChar 'E' else if isAsync e1 then putChar 'w' else if isAsync \
         e2 then putChar 'w' else putChar 'D') >>= \\u -> return 3 ; OK y \
         -> (if isAsync e1 then putChar 'w' else putChar 'D') >>= \\u -> \
         return 4 } }"
        core;
    base_input = "";
    core = Some core;
    conc_only = false;
    deterministic = true;
    special =
      (fun _fault obs ->
        if String.contains obs.output 'D' then
          [ "shared thunk observed two different values/exceptions" ]
        else []);
  }

(* T5: retry with deterministic backoff — one 't' per attempt, at most
   1 + 3 retries. *)
let t_retry (cname, core) =
  {
    name = "retry/" ^ cname;
    source =
      Fmt.str
        "retryWithBackoff 3 5 (putChar 't' >>= \\u -> seq (%s) (return \
         Unit)) >>= \\v -> putChar 'F' >>= \\u -> return 9"
        core;
    base_input = "";
    core = Some core;
    conc_only = false;
    deterministic = true;
    special =
      (fun _fault obs ->
        if count 't' obs.output > 4 then
          [
            Fmt.str "retry ran %d attempts (max 4)" (count 't' obs.output);
          ]
        else []);
  }

(* T7: a forked child's bracket; the parent waits on an MVar, so the
   child's release must appear in the output before the join. *)
let t_fork_bracket =
  {
    name = "fork-bracket";
    source =
      "newEmptyMVar >>= \\mv -> forkIO (bracket (putChar 'A' >>= \\u -> \
       return 1) (\\r -> putChar 'R') (\\r -> putChar 'B' >>= \\u -> \
       return 2) >>= \\x -> putMVar mv x) >>= \\u -> takeMVar mv >>= \\y \
       -> putChar 'J' >>= \\u2 -> return y";
    base_input = "";
    core = None;
    conc_only = true;
    deterministic = false;
    special = no_special;
  }

(* T8: Mask must defer injected events past the whole masked section —
   under a clean fault the output is exactly "MU" no matter what the
   async schedule says. *)
let t_mask_shield =
  {
    name = "mask-shield";
    source =
      "mask (getException (sum (enumFromTo 1 50)) >>= \\v -> putChar 'M' \
       >>= \\u -> return 0) >>= \\w -> getException 7 >>= \\v2 -> putChar \
       'U' >>= \\u3 -> return 0";
    base_input = "";
    core = None;
    conc_only = false;
    deterministic = true;
    special =
      (fun fault obs ->
        if clean fault && obs.output <> "MU" then
          [ Fmt.str "masked section torn: output %S (expected MU)" obs.output ]
        else []);
  }

(* T10: a supervised worker under a kill schedule. [superviseWorker]
   forks the worker, joins it through an MVar under [catchIO], and on any
   exception — a delivered kill, or the BlockedIndefinitely recovery when
   the dead worker leaves the join irrecoverably blocked — retries with a
   fresh worker, falling back after three attempts. A fault may kill the
   workers (tids 1..) as often as it likes; as long as it leaves the
   supervising main thread (tid 0) alone and sets no resource ceilings,
   the program must complete. *)
let t_supervised_kill =
  {
    name = "supervised-kill";
    source =
      "superviseWorker 3 (putInt (sum (enumFromTo 1 200)) >>= \\u -> \
       return 9) (return 0) >>= \\v -> putChar 'S' >>= \\u2 -> return v";
    base_input = "";
    core = None;
    conc_only = true;
    deterministic = true;
    special =
      (fun fault obs ->
        let spares_main =
          List.for_all (fun (_, tid, _) -> tid <> 0) fault.kills
        in
        if
          fault.heap_limit = None && fault.stack_limit = None
          && fault.starved_fuel = None && spares_main
          && obs.status <> S_done
        then
          [
            Fmt.str "supervised worker did not complete: %s"
              (status_name obs.status);
          ]
        else []);
  }

(* T11: blocked-indefinitely recovery. The main thread blocks forever on
   an empty MVar inside a getException; the scheduler must deliver the
   catchable BlockedIndefinitely there (never a global deadlock), and the
   fallback must run. Any injected kill aimed at the blocked thread is
   equally caught, so under every resource-clean fault the program
   completes with output "F". *)
let t_blocked_recover =
  {
    name = "blocked-recover";
    source =
      "newEmptyMVar >>= \\mv -> getException (takeMVar mv) >>= \\r -> \
       case r of { OK x -> return 0 ; Bad e -> putChar 'F' >>= \\u -> \
       return 7 }";
    base_input = "";
    core = None;
    conc_only = true;
    deterministic = true;
    special =
      (fun fault obs ->
        if
          fault.heap_limit = None && fault.stack_limit = None
          && fault.starved_fuel = None
          && not (obs.status = S_done && obs.output = "F")
        then
          [
            Fmt.str "blocked thread not recovered: %s with output %S"
              (status_name obs.status) obs.output;
          ]
        else []);
  }

(* T12: a channel handoff under kills. The guarded read resolves either
   to the forked writer's element or — if a kill took the writer out
   before it deposited — to the catchable BlockedIndefinitely fallback;
   under any resource-clean fault that spares the main thread there is
   no third possibility. *)
let t_chan_handoff =
  {
    name = "chan-handoff";
    source =
      "newChan 1 >>= \\ch -> forkIO (writeChan ch 7) >>= \\u -> \
       getException (readChan ch) >>= \\r -> case r of { OK v -> putInt v \
       >>= \\u2 -> return v ; Bad e -> putChar 'F' >>= \\u3 -> return 0 }";
    base_input = "";
    core = None;
    conc_only = true;
    deterministic = true;
    special =
      (fun fault obs ->
        let spares_main =
          List.for_all (fun (_, tid, _) -> tid <> 0) fault.kills
        in
        if
          fault.heap_limit = None && fault.stack_limit = None
          && fault.starved_fuel = None && spares_main
          && not (obs.status = S_done
                  && (obs.output = "7" || obs.output = "F"))
        then
          [
            Fmt.str "channel handoff neither delivered nor recovered: %s \
                     with output %S"
              (status_name obs.status) obs.output;
          ]
        else []);
  }

(* T13: killing a blocked writer must not lose the element already in
   the buffer. The main thread buffers 5, a forked writer blocks on the
   full buffer with 9; the first drain must always see 5, the second
   sees 9 — or the recovery marker if the blocked writer was killed
   before it could deposit. *)
let t_chan_kill_writer =
  {
    name = "chan-kill-writer";
    source =
      "newChan 1 >>= \\ch -> writeChan ch 5 >>= \\u -> forkIO (writeChan \
       ch 9) >>= \\u2 -> getException (readChan ch) >>= \\r -> (case r of \
       { OK v -> putInt v ; Bad e -> putChar 'F' }) >>= \\u3 -> \
       getException (readChan ch) >>= \\r2 -> (case r2 of { OK w -> \
       putInt w ; Bad e2 -> putChar 'G' }) >>= \\u4 -> return 1";
    base_input = "";
    core = None;
    conc_only = true;
    deterministic = true;
    special =
      (fun fault obs ->
        let spares_main =
          List.for_all (fun (_, tid, _) -> tid <> 0) fault.kills
        in
        (* The exact-output claim is about kills: it additionally needs
           an async-free schedule, because a Timeout landing inside the
           reader's own getException legitimately turns a drain into an
           'F' marker without losing anything. *)
        if
          fault.heap_limit = None && fault.stack_limit = None
          && fault.starved_fuel = None && spares_main && fault.async = []
        then
          if obs.status <> S_done then
            [
              Fmt.str "channel drain did not complete: %s"
                (status_name obs.status);
            ]
          else if not (obs.output = "59" || obs.output = "5G") then
            [ Fmt.str "buffered element lost: output %S" obs.output ]
          else if fault.kills = [] && obs.output <> "59" then
            [ Fmt.str "unkilled writer never deposited: %S" obs.output ]
          else []
        else []);
  }

(* T14: restart storm, intensity-window exhaustion. A supervised child
   that always fails forces the supervisor through its restart budget
   (maxR=2 in a window of 8 events); the intensity limit must then shed
   the load — kill the tree and surface SupervisorLimit, which the
   template catches and converts to the 'L' marker. The storm must
   never turn into divergence or deadlock: that is precisely the load
   the limiter exists to shed. Kills aimed at the child only change
   which exception each generation reports (still a failure, still a
   restart), so the limiter fires regardless. *)
let t_restart_storm_exhaust =
  {
    name = "restart-storm-exhaust";
    source =
      "catchIO (supervisorTree OneForOne 2 8 [putChar 'w' >>= \\u -> \
       throwIO DivideByZero]) (\\e -> case matchSupervisorLimit e of { \
       Just n -> putChar 'L' >>= \\u2 -> return n ; Nothing -> throwIO e \
       })";
    base_input = "";
    core = None;
    conc_only = true;
    deterministic = true;
    special =
      (fun fault obs ->
        let spares_main =
          List.for_all (fun (_, tid, _) -> tid <> 0) fault.kills
        in
        let resource_clean =
          fault.heap_limit = None && fault.stack_limit = None
          && fault.starved_fuel = None
        in
        if not (resource_clean && spares_main) then []
        else
          let shed =
            match obs.status with
            | S_done -> []
            | S_uncaught e when Exn.is_asynchronous e ->
                (* An async event or a pre-mask kill can take the
                   supervisor's handshake out from under it; the
                   catchable BlockedIndefinitely (or the event itself)
                   surfacing is fine — unbounded restarting is not. *)
                []
            | s ->
                [
                  Fmt.str "restart storm not shed: %s with output %S"
                    (status_name s) obs.output;
                ]
          in
          let budget =
            (* maxR=2: at most the initial spawn plus two restarts ever
               run the child, whatever the fault schedule does. *)
            if count 'w' obs.output > 3 then
              [
                Fmt.str
                  "intensity window exceeded: %d child generations in %S"
                  (count 'w' obs.output) obs.output;
              ]
            else []
          in
          let exact =
            if clean fault && fault.async = [] && fault.kills = [] then
              if obs.status = S_done && obs.output = "wwwL" then []
              else
                [
                  Fmt.str "fault-free storm expected Done %S, got %s %S"
                    "wwwL" (status_name obs.status) obs.output;
                ]
            else []
          in
          shed @ budget @ exact);
  }

(* T15: kill during restart. A one_for_all tree whose first child fails
   once (then succeeds) drives the supervisor through a full
   kill-and-respawn cycle; injected kills land on the children before,
   during and after that cycle — including between the supervisor's
   killAll and the respawn, the classic lost-report window the masked
   handshake in [spawnChild] exists to close. Whatever the schedule,
   the tree must come down in an orderly way: completion, or a
   SupervisorLimit census, or a catchable async event — never
   divergence, never a global deadlock. *)
let t_restart_storm_kill =
  {
    name = "restart-storm-kill";
    source =
      "newEmptyMVar >>= \\cell -> putMVar cell 0 >>= \\u0 -> catchIO \
       (supervisorTree OneForAll 3 12 [takeMVar cell >>= \\n -> putMVar \
       cell (n + 1) >>= \\u1 -> (if n < 1 then throwIO Overflow else \
       putChar 'a' >>= \\u2 -> return 1), putChar 'b' >>= \\u3 -> return \
       2]) (\\e -> case matchSupervisorLimit e of { Just n -> putChar 'L' \
       >>= \\u4 -> return n ; Nothing -> throwIO e }) >>= \\v -> putChar \
       'S' >>= \\u5 -> return v";
    base_input = "";
    core = None;
    conc_only = true;
    (* Output interleaving of the two children depends on the layer's
       scheduler clock. *)
    deterministic = false;
    special =
      (fun fault obs ->
        let spares_main =
          List.for_all (fun (_, tid, _) -> tid <> 0) fault.kills
        in
        let resource_clean =
          fault.heap_limit = None && fault.stack_limit = None
          && fault.starved_fuel = None
        in
        if not (resource_clean && spares_main) then []
        else
          match obs.status with
          | S_done ->
              (* Orderly shutdown always stamps the final marker. *)
              if count 'S' obs.output = 1 || count 'L' obs.output = 1 then
                []
              else
                [
                  Fmt.str "supervised run completed without its marker: %S"
                    obs.output;
                ]
          | S_uncaught e when Exn.is_asynchronous e -> []
          | s ->
              [
                Fmt.str "restart cycle did not shut down cleanly: %s \
                         with output %S"
                  (status_name s) obs.output;
              ]);
  }

(* T9: truncated input — every layer must report the same stuck-on-EOF
   behaviour. *)
let t_echo =
  {
    name = "echo";
    source = "getChar >>= \\c -> putChar c >>= \\u -> return 5";
    base_input = "q";
    core = None;
    conc_only = false;
    deterministic = true;
    special =
      (fun fault obs ->
        if not (clean fault) then []
        else if fault.truncate_input then
          if obs.status <> S_stuck then
            [
              Fmt.str "EOF not reported as stuck: %s"
                (status_name obs.status);
            ]
          else []
        else if obs.status = S_done && obs.output <> "q" then
          [ Fmt.str "echo wrote %S" obs.output ]
        else []);
  }

let templates =
  List.map t_bracket_supervised cores
  @ List.map t_bracket_uncaught cores
  @ [ t_timeout_bracket ]
  @ List.map t_shared_thunk
      [ ("pure", "sum (enumFromTo 1 200)"); ("headnil", "head []") ]
  @ List.map t_retry [ ("pure", List.assoc "pure" cores); ("mixed", List.assoc "mixed" cores) ]
  @ [ t_fork_bracket; t_mask_shield; t_supervised_kill; t_blocked_recover;
      t_chan_handoff; t_chan_kill_writer; t_restart_storm_exhaust;
      t_restart_storm_kill; t_echo ]

(* ------------------------------------------------------------------ *)
(* Running one template under one layer                                *)
(* ------------------------------------------------------------------ *)

let max_transitions = 20_000

let input_of tpl fault = if fault.truncate_input then "" else tpl.base_input

let machine_config fault =
  {
    Stg.default_config with
    heap_limit = fault.heap_limit;
    stack_limit = fault.stack_limit;
    fuel =
      (match fault.starved_fuel with
      | Some f -> f
      | None -> Stg.default_config.fuel);
  }

let observe ?trace layer tpl fault : observation =
  let e = parse tpl.source in
  let input = input_of tpl fault in
  match layer with
  | L_iosem ->
      let r =
        Iosem.run
          ~oracle:(Oracle.create ~seed:fault.seed)
          ?trace ~input ~async:fault.async ~max_steps:max_transitions e
      in
      let status =
        match r.Iosem.outcome with
        | Iosem.Done _ -> S_done
        | Iosem.Uncaught x -> S_uncaught x
        | Iosem.Io_diverged -> S_diverged
        | Iosem.Stuck _ -> S_stuck
      in
      {
        status;
        output = Iosem.output_string_of r;
        entered = r.Iosem.counters.Iosem.brackets_entered;
        released = r.Iosem.counters.Iosem.brackets_released;
      }
  | L_conc ->
      let r =
        Conc.run
          ~oracle:(Oracle.create ~seed:fault.seed)
          ?trace ~input ~async:fault.async ~kills:fault.kills
          ~max_steps:max_transitions e
      in
      let status =
        match r.Conc.outcome with
        | Conc.Done _ -> S_done
        | Conc.Uncaught x -> S_uncaught x
        | Conc.Deadlock -> S_deadlock
        | Conc.Diverged -> S_diverged
        | Conc.Stuck _ -> S_stuck
      in
      {
        status;
        output = Conc.output_string_of r;
        entered = r.Conc.counters.Iosem.brackets_entered;
        released = r.Conc.counters.Iosem.brackets_released;
      }
  | L_machine_io ->
      let r =
        Machine_io.run ~config:(machine_config fault) ?trace ~input
          ~async:fault.async ~max_transitions ?gc_every:fault.gc_every e
      in
      let status =
        match r.Machine_io.outcome with
        | Machine_io.Done _ -> S_done
        | Machine_io.Uncaught x -> S_uncaught x
        | Machine_io.Io_diverged -> S_diverged
        | Machine_io.Stuck _ -> S_stuck
      in
      {
        status;
        output = r.Machine_io.output;
        entered = r.Machine_io.stats.Stats.brackets_entered;
        released = r.Machine_io.stats.Stats.brackets_released;
      }
  | L_machine_conc ->
      let r =
        Machine_conc.run ~config:(machine_config fault) ?trace ~input
          ~async:fault.async ~kills:fault.kills ~max_transitions e
      in
      let status =
        match r.Machine_conc.outcome with
        | Machine_conc.Done _ -> S_done
        | Machine_conc.Uncaught x -> S_uncaught x
        | Machine_conc.Deadlock -> S_deadlock
        | Machine_conc.Diverged -> S_diverged
        | Machine_conc.Stuck _ -> S_stuck
      in
      {
        status;
        output = r.Machine_conc.output;
        entered = r.Machine_conc.stats.Stats.brackets_entered;
        released = r.Machine_conc.stats.Stats.brackets_released;
      }

let layers_for tpl =
  if tpl.conc_only then [ L_conc; L_machine_conc ]
  else [ L_iosem; L_conc; L_machine_io; L_machine_conc ]

(* ------------------------------------------------------------------ *)
(* Invariant checks                                                    *)
(* ------------------------------------------------------------------ *)

type report = {
  runs : int;  (** (template, layer, fault) executions. *)
  checks : int;  (** Individual invariant checks evaluated. *)
  violations : string list;
}

let pp_report ppf r =
  Fmt.pf ppf "%d runs, %d checks, %d violations" r.runs r.checks
    (List.length r.violations)

let finished obs =
  match obs.status with S_done | S_uncaught _ -> true | _ -> false

(* The differential invariant: an uncaught exception must belong to the
   denotational exception set of the pure core — unless it is an
   asynchronous or resource event (allowed anywhere by Section 5.1), or a
   starved fuel budget turned an ordinary computation into
   NonTermination. *)
let check_membership tpl fault obs =
  match obs.status with
  | S_uncaught e ->
      if Exn.is_asynchronous e then []
      else if fault.starved_fuel <> None && e = Exn.Non_termination then []
      else begin
        match tpl.core with
        | None ->
            [
              Fmt.str "uncaught %a but the template has no exceptional core"
                Exn.pp e;
            ]
        | Some core ->
            let s = core_exn_set core in
            if Exn_set.is_all s || Exn_set.mem e s then []
            else
              [
                Fmt.str "uncaught %a not in the denotational set %a" Exn.pp
                  e Exn_set.pp s;
              ]
      end
  | _ -> []

(* Release-exactly-once, from the counters: holds whenever the program
   ran to completion, whatever the fault. *)
let check_counters obs =
  if obs.released > obs.entered then
    [
      Fmt.str "released %d brackets but entered only %d" obs.released
        obs.entered;
    ]
  else if finished obs && obs.entered <> obs.released then
    [
      Fmt.str "entered %d brackets but released %d" obs.entered
        obs.released;
    ]
  else []

(* Release-exactly-once, from the output markers: every 'A' the acquire
   wrote is paired with the release's 'R'. Resource exhaustion may strike
   *inside* the release action itself (after the counter bump but before
   the marker), so this stricter check only applies to clean faults. *)
let check_markers tpl fault obs =
  let applicable =
    clean fault
    && (finished obs || (tpl.conc_only && obs.status = S_deadlock))
  in
  if applicable && count 'A' obs.output <> count 'R' obs.output then
    [
      Fmt.str "unbalanced bracket markers in output %S (%d acquires, %d \
               releases)"
        obs.output (count 'A' obs.output) (count 'R' obs.output);
    ]
  else []

(* Replay a failing (template, layer, fault) cell with the flight
   recorder on and return its dump. Tracing is off during the sweep
   itself (zero cost on passing schedules); only a violation pays for
   the second, instrumented run. *)
let trace_of_failure layer tpl fault =
  let tr = Obs.create ~capacity:512 ~on:true () in
  (try ignore (observe ~trace:tr layer tpl fault)
   with Obs.Machine_invariant _ -> ());
  Obs.dump ~last:24
    ~note:
      (Fmt.str "replay of failing schedule %s/%s" tpl.name
         (layer_name layer))
    tr

let check_one tpl fault layer =
  let obs = observe layer tpl fault in
  let tag v =
    Fmt.str "[%s/%s %a] %s" tpl.name (layer_name layer) pp_fault fault v
  in
  let vs =
    check_membership tpl fault obs
    @ check_counters obs
    @ check_markers tpl fault obs
    @ tpl.special fault obs
  in
  let vs =
    match vs with
    | [] -> []
    | _ :: _ -> vs @ [ trace_of_failure layer tpl fault ]
  in
  (4, List.map tag vs)

(* Zero-fault baseline: with no fault injected, the four layers must
   agree — same status class and (for clock-independent templates) the
   same output. *)
let baseline tpl =
  let obss =
    List.map (fun l -> (l, observe l tpl (no_fault 0))) (layers_for tpl)
  in
  match obss with
  | [] -> (0, [])
  | (l0, o0) :: rest ->
      let vs =
        List.concat_map
          (fun (l, o) ->
            let status_ok =
              match (o0.status, o.status) with
              | S_done, S_done
              | S_uncaught _, S_uncaught _
              | S_diverged, S_diverged
              | S_stuck, S_stuck
              | S_deadlock, S_deadlock ->
                  true
              | _ -> false
            in
            let s =
              if not status_ok then
                [
                  Fmt.str "baseline status mismatch: %s=%s vs %s=%s"
                    (layer_name l0) (status_name o0.status) (layer_name l)
                    (status_name o.status);
                ]
              else []
            in
            let out =
              if tpl.deterministic && o.output <> o0.output then
                [
                  Fmt.str "baseline output mismatch: %s=%S vs %s=%S"
                    (layer_name l0) o0.output (layer_name l) o.output;
                ]
              else []
            in
            s @ out)
          rest
      in
      ( 2 * List.length rest,
        List.map (fun v -> Fmt.str "[%s] %s" tpl.name v) vs )

(* ------------------------------------------------------------------ *)
(* Fault generation and the suite driver                               *)
(* ------------------------------------------------------------------ *)

let gen_fault ~seed tpl =
  let o = Oracle.create ~seed:((seed * 7919) + 17) in
  let exns = [| Exn.Interrupt; Exn.Timeout; Exn.Heap_exhaustion |] in
  let n_async = Oracle.int_below o 4 in
  let async =
    List.init n_async (fun _ ->
        (Oracle.int_below o 2_000, exns.(Oracle.int_below o 3)))
  in
  (* Thread-targeted kills: concurrent templates get 0–2 throwTo sends
     aimed at the first few tids (sends to never-spawned tids are
     dropped by the schedulers, which is itself worth exercising). *)
  let kill_exns = [| Exn.Thread_killed; Exn.Interrupt |] in
  let n_kills = if tpl.conc_only then Oracle.int_below o 3 else 0 in
  let kills =
    List.init n_kills (fun _ ->
        ( Oracle.int_below o 2_000,
          Oracle.int_below o 3,
          kill_exns.(Oracle.int_below o 2) ))
  in
  let heap_limit =
    if Oracle.int_below o 4 = 0 then
      Some (1_500 + (40 * Oracle.int_below o 100))
    else None
  in
  let stack_limit =
    if Oracle.int_below o 5 = 0 then Some (80 + Oracle.int_below o 400)
    else None
  in
  let starved_fuel =
    if Oracle.int_below o 6 = 0 then Some 3_000 else None
  in
  let truncate_input =
    tpl.base_input <> "" && Oracle.coin o
  in
  let gc_every =
    if Oracle.coin o then Some (16 + Oracle.int_below o 64) else None
  in
  { seed; async; kills; heap_limit; stack_limit; starved_fuel;
    truncate_input; gc_every }

let run_seed seed =
  let tpl = List.nth templates (seed mod List.length templates) in
  let fault = gen_fault ~seed tpl in
  List.fold_left
    (fun (runs, checks, vs) layer ->
      let c, v = check_one tpl fault layer in
      (runs + 1, checks + c, vs @ v))
    (0, 0, []) (layers_for tpl)

(* The supervisor scenario: under a heap ceiling the machine raises a
   catchable HeapOverflow; the supervisor catches it, an emergency
   collection frees the abandoned allocations, and a smaller retry
   succeeds ('H' then 'K'). Denotationally there is no heap, so the same
   program just succeeds ('O'). *)
let supervisor_source =
  "getException (seq (sum (enumFromTo 1 5000)) 1) >>= \\v -> case v of { \
   OK x -> putChar 'O' >>= \\u -> return 0 ; Bad e -> case e of { \
   HeapOverflow -> putChar 'H' >>= \\u -> getException (seq (sum \
   (enumFromTo 1 10)) 2) >>= \\w -> (case w of { OK y -> putChar 'K' ; \
   Bad e2 -> putChar 'Z' }) >>= \\u2 -> return 1 ; z -> putChar 'Y' >>= \
   \\u -> return 0 } }"

let check_supervisor () =
  let e = parse supervisor_source in
  let r =
    Machine_io.run
      ~config:{ Stg.default_config with heap_limit = Some 2_500 }
      ~max_transitions e
  in
  let machine_vs =
    match r.Machine_io.outcome with
    | Machine_io.Done _ when r.Machine_io.output = "HK" -> []
    | _ ->
        [
          Fmt.str
            "[supervisor/machine_io] expected Done with output HK, got %a \
             with %S"
            Machine_io.pp_outcome r.Machine_io.outcome r.Machine_io.output;
        ]
  in
  let d = Iosem.run ~oracle:(Oracle.first ()) e in
  let denot_vs =
    match d.Iosem.outcome with
    | Iosem.Done _ when Iosem.output_string_of d = "O" -> []
    | _ ->
        [
          Fmt.str
            "[supervisor/iosem] expected Done with output O, got %a with %S"
            Iosem.pp_outcome d.Iosem.outcome (Iosem.output_string_of d);
        ]
  in
  (2, machine_vs @ denot_vs)

let run_suite ?(count = 250) () =
  let runs = ref 0 and checks = ref 0 and vs = ref [] in
  List.iter
    (fun tpl ->
      let c, v = baseline tpl in
      checks := !checks + c;
      runs := !runs + List.length (layers_for tpl);
      vs := !vs @ v)
    templates;
  for seed = 0 to count - 1 do
    let r, c, v = run_seed seed in
    runs := !runs + r;
    checks := !checks + c;
    vs := !vs @ v
  done;
  let c, v = check_supervisor () in
  runs := !runs + 2;
  checks := !checks + c;
  vs := !vs @ v;
  { runs = !runs; checks = !checks; violations = !vs }
