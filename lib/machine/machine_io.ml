module Exn = Lang.Exn
module R = Lang.Resolve

type outcome =
  | Done of Semantics.Sem_value.deep
  | Uncaught of Exn.t
  | Io_diverged
  | Stuck of string

type result = {
  output : string;
  reads : int;
  outcome : outcome;
  stats : Stats.t;
}

let pp_outcome ppf = function
  | Done d -> Fmt.pf ppf "Done %a" Semantics.Sem_value.pp_deep d
  | Uncaught e -> Fmt.pf ppf "Uncaught %a" Exn.pp e
  | Io_diverged -> Fmt.string ppf "Io_diverged"
  | Stuck msg -> Fmt.pf ppf "Stuck %S" msg

(* The driver's continuation stack, mirroring {!Semantics.Iosem}'s frames
   but over machine addresses. *)
type frame =
  | F_k of Stg.addr
  | F_bracket of Stg.addr * Stg.addr  (** (release fn, use fn) *)
  | F_release of Stg.addr  (** applied release action *)
  | F_onexn of Stg.addr
  | F_mask_pop
  | F_unmask_pop
  | F_timeout of int  (** deadline in IO transitions *)
  | F_retry of Stg.addr * int * int
  | F_rethrow of Exn.t
  | F_restore of Stg.addr
  | F_catch
      (** [getException] on an IO action (GHC's [try]): a normal result
          pops as [OK v], an unwinding exception stops here as [Bad e]. *)

let frame_addrs (fs : frame list) : Stg.addr list =
  List.concat_map
    (function
      | F_k a | F_release a | F_onexn a | F_restore a -> [ a ]
      | F_bracket (a, b) -> [ a; b ]
      | F_retry (a, _, _) -> [ a ]
      | F_mask_pop | F_unmask_pop | F_timeout _ | F_rethrow _ | F_catch ->
          [])
    fs

(* Rebuild the frames from addresses relocated by a collection, in the
   same order [frame_addrs] emitted them. *)
let relocate_frames (fs : frame list) (addrs : Stg.addr list) : frame list =
  let rem = ref addrs in
  let next () =
    match !rem with
    | a :: rest ->
        rem := rest;
        a
    | [] -> assert false
  in
  List.map
    (function
      | F_k _ -> F_k (next ())
      | F_release _ -> F_release (next ())
      | F_onexn _ -> F_onexn (next ())
      | F_restore _ -> F_restore (next ())
      | F_bracket _ ->
          let a = next () in
          let b = next () in
          F_bracket (a, b)
      | F_retry (_, n, b) -> F_retry (next (), n, b)
      | (F_mask_pop | F_unmask_pop | F_timeout _ | F_rethrow _ | F_catch)
        as f ->
          f)
    fs

type chan = { cap : int; buf : Stg.addr Queue.t }

let run ?config ?trace ?(input = "") ?(async = [])
    ?(max_transitions = 100_000) ?gc_every e =
  let m = Stg.create ?config ?trace () in
  let tr = Stg.trace m in
  List.iter (fun (k, x) -> Stg.inject_async m ~at_step:k x) async;
  let buf = Buffer.create 64 in
  let reads = ref 0 in
  let stats = Stg.stats m in
  let main_addr = Stg.alloc m e in
  (* Bounded channels in the single-threaded driver (see
     {!Semantics.Iosem}): a blocking operation is hopeless and receives
     the catchable [Blocked_indefinitely] at once, mask or no mask. *)
  let chans : (int, chan) Hashtbl.t = Hashtbl.create 8 in
  let next_chan = ref 0 in
  let as_chan_id v =
    match v with
    | Stg.MCon (c, [| idt |]) when c = R.t_chan_ref -> (
        match Stg.force m idt with
        | Ok (Stg.MInt id) -> Result.Ok id
        | _ -> Result.Error "corrupt channel reference")
    | _ -> Result.Error "not a channel"
  in
  (* Heap housekeeping: the live addresses are the current action, the
     frames' addresses and every element buffered in a channel; the
     buffered elements are relocated in place. *)
  let collect a stack =
    let chan_list = Hashtbl.fold (fun _ ch acc -> ch :: acc) chans [] in
    let chan_addrs =
      List.concat_map (fun ch -> List.of_seq (Queue.to_seq ch.buf)) chan_list
    in
    let frame_roots = frame_addrs stack in
    match Stg.gc m ~roots:((a :: frame_roots) @ chan_addrs) with
    | a' :: rest ->
        let rem = ref rest in
        let next () =
          match !rem with
          | x :: r ->
              rem := r;
              x
          | [] -> assert false
        in
        let frame_roots' = List.map (fun _ -> next ()) frame_roots in
        List.iter
          (fun ch ->
            let len = Queue.length ch.buf in
            Queue.clear ch.buf;
            for _ = 1 to len do
              Queue.push (next ()) ch.buf
            done)
          chan_list;
        (a', relocate_frames stack frame_roots')
    | [] -> assert false
  in
  let maybe_gc a stack n =
    match gc_every with
    | Some k when k > 0 && n > 0 && n mod k = 0 -> collect a stack
    | _ -> (a, stack)
  in
  (* Recovery point for catchable resource exhaustion: a HeapOverflow just
     surfaced at a getException, so collect from the driver's roots. This
     both frees the abandoned allocations and re-arms the heap limit. *)
  let emergency_gc a stack = collect a stack in
  let ret_addr v_addr =
    Stg.alloc_value m (Stg.MCon (R.t_return, [| v_addr |]))
  in
  let expired stack n =
    Stg.mask_depth m = 0
    && List.exists (function F_timeout d -> d <= n | _ -> false) stack
  in
  let restore_mask () = Stg.set_mask_depth m (Stg.mask_depth m + 1) in
  let rec perform (a : Stg.addr) (stack : frame list) (n : int) : outcome =
    if n >= max_transitions then Io_diverged
    else if expired stack n then begin
      stats.Stats.timeouts_fired <- stats.Stats.timeouts_fired + 1;
      if Obs.on tr then Obs.record tr (Obs.Ev_io "timeout fired");
      unwind Exn.Timeout stack n
    end
    else
      let a, stack = maybe_gc a stack n in
      match Stg.force m a with
      | Error (Stg.Fail_exn exn) -> unwind exn stack n
      | Error Stg.Fail_diverged -> Io_diverged
      | Error (Stg.Fail_async _) ->
          (* force (no catch) never delivers async events. *)
          Stuck "async event outside getException"
      | Ok (Stg.MCon (c, [| t |])) when c = R.t_return ->
          pop t stack n
      | Ok (Stg.MCon (c, [| m1; k |])) when c = R.t_bind ->
          perform m1 (F_k k :: stack) (n + 1)
      | Ok (Stg.MCon (c, [||])) when c = R.t_get_char ->
          if !reads >= String.length input then Stuck "getChar: end of input"
          else begin
            let ch = input.[!reads] in
            incr reads;
            let ca = Stg.alloc_value m (Stg.MChar ch) in
            perform (ret_addr ca) stack (n + 1)
          end
      | Ok (Stg.MCon (c, [| t |])) when c = R.t_put_char -> (
          match Stg.force m t with
          | Ok (Stg.MChar ch) ->
              Buffer.add_char buf ch;
              let ua = Stg.alloc_value m (Stg.MCon (R.t_unit, [||])) in
              perform (ret_addr ua) stack (n + 1)
          | Ok _ -> Stuck "putChar: not a character"
          | Error (Stg.Fail_exn exn) -> unwind exn stack n
          | Error Stg.Fail_diverged -> Io_diverged
          | Error (Stg.Fail_async _) ->
              Stuck "async event outside getException")
      | Ok (Stg.MCon (c, [| t |])) when c = R.t_get_exception -> (
          match Stg.force_catch m t with
          | Ok (Stg.MCon (ca, _)) when R.is_io_action_tag ca ->
              (* getException on an IO action: perform it under a catch
                 frame (GHC's [try]); [t] is updated to its WHNF. *)
              perform t (F_catch :: stack) (n + 1)
          | Ok v ->
              let va = Stg.alloc_value m v in
              let ok = Stg.alloc_value m (Stg.MCon (R.t_ok, [| va |])) in
              perform (ret_addr ok) stack (n + 1)
          | Error (Stg.Fail_exn exn) | Error (Stg.Fail_async exn) ->
              (* The exception was caught here: reify it as Bad. A caught
                 HeapOverflow additionally triggers an emergency
                 collection so the supervisor actually has room to
                 recover. *)
              let stack =
                if exn = Exn.Heap_overflow then snd (emergency_gc t stack)
                else stack
              in
              let ev = Stg.alloc_value m (Stg.exn_to_mvalue m exn) in
              let bad = Stg.alloc_value m (Stg.MCon (R.t_bad, [| ev |])) in
              perform (ret_addr bad) stack (n + 1)
          | Error Stg.Fail_diverged -> Io_diverged)
      | Ok (Stg.MCon (c, [| t |])) when c = R.t_evaluate -> (
          (* evaluate e: the precise forcing point — the argument is
             forced here, as the action is performed, so its exception
             (if any) unwinds at exactly this point in the IO sequence. *)
          match Stg.force m t with
          | Ok v ->
              let va = Stg.alloc_value m v in
              perform (ret_addr va) stack (n + 1)
          | Error (Stg.Fail_exn exn) -> unwind exn stack n
          | Error Stg.Fail_diverged -> Io_diverged
          | Error (Stg.Fail_async _) ->
              Stuck "async event outside getException")
      | Ok (Stg.MCon (c, [| acq; rel; use |])) when c = R.t_bracket ->
          Stg.push_mask m;
          perform acq (F_bracket (rel, use) :: stack) (n + 1)
      | Ok (Stg.MCon (c, [| m1; h |])) when c = R.t_on_exception ->
          perform m1 (F_onexn h :: stack) (n + 1)
      | Ok (Stg.MCon (c, [| m1 |])) when c = R.t_mask ->
          Stg.push_mask m;
          perform m1 (F_mask_pop :: stack) (n + 1)
      | Ok (Stg.MCon (c, [| m1 |])) when c = R.t_unmask ->
          Stg.pop_mask m;
          perform m1 (F_unmask_pop :: stack) (n + 1)
      | Ok (Stg.MCon (c, [| nt; m1 |])) when c = R.t_timeout -> (
          match Stg.force m nt with
          | Ok (Stg.MInt k) ->
              perform m1 (F_timeout (n + max 0 k) :: stack) (n + 1)
          | Ok _ -> Stuck "timeout: budget is not an integer"
          | Error (Stg.Fail_exn exn) -> unwind exn stack n
          | Error Stg.Fail_diverged -> Io_diverged
          | Error (Stg.Fail_async _) ->
              Stuck "async event outside getException")
      | Ok (Stg.MCon (c, [| nt; bt; m1 |])) when c = R.t_retry -> (
          match (Stg.force m nt, Stg.force m bt) with
          | Ok (Stg.MInt attempts), Ok (Stg.MInt backoff) ->
              perform m1
                (F_retry (m1, max 0 attempts, max 1 backoff) :: stack)
                (n + 1)
          | Error (Stg.Fail_exn exn), _ | _, Error (Stg.Fail_exn exn) ->
              unwind exn stack n
          | Error Stg.Fail_diverged, _ | _, Error Stg.Fail_diverged ->
              Io_diverged
          | _ -> Stuck "retry: attempts/backoff are not integers")
      | Ok (Stg.MCon (c, [||])) when c = R.t_my_thread_id ->
          (* The single-threaded driver is its own main thread 0. *)
          let ida = Stg.alloc_value m (Stg.MInt 0) in
          let tida =
            Stg.alloc_value m (Stg.MCon (R.t_thread_id, [| ida |]))
          in
          perform (ret_addr tida) stack (n + 1)
      | Ok (Stg.MCon (c, [| tt; et |])) when c = R.t_throw_to -> (
          match Stg.force m tt with
          | Ok (Stg.MCon (ct, [| nt |])) when ct = R.t_thread_id -> (
              match Stg.force m nt with
              | Ok (Stg.MInt tid) -> (
                  match Stg.force m et with
                  | Ok ev -> (
                      match Stg.mvalue_to_exn m ev with
                      | Ok x ->
                          if tid = 0 then begin
                            (* throwTo to oneself is synchronous (GHC):
                               deliver regardless of masking. *)
                            stats.Stats.throwtos_delivered <-
                              stats.Stats.throwtos_delivered + 1;
                            if Obs.on tr then begin
                              Obs.record tr (Obs.Ev_throwto (0, 0, x));
                              Obs.record tr (Obs.Ev_kill_delivered (0, x))
                            end;
                            unwind x stack n
                          end
                          else begin
                            (* Dead or unknown target: a no-op send. *)
                            let ua =
                              Stg.alloc_value m (Stg.MCon (R.t_unit, [||]))
                            in
                            perform (ret_addr ua) stack (n + 1)
                          end
                      | Error (Stg.Exn_err x) -> unwind x stack n
                      | Error Stg.Not_exn ->
                          unwind
                            (Exn.Type_error "throwTo: not an exception")
                            stack n)
                  | Error (Stg.Fail_exn exn) -> unwind exn stack n
                  | Error Stg.Fail_diverged -> Io_diverged
                  | Error (Stg.Fail_async _) ->
                      Stuck "async event outside getException")
              | Ok _ ->
                  unwind (Exn.Type_error "throwTo: not a ThreadId") stack n
              | Error (Stg.Fail_exn exn) -> unwind exn stack n
              | Error Stg.Fail_diverged -> Io_diverged
              | Error (Stg.Fail_async _) ->
                  Stuck "async event outside getException")
          | Ok _ ->
              unwind (Exn.Type_error "throwTo: not a ThreadId") stack n
          | Error (Stg.Fail_exn exn) -> unwind exn stack n
          | Error Stg.Fail_diverged -> Io_diverged
          | Error (Stg.Fail_async _) ->
              Stuck "async event outside getException")
      | Ok (Stg.MCon (c, [| nt |])) when c = R.t_new_chan -> (
          match Stg.force m nt with
          | Ok (Stg.MInt k) ->
              let id = !next_chan in
              incr next_chan;
              Hashtbl.replace chans id
                { cap = max 1 k; buf = Queue.create () };
              let ida = Stg.alloc_value m (Stg.MInt id) in
              let ra =
                Stg.alloc_value m (Stg.MCon (R.t_chan_ref, [| ida |]))
              in
              perform (ret_addr ra) stack (n + 1)
          | Ok _ -> Stuck "newChan: capacity is not an integer"
          | Error (Stg.Fail_exn exn) -> unwind exn stack n
          | Error Stg.Fail_diverged -> Io_diverged
          | Error (Stg.Fail_async _) ->
              Stuck "async event outside getException")
      | Ok (Stg.MCon (c, [| r |])) when c = R.t_read_chan -> (
          match Stg.force m r with
          | Ok rv -> (
              match as_chan_id rv with
              | Result.Error msg ->
                  unwind (Exn.Type_error msg) stack n
              | Result.Ok id ->
                  let ch = Hashtbl.find chans id in
                  if Queue.is_empty ch.buf then blocked_forever stack n
                  else perform (ret_addr (Queue.pop ch.buf)) stack (n + 1))
          | Error (Stg.Fail_exn exn) -> unwind exn stack n
          | Error Stg.Fail_diverged -> Io_diverged
          | Error (Stg.Fail_async _) ->
              Stuck "async event outside getException")
      | Ok (Stg.MCon (c, [| r; v |])) when c = R.t_write_chan -> (
          match Stg.force m r with
          | Ok rv -> (
              match as_chan_id rv with
              | Result.Error msg ->
                  unwind (Exn.Type_error msg) stack n
              | Result.Ok id ->
                  let ch = Hashtbl.find chans id in
                  if Queue.length ch.buf >= ch.cap then
                    blocked_forever stack n
                  else begin
                    Queue.push v ch.buf;
                    let ua = Stg.alloc_value m (Stg.MCon (R.t_unit, [||])) in
                    perform (ret_addr ua) stack (n + 1)
                  end)
          | Error (Stg.Fail_exn exn) -> unwind exn stack n
          | Error Stg.Fail_diverged -> Io_diverged
          | Error (Stg.Fail_async _) ->
              Stuck "async event outside getException")
      | Ok _ -> Stuck "not an IO value"
  (* A channel operation that would block can never be woken here. *)
  and blocked_forever (stack : frame list) (n : int) : outcome =
    stats.Stats.blocked_recoveries <- stats.Stats.blocked_recoveries + 1;
    if Obs.on tr then Obs.record tr (Obs.Ev_blocked_recover 0);
    unwind Exn.Blocked_indefinitely stack n
  and pop (v : Stg.addr) (stack : frame list) (n : int) : outcome =
    match stack with
    | [] -> Done (Stg.deep m v)
    | F_k k :: rest -> (
        match Stg.force m k with
        | Ok (Stg.MClo _) -> perform (Stg.alloc_app m k v) rest (n + 1)
        | Ok _ -> Stuck ">>=: continuation is not a function"
        | Error (Stg.Fail_exn exn) -> unwind exn rest n
        | Error Stg.Fail_diverged -> Io_diverged
        | Error (Stg.Fail_async _) ->
            Stuck "async event outside getException")
    | F_bracket (rel, use) :: rest ->
        stats.Stats.brackets_entered <- stats.Stats.brackets_entered + 1;
        if Obs.on tr then Obs.record tr Obs.Ev_acquire;
        Stg.pop_mask m;
        perform (Stg.alloc_app m use v)
          (F_release (Stg.alloc_app m rel v) :: rest)
          (n + 1)
    | F_release r :: rest ->
        stats.Stats.brackets_released <- stats.Stats.brackets_released + 1;
        if Obs.on tr then Obs.record tr Obs.Ev_release;
        Stg.push_mask m;
        perform r (F_mask_pop :: F_restore v :: rest) (n + 1)
    | F_onexn _ :: rest -> pop v rest n
    | F_mask_pop :: rest ->
        Stg.pop_mask m;
        pop v rest n
    | F_unmask_pop :: rest ->
        restore_mask ();
        pop v rest n
    | F_timeout _ :: rest ->
        pop (Stg.alloc_value m (Stg.MCon (R.t_just, [| v |]))) rest n
    | F_retry _ :: rest -> pop v rest n
    | F_rethrow e :: rest -> unwind e rest n
    | F_restore saved :: rest -> pop saved rest n
    | F_catch :: rest ->
        if Obs.on tr then Obs.record tr (Obs.Ev_catch None);
        pop (Stg.alloc_value m (Stg.MCon (R.t_ok, [| v |]))) rest n
  and unwind (exn : Exn.t) (stack : frame list) (n : int) : outcome =
    match stack with
    | [] -> Uncaught exn
    | F_k _ :: rest -> unwind exn rest n
    | F_bracket _ :: rest ->
        (* The acquire failed: nothing to release. *)
        Stg.pop_mask m;
        unwind exn rest n
    | F_release r :: rest ->
        stats.Stats.brackets_released <- stats.Stats.brackets_released + 1;
        if Obs.on tr then Obs.record tr Obs.Ev_release;
        Stg.push_mask m;
        perform r (F_mask_pop :: F_rethrow exn :: rest) (n + 1)
    | F_onexn h :: rest ->
        Stg.push_mask m;
        perform h (F_mask_pop :: F_rethrow exn :: rest) (n + 1)
    | F_mask_pop :: rest ->
        Stg.pop_mask m;
        unwind exn rest n
    | F_unmask_pop :: rest ->
        restore_mask ();
        unwind exn rest n
    | F_timeout _ :: rest when exn = Exn.Timeout ->
        pop (Stg.alloc_value m (Stg.MCon (R.t_nothing, [||]))) rest n
    | F_timeout _ :: rest -> unwind exn rest n
    | F_retry (action, attempts, backoff) :: rest ->
        if attempts > 0 then
          (* Deterministic tick-counted backoff: burn [backoff] IO
             transitions before the next attempt. *)
          perform action
            (F_retry (action, attempts - 1, 2 * backoff) :: rest)
            (n + backoff)
        else unwind exn rest n
    | F_rethrow _ :: rest ->
        (* A cleanup raised while unwinding: the newer exception wins. *)
        unwind exn rest n
    | F_restore _ :: rest -> unwind exn rest n
    | F_catch :: rest ->
        if Obs.on tr then Obs.record tr (Obs.Ev_catch (Some exn));
        let stack =
          if exn = Exn.Heap_overflow then
            (* As at a direct getException: free the abandoned
               allocations so the handler has room to recover. *)
            let r = Stg.alloc_value m (Stg.MCon (R.t_unit, [||])) in
            snd (emergency_gc r rest)
          else rest
        in
        let ev = Stg.alloc_value m (Stg.exn_to_mvalue m exn) in
        pop (Stg.alloc_value m (Stg.MCon (R.t_bad, [| ev |]))) stack n
  in
  let outcome = perform main_addr [] 0 in
  {
    output = Buffer.contents buf;
    reads = !reads;
    outcome;
    stats = Stg.stats m;
  }
