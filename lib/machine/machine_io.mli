(** The IO driver for the abstract machine: performs a machine value of
    type [IO t], mirroring the operational rules of Section 4.4 but on the
    real implementation.

    Where the semantic layer ({!Semantics.Iosem}) picks a member of the
    exception *set* through an oracle, the machine simply reports the
    exception its stack-trimming evaluation encounters first — "the set of
    exceptions associated with an exceptional value is represented by a
    single member, namely the exception that happens to be encountered
    first" (Section 3.5). Differential tests check that this member is in
    the semantic set. *)

type outcome =
  | Done of Semantics.Sem_value.deep
  | Uncaught of Lang.Exn.t
  | Io_diverged
  | Stuck of string

type result = {
  output : string;
  reads : int;  (** Characters consumed from the input. *)
  outcome : outcome;
  stats : Stats.t;
}

val pp_outcome : outcome Fmt.t

val run :
  ?config:Stg.config ->
  ?trace:Obs.t ->
  ?input:string ->
  ?async:(int * Lang.Exn.t) list ->
  ?max_transitions:int ->
  ?gc_every:int ->
  Lang.Syntax.expr ->
  result
(** Perform a closed expression of type [IO t] on a fresh machine.
    [async] events are injected into the machine's schedule (delivered at
    the first [getException] whose evaluation is running at or after the
    given machine step). [gc_every] runs a heap collection every that many
    IO transitions (roots: the current action and pending
    continuations). [trace] is shared with the underlying machine: the
    driver adds bracket acquire/release and timeout events to the
    machine's raise/poison/async stream. *)
