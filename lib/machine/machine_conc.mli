(** Concurrency on the abstract machine: the implementation counterpart of
    {!Semantics.Conc} (the Section 4.4 closing remark realised twice, so
    the two layers can be tested against each other).

    A round-robin scheduler over machine threads sharing one heap — so
    thunks forced by one thread are updated for all (call-by-need sharing
    across threads), and a thread abandoned mid-evaluation by an uncaught
    exception leaves poisoned thunks that other threads observe
    consistently. [forkIO], [MVar]s, per-thread [getException].

    Thread-to-thread asynchronous exceptions ([myThreadId], [throwTo],
    [killThread]) follow {!Semantics.Conc} exactly: non-blocking send,
    queued on the target, delivered at the target's next scheduling point
    while its mask depth is zero (a self-[throwTo] is synchronous and
    ignores masking). Delivery at a [getException] is caught there as
    [Bad e]; anywhere else it unwinds the target's frames, running
    releases and handlers. Irrecoverably blocked unmasked threads receive
    the catchable [BlockedIndefinitely] exception instead of a global
    [Deadlock].

    Bounded channels ([newChan n], [readChan], [writeChan]) follow
    {!Semantics.Conc}: channel blocking is an interruptible point that
    receives asynchronous exceptions and [BlockedIndefinitely] even
    under a positive mask depth, and a blocked writer's element enters
    the buffer only when the deposit succeeds.

    The scheduler runs on the same indexed runtime as
    {!Semantics.Conc} (bitmap run queue, tid hash table, intrusive
    waiter FIFOs, incremental blocked-on edges) with the seed's exact
    round-based schedule; [check_invariants] (default: set when
    [IMPEXN_SCHED_DEBUG] is present) validates the indices every round
    and raises {!Obs.Machine_invariant} with a flight-recorder dump on
    violation. *)

type outcome =
  | Done of Semantics.Sem_value.deep  (** Main thread's result. *)
  | Uncaught of Lang.Exn.t
  | Deadlock
      (** No thread can ever run again and every blocked thread is
          masked, so not even [BlockedIndefinitely] can be delivered. *)
  | Diverged
  | Stuck of string

type result = {
  output : string;  (** All threads' writes, in global order. *)
  outcome : outcome;
  threads_spawned : int;
  transitions : int;
  stats : Stats.t;
}

val pp_outcome : outcome Fmt.t

val run :
  ?config:Stg.config ->
  ?trace:Obs.t ->
  ?input:string ->
  ?async:(int * Lang.Exn.t) list ->
  ?kills:(int * int * Lang.Exn.t) list ->
  ?check_invariants:bool ->
  ?max_transitions:int ->
  Lang.Syntax.expr ->
  result
(** Perform a closed [IO] expression with the concurrent machine
    scheduler. The machine's step budget is refuelled at every
    transition. [async] events go into the machine's schedule and are
    delivered at the first [getException] of an unmasked thread; each
    thread carries its own mask depth (brackets, [Mask] sections).
    [trace] is shared with the underlying machine: the scheduler adds
    fork, bracket and timeout events to the machine's stream.

    [kills] is a fault-injection schedule of [(transition, tid, exn)]
    triples: once the transition counter reaches [transition], [exn] is
    queued on thread [tid] exactly as if a live thread had performed
    [ThrowTo (ThreadId tid) exn]. Entries naming finished or unknown
    threads are dropped silently. *)
