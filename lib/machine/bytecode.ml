(* The flat bytecode backend. One compile pass flattens the resolved IR
   into a contiguous int array (opcode + inline operand words, emitted
   through a growarray code buffer and frozen); the evaluator is a
   register machine — mode, program counter, environment, accumulator —
   that dispatches straight off the code array with no per-step variant
   allocation ({!Stg} allocates a [C_eval]/[C_ret] cell on every
   transition; this machine writes four registers).

   Three superinstructions fuse the slot machine's measured hot pairs:

   - [op_app_enter]   push-apply of an argument + enter a variable
                      callee ([RApp (RVar f, a)] — every saturated call
                      in CPS-free code hits this).
   - [op_let_thunk]   allocate an argument thunk + bind it in a fresh
                      1-slot frame ([RLet (Athunk _, _)] — the
                      alloc+move pair of every let).
   - [op_case_enter]  push a case frame + force a variable scrutinee
                      ([RCase (RVar _, _)] — the force+branch pair of
                      every case on a bound variable).

   Every case site owns a monomorphic inline cache (tag, binder count,
   branch pc): constructor returns check it first ([Stats.ic_hits]) and
   fall back to the alternative-table walk on a miss, which refills the
   cache ([Stats.ic_misses]). The cache lives in the shared program —
   sound across machines, because a site's tag-to-branch mapping is a
   pure function of the static table.

   The exception machinery is transition-for-transition the slot
   machine's: synchronous unwinding poisons update frames (Section 3.3),
   asynchronous unwinding leaves resumable pause cells (Section 5.1),
   resource latches raise catchable overflows through the same
   trim-the-stack path, and provenance/flight-recorder events fire on
   every exceptional transition. *)

open Lang.Syntax
module Exn = Lang.Exn
module R = Lang.Resolve

type addr = int

type mvalue =
  | MInt of int
  | MChar of char
  | MString of string
  | MCon of int * addr array
  | MClo of int * addr array

and env = Env_nil | Env_frame of addr array * env

(* ------------------------------------------------------------------ *)
(* The compiled program                                                *)
(* ------------------------------------------------------------------ *)

(* Opcodes. Operand words follow inline; every expression's code ends in
   a control transfer (enter or return), so blocks never fall off their
   end. *)
let op_enter = 0 (* slotw *)
let op_ret_int = 1 (* n *)
let op_ret_char = 2 (* char code *)
let op_ret_str = 3 (* string pool idx *)
let op_ret_clo = 4 (* lam pool idx *)
let op_ret_con = 5 (* tag, n, n arg words *)
let op_ret_con0 = 6 (* tag *)
let op_push_apply = 7 (* argw; falls through to the callee *)
let op_app_enter = 8 (* argw, slotw — superinstruction *)
let op_let_slot = 9 (* slotw; falls through to the body *)
let op_let_thunk = 10 (* tspec idx — superinstruction *)
let op_letrec = 11 (* n, n tspec idxs; falls through to the body *)
let op_push_case = 12 (* case idx; falls through to the scrutinee *)
let op_case_enter = 13 (* case idx, slotw — superinstruction *)
let op_push_prim = 14 (* prim-site idx; falls through to argument 0 *)
let op_prim0 = 15 (* prim-site idx (zero arguments: a type error) *)
let op_push_raise = 16 (* label pool idx; falls through to the payload *)
let op_push_mapexn = 17 (* argw; falls through to the protected value *)
let op_push_isexn = 18
let op_push_catch = 19
let op_unbound = 20 (* string pool idx *)

(* A slot packs to one word: frame in the high bits, index in the low 16
   (static lexical depth and frame width never approach 2^16). An
   argument word [argw] is a thunk-template index when non-negative and
   [-(packed slot) - 1] when the argument reuses a variable's address. *)
let pack (s : R.slot) = (s.R.frame lsl 16) lor s.R.idx

type lam_info = {
  l_caps : int array;  (* packed capture slots *)
  mutable l_pc : int;  (* body entry, patched after the body is emitted *)
  l_name : string;
}

type tspec_info = { t_caps : int array; mutable t_pc : int }

type bpat = Bp_con of int * int | Bp_lit of lit | Bp_any of bool

type balt = { bpat : bpat; mutable bpc : int }

type case_site = {
  c_alts : balt array;
  (* The monomorphic inline cache: last constructor (tag, binder count)
     seen here and the branch it selected. [-1] = empty. *)
  mutable ic_tag : int;
  mutable ic_nb : int;
  mutable ic_pc : int;
}

type prim_site = {
  ps_prim : Lang.Prim.t;
  ps_args : int array;  (* entry pcs of arguments 1..n-1 (0 falls through) *)
}

type program = {
  code : int array;
  entry : int;
  app_pc : int;  (* the [$f $x] template for alloc_app / mapException *)
  strs : string array;  (* string literals, unbound names, raise labels *)
  lams : lam_info array;
  tspecs : tspec_info array;
  cases : case_site array;
  prims : prim_site array;
}

let code_words p = Array.length p.code

(* ------------------------------------------------------------------ *)
(* The compiler                                                        *)
(* ------------------------------------------------------------------ *)

(* An accumulating pool: add returns the index, freeze returns the
   array in insertion order. *)
let pool () =
  let items = ref [] and n = ref 0 in
  let add x =
    let i = !n in
    items := x :: !items;
    incr n;
    i
  in
  let freeze () = Array.of_list (List.rev !items) in
  (add, freeze)

let compile (root : R.rexpr) : program =
  let code = Growarray.create ~dummy:0 () in
  let emit w = ignore (Growarray.push code w) in
  let here () = Growarray.length code in
  let add_str, freeze_strs = pool () in
  let add_lam, freeze_lams = pool () in
  let add_tspec_info, freeze_tspecs = pool () in
  let add_case, freeze_cases = pool () in
  let add_prim, freeze_prims = pool () in
  (* Sub-blocks (λ and thunk bodies, case branches, prim arguments past
     the first) are queued and emitted after the current linear block,
     each job patching its entry pc into the pool record that owns it. *)
  let pending : (unit -> unit) Queue.t = Queue.create () in
  let rec add_tspec (sp : R.tspec) : int =
    let info = { t_caps = Array.map pack sp.R.caps; t_pc = -1 } in
    let i = add_tspec_info info in
    Queue.add
      (fun () ->
        info.t_pc <- here ();
        emit_tail sp.R.tbody)
      pending;
    i
  and arg_word = function
    | R.Aslot s -> -pack s - 1
    | R.Athunk sp -> add_tspec sp
  and emit_tail (e : R.rexpr) : unit =
    match e with
    | R.RVar s ->
        emit op_enter;
        emit (pack s)
    | R.RUnbound x ->
        emit op_unbound;
        emit (add_str x)
    | R.RLit (Lit_int n) ->
        emit op_ret_int;
        emit n
    | R.RLit (Lit_char c) ->
        emit op_ret_char;
        emit (Char.code c)
    | R.RLit (Lit_string s) ->
        emit op_ret_str;
        emit (add_str s)
    | R.RLam l ->
        let info =
          { l_caps = Array.map pack l.R.lcaps; l_pc = -1; l_name = l.R.lname }
        in
        let i = add_lam info in
        Queue.add
          (fun () ->
            info.l_pc <- here ();
            emit_tail l.R.lbody)
          pending;
        emit op_ret_clo;
        emit i
    | R.RApp (R.RVar s, a) ->
        (* Superinstruction: push the argument's apply frame and enter
           the callee in one dispatch. *)
        let aw = arg_word a in
        emit op_app_enter;
        emit aw;
        emit (pack s)
    | R.RApp (f, a) ->
        let aw = arg_word a in
        emit op_push_apply;
        emit aw;
        emit_tail f
    | R.RCon (tag, [||]) ->
        emit op_ret_con0;
        emit tag
    | R.RCon (tag, args) ->
        let ws = Array.map arg_word args in
        emit op_ret_con;
        emit tag;
        emit (Array.length ws);
        Array.iter emit ws
    | R.RCase (scrut, alts) ->
        let balts =
          Array.map
            (fun (a : R.ralt) ->
              let b =
                {
                  bpat =
                    (match a.R.rpat with
                    | R.Rpcon (t, nb) -> Bp_con (t, nb)
                    | R.Rplit l -> Bp_lit l
                    | R.Rpany bind -> Bp_any bind);
                  bpc = -1;
                }
              in
              Queue.add
                (fun () ->
                  b.bpc <- here ();
                  emit_tail a.R.rrhs)
                pending;
              b)
            alts
        in
        let ci =
          add_case { c_alts = balts; ic_tag = -1; ic_nb = -1; ic_pc = -1 }
        in
        (match scrut with
        | R.RVar s ->
            (* Superinstruction: force+branch — push the case frame and
               enter the scrutinee in one dispatch. *)
            emit op_case_enter;
            emit ci;
            emit (pack s)
        | _ ->
            emit op_push_case;
            emit ci;
            emit_tail scrut)
    | R.RLet (R.Aslot s, body) ->
        emit op_let_slot;
        emit (pack s);
        emit_tail body
    | R.RLet (R.Athunk sp, body) ->
        (* Superinstruction: alloc+move — allocate the bound thunk and
           bind it in a fresh 1-slot frame in one dispatch. *)
        emit op_let_thunk;
        emit (add_tspec sp);
        emit_tail body
    | R.RLetrec (specs, body) ->
        emit op_letrec;
        emit (Array.length specs);
        Array.iter (fun sp -> emit (add_tspec sp)) specs;
        emit_tail body
    | R.RPrim (p, []) ->
        emit op_prim0;
        emit (add_prim { ps_prim = p; ps_args = [||] })
    | R.RPrim (p, a0 :: rest) ->
        let ps_args = Array.make (List.length rest) (-1) in
        List.iteri
          (fun i a ->
            Queue.add
              (fun () ->
                ps_args.(i) <- here ();
                emit_tail a)
              pending)
          rest;
        emit op_push_prim;
        emit (add_prim { ps_prim = p; ps_args });
        emit_tail a0
    | R.RRaise (lbl, e1) ->
        emit op_push_raise;
        emit (add_str lbl);
        emit_tail e1
    | R.RMapexn (f, v) ->
        let aw = arg_word f in
        emit op_push_mapexn;
        emit aw;
        emit_tail v
    | R.RIsexn v ->
        emit op_push_isexn;
        emit_tail v
    | R.RGetexn v ->
        emit op_push_catch;
        emit_tail v
  in
  let entry = here () in
  emit_tail root;
  (* The shared application template [$f $x] over a [|f; x|] frame. *)
  let app_pc = here () in
  emit op_app_enter;
  emit (-pack { R.frame = 0; R.idx = 1 } - 1);
  emit (pack { R.frame = 0; R.idx = 0 });
  while not (Queue.is_empty pending) do
    (Queue.pop pending) ()
  done;
  {
    code = Array.init (Growarray.length code) (Growarray.get code);
    entry;
    app_pc;
    strs = freeze_strs ();
    lams = freeze_lams ();
    tspecs = freeze_tspecs ();
    cases = freeze_cases ();
    prims = freeze_prims ();
  }

let compile_expr ?ctx e = compile (R.expr ?ctx e)

(* ------------------------------------------------------------------ *)
(* The machine                                                         *)
(* ------------------------------------------------------------------ *)

type cell =
  | Cell_thunk of int * env  (* body pc + captured environment *)
  | Cell_value of mvalue
  | Cell_blackhole
  | Cell_raise of Exn.t * Obs.origin
  | Cell_paused of bcode * bframe list
  | Cell_unused

(* A suspended position: the three register modes, reified only when a
   pause cell must capture the continuation. *)
and bcode = B_exec of int * env | B_enter of addr | B_ret of mvalue

and bframe =
  | BF_update of addr
  | BF_apply of addr
  | BF_case of int * env  (* case-site index *)
  | BF_prim of int * mvalue array * int * env
      (* prim-site index, argument accumulator (filled in place, one
         slot per argument), index of the next slot to fill — which is
         also the index of the next argument pc in [ps_args] *)
  | BF_raise of int  (* raise-label pool index *)
  | BF_mapexn of addr
  | BF_isexn
  | BF_catch

type config = Stg.config

let default_config = Stg.default_config

type failure = Stg.failure =
  | Fail_exn of Exn.t
  | Fail_async of Exn.t
  | Fail_diverged

let pp_failure = Stg.pp_failure

type to_exn_error = Not_exn | Exn_err of Exn.t

type t = {
  prog : program;
  mutable heap : cell Growarray.t;
  stats : Stats.t;
  cfg : config;
  rctx : R.context;
  mutable fuel_left : int;
  mutable async : (int * Exn.t) list;
  mutable mask_depth : int;
  mutable heap_check_armed : bool;
  trace : Obs.t;
  prov : Obs.provenance;
}

let create ?(config = default_config) ?(trace = Obs.create ())
    ?(rctx = R.global_context) prog =
  {
    prog;
    heap = Growarray.create ~dummy:Cell_unused ();
    stats = Stats.create ();
    cfg = config;
    rctx;
    fuel_left = config.Stg.fuel;
    async = [];
    mask_depth = 0;
    heap_check_armed = true;
    trace;
    prov = Obs.new_provenance ();
  }

let stats m = m.stats
let heap_size m = Growarray.length m.heap
let trace m = m.trace
let origin_of m e = Obs.find_origin m.prov e
let pp_exn_with_origin m = Obs.pp_exn_with m.prov

let invariant_failure (m : t) (msg : string) : 'a =
  let extra =
    [
      ("stats", Fmt.str "%a" Stats.pp m.stats);
      ("heap", Printf.sprintf "%d cells" (Growarray.length m.heap));
      ("mask-depth", string_of_int m.mask_depth);
    ]
  in
  raise
    (Obs.Machine_invariant
       (Obs.dump ~note:("machine invariant violated: " ^ msg) ~extra m.trace))

let refuel m = m.fuel_left <- m.cfg.Stg.fuel
let mask_depth m = m.mask_depth

let push_mask m =
  m.mask_depth <- m.mask_depth + 1;
  m.stats.Stats.masked_sections <- m.stats.Stats.masked_sections + 1;
  if Obs.on m.trace then Obs.record m.trace Obs.Ev_mask_push

let pop_mask m =
  if m.mask_depth > 0 then begin
    m.mask_depth <- m.mask_depth - 1;
    if Obs.on m.trace then Obs.record m.trace Obs.Ev_mask_pop
  end

let set_mask_depth m d = m.mask_depth <- max 0 d

exception Machine_stuck of failure

exception Prim_type_error of string

(* The environment walk off a packed slot word — the bytecode
   counterpart of {!Stg.lookup}, counted in the same bucket. *)
let lookup (m : t) (env : env) (w : int) : addr =
  m.stats.Stats.slot_reads <- m.stats.Stats.slot_reads + 1;
  let rec go env n =
    match env with
    | Env_frame (arr, up) ->
        if n = 0 then Array.unsafe_get arr (w land 0xffff) else go up (n - 1)
    | Env_nil ->
        raise
          (Machine_stuck (Fail_exn (Exn.Type_error "corrupt environment")))
  in
  go env (w lsr 16)

let alloc_cell m cell =
  m.stats.Stats.allocations <- m.stats.Stats.allocations + 1;
  Growarray.push m.heap cell

let alloc_value m v = alloc_cell m (Cell_value v)

(* Resolve every packed slot in [caps] — a counted loop rather than
   [Array.map (lookup m env)], which would allocate a closure per call
   on the thunk-allocation hot path. *)
let lookup_all (m : t) (env : env) (caps : int array) : addr array =
  let n = Array.length caps in
  if n = 0 then [||]
  else begin
    let arr = Array.make n 0 in
    for i = 0 to n - 1 do
      Array.unsafe_set arr i (lookup m env (Array.unsafe_get caps i))
    done;
    arr
  end

let capture m env (caps : int array) : env =
  if Array.length caps = 0 then Env_nil
  else Env_frame (lookup_all m env caps, Env_nil)

let alloc_tspec m env (ti : int) : addr =
  let sp = m.prog.tspecs.(ti) in
  alloc_cell m (Cell_thunk (sp.t_pc, capture m env sp.t_caps))

(* Decode an argument word: a negative word reuses a variable's address,
   a non-negative word allocates its thunk template. *)
let arg_addr m env (w : int) : addr =
  if w < 0 then lookup m env (-w - 1) else alloc_tspec m env w

let alloc_app m f x =
  alloc_cell m (Cell_thunk (m.prog.app_pc, Env_frame ([| f; x |], Env_nil)))

let entry m = alloc_cell m (Cell_thunk (m.prog.entry, Env_nil))

let inject_async m ~at_step e = m.async <- m.async @ [ (at_step, e) ]
let clear_async m = m.async <- []

let exn_to_mvalue m (e : Exn.t) : mvalue =
  let tag = R.con_tag ~ctx:m.rctx (Exn.constructor_name e) in
  match Exn.payload e with
  | Some (Exn.P_string s) -> MCon (tag, [| alloc_value m (MString s) |])
  | Some (Exn.P_int n) -> MCon (tag, [| alloc_value m (MInt n) |])
  | None -> MCon (tag, [||])

(* The per-transition preamble's verdict: proceed, a resource latch
   tripped, or an asynchronous exception is due. [Go] is the constant
   hot result; the other arms allocate only on their (rare) paths. *)
type guard = Go | Trip of string * Exn.t | Async of Exn.t

(* The dispatch loop, in direct tail-call style: three mutually
   recursive functions — [exec] (run instructions at a pc), [enter]
   (force a heap address), [ret] (return a value to the top frame) —
   carry the machine state in their arguments, so a transition is a
   tail call with the state in registers: no per-step variant
   allocation, no mode cell, no dispatch-on-a-dispatch. Every
   transition still runs the same preamble as the slot machine (fuel,
   stack latch, heap latch, async poll, in that order), so the two
   backends hit their latches and deliver asynchronous exceptions under
   identical rules. [catch] marks the bottom of this run's stack as a
   getException catch mark, exactly as in the slot machine. *)
let rec run (m : t) ~(catch : bool) (code0 : bcode) : (mvalue, failure) result
    =
  let prog = m.prog in
  let codea = prog.code in
  let stats = m.stats in
  let stack : bframe list ref = ref [] in
  let depth = ref 0 in
  (* Latch bounds and the arithmetic overflow bound, hoisted out of the
     preamble: an absent limit becomes [max_int], so the per-step check
     is one integer compare instead of an option match. *)
  let stack_lim =
    match m.cfg.Stg.stack_limit with Some l -> l | None -> max_int
  in
  let heap_lim =
    match m.cfg.Stg.heap_limit with Some l -> l | None -> max_int
  in
  let arith_bound = 1 lsl (m.cfg.Stg.int_bits - 1) in
  let poison = m.cfg.Stg.poison_thunks in
  let push f =
    stack := f :: !stack;
    incr depth;
    if !depth > stats.Stats.max_stack then stats.Stats.max_stack <- !depth
  in
  let type_error msg = raise (Prim_type_error msg) in

  let note_raise label exn =
    let o = Obs.origin ~label ~depth:!depth ~step:stats.Stats.steps in
    Obs.set_origin m.prov exn o;
    if Obs.on m.trace then Obs.record m.trace (Obs.Ev_raise (exn, o));
    o
  in

  let mbool b = MCon ((if b then R.t_true else R.t_false), [||]) in

  (* The preamble, shared by all three transition functions: count the
     step, burn fuel, check the latches, poll for an asynchronous
     delivery — one call, one branch on the hot path.
     [Stats.bc_dispatches] is not bumped here: for this machine it is
     identically [steps], so the run synchronises it once at exit
     instead of paying a second counter store per dispatch. *)
  let check () : guard =
    stats.Stats.steps <- stats.Stats.steps + 1;
    m.fuel_left <- m.fuel_left - 1;
    if m.fuel_left <= 0 then raise (Machine_stuck Fail_diverged);
    if !depth > stack_lim then begin
      stats.Stats.stack_overflows <- stats.Stats.stack_overflows + 1;
      Trip ("stack-limit", Exn.Stack_overflow_exn)
    end
    else if m.heap_check_armed && Growarray.length m.heap >= heap_lim
    then begin
      m.heap_check_armed <- false;
      stats.Stats.heap_overflows <- stats.Stats.heap_overflows + 1;
      Trip ("heap-limit", Exn.Heap_overflow)
    end
    else if catch && m.mask_depth = 0 then
      match m.async with
      | (k, x) :: rest when stats.Stats.steps >= k ->
          m.async <- rest;
          Async x
      | _ -> Go
    else Go
  in

  (* Synchronous unwinding: trim to the mark, poisoning update frames
     (Section 3.3). Continues execution at the mark's continuation, or
     raises [Machine_stuck] when the stack is fully unwound. *)
  let rec unwind_sync (o : Obs.origin) (exn : Exn.t) : mvalue =
    match !stack with
    | [] -> raise (Machine_stuck (Fail_exn exn))
    | f :: rest -> (
        stack := rest;
        decr depth;
        stats.Stats.frames_trimmed <- stats.Stats.frames_trimmed + 1;
        match f with
        | BF_update a ->
            if poison then begin
              Growarray.fast_set m.heap a (Cell_raise (exn, o));
              stats.Stats.thunks_poisoned <- stats.Stats.thunks_poisoned + 1;
              if Obs.on m.trace then
                Obs.record m.trace (Obs.Ev_poison (a, exn))
            end;
            unwind_sync o exn
        | BF_isexn -> ret (MCon (R.t_true, [||]))
        | BF_catch ->
            ret (MCon (R.t_bad, [| alloc_value m (exn_to_mvalue m exn) |]))
        | BF_mapexn f_addr -> (
            let e_addr = alloc_value m (exn_to_mvalue m exn) in
            let a = alloc_app m f_addr e_addr in
            match run m ~catch:false (B_enter a) with
            | Ok v -> (
                match mvalue_to_exn m v with
                | Ok exn' -> unwind_sync (note_raise "mapException" exn') exn'
                | Error Not_exn ->
                    let exn' = Exn.Type_error "raise: not an exception" in
                    unwind_sync (note_raise "mapException" exn') exn'
                | Error (Exn_err exn') ->
                    unwind_sync (note_raise "mapException" exn') exn')
            | Error (Fail_exn exn') ->
                unwind_sync (note_raise "mapException" exn') exn'
            | Error (Fail_async _ | Fail_diverged) ->
                raise (Machine_stuck Fail_diverged))
        | BF_apply _ | BF_case _ | BF_prim _ | BF_raise _ ->
            unwind_sync o exn)

  and raise_to ?(label = "raise") exn : mvalue =
    unwind_sync (note_raise label exn) exn

  and reraise o exn : mvalue =
    Obs.set_origin m.prov exn o;
    if Obs.on m.trace then Obs.record m.trace (Obs.Ev_rethrow (exn, o));
    unwind_sync o exn

  (* Asynchronous unwinding (Section 5.1): every update frame on the way
     down pauses its thunk with the stack segment above it, so the
     abandoned work resumes exactly where it stopped. [cur] is the
     interrupted transition, allocated only on this (rare) path. *)
  and unwind_async (cur : bcode) (exn : Exn.t) : mvalue =
    stats.Stats.async_delivered <- stats.Stats.async_delivered + 1;
    ignore (note_raise "async" exn);
    if Obs.on m.trace then Obs.record m.trace (Obs.Ev_async exn);
    let rec go cur buf st =
      match st with
      | [] ->
          stack := [];
          depth := 0;
          raise (Machine_stuck (Fail_async exn))
      | BF_update a :: rest ->
          Growarray.fast_set m.heap a (Cell_paused (cur, List.rev buf));
          stats.Stats.thunks_paused <- stats.Stats.thunks_paused + 1;
          if Obs.on m.trace then Obs.record m.trace (Obs.Ev_pause a);
          go (B_enter a) [] rest
      | f :: rest -> go cur (f :: buf) rest
    in
    go cur [] !stack

  and arith (n : int) : mvalue =
    if n >= -arith_bound && n < arith_bound then ret_fused (MInt n)
    else raise_to ~label:"arith-overflow" Exn.Overflow

  (* Comparison over the comparable value shapes; nullary constructors
     compare by interned name, as in the slot machine. *)
  and compare2 (p : Lang.Prim.t) (a : mvalue) (b : mvalue) : mvalue =
    let c =
      match (a, b) with
      | MInt x, MInt y -> Int.compare x y
      | MChar x, MChar y -> Char.compare x y
      | MString x, MString y -> String.compare x y
      | MCon (x, [||]), MCon (y, [||]) ->
          String.compare
            (R.con_name ~ctx:m.rctx x)
            (R.con_name ~ctx:m.rctx y)
      | _ -> type_error (Lang.Prim.name p ^ ": uncomparable values")
    in
    let module P = Lang.Prim in
    ret_fused
      (mbool
         (match p with
         | P.Eq -> c = 0
         | P.Ne -> c <> 0
         | P.Lt -> c < 0
         | P.Le -> c <= 0
         | P.Gt -> c > 0
         | P.Ge -> c >= 0
         | _ -> c = 0))

  and apply_prim (p : Lang.Prim.t) (vs : mvalue array) : mvalue =
    let module P = Lang.Prim in
    match (p, vs) with
    | P.Add, [| MInt a; MInt b |] -> arith (a + b)
    | P.Sub, [| MInt a; MInt b |] -> arith (a - b)
    | P.Mul, [| MInt a; MInt b |] -> arith (a * b)
    | P.Div, [| MInt _; MInt 0 |] -> raise_to ~label:"div" Exn.Divide_by_zero
    | P.Div, [| MInt a; MInt b |] -> arith (a / b)
    | P.Mod, [| MInt _; MInt 0 |] -> raise_to ~label:"mod" Exn.Divide_by_zero
    | P.Mod, [| MInt a; MInt b |] -> arith (a mod b)
    | P.Neg, [| MInt a |] -> arith (-a)
    | (P.Add | P.Sub | P.Mul | P.Div | P.Mod), _ ->
        type_error (P.name p ^ ": expected integers")
    | P.Neg, _ -> type_error "negate: expected an integer"
    | (P.Eq | P.Ne | P.Lt | P.Le | P.Gt | P.Ge), [| a; b |] -> compare2 p a b
    | (P.Eq | P.Ne | P.Lt | P.Le | P.Gt | P.Ge), _ ->
        type_error (P.name p ^ ": uncomparable values")
    | P.Seq, [| _; v2 |] -> ret_fused v2
    | P.Seq, _ -> type_error "seq: arity"
    | P.Chr, [| MInt a |] when a >= 0 && a < 256 ->
        ret_fused (MChar (Char.chr a))
    | P.Chr, [| MInt _ |] -> type_error "chr: out of range"
    | P.Chr, _ -> type_error "chr: expected an integer"
    | P.Ord, [| MChar c |] -> ret_fused (MInt (Char.code c))
    | P.Ord, _ -> type_error "ord: expected a character"
    | (P.Map_exception | P.Unsafe_is_exception | P.Unsafe_get_exception), _
      ->
        type_error (P.name p ^ ": not strict-applied")

  (* The constructor-return path of a case frame: inline cache first,
     table walk on a miss (which refills the cache on a constructor
     match). The walk is exactly {!Stg.select_alt}. *)
  and sel_alt (c : case_site) (cenv : env) (v : mvalue) (i : int) : mvalue =
    if i >= Array.length c.c_alts then
      raise_to ~label:"case" (Exn.Pattern_match_fail "case")
    else
      let a = c.c_alts.(i) in
      match (a.bpat, v) with
      | Bp_con (t, nb), MCon (t', addrs)
        when t = t' && Array.length addrs = nb ->
          c.ic_tag <- t;
          c.ic_nb <- nb;
          c.ic_pc <- a.bpc;
          exec a.bpc (if nb = 0 then cenv else Env_frame (addrs, cenv))
      | Bp_lit (Lit_int k), MInt n when k = n -> exec a.bpc cenv
      | Bp_lit (Lit_char ch), MChar ch' when ch = ch' -> exec a.bpc cenv
      | Bp_lit (Lit_string s), MString s' when String.equal s s' ->
          exec a.bpc cenv
      | Bp_any false, _ -> exec a.bpc cenv
      | Bp_any true, _ ->
          exec a.bpc (Env_frame ([| alloc_value m v |], cenv))
      | (Bp_con _ | Bp_lit _), _ -> sel_alt c cenv v (i + 1)

  and ret_case (ci : int) (cenv : env) (v : mvalue) : mvalue =
    let c = Array.unsafe_get prog.cases ci in
    match v with
    | MCon (tag, addrs) ->
        let nb = Array.length addrs in
        if c.ic_tag = tag && c.ic_nb = nb then begin
          stats.Stats.ic_hits <- stats.Stats.ic_hits + 1;
          exec c.ic_pc (if nb = 0 then cenv else Env_frame (addrs, cenv))
        end
        else begin
          stats.Stats.ic_misses <- stats.Stats.ic_misses + 1;
          sel_alt c cenv v 0
        end
    | MInt _ | MChar _ | MString _ | MClo _ -> sel_alt c cenv v 0

  (* Execute the instruction at [p]. *)
  and exec (p : int) (env : env) : mvalue =
    match check () with
    | Trip (label, exn) -> raise_to ~label exn
    | Async x -> unwind_async (B_exec (p, env)) x
    | Go -> (
        match Array.unsafe_get codea p with
            | 0 (* enter *) -> enter (lookup m env codea.(p + 1))
            | 1 (* ret_int *) -> ret_fused (MInt codea.(p + 1))
            | 2 (* ret_char *) -> ret_fused (MChar (Char.chr codea.(p + 1)))
            | 3 (* ret_str *) ->
                ret_fused (MString prog.strs.(codea.(p + 1)))
            | 4 (* ret_clo *) ->
                let li = codea.(p + 1) in
                let l = prog.lams.(li) in
                ret_fused (MClo (li, lookup_all m env l.l_caps))
            | 5 (* ret_con *) ->
                let tag = codea.(p + 1) and n = codea.(p + 2) in
                let args = Array.make n 0 in
                for i = 0 to n - 1 do
                  Array.unsafe_set args i (arg_addr m env codea.(p + 3 + i))
                done;
                ret_fused (MCon (tag, args))
            | 6 (* ret_con0 *) -> ret_fused (MCon (codea.(p + 1), [||]))
            | 7 (* push_apply *) ->
                push (BF_apply (arg_addr m env codea.(p + 1)));
                exec (p + 2) env
            | 8 (* app_enter *) ->
                push (BF_apply (arg_addr m env codea.(p + 1)));
                enter (lookup m env codea.(p + 2))
            | 9 (* let_slot *) ->
                exec (p + 2)
                  (Env_frame ([| lookup m env codea.(p + 1) |], env))
            | 10 (* let_thunk *) ->
                exec (p + 2)
                  (Env_frame ([| alloc_tspec m env codea.(p + 1) |], env))
            | 11 (* letrec *) ->
                let n = codea.(p + 1) in
                let addrs =
                  Array.init n (fun _ -> alloc_cell m Cell_unused)
                in
                let env' = Env_frame (addrs, env) in
                for i = 0 to n - 1 do
                  let sp = prog.tspecs.(codea.(p + 2 + i)) in
                  Growarray.fast_set m.heap addrs.(i)
                    (Cell_thunk (sp.t_pc, capture m env' sp.t_caps))
                done;
                exec (p + 2 + n) env'
            | 12 (* push_case *) ->
                push (BF_case (codea.(p + 1), env));
                exec (p + 2) env
            | 13 (* case_enter *) ->
                push (BF_case (codea.(p + 1), env));
                enter (lookup m env codea.(p + 2))
            | 14 (* push_prim *) ->
                let si = codea.(p + 1) in
                let ps = Array.unsafe_get prog.prims si in
                push
                  (BF_prim
                     ( si,
                       Array.make (Array.length ps.ps_args + 1) (MInt 0),
                       0,
                       env ));
                exec (p + 2) env
            | 15 (* prim0 *) ->
                type_error
                  (Lang.Prim.name prog.prims.(codea.(p + 1)).ps_prim
                  ^ ": no arguments")
            | 16 (* push_raise *) ->
                push (BF_raise codea.(p + 1));
                exec (p + 2) env
            | 17 (* push_mapexn *) ->
                push (BF_mapexn (arg_addr m env codea.(p + 1)));
                exec (p + 2) env
            | 18 (* push_isexn *) ->
                push BF_isexn;
                exec (p + 1) env
            | 19 (* push_catch *) ->
                push BF_catch;
                exec (p + 1) env
            | 20 (* unbound *) ->
                raise_to ~label:"unbound"
                  (Exn.Type_error
                     (Printf.sprintf "unbound variable %s"
                        prog.strs.(codea.(p + 1))))
            | _ -> invariant_failure m "corrupt opcode")

  (* Force the heap address [a]. *)
  and enter (a : addr) : mvalue =
    match check () with
    | Trip (label, exn) -> raise_to ~label exn
    | Async x -> unwind_async (B_enter a) x
    | Go -> (
        match Growarray.fast_get m.heap a with
            | Cell_value v -> ret_fused v
            | Cell_thunk (tpc, tenv) ->
                Growarray.fast_set m.heap a Cell_blackhole;
                push (BF_update a);
                exec tpc tenv
            | Cell_blackhole ->
                if m.cfg.Stg.blackhole_nontermination then
                  raise_to ~label:"blackhole" Exn.Non_termination
                else raise (Machine_stuck Fail_diverged)
            | Cell_raise (exn, o) -> reraise o exn
            | Cell_paused (code', seg) ->
                Growarray.fast_set m.heap a Cell_blackhole;
                push (BF_update a);
                List.iter push (List.rev seg);
                if Obs.on m.trace then Obs.record m.trace (Obs.Ev_resume a);
                goto code'
            | Cell_unused -> type_error "dangling address")

  (* Return the value [v] to the top stack frame. An empty stack is the
     terminal state — no transition is charged for it, matching the
     slot machine's loop. [ret] charges a transition; [ret_fused] pops
     under a preamble the caller already paid — the fused path taken
     when the producing dispatch (a ret_* instruction, a memoised
     [Cell_value], a prim application) hands its value straight to the
     waiting frame. Fusion is bounded: the popped frame's continuation
     re-enters [exec]/[ret]/[enter], each of which charges normally. *)
  and ret (v : mvalue) : mvalue =
    match !stack with
    | [] -> v
    | f :: rest -> (
        match check () with
        | Trip (label, exn) -> raise_to ~label exn
        | Async x -> unwind_async (B_ret v) x
        | Go -> pop_ret f rest v)

  and ret_fused (v : mvalue) : mvalue =
    match !stack with [] -> v | f :: rest -> pop_ret f rest v

  and pop_ret (f : bframe) (rest : bframe list) (v : mvalue) : mvalue =
    stack := rest;
    decr depth;
    match f with
    | BF_update a ->
        Growarray.fast_set m.heap a (Cell_value v);
        stats.Stats.updates <- stats.Stats.updates + 1;
        ret v
    | BF_apply a -> (
        match v with
        | MClo (li, caps) ->
            exec
              (Array.unsafe_get prog.lams li).l_pc
              (Env_frame ([| a |], Env_frame (caps, Env_nil)))
        | MInt _ | MChar _ | MString _ | MCon _ ->
            type_error "application of a non-function")
    | BF_case (ci, cenv) -> ret_case ci cenv v
    | BF_prim (si, vals, i, penv) ->
        let ps = Array.unsafe_get prog.prims si in
        Array.unsafe_set vals i v;
        if i >= Array.length ps.ps_args then apply_prim ps.ps_prim vals
        else begin
          push (BF_prim (si, vals, i + 1, penv));
          exec ps.ps_args.(i) penv
        end
    | BF_raise li -> (
        let label = prog.strs.(li) in
        match mvalue_to_exn m v with
        | Ok exn -> raise_to ~label exn
        | Error Not_exn ->
            raise_to ~label (Exn.Type_error "raise: not an exception")
        | Error (Exn_err e) -> raise_to ~label e)
    | BF_mapexn _ ->
        (* Normal value: mapException is the identity. *)
        ret v
    | BF_isexn -> ret (mbool false)
    | BF_catch -> ret (MCon (R.t_ok, [| alloc_value m v |]))

  and goto : bcode -> mvalue = function
    | B_exec (p, e) -> exec p e
    | B_enter a -> enter a
    | B_ret v -> ret v
  in
  (* A prim type error unwinds like an ordinary raise from the point of
     the error — the machine stack is intact when the OCaml exception
     reaches here, so [raise_to] resumes the run; the next type error
     (if any) re-enters the same handler. *)
  let rec protect f =
    try f ()
    with Prim_type_error msg ->
      protect (fun () -> raise_to ~label:"type-error" (Exn.Type_error msg))
  in
  (* Synchronise the dispatch counter on every exit — including
     escaping exceptions, which the serve crash barrier turns into
     replies whose machine stats are still harvested. *)
  Fun.protect
    ~finally:(fun () -> stats.Stats.bc_dispatches <- stats.Stats.steps)
    (fun () ->
      try Ok (protect (fun () -> goto code0))
      with Machine_stuck failure -> Error failure)

and mvalue_to_exn (m : t) (v : mvalue) : (Exn.t, to_exn_error) result =
  match v with
  | MCon (tag, args) -> (
      let payload =
        match args with
        | [||] -> Ok None
        | [| a |] -> (
            match run m ~catch:false (B_enter a) with
            | Ok (MString s) -> Ok (Some (Exn.P_string s))
            | Ok (MInt n) -> Ok (Some (Exn.P_int n))
            | Ok _ ->
                Error (Exn.Type_error "exception payload is not a string")
            | Error (Fail_exn e) | Error (Fail_async e) -> Error e
            | Error Fail_diverged ->
                Error (Exn.Type_error "exception payload failed to evaluate"))
        | _ -> Error (Exn.Type_error "exception constructor arity")
      in
      match payload with
      | Error e -> Error (Exn_err e)
      | Ok p -> (
          let name = R.con_name ~ctx:m.rctx tag in
          match Exn.of_constructor_p name p with
          | Some e -> Ok e
          | None ->
              Error
                (Exn_err
                   (Exn.Type_error
                      (name ^ " is not an exception constructor")))))
  | MInt _ | MChar _ | MString _ | MClo _ -> Error Not_exn

let force m a = run m ~catch:false (B_enter a)

let force_catch m a =
  m.stats.Stats.catches <- m.stats.Stats.catches + 1;
  let r = run m ~catch:true (B_enter a) in
  (if Obs.on m.trace then
     match r with
     | Error (Fail_exn e) | Error (Fail_async e) ->
         Obs.record m.trace (Obs.Ev_catch (Some e))
     | Ok _ | Error Fail_diverged -> Obs.record m.trace (Obs.Ev_catch None));
  r

module SV = Semantics.Sem_value

let rec deep ?(depth = 64) m a : SV.deep =
  if depth <= 0 then SV.DCut
  else
    match force m a with
    | Error (Fail_exn e) -> SV.DBad (Semantics.Exn_set.singleton e)
    | Error (Fail_async e) -> SV.DBad (Semantics.Exn_set.singleton e)
    | Error Fail_diverged -> SV.DBad Semantics.Exn_set.bottom
    | Ok v -> (
        match v with
        | MInt n -> SV.DInt n
        | MChar c -> SV.DChar c
        | MString s -> SV.DString s
        | MClo _ -> SV.DFun
        | MCon (tag, addrs) ->
            SV.DCon
              ( R.con_name ~ctx:m.rctx tag,
                List.map
                  (fun a' -> deep ~depth:(depth - 1) m a')
                  (Array.to_list addrs) ))

let run_expr ?config e =
  let m = create ?config (compile_expr e) in
  let a = entry m in
  let r = force m a in
  (r, m.stats)

let run_deep ?config ?depth e =
  let m = create ?config (compile_expr e) in
  let a = entry m in
  let d = deep ?depth m a in
  (d, m.stats)

(* ------------------------------------------------------------------ *)
(* Garbage collection: the same semi-space copying collector as the    *)
(* slot machine, over bytecode cells. Code positions are ints into the *)
(* shared program, so only addresses move.                             *)
(* ------------------------------------------------------------------ *)

let gc (m : t) ~(roots : addr list) : addr list =
  let old_heap = m.heap in
  let old_len = Growarray.length old_heap in
  let new_heap =
    Growarray.create ~capacity:(max 16 old_len) ~dummy:Cell_unused ()
  in
  let forward = Array.make (max 1 old_len) (-1) in
  let rec copy (a : addr) : addr =
    if a < 0 || a >= old_len then a
    else if forward.(a) >= 0 then forward.(a)
    else begin
      let a' = Growarray.push new_heap (Growarray.get old_heap a) in
      forward.(a) <- a';
      Growarray.set new_heap a' (copy_cell (Growarray.get old_heap a));
      a'
    end
  and copy_env = function
    | Env_nil -> Env_nil
    | Env_frame (arr, up) -> Env_frame (Array.map copy arr, copy_env up)
  and copy_value = function
    | (MInt _ | MChar _ | MString _) as v -> v
    | MCon (tag, addrs) -> MCon (tag, Array.map copy addrs)
    | MClo (li, caps) -> MClo (li, Array.map copy caps)
  and copy_code = function
    | B_exec (p, env) -> B_exec (p, copy_env env)
    | B_enter a -> B_enter (copy a)
    | B_ret v -> B_ret (copy_value v)
  and copy_frame = function
    | BF_update a -> BF_update (copy a)
    | BF_apply a -> BF_apply (copy a)
    | BF_case (ci, env) -> BF_case (ci, copy_env env)
    | BF_prim (si, vals, i, env) ->
        BF_prim (si, Array.map copy_value vals, i, copy_env env)
    | BF_raise _ as f -> f
    | BF_mapexn a -> BF_mapexn (copy a)
    | BF_isexn -> BF_isexn
    | BF_catch -> BF_catch
  and copy_cell = function
    | Cell_thunk (p, env) -> Cell_thunk (p, copy_env env)
    | Cell_value v -> Cell_value (copy_value v)
    | Cell_blackhole -> Cell_blackhole
    | Cell_raise _ as c -> c
    | Cell_paused (code, frames) ->
        Cell_paused (copy_code code, List.map copy_frame frames)
    | Cell_unused -> Cell_unused
  in
  let roots' = List.map copy roots in
  m.heap <- new_heap;
  m.stats.Stats.collections <- m.stats.Stats.collections + 1;
  m.stats.Stats.live_copied <-
    m.stats.Stats.live_copied + Growarray.length new_heap;
  if Obs.on m.trace then
    Obs.record m.trace (Obs.Ev_gc (old_len, Growarray.length new_heap));
  (match m.cfg.Stg.heap_limit with
  | Some lim when Growarray.length new_heap < lim ->
      m.heap_check_armed <- true
  | _ -> ());
  roots'
