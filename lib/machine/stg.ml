(* The slot-compiled stack-trimming machine: {!Lang.Resolve} turns every
   expression into a pre-resolved IR (variables are (frame, offset)
   slots, constructors are interned integer tags, allocation sites carry
   their free-variable footprints), and this machine evaluates that IR
   with array-backed environments. No string is compared and no
   string-keyed map is touched at runtime — [Stats.slot_reads] counts
   the array reads that replaced [Stats.env_lookups], which stays 0.

   The exception machinery (poisoning, pause cells, masks, resource
   limits) is transition-for-transition the PR-1 semantics; the
   name-based original survives unchanged in {!Stg_ref} as the measured
   baseline. *)

open Lang.Syntax
module Exn = Lang.Exn
module R = Lang.Resolve

type addr = int

type mvalue =
  | MInt of int
  | MChar of char
  | MString of string
  | MCon of int * addr array  (** Interned constructor tag. *)
  | MClo of R.lam * addr array  (** Code template + captured slots. *)

(* The runtime environment: a chain of address frames mirroring the
   static scope the resolver compiled against. Capture points (thunks,
   closures) cut the chain to a single compact frame. *)
and env = Env_nil | Env_frame of addr array * env

type cell =
  | Cell_thunk of R.rexpr * env
  | Cell_value of mvalue
  | Cell_blackhole
  | Cell_raise of Exn.t * Obs.origin
      (** Thunk poisoned by a synchronous unwinding (Section 3.3); the
          origin of the raise rides along so a later re-entry still
          reports where the exception originally came from. *)
  | Cell_paused of code * frame list
      (** Resumable continuation left by an asynchronous unwinding
          (Section 5.1): code to resume and the stack segment above the
          thunk's update frame (top first). *)
  | Cell_unused

and code = C_eval of R.rexpr * env | C_enter of addr | C_ret of mvalue

and frame =
  | F_update of addr
  | F_apply of addr
  | F_case of R.ralt array * env
  | F_prim of Lang.Prim.t * mvalue list * R.rexpr list * env
  | F_raise of string
      (** Evaluating the argument of [raise]; carries the resolver's
          raise-site label for provenance. *)
  | F_mapexn of addr  (** [mapException]'s function, awaiting a raise. *)
  | F_isexn
  | F_unsafe_catch
      (** Section 6's pure [unsafeGetException]: reify the outcome as an
          ExVal right here, without the IO monad. *)

type config = {
  fuel : int;
  int_bits : int;
  blackhole_nontermination : bool;
  poison_thunks : bool;
  heap_limit : int option;
  stack_limit : int option;
}

let default_config =
  {
    fuel = 2_000_000;
    int_bits = 32;
    blackhole_nontermination = false;
    poison_thunks = true;
    heap_limit = None;
    stack_limit = None;
  }

type t = {
  mutable heap : cell Growarray.t;
  stats : Stats.t;
  cfg : config;
  rctx : R.context;
      (* The interning context this machine's IR was resolved against.
         Defaults to {!R.global_context}; every piece of per-machine
         state (heap, stats, async queue, provenance, trace) lives in
         this record — the serve daemon's re-entrancy audit holds the
         machine to "no hidden process state". *)
  mutable fuel_left : int;
  mutable async : (int * Exn.t) list;
  mutable mask_depth : int;
  mutable heap_check_armed : bool;
      (* The heap limit fires once, then stays disarmed until a collection
         brings the heap back under the limit: the raise itself cannot
         free memory, so without the latch every subsequent step would
         re-raise before a supervisor could recover. *)
  trace : Obs.t;
  prov : Obs.provenance;
      (* Origin of the most recent raise of each exception constant;
         maintained whether or not the recorder is on (raise paths are
         off the per-step fast path, so this costs nothing per step). *)
}

type failure =
  | Fail_exn of Exn.t
  | Fail_async of Exn.t
  | Fail_diverged

let pp_failure ppf = function
  | Fail_exn e -> Fmt.pf ppf "raise %a" Exn.pp e
  | Fail_async e -> Fmt.pf ppf "async %a" Exn.pp e
  | Fail_diverged -> Fmt.string ppf "diverged"

(* Why a WHNF value could not be read back as an exception constant:
   either it is not an exception at all (the caller chooses the message
   -- [raise] and [mapException] report differently, matching the
   denotational semantics), or interpreting it raised an exception of
   its own (a payload that raises propagates that exception). *)
type to_exn_error = Not_exn | Exn_err of Exn.t

let create ?(config = default_config) ?(trace = Obs.create ())
    ?(rctx = R.global_context) () =
  {
    heap = Growarray.create ~dummy:Cell_unused ();
    stats = Stats.create ();
    cfg = config;
    rctx;
    fuel_left = config.fuel;
    async = [];
    mask_depth = 0;
    heap_check_armed = true;
    trace;
    prov = Obs.new_provenance ();
  }

let stats m = m.stats
let heap_size m = Growarray.length m.heap
let trace m = m.trace
let origin_of m e = Obs.find_origin m.prov e
let pp_exn_with_origin m = Obs.pp_exn_with m.prov

(* A broken unwind or a return into an empty stack mid-step: the dead
   branches that used to be [assert false]. Fatal, but debuggable — the
   exception carries the flight-recorder dump and a stats snapshot. *)
let invariant_failure (m : t) (msg : string) : 'a =
  let extra =
    [
      ("stats", Fmt.str "%a" Stats.pp m.stats);
      ("heap", Printf.sprintf "%d cells" (Growarray.length m.heap));
      ("mask-depth", string_of_int m.mask_depth);
    ]
  in
  raise
    (Obs.Machine_invariant
       (Obs.dump ~note:("machine invariant violated: " ^ msg) ~extra m.trace))

let refuel m = m.fuel_left <- m.cfg.fuel

let mask_depth m = m.mask_depth

let push_mask m =
  m.mask_depth <- m.mask_depth + 1;
  m.stats.masked_sections <- m.stats.masked_sections + 1;
  if Obs.on m.trace then Obs.record m.trace Obs.Ev_mask_push

let pop_mask m =
  if m.mask_depth > 0 then begin
    m.mask_depth <- m.mask_depth - 1;
    if Obs.on m.trace then Obs.record m.trace Obs.Ev_mask_pop
  end
let set_mask_depth m d = m.mask_depth <- max 0 d

exception Machine_stuck of failure

(* A primitive or pattern-match type error inside [run]: caught at the
   loop boundary and re-entered as an ordinary synchronous raise, so it
   unwinds the stack (poisoning thunks, feeding [mapException] and catch
   frames) exactly like any other exception — the denotational semantics
   makes no distinction. *)
exception Prim_type_error of string

(* The slot read that replaced the string-map lookup. The resolver
   guarantees the frame walk and the index are in bounds for well-formed
   IR; a corrupt environment is a machine bug, reported as stuck. *)
let lookup (m : t) (env : env) (s : R.slot) : addr =
  m.stats.slot_reads <- m.stats.slot_reads + 1;
  let rec go env n =
    match env with
    | Env_frame (arr, up) -> if n = 0 then arr.(s.R.idx) else go up (n - 1)
    | Env_nil ->
        raise
          (Machine_stuck (Fail_exn (Exn.Type_error "corrupt environment")))
  in
  go env s.R.frame

let alloc_cell m cell =
  m.stats.allocations <- m.stats.allocations + 1;
  Growarray.push m.heap cell

let alloc_value m v = alloc_cell m (Cell_value v)

(* Fill a thunk template's capture array from the current environment
   and allocate it as a single-frame closure over exactly its free
   variables. *)
let capture m env (caps : R.slot array) : env =
  if Array.length caps = 0 then Env_nil
  else Env_frame (Array.map (lookup m env) caps, Env_nil)

let alloc_spec m env (spec : R.tspec) : addr =
  alloc_cell m (Cell_thunk (spec.R.tbody, capture m env spec.R.caps))

(* The resolver's statically-decided [alloc_in]: variable arguments
   reuse their heap address, everything else becomes a compact thunk. *)
let arg_addr m env = function
  | R.Aslot s -> lookup m env s
  | R.Athunk spec -> alloc_spec m env spec

let alloc_resolved m r = alloc_cell m (Cell_thunk (r, Env_nil))
let alloc m e = alloc_resolved m (R.expr ~ctx:m.rctx e)

(* Pre-resolved [$f $x] template shared by [alloc_app] and the nested
   mapException application: frame 0 holds [|f; x|]. *)
let app01 : R.rexpr =
  R.RApp
    (R.RVar { R.frame = 0; R.idx = 0 }, R.Aslot { R.frame = 0; R.idx = 1 })

let alloc_app m f x =
  alloc_cell m (Cell_thunk (app01, Env_frame ([| f; x |], Env_nil)))

let inject_async m ~at_step e = m.async <- m.async @ [ (at_step, e) ]
let clear_async m = m.async <- []

let exn_to_mvalue m (e : Exn.t) : mvalue =
  let tag = R.con_tag ~ctx:m.rctx (Exn.constructor_name e) in
  match Exn.payload e with
  | Some (Exn.P_string s) -> MCon (tag, [| alloc_value m (MString s) |])
  | Some (Exn.P_int n) -> MCon (tag, [| alloc_value m (MInt n) |])
  | None -> MCon (tag, [||])

(* The machine loop. [catch] marks the bottom of this run's stack as a
   getException catch mark: synchronous raises and asynchronous events
   that unwind all the way down are returned as [Error]. *)
let rec run (m : t) ~(catch : bool) (code0 : code) : (mvalue, failure) result
    =
  let stack : frame list ref = ref [] in
  let depth = ref 0 in
  let code = ref code0 in
  let push f =
    stack := f :: !stack;
    incr depth;
    if !depth > m.stats.max_stack then m.stats.max_stack <- !depth
  in
  let pop_to rest =
    stack := rest;
    decr depth
  in
  let type_error msg = raise (Prim_type_error msg) in

  (* Register the origin of a raise (provenance is always-on: raises are
     off the fast path) and record the event when the recorder is on. *)
  let note_raise label exn =
    let o = Obs.origin ~label ~depth:!depth ~step:m.stats.steps in
    Obs.set_origin m.prov exn o;
    if Obs.on m.trace then Obs.record m.trace (Obs.Ev_raise (exn, o));
    o
  in

  (* Synchronous unwinding: trim to the mark, poisoning update frames
     (Section 3.3). Returns [Some code'] to continue executing, or [None]
     when the stack is fully unwound (the failure reaches the caller). *)
  let rec unwind_sync (o : Obs.origin) (exn : Exn.t) : code option =
    match !stack with
    | [] -> raise (Machine_stuck (Fail_exn exn))
    | f :: rest -> (
        pop_to rest;
        m.stats.frames_trimmed <- m.stats.frames_trimmed + 1;
        match f with
        | F_update a ->
            (* Section 3.3 (footnote 3): the abandoned thunk must be
               overwritten with [raise ex]. The [poison_thunks] ablation
               leaves the black hole behind instead, reproducing the bug
               the paper warns about: re-evaluation then sees a black
               hole, not the exception. *)
            if m.cfg.poison_thunks then begin
              Growarray.set m.heap a (Cell_raise (exn, o));
              m.stats.thunks_poisoned <- m.stats.thunks_poisoned + 1;
              if Obs.on m.trace then
                Obs.record m.trace (Obs.Ev_poison (a, exn))
            end;
            unwind_sync o exn
        | F_isexn ->
            (* unsafeIsException observes the raise and answers True. *)
            Some (C_ret (MCon (R.t_true, [||])))
        | F_unsafe_catch ->
            Some
              (C_ret
                 (MCon (R.t_bad, [| alloc_value m (exn_to_mvalue m exn) |])))
        | F_mapexn f_addr -> (
            (* Transform the representative exception by applying the
               mapped function in a nested run, then keep unwinding with
               the transformed exception (Section 5.4). *)
            let e_addr = alloc_value m (exn_to_mvalue m exn) in
            let a = alloc_app m f_addr e_addr in
            match run m ~catch:false (C_enter a) with
            | Ok v -> (
                match mvalue_to_exn m v with
                | Ok exn' -> unwind_sync (note_raise "mapException" exn') exn'
                | Error Not_exn ->
                    (* Matches [Sem_value.exn_of_whnf]: the denotational
                       semantics reports a non-exception uniformly, with
                       no mapException-specific message. *)
                    let exn' = Exn.Type_error "raise: not an exception" in
                    unwind_sync (note_raise "mapException" exn') exn'
                | Error (Exn_err exn') ->
                    unwind_sync (note_raise "mapException" exn') exn')
            | Error (Fail_exn exn') ->
                unwind_sync (note_raise "mapException" exn') exn'
            | Error (Fail_async _ | Fail_diverged) ->
                raise (Machine_stuck Fail_diverged))
        | F_apply _ | F_case _ | F_prim _ | F_raise _ -> unwind_sync o exn)
  in

  (* A fresh raise at a labelled site, continued as machine code. *)
  let raise_to_code ?(label = "raise") exn =
    match unwind_sync (note_raise label exn) exn with
    | Some c -> c
    | None -> invariant_failure m "unwind_sync returned no continuation"
  in

  (* A poisoned thunk re-entered: replay the raise with its original
     origin intact. *)
  let reraise_to_code o exn =
    Obs.set_origin m.prov exn o;
    if Obs.on m.trace then Obs.record m.trace (Obs.Ev_rethrow (exn, o));
    match unwind_sync o exn with
    | Some c -> c
    | None -> invariant_failure m "unwind_sync returned no continuation"
  in

  (* Asynchronous unwinding (Section 5.1): pause cells instead of poison,
     so the abandoned work is resumable. The segment saved with each thunk
     is the stack slice above its update frame, top first. *)
  let unwind_async (exn : Exn.t) : 'a =
    m.stats.async_delivered <- m.stats.async_delivered + 1;
    ignore (note_raise "async" exn);
    if Obs.on m.trace then Obs.record m.trace (Obs.Ev_async exn);
    let rec go cur_code buf st =
      match st with
      | [] ->
          stack := [];
          depth := 0;
          raise (Machine_stuck (Fail_async exn))
      | F_update a :: rest ->
          Growarray.set m.heap a (Cell_paused (cur_code, List.rev buf));
          m.stats.thunks_paused <- m.stats.thunks_paused + 1;
          if Obs.on m.trace then Obs.record m.trace (Obs.Ev_pause a);
          go (C_enter a) [] rest
      | f :: rest -> go cur_code (f :: buf) rest
    in
    go !code [] !stack
  in

  let pending_async () =
    if (not catch) || m.mask_depth > 0 then None
    else
      match m.async with
      | (k, x) :: rest when m.stats.steps >= k ->
          m.async <- rest;
          Some x
      | _ -> None
  in

  let arith n =
    let bound = 1 lsl (m.cfg.int_bits - 1) in
    if n >= -bound && n < bound then C_ret (MInt n)
    else raise_to_code ~label:"arith-overflow" Exn.Overflow
  in

  let mbool b = MCon ((if b then R.t_true else R.t_false), [||]) in

  let apply_prim (p : Lang.Prim.t) (vs : mvalue list) : code =
    let module P = Lang.Prim in
    let int2 k =
      match vs with
      | [ MInt a; MInt b ] -> k a b
      | _ -> type_error (P.name p ^ ": expected integers")
    in
    let cmp k =
      match vs with
      | [ MInt a; MInt b ] -> C_ret (mbool (k (Stdlib.compare a b)))
      | [ MChar a; MChar b ] -> C_ret (mbool (k (Stdlib.compare a b)))
      | [ MString a; MString b ] -> C_ret (mbool (k (String.compare a b)))
      | [ MCon (a, [||]); MCon (b, [||]) ] ->
          (* Nullary constructors compare by name, as before interning:
             tag order is interning order, not lexicographic. *)
          C_ret
            (mbool
               (k
                  (String.compare
                     (R.con_name ~ctx:m.rctx a)
                     (R.con_name ~ctx:m.rctx b))))
      | _ -> type_error (P.name p ^ ": uncomparable values")
    in
    match p with
    | P.Add -> int2 (fun a b -> arith (a + b))
    | P.Sub -> int2 (fun a b -> arith (a - b))
    | P.Mul -> int2 (fun a b -> arith (a * b))
    | P.Div ->
        int2 (fun a b ->
            if b = 0 then raise_to_code ~label:"div" Exn.Divide_by_zero
            else arith (a / b))
    | P.Mod ->
        int2 (fun a b ->
            if b = 0 then raise_to_code ~label:"mod" Exn.Divide_by_zero
            else arith (a mod b))
    | P.Neg -> (
        match vs with
        | [ MInt a ] -> arith (-a)
        | _ -> type_error "negate: expected an integer")
    | P.Eq -> cmp (fun c -> c = 0)
    | P.Ne -> cmp (fun c -> c <> 0)
    | P.Lt -> cmp (fun c -> c < 0)
    | P.Le -> cmp (fun c -> c <= 0)
    | P.Gt -> cmp (fun c -> c > 0)
    | P.Ge -> cmp (fun c -> c >= 0)
    | P.Seq -> (
        match vs with
        | [ _; v2 ] -> C_ret v2
        | _ -> type_error "seq: arity")
    | P.Chr -> (
        match vs with
        | [ MInt a ] when a >= 0 && a < 256 -> C_ret (MChar (Char.chr a))
        | [ MInt _ ] -> type_error "chr: out of range"
        | _ -> type_error "chr: expected an integer")
    | P.Ord -> (
        match vs with
        | [ MChar c ] -> C_ret (MInt (Char.code c))
        | _ -> type_error "ord: expected a character")
    | P.Map_exception | P.Unsafe_is_exception | P.Unsafe_get_exception ->
        (* Handled at C_eval via dedicated IR nodes. *)
        type_error (P.name p ^ ": not strict-applied")
  in

  let select_alt (v : mvalue) (alts : R.ralt array) env =
    let n = Array.length alts in
    let rec go i =
      if i >= n then None
      else
        let a = alts.(i) in
        match (a.R.rpat, v) with
        | R.Rpcon (tag, nb), MCon (tag', addrs)
          when tag = tag' && Array.length addrs = nb ->
            (* The constructor's argument array doubles as the binder
               frame: no copy, no per-binder insertion. *)
            Some
              ((if nb = 0 then env else Env_frame (addrs, env)), a.R.rrhs)
        | R.Rplit (Lit_int k), MInt mv when k = mv -> Some (env, a.R.rrhs)
        | R.Rplit (Lit_char c), MChar c' when c = c' -> Some (env, a.R.rrhs)
        | R.Rplit (Lit_string s), MString s' when String.equal s s' ->
            Some (env, a.R.rrhs)
        | R.Rpany false, _ -> Some (env, a.R.rrhs)
        | R.Rpany true, _ ->
            Some (Env_frame ([| alloc_value m v |], env), a.R.rrhs)
        | (R.Rpcon _ | R.Rplit _), _ -> go (i + 1)
    in
    go 0
  in

  let step () : unit =
    m.stats.steps <- m.stats.steps + 1;
    m.fuel_left <- m.fuel_left - 1;
    if m.fuel_left <= 0 then raise (Machine_stuck Fail_diverged);
    (* Resource exhaustion (GHC's HeapOverflow/StackOverflow): delivered
       through the ordinary trim-the-stack path, so it poisons abandoned
       thunks and is catchable by getException like any other imprecise
       exception. *)
    let exhausted =
      match m.cfg.stack_limit with
      | Some lim when !depth > lim ->
          m.stats.stack_overflows <- m.stats.stack_overflows + 1;
          Some ("stack-limit", Exn.Stack_overflow_exn)
      | _ -> (
          match m.cfg.heap_limit with
          | Some lim when m.heap_check_armed && Growarray.length m.heap >= lim
            ->
              m.heap_check_armed <- false;
              m.stats.heap_overflows <- m.stats.heap_overflows + 1;
              Some ("heap-limit", Exn.Heap_overflow)
          | _ -> None)
    in
    match exhausted with
    | Some (label, exn) -> code := raise_to_code ~label exn
    | None -> (
    (match pending_async () with
    | Some x -> unwind_async x
    | None -> ());
    match !code with
    | C_enter a -> (
        match Growarray.get m.heap a with
        | Cell_value v -> code := C_ret v
        | Cell_thunk (e, env) ->
            Growarray.set m.heap a Cell_blackhole;
            push (F_update a);
            code := C_eval (e, env)
        | Cell_blackhole ->
            (* Section 5.2: a detectable bottom. *)
            if m.cfg.blackhole_nontermination then
              code := raise_to_code ~label:"blackhole" Exn.Non_termination
            else raise (Machine_stuck Fail_diverged)
        | Cell_raise (exn, o) ->
            (* A poisoned thunk: re-raise the same exception, with the
               origin of the poisoning raise intact. *)
            code := reraise_to_code o exn
        | Cell_paused (code', seg) ->
            (* Resume the interrupted evaluation (Section 5.1). *)
            Growarray.set m.heap a Cell_blackhole;
            push (F_update a);
            List.iter push (List.rev seg);
            if Obs.on m.trace then Obs.record m.trace (Obs.Ev_resume a);
            code := code'
        | Cell_unused -> type_error "dangling address")
    | C_eval (e, env) -> (
        match e with
        | R.RVar s -> code := C_enter (lookup m env s)
        | R.RUnbound x ->
            code :=
              raise_to_code ~label:"unbound"
                (Exn.Type_error (Printf.sprintf "unbound variable %s" x))
        | R.RLit (Lit_int n) -> code := C_ret (MInt n)
        | R.RLit (Lit_char c) -> code := C_ret (MChar c)
        | R.RLit (Lit_string s) -> code := C_ret (MString s)
        | R.RLam l -> code := C_ret (MClo (l, Array.map (lookup m env) l.R.lcaps))
        | R.RApp (f, a) ->
            let a_addr = arg_addr m env a in
            push (F_apply a_addr);
            code := C_eval (f, env)
        | R.RCon (tag, args) ->
            code := C_ret (MCon (tag, Array.map (arg_addr m env) args))
        | R.RLet (a, body) ->
            let addr = arg_addr m env a in
            code := C_eval (body, Env_frame ([| addr |], env))
        | R.RLetrec (specs, body) ->
            (* Reserve the cells, then tie the knot through the shared
               binder frame: each right-hand side captures its footprint
               from the extended environment, in which the siblings'
               addresses already exist. *)
            let addrs =
              Array.map (fun _ -> alloc_cell m Cell_unused) specs
            in
            let env' = Env_frame (addrs, env) in
            Array.iteri
              (fun i spec ->
                Growarray.set m.heap addrs.(i)
                  (Cell_thunk (spec.R.tbody, capture m env' spec.R.caps)))
              specs;
            code := C_eval (body, env')
        | R.RRaise (lbl, e1) ->
            push (F_raise lbl);
            code := C_eval (e1, env)
        | R.RMapexn (f, v) ->
            let f_addr = arg_addr m env f in
            push (F_mapexn f_addr);
            code := C_eval (v, env)
        | R.RIsexn v ->
            push F_isexn;
            code := C_eval (v, env)
        | R.RGetexn v ->
            push F_unsafe_catch;
            code := C_eval (v, env)
        | R.RPrim (p, arg :: rest) ->
            push (F_prim (p, [], rest, env));
            code := C_eval (arg, env)
        | R.RPrim (p, []) -> type_error (Lang.Prim.name p ^ ": no arguments")
        | R.RCase (scrut, alts) ->
            push (F_case (alts, env));
            code := C_eval (scrut, env))
    | C_ret v -> (
        match !stack with
        | [] ->
            (* [loop] returns before stepping a finished configuration,
               so reaching here means the driver invariant broke. *)
            invariant_failure m "C_ret with an empty stack reached step"
        | f :: rest -> (
            pop_to rest;
            match f with
            | F_update a ->
                Growarray.set m.heap a (Cell_value v);
                m.stats.updates <- m.stats.updates + 1
            | F_apply a -> (
                match v with
                | MClo (l, caps) ->
                    (* One 1-slot argument frame chained onto the
                       captured frame: no copying of the captures. *)
                    code :=
                      C_eval
                        ( l.R.lbody,
                          Env_frame
                            ([| a |], Env_frame (caps, Env_nil)) )
                | MInt _ | MChar _ | MString _ | MCon _ ->
                    type_error "application of a non-function")
            | F_case (alts, env) -> (
                match select_alt v alts env with
                | Some (env', rhs) -> code := C_eval (rhs, env')
                | None ->
                    code :=
                      raise_to_code ~label:"case"
                        (Exn.Pattern_match_fail "case"))
            | F_prim (p, done_, remaining, env) -> (
                let done' = done_ @ [ v ] in
                match remaining with
                | [] -> code := apply_prim p done'
                | next :: rest' ->
                    push (F_prim (p, done', rest', env));
                    code := C_eval (next, env))
            | F_raise lbl -> (
                match mvalue_to_exn m v with
                | Ok exn -> code := raise_to_code ~label:lbl exn
                | Error Not_exn ->
                    code :=
                      raise_to_code ~label:lbl
                        (Exn.Type_error "raise: not an exception")
                | Error (Exn_err e) -> code := raise_to_code ~label:lbl e)
            | F_mapexn _ ->
                (* The protected value was normal: mapException is the
                   identity. *)
                code := C_ret v
            | F_isexn -> code := C_ret (mbool false)
            | F_unsafe_catch ->
                code := C_ret (MCon (R.t_ok, [| alloc_value m v |])))))
  in
  try
    let rec loop () =
      match (!code, !stack) with
      | C_ret v, [] -> Ok v
      | _ ->
          step ();
          loop ()
    in
    let rec exec () =
      try loop ()
      with Prim_type_error msg ->
        code := raise_to_code ~label:"type-error" (Exn.Type_error msg);
        exec ()
    in
    exec ()
  with Machine_stuck failure -> Error failure

(* Interpret a WHNF machine value as an exception constant; forces the
   payload in a nested run. *)
and mvalue_to_exn (m : t) (v : mvalue) : (Exn.t, to_exn_error) result =
  match v with
  | MCon (tag, args) -> (
      let payload =
        match args with
        | [||] -> Ok None
        | [| a |] -> (
            match run m ~catch:false (C_enter a) with
            | Ok (MString s) -> Ok (Some (Exn.P_string s))
            | Ok (MInt n) -> Ok (Some (Exn.P_int n))
            | Ok _ ->
                Error (Exn.Type_error "exception payload is not a string")
            | Error (Fail_exn e) | Error (Fail_async e) -> Error e
            | Error Fail_diverged ->
                Error (Exn.Type_error "exception payload failed to evaluate"))
        | _ -> Error (Exn.Type_error "exception constructor arity")
      in
      match payload with
      | Error e -> Error (Exn_err e)
      | Ok p -> (
          let name = R.con_name ~ctx:m.rctx tag in
          match Exn.of_constructor_p name p with
          | Some e -> Ok e
          | None ->
              Error
                (Exn_err
                   (Exn.Type_error
                      (name ^ " is not an exception constructor")))))
  | MInt _ | MChar _ | MString _ | MClo _ -> Error Not_exn

let force m a = run m ~catch:false (C_enter a)

let force_catch m a =
  m.stats.catches <- m.stats.catches + 1;
  let r = run m ~catch:true (C_enter a) in
  (if Obs.on m.trace then
     match r with
     | Error (Fail_exn e) | Error (Fail_async e) ->
         Obs.record m.trace (Obs.Ev_catch (Some e))
     | Ok _ | Error Fail_diverged -> Obs.record m.trace (Obs.Ev_catch None));
  r

type deep_result = DV of Semantics.Sem_value.deep | DFail of failure

module SV = Semantics.Sem_value

let rec deep ?(depth = 64) m a : SV.deep =
  if depth <= 0 then SV.DCut
  else
    match force m a with
    | Error (Fail_exn e) -> SV.DBad (Semantics.Exn_set.singleton e)
    | Error (Fail_async e) -> SV.DBad (Semantics.Exn_set.singleton e)
    | Error Fail_diverged -> SV.DBad Semantics.Exn_set.bottom
    | Ok v -> (
        match v with
        | MInt n -> SV.DInt n
        | MChar c -> SV.DChar c
        | MString s -> SV.DString s
        | MClo _ -> SV.DFun
        | MCon (tag, addrs) ->
            SV.DCon
              ( R.con_name ~ctx:m.rctx tag,
                List.map
                  (fun a' -> deep ~depth:(depth - 1) m a')
                  (Array.to_list addrs) ))

let run_expr ?config e =
  let m = create ?config () in
  let a = alloc m e in
  let r = force m a in
  (r, m.stats)

let run_deep ?config ?depth e =
  let m = create ?config () in
  let a = alloc m e in
  let d = deep ?depth m a in
  (d, m.stats)


(* ------------------------------------------------------------------ *)
(* Garbage collection: a semi-space copying collector over the cell    *)
(* heap. Roots are the addresses the caller still holds; the machine   *)
(* must be between runs (no live stack). Returns the relocated roots   *)
(* in order.                                                           *)
(* ------------------------------------------------------------------ *)

let gc (m : t) ~(roots : addr list) : addr list =
  let old_heap = m.heap in
  let old_len = Growarray.length old_heap in
  let new_heap = Growarray.create ~capacity:(max 16 old_len) ~dummy:Cell_unused () in
  let forward = Array.make (max 1 old_len) (-1) in
  (* Cheney-style: copy the cell shell first, then scan and rewrite. *)
  let rec copy (a : addr) : addr =
    if a < 0 || a >= old_len then a
    else if forward.(a) >= 0 then forward.(a)
    else begin
      let a' = Growarray.push new_heap (Growarray.get old_heap a) in
      forward.(a) <- a';
      (* Depth-first rewrite of the freshly copied cell. OCaml's own
         stack bounds recursion depth; heaps here are small enough, and
         long list spines alternate through environment frames which are
         copied breadth-ish via [copy_env]. *)
      Growarray.set new_heap a' (copy_cell (Growarray.get old_heap a));
      a'
    end

  and copy_env = function
    | Env_nil -> Env_nil
    | Env_frame (arr, up) -> Env_frame (Array.map copy arr, copy_env up)

  and copy_value = function
    | (MInt _ | MChar _ | MString _) as v -> v
    | MCon (tag, addrs) -> MCon (tag, Array.map copy addrs)
    | MClo (l, caps) -> MClo (l, Array.map copy caps)

  and copy_code = function
    | C_eval (e, env) -> C_eval (e, copy_env env)
    | C_enter a -> C_enter (copy a)
    | C_ret v -> C_ret (copy_value v)

  and copy_frame = function
    | F_update a -> F_update (copy a)
    | F_apply a -> F_apply (copy a)
    | F_case (alts, env) -> F_case (alts, copy_env env)
    | F_prim (p, done_, rest, env) ->
        F_prim (p, List.map copy_value done_, rest, copy_env env)
    | F_raise _ as f -> f
    | F_mapexn a -> F_mapexn (copy a)
    | F_isexn -> F_isexn
    | F_unsafe_catch -> F_unsafe_catch

  and copy_cell = function
    | Cell_thunk (e, env) -> Cell_thunk (e, copy_env env)
    | Cell_value v -> Cell_value (copy_value v)
    | Cell_blackhole -> Cell_blackhole
    | Cell_raise _ as c -> c
    | Cell_paused (code, frames) ->
        Cell_paused (copy_code code, List.map copy_frame frames)
    | Cell_unused -> Cell_unused
  in
  let roots' = List.map copy roots in
  m.heap <- new_heap;
  m.stats.collections <- m.stats.collections + 1;
  m.stats.live_copied <-
    m.stats.live_copied + Growarray.length new_heap;
  if Obs.on m.trace then
    Obs.record m.trace (Obs.Ev_gc (old_len, Growarray.length new_heap));
  (* Re-arm the heap limit only once a collection has actually brought the
     heap back under it; otherwise the next step would re-raise before the
     supervisor makes progress. *)
  (match m.cfg.heap_limit with
  | Some lim when Growarray.length new_heap < lim -> m.heap_check_armed <- true
  | _ -> ());
  roots'
