(** The slot-compiled stack-trimming implementation of Section 3.3: a
    lazy (call-by-need) abstract machine in the style of Sestoft's
    mark-2 machine, extended with the paper's exception machinery, and
    fed by the {!Lang.Resolve} compile-to-slots pass.

    {!alloc} resolves the expression once — variables to (frame, offset)
    slots, constructor names to interned integer tags, allocation sites
    to precomputed free-variable footprints — and the machine then
    evaluates the resolved IR with array-backed environments: no string
    comparison and no string-keyed map on any runtime path
    ([Stats.env_lookups] stays 0; [Stats.slot_reads] counts the array
    reads that replaced it). The name-based original is preserved in
    {!Stg_ref} as the measured baseline; bench Table R quantifies the
    difference.

    The exception machinery is unchanged from PR 1:

    - [getException] "marks the evaluation stack": {!force_catch} runs the
      machine with a catch mark at the bottom of the stack.
    - [raise ex] "simply trims the stack to the topmost mark": unwinding
      pops frames, and every update frame passed on the way has its thunk
      overwritten with [raise ex], so re-evaluation re-raises the same
      exception (Section 3.3's correctness requirement).
    - Thunks under evaluation are black-holed; *entering* a black hole is a
      detectable bottom, which the machine is "permitted but not required"
      to report as [NonTermination] (Section 5.2) — controlled by
      [blackhole_nontermination].
    - Asynchronous events unwind like [raise], except that each abandoned
      thunk is overwritten with a *resumable* pause cell capturing the
      stack segment above it, so no work is lost (Section 5.1's
      "fascinating wrinkle"). Re-entering a pause cell resumes evaluation
      exactly where it stopped.

    The machine computes with single exceptions (the representative member
    of the semantic exception set); the differential test C13 checks that
    the exception it finds is always a member of the denotational set. *)

type addr = int

type mvalue =
  | MInt of int
  | MChar of char
  | MString of string
  | MCon of int * addr array
      (** Constructor tag interned by {!Lang.Resolve.con_tag}; recover
          the name with {!Lang.Resolve.con_name}. *)
  | MClo of Lang.Resolve.lam * addr array
      (** λ-closure: code template + captured addresses. *)

and env

type config = {
  fuel : int;  (** Machine steps before reporting divergence. *)
  int_bits : int;
  blackhole_nontermination : bool;
      (** Report a re-entered black hole as [NonTermination] rather than
          diverging (Section 5.2). *)
  poison_thunks : bool;
      (** Ablation (default [true]): overwrite abandoned thunks with
          [raise ex] during synchronous unwinding, as Section 3.3
          requires. With [false] the black hole is left in place and
          re-evaluation wrongly reports non-termination — the bug the
          paper's footnote 3 warns about. *)
  heap_limit : int option;
      (** Soft heap ceiling in cells (default [None]): when the heap
          reaches it, the machine raises [HeapOverflow] through the
          ordinary trim-the-stack path — a catchable imprecise exception,
          so a supervisor under [getException] can recover. The check
          then stays disarmed until {!gc} brings the heap back under the
          limit (the raise itself frees nothing). *)
  stack_limit : int option;
      (** Stack ceiling in frames (default [None]): exceeding it raises
          [StackOverflow] synchronously, trimming (and poisoning) the
          frames that overflowed. *)
}

val default_config : config

type t
(** A machine: heap + counters + pending asynchronous events. *)

val create :
  ?config:config -> ?trace:Obs.t -> ?rctx:Lang.Resolve.context -> unit -> t
(** [trace] is the flight recorder this machine reports into (default: a
    fresh, disabled recorder — tracing costs one dead branch on the
    exceptional paths and nothing on the per-step fast path). [rctx] is
    the constructor-interning context the machine's IR was resolved
    against (default {!Lang.Resolve.global_context}); a machine only
    reads names through its own context, so embedders can sandbox a
    tenant's constructor vocabulary. *)

val stats : t -> Stats.t
val heap_size : t -> int

val trace : t -> Obs.t
(** The machine's flight recorder (enable/inspect it through {!Obs}). *)

val origin_of : t -> Lang.Exn.t -> Obs.origin option
(** Provenance of the most recent raise of this exception constant:
    raise-site label, stack depth and step number. Maintained whether or
    not the recorder is on. *)

val pp_exn_with_origin : t -> Lang.Exn.t Fmt.t
(** Print an exception annotated with its origin, when known. *)

val refuel : t -> unit
(** Reset the step budget to [config.fuel] — the machine counterpart of
    {!Semantics.Denot.refill}, used by long-running drivers so one
    divergent transition does not starve the rest of the program. *)

val mask_depth : t -> int
(** Current asynchronous-exception mask depth. While positive, pending
    async events are deferred even under a catch mark — this is how
    [bracket]'s acquire and release phases (and explicit [Mask] sections)
    are protected from being torn mid-flight. *)

val push_mask : t -> unit
(** Enter a masked section (counts into [Stats.masked_sections]). *)

val pop_mask : t -> unit
(** Leave a masked section; never goes below zero. *)

val set_mask_depth : t -> int -> unit
(** Restore a saved mask depth — used by the concurrent driver when
    switching threads, each of which carries its own depth. *)

val alloc : t -> Lang.Syntax.expr -> addr
(** Resolve a closed expression (one {!Lang.Resolve.expr} pass) and
    allocate it as a thunk. *)

val alloc_resolved : t -> Lang.Resolve.rexpr -> addr
(** Allocate an already-resolved expression — the compile-once/run-many
    entry point: resolve with {!Lang.Resolve.expr} ahead of time, then
    allocate it on any number of fresh machines without re-resolving. *)

val alloc_value : t -> mvalue -> addr

val alloc_app : t -> addr -> addr -> addr
(** [alloc_app m f x]: a thunk for the application of the function at [f]
    to the argument at [x] (used by the IO driver for [>>=]
    continuations). Uses a pre-resolved application template — no
    resolution at runtime. *)

val inject_async : t -> at_step:int -> Lang.Exn.t -> unit
(** Schedule an asynchronous event: it fires at the first step at or after
    [at_step] *while a catch mark is active* (events are delivered only to
    [getException], Section 5.1); otherwise it stays pending. *)

val clear_async : t -> unit
(** Drop every pending asynchronous event. The serve daemon slices
    evaluation by injecting an interrupt each [slice] steps; once a
    request reaches WHNF the unfired interrupt must be withdrawn before
    deep-forcing, or it would tear a structure field mid-print. *)

type failure =
  | Fail_exn of Lang.Exn.t  (** Uncaught synchronous exception. *)
  | Fail_async of Lang.Exn.t
      (** An asynchronous event delivered to the active catch. *)
  | Fail_diverged  (** Fuel exhausted, or a black hole re-entered. *)

val pp_failure : failure Fmt.t

val force : t -> addr -> (mvalue, failure) result
(** Evaluate to WHNF with no catch mark: a raise is an uncaught exception;
    asynchronous events stay pending. *)

val force_catch : t -> addr -> (mvalue, failure) result
(** Evaluate to WHNF under a catch mark — the evaluation part of
    [getException]. [Error (Fail_exn e)] means [e] was caught. *)

type deep_result =
  | DV of Semantics.Sem_value.deep
  | DFail of failure

val deep : ?depth:int -> t -> addr -> Semantics.Sem_value.deep
(** Force the structure rooted at [addr] recursively (catching per-field
    failures as [DBad] singletons, divergence as [DBad All]). *)

val run_expr :
  ?config:config -> Lang.Syntax.expr -> (mvalue, failure) result * Stats.t
(** One-shot: resolve, allocate, force (no catch), return result and
    stats. *)

val run_deep : ?config:config -> ?depth:int -> Lang.Syntax.expr ->
  Semantics.Sem_value.deep * Stats.t
(** One-shot: resolve, allocate, force deeply. A top-level failure
    appears as [DBad]. *)

val gc : t -> roots:addr list -> addr list
(** Copying garbage collection over the machine heap. Must be called
    between runs (no evaluation in progress); [roots] are the addresses
    the caller still holds, and the relocated addresses are returned in
    the same order. Every other address becomes invalid. Pause cells and
    poisoned thunks survive with their contents intact, so interrupted
    computations stay resumable across collections. *)

val exn_to_mvalue : t -> Lang.Exn.t -> mvalue

(** Why a WHNF value could not be read back as an exception constant:
    not an exception at all (the caller chooses the message), or
    interpreting it raised an exception of its own (an exceptional
    payload propagates). *)
type to_exn_error = Not_exn | Exn_err of Lang.Exn.t

val mvalue_to_exn : t -> mvalue -> (Lang.Exn.t, to_exn_error) result
