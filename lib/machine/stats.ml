type t = {
  mutable steps : int;
  mutable allocations : int;
  mutable updates : int;
  mutable max_stack : int;
  mutable frames_trimmed : int;
  mutable thunks_poisoned : int;
  mutable thunks_paused : int;
  mutable catches : int;
  mutable collections : int;
  mutable live_copied : int;
  mutable async_delivered : int;
  mutable brackets_entered : int;
  mutable brackets_released : int;
  mutable timeouts_fired : int;
  mutable masked_sections : int;
  mutable heap_overflows : int;
  mutable stack_overflows : int;
  mutable env_lookups : int;
  mutable slot_reads : int;
  mutable throwtos_delivered : int;
  mutable blocked_recoveries : int;
  mutable bc_dispatches : int;
  mutable ic_hits : int;
  mutable ic_misses : int;
}

let create () =
  {
    steps = 0;
    allocations = 0;
    updates = 0;
    max_stack = 0;
    frames_trimmed = 0;
    thunks_poisoned = 0;
    thunks_paused = 0;
    catches = 0;
    collections = 0;
    live_copied = 0;
    async_delivered = 0;
    brackets_entered = 0;
    brackets_released = 0;
    timeouts_fired = 0;
    masked_sections = 0;
    heap_overflows = 0;
    stack_overflows = 0;
    env_lookups = 0;
    slot_reads = 0;
    throwtos_delivered = 0;
    blocked_recoveries = 0;
    bc_dispatches = 0;
    ic_hits = 0;
    ic_misses = 0;
  }

let reset t =
  t.steps <- 0;
  t.allocations <- 0;
  t.updates <- 0;
  t.max_stack <- 0;
  t.frames_trimmed <- 0;
  t.thunks_poisoned <- 0;
  t.thunks_paused <- 0;
  t.catches <- 0;
  t.collections <- 0;
  t.live_copied <- 0;
  t.async_delivered <- 0;
  t.brackets_entered <- 0;
  t.brackets_released <- 0;
  t.timeouts_fired <- 0;
  t.masked_sections <- 0;
  t.heap_overflows <- 0;
  t.stack_overflows <- 0;
  t.env_lookups <- 0;
  t.slot_reads <- 0;
  t.throwtos_delivered <- 0;
  t.blocked_recoveries <- 0;
  t.bc_dispatches <- 0;
  t.ic_hits <- 0;
  t.ic_misses <- 0

let add acc t =
  acc.steps <- acc.steps + t.steps;
  acc.allocations <- acc.allocations + t.allocations;
  acc.updates <- acc.updates + t.updates;
  acc.max_stack <- max acc.max_stack t.max_stack;
  acc.frames_trimmed <- acc.frames_trimmed + t.frames_trimmed;
  acc.thunks_poisoned <- acc.thunks_poisoned + t.thunks_poisoned;
  acc.thunks_paused <- acc.thunks_paused + t.thunks_paused;
  acc.catches <- acc.catches + t.catches;
  acc.collections <- acc.collections + t.collections;
  acc.live_copied <- acc.live_copied + t.live_copied;
  acc.async_delivered <- acc.async_delivered + t.async_delivered;
  acc.brackets_entered <- acc.brackets_entered + t.brackets_entered;
  acc.brackets_released <- acc.brackets_released + t.brackets_released;
  acc.timeouts_fired <- acc.timeouts_fired + t.timeouts_fired;
  acc.masked_sections <- acc.masked_sections + t.masked_sections;
  acc.heap_overflows <- acc.heap_overflows + t.heap_overflows;
  acc.stack_overflows <- acc.stack_overflows + t.stack_overflows;
  acc.env_lookups <- acc.env_lookups + t.env_lookups;
  acc.slot_reads <- acc.slot_reads + t.slot_reads;
  acc.throwtos_delivered <- acc.throwtos_delivered + t.throwtos_delivered;
  acc.blocked_recoveries <- acc.blocked_recoveries + t.blocked_recoveries;
  acc.bc_dispatches <- acc.bc_dispatches + t.bc_dispatches;
  acc.ic_hits <- acc.ic_hits + t.ic_hits;
  acc.ic_misses <- acc.ic_misses + t.ic_misses

let fields t =
  [
    ("steps", t.steps);
    ("allocations", t.allocations);
    ("updates", t.updates);
    ("max_stack", t.max_stack);
    ("frames_trimmed", t.frames_trimmed);
    ("thunks_poisoned", t.thunks_poisoned);
    ("thunks_paused", t.thunks_paused);
    ("catches", t.catches);
    ("collections", t.collections);
    ("live_copied", t.live_copied);
    ("async_delivered", t.async_delivered);
    ("brackets_entered", t.brackets_entered);
    ("brackets_released", t.brackets_released);
    ("timeouts_fired", t.timeouts_fired);
    ("masked_sections", t.masked_sections);
    ("heap_overflows", t.heap_overflows);
    ("stack_overflows", t.stack_overflows);
    ("env_lookups", t.env_lookups);
    ("slot_reads", t.slot_reads);
    ("throwtos_delivered", t.throwtos_delivered);
    ("blocked_recoveries", t.blocked_recoveries);
    ("bc_dispatches", t.bc_dispatches);
    ("ic_hits", t.ic_hits);
    ("ic_misses", t.ic_misses);
  ]

let pp_json ppf t =
  Fmt.pf ppf "{%a}"
    (Fmt.list ~sep:Fmt.comma (fun ppf (k, v) -> Fmt.pf ppf "%S:%d" k v))
    (fields t)

let pp ppf t =
  Fmt.pf ppf
    "steps=%d allocs=%d updates=%d max_stack=%d trimmed=%d poisoned=%d \
     paused=%d catches=%d gcs=%d async=%d brackets=%d/%d timeouts=%d \
     masked=%d heap_ovf=%d stack_ovf=%d env_lookups=%d slot_reads=%d \
     throwtos=%d blocked_rec=%d bc_dispatches=%d ic=%d/%d"
    t.steps t.allocations t.updates t.max_stack t.frames_trimmed
    t.thunks_poisoned t.thunks_paused t.catches t.collections
    t.async_delivered t.brackets_entered t.brackets_released
    t.timeouts_fired t.masked_sections t.heap_overflows t.stack_overflows
    t.env_lookups t.slot_reads t.throwtos_delivered t.blocked_recoveries
    t.bc_dispatches t.ic_hits t.ic_misses
