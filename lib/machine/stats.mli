(** Deterministic cost counters for the abstract machine — the currency of
    the paper's efficiency claims (C6, C7): machine steps, heap
    allocations, thunk updates, stack depth, frames trimmed by [raise],
    catch frames pushed.

    The fault counters ([async_delivered], [brackets_entered], ...) feed
    the fault-injection harness ({!Analysis.Faultinject}): a run is
    exception-safe only if [brackets_entered = brackets_released] once
    the program has terminated. *)

type t = {
  mutable steps : int;
  mutable allocations : int;
  mutable updates : int;
  mutable max_stack : int;
  mutable frames_trimmed : int;  (** Frames popped while unwinding. *)
  mutable thunks_poisoned : int;
      (** Thunks overwritten with [raise ex] during sync unwinding. *)
  mutable thunks_paused : int;
      (** Thunks overwritten with resumable pause cells (async). *)
  mutable catches : int;
  mutable collections : int;  (** Heap garbage collections run. *)
  mutable live_copied : int;
      (** Cells copied by collections (total survivors). *)
  mutable async_delivered : int;
      (** Asynchronous exceptions actually delivered (not deferred). *)
  mutable brackets_entered : int;
      (** [Bracket] acquires that completed (a release became due). *)
  mutable brackets_released : int;
      (** [Bracket] releases that ran (must equal entered on exit). *)
  mutable timeouts_fired : int;  (** [WithTimeout] deadlines that expired. *)
  mutable masked_sections : int;
      (** Times async delivery was masked (bracket acquire/release,
          explicit [Mask]). *)
  mutable heap_overflows : int;
      (** [HeapOverflow] raises from a configured heap limit. *)
  mutable stack_overflows : int;
      (** [StackOverflow] raises from a configured stack limit. *)
  mutable env_lookups : int;
      (** Runtime string-keyed map lookups. The slot-compiled machine
          ({!Stg}) must keep this at exactly 0 — only the name-based
          reference machine ({!Stg_ref}) pays it, once per variable
          occurrence, let binding and case binder. *)
  mutable slot_reads : int;
      (** Array-environment slot reads by the slot-compiled machine —
          the pre-resolved counterpart of [env_lookups]. *)
  mutable throwtos_delivered : int;
      (** Thread-targeted exceptions ([throwTo]/[killThread], or a
          seeded kill schedule) that reached their target thread. Bench
          Table K asserts this stays 0 — at zero cost — when no thread
          ever throws. *)
  mutable blocked_recoveries : int;
      (** Irrecoverably blocked threads woken exceptionally with
          [BlockedIndefinitely] instead of deadlocking the program. *)
  mutable bc_dispatches : int;
      (** Instruction dispatches by the flat bytecode backend
          ({!Bytecode}); every other machine reports exactly 0. *)
  mutable ic_hits : int;
      (** Case-site inline-cache hits on constructor tag dispatch
          (bytecode backend only; the fast path skipped the alternative
          table walk). *)
  mutable ic_misses : int;
      (** Constructor scrutinees that fell back to the alternative table
          walk (cache empty or a different tag/arity; the walk refills
          the cache on a constructor match). *)
}

val create : unit -> t
val reset : t -> unit

val add : t -> t -> unit
(** [add acc t] accumulates [t]'s counters into [acc] field-wise
    ([max_stack] takes the max). Lets the serve daemon expose machine
    totals across requests whose per-request machines are long gone. *)

val fields : t -> (string * int) list
(** All counters as (name, value), in declaration order. *)

val pp : t Fmt.t

val pp_json : t Fmt.t
(** One-line JSON object, for the serve [stats] verb and bench tables. *)
