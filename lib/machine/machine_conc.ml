open Lang.Syntax
module Exn = Lang.Exn
module R = Lang.Resolve

type outcome =
  | Done of Semantics.Sem_value.deep
  | Uncaught of Exn.t
  | Deadlock
  | Diverged
  | Stuck of string

type result = {
  output : string;
  outcome : outcome;
  threads_spawned : int;
  transitions : int;
  stats : Stats.t;
}

let pp_outcome ppf = function
  | Done d -> Fmt.pf ppf "Done %a" Semantics.Sem_value.pp_deep d
  | Uncaught e -> Fmt.pf ppf "Uncaught %a" Exn.pp e
  | Deadlock -> Fmt.string ppf "Deadlock"
  | Diverged -> Fmt.string ppf "Diverged"
  | Stuck msg -> Fmt.pf ppf "Stuck %S" msg

(* Per-thread IO continuation frames; see {!Machine_io}. *)
type frame =
  | F_k of Stg.addr
  | F_bracket of Stg.addr * Stg.addr
  | F_release of Stg.addr
  | F_onexn of Stg.addr
  | F_mask_pop
  | F_unmask_pop
  | F_timeout of int  (** deadline in scheduler transitions *)
  | F_retry of Stg.addr * int * int
  | F_rethrow of Exn.t
  | F_restore of Stg.addr
  | F_catch
      (** [getException] on an IO action (GHC's [try]): a normal result
          pops as [OK v], an unwinding exception — including one
          delivered while the thread is blocked — stops here as [Bad]. *)

type thread_state =
  | Runnable of Stg.addr * frame list  (** IO value, continuation frames *)
  | Blocked_take of int * frame list
  | Blocked_put of int * Stg.addr * frame list
  | Sleeping of int * Stg.addr * frame list
      (** Wake at the given transition count ([Retry] backoff). *)
  | Finished

type thread = {
  tid : int;
  mutable state : thread_state;
  mutable mask : int;
  mutable pending_exns : Exn.t list;
      (** Thread-targeted asynchronous exceptions ([throwTo], kill
          schedules), FIFO, delivered only while [mask = 0]. *)
}

type mvar = {
  mutable contents : Stg.addr option;
  mutable take_waiters : int list;
  mutable put_waiters : int list;
}

let run ?config ?trace ?(input = "") ?(async = []) ?(kills = [])
    ?(max_transitions = 100_000) (e : expr) =
  let m = Stg.create ?config ?trace () in
  let tr = Stg.trace m in
  List.iter (fun (k, x) -> Stg.inject_async m ~at_step:k x) async;
  let stats = Stg.stats m in
  let buf = Buffer.create 64 in
  let input_pos = ref 0 in
  let threads : thread list ref = ref [] in
  let next_tid = ref 0 in
  let spawned = ref 0 in
  let transitions = ref 0 in
  let mvars : (int, mvar) Hashtbl.t = Hashtbl.create 8 in
  let next_mvar = ref 0 in
  let main_result : outcome option ref = ref None in

  let kills = ref kills in
  let new_thread addr frames =
    let tid = !next_tid in
    incr next_tid;
    incr spawned;
    let t =
      { tid; state = Runnable (addr, frames); mask = 0; pending_exns = [] }
    in
    threads := !threads @ [ t ];
    t
  in
  let main_thread = new_thread (Stg.alloc m e) [] in

  let ret_value v =
    Stg.alloc_value m (Stg.MCon (R.t_return, [| Stg.alloc_value m v |]))
  in
  let ret_addr a = Stg.alloc_value m (Stg.MCon (R.t_return, [| a |])) in
  let unit_v = Stg.MCon (R.t_unit, [||]) in

  let finish (t : thread) (value_addr : Stg.addr) =
    if t.tid = main_thread.tid then
      main_result := Some (Done (Stg.deep m value_addr));
    t.state <- Finished
  in
  let die (t : thread) exn =
    if t.tid = main_thread.tid then main_result := Some (Uncaught exn);
    t.state <- Finished
  in

  let restore_mask () = Stg.set_mask_depth m (Stg.mask_depth m + 1) in

  (* Normal return through [t]'s frames (machine mask depth is synced to
     [t] while this runs). *)
  let rec pop_t (t : thread) (v : Stg.addr) (stack : frame list) : unit =
    match stack with
    | [] -> finish t v
    | F_k k :: rest -> (
        match Stg.force m k with
        | Ok (Stg.MClo _) -> t.state <- Runnable (Stg.alloc_app m k v, rest)
        | Ok _ -> main_result := Some (Stuck ">>=: not a function")
        | Error (Stg.Fail_exn exn) -> unwind_t t exn rest
        | Error _ -> unwind_t t Exn.Non_termination rest)
    | F_bracket (rel, use) :: rest ->
        stats.Stats.brackets_entered <- stats.Stats.brackets_entered + 1;
        if Obs.on tr then Obs.record tr Obs.Ev_acquire;
        Stg.pop_mask m;
        t.state <-
          Runnable
            (Stg.alloc_app m use v, F_release (Stg.alloc_app m rel v) :: rest)
    | F_release r :: rest ->
        stats.Stats.brackets_released <- stats.Stats.brackets_released + 1;
        if Obs.on tr then Obs.record tr Obs.Ev_release;
        Stg.push_mask m;
        t.state <- Runnable (r, F_mask_pop :: F_restore v :: rest)
    | F_onexn _ :: rest -> pop_t t v rest
    | F_mask_pop :: rest ->
        Stg.pop_mask m;
        pop_t t v rest
    | F_unmask_pop :: rest ->
        restore_mask ();
        pop_t t v rest
    | F_timeout _ :: rest ->
        pop_t t (Stg.alloc_value m (Stg.MCon (R.t_just, [| v |]))) rest
    | F_retry _ :: rest -> pop_t t v rest
    | F_rethrow exn :: rest -> unwind_t t exn rest
    | F_restore saved :: rest -> pop_t t saved rest
    | F_catch :: rest ->
        if Obs.on tr then Obs.record tr (Obs.Ev_catch None);
        pop_t t (Stg.alloc_value m (Stg.MCon (R.t_ok, [| v |]))) rest

  and unwind_t (t : thread) (exn : Exn.t) (stack : frame list) : unit =
    match stack with
    | [] -> die t exn
    | F_k _ :: rest -> unwind_t t exn rest
    | F_bracket _ :: rest ->
        Stg.pop_mask m;
        unwind_t t exn rest
    | F_release r :: rest ->
        stats.Stats.brackets_released <- stats.Stats.brackets_released + 1;
        if Obs.on tr then Obs.record tr Obs.Ev_release;
        Stg.push_mask m;
        t.state <- Runnable (r, F_mask_pop :: F_rethrow exn :: rest)
    | F_onexn h :: rest ->
        Stg.push_mask m;
        t.state <- Runnable (h, F_mask_pop :: F_rethrow exn :: rest)
    | F_mask_pop :: rest ->
        Stg.pop_mask m;
        unwind_t t exn rest
    | F_unmask_pop :: rest ->
        restore_mask ();
        unwind_t t exn rest
    | F_timeout _ :: rest when exn = Exn.Timeout ->
        pop_t t (Stg.alloc_value m (Stg.MCon (R.t_nothing, [||]))) rest
    | F_timeout _ :: rest -> unwind_t t exn rest
    | F_retry (action, attempts, backoff) :: rest ->
        if attempts > 0 then
          t.state <-
            Sleeping
              ( !transitions + backoff,
                action,
                F_retry (action, attempts - 1, 2 * backoff) :: rest )
        else unwind_t t exn rest
    | F_rethrow _ :: rest -> unwind_t t exn rest
    | F_restore _ :: rest -> unwind_t t exn rest
    | F_catch :: rest ->
        if Obs.on tr then Obs.record tr (Obs.Ev_catch (Some exn));
        let ev = Stg.alloc_value m (Stg.exn_to_mvalue m exn) in
        pop_t t (Stg.alloc_value m (Stg.MCon (R.t_bad, [| ev |]))) rest
  in

  let find_thread tid = List.find (fun t -> t.tid = tid) !threads in

  let wake tid =
    let t = find_thread tid in
    match t.state with
    | Blocked_take (mv, frames) -> (
        let s = Hashtbl.find mvars mv in
        match s.contents with
        | Some v ->
            s.contents <- None;
            t.state <- Runnable (ret_addr v, frames)
        | None -> ())
    | Blocked_put (mv, v, frames) -> (
        let s = Hashtbl.find mvars mv in
        match s.contents with
        | None ->
            s.contents <- Some v;
            t.state <- Runnable (ret_value unit_v, frames)
        | Some _ -> ())
    | Runnable _ | Sleeping _ | Finished -> ()
  in

  let pop_waiter waiters =
    match List.rev waiters with
    | [] -> (None, waiters)
    | w :: _ -> (Some w, List.filter (fun x -> x <> w) waiters)
  in

  let find_thread_opt tid = List.find_opt (fun t -> t.tid = tid) !threads in

  (* Forget a thread that is being woken exceptionally: it no longer
     waits on any MVar. *)
  let scrub_waiters tid =
    Hashtbl.iter
      (fun _ s ->
        s.take_waiters <- List.filter (fun x -> x <> tid) s.take_waiters;
        s.put_waiters <- List.filter (fun x -> x <> tid) s.put_waiters)
      mvars
  in

  let take_pending_exn (t : thread) =
    if t.mask > 0 then None
    else
      match t.pending_exns with
      | [] -> None
      | x :: rest ->
          t.pending_exns <- rest;
          Some x
  in

  (* Thread-targeted delivery by unwinding [t]'s frames: releases and
     handlers run, an [F_catch] (getException-on-IO) stops it. The
     machine mask depth is synced to [t] for the duration, since this
     may run from the scheduler, outside [step]. *)
  let deliver_unwind (t : thread) (x : Exn.t) (frames : frame list) =
    stats.Stats.throwtos_delivered <- stats.Stats.throwtos_delivered + 1;
    if Obs.on tr then Obs.record tr (Obs.Ev_kill_delivered (t.tid, x));
    scrub_waiters t.tid;
    Stg.set_mask_depth m t.mask;
    unwind_t t x frames;
    t.mask <- Stg.mask_depth m
  in

  let as_mvar_id v =
    match v with
    | Stg.MCon (c, [| idt |]) when c = R.t_mvar_ref -> (
        match Stg.force m idt with
        | Ok (Stg.MInt id) -> Result.Ok id
        | _ -> Result.Error "corrupt MVar reference")
    | _ -> Result.Error "not an MVar"
  in

  let expired (t : thread) stack =
    t.mask = 0
    && List.exists
         (function F_timeout d -> d <= !transitions | _ -> false)
         stack
  in

  let step_runnable (t : thread) (addr : Stg.addr) (frames : frame list) :
      unit =
    if expired t frames then begin
      stats.Stats.timeouts_fired <- stats.Stats.timeouts_fired + 1;
      if Obs.on tr then Obs.record tr (Obs.Ev_io "timeout fired");
      unwind_t t Exn.Timeout frames
    end
    else
      match Stg.force m addr with
      | Error (Stg.Fail_exn exn) -> unwind_t t exn frames
      | Error Stg.Fail_diverged -> unwind_t t Exn.Non_termination frames
      | Error (Stg.Fail_async _) ->
          main_result := Some (Stuck "async outside getException")
      | Ok (Stg.MCon (c, [| v |])) when c = R.t_return ->
          pop_t t v frames
      | Ok (Stg.MCon (c, [| m1; k |])) when c = R.t_bind ->
          t.state <- Runnable (m1, F_k k :: frames)
      | Ok (Stg.MCon (c, [||])) when c = R.t_get_char ->
          if !input_pos >= String.length input then
            main_result := Some (Stuck "getChar: end of input")
          else begin
            let ch = input.[!input_pos] in
            incr input_pos;
            t.state <- Runnable (ret_value (Stg.MChar ch), frames)
          end
      | Ok (Stg.MCon (c, [| v |])) when c = R.t_put_char -> (
          match Stg.force m v with
          | Ok (Stg.MChar ch) ->
              Buffer.add_char buf ch;
              t.state <- Runnable (ret_value unit_v, frames)
          | Ok _ -> main_result := Some (Stuck "putChar: not a character")
          | Error (Stg.Fail_exn exn) -> unwind_t t exn frames
          | Error _ -> unwind_t t Exn.Non_termination frames)
      | Ok (Stg.MCon (c, [| v |])) when c = R.t_get_exception -> (
          match Stg.force_catch m v with
          | Ok (Stg.MCon (ca, _)) when R.is_io_action_tag ca ->
              (* getException of an IO action (GHC's [try]): perform it
                 under a catch frame; [v] is updated to its WHNF. *)
              t.state <- Runnable (v, F_catch :: frames)
          | Ok _ ->
              t.state <-
                Runnable (ret_value (Stg.MCon (R.t_ok, [| v |])), frames)
          | Error (Stg.Fail_exn exn) | Error (Stg.Fail_async exn) ->
              let ev = Stg.alloc_value m (Stg.exn_to_mvalue m exn) in
              t.state <-
                Runnable (ret_value (Stg.MCon (R.t_bad, [| ev |])), frames)
          | Error Stg.Fail_diverged ->
              let ev =
                Stg.alloc_value m (Stg.exn_to_mvalue m Exn.Non_termination)
              in
              t.state <-
                Runnable (ret_value (Stg.MCon (R.t_bad, [| ev |])), frames))
      | Ok (Stg.MCon (c, [| acq; rel; use |])) when c = R.t_bracket ->
          Stg.push_mask m;
          t.state <- Runnable (acq, F_bracket (rel, use) :: frames)
      | Ok (Stg.MCon (c, [| m1; h |])) when c = R.t_on_exception ->
          t.state <- Runnable (m1, F_onexn h :: frames)
      | Ok (Stg.MCon (c, [| m1 |])) when c = R.t_mask ->
          Stg.push_mask m;
          t.state <- Runnable (m1, F_mask_pop :: frames)
      | Ok (Stg.MCon (c, [| m1 |])) when c = R.t_unmask ->
          Stg.pop_mask m;
          t.state <- Runnable (m1, F_unmask_pop :: frames)
      | Ok (Stg.MCon (c, [| nt; m1 |])) when c = R.t_timeout -> (
          match Stg.force m nt with
          | Ok (Stg.MInt k) ->
              t.state <-
                Runnable (m1, F_timeout (!transitions + max 0 k) :: frames)
          | Ok _ ->
              main_result := Some (Stuck "timeout: budget is not an integer")
          | Error (Stg.Fail_exn exn) -> unwind_t t exn frames
          | Error _ -> unwind_t t Exn.Non_termination frames)
      | Ok (Stg.MCon (c, [| nt; bt; m1 |])) when c = R.t_retry -> (
          match (Stg.force m nt, Stg.force m bt) with
          | Ok (Stg.MInt attempts), Ok (Stg.MInt backoff) ->
              t.state <-
                Runnable
                  (m1, F_retry (m1, max 0 attempts, max 1 backoff) :: frames)
          | Error (Stg.Fail_exn exn), _ | _, Error (Stg.Fail_exn exn) ->
              unwind_t t exn frames
          | Error _, _ | _, Error _ ->
              unwind_t t Exn.Non_termination frames
          | _ ->
              main_result :=
                Some (Stuck "retry: attempts/backoff are not integers"))
      | Ok (Stg.MCon (c, [| m1 |])) when c = R.t_fork ->
          let child = new_thread m1 [] in
          (* The child starts at the parent's mask depth: a thread forked
             inside an acquire is born protected, so an async exception
             cannot slip in before its own mask/bracket. *)
          child.mask <- Stg.mask_depth m;
          if Obs.on tr then
            Obs.record tr
              (Obs.Ev_io (Printf.sprintf "fork thread %d" child.tid));
          t.state <- Runnable (ret_value unit_v, frames)
      | Ok (Stg.MCon (c, [||])) when c = R.t_new_mvar ->
          let id = !next_mvar in
          incr next_mvar;
          Hashtbl.replace mvars id
            { contents = None; take_waiters = []; put_waiters = [] };
          let idv = Stg.alloc_value m (Stg.MInt id) in
          t.state <-
            Runnable (ret_value (Stg.MCon (R.t_mvar_ref, [| idv |])), frames)
      | Ok (Stg.MCon (c, [| r |])) when c = R.t_take_mvar -> (
          match Stg.force m r with
          | Ok rv -> (
              match as_mvar_id rv with
              | Result.Error msg -> unwind_t t (Exn.Type_error msg) frames
              | Result.Ok id -> (
                  let s = Hashtbl.find mvars id in
                  match s.contents with
                  | Some v ->
                      s.contents <- None;
                      let w, rest = pop_waiter s.put_waiters in
                      s.put_waiters <- rest;
                      Option.iter wake w;
                      t.state <- Runnable (ret_addr v, frames)
                  | None ->
                      s.take_waiters <- t.tid :: s.take_waiters;
                      t.state <- Blocked_take (id, frames)))
          | Error (Stg.Fail_exn exn) -> unwind_t t exn frames
          | Error _ -> unwind_t t Exn.Non_termination frames)
      | Ok (Stg.MCon (c, [| r; v |])) when c = R.t_put_mvar -> (
          match Stg.force m r with
          | Ok rv -> (
              match as_mvar_id rv with
              | Result.Error msg -> unwind_t t (Exn.Type_error msg) frames
              | Result.Ok id -> (
                  let s = Hashtbl.find mvars id in
                  match s.contents with
                  | None ->
                      s.contents <- Some v;
                      let w, rest = pop_waiter s.take_waiters in
                      s.take_waiters <- rest;
                      Option.iter wake w;
                      t.state <- Runnable (ret_value unit_v, frames)
                  | Some _ ->
                      s.put_waiters <- t.tid :: s.put_waiters;
                      t.state <- Blocked_put (id, v, frames)))
          | Error (Stg.Fail_exn exn) -> unwind_t t exn frames
          | Error _ -> unwind_t t Exn.Non_termination frames)
      | Ok (Stg.MCon (c, [||])) when c = R.t_my_thread_id ->
          let ida = Stg.alloc_value m (Stg.MInt t.tid) in
          t.state <-
            Runnable (ret_value (Stg.MCon (R.t_thread_id, [| ida |])), frames)
      | Ok (Stg.MCon (c, [| tt; et |])) when c = R.t_throw_to -> (
          match Stg.force m tt with
          | Ok (Stg.MCon (ct, [| nt |])) when ct = R.t_thread_id -> (
              match Stg.force m nt with
              | Ok (Stg.MInt target) -> (
                  match Stg.force m et with
                  | Ok ev -> (
                      match Stg.mvalue_to_exn m ev with
                      | Ok x ->
                          if Obs.on tr then
                            Obs.record tr (Obs.Ev_throwto (t.tid, target, x));
                          if target = t.tid then begin
                            (* throwTo to oneself is synchronous (GHC):
                               deliver regardless of masking. *)
                            stats.Stats.throwtos_delivered <-
                              stats.Stats.throwtos_delivered + 1;
                            if Obs.on tr then
                              Obs.record tr
                                (Obs.Ev_kill_delivered (t.tid, x));
                            unwind_t t x frames
                          end
                          else begin
                            (match find_thread_opt target with
                            | Some tgt -> (
                                match tgt.state with
                                | Finished ->
                                    () (* dead target: send is a no-op *)
                                | _ ->
                                    tgt.pending_exns <-
                                      tgt.pending_exns @ [ x ])
                            | None -> () (* unknown target: no-op *));
                            t.state <- Runnable (ret_value unit_v, frames)
                          end
                      | Error (Stg.Exn_err x) -> unwind_t t x frames
                      | Error Stg.Not_exn ->
                          unwind_t t
                            (Exn.Type_error "throwTo: not an exception")
                            frames)
                  | Error (Stg.Fail_exn exn) -> unwind_t t exn frames
                  | Error _ -> unwind_t t Exn.Non_termination frames)
              | Ok _ ->
                  unwind_t t (Exn.Type_error "throwTo: not a ThreadId") frames
              | Error (Stg.Fail_exn exn) -> unwind_t t exn frames
              | Error _ -> unwind_t t Exn.Non_termination frames)
          | Ok _ ->
              unwind_t t (Exn.Type_error "throwTo: not a ThreadId") frames
          | Error (Stg.Fail_exn exn) -> unwind_t t exn frames
          | Error _ -> unwind_t t Exn.Non_termination frames)
      | Ok _ -> main_result := Some (Stuck "not an IO value")
  in

  let step (t : thread) =
    match t.state with
    | Finished | Blocked_take _ | Blocked_put _ | Sleeping _ -> ()
    | Runnable (addr, frames) ->
        (* Each thread carries its own mask depth; sync it into the
           machine for the duration of the step so force_catch defers
           async delivery while this thread is masked. *)
        Stg.set_mask_depth m t.mask;
        Stg.refuel m;
        (match take_pending_exn t with
        | Some x -> (
            (* A thread-targeted exception is due (thread is unmasked).
               If the interrupted action is a [getException] it is caught
               right here — §5.1 delivery at getException; otherwise
               unwind the thread's frames (releases and handlers run). *)
            match Stg.force m addr with
            | Ok (Stg.MCon (c, [| _ |])) when c = R.t_get_exception ->
                stats.Stats.throwtos_delivered <-
                  stats.Stats.throwtos_delivered + 1;
                if Obs.on tr then begin
                  Obs.record tr (Obs.Ev_kill_delivered (t.tid, x));
                  Obs.record tr (Obs.Ev_catch (Some x))
                end;
                let ev = Stg.alloc_value m (Stg.exn_to_mvalue m x) in
                t.state <-
                  Runnable (ret_value (Stg.MCon (R.t_bad, [| ev |])), frames)
            | _ -> deliver_unwind t x frames)
        | None -> step_runnable t addr frames);
        t.mask <- Stg.mask_depth m
  in

  let wake_sleepers () =
    List.iter
      (fun t ->
        match t.state with
        | Sleeping (until, action, frames) when until <= !transitions ->
            t.state <- Runnable (action, frames)
        | _ -> ())
      !threads
  in

  let rec scheduler () =
    match !main_result with
    | Some o -> o
    | None ->
        if !transitions >= max_transitions then Diverged
        else begin
          wake_sleepers ();
          (* Due kill-schedule entries become pending thread-targeted
             exceptions (the fault-injection axis; sends to finished or
             unknown threads are dropped, like a dead [throwTo]). *)
          let due, later =
            List.partition (fun (k, _, _) -> !transitions >= k) !kills
          in
          kills := later;
          List.iter
            (fun (_, target, x) ->
              match find_thread_opt target with
              | Some tgt -> (
                  match tgt.state with
                  | Finished -> ()
                  | _ -> tgt.pending_exns <- tgt.pending_exns @ [ x ])
              | None -> ())
            due;
          (* Blocked and sleeping threads cannot reach a delivery point on
             their own: interrupt them here (masked threads keep their
             pending exceptions and stay blocked). *)
          List.iter
            (fun t ->
              match t.state with
              | Blocked_take (_, frames)
              | Blocked_put (_, _, frames)
              | Sleeping (_, _, frames) -> (
                  match take_pending_exn t with
                  | Some x -> deliver_unwind t x frames
                  | None -> ())
              | Runnable _ | Finished -> ())
            !threads;
          match !main_result with
          | Some o -> o
          | None ->
              let runnable =
                List.filter
                  (fun t ->
                    match t.state with Runnable _ -> true | _ -> false)
                  !threads
              in
              let sleepers =
                List.filter_map
                  (fun t ->
                    match t.state with
                    | Sleeping (until, _, _) -> Some until
                    | _ -> None)
                  !threads
              in
              if runnable = [] then
                match sleepers with
                | [] -> (
                    (* Irrecoverably blocked. Instead of giving up with a
                       global [Deadlock], deliver [BlockedIndefinitely] to
                       every unmasked blocked thread (tid order) as a
                       catchable imprecise exception and keep scheduling;
                       only when every blocked thread is masked is this a
                       true deadlock. *)
                    let victims =
                      List.filter
                        (fun t ->
                          t.mask = 0
                          &&
                          match t.state with
                          | Blocked_take _ | Blocked_put _ -> true
                          | _ -> false)
                        !threads
                    in
                    match victims with
                    | [] -> Deadlock
                    | _ :: _ ->
                        List.iter
                          (fun t ->
                            let frames =
                              match t.state with
                              | Blocked_take (_, fs) -> fs
                              | Blocked_put (_, _, fs) -> fs
                              | _ -> []
                            in
                            stats.Stats.blocked_recoveries <-
                              stats.Stats.blocked_recoveries + 1;
                            if Obs.on tr then
                              Obs.record tr (Obs.Ev_blocked_recover t.tid);
                            scrub_waiters t.tid;
                            Stg.set_mask_depth m t.mask;
                            unwind_t t Exn.Blocked_indefinitely frames;
                            t.mask <- Stg.mask_depth m)
                          victims;
                        scheduler ())
                | _ :: _ ->
                    (* Only sleepers left: fast-forward to the earliest
                       wake-up. *)
                    transitions := List.fold_left min max_int sleepers;
                    scheduler ()
              else begin
                List.iter
                  (fun t ->
                    incr transitions;
                    step t)
                  runnable;
                scheduler ()
              end
        end
  in
  let outcome = scheduler () in
  {
    output = Buffer.contents buf;
    outcome;
    threads_spawned = !spawned;
    transitions = !transitions;
    stats = Stg.stats m;
  }
