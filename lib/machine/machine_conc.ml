open Lang.Syntax
module Exn = Lang.Exn
module R = Lang.Resolve
module Fifo = Sched.Fifo
module Bitq = Sched.Bitq
module Heap = Sched.Heap

type outcome =
  | Done of Semantics.Sem_value.deep
  | Uncaught of Exn.t
  | Deadlock
  | Diverged
  | Stuck of string

type result = {
  output : string;
  outcome : outcome;
  threads_spawned : int;
  transitions : int;
  stats : Stats.t;
}

let pp_outcome ppf = function
  | Done d -> Fmt.pf ppf "Done %a" Semantics.Sem_value.pp_deep d
  | Uncaught e -> Fmt.pf ppf "Uncaught %a" Exn.pp e
  | Deadlock -> Fmt.string ppf "Deadlock"
  | Diverged -> Fmt.string ppf "Diverged"
  | Stuck msg -> Fmt.pf ppf "Stuck %S" msg

(* Per-thread IO continuation frames; see {!Machine_io}. *)
type frame =
  | F_k of Stg.addr
  | F_bracket of Stg.addr * Stg.addr
  | F_release of Stg.addr
  | F_onexn of Stg.addr
  | F_mask_pop
  | F_unmask_pop
  | F_timeout of int  (** deadline in scheduler transitions *)
  | F_retry of Stg.addr * int * int
  | F_rethrow of Exn.t
  | F_restore of Stg.addr
  | F_catch
      (** [getException] on an IO action (GHC's [try]): a normal result
          pops as [OK v], an unwinding exception — including one
          delivered while the thread is blocked — stops here as [Bad]. *)

type thread_state =
  | Runnable of Stg.addr * frame list  (** IO value, continuation frames *)
  | Blocked_take of int * frame list
  | Blocked_put of int * Stg.addr * frame list
  | Blocked_read of int * frame list  (** channel, frames *)
  | Blocked_write of int * Stg.addr * frame list
      (** channel, value to deposit, frames *)
  | Sleeping of int * Stg.addr * frame list
      (** Wake at the given transition count ([Retry] backoff). *)
  | Finished

type thread = {
  tid : int;
  mutable state : thread_state;
  mutable mask : int;
  mutable pending_exns : Exn.t list;
      (** Thread-targeted asynchronous exceptions ([throwTo], kill
          schedules), FIFO, delivered only while [mask = 0] (channel
          blocking is interruptible regardless of mask). *)
  mutable stamp : int;
      (** Round in which the thread last became runnable; the stepping
          cursor skips current-round stamps, reproducing the seed's
          snapshot-per-round schedule. See {!Semantics.Conc}. *)
  mutable blocked_on : (int Fifo.t * int Fifo.node) option;
      (** The incrementally maintained blocked-on edge. *)
}

type mvar = {
  mutable contents : Stg.addr option;
  take_waiters : int Fifo.t;
  put_waiters : int Fifo.t;
}

(* A bounded channel; see {!Semantics.Conc} for the invariants. *)
type chan = {
  cap : int;
  buf : Stg.addr Queue.t;
  readers : int Fifo.t;
  writers : int Fifo.t;
}

let debug_default () = Sys.getenv_opt "IMPEXN_SCHED_DEBUG" <> None

let run ?config ?trace ?(input = "") ?(async = []) ?(kills = [])
    ?(check_invariants = debug_default ()) ?(max_transitions = 100_000)
    (e : expr) =
  let m = Stg.create ?config ?trace () in
  let tr = Stg.trace m in
  List.iter (fun (k, x) -> Stg.inject_async m ~at_step:k x) async;
  let stats = Stg.stats m in
  let buf = Buffer.create 64 in
  let input_pos = ref 0 in
  let threads : (int, thread) Hashtbl.t = Hashtbl.create 64 in
  let next_tid = ref 0 in
  let spawned = ref 0 in
  let transitions = ref 0 in
  let round = ref 0 in
  let mvars : (int, mvar) Hashtbl.t = Hashtbl.create 8 in
  let next_mvar = ref 0 in
  let chans : (int, chan) Hashtbl.t = Hashtbl.create 8 in
  let next_chan = ref 0 in
  let main_result : outcome option ref = ref None in

  (* The scheduler indices; see {!Semantics.Conc} for the discipline. *)
  let runq = Bitq.create () in
  let blockedq = Bitq.create () in
  let signaled = Bitq.create () in
  let sleep_heap = Heap.create () in
  let n_sleeping = ref 0 in

  let find_thread tid = Hashtbl.find threads tid in
  let find_thread_opt tid = Hashtbl.find_opt threads tid in

  let set_state (t : thread) (st : thread_state) =
    (match t.state with
    | Runnable _ -> Bitq.remove runq t.tid
    | Blocked_take _ | Blocked_put _ | Blocked_read _ | Blocked_write _ ->
        Bitq.remove blockedq t.tid;
        (match t.blocked_on with
        | Some (q, n) -> Fifo.remove q n
        | None -> ());
        t.blocked_on <- None
    | Sleeping _ -> decr n_sleeping
    | Finished -> ());
    t.state <- st;
    match st with
    | Runnable _ ->
        Bitq.add runq t.tid;
        t.stamp <- !round
    | Blocked_take _ | Blocked_put _ | Blocked_read _ | Blocked_write _ ->
        Bitq.add blockedq t.tid;
        if t.pending_exns <> [] then Bitq.add signaled t.tid
    | Sleeping (until, _, _) ->
        incr n_sleeping;
        Heap.push sleep_heap until t.tid;
        if t.pending_exns <> [] then Bitq.add signaled t.tid
    | Finished -> ()
  in

  let kills = ref kills in
  let new_thread addr frames =
    let tid = !next_tid in
    incr next_tid;
    incr spawned;
    let t =
      {
        tid;
        state = Finished;
        mask = 0;
        pending_exns = [];
        stamp = 0;
        blocked_on = None;
      }
    in
    Hashtbl.replace threads tid t;
    set_state t (Runnable (addr, frames));
    t
  in
  let main_thread = new_thread (Stg.alloc m e) [] in

  let ret_value v =
    Stg.alloc_value m (Stg.MCon (R.t_return, [| Stg.alloc_value m v |]))
  in
  let ret_addr a = Stg.alloc_value m (Stg.MCon (R.t_return, [| a |])) in
  let unit_v = Stg.MCon (R.t_unit, [||]) in

  let finish (t : thread) (value_addr : Stg.addr) =
    if t.tid = main_thread.tid then
      main_result := Some (Done (Stg.deep m value_addr));
    set_state t Finished
  in
  let die (t : thread) exn =
    if t.tid = main_thread.tid then main_result := Some (Uncaught exn);
    set_state t Finished
  in

  let restore_mask () = Stg.set_mask_depth m (Stg.mask_depth m + 1) in

  (* Normal return through [t]'s frames (machine mask depth is synced to
     [t] while this runs). *)
  let rec pop_t (t : thread) (v : Stg.addr) (stack : frame list) : unit =
    match stack with
    | [] -> finish t v
    | F_k k :: rest -> (
        match Stg.force m k with
        | Ok (Stg.MClo _) ->
            set_state t (Runnable (Stg.alloc_app m k v, rest))
        | Ok _ -> main_result := Some (Stuck ">>=: not a function")
        | Error (Stg.Fail_exn exn) -> unwind_t t exn rest
        | Error _ -> unwind_t t Exn.Non_termination rest)
    | F_bracket (rel, use) :: rest ->
        stats.Stats.brackets_entered <- stats.Stats.brackets_entered + 1;
        if Obs.on tr then Obs.record tr Obs.Ev_acquire;
        Stg.pop_mask m;
        set_state t
          (Runnable
             (Stg.alloc_app m use v, F_release (Stg.alloc_app m rel v) :: rest))
    | F_release r :: rest ->
        stats.Stats.brackets_released <- stats.Stats.brackets_released + 1;
        if Obs.on tr then Obs.record tr Obs.Ev_release;
        Stg.push_mask m;
        set_state t (Runnable (r, F_mask_pop :: F_restore v :: rest))
    | F_onexn _ :: rest -> pop_t t v rest
    | F_mask_pop :: rest ->
        Stg.pop_mask m;
        pop_t t v rest
    | F_unmask_pop :: rest ->
        restore_mask ();
        pop_t t v rest
    | F_timeout _ :: rest ->
        pop_t t (Stg.alloc_value m (Stg.MCon (R.t_just, [| v |]))) rest
    | F_retry _ :: rest -> pop_t t v rest
    | F_rethrow exn :: rest -> unwind_t t exn rest
    | F_restore saved :: rest -> pop_t t saved rest
    | F_catch :: rest ->
        if Obs.on tr then Obs.record tr (Obs.Ev_catch None);
        pop_t t (Stg.alloc_value m (Stg.MCon (R.t_ok, [| v |]))) rest

  and unwind_t (t : thread) (exn : Exn.t) (stack : frame list) : unit =
    match stack with
    | [] -> die t exn
    | F_k _ :: rest -> unwind_t t exn rest
    | F_bracket _ :: rest ->
        Stg.pop_mask m;
        unwind_t t exn rest
    | F_release r :: rest ->
        stats.Stats.brackets_released <- stats.Stats.brackets_released + 1;
        if Obs.on tr then Obs.record tr Obs.Ev_release;
        Stg.push_mask m;
        set_state t (Runnable (r, F_mask_pop :: F_rethrow exn :: rest))
    | F_onexn h :: rest ->
        Stg.push_mask m;
        set_state t (Runnable (h, F_mask_pop :: F_rethrow exn :: rest))
    | F_mask_pop :: rest ->
        Stg.pop_mask m;
        unwind_t t exn rest
    | F_unmask_pop :: rest ->
        restore_mask ();
        unwind_t t exn rest
    | F_timeout _ :: rest when exn = Exn.Timeout ->
        pop_t t (Stg.alloc_value m (Stg.MCon (R.t_nothing, [||]))) rest
    | F_timeout _ :: rest -> unwind_t t exn rest
    | F_retry (action, attempts, backoff) :: rest ->
        if attempts > 0 then
          set_state t
            (Sleeping
               ( !transitions + backoff,
                 action,
                 F_retry (action, attempts - 1, 2 * backoff) :: rest ))
        else unwind_t t exn rest
    | F_rethrow _ :: rest -> unwind_t t exn rest
    | F_restore _ :: rest -> unwind_t t exn rest
    | F_catch :: rest ->
        if Obs.on tr then Obs.record tr (Obs.Ev_catch (Some exn));
        let ev = Stg.alloc_value m (Stg.exn_to_mvalue m exn) in
        pop_t t (Stg.alloc_value m (Stg.MCon (R.t_bad, [| ev |]))) rest
  in

  (* A normal (value-carrying) wake of an MVar waiter: the caller has
     already popped [tid] from the waiter queue. *)
  let wake tid =
    let t = find_thread tid in
    match t.state with
    | Blocked_take (mv, frames) -> (
        let s = Hashtbl.find mvars mv in
        match s.contents with
        | Some v ->
            s.contents <- None;
            set_state t (Runnable (ret_addr v, frames))
        | None -> ())
    | Blocked_put (mv, v, frames) -> (
        let s = Hashtbl.find mvars mv in
        match s.contents with
        | None ->
            s.contents <- Some v;
            set_state t (Runnable (ret_value unit_v, frames))
        | Some _ -> ())
    | Runnable _ | Blocked_read _ | Blocked_write _ | Sleeping _ | Finished
      ->
        ()
  in

  (* Channel wakes; the invariants guarantee the preconditions (see
     {!Semantics.Conc}). *)
  let wake_reader tid =
    let t = find_thread tid in
    match t.state with
    | Blocked_read (id, frames) ->
        let c = Hashtbl.find chans id in
        let v = Queue.pop c.buf in
        set_state t (Runnable (ret_addr v, frames))
    | _ -> ()
  in
  let wake_writer tid =
    let t = find_thread tid in
    match t.state with
    | Blocked_write (id, v, frames) ->
        let c = Hashtbl.find chans id in
        Queue.push v c.buf;
        set_state t (Runnable (ret_value unit_v, frames))
    | _ -> ()
  in

  let take_pending_exn (t : thread) =
    if t.mask > 0 then None
    else
      match t.pending_exns with
      | [] -> None
      | x :: rest ->
          t.pending_exns <- rest;
          Some x
  in

  (* Channel blocking is interruptible regardless of mask (PLDI'01). *)
  let take_pending_exn_interruptible (t : thread) =
    match t.pending_exns with
    | [] -> None
    | x :: rest ->
        t.pending_exns <- rest;
        Some x
  in

  (* Thread-targeted delivery by unwinding [t]'s frames: releases and
     handlers run, an [F_catch] (getException-on-IO) stops it. The
     machine mask depth is synced to [t] for the duration, since this
     may run from the scheduler, outside [step]; the blocked-on edge is
     detached by [set_state] when the unwind leaves the blocked state. *)
  let deliver_unwind (t : thread) (x : Exn.t) (frames : frame list) =
    stats.Stats.throwtos_delivered <- stats.Stats.throwtos_delivered + 1;
    if Obs.on tr then Obs.record tr (Obs.Ev_kill_delivered (t.tid, x));
    Stg.set_mask_depth m t.mask;
    unwind_t t x frames;
    t.mask <- Stg.mask_depth m
  in

  (* Queue a thread-targeted exception and flag the target for
     round-start delivery if it cannot reach a delivery point itself. *)
  let enqueue_pending (target : int) (x : Exn.t) =
    match find_thread_opt target with
    | None -> () (* unknown target: no-op *)
    | Some tgt -> (
        match tgt.state with
        | Finished -> () (* dead target: send is a no-op *)
        | Runnable _ -> tgt.pending_exns <- tgt.pending_exns @ [ x ]
        | Blocked_take _ | Blocked_put _ | Blocked_read _ | Blocked_write _
        | Sleeping _ ->
            tgt.pending_exns <- tgt.pending_exns @ [ x ];
            Bitq.add signaled tgt.tid)
  in

  let as_mvar_id v =
    match v with
    | Stg.MCon (c, [| idt |]) when c = R.t_mvar_ref -> (
        match Stg.force m idt with
        | Ok (Stg.MInt id) -> Result.Ok id
        | _ -> Result.Error "corrupt MVar reference")
    | _ -> Result.Error "not an MVar"
  in

  let as_chan_id v =
    match v with
    | Stg.MCon (c, [| idt |]) when c = R.t_chan_ref -> (
        match Stg.force m idt with
        | Ok (Stg.MInt id) -> Result.Ok id
        | _ -> Result.Error "corrupt channel reference")
    | _ -> Result.Error "not a channel"
  in

  let expired (t : thread) stack =
    t.mask = 0
    && List.exists
         (function F_timeout d -> d <= !transitions | _ -> false)
         stack
  in

  let step_runnable (t : thread) (addr : Stg.addr) (frames : frame list) :
      unit =
    if expired t frames then begin
      stats.Stats.timeouts_fired <- stats.Stats.timeouts_fired + 1;
      if Obs.on tr then Obs.record tr (Obs.Ev_io "timeout fired");
      unwind_t t Exn.Timeout frames
    end
    else
      match Stg.force m addr with
      | Error (Stg.Fail_exn exn) -> unwind_t t exn frames
      | Error Stg.Fail_diverged -> unwind_t t Exn.Non_termination frames
      | Error (Stg.Fail_async _) ->
          main_result := Some (Stuck "async outside getException")
      | Ok (Stg.MCon (c, [| v |])) when c = R.t_return ->
          pop_t t v frames
      | Ok (Stg.MCon (c, [| m1; k |])) when c = R.t_bind ->
          set_state t (Runnable (m1, F_k k :: frames))
      | Ok (Stg.MCon (c, [||])) when c = R.t_get_char ->
          if !input_pos >= String.length input then
            main_result := Some (Stuck "getChar: end of input")
          else begin
            let ch = input.[!input_pos] in
            incr input_pos;
            set_state t (Runnable (ret_value (Stg.MChar ch), frames))
          end
      | Ok (Stg.MCon (c, [| v |])) when c = R.t_put_char -> (
          match Stg.force m v with
          | Ok (Stg.MChar ch) ->
              Buffer.add_char buf ch;
              set_state t (Runnable (ret_value unit_v, frames))
          | Ok _ -> main_result := Some (Stuck "putChar: not a character")
          | Error (Stg.Fail_exn exn) -> unwind_t t exn frames
          | Error _ -> unwind_t t Exn.Non_termination frames)
      | Ok (Stg.MCon (c, [| v |])) when c = R.t_get_exception -> (
          match Stg.force_catch m v with
          | Ok (Stg.MCon (ca, _)) when R.is_io_action_tag ca ->
              (* getException of an IO action (GHC's [try]): perform it
                 under a catch frame; [v] is updated to its WHNF. *)
              set_state t (Runnable (v, F_catch :: frames))
          | Ok _ ->
              set_state t
                (Runnable (ret_value (Stg.MCon (R.t_ok, [| v |])), frames))
          | Error (Stg.Fail_exn exn) | Error (Stg.Fail_async exn) ->
              let ev = Stg.alloc_value m (Stg.exn_to_mvalue m exn) in
              set_state t
                (Runnable (ret_value (Stg.MCon (R.t_bad, [| ev |])), frames))
          | Error Stg.Fail_diverged ->
              let ev =
                Stg.alloc_value m (Stg.exn_to_mvalue m Exn.Non_termination)
              in
              set_state t
                (Runnable (ret_value (Stg.MCon (R.t_bad, [| ev |])), frames)))
      | Ok (Stg.MCon (c, [| v |])) when c = R.t_evaluate -> (
          (* evaluate e: force the argument at exactly this point in the
             thread's IO sequence (see Machine_io). *)
          match Stg.force m v with
          | Ok value ->
              let va = Stg.alloc_value m value in
              set_state t (Runnable (ret_addr va, frames))
          | Error (Stg.Fail_exn exn) -> unwind_t t exn frames
          | Error Stg.Fail_diverged -> unwind_t t Exn.Non_termination frames
          | Error (Stg.Fail_async _) ->
              main_result := Some (Stuck "async outside getException"))
      | Ok (Stg.MCon (c, [| acq; rel; use |])) when c = R.t_bracket ->
          Stg.push_mask m;
          set_state t (Runnable (acq, F_bracket (rel, use) :: frames))
      | Ok (Stg.MCon (c, [| m1; h |])) when c = R.t_on_exception ->
          set_state t (Runnable (m1, F_onexn h :: frames))
      | Ok (Stg.MCon (c, [| m1 |])) when c = R.t_mask ->
          Stg.push_mask m;
          set_state t (Runnable (m1, F_mask_pop :: frames))
      | Ok (Stg.MCon (c, [| m1 |])) when c = R.t_unmask ->
          Stg.pop_mask m;
          set_state t (Runnable (m1, F_unmask_pop :: frames))
      | Ok (Stg.MCon (c, [| nt; m1 |])) when c = R.t_timeout -> (
          match Stg.force m nt with
          | Ok (Stg.MInt k) ->
              set_state t
                (Runnable (m1, F_timeout (!transitions + max 0 k) :: frames))
          | Ok _ ->
              main_result := Some (Stuck "timeout: budget is not an integer")
          | Error (Stg.Fail_exn exn) -> unwind_t t exn frames
          | Error _ -> unwind_t t Exn.Non_termination frames)
      | Ok (Stg.MCon (c, [| nt; bt; m1 |])) when c = R.t_retry -> (
          match (Stg.force m nt, Stg.force m bt) with
          | Ok (Stg.MInt attempts), Ok (Stg.MInt backoff) ->
              set_state t
                (Runnable
                   (m1, F_retry (m1, max 0 attempts, max 1 backoff) :: frames))
          | Error (Stg.Fail_exn exn), _ | _, Error (Stg.Fail_exn exn) ->
              unwind_t t exn frames
          | Error _, _ | _, Error _ ->
              unwind_t t Exn.Non_termination frames
          | _ ->
              main_result :=
                Some (Stuck "retry: attempts/backoff are not integers"))
      | Ok (Stg.MCon (c, [| m1 |])) when c = R.t_fork ->
          let child = new_thread m1 [] in
          (* The child starts at the parent's mask depth: a thread forked
             inside an acquire is born protected, so an async exception
             cannot slip in before its own mask/bracket. *)
          child.mask <- Stg.mask_depth m;
          if Obs.on tr then
            Obs.record tr
              (Obs.Ev_io (Printf.sprintf "fork thread %d" child.tid));
          set_state t (Runnable (ret_value unit_v, frames))
      | Ok (Stg.MCon (c, [||])) when c = R.t_new_mvar ->
          let id = !next_mvar in
          incr next_mvar;
          Hashtbl.replace mvars id
            {
              contents = None;
              take_waiters = Fifo.create ();
              put_waiters = Fifo.create ();
            };
          let idv = Stg.alloc_value m (Stg.MInt id) in
          set_state t
            (Runnable (ret_value (Stg.MCon (R.t_mvar_ref, [| idv |])), frames))
      | Ok (Stg.MCon (c, [| r |])) when c = R.t_take_mvar -> (
          match Stg.force m r with
          | Ok rv -> (
              match as_mvar_id rv with
              | Result.Error msg -> unwind_t t (Exn.Type_error msg) frames
              | Result.Ok id -> (
                  let s = Hashtbl.find mvars id in
                  match s.contents with
                  | Some v ->
                      s.contents <- None;
                      (match Fifo.pop_head s.put_waiters with
                      | Some w -> wake w
                      | None -> ());
                      set_state t (Runnable (ret_addr v, frames))
                  | None ->
                      set_state t (Blocked_take (id, frames));
                      t.blocked_on <-
                        Some
                          (s.take_waiters, Fifo.push_tail s.take_waiters t.tid)))
          | Error (Stg.Fail_exn exn) -> unwind_t t exn frames
          | Error _ -> unwind_t t Exn.Non_termination frames)
      | Ok (Stg.MCon (c, [| r; v |])) when c = R.t_put_mvar -> (
          match Stg.force m r with
          | Ok rv -> (
              match as_mvar_id rv with
              | Result.Error msg -> unwind_t t (Exn.Type_error msg) frames
              | Result.Ok id -> (
                  let s = Hashtbl.find mvars id in
                  match s.contents with
                  | None ->
                      s.contents <- Some v;
                      (match Fifo.pop_head s.take_waiters with
                      | Some w -> wake w
                      | None -> ());
                      set_state t (Runnable (ret_value unit_v, frames))
                  | Some _ ->
                      set_state t (Blocked_put (id, v, frames));
                      t.blocked_on <-
                        Some
                          (s.put_waiters, Fifo.push_tail s.put_waiters t.tid)))
          | Error (Stg.Fail_exn exn) -> unwind_t t exn frames
          | Error _ -> unwind_t t Exn.Non_termination frames)
      | Ok (Stg.MCon (c, [| nt |])) when c = R.t_new_chan -> (
          match Stg.force m nt with
          | Ok (Stg.MInt k) ->
              let id = !next_chan in
              incr next_chan;
              Hashtbl.replace chans id
                {
                  cap = max 1 k;
                  buf = Queue.create ();
                  readers = Fifo.create ();
                  writers = Fifo.create ();
                };
              let idv = Stg.alloc_value m (Stg.MInt id) in
              set_state t
                (Runnable
                   (ret_value (Stg.MCon (R.t_chan_ref, [| idv |])), frames))
          | Ok _ ->
              main_result :=
                Some (Stuck "newChan: capacity is not an integer")
          | Error (Stg.Fail_exn exn) -> unwind_t t exn frames
          | Error _ -> unwind_t t Exn.Non_termination frames)
      | Ok (Stg.MCon (c, [| r |])) when c = R.t_read_chan -> (
          match Stg.force m r with
          | Ok rv -> (
              match as_chan_id rv with
              | Result.Error msg -> unwind_t t (Exn.Type_error msg) frames
              | Result.Ok id ->
                  let ch = Hashtbl.find chans id in
                  if not (Queue.is_empty ch.buf) then begin
                    let v = Queue.pop ch.buf in
                    (match Fifo.pop_head ch.writers with
                    | Some w -> wake_writer w
                    | None -> ());
                    set_state t (Runnable (ret_addr v, frames))
                  end
                  else begin
                    set_state t (Blocked_read (id, frames));
                    t.blocked_on <-
                      Some (ch.readers, Fifo.push_tail ch.readers t.tid)
                  end)
          | Error (Stg.Fail_exn exn) -> unwind_t t exn frames
          | Error _ -> unwind_t t Exn.Non_termination frames)
      | Ok (Stg.MCon (c, [| r; v |])) when c = R.t_write_chan -> (
          match Stg.force m r with
          | Ok rv -> (
              match as_chan_id rv with
              | Result.Error msg -> unwind_t t (Exn.Type_error msg) frames
              | Result.Ok id ->
                  let ch = Hashtbl.find chans id in
                  if Queue.length ch.buf < ch.cap then begin
                    Queue.push v ch.buf;
                    (match Fifo.pop_head ch.readers with
                    | Some w -> wake_reader w
                    | None -> ());
                    set_state t (Runnable (ret_value unit_v, frames))
                  end
                  else begin
                    set_state t (Blocked_write (id, v, frames));
                    t.blocked_on <-
                      Some (ch.writers, Fifo.push_tail ch.writers t.tid)
                  end)
          | Error (Stg.Fail_exn exn) -> unwind_t t exn frames
          | Error _ -> unwind_t t Exn.Non_termination frames)
      | Ok (Stg.MCon (c, [||])) when c = R.t_my_thread_id ->
          let ida = Stg.alloc_value m (Stg.MInt t.tid) in
          set_state t
            (Runnable (ret_value (Stg.MCon (R.t_thread_id, [| ida |])), frames))
      | Ok (Stg.MCon (c, [| tt; et |])) when c = R.t_throw_to -> (
          match Stg.force m tt with
          | Ok (Stg.MCon (ct, [| nt |])) when ct = R.t_thread_id -> (
              match Stg.force m nt with
              | Ok (Stg.MInt target) -> (
                  match Stg.force m et with
                  | Ok ev -> (
                      match Stg.mvalue_to_exn m ev with
                      | Ok x ->
                          if Obs.on tr then
                            Obs.record tr (Obs.Ev_throwto (t.tid, target, x));
                          if target = t.tid then begin
                            (* throwTo to oneself is synchronous (GHC):
                               deliver regardless of masking. *)
                            stats.Stats.throwtos_delivered <-
                              stats.Stats.throwtos_delivered + 1;
                            if Obs.on tr then
                              Obs.record tr
                                (Obs.Ev_kill_delivered (t.tid, x));
                            unwind_t t x frames
                          end
                          else begin
                            enqueue_pending target x;
                            set_state t (Runnable (ret_value unit_v, frames))
                          end
                      | Error (Stg.Exn_err x) -> unwind_t t x frames
                      | Error Stg.Not_exn ->
                          unwind_t t
                            (Exn.Type_error "throwTo: not an exception")
                            frames)
                  | Error (Stg.Fail_exn exn) -> unwind_t t exn frames
                  | Error _ -> unwind_t t Exn.Non_termination frames)
              | Ok _ ->
                  unwind_t t (Exn.Type_error "throwTo: not a ThreadId") frames
              | Error (Stg.Fail_exn exn) -> unwind_t t exn frames
              | Error _ -> unwind_t t Exn.Non_termination frames)
          | Ok _ ->
              unwind_t t (Exn.Type_error "throwTo: not a ThreadId") frames
          | Error (Stg.Fail_exn exn) -> unwind_t t exn frames
          | Error _ -> unwind_t t Exn.Non_termination frames)
      | Ok _ -> main_result := Some (Stuck "not an IO value")
  in

  let step (t : thread) =
    match t.state with
    | Finished | Blocked_take _ | Blocked_put _ | Blocked_read _
    | Blocked_write _ | Sleeping _ ->
        ()
    | Runnable (addr, frames) ->
        (* Each thread carries its own mask depth; sync it into the
           machine for the duration of the step so force_catch defers
           async delivery while this thread is masked. *)
        Stg.set_mask_depth m t.mask;
        Stg.refuel m;
        (match take_pending_exn t with
        | Some x -> (
            (* A thread-targeted exception is due (thread is unmasked).
               If the interrupted action is a [getException] it is caught
               right here — §5.1 delivery at getException; otherwise
               unwind the thread's frames (releases and handlers run). *)
            match Stg.force m addr with
            | Ok (Stg.MCon (c, [| _ |])) when c = R.t_get_exception ->
                stats.Stats.throwtos_delivered <-
                  stats.Stats.throwtos_delivered + 1;
                if Obs.on tr then begin
                  Obs.record tr (Obs.Ev_kill_delivered (t.tid, x));
                  Obs.record tr (Obs.Ev_catch (Some x))
                end;
                let ev = Stg.alloc_value m (Stg.exn_to_mvalue m x) in
                set_state t
                  (Runnable
                     (ret_value (Stg.MCon (R.t_bad, [| ev |])), frames))
            | _ -> deliver_unwind t x frames)
        | None -> step_runnable t addr frames);
        t.mask <- Stg.mask_depth m
  in

  (* Round-start phase 1: wake due sleepers (lazy heap deletion). *)
  let rec wake_due_sleepers () =
    match Heap.peek sleep_heap with
    | Some (until, tid) when until <= !transitions ->
        ignore (Heap.pop sleep_heap);
        let t = find_thread tid in
        (match t.state with
        | Sleeping (u, action, frames) when u = until ->
            set_state t (Runnable (action, frames))
        | _ -> () (* stale entry *));
        wake_due_sleepers ()
    | _ -> ()
  in

  let rec earliest_sleeper () =
    match Heap.peek sleep_heap with
    | None -> None
    | Some (until, tid) -> (
        match (find_thread tid).state with
        | Sleeping (u, _, _) when u = until -> Some until
        | _ ->
            ignore (Heap.pop sleep_heap);
            earliest_sleeper ())
  in

  (* Round-start phase 3: deliver to flagged blocked/sleeping threads
     (masked MVar waiters and sleepers keep their pending exceptions;
     channel waiters are interruptible regardless of mask). *)
  let drain_signaled () =
    let flagged = Bitq.to_list signaled in
    List.iter
      (fun tid ->
        Bitq.remove signaled tid;
        let t = find_thread tid in
        match t.state with
        | Blocked_take (_, frames)
        | Blocked_put (_, _, frames)
        | Sleeping (_, _, frames) -> (
            match take_pending_exn t with
            | Some x -> deliver_unwind t x frames
            | None -> ())
        | Blocked_read (_, frames) | Blocked_write (_, _, frames) -> (
            match take_pending_exn_interruptible t with
            | Some x -> deliver_unwind t x frames
            | None -> ())
        | Runnable _ | Finished ->
            () (* woke up meanwhile: its own step delivers *))
      flagged
  in

  (* Debug-flag invariant checks; see {!Semantics.Conc}. *)
  let sched_violation msg =
    let extra =
      [
        ("round", string_of_int !round);
        ("transitions", string_of_int !transitions);
        ("threads", string_of_int !spawned);
        ("runnable", string_of_int (Bitq.cardinal runq));
        ("blocked", string_of_int (Bitq.cardinal blockedq));
        ("sleeping", string_of_int !n_sleeping);
      ]
    in
    raise
      (Obs.Machine_invariant
         (Obs.dump ~extra ~note:("scheduler invariant: " ^ msg) tr))
  in
  let check_indices () =
    let sleeping = ref 0 in
    Hashtbl.iter
      (fun tid t ->
        (match t.state with
        | Runnable _ ->
            if not (Bitq.mem runq tid) then
              sched_violation
                (Printf.sprintf "runnable t%d missing from run queue" tid)
        | Blocked_take _ | Blocked_put _ | Blocked_read _ | Blocked_write _
          -> (
            if not (Bitq.mem blockedq tid) then
              sched_violation
                (Printf.sprintf "blocked t%d missing from blocked set" tid);
            match t.blocked_on with
            | None ->
                sched_violation
                  (Printf.sprintf "blocked t%d has no blocked-on edge" tid)
            | Some (_, n) ->
                if not n.Fifo.in_q then
                  sched_violation
                    (Printf.sprintf
                       "blocked t%d's blocked-on edge is detached" tid);
                if n.Fifo.value <> tid then
                  sched_violation
                    (Printf.sprintf
                       "blocked t%d's blocked-on edge names t%d" tid
                       n.Fifo.value))
        | Sleeping _ -> incr sleeping
        | Finished -> ());
        (match t.state with
        | Blocked_take _ | Blocked_put _ | Blocked_read _ | Blocked_write _
          ->
            ()
        | _ ->
            if t.blocked_on <> None then
              sched_violation
                (Printf.sprintf "non-blocked t%d holds a blocked-on edge"
                   tid));
        match t.state with
        | Runnable _ -> ()
        | _ ->
            if Bitq.mem runq tid then
              sched_violation
                (Printf.sprintf "non-runnable t%d in run queue" tid))
      threads;
    if !sleeping <> !n_sleeping then
      sched_violation
        (Printf.sprintf "sleeper count %d but %d threads sleeping"
           !n_sleeping !sleeping);
    Bitq.iter
      (fun tid ->
        match (find_thread tid).state with
        | Runnable _ -> ()
        | _ ->
            sched_violation
              (Printf.sprintf "run queue names non-runnable t%d" tid))
      runq;
    Bitq.iter
      (fun tid ->
        match (find_thread tid).state with
        | Blocked_take _ | Blocked_put _ | Blocked_read _ | Blocked_write _
          ->
            ()
        | _ ->
            sched_violation
              (Printf.sprintf "blocked set names non-blocked t%d" tid))
      blockedq;
    Hashtbl.iter
      (fun id c ->
        if Queue.length c.buf > c.cap then
          sched_violation
            (Printf.sprintf "channel %d holds %d > cap %d" id
               (Queue.length c.buf) c.cap);
        if Fifo.length c.readers > 0 && not (Queue.is_empty c.buf) then
          sched_violation
            (Printf.sprintf "channel %d has readers waiting on data" id);
        if Fifo.length c.writers > 0 && Queue.length c.buf < c.cap then
          sched_violation
            (Printf.sprintf "channel %d has writers waiting on room" id))
      chans
  in

  let rec scheduler () =
    match !main_result with
    | Some o -> o
    | None ->
        if !transitions >= max_transitions then Diverged
        else begin
          wake_due_sleepers ();
          (* Due kill-schedule entries become pending thread-targeted
             exceptions (the fault-injection axis; sends to finished or
             unknown threads are dropped, like a dead [throwTo]). *)
          let due, later =
            List.partition (fun (k, _, _) -> !transitions >= k) !kills
          in
          kills := later;
          List.iter (fun (_, target, x) -> enqueue_pending target x) due;
          drain_signaled ();
          match !main_result with
          | Some o -> o
          | None ->
              if check_invariants then check_indices ();
              if Bitq.is_empty runq then begin
                if !n_sleeping > 0 then begin
                  (* Only sleepers left: fast-forward to the earliest
                     wake-up. *)
                  (match earliest_sleeper () with
                  | Some until -> transitions := until
                  | None -> sched_violation "sleeper heap lost an entry");
                  scheduler ()
                end
                else begin
                  (* Irrecoverably blocked. Deliver [BlockedIndefinitely]
                     to every unmasked blocked thread — and every
                     channel-blocked thread, masked or not — in tid
                     order as a catchable imprecise exception and keep
                     scheduling; only when every blocked thread is a
                     masked MVar waiter is this a true deadlock. *)
                  let victims = ref [] in
                  Bitq.iter
                    (fun tid ->
                      let t = find_thread tid in
                      match t.state with
                      | (Blocked_take _ | Blocked_put _) when t.mask = 0 ->
                          victims := t :: !victims
                      | Blocked_read _ | Blocked_write _ ->
                          victims := t :: !victims
                      | _ -> ())
                    blockedq;
                  match List.rev !victims with
                  | [] -> Deadlock
                  | victims ->
                      List.iter
                        (fun t ->
                          let frames =
                            match t.state with
                            | Blocked_take (_, fs) | Blocked_read (_, fs) ->
                                fs
                            | Blocked_put (_, _, fs)
                            | Blocked_write (_, _, fs) ->
                                fs
                            | _ -> []
                          in
                          stats.Stats.blocked_recoveries <-
                            stats.Stats.blocked_recoveries + 1;
                          if Obs.on tr then
                            Obs.record tr (Obs.Ev_blocked_recover t.tid);
                          Stg.set_mask_depth m t.mask;
                          unwind_t t Exn.Blocked_indefinitely frames;
                          t.mask <- Stg.mask_depth m)
                        victims;
                      scheduler ()
                end
              end
              else begin
                (* The stepping round; see {!Semantics.Conc} for the
                   round-stamp discipline that reproduces the seed's
                   snapshot schedule. *)
                round := !round + 1;
                let rec go i =
                  match Bitq.next_geq runq i with
                  | None -> ()
                  | Some tid ->
                      let t = find_thread tid in
                      if t.stamp <> !round then begin
                        incr transitions;
                        step t
                      end;
                      go (tid + 1)
                in
                go 0;
                scheduler ()
              end
        end
  in
  let outcome = scheduler () in
  {
    output = Buffer.contents buf;
    outcome;
    threads_spawned = !spawned;
    transitions = !transitions;
    stats = Stg.stats m;
  }
