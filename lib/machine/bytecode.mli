(** The flat bytecode backend: {!Lang.Resolve} IR compiled once into a
    contiguous instruction array (int opcodes + inline operand words),
    evaluated by a register-style dispatch loop.

    Where {!Stg} walks a tree-shaped IR and allocates a [code] variant on
    every transition, this machine keeps its state in four registers
    (mode, program counter, environment, accumulator) and advances by
    reading int words out of a frozen code array — no per-dispatch
    allocation, no pointer-chasing through expression nodes. Three
    superinstructions fuse the measured hot transition pairs of the slot
    machine (push-apply + enter a variable, allocate-thunk + bind,
    push-case + force a variable scrutinee), and every case site carries
    a monomorphic inline cache for constructor tag dispatch
    ([Stats.ic_hits]/[Stats.ic_misses]; the table walk is the miss path).

    The machine contract is the slot machine's, transition for
    transition: fuel/heap/stack latches delivered through the ordinary
    trim-the-stack path (heap latch re-armed only by {!gc}), Section
    3.3 thunk poisoning, Section 5.1 resumable pause cells under
    asynchronous unwinding, flight-recorder events and exception
    provenance on every exceptional path, and explicit
    {!Lang.Resolve.context} re-entrancy. The admissibility argument is
    the paper's own: observational equivalence is only demanded modulo
    exception *sets* (Section 4.3), and the six-way differential fuzzer
    holds this backend to the same C13 membership bound as the others. *)

type addr = int

type program
(** A compiled program: frozen code array plus constant pools (strings,
    closure and thunk templates, case sites with their inline caches,
    prim sites, raise labels). Compile once, run on any number of
    machines; sharing is sound because a case site's tag-to-branch
    mapping is static, so its inline cache is valid across machines. *)

val compile : Lang.Resolve.rexpr -> program
(** Compile resolved IR. Compilation is context-free: tags are already
    interned ints, so the resolving context is only needed again at
    runtime (pass it to {!create} as [rctx]). *)

val compile_expr : ?ctx:Lang.Resolve.context -> Lang.Syntax.expr -> program
(** Resolve then compile a closed source expression. *)

val code_words : program -> int
(** Length of the frozen code array, in words (static accounting). *)

type mvalue =
  | MInt of int
  | MChar of char
  | MString of string
  | MCon of int * addr array
      (** Constructor tag interned by {!Lang.Resolve.con_tag}. *)
  | MClo of int * addr array
      (** Closure: index into the program's template pool + captures. *)

type config = Stg.config
(** Shared with the slot machine so embedders configure both backends
    from one record. *)

val default_config : config

type failure = Stg.failure =
  | Fail_exn of Lang.Exn.t
  | Fail_async of Lang.Exn.t
  | Fail_diverged
      (** Re-exported from {!Stg} so drivers dispatch both backends
          through one match. *)

val pp_failure : failure Fmt.t

type t
(** A machine instance: heap + counters + pending asynchronous events,
    bound to one compiled program. *)

val create :
  ?config:config ->
  ?trace:Obs.t ->
  ?rctx:Lang.Resolve.context ->
  program ->
  t

val entry : t -> addr
(** Allocate the program's entry point as a fresh thunk (each call is an
    independent evaluation root). *)

val stats : t -> Stats.t
val heap_size : t -> int
val trace : t -> Obs.t
val origin_of : t -> Lang.Exn.t -> Obs.origin option
val pp_exn_with_origin : t -> Lang.Exn.t Fmt.t

val refuel : t -> unit
val mask_depth : t -> int
val push_mask : t -> unit
val pop_mask : t -> unit
val set_mask_depth : t -> int -> unit

val inject_async : t -> at_step:int -> Lang.Exn.t -> unit
(** Same delivery contract as {!Stg.inject_async}: fires at the first
    dispatch at or after [at_step] while a catch mark is active and the
    mask depth is zero. *)

val clear_async : t -> unit

val force : t -> addr -> (mvalue, failure) result
val force_catch : t -> addr -> (mvalue, failure) result
val deep : ?depth:int -> t -> addr -> Semantics.Sem_value.deep

val gc : t -> roots:addr list -> addr list
(** Copying collection, same contract as {!Stg.gc}: call between runs;
    pause cells and poisoned thunks survive intact; re-arms the heap
    latch when the live heap fits under the limit again. *)

val run_expr :
  ?config:config -> Lang.Syntax.expr -> (mvalue, failure) result * Stats.t
(** One-shot: resolve, compile, evaluate on a fresh machine. *)

val run_deep :
  ?config:config ->
  ?depth:int ->
  Lang.Syntax.expr ->
  Semantics.Sem_value.deep * Stats.t
