type 'a t = {
  mutable data : 'a array;
  mutable len : int;
  dummy : 'a;
}

let create ?(capacity = 1024) ~dummy () =
  { data = Array.make (max capacity 1) dummy; len = 0; dummy }

let length t = t.len

let check t i =
  if i < 0 || i >= t.len then
    invalid_arg (Printf.sprintf "Growarray: index %d out of bounds %d" i t.len)

let get t i =
  check t i;
  t.data.(i)

let set t i v =
  check t i;
  t.data.(i) <- v

let fast_get t i = t.data.(i)
let fast_set t i v = t.data.(i) <- v

let grow t =
  let cap = Array.length t.data in
  let data = Array.make (2 * cap) t.dummy in
  Array.blit t.data 0 data 0 t.len;
  t.data <- data

let push t v =
  if t.len = Array.length t.data then grow t;
  t.data.(t.len) <- v;
  t.len <- t.len + 1;
  t.len - 1
