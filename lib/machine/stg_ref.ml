(* The name-based reference machine: the pre-resolution implementation
   kept verbatim as the executable baseline for the compile-to-slots
   pass in {!Stg}. Environments are string-keyed maps and every variable
   occurrence pays a map lookup, counted in [Stats.env_lookups] — bench
   Table R measures the slot machine against exactly this. Do not add
   features here first; {!Stg} is the machine, this is the yardstick. *)

open Lang.Syntax
module Exn = Lang.Exn
module Env_map = Map.Make (String)

type addr = int

type mvalue =
  | MInt of int
  | MChar of char
  | MString of string
  | MCon of string * addr list
  | MClo of string * expr * env

and env = addr Env_map.t

type cell =
  | Cell_thunk of expr * env
  | Cell_value of mvalue
  | Cell_blackhole
  | Cell_raise of Exn.t * Obs.origin
      (** Thunk poisoned by a synchronous unwinding (Section 3.3); the
          origin of the raise rides along so a later re-entry still
          reports where the exception originally came from. *)
  | Cell_paused of code * frame list
      (** Resumable continuation left by an asynchronous unwinding
          (Section 5.1): code to resume and the stack segment above the
          thunk's update frame (top first). *)
  | Cell_unused

and code = C_eval of expr * env | C_enter of addr | C_ret of mvalue

and frame =
  | F_update of addr
  | F_apply of addr
  | F_case of alt list * env
  | F_prim of Lang.Prim.t * mvalue list * expr list * env
  | F_raise  (** Evaluating the argument of [raise]. *)
  | F_mapexn of addr  (** [mapException]'s function, awaiting a raise. *)
  | F_isexn
  | F_unsafe_catch
      (** Section 6's pure [unsafeGetException]: reify the outcome as an
          ExVal right here, without the IO monad. *)

type config = {
  fuel : int;
  int_bits : int;
  blackhole_nontermination : bool;
  poison_thunks : bool;
  heap_limit : int option;
  stack_limit : int option;
}

let default_config =
  {
    fuel = 2_000_000;
    int_bits = 32;
    blackhole_nontermination = false;
    poison_thunks = true;
    heap_limit = None;
    stack_limit = None;
  }

type t = {
  mutable heap : cell Growarray.t;
  stats : Stats.t;
  cfg : config;
  mutable fuel_left : int;
  mutable async : (int * Exn.t) list;
  mutable mask_depth : int;
  mutable heap_check_armed : bool;
      (* The heap limit fires once, then stays disarmed until a collection
         brings the heap back under the limit: the raise itself cannot
         free memory, so without the latch every subsequent step would
         re-raise before a supervisor could recover. *)
  trace : Obs.t;
  prov : Obs.provenance;
      (* Origin of the most recent raise of each exception constant;
         maintained whether or not the recorder is on (raise paths are
         off the per-step fast path, so this costs nothing per step). *)
}

type failure =
  | Fail_exn of Exn.t
  | Fail_async of Exn.t
  | Fail_diverged

let pp_failure ppf = function
  | Fail_exn e -> Fmt.pf ppf "raise %a" Exn.pp e
  | Fail_async e -> Fmt.pf ppf "async %a" Exn.pp e
  | Fail_diverged -> Fmt.string ppf "diverged"

(* Why a WHNF value could not be read back as an exception constant:
   either it is not an exception at all (the caller chooses the message
   -- [raise] and [mapException] report differently, matching the
   denotational semantics), or interpreting it raised an exception of
   its own (a payload that raises propagates that exception). *)
type to_exn_error = Not_exn | Exn_err of Exn.t

let create ?(config = default_config) ?(trace = Obs.create ()) () =
  {
    heap = Growarray.create ~dummy:Cell_unused ();
    stats = Stats.create ();
    cfg = config;
    fuel_left = config.fuel;
    async = [];
    mask_depth = 0;
    heap_check_armed = true;
    trace;
    prov = Obs.new_provenance ();
  }

let stats m = m.stats
let heap_size m = Growarray.length m.heap
let trace m = m.trace
let origin_of m e = Obs.find_origin m.prov e
let pp_exn_with_origin m = Obs.pp_exn_with m.prov

(* A broken unwind or a return into an empty stack mid-step: the dead
   branches that used to be [assert false]. Fatal, but debuggable — the
   exception carries the flight-recorder dump and a stats snapshot. *)
let invariant_failure (m : t) (msg : string) : 'a =
  let extra =
    [
      ("stats", Fmt.str "%a" Stats.pp m.stats);
      ("heap", Printf.sprintf "%d cells" (Growarray.length m.heap));
      ("mask-depth", string_of_int m.mask_depth);
    ]
  in
  raise
    (Obs.Machine_invariant
       (Obs.dump ~note:("machine invariant violated: " ^ msg) ~extra m.trace))

let refuel m = m.fuel_left <- m.cfg.fuel

let mask_depth m = m.mask_depth

let push_mask m =
  m.mask_depth <- m.mask_depth + 1;
  m.stats.masked_sections <- m.stats.masked_sections + 1;
  if Obs.on m.trace then Obs.record m.trace Obs.Ev_mask_push

let pop_mask m =
  if m.mask_depth > 0 then begin
    m.mask_depth <- m.mask_depth - 1;
    if Obs.on m.trace then Obs.record m.trace Obs.Ev_mask_pop
  end
let set_mask_depth m d = m.mask_depth <- max 0 d

let alloc_cell m cell =
  m.stats.allocations <- m.stats.allocations + 1;
  Growarray.push m.heap cell

let alloc_value m v = alloc_cell m (Cell_value v)

let alloc_in m env e =
  (* Variables are already in the heap: avoid a fresh indirection. *)
  match e with
  | Var x -> (
      m.stats.env_lookups <- m.stats.env_lookups + 1;
      match Env_map.find_opt x env with
      | Some a -> a
      | None -> alloc_cell m (Cell_thunk (e, env)))
  | _ -> alloc_cell m (Cell_thunk (e, env))

let alloc m e = alloc_cell m (Cell_thunk (e, Env_map.empty))

let alloc_app m f x =
  let env = Env_map.add "$f" f (Env_map.add "$x" x Env_map.empty) in
  alloc_cell m (Cell_thunk (App (Var "$f", Var "$x"), env))

let inject_async m ~at_step e = m.async <- m.async @ [ (at_step, e) ]

let exn_to_mvalue m (e : Exn.t) : mvalue =
  let name = Exn.constructor_name e in
  match Exn.payload e with
  | Some (Exn.P_string s) -> MCon (name, [ alloc_value m (MString s) ])
  | Some (Exn.P_int n) -> MCon (name, [ alloc_value m (MInt n) ])
  | None -> MCon (name, [])

exception Machine_stuck of failure

(* A primitive or pattern-match type error inside [run]: caught at the
   loop boundary and re-entered as an ordinary synchronous raise, so it
   unwinds the stack (poisoning thunks, feeding [mapException] and catch
   frames) exactly like any other exception — the denotational semantics
   makes no distinction. *)
exception Prim_type_error of string

(* The machine loop. [catch] marks the bottom of this run's stack as a
   getException catch mark: synchronous raises and asynchronous events
   that unwind all the way down are returned as [Error]. *)
let rec run (m : t) ~(catch : bool) (code0 : code) : (mvalue, failure) result
    =
  let stack : frame list ref = ref [] in
  let depth = ref 0 in
  let code = ref code0 in
  let push f =
    stack := f :: !stack;
    incr depth;
    if !depth > m.stats.max_stack then m.stats.max_stack <- !depth
  in
  let pop_to rest =
    stack := rest;
    decr depth
  in
  let type_error msg = raise (Prim_type_error msg) in

  (* Register the origin of a raise (provenance is always-on: raises are
     off the fast path) and record the event when the recorder is on. *)
  let note_raise label exn =
    let o = Obs.origin ~label ~depth:!depth ~step:m.stats.steps in
    Obs.set_origin m.prov exn o;
    if Obs.on m.trace then Obs.record m.trace (Obs.Ev_raise (exn, o));
    o
  in

  (* Synchronous unwinding: trim to the mark, poisoning update frames
     (Section 3.3). Returns [Some code'] to continue executing, or [None]
     when the stack is fully unwound (the failure reaches the caller). *)
  let rec unwind_sync (o : Obs.origin) (exn : Exn.t) : code option =
    match !stack with
    | [] -> raise (Machine_stuck (Fail_exn exn))
    | f :: rest -> (
        pop_to rest;
        m.stats.frames_trimmed <- m.stats.frames_trimmed + 1;
        match f with
        | F_update a ->
            (* Section 3.3 (footnote 3): the abandoned thunk must be
               overwritten with [raise ex]. The [poison_thunks] ablation
               leaves the black hole behind instead, reproducing the bug
               the paper warns about: re-evaluation then sees a black
               hole, not the exception. *)
            if m.cfg.poison_thunks then begin
              Growarray.set m.heap a (Cell_raise (exn, o));
              m.stats.thunks_poisoned <- m.stats.thunks_poisoned + 1;
              if Obs.on m.trace then
                Obs.record m.trace (Obs.Ev_poison (a, exn))
            end;
            unwind_sync o exn
        | F_isexn ->
            (* unsafeIsException observes the raise and answers True. *)
            Some (C_ret (MCon (c_true, [])))
        | F_unsafe_catch ->
            Some
              (C_ret
                 (MCon (c_bad, [ alloc_value m (exn_to_mvalue m exn) ])))
        | F_mapexn f_addr -> (
            (* Transform the representative exception by applying the
               mapped function in a nested run, then keep unwinding with
               the transformed exception (Section 5.4). *)
            let e_addr = alloc_value m (exn_to_mvalue m exn) in
            let app =
              App (Var "$mapexn_f", Var "$mapexn_e")
            in
            let env =
              Env_map.add "$mapexn_f" f_addr
                (Env_map.add "$mapexn_e" e_addr Env_map.empty)
            in
            let a = alloc_cell m (Cell_thunk (app, env)) in
            match run m ~catch:false (C_enter a) with
            | Ok v -> (
                match mvalue_to_exn m v with
                | Ok exn' -> unwind_sync (note_raise "mapException" exn') exn'
                | Error Not_exn ->
                    (* Matches [Sem_value.exn_of_whnf]: the denotational
                       semantics reports a non-exception uniformly, with
                       no mapException-specific message. *)
                    let exn' = Exn.Type_error "raise: not an exception" in
                    unwind_sync (note_raise "mapException" exn') exn'
                | Error (Exn_err exn') ->
                    unwind_sync (note_raise "mapException" exn') exn')
            | Error (Fail_exn exn') ->
                unwind_sync (note_raise "mapException" exn') exn'
            | Error (Fail_async _ | Fail_diverged) ->
                raise (Machine_stuck Fail_diverged))
        | F_apply _ | F_case _ | F_prim _ | F_raise -> unwind_sync o exn)
  in

  (* A fresh raise at a labelled site, continued as machine code. *)
  let raise_to_code ?(label = "raise") exn =
    match unwind_sync (note_raise label exn) exn with
    | Some c -> c
    | None -> invariant_failure m "unwind_sync returned no continuation"
  in

  (* A poisoned thunk re-entered: replay the raise with its original
     origin intact. *)
  let reraise_to_code o exn =
    Obs.set_origin m.prov exn o;
    if Obs.on m.trace then Obs.record m.trace (Obs.Ev_rethrow (exn, o));
    match unwind_sync o exn with
    | Some c -> c
    | None -> invariant_failure m "unwind_sync returned no continuation"
  in

  (* Asynchronous unwinding (Section 5.1): pause cells instead of poison,
     so the abandoned work is resumable. The segment saved with each thunk
     is the stack slice above its update frame, top first. *)
  let unwind_async (exn : Exn.t) : 'a =
    m.stats.async_delivered <- m.stats.async_delivered + 1;
    ignore (note_raise "async" exn);
    if Obs.on m.trace then Obs.record m.trace (Obs.Ev_async exn);
    let rec go cur_code buf st =
      match st with
      | [] ->
          stack := [];
          depth := 0;
          raise (Machine_stuck (Fail_async exn))
      | F_update a :: rest ->
          Growarray.set m.heap a (Cell_paused (cur_code, List.rev buf));
          m.stats.thunks_paused <- m.stats.thunks_paused + 1;
          if Obs.on m.trace then Obs.record m.trace (Obs.Ev_pause a);
          go (C_enter a) [] rest
      | f :: rest -> go cur_code (f :: buf) rest
    in
    go !code [] !stack
  in

  let pending_async () =
    if (not catch) || m.mask_depth > 0 then None
    else
      match m.async with
      | (k, x) :: rest when m.stats.steps >= k ->
          m.async <- rest;
          Some x
      | _ -> None
  in

  let arith n =
    let bound = 1 lsl (m.cfg.int_bits - 1) in
    if n >= -bound && n < bound then C_ret (MInt n)
    else raise_to_code ~label:"arith-overflow" Exn.Overflow
  in

  let mbool b = MCon ((if b then c_true else c_false), []) in

  let apply_prim (p : Lang.Prim.t) (vs : mvalue list) : code =
    let module P = Lang.Prim in
    let int2 k =
      match vs with
      | [ MInt a; MInt b ] -> k a b
      | _ -> type_error (P.name p ^ ": expected integers")
    in
    let cmp k =
      match vs with
      | [ MInt a; MInt b ] -> C_ret (mbool (k (Stdlib.compare a b)))
      | [ MChar a; MChar b ] -> C_ret (mbool (k (Stdlib.compare a b)))
      | [ MString a; MString b ] -> C_ret (mbool (k (String.compare a b)))
      | [ MCon (a, []); MCon (b, []) ] ->
          C_ret (mbool (k (String.compare a b)))
      | _ -> type_error (P.name p ^ ": uncomparable values")
    in
    match p with
    | P.Add -> int2 (fun a b -> arith (a + b))
    | P.Sub -> int2 (fun a b -> arith (a - b))
    | P.Mul -> int2 (fun a b -> arith (a * b))
    | P.Div ->
        int2 (fun a b ->
            if b = 0 then raise_to_code ~label:"div" Exn.Divide_by_zero
            else arith (a / b))
    | P.Mod ->
        int2 (fun a b ->
            if b = 0 then raise_to_code ~label:"mod" Exn.Divide_by_zero
            else arith (a mod b))
    | P.Neg -> (
        match vs with
        | [ MInt a ] -> arith (-a)
        | _ -> type_error "negate: expected an integer")
    | P.Eq -> cmp (fun c -> c = 0)
    | P.Ne -> cmp (fun c -> c <> 0)
    | P.Lt -> cmp (fun c -> c < 0)
    | P.Le -> cmp (fun c -> c <= 0)
    | P.Gt -> cmp (fun c -> c > 0)
    | P.Ge -> cmp (fun c -> c >= 0)
    | P.Seq -> (
        match vs with
        | [ _; v2 ] -> C_ret v2
        | _ -> type_error "seq: arity")
    | P.Chr -> (
        match vs with
        | [ MInt a ] when a >= 0 && a < 256 -> C_ret (MChar (Char.chr a))
        | [ MInt _ ] -> type_error "chr: out of range"
        | _ -> type_error "chr: expected an integer")
    | P.Ord -> (
        match vs with
        | [ MChar c ] -> C_ret (MInt (Char.code c))
        | _ -> type_error "ord: expected a character")
    | P.Map_exception | P.Unsafe_is_exception | P.Unsafe_get_exception ->
        (* Handled at C_eval via dedicated frames. *)
        type_error (P.name p ^ ": not strict-applied")
  in

  let select_alt (v : mvalue) alts env =
    let matches a =
      match (a.pat, v) with
      | Pcon (c, xs), MCon (c', addrs)
        when String.equal c c' && List.length xs = List.length addrs ->
          Some
            ( List.fold_left2
                (fun acc x ad -> Env_map.add x ad acc)
                env xs addrs,
              a.rhs )
      | Plit (Lit_int n), MInt mv when n = mv -> Some (env, a.rhs)
      | Plit (Lit_char c), MChar c' when c = c' -> Some (env, a.rhs)
      | Plit (Lit_string s), MString s' when String.equal s s' ->
          Some (env, a.rhs)
      | Pany None, _ -> Some (env, a.rhs)
      | Pany (Some x), _ -> Some (Env_map.add x (alloc_value m v) env, a.rhs)
      | (Pcon _ | Plit _), _ -> None
    in
    List.find_map matches alts
  in

  let step () : unit =
    m.stats.steps <- m.stats.steps + 1;
    m.fuel_left <- m.fuel_left - 1;
    if m.fuel_left <= 0 then raise (Machine_stuck Fail_diverged);
    (* Resource exhaustion (GHC's HeapOverflow/StackOverflow): delivered
       through the ordinary trim-the-stack path, so it poisons abandoned
       thunks and is catchable by getException like any other imprecise
       exception. *)
    let exhausted =
      match m.cfg.stack_limit with
      | Some lim when !depth > lim ->
          m.stats.stack_overflows <- m.stats.stack_overflows + 1;
          Some ("stack-limit", Exn.Stack_overflow_exn)
      | _ -> (
          match m.cfg.heap_limit with
          | Some lim when m.heap_check_armed && Growarray.length m.heap >= lim
            ->
              m.heap_check_armed <- false;
              m.stats.heap_overflows <- m.stats.heap_overflows + 1;
              Some ("heap-limit", Exn.Heap_overflow)
          | _ -> None)
    in
    match exhausted with
    | Some (label, exn) -> code := raise_to_code ~label exn
    | None -> (
    (match pending_async () with
    | Some x -> unwind_async x
    | None -> ());
    match !code with
    | C_enter a -> (
        match Growarray.get m.heap a with
        | Cell_value v -> code := C_ret v
        | Cell_thunk (e, env) ->
            Growarray.set m.heap a Cell_blackhole;
            push (F_update a);
            code := C_eval (e, env)
        | Cell_blackhole ->
            (* Section 5.2: a detectable bottom. *)
            if m.cfg.blackhole_nontermination then
              code := raise_to_code ~label:"blackhole" Exn.Non_termination
            else raise (Machine_stuck Fail_diverged)
        | Cell_raise (exn, o) ->
            (* A poisoned thunk: re-raise the same exception, with the
               origin of the poisoning raise intact. *)
            code := reraise_to_code o exn
        | Cell_paused (code', seg) ->
            (* Resume the interrupted evaluation (Section 5.1). *)
            Growarray.set m.heap a Cell_blackhole;
            push (F_update a);
            List.iter push (List.rev seg);
            if Obs.on m.trace then Obs.record m.trace (Obs.Ev_resume a);
            code := code'
        | Cell_unused -> type_error "dangling address")
    | C_eval (e, env) -> (
        match e with
        | Var x -> (
            m.stats.env_lookups <- m.stats.env_lookups + 1;
            match Env_map.find_opt x env with
            | Some a -> code := C_enter a
            | None ->
                code :=
                  raise_to_code ~label:"unbound"
                    (Exn.Type_error (Printf.sprintf "unbound variable %s" x)))
        | Lit (Lit_int n) -> code := C_ret (MInt n)
        | Lit (Lit_char c) -> code := C_ret (MChar c)
        | Lit (Lit_string s) -> code := C_ret (MString s)
        | Lam (x, body) -> code := C_ret (MClo (x, body, env))
        | App (f, a) ->
            let a_addr = alloc_in m env a in
            push (F_apply a_addr);
            code := C_eval (f, env)
        | Con (c, es) ->
            let addrs = List.map (alloc_in m env) es in
            code := C_ret (MCon (c, addrs))
        | Let (x, e1, e2) ->
            let a = alloc_in m env e1 in
            code := C_eval (e2, Env_map.add x a env)
        | Letrec (binds, body) ->
            (* Reserve the cells, then tie the knot through the shared
               environment. *)
            let addrs =
              List.map (fun _ -> alloc_cell m Cell_unused) binds
            in
            let env' =
              List.fold_left2
                (fun acc (x, _) a -> Env_map.add x a acc)
                env binds addrs
            in
            List.iter2
              (fun (_, e1) a ->
                Growarray.set m.heap a (Cell_thunk (e1, env')))
              binds addrs;
            code := C_eval (body, env')
        | Fix e1 ->
            (* fix e  ≡  letrec x = e x in x *)
            let a = alloc_cell m Cell_unused in
            let env' = Env_map.add "$fix" a env in
            Growarray.set m.heap a
              (Cell_thunk (App (e1, Var "$fix"), env'));
            code := C_enter a
        | Raise e1 ->
            push F_raise;
            code := C_eval (e1, env)
        | Prim (Lang.Prim.Map_exception, [ f; v ]) ->
            let f_addr = alloc_in m env f in
            push (F_mapexn f_addr);
            code := C_eval (v, env)
        | Prim (Lang.Prim.Unsafe_is_exception, [ v ]) ->
            push F_isexn;
            code := C_eval (v, env)
        | Prim (Lang.Prim.Unsafe_get_exception, [ v ]) ->
            push F_unsafe_catch;
            code := C_eval (v, env)
        | Prim (p, arg :: rest) ->
            push (F_prim (p, [], rest, env));
            code := C_eval (arg, env)
        | Prim (p, []) -> type_error (Lang.Prim.name p ^ ": no arguments")
        | Case (scrut, alts) ->
            push (F_case (alts, env));
            code := C_eval (scrut, env))
    | C_ret v -> (
        match !stack with
        | [] ->
            (* [loop] returns before stepping a finished configuration,
               so reaching here means the driver invariant broke. *)
            invariant_failure m "C_ret with an empty stack reached step"
        | f :: rest -> (
            pop_to rest;
            match f with
            | F_update a ->
                Growarray.set m.heap a (Cell_value v);
                m.stats.updates <- m.stats.updates + 1
            | F_apply a -> (
                match v with
                | MClo (x, body, cenv) ->
                    code := C_eval (body, Env_map.add x a cenv)
                | MInt _ | MChar _ | MString _ | MCon _ ->
                    type_error "application of a non-function")
            | F_case (alts, env) -> (
                match select_alt v alts env with
                | Some (env', rhs) -> code := C_eval (rhs, env')
                | None ->
                    code :=
                      raise_to_code ~label:"case"
                        (Exn.Pattern_match_fail "case"))
            | F_prim (p, done_, remaining, env) -> (
                let done' = done_ @ [ v ] in
                match remaining with
                | [] -> code := apply_prim p done'
                | next :: rest' ->
                    push (F_prim (p, done', rest', env));
                    code := C_eval (next, env))
            | F_raise -> (
                match mvalue_to_exn m v with
                | Ok exn -> code := raise_to_code ~label:"raise" exn
                | Error Not_exn ->
                    code :=
                      raise_to_code ~label:"raise"
                        (Exn.Type_error "raise: not an exception")
                | Error (Exn_err e) -> code := raise_to_code ~label:"raise" e)
            | F_mapexn _ ->
                (* The protected value was normal: mapException is the
                   identity. *)
                code := C_ret v
            | F_isexn -> code := C_ret (mbool false)
            | F_unsafe_catch ->
                code := C_ret (MCon (c_ok, [ alloc_value m v ])))))
  in
  try
    let rec loop () =
      match (!code, !stack) with
      | C_ret v, [] -> Ok v
      | _ ->
          step ();
          loop ()
    in
    let rec exec () =
      try loop ()
      with Prim_type_error msg ->
        code := raise_to_code ~label:"type-error" (Exn.Type_error msg);
        exec ()
    in
    exec ()
  with Machine_stuck failure -> Error failure

(* Interpret a WHNF machine value as an exception constant; forces the
   payload in a nested run. *)
and mvalue_to_exn (m : t) (v : mvalue) : (Exn.t, to_exn_error) result =
  match v with
  | MCon (name, args) -> (
      let payload =
        match args with
        | [] -> Ok None
        | [ a ] -> (
            match run m ~catch:false (C_enter a) with
            | Ok (MString s) -> Ok (Some (Exn.P_string s))
            | Ok (MInt n) -> Ok (Some (Exn.P_int n))
            | Ok _ ->
                Error (Exn.Type_error "exception payload is not a string")
            | Error (Fail_exn e) | Error (Fail_async e) -> Error e
            | Error Fail_diverged ->
                Error (Exn.Type_error "exception payload failed to evaluate"))
        | _ -> Error (Exn.Type_error "exception constructor arity")
      in
      match payload with
      | Error e -> Error (Exn_err e)
      | Ok p -> (
          match Exn.of_constructor_p name p with
          | Some e -> Ok e
          | None ->
              Error
                (Exn_err
                   (Exn.Type_error
                      (name ^ " is not an exception constructor")))))
  | MInt _ | MChar _ | MString _ | MClo _ -> Error Not_exn

let force m a = run m ~catch:false (C_enter a)

let force_catch m a =
  m.stats.catches <- m.stats.catches + 1;
  let r = run m ~catch:true (C_enter a) in
  (if Obs.on m.trace then
     match r with
     | Error (Fail_exn e) | Error (Fail_async e) ->
         Obs.record m.trace (Obs.Ev_catch (Some e))
     | Ok _ | Error Fail_diverged -> Obs.record m.trace (Obs.Ev_catch None));
  r

type deep_result = DV of Semantics.Sem_value.deep | DFail of failure

module SV = Semantics.Sem_value

let rec deep ?(depth = 64) m a : SV.deep =
  if depth <= 0 then SV.DCut
  else
    match force m a with
    | Error (Fail_exn e) -> SV.DBad (Semantics.Exn_set.singleton e)
    | Error (Fail_async e) -> SV.DBad (Semantics.Exn_set.singleton e)
    | Error Fail_diverged -> SV.DBad Semantics.Exn_set.bottom
    | Ok v -> (
        match v with
        | MInt n -> SV.DInt n
        | MChar c -> SV.DChar c
        | MString s -> SV.DString s
        | MClo _ -> SV.DFun
        | MCon (c, addrs) ->
            SV.DCon (c, List.map (fun a' -> deep ~depth:(depth - 1) m a') addrs))

let run_expr ?config e =
  let m = create ?config () in
  let a = alloc m e in
  let r = force m a in
  (r, m.stats)

let run_deep ?config ?depth e =
  let m = create ?config () in
  let a = alloc m e in
  let d = deep ?depth m a in
  (d, m.stats)


(* ------------------------------------------------------------------ *)
(* Garbage collection: a semi-space copying collector over the cell    *)
(* heap. Roots are the addresses the caller still holds; the machine   *)
(* must be between runs (no live stack). Returns the relocated roots   *)
(* in order.                                                           *)
(* ------------------------------------------------------------------ *)

let gc (m : t) ~(roots : addr list) : addr list =
  let old_heap = m.heap in
  let old_len = Growarray.length old_heap in
  let new_heap = Growarray.create ~capacity:(max 16 old_len) ~dummy:Cell_unused () in
  let forward = Array.make (max 1 old_len) (-1) in
  (* Cheney-style: copy the cell shell first, then scan and rewrite. *)
  let rec copy (a : addr) : addr =
    if a < 0 || a >= old_len then a
    else if forward.(a) >= 0 then forward.(a)
    else begin
      let a' = Growarray.push new_heap (Growarray.get old_heap a) in
      forward.(a) <- a';
      (* Depth-first rewrite of the freshly copied cell. OCaml's own
         stack bounds recursion depth; heaps here are small enough, and
         long list spines alternate through env maps which are copied
         breadth-ish via [copy_env]. *)
      Growarray.set new_heap a' (copy_cell (Growarray.get old_heap a));
      a'
    end

  and copy_env (env : env) : env = Env_map.map copy env

  and copy_value = function
    | (MInt _ | MChar _ | MString _) as v -> v
    | MCon (c, addrs) -> MCon (c, List.map copy addrs)
    | MClo (x, body, env) -> MClo (x, body, copy_env env)

  and copy_code = function
    | C_eval (e, env) -> C_eval (e, copy_env env)
    | C_enter a -> C_enter (copy a)
    | C_ret v -> C_ret (copy_value v)

  and copy_frame = function
    | F_update a -> F_update (copy a)
    | F_apply a -> F_apply (copy a)
    | F_case (alts, env) -> F_case (alts, copy_env env)
    | F_prim (p, done_, rest, env) ->
        F_prim (p, List.map copy_value done_, rest, copy_env env)
    | F_raise -> F_raise
    | F_mapexn a -> F_mapexn (copy a)
    | F_isexn -> F_isexn
    | F_unsafe_catch -> F_unsafe_catch

  and copy_cell = function
    | Cell_thunk (e, env) -> Cell_thunk (e, copy_env env)
    | Cell_value v -> Cell_value (copy_value v)
    | Cell_blackhole -> Cell_blackhole
    | Cell_raise _ as c -> c
    | Cell_paused (code, frames) ->
        Cell_paused (copy_code code, List.map copy_frame frames)
    | Cell_unused -> Cell_unused
  in
  let roots' = List.map copy roots in
  m.heap <- new_heap;
  m.stats.collections <- m.stats.collections + 1;
  m.stats.live_copied <-
    m.stats.live_copied + Growarray.length new_heap;
  if Obs.on m.trace then
    Obs.record m.trace (Obs.Ev_gc (old_len, Growarray.length new_heap));
  (* Re-arm the heap limit only once a collection has actually brought the
     heap back under it; otherwise the next step would re-raise before the
     supervisor makes progress. *)
  (match m.cfg.heap_limit with
  | Some lim when Growarray.length new_heap < lim -> m.heap_check_armed <- true
  | _ -> ());
  roots'
