(** A growable array — the machine's heap substrate (OCaml 5.1 predates
    [Dynarray]). *)

type 'a t

val create : ?capacity:int -> dummy:'a -> unit -> 'a t
val length : 'a t -> int
val get : 'a t -> int -> 'a
val set : 'a t -> int -> 'a -> unit

val fast_get : 'a t -> int -> 'a
(** [get] without the explicit length check — for interpreter hot loops
    whose indices are machine-allocated and thus trusted. Still
    memory-safe (the backing array bounds-checks); an index between the
    length and the capacity reads the dummy rather than raising. *)

val fast_set : 'a t -> int -> 'a -> unit
(** [set] counterpart of {!fast_get}. *)

val push : 'a t -> 'a -> int
(** Append and return the new element's index. *)
