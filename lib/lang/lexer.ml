open Token

exception Error of string * int * int

type state = {
  src : string;
  mutable pos : int;
  mutable line : int;
  mutable col : int;
}

let peek st = if st.pos < String.length st.src then Some st.src.[st.pos] else None

let peek2 st =
  if st.pos + 1 < String.length st.src then Some st.src.[st.pos + 1] else None

let advance st =
  (match peek st with
  | Some '\n' ->
      st.line <- st.line + 1;
      st.col <- 1
  | Some _ -> st.col <- st.col + 1
  | None -> ());
  st.pos <- st.pos + 1

let error st msg = raise (Error (msg, st.line, st.col))

let is_lower c = (c >= 'a' && c <= 'z') || c = '_'
let is_upper c = c >= 'A' && c <= 'Z'
let is_digit c = c >= '0' && c <= '9'
let is_ident_char c = is_lower c || is_upper c || is_digit c || c = '\''

let is_op_char c = String.contains "+-*/%<>=:!&|.$" c

let keyword_of = function
  | "let" -> Some Kw_let
  | "rec" -> Some Kw_rec
  | "and" -> Some Kw_and
  | "in" -> Some Kw_in
  | "case" -> Some Kw_case
  | "of" -> Some Kw_of
  | "if" -> Some Kw_if
  | "then" -> Some Kw_then
  | "else" -> Some Kw_else
  | "raise" -> Some Kw_raise
  | "fix" -> Some Kw_fix
  | "data" -> Some Kw_data
  | "exception" -> Some Kw_exception
  | _ -> None

let read_while st pred =
  let start = st.pos in
  let rec go () =
    match peek st with
    | Some c when pred c ->
        advance st;
        go ()
    | Some _ | None -> ()
  in
  go ();
  String.sub st.src start (st.pos - start)

(* Skip whitespace and comments; returns unit. *)
let rec skip_trivia st =
  match peek st with
  | Some (' ' | '\t' | '\r' | '\n') ->
      advance st;
      skip_trivia st
  | Some '-' when peek2 st = Some '-' ->
      let rec to_eol () =
        match peek st with
        | Some '\n' | None -> ()
        | Some _ ->
            advance st;
            to_eol ()
      in
      to_eol ();
      skip_trivia st
  | Some '{' when peek2 st = Some '-' ->
      advance st;
      advance st;
      skip_block st 1;
      skip_trivia st
  | Some _ | None -> ()

and skip_block st depth =
  if depth = 0 then ()
  else
    match peek st with
    | None -> error st "unterminated block comment"
    | Some '{' when peek2 st = Some '-' ->
        advance st;
        advance st;
        skip_block st (depth + 1)
    | Some '-' when peek2 st = Some '}' ->
        advance st;
        advance st;
        skip_block st (depth - 1)
    | Some _ ->
        advance st;
        skip_block st depth

let read_escape st =
  match peek st with
  | Some 'n' -> advance st; '\n'
  | Some 't' -> advance st; '\t'
  | Some 'r' -> advance st; '\r'
  | Some '\\' -> advance st; '\\'
  | Some '\'' -> advance st; '\''
  | Some '"' -> advance st; '"'
  | Some '0' -> advance st; '\000'
  | Some c -> error st (Printf.sprintf "unknown escape '\\%c'" c)
  | None -> error st "unterminated escape"

let next_token st : located =
  skip_trivia st;
  let line = st.line and col = st.col in
  let mk tok = { tok; line; col } in
  match peek st with
  | None -> mk Eof
  | Some c when is_digit c ->
      let digits = read_while st is_digit in
      mk (Int (int_of_string digits))
  | Some c when is_lower c && c <> '_' ->
      let word = read_while st is_ident_char in
      mk (match keyword_of word with Some kw -> kw | None -> Lower word)
  | Some '_' -> (
      advance st;
      match peek st with
      | Some c when is_ident_char c ->
          let rest = read_while st is_ident_char in
          mk (Lower ("_" ^ rest))
      | Some _ | None -> mk Underscore)
  | Some c when is_upper c ->
      let word = read_while st is_ident_char in
      mk (Upper word)
  | Some '\'' -> (
      advance st;
      let c =
        match peek st with
        | Some '\\' ->
            advance st;
            read_escape st
        | Some c ->
            advance st;
            c
        | None -> error st "unterminated character literal"
      in
      match peek st with
      | Some '\'' ->
          advance st;
          mk (Char c)
      | Some _ | None -> error st "unterminated character literal")
  | Some '"' ->
      advance st;
      let buf = Buffer.create 16 in
      let rec go () =
        match peek st with
        | Some '"' ->
            advance st;
            mk (String (Buffer.contents buf))
        | Some '\\' ->
            advance st;
            Buffer.add_char buf (read_escape st);
            go ()
        | Some c ->
            advance st;
            Buffer.add_char buf c;
            go ()
        | None -> error st "unterminated string literal"
      in
      go ()
  | Some '\\' ->
      advance st;
      mk Backslash
  | Some '(' ->
      advance st;
      mk Lparen
  | Some ')' ->
      advance st;
      mk Rparen
  | Some '{' ->
      advance st;
      mk Lbrace
  | Some '}' ->
      advance st;
      mk Rbrace
  | Some '[' ->
      advance st;
      mk Lbracket
  | Some ']' ->
      advance st;
      mk Rbracket
  | Some ',' ->
      advance st;
      mk Comma
  | Some ';' ->
      advance st;
      mk Semi
  | Some c when is_op_char c -> (
      let op = read_while st is_op_char in
      match op with
      | "=" -> mk Equals
      | "->" -> mk Arrow
      | "|" -> mk Pipe
      | _ -> mk (Op op))
  | Some c -> error st (Printf.sprintf "illegal character %C" c)

let tokenize src =
  let st = { src; pos = 0; line = 1; col = 1 } in
  let rec go acc =
    let t = next_token st in
    match t.tok with Eof -> List.rev (t :: acc) | _ -> go (t :: acc)
  in
  go []
