(** The resolution (compile-to-slots) pass.

    One static walk over {!Syntax.expr} producing a pre-resolved IR the
    abstract machine can evaluate without any runtime string operation:
    variables become lexical (frame, offset) slots into array-backed
    environment frames, constructor names become interned integer tags,
    and every allocation site carries its precomputed free-variable
    footprint so closures capture a compact address array.

    Scoping is value-compatible with the name-based machine, including
    its lazy failure on unbound variables: resolution never rejects a
    term; dead unbound occurrences stay dead. *)

type slot = { frame : int; idx : int }
(** Walk [frame] environment links outward, then read index [idx]. *)

type rexpr =
  | RVar of slot
  | RUnbound of string
      (** Out-of-scope name; raises [TypeError "unbound variable ..."]
          only if evaluated. *)
  | RLit of Syntax.lit
  | RLam of lam
  | RApp of rexpr * arg
  | RCon of int * arg array
  | RCase of rexpr * ralt array
  | RLet of arg * rexpr
  | RLetrec of tspec array * rexpr
  | RPrim of Prim.t * rexpr list
  | RMapexn of arg * rexpr
  | RIsexn of rexpr
  | RGetexn of rexpr
  | RRaise of string * rexpr
      (** The string is the raise site's static label
          ("raise#<site>[:<hint>]"), threaded into exception
          provenance by the machine. *)

and arg =
  | Aslot of slot  (** Argument is a variable: reuse its address. *)
  | Athunk of tspec

and tspec = { caps : slot array; tbody : rexpr }
(** Thunk template: fill the capture array from the current environment
    at allocation time; [tbody] runs under that single frame. *)

and lam = { lcaps : slot array; lbody : rexpr; lname : string }
(** Closure template: [lbody] runs under a 1-slot argument frame chained
    onto the captured frame. *)

and ralt = { rpat : rpat; rrhs : rexpr }

and rpat =
  | Rpcon of int * int  (** tag, binder count *)
  | Rplit of Syntax.lit
  | Rpany of bool  (** [true] when the wildcard binds the scrutinee. *)

type context
(** Constructor-interning state, as an explicit record instead of hidden
    module globals (the serve daemon's re-entrancy audit). Interning is
    monotone and idempotent, so any number of machines may share a
    context; what a context buys is an explicit boundary — an embedder
    can sandbox a tenant's constructor vocabulary, and tests can prove
    two contexts never bleed into each other. *)

val global_context : context
(** The shared default. The compiled-program cache and every
    cross-machine differential rely on resolving against one context, so
    this is what all entry points use unless told otherwise. *)

val new_context : unit -> context
(** A fresh context with {!Con_info.builtin_list} pre-interned in the
    same stable order as {!global_context}, so the [t_*] tags below are
    valid in every context. *)

val expr : ?ctx:context -> Syntax.expr -> rexpr
(** Resolve a (usually closed) top-level expression. Resolution is
    deterministic: the same source yields structurally identical IR
    (raise-site numbering restarts per call), which is what lets a
    compiled-program cache substitute for a fresh resolution. *)

val con_tag : ?ctx:context -> string -> int
(** Intern a constructor name (idempotent; builtins are pre-interned in
    {!Con_info.builtin_list} order, so their tags are stable). *)

val con_name : ?ctx:context -> int -> string
(** The name a tag was interned from. *)

(** {2 Pre-interned tags for the machine and its IO drivers} *)

val t_true : int
val t_false : int
val t_nil : int
val t_cons : int
val t_unit : int
val t_pair : int
val t_ok : int
val t_bad : int
val t_just : int
val t_nothing : int
val t_return : int
val t_bind : int
val t_get_char : int
val t_put_char : int
val t_get_exception : int
val t_bracket : int
val t_on_exception : int
val t_mask : int
val t_unmask : int
val t_timeout : int
val t_retry : int
val t_fork : int
val t_new_mvar : int
val t_take_mvar : int
val t_put_mvar : int
val t_mvar_ref : int
val t_my_thread_id : int
val t_throw_to : int
val t_thread_id : int
val t_new_chan : int
val t_read_chan : int
val t_write_chan : int
val t_chan_ref : int
val t_evaluate : int

val is_io_action_tag : int -> bool
(** Tags whose constructor is an IO action the drivers can perform
    (excludes the value wrappers [MVarRef] and [ThreadId]). Used by
    [getException] on an IO argument: performing-under-a-catch. *)

(** {2 Static accounting} *)

val count_nodes : rexpr -> int

val unbound : rexpr -> string list
(** Names that resolved to {!RUnbound} (in occurrence order). *)
