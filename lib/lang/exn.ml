type t =
  | Divide_by_zero
  | Overflow
  | Pattern_match_fail of string
  | Assertion_failed of string
  | User_error of string
  | Type_error of string
  | Non_termination
  | Interrupt
  | Timeout
  | Stack_overflow_exn
  | Heap_exhaustion
  | Heap_overflow
  | Thread_killed
  | Blocked_indefinitely

let compare = Stdlib.compare
let equal a b = compare a b = 0

let is_asynchronous = function
  | Interrupt | Timeout | Stack_overflow_exn | Heap_exhaustion
  | Heap_overflow | Thread_killed | Blocked_indefinitely ->
      true
  | Divide_by_zero | Overflow | Pattern_match_fail _ | Assertion_failed _
  | User_error _ | Type_error _ | Non_termination ->
      false

let is_synchronous e = not (is_asynchronous e)

let constructor_name = function
  | Divide_by_zero -> "DivideByZero"
  | Overflow -> "Overflow"
  | Pattern_match_fail _ -> "PatternMatchFail"
  | Assertion_failed _ -> "AssertionFailed"
  | User_error _ -> "UserError"
  | Type_error _ -> "TypeError"
  | Non_termination -> "NonTermination"
  | Interrupt -> "Interrupt"
  | Timeout -> "Timeout"
  | Stack_overflow_exn -> "StackOverflow"
  | Heap_exhaustion -> "HeapExhaustion"
  | Heap_overflow -> "HeapOverflow"
  | Thread_killed -> "ThreadKilled"
  | Blocked_indefinitely -> "BlockedIndefinitely"

let of_constructor name payload =
  let s = Option.value payload ~default:"" in
  match name with
  | "DivideByZero" -> Some Divide_by_zero
  | "Overflow" -> Some Overflow
  | "PatternMatchFail" -> Some (Pattern_match_fail s)
  | "AssertionFailed" -> Some (Assertion_failed s)
  | "UserError" -> Some (User_error s)
  | "TypeError" -> Some (Type_error s)
  | "NonTermination" -> Some Non_termination
  | "Interrupt" -> Some Interrupt
  | "Timeout" -> Some Timeout
  | "StackOverflow" -> Some Stack_overflow_exn
  | "HeapExhaustion" -> Some Heap_exhaustion
  | "HeapOverflow" -> Some Heap_overflow
  | "ThreadKilled" -> Some Thread_killed
  | "BlockedIndefinitely" -> Some Blocked_indefinitely
  | _ -> None

let pp ppf e =
  match e with
  | Pattern_match_fail s -> Fmt.pf ppf "PatternMatchFail %S" s
  | Assertion_failed s -> Fmt.pf ppf "AssertionFailed %S" s
  | User_error s -> Fmt.pf ppf "UserError %S" s
  | Type_error s -> Fmt.pf ppf "TypeError %S" s
  | Divide_by_zero | Overflow | Non_termination | Interrupt | Timeout
  | Stack_overflow_exn | Heap_exhaustion | Heap_overflow | Thread_killed
  | Blocked_indefinitely ->
      Fmt.string ppf (constructor_name e)

module Set = Stdlib.Set.Make (struct
  type nonrec t = t

  let compare = compare
end)

let all_known =
  [
    Divide_by_zero;
    Overflow;
    Pattern_match_fail "case";
    Assertion_failed "assert";
    User_error "Urk";
    Type_error "redex";
    Non_termination;
    Interrupt;
    Timeout;
    Stack_overflow_exn;
    Heap_exhaustion;
    Heap_overflow;
    Thread_killed;
    Blocked_indefinitely;
  ]
