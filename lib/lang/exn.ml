type payload = P_int of int | P_string of string
type payload_kind = K_none | K_int | K_string

type t =
  | Divide_by_zero
  | Overflow
  | Pattern_match_fail of string
  | Assertion_failed of string
  | User_error of string
  | Type_error of string
  | Non_termination
  | Interrupt
  | Timeout
  | Stack_overflow_exn
  | Heap_exhaustion
  | Heap_overflow
  | Thread_killed
  | Blocked_indefinitely
  | User_exception of string * payload option

let compare = Stdlib.compare
let equal a b = compare a b = 0

(* The open part of the vocabulary: a global, monotone registry of
   declared exception constructors (surface [exception Name of ty;]),
   following the same global-default pattern as [Resolve.global_context].
   Declarations are additive and keyed by name, so concurrent [serve]
   sessions interleave safely: a name means the same payload kind
   everywhere once declared, and redeclaration at a different kind is
   rejected. *)
let declared : (string, payload_kind) Hashtbl.t = Hashtbl.create 16

let declare name kind =
  match Hashtbl.find_opt declared name with
  | None -> Hashtbl.replace declared name kind
  | Some k when k = kind -> ()
  | Some _ ->
      invalid_arg
        (Printf.sprintf
           "Exn.declare: %s redeclared with a different payload kind" name)

let is_declared name = Hashtbl.mem declared name
let declared_kind name = Hashtbl.find_opt declared name

(* Pre-declared by the runtime itself: raised by the prelude's
   [supervisorTree] when a restart-intensity window is exhausted. The
   payload counts restarts inside the window. *)
let () = Hashtbl.replace declared "SupervisorLimit" K_int

let declared_list () =
  Hashtbl.fold (fun n k acc -> (n, k) :: acc) declared []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let is_asynchronous = function
  | Interrupt | Timeout | Stack_overflow_exn | Heap_exhaustion
  | Heap_overflow | Thread_killed | Blocked_indefinitely ->
      true
  | Divide_by_zero | Overflow | Pattern_match_fail _ | Assertion_failed _
  | User_error _ | Type_error _ | Non_termination | User_exception _ ->
      false

let is_synchronous e = not (is_asynchronous e)

(* The coarse class a typed handler list dispatches on: the serve layer
   reports it with every exceptional reply so clients can route
   failures without parsing constructor names. *)
let class_name = function
  | Divide_by_zero | Overflow -> "arith"
  | Interrupt | Timeout | Stack_overflow_exn | Heap_exhaustion
  | Heap_overflow | Thread_killed | Blocked_indefinitely ->
      "async"
  | Pattern_match_fail _ | Assertion_failed _ | Type_error _
  | Non_termination ->
      "runtime"
  | User_error _ -> "user"
  | User_exception _ -> "declared"

let constructor_name = function
  | User_exception (n, _) -> n
  | Divide_by_zero -> "DivideByZero"
  | Overflow -> "Overflow"
  | Pattern_match_fail _ -> "PatternMatchFail"
  | Assertion_failed _ -> "AssertionFailed"
  | User_error _ -> "UserError"
  | Type_error _ -> "TypeError"
  | Non_termination -> "NonTermination"
  | Interrupt -> "Interrupt"
  | Timeout -> "Timeout"
  | Stack_overflow_exn -> "StackOverflow"
  | Heap_exhaustion -> "HeapExhaustion"
  | Heap_overflow -> "HeapOverflow"
  | Thread_killed -> "ThreadKilled"
  | Blocked_indefinitely -> "BlockedIndefinitely"

let of_constructor_p name (p : payload option) =
  let str () =
    (* Builtin payload constructors take exactly a string; a missing
       payload defaults to "" (historic call sites), a non-string one is
       a kind mismatch reported as [None]. *)
    match p with
    | None -> Some ""
    | Some (P_string s) -> Some s
    | Some (P_int _) -> None
  in
  match name with
  | "DivideByZero" -> Some Divide_by_zero
  | "Overflow" -> Some Overflow
  | "PatternMatchFail" -> Option.map (fun s -> Pattern_match_fail s) (str ())
  | "AssertionFailed" -> Option.map (fun s -> Assertion_failed s) (str ())
  | "UserError" -> Option.map (fun s -> User_error s) (str ())
  | "TypeError" -> Option.map (fun s -> Type_error s) (str ())
  | "NonTermination" -> Some Non_termination
  | "Interrupt" -> Some Interrupt
  | "Timeout" -> Some Timeout
  | "StackOverflow" -> Some Stack_overflow_exn
  | "HeapExhaustion" -> Some Heap_exhaustion
  | "HeapOverflow" -> Some Heap_overflow
  | "ThreadKilled" -> Some Thread_killed
  | "BlockedIndefinitely" -> Some Blocked_indefinitely
  | _ -> (
      match Hashtbl.find_opt declared name with
      | None -> None
      | Some kind -> (
          (* Strict payload-kind check: every evaluator reports the same
             Type_error on mismatch, keeping differentials coherent. *)
          match (kind, p) with
          | K_none, None -> Some (User_exception (name, None))
          | K_int, Some (P_int _ as pv) ->
              Some (User_exception (name, Some pv))
          | K_string, Some (P_string _ as pv) ->
              Some (User_exception (name, Some pv))
          | _ -> None))

let of_constructor name payload =
  of_constructor_p name (Option.map (fun s -> P_string s) payload)

let pp ppf e =
  match e with
  | Pattern_match_fail s -> Fmt.pf ppf "PatternMatchFail %S" s
  | Assertion_failed s -> Fmt.pf ppf "AssertionFailed %S" s
  | User_error s -> Fmt.pf ppf "UserError %S" s
  | Type_error s -> Fmt.pf ppf "TypeError %S" s
  | User_exception (n, None) -> Fmt.string ppf n
  | User_exception (n, Some (P_int i)) -> Fmt.pf ppf "%s %d" n i
  | User_exception (n, Some (P_string s)) -> Fmt.pf ppf "%s %S" n s
  | Divide_by_zero | Overflow | Non_termination | Interrupt | Timeout
  | Stack_overflow_exn | Heap_exhaustion | Heap_overflow | Thread_killed
  | Blocked_indefinitely ->
      Fmt.string ppf (constructor_name e)

module Set = Stdlib.Set.Make (struct
  type nonrec t = t

  let compare = compare
end)

let all_known =
  [
    Divide_by_zero;
    Overflow;
    Pattern_match_fail "case";
    Assertion_failed "assert";
    User_error "Urk";
    Type_error "redex";
    Non_termination;
    Interrupt;
    Timeout;
    Stack_overflow_exn;
    Heap_exhaustion;
    Heap_overflow;
    Thread_killed;
    Blocked_indefinitely;
  ]

let payload = function
  | Pattern_match_fail s | Assertion_failed s | User_error s | Type_error s
    ->
      Some (P_string s)
  | User_exception (_, p) -> p
  | Divide_by_zero | Overflow | Non_termination | Interrupt | Timeout
  | Stack_overflow_exn | Heap_exhaustion | Heap_overflow | Thread_killed
  | Blocked_indefinitely ->
      None

let representative name =
  match declared_kind name with
  | None -> None
  | Some K_none -> Some (User_exception (name, None))
  | Some K_int -> Some (User_exception (name, Some (P_int 0)))
  | Some K_string -> Some (User_exception (name, Some (P_string "rep")))
