(** Combinators for constructing terms from OCaml.

    Tests, examples and benchmarks build programs with these rather than
    strings, so they are robust against concrete-syntax changes. All the
    paper's running examples are provided at the bottom. *)

open Syntax

val var : string -> expr
val int : int -> expr
val char : char -> expr
val str : string -> expr
val lam : string -> expr -> expr
val lams : string list -> expr -> expr
val app : expr -> expr -> expr
val apps : expr -> expr list -> expr
val con : string -> expr list -> expr
val let_ : string -> expr -> expr -> expr
val letrec : (string * expr) list -> expr -> expr
val fix : expr -> expr

val ( + ) : expr -> expr -> expr
val ( - ) : expr -> expr -> expr
val ( * ) : expr -> expr -> expr
val ( / ) : expr -> expr -> expr
val ( mod ) : expr -> expr -> expr
val ( == ) : expr -> expr -> expr
val ( < ) : expr -> expr -> expr
val ( <= ) : expr -> expr -> expr
val ( > ) : expr -> expr -> expr
val ( >= ) : expr -> expr -> expr
val neg : expr -> expr
val seq : expr -> expr -> expr
val map_exception : expr -> expr -> expr

val true_ : expr
val false_ : expr
val unit_ : expr
val nil : expr
val cons : expr -> expr -> expr
val list : expr list -> expr
val pair : expr -> expr -> expr
val just : expr -> expr
val nothing : expr

val if_ : expr -> expr -> expr -> expr
(** Desugars to a [case] on [True]/[False]; a non-boolean scrutinee fails
    with [PatternMatchFail] at evaluation time. *)

val case : expr -> (pat * expr) list -> expr
val pcon : string -> string list -> pat
val pint : int -> pat
val pany : pat
val pvar : string -> pat

val raise_ : expr -> expr
val raise_exn : Exn.t -> expr
(** [raise] applied to a literal exception constructor. *)

val exn_con : Exn.t -> expr
(** The source-level constructor value for an exception constant. *)

val error : string -> expr
(** The Prelude's [error str = raise (UserError str)]. *)

val io_return : expr -> expr
val io_bind : expr -> expr -> expr
val get_char : expr
val put_char : expr -> expr
val get_exception : expr -> expr

val io_bracket : expr -> expr -> expr -> expr
(** [io_bracket acquire release use]: perform [acquire]; on success run
    [use resource]; run [release resource] exactly once whether [use]
    returns, raises, or is interrupted. *)

val io_on_exception : expr -> expr -> expr
val io_mask : expr -> expr
val io_unmask : expr -> expr
val io_timeout : expr -> expr -> expr
val io_retry : expr -> expr -> expr -> expr
(** [io_retry attempts backoff m]: re-perform [m] up to [attempts] more
    times when it fails, doubling the deterministic tick-counted [backoff]
    between attempts. *)

(* The paper's running examples. *)

val loop : expr
(** [fix (\x.x)] — diverges; denotes bottom (= the set of all exceptions). *)

val loop_plus_error : expr
(** [(loop + error "Urk")] from Section 4. *)

val div_zero_plus_error : expr
(** [((1/0) + error "Urk")] from Section 3.4. *)

val black : expr
(** [black = black + 1]: the detectable black hole of Section 5.2, as
    [letrec black = black + 1 in black]. *)
