(* The resolution (compile-to-slots) pass: one walk over {!Syntax.expr}
   that eliminates every runtime string operation the abstract machine
   used to pay for.

   - Variable occurrences become lexical slot references: a (frame,
     offset) pair into a chain of array-backed environment frames.
   - Constructor names are interned into integer tags through a global
     table seeded with {!Con_info.builtin_list}, so constructor dispatch
     (including the IO drivers' [Return]/[Bind]/... matching) is integer
     comparison.
   - Every heap-allocation site (let right-hand sides, application and
     constructor arguments, letrec bindings) and every lambda gets its
     free-variable footprint precomputed as an array of slot references,
     so closures capture a compact [addr array] instead of a whole
     name-keyed map.

   Scoping mirrors the name-based machine exactly, including its lazy
   treatment of unbound variables: an out-of-scope name resolves to
   {!RUnbound}, which raises [TypeError "unbound variable ..."] only if
   the occurrence is actually evaluated. *)

open Syntax

type slot = { frame : int; idx : int }
(** A resolved variable occurrence: walk [frame] environment links
    outward, then read array index [idx]. *)

type rexpr =
  | RVar of slot
  | RUnbound of string
      (** Out-of-scope name; raises [TypeError] if evaluated (the
          name-based machine's behaviour, preserved for dead code). *)
  | RLit of lit
  | RLam of lam
  | RApp of rexpr * arg
  | RCon of int * arg array  (** Interned constructor tag. *)
  | RCase of rexpr * ralt array
  | RLet of arg * rexpr  (** Body runs under one pushed 1-slot frame. *)
  | RLetrec of tspec array * rexpr
  | RPrim of Prim.t * rexpr list
  | RMapexn of arg * rexpr
  | RIsexn of rexpr
  | RGetexn of rexpr
  | RRaise of string * rexpr
      (** The string is the raise site's static label (site number plus
          a hint of the raised expression), threaded into the machine's
          exception provenance. *)

and arg =
  | Aslot of slot
      (** The argument is a variable: reuse its heap address directly
          (the machine's [alloc_in] fast path, now decided statically). *)
  | Athunk of tspec

and tspec = { caps : slot array; tbody : rexpr }
(** A thunk template: at allocation time the capture array is filled by
    reading [caps] from the current environment; [tbody] is compiled
    against a single frame holding exactly those captures. *)

and lam = { lcaps : slot array; lbody : rexpr; lname : string }
(** A lambda: evaluating it captures [lcaps] into a flat array; applying
    the closure runs [lbody] under a 1-slot argument frame chained onto
    the capture frame. *)

and ralt = { rpat : rpat; rrhs : rexpr }

and rpat =
  | Rpcon of int * int  (** tag, binder count *)
  | Rplit of lit
  | Rpany of bool  (** [true] when the wildcard binds the scrutinee. *)

(* ------------------------------------------------------------------ *)
(* Constructor interning                                               *)
(* ------------------------------------------------------------------ *)

(* The interning state is an explicit context record, not module-level
   globals: the serve daemon's re-entrancy audit requires that nothing a
   machine touches is hidden process state. One shared [global_context]
   remains the default everywhere (the compiled-program cache and the
   cross-machine differentials depend on tags meaning the same thing in
   every machine), but an embedder can sandbox with [new_context] — and
   because every context pre-interns {!Con_info.builtin_list} in the
   same order, the [t_*] tags below are valid in all of them. *)
type context = {
  con_table : (string, int) Hashtbl.t;
  con_names : (int, string) Hashtbl.t;
  mutable next_tag : int;
}

let new_context () =
  let ctx =
    {
      con_table = Hashtbl.create 64;
      con_names = Hashtbl.create 64;
      next_tag = 0;
    }
  in
  List.iter
    (fun (c, _) ->
      let t = ctx.next_tag in
      ctx.next_tag <- t + 1;
      Hashtbl.add ctx.con_table c t;
      Hashtbl.add ctx.con_names t c)
    Con_info.builtin_list;
  ctx

let global_context = new_context ()

let con_tag ?(ctx = global_context) c =
  match Hashtbl.find_opt ctx.con_table c with
  | Some t -> t
  | None ->
      let t = ctx.next_tag in
      ctx.next_tag <- t + 1;
      Hashtbl.add ctx.con_table c t;
      Hashtbl.add ctx.con_names t c;
      t

let con_name ?(ctx = global_context) t =
  match Hashtbl.find_opt ctx.con_names t with
  | Some c -> c
  | None -> Printf.sprintf "<con:%d>" t

let t_true = con_tag c_true
let t_false = con_tag c_false
let t_nil = con_tag c_nil
let t_cons = con_tag c_cons
let t_unit = con_tag c_unit
let t_pair = con_tag c_pair
let t_ok = con_tag c_ok
let t_bad = con_tag c_bad
let t_just = con_tag c_just
let t_nothing = con_tag c_nothing
let t_return = con_tag c_return
let t_bind = con_tag c_bind
let t_get_char = con_tag c_get_char
let t_put_char = con_tag c_put_char
let t_get_exception = con_tag c_get_exception
let t_bracket = con_tag c_bracket
let t_on_exception = con_tag c_on_exception
let t_mask = con_tag c_mask
let t_unmask = con_tag c_unmask
let t_timeout = con_tag c_timeout
let t_retry = con_tag c_retry
let t_fork = con_tag "Fork"
let t_new_mvar = con_tag "NewMVar"
let t_take_mvar = con_tag "TakeMVar"
let t_put_mvar = con_tag "PutMVar"
let t_mvar_ref = con_tag "MVarRef"
let t_my_thread_id = con_tag "MyThreadId"
let t_throw_to = con_tag "ThrowTo"
let t_thread_id = con_tag "ThreadId"
let t_new_chan = con_tag "NewChan"
let t_read_chan = con_tag "ReadChan"
let t_write_chan = con_tag "WriteChan"
let t_chan_ref = con_tag "ChanRef"
let t_evaluate = con_tag c_evaluate

let io_action_tags =
  [
    t_return; t_bind; t_get_char; t_put_char; t_get_exception; t_bracket;
    t_on_exception; t_mask; t_unmask; t_timeout; t_retry; t_fork;
    t_new_mvar; t_take_mvar; t_put_mvar; t_my_thread_id; t_throw_to;
    t_new_chan; t_read_chan; t_write_chan; t_evaluate;
  ]

let is_io_action_tag t = List.mem t io_action_tags

(* ------------------------------------------------------------------ *)
(* Free variables                                                      *)
(* ------------------------------------------------------------------ *)

module S = Set.Make (String)

let rec fv = function
  | Var x -> S.singleton x
  | Lit _ -> S.empty
  | Lam (x, b) -> S.remove x (fv b)
  | App (f, a) -> S.union (fv f) (fv a)
  | Con (_, es) | Prim (_, es) ->
      List.fold_left (fun s e -> S.union s (fv e)) S.empty es
  | Case (scrut, alts) ->
      List.fold_left
        (fun acc a ->
          S.union acc (S.diff (fv a.rhs) (S.of_list (pat_binders a.pat))))
        (fv scrut) alts
  | Let (x, e1, e2) -> S.union (fv e1) (S.remove x (fv e2))
  | Letrec (binds, body) ->
      let bound = S.of_list (List.map fst binds) in
      S.diff
        (List.fold_left
           (fun s (_, e) -> S.union s (fv e))
           (fv body) binds)
        bound
  | Raise e | Fix e -> fv e

(* ------------------------------------------------------------------ *)
(* Scope: a static image of the runtime frame chain                    *)
(* ------------------------------------------------------------------ *)

(* Innermost frame first. Within a frame, later binders shadow earlier
   ones (the map-based machine folded [Env_map.add] left to right), so
   frames are scanned right to left. *)
type scope = string array list

let find_slot (scope : scope) (x : string) : slot option =
  let rec in_frame (arr : string array) i =
    if i < 0 then None
    else if String.equal arr.(i) x then Some i
    else in_frame arr (i - 1)
  in
  let rec go frame = function
    | [] -> None
    | arr :: rest -> (
        match in_frame arr (Array.length arr - 1) with
        | Some idx -> Some { frame; idx }
        | None -> go (frame + 1) rest)
  in
  go 0 scope

(* The ordered capture list of an expression under a scope: its free
   variables that are actually in scope (out-of-scope names stay free
   and resolve to [RUnbound] inside the body). Order is the set's
   (sorted) order — deterministic, and mirrored by the body scope. *)
let captures (scope : scope) (e : expr) : string array * slot array =
  let names =
    List.filter (fun x -> find_slot scope x <> None) (S.elements (fv e))
  in
  ( Array.of_list names,
    Array.of_list
      (List.map
         (fun x ->
           match find_slot scope x with
           | Some s -> s
           | None -> assert false)
         names) )

(* ------------------------------------------------------------------ *)
(* Raise-site labels                                                   *)
(* ------------------------------------------------------------------ *)

(* Each [raise] occurrence gets a site number scoped to the top-level
   {!expr} call plus a hint of what it raises, so exception provenance
   can name the site: "raise#3:UserError". Numbering restarts at 0 for
   every resolution, so resolving the same source twice yields
   structurally identical IR — the property the serve daemon's
   compiled-program cache keys on (a cache hit and a fresh resolution
   must be indistinguishable, provenance labels included). *)
type pass_state = { rctx : context; mutable next_site : int }

let raise_label (st : pass_state) (e : expr) : string =
  let n = st.next_site in
  st.next_site <- n + 1;
  let hint =
    match e with
    | Con (c, _) -> ":" ^ c
    | Var x -> ":" ^ x
    | _ -> ""
  in
  Printf.sprintf "raise#%d%s" n hint

(* ------------------------------------------------------------------ *)
(* The pass                                                            *)
(* ------------------------------------------------------------------ *)

let rec resolve (st : pass_state) (scope : scope) (e : expr) : rexpr =
  match e with
  | Var x -> (
      match find_slot scope x with
      | Some s -> RVar s
      | None -> RUnbound x)
  | Lit l -> RLit l
  | Lam (x, body) ->
      let names, lcaps = captures scope e in
      RLam { lcaps; lbody = resolve st [ [| x |]; names ] body; lname = x }
  | App (f, a) -> RApp (resolve st scope f, resolve_arg st scope a)
  | Con (c, es) ->
      RCon
        ( con_tag ~ctx:st.rctx c,
          Array.of_list (List.map (resolve_arg st scope) es) )
  | Case (scrut, alts) ->
      RCase
        ( resolve st scope scrut,
          Array.of_list (List.map (resolve_alt st scope) alts) )
  | Let (x, e1, e2) ->
      RLet (resolve_arg st scope e1, resolve st ([| x |] :: scope) e2)
  | Letrec (binds, body) ->
      let frame = Array.of_list (List.map fst binds) in
      let scope' = frame :: scope in
      let specs =
        Array.of_list
          (List.map (fun (_, rhs) -> thunk_spec st scope' rhs) binds)
      in
      RLetrec (specs, resolve st scope' body)
  | Fix e1 ->
      (* fix e ≡ letrec x = e x in x — the machine's own reading,
         desugared here so the IR needs no fixpoint node. *)
      resolve st scope
        (Letrec ([ ("$fix", App (e1, Var "$fix")) ], Var "$fix"))
  | Raise e1 -> RRaise (raise_label st e1, resolve st scope e1)
  | Prim (Prim.Map_exception, [ f; v ]) ->
      RMapexn (resolve_arg st scope f, resolve st scope v)
  | Prim (Prim.Unsafe_is_exception, [ v ]) -> RIsexn (resolve st scope v)
  | Prim (Prim.Unsafe_get_exception, [ v ]) -> RGetexn (resolve st scope v)
  | Prim (p, es) -> RPrim (p, List.map (resolve st scope) es)

and resolve_arg st scope e =
  match e with
  | Var x -> (
      (* alloc_in's "variables are already in the heap" fast path,
         decided once at compile time instead of per allocation. *)
      match find_slot scope x with
      | Some s -> Aslot s
      | None -> Athunk { caps = [||]; tbody = RUnbound x })
  | _ -> Athunk (thunk_spec st scope e)

and thunk_spec st scope e =
  let names, caps = captures scope e in
  { caps; tbody = resolve st [ names ] e }

and resolve_alt st scope (a : alt) : ralt =
  match a.pat with
  | Pcon (c, xs) ->
      let n = List.length xs in
      let scope' = if n = 0 then scope else Array.of_list xs :: scope in
      {
        rpat = Rpcon (con_tag ~ctx:st.rctx c, n);
        rrhs = resolve st scope' a.rhs;
      }
  | Plit l -> { rpat = Rplit l; rrhs = resolve st scope a.rhs }
  | Pany None -> { rpat = Rpany false; rrhs = resolve st scope a.rhs }
  | Pany (Some x) ->
      { rpat = Rpany true; rrhs = resolve st ([| x |] :: scope) a.rhs }

let expr ?(ctx = global_context) (e : expr) : rexpr =
  resolve { rctx = ctx; next_site = 0 } [] e

(* ------------------------------------------------------------------ *)
(* Static accounting (for tests and docs)                              *)
(* ------------------------------------------------------------------ *)

let rec count_nodes (r : rexpr) : int =
  let arg = function Aslot _ -> 1 | Athunk t -> 1 + count_nodes t.tbody in
  match r with
  | RVar _ | RUnbound _ | RLit _ -> 1
  | RLam l -> 1 + count_nodes l.lbody
  | RApp (f, a) -> 1 + count_nodes f + arg a
  | RCon (_, args) -> Array.fold_left (fun acc a -> acc + arg a) 1 args
  | RCase (s, alts) ->
      Array.fold_left
        (fun acc a -> acc + count_nodes a.rrhs)
        (1 + count_nodes s) alts
  | RLet (a, b) -> 1 + arg a + count_nodes b
  | RLetrec (specs, b) ->
      Array.fold_left
        (fun acc t -> acc + count_nodes t.tbody)
        (1 + count_nodes b) specs
  | RPrim (_, es) -> List.fold_left (fun acc e -> acc + count_nodes e) 1 es
  | RMapexn (a, v) -> 1 + arg a + count_nodes v
  | RIsexn v | RGetexn v | RRaise (_, v) -> 1 + count_nodes v

let rec unbound (r : rexpr) : string list =
  let arg = function Aslot _ -> [] | Athunk t -> unbound t.tbody in
  match r with
  | RUnbound x -> [ x ]
  | RVar _ | RLit _ -> []
  | RLam l -> unbound l.lbody
  | RApp (f, a) -> unbound f @ arg a
  | RCon (_, args) -> Array.to_list args |> List.concat_map arg
  | RCase (s, alts) ->
      unbound s
      @ (Array.to_list alts |> List.concat_map (fun a -> unbound a.rrhs))
  | RLet (a, b) -> arg a @ unbound b
  | RLetrec (specs, b) ->
      (Array.to_list specs |> List.concat_map (fun t -> unbound t.tbody))
      @ unbound b
  | RPrim (_, es) -> List.concat_map unbound es
  | RMapexn (a, v) -> arg a @ unbound v
  | RIsexn v | RGetexn v | RRaise (_, v) -> unbound v
