type t = (string, int) Hashtbl.t

let builtin_list =
  [
    ("True", 0);
    ("False", 0);
    ("Nil", 0);
    ("Cons", 2);
    ("Unit", 0);
    ("Pair", 2);
    ("Just", 1);
    ("Nothing", 0);
    ("OK", 1);
    ("Bad", 1);
    ("Return", 1);
    ("Bind", 2);
    ("GetChar", 0);
    ("PutChar", 1);
    ("GetException", 1);
    ("Bracket", 3);
    ("OnException", 2);
    ("Mask", 1);
    ("Unmask", 1);
    ("WithTimeout", 2);
    ("Retry", 3);
    ("Fork", 1);
    ("NewMVar", 0);
    ("TakeMVar", 1);
    ("PutMVar", 2);
    ("MVarRef", 1);
    ("DivideByZero", 0);
    ("Overflow", 0);
    ("PatternMatchFail", 1);
    ("AssertionFailed", 1);
    ("UserError", 1);
    ("TypeError", 1);
    ("NonTermination", 0);
    ("Interrupt", 0);
    ("Timeout", 0);
    ("StackOverflow", 0);
    ("HeapExhaustion", 0);
    ("HeapOverflow", 0);
    (* Appended after the PR-4 tail so the interned tags of everything
       above stay stable (Resolve interns builtins in list order). *)
    ("MyThreadId", 0);
    ("ThrowTo", 2);
    ("ThreadId", 1);
    ("ThreadKilled", 0);
    ("BlockedIndefinitely", 0);
    (* PR-9 bounded channels, appended for the same tag-stability
       reason. *)
    ("NewChan", 1);
    ("ReadChan", 1);
    ("WriteChan", 2);
    ("ChanRef", 1);
    (* Extensible-hierarchy PR, appended for the same tag-stability
       reason: typed handlers ([Handler], [Left]/[Right] for [try]),
       the [Evaluate] IO action with its precise forcing point, the
       [SomeException] root, supervision-tree restart strategies, and
       the runtime's own [SupervisorLimit] exception. *)
    ("SomeException", 1);
    ("Handler", 1);
    ("Left", 1);
    ("Right", 1);
    ("Evaluate", 1);
    ("OneForOne", 0);
    ("OneForAll", 0);
    ("RestForOne", 0);
    ("SupervisorLimit", 1);
  ]

let builtins () =
  let tbl = Hashtbl.create 64 in
  List.iter (fun (c, n) -> Hashtbl.replace tbl c n) builtin_list;
  tbl

let arity tbl c = Hashtbl.find_opt tbl c
let register tbl c n = Hashtbl.replace tbl c n

let constructors tbl =
  Hashtbl.fold (fun c n acc -> (c, n) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)
