open Syntax

let pp_lit ppf = function
  | Lit_int n ->
      if n < 0 then Fmt.pf ppf "(negate %d)" (-n) else Fmt.int ppf n
  | Lit_char c -> Fmt.pf ppf "%C" c
  | Lit_string s -> Fmt.pf ppf "%S" s

let pp_pat ppf = function
  | Pcon (c, []) -> Fmt.string ppf c
  | Pcon (c, xs) -> Fmt.pf ppf "%s %s" c (String.concat " " xs)
  | Plit l -> pp_lit ppf l
  | Pany None -> Fmt.string ppf "_"
  | Pany (Some x) -> Fmt.string ppf x

(* Precedence levels, mirroring the parser:
   0 expr (lambda, let, case), 1 >>= , 4 comparisons, 5 cons, 6 additive,
   7 multiplicative, 10 application, 11 atom. *)

let prim_level (p : Prim.t) =
  match p with
  | Prim.Eq | Prim.Ne | Prim.Lt | Prim.Le | Prim.Gt | Prim.Ge -> Some 4
  | Prim.Add | Prim.Sub -> Some 6
  | Prim.Mul | Prim.Div | Prim.Mod -> Some 7
  | Prim.Neg | Prim.Seq | Prim.Map_exception | Prim.Unsafe_is_exception
  | Prim.Unsafe_get_exception | Prim.Chr | Prim.Ord ->
      None

(* Collect a [Cons]/[Nil] spine if the expression is a literal list. *)
let rec as_list = function
  | Con (c, []) when String.equal c c_nil -> Some []
  | Con (c, [ x; xs ]) when String.equal c c_cons ->
      Option.map (fun rest -> x :: rest) (as_list xs)
  | _ -> None

let rec pp_level lvl ppf e =
  let parens_if cond fmt =
    if cond then Fmt.pf ppf "(%a)" fmt e else fmt ppf e
  in
  match e with
  | Var x -> Fmt.string ppf x
  | Lit l -> pp_lit ppf l
  | Con (c, []) -> Fmt.string ppf c
  | Con (_, _) when Option.is_some (as_list e) ->
      let elems = Option.get (as_list e) in
      Fmt.pf ppf "[@[<hv>%a@]]" Fmt.(list ~sep:comma (pp_level 0)) elems
  | Con (c, [ a; b ]) when String.equal c c_pair ->
      Fmt.pf ppf "(@[<hv>%a,@ %a@])" (pp_level 0) a (pp_level 0) b
  | Con (c, [ a; b ]) when String.equal c c_cons ->
      parens_if (lvl > 5) (fun ppf _ ->
          Fmt.pf ppf "@[<hv>%a@ : %a@]" (pp_level 6) a (pp_level 5) b)
  | Con (c, [ a; b ]) when String.equal c c_bind ->
      parens_if (lvl > 1) (fun ppf _ ->
          Fmt.pf ppf "@[<hv>%a@ >>= %a@]" (pp_level 2) a (pp_level 2) b)
  | Con (c, args) ->
      parens_if (lvl > 10) (fun ppf _ ->
          Fmt.pf ppf "@[<hv 2>%s@ %a@]" c
            Fmt.(list ~sep:sp (pp_level 11))
            args)
  | Lam _ ->
      let rec collect acc = function
        | Lam (x, body) -> collect (x :: acc) body
        | body -> (List.rev acc, body)
      in
      let xs, body = collect [] e in
      parens_if (lvl > 0) (fun ppf _ ->
          Fmt.pf ppf "@[<hv 2>\\%s ->@ %a@]" (String.concat " " xs)
            (pp_level 0) body)
  | App _ ->
      let rec collect acc = function
        | App (f, a) -> collect (a :: acc) f
        | head -> (head, acc)
      in
      let head, args = collect [] e in
      (* A nullary-constructor head must be parenthesised: [Nil x] would
         re-parse as an over-applied constructor, not an application of
         the constructor value. *)
      let pp_head ppf h =
        match h with
        | Con (_, []) -> Fmt.pf ppf "(%a)" (pp_level 0) h
        | _ -> pp_level 11 ppf h
      in
      parens_if (lvl > 10) (fun ppf _ ->
          Fmt.pf ppf "@[<hv 2>%a@ %a@]" pp_head head
            Fmt.(list ~sep:sp (pp_level 11))
            args)
  | Prim (p, [ a; b ]) when Option.is_some (prim_level p) ->
      let pl = Option.get (prim_level p) in
      parens_if (lvl > pl) (fun ppf _ ->
          Fmt.pf ppf "@[<hv>%a@ %s %a@]" (pp_level (pl + 1)) a (Prim.name p)
            (pp_level (pl + 1))
            b)
  | Prim (p, args) ->
      parens_if (lvl > 10 && args <> []) (fun ppf _ ->
          if args = [] then Fmt.string ppf (Prim.name p)
          else
            Fmt.pf ppf "@[<hv 2>%s@ %a@]" (Prim.name p)
              Fmt.(list ~sep:sp (pp_level 11))
              args)
  | Raise e1 ->
      parens_if (lvl > 10) (fun ppf _ ->
          Fmt.pf ppf "@[<hv 2>raise@ %a@]" (pp_level 11) e1)
  | Fix e1 ->
      parens_if (lvl > 10) (fun ppf _ ->
          Fmt.pf ppf "@[<hv 2>fix@ %a@]" (pp_level 11) e1)
  | Let (x, e1, e2) ->
      parens_if (lvl > 0) (fun ppf _ ->
          Fmt.pf ppf "@[<hv>let %s =@;<1 2>@[%a@] in@ %a@]" x (pp_level 0) e1
            (pp_level 0) e2)
  | Letrec (binds, body) ->
      parens_if (lvl > 0) (fun ppf _ ->
          let pp_bind ppf (x, e1) =
            Fmt.pf ppf "%s =@;<1 2>@[%a@]" x (pp_level 0) e1
          in
          Fmt.pf ppf "@[<hv>let rec %a in@ %a@]"
            Fmt.(list ~sep:(any "@ and ") pp_bind)
            binds (pp_level 0) body)
  | Case (scrut, alts) ->
      parens_if (lvl > 0) (fun ppf _ ->
          let pp_alt ppf a =
            Fmt.pf ppf "@[<hv 2>%a ->@ %a@]" pp_pat a.pat (pp_level 0) a.rhs
          in
          Fmt.pf ppf "@[<hv>case %a of@ {@[<hv 1> %a @]}@]" (pp_level 0) scrut
            Fmt.(list ~sep:(any ";@ ") pp_alt)
            alts)

let pp_expr ppf e = pp_level 0 ppf e

let pp_ty ppf ty =
  let rec go lvl ppf = function
    | Ty_var v -> Fmt.string ppf v
    | Ty_con (c, []) -> Fmt.string ppf c
    | Ty_con ("List", [ t ]) -> Fmt.pf ppf "[%a]" (go 0) t
    | Ty_con ("Pair", [ a; b ]) ->
        Fmt.pf ppf "(%a, %a)" (go 0) a (go 0) b
    | Ty_con (c, args) ->
        if lvl > 1 then
          Fmt.pf ppf "(%s %a)" c Fmt.(list ~sep:sp (go 2)) args
        else Fmt.pf ppf "%s %a" c Fmt.(list ~sep:sp (go 2)) args
    | Ty_fun (a, b) ->
        if lvl > 0 then Fmt.pf ppf "(%a -> %a)" (go 1) a (go 0) b
        else Fmt.pf ppf "%a -> %a" (go 1) a (go 0) b
  in
  go 0 ppf ty

let pp_data ppf (d : data_decl) =
  let pp_con ppf (c, fields) =
    if fields = [] then Fmt.string ppf c
    else
      Fmt.pf ppf "%s %a" c
        Fmt.(list ~sep:sp (fun ppf t -> pp_ty ppf t))
        fields
  in
  Fmt.pf ppf "@[<hv 2>data %s%s =@ %a;@]" d.type_name
    (match d.type_params with
    | [] -> ""
    | ps -> " " ^ String.concat " " ps)
    Fmt.(list ~sep:(any "@ | ") pp_con)
    d.constructors

let pp_exn_decl ppf (d : exn_decl) =
  match d.exn_payload with
  | None -> Fmt.pf ppf "exception %s;" d.exn_name
  | Some t -> Fmt.pf ppf "exception %s of %a;" d.exn_name pp_ty t

let pp_program ppf ({ defs; datas; exns; main = _ } : program) =
  let pp_def ppf (name, e) =
    (* Re-sugar leading lambdas into parameters. *)
    let rec collect acc = function
      | Lam (x, body) -> collect (x :: acc) body
      | body -> (List.rev acc, body)
    in
    let ps, body = collect [] e in
    if ps = [] then Fmt.pf ppf "@[<hv 2>%s =@ %a;@]" name pp_expr body
    else
      Fmt.pf ppf "@[<hv 2>%s %s =@ %a;@]" name (String.concat " " ps) pp_expr
        body
  in
  (match exns with
  | [] -> ()
  | _ ->
      Fmt.pf ppf "@[<v>%a@]@,@,"
        Fmt.(list ~sep:(any "@,@,") pp_exn_decl)
        exns);
  (match datas with
  | [] -> ()
  | _ ->
      Fmt.pf ppf "@[<v>%a@]@,@," Fmt.(list ~sep:(any "@,@,") pp_data) datas);
  Fmt.pf ppf "@[<v>%a@]" Fmt.(list ~sep:(any "@,@,") pp_def) defs

let expr_to_string e = Fmt.str "%a" pp_expr e
let program_to_string p = Fmt.str "%a" pp_program p
