type t =
  | Int of int
  | Char of char
  | String of string
  | Lower of string
  | Upper of string
  | Kw_let
  | Kw_rec
  | Kw_and
  | Kw_in
  | Kw_case
  | Kw_of
  | Kw_if
  | Kw_then
  | Kw_else
  | Kw_raise
  | Kw_fix
  | Kw_data
  | Kw_exception
  | Backslash
  | Arrow
  | Equals
  | Semi
  | Comma
  | Underscore
  | Lparen
  | Rparen
  | Lbrace
  | Rbrace
  | Lbracket
  | Rbracket
  | Pipe
  | Op of string
  | Eof

type located = { tok : t; line : int; col : int }

let describe = function
  | Int n -> Printf.sprintf "integer %d" n
  | Char c -> Printf.sprintf "character %C" c
  | String s -> Printf.sprintf "string %S" s
  | Lower s -> Printf.sprintf "identifier %s" s
  | Upper s -> Printf.sprintf "constructor %s" s
  | Kw_let -> "'let'"
  | Kw_rec -> "'rec'"
  | Kw_and -> "'and'"
  | Kw_in -> "'in'"
  | Kw_case -> "'case'"
  | Kw_of -> "'of'"
  | Kw_if -> "'if'"
  | Kw_then -> "'then'"
  | Kw_else -> "'else'"
  | Kw_raise -> "'raise'"
  | Kw_fix -> "'fix'"
  | Kw_data -> "'data'"
  | Kw_exception -> "'exception'"
  | Backslash -> "'\\'"
  | Arrow -> "'->'"
  | Equals -> "'='"
  | Semi -> "';'"
  | Comma -> "','"
  | Underscore -> "'_'"
  | Lparen -> "'('"
  | Rparen -> "')'"
  | Lbrace -> "'{'"
  | Rbrace -> "'}'"
  | Lbracket -> "'['"
  | Rbracket -> "']'"
  | Pipe -> "'|'"
  | Op s -> Printf.sprintf "operator %s" s
  | Eof -> "end of input"

let pp ppf t = Fmt.string ppf (describe t)
let equal (a : t) (b : t) = a = b
