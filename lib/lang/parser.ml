open Syntax
open Token

exception Error of string * int * int

type st = { mutable toks : Token.located list; cons : Con_info.t }

(* An element of an application spine, before primitive/constructor
   resolution. *)
type spine_atom =
  | Ahead_var of string
  | Ahead_con of string
  | Ahead_expr of Syntax.expr

let peek st =
  match st.toks with [] -> { tok = Eof; line = 0; col = 0 } | t :: _ -> t

let peek_tok st = (peek st).tok

let advance st =
  match st.toks with [] -> () | _ :: rest -> st.toks <- rest

let fail st msg =
  let t = peek st in
  raise (Error (msg, t.line, t.col))

let expect st tok =
  let t = peek st in
  if Token.equal t.tok tok then advance st
  else
    fail st
      (Printf.sprintf "expected %s but found %s" (Token.describe tok)
         (Token.describe t.tok))

let fresh_var =
  let counter = ref 0 in
  fun () ->
    incr counter;
    Printf.sprintf "_p%d" !counter

(* Saturate or eta-expand a primitive applied to [args]. Negation of an
   integer literal is folded so that printed negative literals
   ("negate 5") re-parse to the literal itself. *)
let rec saturate_prim p args =
  match (p, args) with
  | Prim.Neg, [ Lit (Lit_int n) ] -> Lit (Lit_int (-n))
  | _ -> saturate_prim_general p args

and saturate_prim_general p args =
  ignore saturate_prim;
  let n = Prim.arity p in
  let given = List.length args in
  if given >= n then
    let rec split k acc = function
      | rest when k = 0 -> (List.rev acc, rest)
      | [] -> (List.rev acc, [])
      | x :: rest -> split (k - 1) (x :: acc) rest
    in
    let prim_args, extra = split n [] args in
    List.fold_left (fun f a -> App (f, a)) (Prim (p, prim_args)) extra
  else
    let missing = List.init (n - given) (fun _ -> fresh_var ()) in
    let all = args @ List.map (fun x -> Var x) missing in
    List.fold_right (fun x body -> Lam (x, body)) missing (Prim (p, all))

let saturate_con st c args =
  match Con_info.arity st.cons c with
  | None -> fail st (Printf.sprintf "unknown constructor %s" c)
  | Some n ->
      let given = List.length args in
      if given > n then
        fail st
          (Printf.sprintf "constructor %s expects %d arguments but got %d" c n
             given)
      else if given = n then Con (c, args)
      else
        let missing = List.init (n - given) (fun _ -> fresh_var ()) in
        let all = args @ List.map (fun x -> Var x) missing in
        List.fold_right (fun x body -> Lam (x, body)) missing (Con (c, all))

(* Operator table: level, associativity. Higher level binds tighter. *)
type assoc = Left | Right

let op_table =
  [
    (">>=", (1, Left));
    (">>", (1, Left));
    ("||", (2, Right));
    ("&&", (3, Right));
    ("==", (4, Left));
    ("/=", (4, Left));
    ("<", (4, Left));
    ("<=", (4, Left));
    (">", (4, Left));
    (">=", (4, Left));
    (":", (5, Right));
    ("++", (5, Right));
    ("+", (6, Left));
    ("-", (6, Left));
    ("*", (7, Left));
    ("/", (7, Left));
    ("%", (7, Left));
    (".", (8, Right));
  ]

let op_info name = List.assoc_opt name op_table

let build_op st name lhs rhs =
  match name with
  | "+" -> Prim (Prim.Add, [ lhs; rhs ])
  | "-" -> Prim (Prim.Sub, [ lhs; rhs ])
  | "*" -> Prim (Prim.Mul, [ lhs; rhs ])
  | "/" -> Prim (Prim.Div, [ lhs; rhs ])
  | "%" -> Prim (Prim.Mod, [ lhs; rhs ])
  | "==" -> Prim (Prim.Eq, [ lhs; rhs ])
  | "/=" -> Prim (Prim.Ne, [ lhs; rhs ])
  | "<" -> Prim (Prim.Lt, [ lhs; rhs ])
  | "<=" -> Prim (Prim.Le, [ lhs; rhs ])
  | ">" -> Prim (Prim.Gt, [ lhs; rhs ])
  | ">=" -> Prim (Prim.Ge, [ lhs; rhs ])
  | ":" -> Con (c_cons, [ lhs; rhs ])
  | "++" -> App (App (Var "append", lhs), rhs)
  | "." -> App (App (Var "compose", lhs), rhs)
  | ">>=" -> Con (c_bind, [ lhs; rhs ])
  | ">>" -> Con (c_bind, [ lhs; Lam ("_", rhs) ])
  | "&&" -> Builder.if_ lhs rhs (Con (c_false, []))
  | "||" -> Builder.if_ lhs (Con (c_true, [])) rhs
  | _ -> fail st (Printf.sprintf "unknown operator %s" name)

(* The function value of a parenthesised operator, e.g. [(+)]. *)
let op_as_function st name =
  let x = fresh_var () and y = fresh_var () in
  Lam (x, Lam (y, build_op st name (Var x) (Var y)))

let binder st =
  match peek_tok st with
  | Lower x ->
      advance st;
      x
  | Underscore ->
      advance st;
      "_"
  | t -> fail st (Printf.sprintf "expected a binder but found %s"
                    (Token.describe t))

let rec parse_expr st : expr =
  match peek_tok st with
  | Backslash ->
      advance st;
      let rec binders acc =
        match peek_tok st with
        | Arrow ->
            advance st;
            List.rev acc
        | _ -> binders (binder st :: acc)
      in
      let xs = binders [] in
      if xs = [] then fail st "lambda needs at least one binder";
      let body = parse_expr st in
      List.fold_right (fun x e -> Lam (x, e)) xs body
  | Kw_let ->
      advance st;
      let recursive =
        match peek_tok st with
        | Kw_rec ->
            advance st;
            true
        | _ -> false
      in
      let parse_bind () =
        let name = binder st in
        let rec params acc =
          match peek_tok st with
          | Equals ->
              advance st;
              List.rev acc
          | _ -> params (binder st :: acc)
        in
        let ps = params [] in
        let body = parse_expr st in
        (name, List.fold_right (fun x e -> Lam (x, e)) ps body)
      in
      let rec binds acc =
        let b = parse_bind () in
        match peek_tok st with
        | Kw_and ->
            advance st;
            binds (b :: acc)
        | _ -> List.rev (b :: acc)
      in
      let bs = binds [] in
      expect st Kw_in;
      let body = parse_expr st in
      if recursive then Letrec (bs, body)
      else
        List.fold_right (fun (x, e1) e2 -> Let (x, e1, e2)) bs body
  | Kw_case ->
      advance st;
      let scrut = parse_expr st in
      expect st Kw_of;
      expect st Lbrace;
      let rec alts acc =
        let a = parse_alt st in
        match peek_tok st with
        | Semi ->
            advance st;
            (* Tolerate a trailing semicolon before '}'. *)
            if Token.equal (peek_tok st) Rbrace then List.rev (a :: acc)
            else alts (a :: acc)
        | Rbrace -> List.rev (a :: acc)
        | t ->
            fail st
              (Printf.sprintf "expected ';' or '}' in case but found %s"
                 (Token.describe t))
      in
      let als = alts [] in
      expect st Rbrace;
      (* With explicit braces a case is an operand: operators may follow
         ([case x of {...} >>= k]), as in Haskell. *)
      parse_op ~lhs:(Case (scrut, als)) st 1
  | Kw_if ->
      advance st;
      let c = parse_expr st in
      expect st Kw_then;
      let t = parse_expr st in
      expect st Kw_else;
      let f = parse_expr st in
      parse_op ~lhs:(Builder.if_ c t f) st 1
  | _ -> parse_op st 1

and parse_alt st : alt =
  let pat = parse_pat st in
  expect st Arrow;
  let rhs = parse_expr st in
  { pat; rhs }

and parse_pat st : pat =
  match peek_tok st with
  | Upper c -> (
      advance st;
      match Con_info.arity st.cons c with
      | None -> fail st (Printf.sprintf "unknown constructor %s in pattern" c)
      | Some n ->
          let xs = List.init n (fun _ -> ()) |> List.map (fun () -> binder st) in
          Pcon (c, xs))
  | Int n ->
      advance st;
      Plit (Lit_int n)
  | Char c ->
      advance st;
      Plit (Lit_char c)
  | String s ->
      advance st;
      Plit (Lit_string s)
  | Underscore ->
      advance st;
      Pany None
  | Lower x ->
      advance st;
      Pany (Some x)
  | Lbracket ->
      advance st;
      expect st Rbracket;
      Pcon (c_nil, [])
  | Lparen -> (
      advance st;
      match peek_tok st with
      | Rparen ->
          advance st;
          Pcon (c_unit, [])
      | _ -> (
          let x = binder st in
          match peek_tok st with
          | Op ":" ->
              advance st;
              let y = binder st in
              expect st Rparen;
              Pcon (c_cons, [ x; y ])
          | Comma ->
              advance st;
              let y = binder st in
              expect st Rparen;
              Pcon (c_pair, [ x; y ])
          | t ->
              fail st
                (Printf.sprintf "expected ':' or ',' in pattern but found %s"
                   (Token.describe t))))
  | t -> fail st (Printf.sprintf "expected a pattern but found %s"
                    (Token.describe t))

and parse_op ?lhs st level : expr =
  if level > 8 then
    match lhs with Some e -> e | None -> parse_app st
  else
    let lhs = parse_op ?lhs st (level + 1) in
    let rec loop lhs =
      match peek_tok st with
      | Op name -> (
          match op_info name with
          | Some (l, assoc) when l = level ->
              advance st;
              (* A lambda/let/case/if in operator-rhs position extends to
                 the end of the expression, as in Haskell
                 ([m >>= \x -> e]). *)
              let rhs =
                match peek_tok st with
                | Backslash | Kw_let | Kw_case | Kw_if -> parse_expr st
                | _ -> (
                    match assoc with
                    | Left -> parse_op st (level + 1)
                    | Right -> parse_op st level)
              in
              let e = build_op st name lhs rhs in
              (match assoc with Left -> loop e | Right -> e)
          | Some _ -> lhs
          | None -> fail st (Printf.sprintf "unknown operator %s" name))
      | _ -> lhs
    in
    loop lhs

and parse_app st : expr =
  match peek_tok st with
  | Kw_raise ->
      advance st;
      let arg = parse_app st in
      Raise arg
  | Kw_fix ->
      advance st;
      let arg = parse_app st in
      Fix arg
  | _ -> (
      let head_tok = peek st in
      let rec atoms acc =
        match parse_atom_opt st with
        | Some a -> atoms (a :: acc)
        | None -> List.rev acc
      in
      (* Primitive names and constructors used as bare arguments
         (e.g. [map negate xs], [map Just xs]) are eta-expanded so that the
         saturated [Prim]/[Con] forms stay the only representations. *)
      let resolve_bare = function
        | Ahead_var name -> (
            match Prim.of_name name with
            | Some p -> saturate_prim p []
            | None -> Var name)
        | Ahead_con c -> saturate_con st c []
        | Ahead_expr e -> e
      in
      match atoms [] with
      | [] ->
          raise
            (Error
               ( Printf.sprintf "expected an expression but found %s"
                   (Token.describe head_tok.tok),
                 head_tok.line,
                 head_tok.col ))
      | head :: args -> (
          let args = List.map resolve_bare args in
          match head with
          | Ahead_var name when Option.is_some (Prim.of_name name) ->
              saturate_prim (Option.get (Prim.of_name name)) args
          | Ahead_con c -> saturate_con st c args
          | head ->
              List.fold_left (fun f a -> App (f, a)) (resolve_bare head) args))

and parse_atom_opt st : spine_atom option =
  match peek_tok st with
  | Int n ->
      advance st;
      Some (Ahead_expr (Lit (Lit_int n)))
  | Char c ->
      advance st;
      Some (Ahead_expr (Lit (Lit_char c)))
  | String s ->
      advance st;
      Some (Ahead_expr (Lit (Lit_string s)))
  | Lower x ->
      advance st;
      Some (Ahead_var x)
  | Underscore ->
      advance st;
      Some (Ahead_var "_")
  | Upper c ->
      advance st;
      Some (Ahead_con c)
  | Lbracket ->
      advance st;
      let rec elems acc =
        match peek_tok st with
        | Rbracket ->
            advance st;
            List.rev acc
        | _ -> (
            let e = parse_expr st in
            match peek_tok st with
            | Comma ->
                advance st;
                elems (e :: acc)
            | Rbracket ->
                advance st;
                List.rev (e :: acc)
            | t ->
                fail st
                  (Printf.sprintf "expected ',' or ']' but found %s"
                     (Token.describe t)))
      in
      Some (Ahead_expr (list_expr (elems [])))
  | Lparen -> (
      advance st;
      match peek_tok st with
      | Rparen ->
          advance st;
          Some (Ahead_expr (Con (c_unit, [])))
      | Op name when is_closed_op st ->
          advance st;
          expect st Rparen;
          Some (Ahead_expr (op_as_function st name))
      | _ -> (
          let e = parse_expr st in
          match peek_tok st with
          | Rparen ->
              advance st;
              Some (Ahead_expr e)
          | Comma ->
              advance st;
              let e2 = parse_expr st in
              expect st Rparen;
              Some (Ahead_expr (Con (c_pair, [ e; e2 ])))
          | t ->
              fail st
                (Printf.sprintf "expected ')' or ',' but found %s"
                   (Token.describe t))))
  | _ -> None

(* Peek two tokens ahead: is the current [Op _] immediately closed by ')'
   (an operator section like [(+)])? *)
and is_closed_op st =
  match st.toks with
  | { tok = Op _; _ } :: { tok = Rparen; _ } :: _ -> true
  | _ -> false

(* data declarations: [data Name a b = C1 t1 t2 | C2 | ...]. Field types
   are type atoms; parenthesised types admit application and arrows. *)
let rec parse_ty_expr st : Syntax.ty_expr =
  let lhs = parse_ty_app st in
  match peek_tok st with
  | Arrow ->
      advance st;
      Syntax.Ty_fun (lhs, parse_ty_expr st)
  | _ -> lhs

and parse_ty_app st : Syntax.ty_expr =
  match peek_tok st with
  | Upper name ->
      advance st;
      let rec args acc =
        match parse_ty_atom_opt st with
        | Some a -> args (a :: acc)
        | None -> List.rev acc
      in
      Syntax.Ty_con (name, args [])
  | _ -> (
      match parse_ty_atom_opt st with
      | Some a -> a
      | None -> fail st "expected a type")

and parse_ty_atom_opt st : Syntax.ty_expr option =
  match peek_tok st with
  | Lower v ->
      advance st;
      Some (Syntax.Ty_var v)
  | Upper name ->
      advance st;
      Some (Syntax.Ty_con (name, []))
  | Lbracket ->
      advance st;
      let t = parse_ty_expr st in
      expect st Rbracket;
      Some (Syntax.Ty_con ("List", [ t ]))
  | Lparen -> (
      advance st;
      match peek_tok st with
      | Rparen ->
          advance st;
          Some (Syntax.Ty_con ("Unit", []))
      | _ -> (
          let t = parse_ty_expr st in
          match peek_tok st with
          | Rparen ->
              advance st;
              Some t
          | Comma ->
              advance st;
              let t2 = parse_ty_expr st in
              expect st Rparen;
              Some (Syntax.Ty_con ("Pair", [ t; t2 ]))
          | tk ->
              fail st
                (Printf.sprintf "expected ')' or ',' in type but found %s"
                   (Token.describe tk))))
  | _ -> None

let parse_data st : Syntax.data_decl =
  expect st Kw_data;
  let type_name =
    match peek_tok st with
    | Upper n ->
        advance st;
        n
    | t ->
        fail st (Printf.sprintf "expected a type name but found %s"
                   (Token.describe t))
  in
  let rec params acc =
    match peek_tok st with
    | Lower v ->
        advance st;
        params (v :: acc)
    | _ -> List.rev acc
  in
  let type_params = params [] in
  expect st Equals;
  let rec con_decls acc =
    let cname =
      match peek_tok st with
      | Upper c ->
          advance st;
          c
      | t ->
          fail st (Printf.sprintf "expected a constructor but found %s"
                     (Token.describe t))
    in
    let rec fields fs =
      match parse_ty_atom_opt st with
      | Some f -> fields (f :: fs)
      | None -> List.rev fs
    in
    let field_tys = fields [] in
    Con_info.register st.cons cname (List.length field_tys);
    let acc = (cname, field_tys) :: acc in
    match peek_tok st with
    | Pipe ->
        advance st;
        con_decls acc
    | _ -> List.rev acc
  in
  let constructors = con_decls [] in
  { Syntax.type_name; type_params; constructors }

(* [exception Name;] / [exception Name of Int;] / [exception Name of
   String;]. Registers the constructor's arity in this parse's
   constructor table AND declares the name in the global [Exn] registry
   (monotone; a kind clash with an earlier declaration is a parse
   error), so every evaluator recognises it at a [raise]. *)
let parse_exception st : Syntax.exn_decl =
  expect st Kw_exception;
  let exn_name =
    match peek_tok st with
    | Upper n ->
        advance st;
        n
    | t ->
        fail st
          (Printf.sprintf "expected an exception constructor but found %s"
             (Token.describe t))
  in
  let exn_payload =
    match peek_tok st with
    | Kw_of -> (
        advance st;
        match parse_ty_atom_opt st with
        | Some t -> Some t
        | None -> fail st "expected a payload type after 'of'")
    | _ -> None
  in
  let kind =
    match exn_payload with
    | None -> Exn.K_none
    | Some (Syntax.Ty_con ("Int", [])) -> Exn.K_int
    | Some (Syntax.Ty_con ("String", [])) -> Exn.K_string
    | Some _ ->
        fail st
          (Printf.sprintf
             "exception %s: payload type must be Int or String" exn_name)
  in
  (try Exn.declare exn_name kind
   with Invalid_argument msg -> fail st msg);
  Con_info.register st.cons exn_name
    (match exn_payload with None -> 0 | Some _ -> 1);
  { Syntax.exn_name; exn_payload }

type decl =
  | D_def of string * expr
  | D_data of Syntax.data_decl
  | D_exn of Syntax.exn_decl

let parse_decl st : decl =
  match peek_tok st with
  | Kw_data -> D_data (parse_data st)
  | Kw_exception -> D_exn (parse_exception st)
  | _ ->
      let name = binder st in
      let rec params acc =
        match peek_tok st with
        | Equals ->
            advance st;
            List.rev acc
        | _ -> params (binder st :: acc)
      in
      let ps = params [] in
      let body = parse_expr st in
      D_def (name, List.fold_right (fun x e -> Lam (x, e)) ps body)

let make_state ?cons src =
  let cons = match cons with Some c -> c | None -> Con_info.builtins () in
  (* The exception vocabulary is global and monotone: constructors
     declared in any previously parsed program (or registered directly,
     as the fuzzer does) stay parseable, so pretty-printed terms
     mentioning them round-trip. *)
  List.iter
    (fun (name, kind) ->
      let arity = match kind with Exn.K_none -> 0 | _ -> 1 in
      if Con_info.arity cons name = None then
        Con_info.register cons name arity)
    (Exn.declared_list ());
  let toks =
    try Lexer.tokenize src
    with Lexer.Error (msg, line, col) -> raise (Error (msg, line, col))
  in
  { toks; cons }

let parse_expr ?cons src =
  let st = make_state ?cons src in
  let e = parse_expr st in
  (match peek_tok st with
  | Eof -> ()
  | t -> fail st (Printf.sprintf "trailing input: %s" (Token.describe t)));
  e

let parse_program ?cons src =
  let st = make_state ?cons src in
  let rec decls defs datas exns =
    match peek_tok st with
    | Eof -> (List.rev defs, List.rev datas, List.rev exns)
    | _ -> (
        let d = parse_decl st in
        (match peek_tok st with
        | Semi -> advance st
        | Eof -> ()
        | t ->
            fail st
              (Printf.sprintf "expected ';' after declaration but found %s"
                 (Token.describe t)));
        match d with
        | D_def (name, e) -> decls ((name, e) :: defs) datas exns
        | D_data dd -> decls defs (dd :: datas) exns
        | D_exn ed -> decls defs datas (ed :: exns))
  in
  let defs, datas, exns = decls [] [] [] in
  match List.assoc_opt "main" defs with
  | None -> raise (Error ("program has no 'main' definition", 0, 0))
  | Some _ -> { defs; datas; exns; main = Var "main" }

let expr_of_program { defs; main; datas = _; exns = _ } =
  match defs with [] -> main | _ -> Letrec (defs, main)
