(** The [Exception] data type of the extended language.

    The paper supplies [Exception] as part of the Prelude:

    {v
    data Exception = DivideByZero | Overflow | UserError String | ...
                   | NonTermination            -- Section 4.1
                   | Interrupt | Timeout | ... -- asynchronous, Section 5.1
    v}

    Nothing in the paper depends on the exact constructor set; this module
    fixes a concrete, useful choice. [Non_termination] is the extra
    constructor the paper adds when identifying bottom with the set of all
    exceptions (Section 4.1). The asynchronous constructors are those of
    Section 5.1. [Type_error] is our (documented) addition: the paper assumes
    well-typed programs, but an interpreter for an untyped term language
    needs a constructor for ill-typed redexes.

    Since the extensible-hierarchy PR the vocabulary is {e open}: surface
    programs may declare new exception constructors ([exception Name of
    ty;]), which evaluate to the structural [User_exception] constructor
    below. The member set E of the paper's lattice was always infinite
    ([User_error] carries a string); openness only adds new names, so
    {!Exn_set} and every evaluator extend pointwise with no change to the
    ordering. *)

type payload = P_int of int | P_string of string
(** Payload carried by a declared exception constructor (and, uniformly,
    by the string-carrying builtins). *)

type payload_kind = K_none | K_int | K_string
(** Declared payload type of an [exception] declaration: [exception E;],
    [exception E of Int;], [exception E of String;]. *)

type t =
  | Divide_by_zero
  | Overflow
  | Pattern_match_fail of string
      (** Pattern-match failure; the payload names the offending [case]. *)
  | Assertion_failed of string
  | User_error of string  (** Raised by the Prelude function [error]. *)
  | Type_error of string
      (** Runtime type error (ill-typed redex); not in the paper, which
          assumes a typed source language. *)
  | Non_termination
      (** The constructor added in Section 4.1 so that bottom can be
          identified with the set of all exceptions. *)
  | Interrupt  (** Asynchronous: keyboard interrupt (Section 5.1). *)
  | Timeout  (** Asynchronous: external timeout (Section 5.1). *)
  | Stack_overflow_exn  (** Asynchronous resource exhaustion. *)
  | Heap_exhaustion  (** Asynchronous resource exhaustion. *)
  | Heap_overflow
      (** Raised by the abstract machine when a configured heap limit is
          hit ({!Machine.Stg}): catchable resource exhaustion, delivered
          through the ordinary trim-the-stack path so a supervisor can
          recover (GHC's [HeapOverflow]). *)
  | Thread_killed
      (** Asynchronous: delivered by [killThread] ([throwTo] with this
          constant) from another thread — GHC's [ThreadKilled]. *)
  | Blocked_indefinitely
      (** Asynchronous: delivered to a thread that is blocked on an
          [MVar] no other live thread can ever fill or empty. The paper's
          pitch applied to deadlock: an ordinary catchable imprecise
          exception instead of a global abort (GHC's
          [BlockedIndefinitelyOnMVar]). *)
  | User_exception of string * payload option
      (** A user-declared exception constructor (open vocabulary),
          carrying its declared payload. Always synchronous: user code
          raises these; external events do not. *)

val compare : t -> t -> int
val equal : t -> t -> bool

val declare : string -> payload_kind -> unit
(** Register a declared exception constructor. The registry is global and
    monotone (names accumulate; a redeclaration at the same kind is a
    no-op). Redeclaring a name at a {e different} kind raises
    [Invalid_argument] — a name must mean one thing across every program
    a process evaluates (the serve daemon interleaves tenants). *)

val is_declared : string -> bool
val declared_kind : string -> payload_kind option

val declared_list : unit -> (string * payload_kind) list
(** All declared exception constructors, sorted by name. *)

val representative : string -> t option
(** A canonical member for a declared name (payload 0 / "rep"), used where
    an enumeration of representatives of E is needed. *)

val is_asynchronous : t -> bool
(** [is_asynchronous e] is true for the Section 5.1 constructors that are
    injected by external events rather than by evaluation. *)

val is_synchronous : t -> bool

val class_name : t -> string
(** The coarse hierarchy class a typed handler list dispatches on:
    ["arith"], ["async"], ["runtime"], ["user"], or ["declared"] (the
    open vocabulary). Reported with exceptional serve replies. *)

val constructor_name : t -> string
(** Name of the corresponding source-language constructor, e.g.
    ["DivideByZero"]. *)

val of_constructor : string -> string option -> t option
(** [of_constructor name payload] maps a source-language constructor
    application back to an exception constant; [payload] supplies the
    string argument for [UserError] and friends. String-payload special
    case of {!of_constructor_p}. *)

val of_constructor_p : string -> payload option -> t option
(** Generalised conversion covering declared exceptions and integer
    payloads. Returns [None] both for unknown names and for a payload
    whose kind mismatches the declaration — callers uniformly report the
    latter as a runtime [Type_error], so all evaluators agree. *)

val payload : t -> payload option
(** The payload carried by [e], if any. *)

val pp : t Fmt.t

module Set : Stdlib.Set.S with type elt = t

val all_known : t list
(** Every nullary-or-canonical exception constant, used when an enumeration
    of "representatives of E" is needed (e.g. for testing the lattice). The
    set E itself is infinite ([User_error] has a string payload). *)
