(** The [Exception] data type of the extended language.

    The paper supplies [Exception] as part of the Prelude:

    {v
    data Exception = DivideByZero | Overflow | UserError String | ...
                   | NonTermination            -- Section 4.1
                   | Interrupt | Timeout | ... -- asynchronous, Section 5.1
    v}

    Nothing in the paper depends on the exact constructor set; this module
    fixes a concrete, useful choice. [Non_termination] is the extra
    constructor the paper adds when identifying bottom with the set of all
    exceptions (Section 4.1). The asynchronous constructors are those of
    Section 5.1. [Type_error] is our (documented) addition: the paper assumes
    well-typed programs, but an interpreter for an untyped term language
    needs a constructor for ill-typed redexes. *)

type t =
  | Divide_by_zero
  | Overflow
  | Pattern_match_fail of string
      (** Pattern-match failure; the payload names the offending [case]. *)
  | Assertion_failed of string
  | User_error of string  (** Raised by the Prelude function [error]. *)
  | Type_error of string
      (** Runtime type error (ill-typed redex); not in the paper, which
          assumes a typed source language. *)
  | Non_termination
      (** The constructor added in Section 4.1 so that bottom can be
          identified with the set of all exceptions. *)
  | Interrupt  (** Asynchronous: keyboard interrupt (Section 5.1). *)
  | Timeout  (** Asynchronous: external timeout (Section 5.1). *)
  | Stack_overflow_exn  (** Asynchronous resource exhaustion. *)
  | Heap_exhaustion  (** Asynchronous resource exhaustion. *)
  | Heap_overflow
      (** Raised by the abstract machine when a configured heap limit is
          hit ({!Machine.Stg}): catchable resource exhaustion, delivered
          through the ordinary trim-the-stack path so a supervisor can
          recover (GHC's [HeapOverflow]). *)
  | Thread_killed
      (** Asynchronous: delivered by [killThread] ([throwTo] with this
          constant) from another thread — GHC's [ThreadKilled]. *)
  | Blocked_indefinitely
      (** Asynchronous: delivered to a thread that is blocked on an
          [MVar] no other live thread can ever fill or empty. The paper's
          pitch applied to deadlock: an ordinary catchable imprecise
          exception instead of a global abort (GHC's
          [BlockedIndefinitelyOnMVar]). *)

val compare : t -> t -> int
val equal : t -> t -> bool

val is_asynchronous : t -> bool
(** [is_asynchronous e] is true for the Section 5.1 constructors that are
    injected by external events rather than by evaluation. *)

val is_synchronous : t -> bool

val constructor_name : t -> string
(** Name of the corresponding source-language constructor, e.g.
    ["DivideByZero"]. *)

val of_constructor : string -> string option -> t option
(** [of_constructor name payload] maps a source-language constructor
    application back to an exception constant; [payload] supplies the
    string argument for [UserError] and friends. *)

val pp : t Fmt.t

module Set : Stdlib.Set.S with type elt = t

val all_known : t list
(** Every nullary-or-canonical exception constant, used when an enumeration
    of "representatives of E" is needed (e.g. for testing the lattice). The
    set E itself is infinite ([User_error] has a string payload). *)
