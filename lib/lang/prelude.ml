let source =
  {|
id x = x;
const x y = x;
compose f g x = f (g x);
flip f x y = f y x;
not b = if b then False else True;
fst p = case p of { Pair a b -> a };
snd p = case p of { Pair a b -> b };
error s = raise (UserError s);
assertTrue b v = if b then v else raise (AssertionFailed "assertTrue");

append xs ys = case xs of { Nil -> ys; Cons z zs -> z : append zs ys };
map f xs = case xs of { Nil -> []; Cons y ys -> f y : map f ys };
filter p xs = case xs of
  { Nil -> [];
    Cons y ys -> if p y then y : filter p ys else filter p ys };
foldr f z xs = case xs of { Nil -> z; Cons y ys -> f y (foldr f z ys) };
foldl f z xs = case xs of { Nil -> z; Cons y ys -> foldl f (f z y) ys };
length xs = case xs of { Nil -> 0; Cons y ys -> 1 + length ys };
sum xs = foldl (+) 0 xs;
product xs = foldl (*) 1 xs;
head xs = case xs of
  { Nil -> raise (PatternMatchFail "head"); Cons y ys -> y };
tail xs = case xs of
  { Nil -> raise (PatternMatchFail "tail"); Cons y ys -> ys };
null xs = case xs of { Nil -> True; Cons y ys -> False };
take n xs = if n <= 0 then []
  else case xs of { Nil -> []; Cons y ys -> y : take (n - 1) ys };
drop n xs = if n <= 0 then xs
  else case xs of { Nil -> []; Cons y ys -> drop (n - 1) ys };
replicate n x = if n <= 0 then [] else x : replicate (n - 1) x;
repeat x = x : repeat x;
iterate f x = x : iterate f (f x);
reverse xs = foldl (flip (\y ys -> y : ys)) [] xs;
concat xss = foldr append [] xss;
zip xs ys = zipWith (\a b -> (a, b)) xs ys;
zipWith f xs ys = case xs of
  { Nil -> case ys of { Nil -> []; Cons b bs -> error "Unequal lists" };
    Cons a as2 -> case ys of
      { Nil -> error "Unequal lists";
        Cons b bs -> f a b : zipWith f as2 bs } };
index xs n = case xs of
  { Nil -> raise (PatternMatchFail "index");
    Cons y ys -> if n == 0 then y else index ys (n - 1) };
elem x xs = case xs of
  { Nil -> False; Cons y ys -> if x == y then True else elem x ys };
all p xs = case xs of
  { Nil -> True; Cons y ys -> if p y then all p ys else False };
any p xs = case xs of
  { Nil -> False; Cons y ys -> if p y then True else any p ys };
enumFromTo lo hi = if lo > hi then [] else lo : enumFromTo (lo + 1) hi;
maybe d f m = case m of { Nothing -> d; Just x -> f x };
fromJust m = case m of
  { Nothing -> raise (PatternMatchFail "fromJust"); Just x -> x };
lookupInt k kvs = case kvs of
  { Nil -> Nothing;
    Cons p ps -> case p of
      { Pair k2 v -> if k == k2 then Just v else lookupInt k ps } };
forceList xs = case xs of
  { Nil -> Nil; Cons y ys -> seq y (y : forceList ys) };
forceSpine xs = case xs of { Nil -> Nil; Cons y ys -> y : forceSpine ys };

takeWhile p xs = case xs of
  { Nil -> [];
    Cons y ys -> if p y then y : takeWhile p ys else [] };
dropWhile p xs = case xs of
  { Nil -> [];
    Cons y ys -> if p y then dropWhile p ys else xs };
span p xs = (takeWhile p xs, dropWhile p xs);
splitAt n xs = (take n xs, drop n xs);
last xs = case xs of
  { Nil -> raise (PatternMatchFail "last");
    Cons y ys -> case ys of { Nil -> y; Cons z zs -> last ys } };
init xs = case xs of
  { Nil -> raise (PatternMatchFail "init");
    Cons y ys -> case ys of { Nil -> []; Cons z zs -> y : init ys } };
concatMap f xs = concat (map f xs);
intersperse sep xs = case xs of
  { Nil -> [];
    Cons y ys -> case ys of
      { Nil -> [y]; Cons z zs -> y : sep : intersperse sep ys } };
unfoldr f b = case f b of
  { Nothing -> []; Just p -> case p of { Pair a b2 -> a : unfoldr f b2 } };
scanl f z xs = z : (case xs of
  { Nil -> []; Cons y ys -> scanl f (f z y) ys });
minimum xs = case xs of
  { Nil -> raise (PatternMatchFail "minimum");
    Cons y ys -> foldl (\a b -> if a <= b then a else b) y ys };
maximum xs = case xs of
  { Nil -> raise (PatternMatchFail "maximum");
    Cons y ys -> foldl (\a b -> if a >= b then a else b) y ys };
andList bs = case bs of
  { Nil -> True; Cons b rest -> if b then andList rest else False };
orList bs = case bs of
  { Nil -> False; Cons b rest -> if b then True else orList rest };
count p xs = length (filter p xs);
nubInt xs = case xs of
  { Nil -> [];
    Cons y ys -> y : nubInt (filter (\z -> z /= y) ys) };
insertSorted x xs = case xs of
  { Nil -> [x];
    Cons y ys -> if x <= y then x : xs else y : insertSorted x ys };
sortInt xs = foldr insertSorted [] xs;
curry2 f a b = f (a, b);
uncurry2 f p = case p of { Pair a b -> f a b };

eqExn a b = case a of
  { DivideByZero -> case b of { DivideByZero -> True; z -> False };
    Overflow -> case b of { Overflow -> True; z -> False };
    NonTermination -> case b of { NonTermination -> True; z -> False };
    Interrupt -> case b of { Interrupt -> True; z -> False };
    Timeout -> case b of { Timeout -> True; z -> False };
    StackOverflow -> case b of { StackOverflow -> True; z -> False };
    HeapExhaustion -> case b of { HeapExhaustion -> True; z -> False };
    HeapOverflow -> case b of { HeapOverflow -> True; z -> False };
    ThreadKilled -> case b of { ThreadKilled -> True; z -> False };
    BlockedIndefinitely ->
      case b of { BlockedIndefinitely -> True; z -> False };
    SupervisorLimit n1 ->
      case b of { SupervisorLimit n2 -> n1 == n2; z -> False };
    UserError s1 -> case b of { UserError s2 -> s1 == s2; z -> False };
    TypeError s1 -> case b of { TypeError s2 -> s1 == s2; z -> False };
    PatternMatchFail s1 ->
      case b of { PatternMatchFail s2 -> s1 == s2; z -> False };
    AssertionFailed s1 ->
      case b of { AssertionFailed s2 -> s1 == s2; z -> False } };
eqExVal eqV a b = case a of
  { OK x -> case b of { OK y -> eqV x y; z -> False };
    Bad e1 -> case b of { Bad e2 -> eqExn e1 e2; z -> False } };
eqList eqV xs ys = case xs of
  { Nil -> null ys;
    Cons x xs2 -> case ys of
      { Nil -> False;
        Cons y ys2 -> if eqV x y then eqList eqV xs2 ys2 else False } };
eqPair eqA eqB p q = case p of
  { Pair a1 b1 -> case q of
      { Pair a2 b2 -> if eqA a1 a2 then eqB b1 b2 else False } };
eqMaybe eqV m1 m2 = case m1 of
  { Nothing -> case m2 of { Nothing -> True; z -> False };
    Just x -> case m2 of { Just y -> eqV x y; z -> False } };

showIntRev n = if n < 10 then [chr (48 + n)]
  else chr (48 + (n % 10)) : showIntRev (n / 10);
showInt n = if n < 0 then chr 45 : reverse (showIntRev (0 - n))
  else reverse (showIntRev n);
showBool b = if b then [chr 84] else [chr 70];

return x = Return x;
getChar = GetChar;
putChar c = PutChar c;
getException v = GetException v;
forkIO m = Fork m;
newEmptyMVar = NewMVar;
takeMVar r = TakeMVar r;
putMVar r v = PutMVar r v;
myThreadId = MyThreadId;
throwTo t e = ThrowTo t e;
killThread t = ThrowTo t ThreadKilled;
newChan n = NewChan n;
readChan c = ReadChan c;
writeChan c v = WriteChan c v;

bracket acq rel use = Bracket acq rel use;
bracket2 before after use = Bracket before (\u -> after) (\u -> use);
finally m cleanup = Bracket (Return Unit) (\u -> cleanup) (\u -> m);
onException m h = OnException m h;
mask m = Mask m;
unmask m = Unmask m;
timeout n m = WithTimeout n m;
retryWithBackoff n b m = Retry n b m;

catchIO m h = GetException (m >>= \x -> Return x) >>= \r ->
  case r of { OK x -> Return x; Bad e -> h e };
orElseIO m1 m2 = catchIO m1 (\e -> m2);
fallbacks ms = case ms of
  { Nil -> raise (UserError "fallbacks: no alternative");
    Cons m rest -> case rest of
      { Nil -> m; Cons m2 ms2 -> orElseIO m (fallbacks rest) } };
supervise n m = if n <= 0 then m
  else catchIO m (\e -> supervise (n - 1) m);
superviseWorker n worker fallback = if n <= 0 then fallback
  else newEmptyMVar >>= \mv ->
    forkIO (worker >>= \x -> putMVar mv x) >>= \u ->
    catchIO (takeMVar mv)
      (\e -> superviseWorker (n - 1) worker fallback);

evaluate e = Evaluate e;
throwIO e = Evaluate (raise e);
tryIO m = GetException (m >>= \x -> Return x) >>= \r ->
  case r of { OK x -> Return (Right x); Bad e -> Return (Left e) };
try m = tryIO m;

toException e = SomeException e;
fromException se = case se of { SomeException e -> Just e };

handler match act = Handler (\e -> case match e of
  { Nothing -> Nothing; Just x -> Just (act x) });
dispatchHandlers e hs = case hs of
  { Nil -> throwIO e;
    Cons h rest -> case h of
      { Handler f -> case f e of
          { Nothing -> dispatchHandlers e rest;
            Just act -> act } } };
catches m hs = catchIO m (\e -> dispatchHandlers e hs);

matchAny e = Just e;
matchArith e = case e of
  { DivideByZero -> Just e; Overflow -> Just e; z -> Nothing };
matchAsync e = case e of
  { Interrupt -> Just e; Timeout -> Just e; StackOverflow -> Just e;
    HeapExhaustion -> Just e; HeapOverflow -> Just e;
    ThreadKilled -> Just e; BlockedIndefinitely -> Just e;
    z -> Nothing };
matchUserError e = case e of { UserError s -> Just s; z -> Nothing };
matchSupervisorLimit e =
  case e of { SupervisorLimit n -> Just n; z -> Nothing };

spawnChild ch i m =
  newEmptyMVar >>= \tidCell ->
  forkIO (mask (myThreadId >>= \tid -> putMVar tidCell tid >>= \u ->
          tryIO (unmask m) >>= \r -> writeChan ch (i, r))) >>= \u ->
  takeMVar tidCell;
spawnAll ch retries backoff specs idxs = mapM
  (\i -> spawnChild ch i (retryWithBackoff retries backoff (index specs i))
    >>= \tid -> Return (i, tid))
  idxs;
killAll tids = mapM2 (\p -> killThread (snd p)) tids;
drainSiblings ch idxs k kept =
  if k <= 0 then Return kept
  else readChan ch >>= \msg -> case msg of
    { Pair j r -> if elem j idxs
        then drainSiblings ch idxs (k - 1) kept
        else drainSiblings ch idxs k (append kept [msg]) };

supervisorLoop strat maxR window retries backoff ch specs tids events
  stamps pending =
  case pending of
    { Cons msg rest -> supervisorStep strat maxR window retries backoff ch
        specs tids events stamps rest msg;
      Nil -> readChan ch >>= \msg -> supervisorStep strat maxR window
        retries backoff ch specs tids events stamps [] msg };
supervisorStep strat maxR window retries backoff ch specs tids events
  stamps pending msg =
  case msg of { Pair i r -> case r of
    { Right v ->
        let tids2 = filter (\p -> fst p /= i) tids in
        if null tids2 then Return Unit
        else supervisorLoop strat maxR window retries backoff ch specs
          tids2 (events + 1) stamps pending;
      Left e -> supervisorRestart strat maxR window retries backoff ch
        specs tids (events + 1) stamps pending i } };
supervisorRestart strat maxR window retries backoff ch specs tids events
  stamps pending i =
  let live = filter (\s -> s > (events - window)) stamps in
  if length live >= maxR
  then killAll (filter (\p -> fst p /= i) tids) >>= \u ->
       throwIO (SupervisorLimit (length live))
  else
    let stamps2 = events : live in
    case strat of
      { OneForOne ->
          spawnChild ch i
            (retryWithBackoff retries backoff (index specs i)) >>= \tid ->
          supervisorLoop strat maxR window retries backoff ch specs
            ((i, tid) : filter (\p -> fst p /= i) tids)
            events stamps2 pending;
        OneForAll ->
          restartGroup strat maxR window retries backoff ch specs
            (filter (\p -> fst p /= i) tids) [] events stamps2 pending i;
        RestForOne ->
          restartGroup strat maxR window retries backoff ch specs
            (filter (\p -> fst p > i) tids)
            (filter (\p -> fst p < i) tids)
            events stamps2 pending i };
restartGroup strat maxR window retries backoff ch specs doomed kept events
  stamps pending i =
  let idxs = map fst doomed in
  let drained = count (\msg -> elem (fst msg) idxs) pending in
  let pending2 = filter (\msg -> not (elem (fst msg) idxs)) pending in
  killAll doomed >>= \u ->
  drainSiblings ch idxs ((length doomed) - drained) pending2 >>= \pending3 ->
  spawnAll ch retries backoff specs (i : idxs) >>= \tids2 ->
  supervisorLoop strat maxR window retries backoff ch specs
    (append kept tids2) events stamps pending3;

supervisorTreeB strat maxR window retries backoff specs =
  newChan ((length specs) + 1) >>= \ch ->
  spawnAll ch retries backoff specs (enumFromTo 0 ((length specs) - 1))
    >>= \tids ->
  supervisorLoop strat maxR window retries backoff ch specs tids 0 [] [];
supervisorTree strat maxR window specs =
  supervisorTreeB strat maxR window 0 1 specs;

putList cs = case cs of
  { Nil -> Return Unit;
    Cons c cs2 -> PutChar c >>= \u -> putList cs2 };
newline = chr 10;
putLine cs = putList (append cs [newline]);
putInt n = putList (showInt n);
mapM f xs = case xs of
  { Nil -> Return [];
    Cons y ys -> f y >>= \r -> mapM f ys >>= \rs -> Return (r : rs) };
mapM2 f xs = case xs of
  { Nil -> Return Unit;
    Cons y ys -> f y >>= \u -> mapM2 f ys };
ioSeq ms = case ms of
  { Nil -> Return Unit; Cons m rest -> m >>= \u -> ioSeq rest };
|}

let parsed =
  lazy
    (let prog_src = source ^ "\nmain = Return Unit;" in
     let prog = Parser.parse_program prog_src in
     List.filter (fun (n, _) -> not (String.equal n "main")) prog.Syntax.defs)

let defs = Lazy.force parsed
let names = List.map fst defs

let wrap e = Syntax.Letrec (defs, e)

let wrap_program (p : Syntax.program) =
  wrap (Syntax.Letrec (p.defs, p.main))
