(** Tokens of the concrete syntax, with source positions for error
    reporting. *)

type t =
  | Int of int
  | Char of char
  | String of string
  | Lower of string  (** lowercase identifier / keyword candidate *)
  | Upper of string  (** capitalised identifier: a constructor *)
  | Kw_let
  | Kw_rec
  | Kw_and
  | Kw_in
  | Kw_case
  | Kw_of
  | Kw_if
  | Kw_then
  | Kw_else
  | Kw_raise
  | Kw_fix
  | Kw_data
  | Kw_exception
  | Backslash
  | Arrow  (** [->] *)
  | Equals
  | Semi
  | Comma
  | Underscore
  | Lparen
  | Rparen
  | Lbrace
  | Rbrace
  | Lbracket
  | Rbracket
  | Pipe
  | Op of string  (** infix operator: [+ - * / % == /= < <= > >= : >>= >>] *)
  | Eof

type located = { tok : t; line : int; col : int }

val pp : t Fmt.t
val describe : t -> string
val equal : t -> t -> bool
