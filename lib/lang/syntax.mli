(** Abstract syntax of the extended language (Figure 1 of the paper, plus the
    conveniences any real program needs: literals beyond integers,
    [let]/[letrec], and saturated constructor applications).

    The paper's grammar:

    {v
    e ::= x | k | e1 e2 | \x1...xn. e | C e1 ... en
        | case e of { p1 -> e1 ; ... }      p ::= C x1 ... xn
        | raise e | e1 + e2 | fix e
    v}

    [IO] computations are ordinary constructor values ([Return], [Bind],
    [GetChar], [PutChar], [GetException]): Section 4.4 says "from a semantic
    point of view we regard IO as an algebraic data type". The operational
    layer ({!module:Semantics} in the sibling library) interprets them. *)

type lit =
  | Lit_int of int
  | Lit_char of char
  | Lit_string of string
      (** Strings are primitive here (rather than [List Char]) to keep
          [UserError]'s payload cheap; the Prelude provides [unpack]. *)

type pat =
  | Pcon of string * string list
      (** Constructor pattern [C x1 ... xn]; fields are binders. *)
  | Plit of lit  (** Literal pattern (integers and characters). *)
  | Pany of string option
      (** Default alternative; [Some x] binds the scrutinee. *)

type expr =
  | Var of string
  | Lit of lit
  | Lam of string * expr
  | App of expr * expr
  | Con of string * expr list  (** Saturated constructor application. *)
  | Case of expr * alt list
  | Let of string * expr * expr  (** Non-recursive local binding. *)
  | Letrec of (string * expr) list * expr
  | Prim of Prim.t * expr list  (** Saturated primitive application. *)
  | Raise of expr  (** [raise e]; [e] evaluates to an [Exception]. *)
  | Fix of expr  (** Least fixed point, as in Figure 1. *)

and alt = { pat : pat; rhs : expr }

type ty_expr =
  | Ty_var of string  (** a type variable, e.g. [a] *)
  | Ty_con of string * ty_expr list  (** [Int], [List a], [Pair a b] *)
  | Ty_fun of ty_expr * ty_expr

type data_decl = {
  type_name : string;
  type_params : string list;
  constructors : (string * ty_expr list) list;
}
(** A [data] declaration: name, parameters, and each constructor's field
    types. *)

type exn_decl = { exn_name : string; exn_payload : ty_expr option }
(** An [exception] declaration: a new member of the open exception
    vocabulary, optionally carrying an [Int] or [String] payload. *)

type program = {
  defs : (string * expr) list;
  datas : data_decl list;
  exns : exn_decl list;
  main : expr;
}
(** A parsed module: [data] and [exception] declarations, top-level
    definitions (mutually recursive) and the expression bound to
    [main]. *)

val equal : expr -> expr -> bool
(** Structural equality (not alpha-equivalence; see {!Subst.alpha_equal}). *)

val compare : expr -> expr -> int

val size : expr -> int
(** Number of AST nodes; the code-size measure used by the ExVal-encoding
    cost experiment (claim C6). *)

val depth : expr -> int

val lit_equal : lit -> lit -> bool
val pat_binders : pat -> string list

(* Common constructor names, centralised so every layer agrees. *)

val c_true : string
val c_false : string
val c_nil : string
val c_cons : string
val c_unit : string
val c_pair : string
val c_ok : string
val c_bad : string
val c_just : string
val c_nothing : string
val c_return : string
val c_bind : string
val c_get_char : string
val c_put_char : string
val c_get_exception : string
val c_bracket : string
val c_on_exception : string
val c_mask : string
val c_unmask : string
val c_timeout : string
val c_retry : string
val c_evaluate : string
val c_handler : string
val c_left : string
val c_right : string
val c_some_exception : string

val is_io_constructor : string -> bool
(** True for the constructors of the [IO] data type, including the
    exception-safety combinators ([Bracket], [OnException], [Mask],
    [Unmask], [WithTimeout], [Retry]). *)

val is_io_action_constructor : string -> bool
(** Like {!is_io_constructor} but also covering the concurrency
    extension ([Fork], MVar operations, [MyThreadId], [ThrowTo]) — every
    performable action, excluding the value wrappers [MVarRef] and
    [ThreadId]. *)

val bool_expr : bool -> expr
val int_expr : int -> expr
val list_expr : expr list -> expr
(** Build a [Cons]/[Nil] spine. *)
