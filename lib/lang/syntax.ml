type lit = Lit_int of int | Lit_char of char | Lit_string of string

type pat = Pcon of string * string list | Plit of lit | Pany of string option

type expr =
  | Var of string
  | Lit of lit
  | Lam of string * expr
  | App of expr * expr
  | Con of string * expr list
  | Case of expr * alt list
  | Let of string * expr * expr
  | Letrec of (string * expr) list * expr
  | Prim of Prim.t * expr list
  | Raise of expr
  | Fix of expr

and alt = { pat : pat; rhs : expr }

type ty_expr =
  | Ty_var of string
  | Ty_con of string * ty_expr list
  | Ty_fun of ty_expr * ty_expr

type data_decl = {
  type_name : string;
  type_params : string list;
  constructors : (string * ty_expr list) list;
}

(* [exception Name;] / [exception Name of Int;] / [exception Name of
   String;] — an open-vocabulary extension of the prelude's Exception
   type. The payload is restricted to Int/String so that every exception
   value can cross the language/Exn.t boundary at a [raise]. *)
type exn_decl = { exn_name : string; exn_payload : ty_expr option }

type program = {
  defs : (string * expr) list;
  datas : data_decl list;
  exns : exn_decl list;
  main : expr;
}

let equal (a : expr) (b : expr) = a = b
let compare = Stdlib.compare
let lit_equal (a : lit) (b : lit) = a = b

let rec size = function
  | Var _ | Lit _ -> 1
  | Lam (_, e) | Raise e | Fix e -> 1 + size e
  | App (e1, e2) -> 1 + size e1 + size e2
  | Con (_, es) | Prim (_, es) ->
      List.fold_left (fun acc e -> acc + size e) 1 es
  | Case (e, alts) ->
      List.fold_left (fun acc a -> acc + size a.rhs) (1 + size e) alts
  | Let (_, e1, e2) -> 1 + size e1 + size e2
  | Letrec (binds, body) ->
      List.fold_left (fun acc (_, e) -> acc + size e) (1 + size body) binds

let rec depth = function
  | Var _ | Lit _ -> 1
  | Lam (_, e) | Raise e | Fix e -> 1 + depth e
  | App (e1, e2) -> 1 + max (depth e1) (depth e2)
  | Con (_, es) | Prim (_, es) ->
      1 + List.fold_left (fun acc e -> max acc (depth e)) 0 es
  | Case (e, alts) ->
      1
      + List.fold_left (fun acc a -> max acc (depth a.rhs)) (depth e) alts
  | Let (_, e1, e2) -> 1 + max (depth e1) (depth e2)
  | Letrec (binds, body) ->
      1
      + List.fold_left (fun acc (_, e) -> max acc (depth e)) (depth body) binds

let pat_binders = function
  | Pcon (_, xs) -> xs
  | Plit _ -> []
  | Pany (Some x) -> [ x ]
  | Pany None -> []

let c_true = "True"
let c_false = "False"
let c_nil = "Nil"
let c_cons = "Cons"
let c_unit = "Unit"
let c_pair = "Pair"
let c_ok = "OK"
let c_bad = "Bad"
let c_just = "Just"
let c_nothing = "Nothing"
let c_return = "Return"
let c_bind = "Bind"
let c_get_char = "GetChar"
let c_put_char = "PutChar"
let c_get_exception = "GetException"
let c_bracket = "Bracket"
let c_on_exception = "OnException"
let c_mask = "Mask"
let c_unmask = "Unmask"
let c_timeout = "WithTimeout"
let c_retry = "Retry"
let c_evaluate = "Evaluate"
let c_handler = "Handler"
let c_left = "Left"
let c_right = "Right"
let c_some_exception = "SomeException"

let is_io_constructor c =
  List.mem c
    [
      c_return;
      c_bind;
      c_get_char;
      c_put_char;
      c_get_exception;
      c_bracket;
      c_on_exception;
      c_mask;
      c_unmask;
      c_timeout;
      c_retry;
    ]

(* Every performable IO action, including the concurrency extension —
   but not the value wrappers MVarRef/ThreadId. The IO drivers use this
   to recognise [getException <io action>] (perform-under-a-catch). *)
let is_io_action_constructor c =
  is_io_constructor c
  || List.mem c
       [
         "Fork";
         "NewMVar";
         "TakeMVar";
         "PutMVar";
         "MyThreadId";
         "ThrowTo";
         "NewChan";
         "ReadChan";
         "WriteChan";
         c_evaluate;
       ]

let bool_expr b = Con ((if b then c_true else c_false), [])
let int_expr n = Lit (Lit_int n)

let list_expr es =
  List.fold_right (fun e acc -> Con (c_cons, [ e; acc ])) es (Con (c_nil, []))
