open Syntax

let var x = Var x
let int n = Lit (Lit_int n)
let char c = Lit (Lit_char c)
let str s = Lit (Lit_string s)
let lam x e = Lam (x, e)
let lams xs e = List.fold_right (fun x acc -> Lam (x, acc)) xs e
let app f a = App (f, a)
let apps f args = List.fold_left (fun acc a -> App (acc, a)) f args
let con c es = Con (c, es)
let let_ x e1 e2 = Let (x, e1, e2)
let letrec binds body = Letrec (binds, body)
let fix e = Fix e

let prim2 p a b = Prim (p, [ a; b ])
let ( + ) = prim2 Prim.Add
let ( - ) = prim2 Prim.Sub
let ( * ) = prim2 Prim.Mul
let ( / ) = prim2 Prim.Div
let ( mod ) = prim2 Prim.Mod
let ( == ) = prim2 Prim.Eq
let ( < ) = prim2 Prim.Lt
let ( <= ) = prim2 Prim.Le
let ( > ) = prim2 Prim.Gt
let ( >= ) = prim2 Prim.Ge
let neg e = Prim (Prim.Neg, [ e ])
let seq = prim2 Prim.Seq
let map_exception = prim2 Prim.Map_exception

let true_ = Con (c_true, [])
let false_ = Con (c_false, [])
let unit_ = Con (c_unit, [])
let nil = Con (c_nil, [])
let cons x xs = Con (c_cons, [ x; xs ])
let list = list_expr
let pair a b = Con (c_pair, [ a; b ])
let just e = Con (c_just, [ e ])
let nothing = Con (c_nothing, [])

let pcon c xs = Pcon (c, xs)
let pint n = Plit (Lit_int n)
let pany = Pany None
let pvar x = Pany (Some x)
let case e alts = Case (e, List.map (fun (pat, rhs) -> { pat; rhs }) alts)

let if_ c t f = case c [ (pcon c_true [], t); (pcon c_false [], f) ]

let raise_ e = Raise e

let exn_con (e : Exn.t) =
  let name = Exn.constructor_name e in
  match Exn.payload e with
  | Some (Exn.P_string s) -> Con (name, [ str s ])
  | Some (Exn.P_int n) -> Con (name, [ int n ])
  | None -> Con (name, [])

let raise_exn e = Raise (exn_con e)
let error s = raise_exn (Exn.User_error s)

let io_return e = Con (c_return, [ e ])
let io_bind m k = Con (c_bind, [ m; k ])
let get_char = Con (c_get_char, [])
let put_char e = Con (c_put_char, [ e ])
let get_exception e = Con (c_get_exception, [ e ])
let io_bracket acq rel use = Con (c_bracket, [ acq; rel; use ])
let io_on_exception m h = Con (c_on_exception, [ m; h ])
let io_mask m = Con (c_mask, [ m ])
let io_unmask m = Con (c_unmask, [ m ])
let io_timeout k m = Con (c_timeout, [ k; m ])
let io_retry n b m = Con (c_retry, [ n; b; m ])

let loop = Fix (lam "x" (var "x"))
let loop_plus_error = loop + error "Urk"
let div_zero_plus_error = int 1 / int 0 + error "Urk"
let black = letrec [ ("black", var "black" + int 1) ] (var "black")
