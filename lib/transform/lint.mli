(** A CoreLint-style IR sanity checker for the optimisation pipeline.

    The paper's licence to transform (Section 4.5) is a licence to get
    things subtly wrong: a pass that drops a live binding or rebuilds a
    constructor at the wrong arity produces a term the machines will
    happily mis-evaluate. Following GHC's CoreLint, every pass output is
    mechanically checked against the pass input:

    - {b closed scope}: the output's free variables must be a subset of
      the input's (a pass may drop free occurrences, never invent them);
    - {b binder uniqueness where assumed}: no duplicate binders inside a
      single [Pcon] pattern, no duplicate names in one [letrec] group;
    - {b well-formed arities}: constructor applications match the
      built-in constructor table (and are used at one consistent arity
      per term), primitives are fully saturated, no empty [case];
    - {b type preservation}: when the input type-checks under the
      Prelude ({!Types.Infer.with_prelude}), the output must too, and a
      ground (type-variable-free) type must be rendered identically.
      Re-inference may legally {e generalise} — e.g. case-of-known
      dropping the alternative that pinned a type variable — so two
      differing polymorphic renderings are not flagged.

    Checks are differential against a {!st} snapshot of the pass input:
    a structural oddity already present in the input (say, a wrong-arity
    [Pcon] alternative, which the machines treat as unreachable rather
    than ill-formed) is tolerated; only {e newly introduced} violations
    fail the pass. *)

type violation = { check : string; detail : string }
(** One lint finding: the check that fired ("scope",
    "binder-uniqueness", "arity", "pattern", "type-preservation") and a
    human-readable description. *)

val pp_violation : violation Fmt.t

exception
  Lint_error of {
    pass : string;  (** The pass whose output failed the check. *)
    violations : violation list;
    dump : string;  (** Flight-recorder crash dump (or plain summary). *)
  }

val pp_lint_error : exn Fmt.t
(** Renders a [Lint_error]; falls back to [Printexc] otherwise. *)

type st
(** Snapshot of the last known-good term: free variables, canonical
    rendered type (None when it does not type-check), and structural
    findings already present before any pass ran. *)

val snapshot : Lang.Syntax.expr -> st

val ty_of_st : st -> string option
(** The snapshot's inferred type, canonically rendered. *)

val structural :
  free_ok:Lang.Subst.String_set.t -> Lang.Syntax.expr -> violation list
(** The non-typing checks alone: scope (free variables outside
    [free_ok]), binder uniqueness, constructor/primitive arities. *)

val check_pass : ?trace:Obs.t -> pass:string -> prev:st -> Lang.Syntax.expr -> st
(** Lint a pass output against the snapshot of its input. On success
    returns the output's own snapshot (so a pipeline threads one
    snapshot through its passes, paying one type inference per pass).
    On failure records {!Obs.Ev_lint_fail} in [trace] (when tracing is
    on) and raises {!Lint_error} carrying a crash dump that names the
    offending pass. *)
