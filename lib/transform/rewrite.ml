open Lang.Syntax

(* [map_children] preserves physical identity: an untouched node (no
   child changed) is returned as-is, not rebuilt. Downstream consumers
   lean on this — the pipeline's no-op detection and the linter's
   pristine-prelude fast paths start with pointer comparisons, which
   only hit if rewriting shares what it does not change. *)
let map_sharing f xs =
  let changed = ref false in
  let ys =
    List.map
      (fun x ->
        let y = f x in
        if y != x then changed := true;
        y)
      xs
  in
  if !changed then ys else xs

let map_children f e =
  match e with
  | Var _ | Lit _ -> e
  | Lam (x, b) ->
      let b' = f b in
      if b' == b then e else Lam (x, b')
  | App (e1, e2) ->
      let e1' = f e1 and e2' = f e2 in
      if e1' == e1 && e2' == e2 then e else App (e1', e2')
  | Con (c, es) ->
      let es' = map_sharing f es in
      if es' == es then e else Con (c, es')
  | Case (s, alts) ->
      let s' = f s
      and alts' =
        map_sharing
          (fun a ->
            let rhs' = f a.rhs in
            if rhs' == a.rhs then a else { a with rhs = rhs' })
          alts
      in
      if s' == s && alts' == alts then e else Case (s', alts')
  | Let (x, e1, e2) ->
      let e1' = f e1 and e2' = f e2 in
      if e1' == e1 && e2' == e2 then e else Let (x, e1', e2')
  | Letrec (binds, body) ->
      let binds' =
        map_sharing
          (fun ((x, e1) as b) ->
            let e1' = f e1 in
            if e1' == e1 then b else (x, e1'))
          binds
      and body' = f body in
      if binds' == binds && body' == body then e else Letrec (binds', body')
  | Prim (p, es) ->
      let es' = map_sharing f es in
      if es' == es then e else Prim (p, es')
  | Raise b ->
      let b' = f b in
      if b' == b then e else Raise b'
  | Fix b ->
      let b' = f b in
      if b' == b then e else Fix b'

let bottom_up rule e =
  let count = ref 0 in
  let rec go e =
    let e' = map_children go e in
    match rule e' with
    | Some e'' ->
        incr count;
        e''
    | None -> e'
  in
  let e' = go e in
  (e', !count)

let fixpoint ?(max_rounds = 10) rule e =
  let rec go e total n =
    if n >= max_rounds then (e, total)
    else
      let e', c = bottom_up rule e in
      if c = 0 then (e', total) else go e' (total + c) (n + 1)
  in
  go e 0 0

let first_site rule e =
  let fired = ref false in
  let rec go e =
    if !fired then e
    else
      match rule e with
      | Some e' ->
          fired := true;
          e'
      | None -> map_children go e
  in
  let e' = go e in
  if !fired then Some e' else None

let rec subterms e =
  let children =
    match e with
    | Var _ | Lit _ -> []
    | Lam (_, b) | Raise b | Fix b -> [ b ]
    | App (a, b) | Let (_, a, b) -> [ a; b ]
    | Con (_, es) | Prim (_, es) -> es
    | Case (s, alts) -> s :: List.map (fun a -> a.rhs) alts
    | Letrec (binds, body) -> List.map snd binds @ [ body ]
  in
  e :: List.concat_map subterms children

let count_nodes = size
