open Lang.Syntax
module Strictness = Analysis.Strictness
module Exn_analysis = Analysis.Exn_analysis

type mode = Imprecise | Fixed_order_with_effect_analysis

type report = {
  mode : mode;
  rounds : int;
  sites : (string * int) list;
  blocked_sites : int;
  size_before : int;
  size_after : int;
  lint_checks : int;
  lint_time : float;
}

let pp_mode ppf = function
  | Imprecise -> Fmt.string ppf "imprecise"
  | Fixed_order_with_effect_analysis -> Fmt.string ppf "fixed+effects"

let pp_report ppf r =
  Fmt.pf ppf "[%a] %d rounds, size %d -> %d, blocked %d, %a" pp_mode r.mode
    r.rounds r.size_before r.size_after r.blocked_sites
    Fmt.(list ~sep:comma (pair ~sep:(any ":") string int))
    r.sites;
  if r.lint_checks > 0 then
    Fmt.pf ppf ", lint %d checks (%.1f ms)" r.lint_checks
      (r.lint_time *. 1000.)

(* Non-duplicating, order-preserving simplifications: valid in every
   design, so both pipelines share them. *)
let simplify_rule e =
  match e with
  (* beta, only for atomic arguments (no sharing lost, no work moved) *)
  | App (Lam (x, body), (Var _ as a)) | App (Lam (x, body), (Lit _ as a)) ->
      Some (Lang.Subst.subst x a body)
  | Let (x, ((Var _ | Lit _) as a), body) ->
      Some (Lang.Subst.subst x a body)
  | Let (x, _, e2) when not (Lang.Subst.is_free_in x e2) -> Some e2
  | Case (Con _, _) | Case (Lit _, _) -> (
      match e with
      | Case (scrut, alts) ->
          List.find_map
            (fun a ->
              match (a.pat, scrut) with
              | Pcon (c', xs), Con (c, args)
                when String.equal c c' && List.length xs = List.length args
                ->
                  Some
                    (List.fold_right2
                       (fun x arg acc -> Let (x, arg, acc))
                       xs args a.rhs)
              | Plit l, Lit l' when lit_equal l l' -> Some a.rhs
              | Pany None, _ -> Some a.rhs
              | Pany (Some x), _ -> Some (Let (x, scrut, a.rhs))
              | (Pcon _ | Plit _), _ -> None)
            alts
      | _ -> None)
  | _ -> None

let simplify_pass e = Rewrite.fixpoint simplify_rule e

let cbv_pass mode e =
  let applied = ref 0 and blocked = ref 0 in
  let to_case x e1 body = Case (e1, [ { pat = Pany (Some x); rhs = body } ]) in
  let rule e =
    match e with
    | Let (x, e1, body) -> (
        let demanded =
          Lang.Subst.String_set.mem x
            (Strictness.demanded Strictness.empty_sigs body)
        in
        if not demanded then None
        else
          match mode with
          | Imprecise ->
              incr applied;
              Some (to_case x e1 body)
          | Fixed_order_with_effect_analysis ->
              if Exn_analysis.pure (Exn_analysis.analyze e1) then begin
                incr applied;
                Some (to_case x e1 body)
              end
              else begin
                incr blocked;
                None
              end)
    | _ -> None
  in
  let e', _ = Rewrite.bottom_up rule e in
  (e', !applied, !blocked)

(* Occurrence-guided inlining of non-recursive lets. *)
let inline_pass e =
  let module Occ = Analysis.Occurrence in
  let cheap = function
    | Var _ | Lit _ | Con (_, []) -> true
    | _ -> false
  in
  let rule e =
    match e with
    | Let (x, e1, body) -> (
        match Occ.of_binding x body with
        | Occ.Dead -> Some body
        | Occ.Once -> Some (Lang.Subst.subst x e1 body)
        | Occ.Once_under_lambda | Occ.Many ->
            if cheap e1 then Some (Lang.Subst.subst x e1 body) else None)
    | _ -> None
  in
  Rewrite.fixpoint ~max_rounds:4 rule e

(* Drop letrec bindings unreachable from the body. *)
let prune_pass e =
  let dropped = ref 0 in
  let rule e =
    match e with
    | Letrec (binds, body) ->
        let live = Analysis.Occurrence.reachable_bindings binds body in
        let n_dropped = List.length binds - List.length live in
        if n_dropped = 0 then None
        else begin
          dropped := !dropped + n_dropped;
          match live with
          | [] -> Some body
          | _ -> Some (Letrec (live, body))
        end
    | _ -> None
  in
  let e', _ = Rewrite.fixpoint ~max_rounds:4 rule e in
  (e', !dropped)

(* Case-of-case (Rules.case_of_case, identity in every design): push
   the outer case into the inner alternatives, unblocking
   case-of-known-constructor on the next simplify. Duplicating the
   outer alternatives into several inner branches is allowed only when
   they are small; a single inner alternative never duplicates. *)
let case_of_case_pass e =
  let rule e =
    match e with
    | Case (Case (_, inner), outer) ->
        let outer_size =
          List.fold_left (fun acc a -> acc + size a.rhs) 0 outer
        in
        if List.length inner <= 1 || outer_size <= 16 then
          Rules.case_of_case.applies e
        else None
    | _ -> None
  in
  Rewrite.fixpoint ~max_rounds:4 rule e

(* Case-commute (Rules.case_commute, the Section 4 motivating
   equation): swap two nested single-constructor cases so the smaller
   scrutinee is evaluated first. The strict size decrease both orients
   the rewrite in the improving direction (cheap scrutinee forced
   first, fewer steps before the first match can fail) and keeps the
   outer driver from oscillating. The refinement-direction guard from
   the strictness analysis requires the hoisted case's binders to feed
   a demand in the final body (or bind nothing): we only move an
   evaluation earlier when it is known to be needed. Identity under
   imprecise semantics; Invalid under a fixed order, so the fixed
   pipeline additionally demands both scrutinees provably pure,
   counting refused sites as blocked. *)
let case_commute_pass mode e =
  let applied = ref 0 and blocked = ref 0 in
  let rule e =
    match e with
    | Case (s1, [ a1 ]) -> (
        match a1.rhs with
        | Case (s2, [ a2 ]) when size s2 < size s1 ->
            let demanded =
              Strictness.demanded Strictness.empty_sigs a2.rhs
            in
            let feeds_demand =
              match pat_binders a2.pat with
              | [] -> true
              | bs ->
                  List.exists
                    (fun b -> Lang.Subst.String_set.mem b demanded)
                    bs
            in
            if not feeds_demand then None
            else (
              match Rules.case_commute.applies e with
              | None -> None
              | Some e' -> (
                  match mode with
                  | Imprecise ->
                      incr applied;
                      Some e'
                  | Fixed_order_with_effect_analysis ->
                      if
                        Exn_analysis.pure (Exn_analysis.analyze s1)
                        && Exn_analysis.pure (Exn_analysis.analyze s2)
                      then begin
                        incr applied;
                        Some e'
                      end
                      else begin
                        incr blocked;
                        None
                      end))
        | _ -> None)
    | _ -> None
  in
  let e', _ = Rewrite.bottom_up rule e in
  (e', !applied, !blocked)

(* ------------------------------------------------------------------ *)
(* Broken-pass ablations                                               *)
(* ------------------------------------------------------------------ *)

let ablations =
  [ "unbind-var"; "drop-con-arg"; "dup-pattern-binder"; "int-to-string" ]

(* Each ablation corrupts the first eligible site the way a buggy pass
   would, exercising one lint check category. *)
let sabotage name e =
  let rule =
    match name with
    | "unbind-var" -> (
        function
        | Let (x, e1, body) when Lang.Subst.is_free_in x body ->
            Some (Let (x ^ "'lint", e1, body))
        | _ -> None)
    | "drop-con-arg" -> (
        function
        | Con (c, (_ :: _ as args)) ->
            Some
              (Con (c, List.filteri (fun i _ -> i < List.length args - 1) args))
        | _ -> None)
    | "dup-pattern-binder" -> (
        function
        | Case (s, alts) ->
            let dup = function
              | { pat = Pcon (c, x :: _ :: tl); rhs } ->
                  Some { pat = Pcon (c, x :: x :: tl); rhs }
              | _ -> None
            in
            if List.exists (fun a -> dup a <> None) alts then
              Some
                (Case
                   ( s,
                     List.map (fun a -> Option.value (dup a) ~default:a) alts
                   ))
            else None
        | _ -> None)
    | "int-to-string" -> (
        function
        | Lit (Lit_int _) -> Some (Lit (Lit_string "lint-broken"))
        | _ -> None)
    | _ -> invalid_arg (Fmt.str "Pipeline.sabotage: unknown ablation %s" name)
  in
  Rewrite.first_site rule e

(* ------------------------------------------------------------------ *)
(* The driver                                                          *)
(* ------------------------------------------------------------------ *)

let max_rounds = 8

let optimize ?(lint = true) ?break_pass ?trace mode e =
  let size_before = size e in
  let tally = Hashtbl.create 8 in
  let bump k n =
    Hashtbl.replace tally k
      (n + try Hashtbl.find tally k with Not_found -> 0)
  in
  let blocked = ref 0 in
  let lint_checks = ref 0 and lint_time = ref 0. in
  let st = ref None in
  if lint then begin
    let t0 = Unix.gettimeofday () in
    st := Some (Lint.snapshot e);
    lint_time := !lint_time +. Unix.gettimeofday () -. t0
  end;
  (* A pass that returned its input unchanged has nothing to check —
     that term is the one the previous check already blessed. Skipping
     the no-ops is what keeps the linter's share of pipeline time small
     once the fixpoint rounds go quiet. *)
  let check ~input pass e' =
    if e' == input || equal e' input then e'
    else begin
      (match !st with
      | None -> ()
      | Some prev ->
          let t0 = Unix.gettimeofday () in
          let next = Lint.check_pass ?trace ~pass ~prev e' in
          lint_time := !lint_time +. Unix.gettimeofday () -. t0;
          incr lint_checks;
          st := Some next);
      e'
    end
  in
  let sabotaged = ref false in
  let round e0 =
    let e1, n = prune_pass e0 in
    let e1 = check ~input:e0 "prune" e1 in
    bump "prune" n;
    let e2, n = simplify_pass e1 in
    let e2 = check ~input:e1 "simplify" e2 in
    bump "simplify" n;
    (* Ablation hook: corrupt the term as its own named pseudo-pass, so
       the lint failure names the deliberately broken pass. *)
    let e2 =
      match break_pass with
      | Some name when not !sabotaged -> (
          sabotaged := true;
          match sabotage name e2 with
          | Some e' -> check ~input:e2 name e'
          | None -> e2)
      | _ -> e2
    in
    let e3, n = inline_pass e2 in
    let e3 = check ~input:e2 "inline" e3 in
    bump "inline" n;
    let e4, n = case_of_case_pass e3 in
    let e4 = check ~input:e3 "case-of-case" e4 in
    bump "case-of-case" n;
    let e5, n, b = case_commute_pass mode e4 in
    let e5 = check ~input:e4 "case-commute" e5 in
    bump "case-commute" n;
    blocked := !blocked + b;
    let e6, n, b = cbv_pass mode e5 in
    let e6 = check ~input:e5 "cbv" e6 in
    bump "cbv" n;
    blocked := !blocked + b;
    let e7, n = simplify_pass e6 in
    let e7 = check ~input:e6 "simplify" e7 in
    bump "simplify" n;
    e7
  in
  let rec go e rounds =
    if rounds >= max_rounds then (e, rounds)
    else
      let e' = round e in
      let rounds = rounds + 1 in
      if e' == e || equal e' e then (e', rounds) else go e' rounds
  in
  let e', rounds = go e 0 in
  let site k = try Hashtbl.find tally k with Not_found -> 0 in
  let report =
    {
      mode;
      rounds;
      sites =
        List.map
          (fun k -> (k, site k))
          [
            "prune";
            "simplify";
            "inline";
            "case-of-case";
            "case-commute";
            "cbv";
          ];
      blocked_sites = !blocked;
      size_before;
      size_after = size e';
      lint_checks = !lint_checks;
      lint_time = !lint_time;
    }
  in
  (e', report)

(* Both headline numbers read off the pipeline's own reports, so the C8
   counts and [optimize]'s per-pass sites cannot disagree on a program:
   they are the same measurement on the same post-cleanup terms. *)
let count_cbv_opportunities e =
  let _, ri = optimize ~lint:false Imprecise e in
  let _, rf = optimize ~lint:false Fixed_order_with_effect_analysis e in
  (List.assoc "cbv" ri.sites, List.assoc "cbv" rf.sites)
