(** The optimisation pipeline, in two flavours:

    - {b imprecise}: applies order-changing transformations freely — "No
      analysis required!" (Section 3.4).
    - {b fixed order}: the same passes, but every order-changing rewrite is
      guarded by {!Analysis.Exn_analysis}: the moved expression must be
      provably exception-free and terminating, mirroring what compilers
      for precise-exception languages must do.

    The difference in enabled sites is experiment C8.

    The driver iterates the pass sequence (prune, simplify, inline,
    case-of-case, case-commute, cbv, simplify) to a fixpoint, and after
    {e every} pass output runs the {!Lint} checker against the pass
    input — a violation aborts with {!Lint.Lint_error} naming the
    offending pass instead of letting a corrupted term reach a machine. *)

type mode = Imprecise | Fixed_order_with_effect_analysis

type report = {
  mode : mode;
  rounds : int;  (** Pass-sequence iterations actually executed. *)
  sites : (string * int) list;  (** Rewrites applied, per pass. *)
  blocked_sites : int;
      (** Order-changing rewrites that fired under [Imprecise] but were
          rejected by the effect analysis under fixed order. *)
  size_before : int;
  size_after : int;
  lint_checks : int;
      (** Post-pass lint runs (0 when linting is off). A pass returning
          its input unchanged is not re-checked — that term was blessed
          by the previous check. *)
  lint_time : float;  (** Wall-clock seconds spent in the linter. *)
}

val pp_report : report Fmt.t

val cbv_pass : mode -> Lang.Syntax.expr -> Lang.Syntax.expr * int * int
(** Strictness-driven call-by-value conversion: [let x = e in body] with
    [body] strict in [x] becomes [case e of { x -> body }]. Returns
    (result, applied, blocked). Under fixed-order mode a site is applied
    only when the bound expression is provably pure. *)

val simplify_pass : Lang.Syntax.expr -> Lang.Syntax.expr * int
(** Order-preserving cleanups, safe in every design: beta on trivial
    arguments, case-of-known-constructor, dead lets. (Case-of-case is
    {e not} part of this pass — it lives in {!case_of_case_pass}.) *)

val inline_pass : Lang.Syntax.expr -> Lang.Syntax.expr * int
(** Occurrence-guided inlining: [let]-bindings used exactly once (outside
    lambdas) are substituted; cheap bindings (variables, literals, nullary
    constructors) are substituted regardless of use count. Work is never
    duplicated, so this is valid in every design. *)

val prune_pass : Lang.Syntax.expr -> Lang.Syntax.expr * int
(** Dead-binding elimination in [letrec] groups: bindings not reachable
    from the body are dropped (this is what shrinks the full Prelude
    wrapper down to the functions a program actually uses). Returns the
    number of bindings removed. *)

val case_of_case_pass : Lang.Syntax.expr -> Lang.Syntax.expr * int
(** [case (case s of {p -> a}) of alts] becomes
    [case s of {p -> case a of alts}] ({!Rules.case_of_case}, an
    identity in every design), unblocking case-of-known-constructor.
    Outer alternatives are duplicated into several inner branches only
    when they are small. *)

val case_commute_pass :
  mode -> Lang.Syntax.expr -> Lang.Syntax.expr * int * int
(** Swap two nested single-constructor cases so the smaller scrutinee
    is evaluated first ({!Rules.case_commute}, the Section 4 motivating
    equation). Guarded in the improving direction by the strictness
    analysis: the hoisted case's binders must feed a demand in the
    body. Returns (result, applied, blocked); an identity only under
    imprecise semantics, so the fixed-order pipeline additionally
    requires both scrutinees provably pure and counts refusals as
    blocked. *)

val ablations : string list
(** Deliberately broken pseudo-passes, one per lint check category:
    ["unbind-var"] (scope), ["drop-con-arg"] (arity),
    ["dup-pattern-binder"] (binder uniqueness), ["int-to-string"] (type
    preservation). For negative tests à la [Fuzz.inject_bug]. *)

val sabotage : string -> Lang.Syntax.expr -> Lang.Syntax.expr option
(** Apply the named ablation's corruption to the first eligible site;
    [None] when the term has no such site. *)

val optimize :
  ?lint:bool ->
  ?break_pass:string ->
  ?trace:Obs.t ->
  mode ->
  Lang.Syntax.expr ->
  Lang.Syntax.expr * report
(** Run the pipeline to a fixpoint (bounded rounds), linting after
    every pass ([lint] defaults to [true]).
    [break_pass] injects the named {!ablations} corruption as its own
    pseudo-pass after the first simplify — the linter must then raise
    {!Lint.Lint_error} naming it. [trace] receives
    {!Obs.Ev_lint_fail} events and provides the crash-dump history.
    @raise Lint.Lint_error when a pass output fails the checker. *)

val count_cbv_opportunities : Lang.Syntax.expr -> int * int
(** (sites applied by the imprecise pipeline, sites applied by the
    fixed-order pipeline) — the headline numbers of C8, read off the
    two {!optimize} reports so they cannot disagree with the pipeline's
    own [sites] accounting on the same program. *)
