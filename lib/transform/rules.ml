open Lang.Syntax
module B = Lang.Builder
module Subst = Lang.Subst

type status = Identity | Refinement | Invalid

let pp_status ppf = function
  | Identity -> Fmt.string ppf "identity"
  | Refinement -> Fmt.string ppf "refinement"
  | Invalid -> Fmt.string ppf "INVALID"

let status_equal (a : status) b = a = b

let status_admits ~claimed observed =
  match (claimed, observed) with
  | Identity, Identity -> true
  | Identity, (Refinement | Invalid) -> false
  | Refinement, (Identity | Refinement) -> true
  | Refinement, Invalid -> false
  | Invalid, _ -> true

type rule = {
  name : string;
  description : string;
  paper_ref : string;
  imprecise : status;
  fixed_order : status;
  nondet : status;
  applies : expr -> expr option;
  instances : expr list;
}

let fresh_eta =
  let c = ref 0 in
  fun () ->
    incr c;
    Printf.sprintf "_eta%d" !c

(* Shared instance ingredients. *)
let e_div0 = B.(int 1 / int 0)
let e_err s = B.error s
let e_ovf = B.(int 1073741823 * int 1073741823)

let beta =
  {
    name = "beta";
    description =
      "(\\x.e) a  ==>  e[a/x].  Valid in the imprecise semantics; breaks \
       under a pure non-deterministic getException because substitution \
       loses the sharing that made both occurrences agree (Section 3.4).";
    paper_ref = "3.4, 3.5";
    imprecise = Identity;
    fixed_order = Identity;
    nondet = Invalid;
    applies =
      (function
      | App (Lam (x, body), arg) -> Some (Subst.subst x arg body)
      | _ -> None);
    instances =
      [
        App (B.lam "x" B.(var "x" + var "x"), B.int 21);
        App (B.lam "x" (B.int 3), e_div0);
        App (B.lam "x" B.(var "x" + var "x"), e_div0);
        App
          ( B.lam "x"
              (Con
                 ( c_pair,
                   [
                     Con (c_get_exception, [ B.var "x" ]);
                     Con (c_get_exception, [ B.var "x" ]);
                   ] )),
            B.(e_div0 + e_err "Urk") );
      ];
  }

let let_inline =
  {
    name = "let_inline";
    description =
      "let x = e1 in e2  ==>  e2[e1/x].  The binding form of beta; same \
       sharing caveat under the naive non-deterministic design.";
    paper_ref = "3.4";
    imprecise = Identity;
    fixed_order = Identity;
    nondet = Invalid;
    applies =
      (function
      | Let (x, e1, e2) -> Some (Subst.subst x e1 e2)
      | _ -> None);
    instances =
      [
        Let ("x", B.int 1, B.(var "x" + var "x"));
        Let ("x", e_div0, B.(var "x" + var "x"));
        Let ("x", B.(e_div0 + e_err "Urk"),
             Con (c_pair,
                  [ Con (c_get_exception, [ B.var "x" ]);
                    Con (c_get_exception, [ B.var "x" ]) ]));
      ];
  }

let plus_commute =
  {
    name = "plus_commute";
    description =
      "e1 + e2  ==>  e2 + e1.  The motivating example: with exception \
       sets, + unions both sides' exceptions, so commutativity holds \
       (Section 3.4); under a fixed order the first exception differs.";
    paper_ref = "3.4";
    imprecise = Identity;
    fixed_order = Invalid;
    nondet = Identity;
    applies =
      (function
      | Prim (Lang.Prim.Add, [ a; b ]) -> Some (Prim (Lang.Prim.Add, [ b; a ]))
      | _ -> None);
    instances =
      [
        B.(int 2 + int 3);
        B.(e_div0 + e_err "Urk");
        B.(e_err "A" + e_err "B");
        B.(e_div0 + int 1);
        B.(e_ovf + e_err "late");
      ];
  }

let case_switch =
  {
    name = "case_switch";
    description =
      "(case e of {True->f; False->g}) x  ==>  case e of {True->f x; \
       False->g x}.  The Section 4.5 example: an identity in old Haskell \
       and, on the paper's instance, a refinement here (the right-hand \
       side drops the argument's exceptions: lhs ⊑ rhs).  Found by \
       fuzzing: NOT a refinement in general.  The exception-finding rule \
       cannot see exceptions latent behind a lambda, so pushing the \
       application inside an alternative can surface new ones — a branch \
       body that raises, or a non-function branch hitting a type error.";
    paper_ref = "4.5";
    imprecise = Invalid;
    fixed_order = Identity;
    nondet = Identity;
    applies =
      (function
      | App (Case (s, alts), arg) ->
          let captures a =
            List.exists
              (fun x -> Subst.is_free_in x arg)
              (pat_binders a.pat)
          in
          if List.exists captures alts then None
          else
            Some
              (Case
                 (s, List.map (fun a -> { a with rhs = App (a.rhs, arg) }) alts))
      | _ -> None);
    instances =
      [
        (* The paper's own instance: e = raise E, f = g = \v.1, x = raise X.
           lhs denotes Bad {E,X}, rhs denotes Bad {E}. *)
        App
          ( Case
              ( B.raise_exn (Lang.Exn.User_error "E"),
                [
                  { pat = Pcon (c_true, []); rhs = B.lam "v" (B.int 1) };
                  { pat = Pcon (c_false, []); rhs = B.lam "v" (B.int 1) };
                ] ),
            B.raise_exn (Lang.Exn.User_error "X") );
        App
          ( Case
              ( B.true_,
                [
                  { pat = Pcon (c_true, []); rhs = B.lam "v" B.(var "v" + int 1) };
                  { pat = Pcon (c_false, []); rhs = B.lam "v" (B.int 0) };
                ] ),
            B.int 41 );
        App
          ( Case
              ( B.false_,
                [
                  { pat = Pcon (c_true, []); rhs = B.lam "v" (B.var "v") };
                  { pat = Pcon (c_false, []); rhs = B.lam "v" (B.int 7) };
                ] ),
            e_div0 );
        (* Fuzzer-minimised witness of the invalidity: the False branch
           is not a function, so the pushed-in application manufactures
           a type error the finding rule never saw on the left.
           lhs denotes Bad {E}, rhs Bad {E, TypeError}: lost information. *)
        App
          ( Case
              ( B.raise_exn (Lang.Exn.User_error "E"),
                [
                  { pat = Pcon (c_true, []); rhs = B.lam "v" (B.int 1) };
                  { pat = Pcon (c_false, []); rhs = B.int 1 };
                ] ),
            B.str "X" );
        (* Same defect without a type error: both branches are lambdas,
           but their bodies raise.  A lambda's latent exceptions are
           invisible to the finding union, so the left side is Bad {E}
           while the right side gains Overflow. *)
        App
          ( Case
              ( B.raise_exn (Lang.Exn.User_error "E"),
                [
                  { pat = Pcon (c_true, []);
                    rhs = B.lam "v" (B.raise_exn Lang.Exn.Overflow) };
                  { pat = Pcon (c_false, []);
                    rhs = B.lam "v" (B.raise_exn Lang.Exn.Overflow) };
                ] ),
            B.int 1 );
      ];
  }

let case_commute =
  {
    name = "case_commute";
    description =
      "case x of {C a b -> case y of {D p q -> e}}  ==>  case y of {D p q \
       -> case x of {C a b -> e}}.  The Section 4 motivating equation, \
       valid thanks to exception-finding mode; a fixed order must pick \
       which scrutinee's exception wins.";
    paper_ref = "4 (intro), 4.3";
    imprecise = Identity;
    fixed_order = Invalid;
    nondet = Invalid;
    applies =
      (function
      | Case ((s1 : expr), [ ({ pat = Pcon _; _ } as a1) ]) -> (
          match a1.rhs with
          | Case (s2, [ ({ pat = Pcon _; _ } as a2) ])
            when (not
                    (List.exists
                       (fun x -> Subst.is_free_in x s2)
                       (pat_binders a1.pat)))
                 && (not
                       (List.exists
                          (fun x -> Subst.is_free_in x s1)
                          (pat_binders a2.pat)))
                 && List.for_all
                      (fun x -> not (List.mem x (pat_binders a2.pat)))
                      (pat_binders a1.pat) ->
              Some
                (Case
                   ( s2,
                     [
                       {
                         pat = a2.pat;
                         rhs = Case (s1, [ { pat = a1.pat; rhs = a2.rhs } ]);
                       };
                     ] ))
          | _ -> None)
      | _ -> None);
    instances =
      (let nested sx sy =
         Case
           ( sx,
             [
               {
                 pat = Pcon (c_pair, [ "a"; "b" ]);
                 rhs =
                   Case
                     ( sy,
                       [
                         {
                           pat = Pcon (c_pair, [ "p"; "q" ]);
                           rhs = B.(var "a" + var "p");
                         };
                       ] );
               };
             ] )
       in
       [
         nested (B.pair (B.int 1) (B.int 2)) (B.pair (B.int 3) (B.int 4));
         nested (e_err "X") (B.pair (B.int 3) (B.int 4));
         nested (e_err "X") (e_err "Y");
         nested (B.pair e_div0 (B.int 2)) (e_err "Y");
       ]);
  }

let error_collapse =
  {
    name = "error_collapse";
    description =
      "error \"This\"  ==>  error \"That\".  An identity in exception-free \
       Haskell (both sides are bottom) that the new semantics rightly \
       loses (Section 4.5).";
    paper_ref = "4.5";
    imprecise = Invalid;
    fixed_order = Invalid;
    nondet = Invalid;
    applies =
      (function
      | Raise (Con ("UserError", [ Lit (Lit_string s) ]))
        when not (String.equal s "That") ->
          Some (B.error "That")
      | _ -> None);
    instances = [ e_err "This" ];
  }

let case_of_known_constructor =
  {
    name = "case_of_known_constructor";
    description =
      "case C a1..an of {...; C x1..xn -> e; ...}  ==>  let x1=a1 .. in e. \
       Valid in every design: no evaluation is moved.";
    paper_ref = "2.3 (goal: keep ordinary transformations)";
    imprecise = Identity;
    fixed_order = Identity;
    nondet = Identity;
    applies =
      (function
      | Case (Con (c, args), alts) ->
          List.find_map
            (fun a ->
              match a.pat with
              | Pcon (c', xs)
                when String.equal c c' && List.length xs = List.length args
                ->
                  Some
                    (List.fold_right2
                       (fun x arg acc -> Let (x, arg, acc))
                       xs args a.rhs)
              | Pany None -> Some a.rhs
              | Pany (Some x) -> Some (Let (x, Con (c, args), a.rhs))
              | Pcon _ | Plit _ -> None)
            alts
      | _ -> None);
    instances =
      [
        Case
          ( B.pair (B.int 1) e_div0,
            [ { pat = Pcon (c_pair, [ "a"; "b" ]); rhs = B.var "a" } ] );
        Case
          ( B.cons (e_err "hd") B.nil,
            [
              { pat = Pcon (c_nil, []); rhs = B.int 0 };
              { pat = Pcon (c_cons, [ "x"; "xs" ]); rhs = B.int 1 };
            ] );
      ];
  }

let dead_let =
  {
    name = "dead_let";
    description =
      "let x = e1 in e2  ==>  e2   (x not free in e2).  Laziness discards \
       the binding unevaluated, exceptional or not.";
    paper_ref = "2.3";
    imprecise = Identity;
    fixed_order = Identity;
    nondet = Identity;
    applies =
      (function
      | Let (x, _, e2) when not (Subst.is_free_in x e2) -> Some e2
      | _ -> None);
    instances =
      [
        Let ("x", e_div0, B.int 42);
        Let ("x", B.loop, B.true_);
      ];
  }

let case_identity_collapse =
  {
    name = "case_identity_collapse";
    description =
      "case v of {True->e; False->e}  ==>  e.  Valid only when v is \
       provably not bottom: the paper's -fno-pedantic-bottoms flag trades \
       this for a proof obligation (Section 5.3 footnote).";
    paper_ref = "5.3 (footnote 5)";
    imprecise = Invalid;
    fixed_order = Invalid;
    nondet = Invalid;
    applies =
      (function
      | Case
          ( _,
            [
              { pat = Pcon ("True", []); rhs = e1 };
              { pat = Pcon ("False", []); rhs = e2 };
            ] )
        when Subst.alpha_equal e1 e2 ->
          Some e1
      | _ -> None);
    instances =
      [
        Case
          ( e_err "scrut",
            [
              { pat = Pcon (c_true, []); rhs = B.int 1 };
              { pat = Pcon (c_false, []); rhs = B.int 1 };
            ] );
        Case
          ( B.true_,
            [
              { pat = Pcon (c_true, []); rhs = B.int 1 };
              { pat = Pcon (c_false, []); rhs = B.int 1 };
            ] );
      ];
  }

let case_of_case =
  {
    name = "case_of_case";
    description =
      "case (case s of {p->a}) of alts  ==>  case s of {p -> case a of \
       alts}.  Standard GHC transformation; no evaluation is reordered.";
    paper_ref = "2.3";
    imprecise = Identity;
    fixed_order = Identity;
    nondet = Identity;
    applies =
      (function
      | Case (Case (s, inner), outer) ->
          let ok a =
            List.for_all
              (fun x ->
                List.for_all
                  (fun o -> not (Subst.is_free_in x o.rhs))
                  outer)
              (pat_binders a.pat)
          in
          if List.for_all ok inner then
            Some
              (Case
                 ( s,
                   List.map
                     (fun a -> { a with rhs = Case (a.rhs, outer) })
                     inner ))
          else None
      | _ -> None);
    instances =
      [
        Case
          ( Case
              ( B.true_,
                [
                  { pat = Pcon (c_true, []); rhs = B.false_ };
                  { pat = Pcon (c_false, []); rhs = B.true_ };
                ] ),
            [
              { pat = Pcon (c_true, []); rhs = B.int 1 };
              { pat = Pcon (c_false, []); rhs = B.int 0 };
            ] );
        Case
          ( Case
              ( e_err "inner",
                [
                  { pat = Pcon (c_true, []); rhs = B.false_ };
                  { pat = Pcon (c_false, []); rhs = e_err "branch" };
                ] ),
            [
              { pat = Pcon (c_true, []); rhs = B.int 1 };
              { pat = Pcon (c_false, []); rhs = e_div0 };
            ] );
      ];
  }

let eta_expand =
  {
    name = "eta_expand";
    description =
      "e  ==>  \\x. e x.  Invalid in any lazy language with seq or \
       exceptions: a lambda is a normal value but e may be exceptional \
       (\\x.bottom ≠ bottom, Section 4.2).";
    paper_ref = "4.2";
    imprecise = Invalid;
    fixed_order = Invalid;
    nondet = Invalid;
    applies =
      (fun e ->
        let x = fresh_eta () in
        Some (Lam (x, App (e, Var x))));
    instances =
      [
        B.(seq (e_err "f") (int 1));
        e_err "f";
        B.lam "y" (B.var "y");
      ];
  }

let strictness_cbv =
  {
    name = "strictness_cbv";
    description =
      "let x = e1 in body  ==>  case e1 of {x -> body}   (body strict in \
       x).  The strictness-analysis-driven call-by-need-to-call-by-value \
       conversion (GHC's let-to-case); valid with exception sets, needs \
       an exception-freedom proof under a fixed order (Section 3.4).";
    paper_ref = "3.4";
    imprecise = Identity;
    fixed_order = Invalid;
    nondet = Invalid;
    applies =
      (function
      | Let (x, e1, body) ->
          let d = Analysis.Strictness.demanded Analysis.Strictness.empty_sigs
                    body
          in
          if Lang.Subst.String_set.mem x d then
            Some (Case (e1, [ { pat = Pany (Some x); rhs = body } ]))
          else None
      | _ -> None);
    instances =
      [
        Let ("x", B.(int 2 + int 3), B.(var "x" * var "x"));
        Let ("x", e_div0, B.(var "x" + e_err "late"));
        Let ("x", e_div0, B.(e_err "early" + var "x"));
        Let ("x", e_ovf, Case (B.var "x", [
          { pat = Plit (Lit_int 0); rhs = B.int 0 };
          { pat = Pany None; rhs = B.int 1 };
        ]));
      ];
  }

let evaluate_is_seq_return =
  {
    name = "evaluate_is_seq_return";
    description =
      "evaluate e  ==>  seq e (Return e).  Haskell folklore treats \
       [evaluate] as strict [return], but the two differ as values: \
       [evaluate e] is already a constructor (its forcing point is the \
       moment the action is performed), while [seq e (Return e)] forces \
       e when the action value itself is demanded. With exception sets \
       the left side is a WHNF even when e is Bad, so the rewrite is \
       invalid in every design; only the performed behaviours agree.";
    paper_ref = "4.4";
    imprecise = Invalid;
    fixed_order = Invalid;
    nondet = Invalid;
    applies =
      (function
      | Con (c, [ e ]) when String.equal c c_evaluate ->
          Some (B.seq e (Con (c_return, [ e ])))
      | _ -> None);
    instances =
      [
        Con (c_evaluate, [ e_div0 ]);
        Con (c_evaluate, [ B.(e_div0 + e_err "Urk") ]);
        Con (c_evaluate, [ B.int 3 ]);
      ];
  }

let all =
  [
    beta;
    let_inline;
    plus_commute;
    case_switch;
    case_commute;
    error_collapse;
    case_of_known_constructor;
    dead_let;
    case_identity_collapse;
    case_of_case;
    eta_expand;
    strictness_cbv;
    evaluate_is_seq_return;
  ]

let find name = List.find_opt (fun r -> String.equal r.name name) all
