open Lang.Syntax
module String_set = Lang.Subst.String_set

type violation = { check : string; detail : string }

let pp_violation ppf v = Fmt.pf ppf "%s: %s" v.check v.detail

exception
  Lint_error of {
    pass : string;
    violations : violation list;
    dump : string;
  }

let pp_lint_error ppf = function
  | Lint_error { pass; violations; dump } ->
      Fmt.pf ppf "lint failed after pass %s:@\n%a@\n%s" pass
        Fmt.(list ~sep:cut pp_violation)
        violations dump
  | e -> Fmt.string ppf (Printexc.to_string e)

let () =
  Printexc.register_printer (function
    | Lint_error _ as e -> Some (Fmt.str "%a" pp_lint_error e)
    | _ -> None)

(* ------------------------------------------------------------------ *)
(* Structural checks                                                   *)
(* ------------------------------------------------------------------ *)

let first_dup xs =
  let rec go seen = function
    | [] -> None
    | x :: rest ->
        if List.mem x seen then Some x else go (x :: seen) rest
  in
  go [] xs

let scope_violations ~free_ok free =
  String_set.fold
    (fun x acc ->
      { check = "scope"; detail = Fmt.str "unbound variable %s" x } :: acc)
    (String_set.diff free free_ok) []
  |> List.rev

let builtin_arities = lazy (Lang.Con_info.builtins ())

(* One fused traversal: the structural checks (arity, binder
   uniqueness, patterns) and the term's free variables (occurrences not
   in the threaded [bound] set, accumulated into [free]) in a single
   walk — a check visits each node once instead of once for findings
   and once for [Subst.free_vars]'s union-heavy set building.
   [base] is a frozen arity table consulted read-only (the cached
   prelude one), so per-check traversals never copy it: construction
   sites not in [base] land in the small fresh [seen_arity] overlay. *)
let walk ?base ~bound vs seen_arity free e =
  let add check detail = vs := { check; detail } :: !vs in
  let builtins = Lazy.force builtin_arities in
  (* One consistent arity per constructor per term. Wrong-arity [Pcon]
     alternatives are deliberately not flagged: the machines treat them
     as unreachable (they fall through to later alternatives), so they
     are legal input — only construction sites are held to the table. *)
  let check_con c n =
    (match Lang.Con_info.arity builtins c with
    | Some k when k <> n ->
        add "arity"
          (Fmt.str "constructor %s applied to %d args (arity %d)" c n k)
    | _ -> ());
    let seen =
      match Hashtbl.find_opt seen_arity c with
      | Some _ as s -> s
      | None -> Option.bind base (fun b -> Hashtbl.find_opt b c)
    in
    match seen with
    | None -> Hashtbl.add seen_arity c n
    | Some k when k <> n ->
        add "arity" (Fmt.str "constructor %s built at arities %d and %d" c k n)
    | Some _ -> ()
  in
  let bind_all bound xs =
    List.fold_left (fun b x -> String_set.add x b) bound xs
  in
  let rec go bound = function
    | Var x ->
        if not (String_set.mem x bound) then free := String_set.add x !free
    | Lit _ -> ()
    | Lam (x, b) -> go (String_set.add x bound) b
    | Raise b | Fix b -> go bound b
    | App (f, a) ->
        go bound f;
        go bound a
    | Con (c, es) ->
        check_con c (List.length es);
        List.iter (go bound) es
    | Prim (p, es) ->
        if Lang.Prim.arity p <> List.length es then
          add "arity"
            (Fmt.str "primitive %s applied to %d args (arity %d)"
               (Lang.Prim.name p) (List.length es) (Lang.Prim.arity p));
        List.iter (go bound) es
    | Case (s, alts) ->
        if alts = [] then add "pattern" "case with no alternatives";
        go bound s;
        List.iter
          (fun a ->
            (match a.pat with
            | Pcon (c, xs) -> (
                match first_dup xs with
                | Some x ->
                    add "binder-uniqueness"
                      (Fmt.str "pattern %s binds %s twice" c x)
                | None -> ())
            | Plit _ | Pany _ -> ());
            go (bind_all bound (pat_binders a.pat)) a.rhs)
          alts
    | Let (x, e1, e2) ->
        go bound e1;
        go (String_set.add x bound) e2
    | Letrec (binds, body) ->
        (match first_dup (List.map fst binds) with
        | Some x ->
            add "binder-uniqueness" (Fmt.str "letrec binds %s twice" x)
        | None -> ());
        let bound = bind_all bound (List.map fst binds) in
        List.iter (fun (_, b) -> go bound b) binds;
        go bound body
  in
  go bound e

(* The pipeline starts every run from [Prelude.wrap body], and passes
   that follow mostly rewrite only the body — so the wrapper's
   contribution to every check is computed once: per-binding free
   variables and structural findings, the prelude's constructor-arity
   table, and the wrapper-level free-variable set. A binding is reused
   only when it is structurally equal to the prelude's own, so the fast
   paths cannot be fooled by a pass that rewrites inside a binding. *)
let prelude_facts =
  lazy
    (let defs = Lang.Prelude.defs in
     let names = String_set.of_list (List.map fst defs) in
     let by_name : (string, expr * String_set.t) Hashtbl.t =
       Hashtbl.create 256
     in
     List.iter
       (fun (x, rhs) ->
         if not (Hashtbl.mem by_name x) then
           Hashtbl.add by_name x (rhs, Lang.Subst.free_vars rhs))
       defs;
     let w = Lang.Prelude.wrap (Lit (Lit_int 0)) in
     let vs = ref [] in
     let pfree = ref String_set.empty in
     let arities = Hashtbl.create 64 in
     walk ~bound:String_set.empty vs arities pfree w;
     (names, by_name, !pfree, List.rev !vs, arities))

(* Every binding structurally equal to the prelude def of its name. *)
let subset_of_prelude binds =
  let _, by_name, _, _, _ = Lazy.force prelude_facts in
  List.for_all
    (fun (x, rhs) ->
      match Hashtbl.find_opt by_name x with
      | Some (crhs, _) -> crhs == rhs || equal crhs rhs
      | None -> false)
    binds

(* One classification per term, shared by the free-variable, structural
   and typing layers — the subset walk is the most expensive of the
   fast-path guards, so it runs once per checked term. *)
type shape =
  | Pristine of expr  (** [Prelude.wrap body]: the shared defs list *)
  | Subset of (string * expr) list * expr
      (** bindings all structurally pristine, group possibly pruned *)
  | Plain

(* [known] is the binds list of the last term already classified as
   [Subset] (the group-facts cache): sharing-preserving rewriting keeps
   it physically intact across body-only passes, so the subset scan
   runs once per pruning, not once per check. *)
let shape_of ?known e =
  match e with
  | Letrec (defs, body) when defs == Lang.Prelude.defs -> Pristine body
  | Letrec (binds, body)
    when (match known with Some k -> k == binds | None -> false)
         || subset_of_prelude binds ->
      Subset (binds, body)
  | _ -> Plain

(* The walked program body with its own free variables and findings.
   Collected under an {e empty} outer bound set (group names subtracted
   per shape afterwards), so the result is shape-independent — which is
   what lets a check whose pass only touched the letrec group (prune)
   reuse the previous check's walk by physical identity. *)
type body_facts = expr * String_set.t * violation list

let body_facts ?bodyf body : body_facts =
  match bodyf with
  | Some ((b, _, _) as f) when b == body -> f
  | _ ->
      let _, _, _, _, arities = Lazy.force prelude_facts in
      let vs = ref [] in
      let fr = ref String_set.empty in
      walk ~base:arities ~bound:String_set.empty vs (Hashtbl.create 8) fr
        body;
      (body, !fr, List.rev !vs)

(* Free variables and traversal findings together, one {!walk} per
   term, skipping pristine prelude bindings: their free variables and
   findings are cached, and the arity table is seeded (read-only) with
   the full prelude's so body-vs-prelude consistency still holds — both
   the snapshot and every check seed identically, so the differential
   subtraction lines up. *)
(* Per-group facts for a pruned-but-pristine letrec, cached by physical
   identity of the binds list — {!Rewrite.map_children} preserves the
   list across passes that only rewrite the body, so every check after
   prune's reuses one computation: the bound-name set, the bindings'
   free variables outside the group, and the duplicate-binder scan. *)
type group_facts =
  (string * expr) list * String_set.t * String_set.t * violation list

module SM = Map.Make (String)

(* The same pruned-to subsets of the Prelude recur across programs (a
   serve corpus reuses the same handful of library functions), and the
   facts below are a function of the group's {e name list} alone — the
   bindings are already known structurally pristine when this runs. So
   they are memoised under the concatenated names. The map is immutable
   and swapped by a single [ref] write: a racing optimise under the
   threaded serve runtime can lose an insertion, never corrupt one. *)
let group_memo :
    (String_set.t * String_set.t * violation list) SM.t ref =
  ref SM.empty

let group_facts ?groupf binds : group_facts =
  match groupf with
  | Some ((b, _, _, _) as f) when b == binds -> f
  | _ -> (
      let names = List.map fst binds in
      let key = String.concat "\000" names in
      match SM.find_opt key !group_memo with
      | Some (bnames, gdiff, dup) -> (binds, bnames, gdiff, dup)
      | None ->
          let _, by_name, _, _, _ = Lazy.force prelude_facts in
          let dup =
            match first_dup names with
            | Some x ->
                [
                  {
                    check = "binder-uniqueness";
                    detail = Fmt.str "letrec binds %s twice" x;
                  };
                ]
            | None -> []
          in
          let bnames = String_set.of_list names in
          (* The bindings' free variables outside the group itself —
             collected directly rather than union-then-diff, because
             after a correct prune every dependency is kept and the
             result is empty: the common case allocates nothing. *)
          let gdiff =
            List.fold_left
              (fun acc (x, _) ->
                match Hashtbl.find_opt by_name x with
                | Some (_, f) ->
                    String_set.fold
                      (fun y acc ->
                        if String_set.mem y bnames then acc
                        else String_set.add y acc)
                      f acc
                | None -> acc)
              String_set.empty binds
          in
          group_memo := SM.add key (bnames, gdiff, dup) !group_memo;
          (binds, bnames, gdiff, dup))

(* When the body contributes no free names beyond the group's, the
   cached set is returned {e physically} — letting {!check_pass} skip
   the scope diff outright with a pointer compare. *)
let facts_of ?bodyf ?groupf ~shape e =
  match shape with
  | Pristine body ->
      (* The cached wrapper findings already include the wrapper's own
         duplicate-binder check — only the body needs walking. *)
      let names, _, pfree, pvs, _ = Lazy.force prelude_facts in
      let ((_, fr, vs) as bf) = body_facts ?bodyf body in
      let extra = String_set.diff fr names in
      let free =
        if String_set.is_empty extra then pfree
        else String_set.union pfree extra
      in
      (free, pvs @ vs, Some bf, None)
  | Subset (binds, body) ->
      let _, _, _, pvs, _ = Lazy.force prelude_facts in
      let ((_, fr, vs) as bf) = body_facts ?bodyf body in
      let ((_, bnames, gdiff, dup) as gf) = group_facts ?groupf binds in
      let extra = String_set.diff fr bnames in
      let free =
        if String_set.is_empty extra then gdiff
        else String_set.union gdiff extra
      in
      (free, pvs @ dup @ vs, Some bf, Some gf)
  | Plain ->
      let vs = ref [] in
      let fr = ref String_set.empty in
      walk ~bound:String_set.empty vs (Hashtbl.create 16) fr e;
      (!fr, List.rev !vs, None, None)

let structural ~free_ok e =
  let free, vs, _, _ = facts_of ~shape:(shape_of e) e in
  scope_violations ~free_ok free @ vs

(* ------------------------------------------------------------------ *)
(* Type preservation                                                   *)
(* ------------------------------------------------------------------ *)

let prelude_env = lazy (Types.Infer.with_prelude ())

(* What the last successfully typed term looked like: the letrec group
   whose extension [env] is, and the body typed under it together with
   its rendering. A pass that leaves the body alone (prune only drops
   group bindings) then pays no inference at all. *)
type tyfacts = {
  group : (string * Lang.Syntax.expr) list;
  env : Types.Infer.env;
  body : Lang.Syntax.expr;
  rendered : string option Lazy.t;
}

type tycache = tyfacts option

let render_in env e =
  match Types.Infer.infer env e with
  | Ok t -> Some (Types.Infer.ty_to_string t)
  | Error _ -> None

(* Every rendering the checks need is semantically the same function:
   the canonical type of a term under the prelude environment (a
   [Letrec]'s split into extend-group-then-type-body is only how that
   inference is implemented). So renderings are memoised under one
   structural key. A serve corpus re-optimises the same programs — the
   daemon already keeps a compiled-program LRU for the same reason —
   and the optimiser is deterministic, so in steady state every check
   is a lookup, not an inference. Same race discipline as
   {!group_memo}: immutable map, single [ref] swap. *)
module EM = Map.Make (struct
  type t = expr

  let compare = Lang.Syntax.compare
end)

let render_memo : string option EM.t ref = ref EM.empty

let memo_render key (render : unit -> string option) =
  match EM.find_opt key !render_memo with
  | Some r -> r
  | None ->
      let r = render () in
      if EM.cardinal !render_memo >= 1024 then render_memo := EM.empty;
      render_memo := EM.add key r !render_memo;
      r

(* The rendering is lazy: a program none of whose body-rewriting passes
   fire never pays for inference at all — the baseline type is only
   forced the first time a check has a changed body to compare. *)
let reuse_or_render ~key (cache : tycache) group env body :
    tycache * string option Lazy.t =
  match cache with
  | Some c when c.env == env && (c.body == body || equal c.body body) ->
      (cache, c.rendered)
  | _ ->
      let rendered = lazy (memo_render key (fun () -> render_in env body)) in
      (Some { group; env; body; rendered }, rendered)

(* [binds] is covered by the cache when every binding is structurally
   one of the cached group's — a subset is fine: the cached env then
   types the body under a superset of the bindings in scope, and any
   reference to a dropped binding is caught by the (independent)
   structural scope check, not the type check. This is what lets a
   pruned-but-unrewritten Prelude group reuse the prelude env
   outright. *)
let covered_by cbinds binds =
  List.for_all
    (fun (x, rhs) ->
      match List.assoc_opt x cbinds with
      | Some crhs -> equal crhs rhs
      | None -> false)
    binds

(* Typing a [Letrec] is [extend_letrec] on the group, then the body —
   so type the two halves separately and cache the group env. The
   pristine [Prelude.wrap]per's group IS the cached prelude env; after
   pruning, passes mostly rewrite only the program body, so they reuse
   the previous pass's group env and pay body-sized inference (or none,
   via {!reuse_or_render}, when the body itself is unchanged). *)
let infer_cached ~shape (cache : tycache) e : tycache * string option Lazy.t =
  match shape with
  | Pristine body | Subset (_, body) ->
      reuse_or_render ~key:body cache Lang.Prelude.defs
        (Lazy.force prelude_env) body
  | Plain -> (
      match e with
      | Letrec (binds, body) -> (
          match cache with
          | Some c when covered_by c.group binds ->
              reuse_or_render ~key:e cache c.group c.env body
          | _ -> (
              (* A memoised whole-term rendering skips even the group
                 extension; only a first encounter pays it. *)
              match EM.find_opt e !render_memo with
              | Some r -> (None, Lazy.from_val r)
              | None -> (
                  match
                    Types.Infer.extend_letrec (Lazy.force prelude_env) binds
                  with
                  | Ok env -> reuse_or_render ~key:e None binds env body
                  | Error _ ->
                      (None, Lazy.from_val (memo_render e (fun () -> None))))))
      | e -> reuse_or_render ~key:e cache [] (Lazy.force prelude_env) e)

(* A rendering without unification variables is ground: equality is
   then exact. Polymorphic renderings may legally differ (a pass that
   drops a dead alternative can generalise the inferred type). *)
let ground s = not (String.contains s '\'')

let type_violation ~before ~after =
  match (before, after) with
  | None, _ -> (* input did not type-check: nothing to preserve *) None
  | Some tb, None ->
      Some
        {
          check = "type-preservation";
          detail = Fmt.str "input had type %s, output does not type-check" tb;
        }
  | Some tb, Some ta ->
      if String.equal tb ta then None
      else if ground tb && ground ta then
        Some
          {
            check = "type-preservation";
            detail = Fmt.str "type changed: %s -> %s" tb ta;
          }
      else None

(* ------------------------------------------------------------------ *)
(* Pass-to-pass snapshots                                              *)
(* ------------------------------------------------------------------ *)

type st = {
  free : String_set.t;
  ty : string option Lazy.t;  (** baseline type, forced on first use *)
  pre : violation list;  (** findings already present before the pass *)
  tyc : tycache;  (** letrec group env of the last checked term *)
  bodyf : body_facts option;  (** walked body, reused by identity *)
  groupf : group_facts option;  (** letrec group facts, by identity *)
}

let snapshot e =
  let shape = shape_of e in
  let tyc, ty = infer_cached ~shape None e in
  let free, pre, bodyf, groupf = facts_of ~shape e in
  { free; ty; pre; tyc; bodyf; groupf }

let ty_of_st st = Lazy.force st.ty

let check_pass ?trace ~pass ~prev after =
  let known = Option.map (fun (b, _, _, _) -> b) prev.groupf in
  let shape = shape_of ?known after in
  let free, vs, bodyf, groupf =
    facts_of ?bodyf:prev.bodyf ?groupf:prev.groupf ~shape after
  in
  let scope =
    (* The physically-same cached set needs no diff. *)
    if free == prev.free then []
    else scope_violations ~free_ok:prev.free free
  in
  let introduced =
    scope @ List.filter (fun v -> not (List.mem v prev.pre)) vs
  in
  let tyc, after_ty = infer_cached ~shape prev.tyc after in
  let introduced =
    (* Physically the same lazy rendering means the typed body did not
       change — nothing to force, let alone compare. *)
    if after_ty == prev.ty then introduced
    else
      match
        type_violation ~before:(Lazy.force prev.ty)
          ~after:(Lazy.force after_ty)
      with
      | Some v -> introduced @ [ v ]
      | None -> introduced
  in
  match introduced with
  | [] -> { free; ty = after_ty; pre = vs; tyc; bodyf; groupf }
  | v :: _ ->
      let summary = Fmt.str "%a" pp_violation v in
      let dump =
        match trace with
        | Some tr ->
            if Obs.on tr then Obs.record tr (Obs.Ev_lint_fail (pass, summary));
            Obs.dump
              ~extra:
                [
                  ("pass", pass);
                  ( "violations",
                    Fmt.str "%a"
                      Fmt.(list ~sep:(any "; ") pp_violation)
                      introduced );
                ]
              ~note:"optimizer lint failure" tr
        | None -> Fmt.str "optimizer lint failure after pass %s" pass
      in
      raise (Lint_error { pass; violations = introduced; dump })
