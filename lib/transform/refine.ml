open Semantics.Sem_value

type verdict = Equal | Refines | Refined_by | Incomparable

let pp_verdict ppf = function
  | Equal -> Fmt.string ppf "identity"
  | Refines -> Fmt.string ppf "refinement"
  | Refined_by -> Fmt.string ppf "anti-refinement"
  | Incomparable -> Fmt.string ppf "invalid"

let verdict_equal (a : verdict) b = a = b

let compare_deep da db =
  let le = deep_leq da db and ge = deep_leq db da in
  match (le, ge) with
  | true, true -> Equal
  | true, false -> Refines
  | false, true -> Refined_by
  | false, false -> Incomparable

let compare_denot ?config ?depth a b =
  let da = Semantics.Denot.run_deep ?config ?depth a in
  let db = Semantics.Denot.run_deep ?config ?depth b in
  compare_deep da db

let is_valid_rewrite ?config ?depth a b =
  match compare_denot ?config ?depth a b with
  | Equal | Refines -> true
  | Refined_by | Incomparable -> false

let implements_deep = Semantics.Refine.implements_deep
