(** Refinement checking: the Section 4.5 story made executable.

    "Some transformations that are identities in Haskell become refinements
    in our new system … it is legitimate to perform a transformation that
    increases information."

    [compare_denot a b] evaluates both closed expressions with the
    imprecise denotational semantics, forces the results deeply, and
    classifies the pair in the information ordering. *)

type verdict =
  | Equal  (** ⟦a⟧ = ⟦b⟧ at this approximation. *)
  | Refines  (** ⟦a⟧ ⊑ ⟦b⟧ strictly: the rewrite gains information. *)
  | Refined_by  (** ⟦a⟧ ⊒ ⟦b⟧ strictly: the rewrite loses information. *)
  | Incomparable

val pp_verdict : verdict Fmt.t
val verdict_equal : verdict -> verdict -> bool

val compare_deep : Semantics.Sem_value.deep -> Semantics.Sem_value.deep ->
  verdict

val compare_denot :
  ?config:Semantics.Denot.config -> ?depth:int ->
  Lang.Syntax.expr -> Lang.Syntax.expr -> verdict

val is_valid_rewrite :
  ?config:Semantics.Denot.config -> ?depth:int ->
  Lang.Syntax.expr -> Lang.Syntax.expr -> bool
(** [Equal] or [Refines] — the transformations the paper licenses. *)

val implements_deep :
  Semantics.Sem_value.deep -> Semantics.Sem_value.deep -> bool
(** Re-export of {!Semantics.Refine.implements_deep}: the C13
    implementation-refines-semantics checker shared by the differential
    tests and the fuzzer. *)
