(** Indexed scheduler runtime: the data structures behind the O(1)
    concurrent schedulers ({!Semantics.Conc} and {!Machine.Machine_conc}).

    The seed schedulers kept every piece of scheduler state in OCaml
    lists: the thread table was a [thread list] scanned with [List.find],
    the per-round runnable set was rebuilt with [List.filter] over all
    threads, MVar waiter queues were [int list]s popped with
    [List.rev]/[List.filter], and blocked-indefinitely detection rescanned
    every MVar in the store. All of it is linear per transition, which
    caps the runtime at example scale. This module provides the indexed
    replacements; the schedulers themselves are responsible for using
    them in a way that preserves the seed's exact schedule.

    - {!Vec}: a growable array used as the tid-indexed thread table
      (tids are dense, allocated from 0), replacing [List.find].
    - {!Fifo}: an intrusive doubly-linked queue with O(1) delete-by-node,
      used for per-MVar / per-channel waiter queues. Deleting by node
      rather than by value makes removal duplicate-value-safe and is the
      blocked-on edge of the blocked-thread graph: a blocked thread holds
      the node that represents its (thread, cell) edge, so scrubbing it
      on exceptional wakeup is O(1) instead of a scan over every cell.
    - {!Bitq}: a two-level bitmap over tids with an ascending cursor,
      used as the run queue. Iterating it visits runnable threads in tid
      (creation) order — the same order the seed's [List.filter] snapshot
      produced — while insertion, deletion and membership are O(1).
    - {!Heap}: a binary min-heap of [(wake_at, tid)] pairs for sleeping
      threads, replacing the per-round full-table scan and the
      [List.fold_left min] fast-forward. *)

(* ------------------------------------------------------------------ *)
(* Vec                                                                 *)
(* ------------------------------------------------------------------ *)

module Vec = struct
  type 'a t = {
    mutable arr : 'a array;
    mutable len : int;
    dummy : 'a;  (** padding for unused slots *)
  }

  let create ?(capacity = 16) dummy =
    { arr = Array.make (max 1 capacity) dummy; len = 0; dummy }

  let length v = v.len

  let push v x =
    if v.len = Array.length v.arr then begin
      let arr' = Array.make (2 * Array.length v.arr) v.dummy in
      Array.blit v.arr 0 arr' 0 v.len;
      v.arr <- arr'
    end;
    v.arr.(v.len) <- x;
    v.len <- v.len + 1

  let get v i =
    if i < 0 || i >= v.len then invalid_arg "Vec.get" else v.arr.(i)

  let iter f v =
    for i = 0 to v.len - 1 do
      f v.arr.(i)
    done
end

(* ------------------------------------------------------------------ *)
(* Fifo                                                                *)
(* ------------------------------------------------------------------ *)

module Fifo = struct
  type 'a node = {
    value : 'a;
    mutable prev : 'a node option;
    mutable next : 'a node option;
    mutable in_q : bool;
  }

  type 'a t = {
    mutable head : 'a node option;
    mutable tail : 'a node option;
    mutable len : int;
  }

  let create () = { head = None; tail = None; len = 0 }
  let length q = q.len
  let is_empty q = q.len = 0

  let push_tail q x =
    let n = { value = x; prev = q.tail; next = None; in_q = true } in
    (match q.tail with
    | None -> q.head <- Some n
    | Some t -> t.next <- Some n);
    q.tail <- Some n;
    q.len <- q.len + 1;
    n

  (* Unlink [n] from [q] in O(1). Safe to call on a node already popped
     or removed (a no-op) — this is what makes waiter scrubbing
     idempotent. The node, not its value, identifies the entry, so
     duplicate values in the queue are removed independently. *)
  let remove q n =
    if n.in_q then begin
      (match n.prev with None -> q.head <- n.next | Some p -> p.next <- n.next);
      (match n.next with None -> q.tail <- n.prev | Some s -> s.prev <- n.prev);
      n.prev <- None;
      n.next <- None;
      n.in_q <- false;
      q.len <- q.len - 1
    end

  let pop_head q =
    match q.head with
    | None -> None
    | Some n ->
        remove q n;
        Some n.value

  let peek_head q = Option.map (fun n -> n.value) q.head

  let to_list q =
    let rec go acc = function
      | None -> List.rev acc
      | Some n -> go (n.value :: acc) n.next
    in
    go [] q.head
end

(* ------------------------------------------------------------------ *)
(* Bitq                                                                *)
(* ------------------------------------------------------------------ *)

module Bitq = struct
  (* 32 bits per word keeps the bit arithmetic shift-based and portable
     across OCaml's 63-bit native ints. Level 1 summarises which level-0
     words are non-empty, so [next_geq] skips empty 1024-tid spans in one
     word test. *)
  let word_bits = 32
  let lvl0_shift = 5 (* tid lsr 5 = level-0 word *)
  let lvl1_shift = 10 (* tid lsr 10 = level-1 word-of-words *)

  type t = {
    mutable l0 : int array;
    mutable l1 : int array;
    mutable card : int;
  }

  let create ?(capacity = 1024) () =
    let cap = max capacity word_bits in
    {
      l0 = Array.make ((cap lsr lvl0_shift) + 1) 0;
      l1 = Array.make ((cap lsr lvl1_shift) + 1) 0;
      card = 0;
    }

  let ensure q i =
    let w0 = i lsr lvl0_shift in
    if w0 >= Array.length q.l0 then begin
      let n = Array.length q.l0 in
      let n' = max (2 * n) (w0 + 1) in
      let l0' = Array.make n' 0 in
      Array.blit q.l0 0 l0' 0 n;
      q.l0 <- l0'
    end;
    let w1 = i lsr lvl1_shift in
    if w1 >= Array.length q.l1 then begin
      let n = Array.length q.l1 in
      let n' = max (2 * n) (w1 + 1) in
      let l1' = Array.make n' 0 in
      Array.blit q.l1 0 l1' 0 n;
      q.l1 <- l1'
    end

  let mem q i =
    let w0 = i lsr lvl0_shift in
    w0 < Array.length q.l0
    && q.l0.(w0) land (1 lsl (i land (word_bits - 1))) <> 0

  let add q i =
    if i < 0 then invalid_arg "Bitq.add";
    ensure q i;
    let w0 = i lsr lvl0_shift in
    let b0 = 1 lsl (i land (word_bits - 1)) in
    if q.l0.(w0) land b0 = 0 then begin
      q.l0.(w0) <- q.l0.(w0) lor b0;
      let w1 = i lsr lvl1_shift in
      q.l1.(w1) <- q.l1.(w1) lor (1 lsl (w0 land (word_bits - 1)));
      q.card <- q.card + 1
    end

  let remove q i =
    let w0 = i lsr lvl0_shift in
    if w0 < Array.length q.l0 then begin
      let b0 = 1 lsl (i land (word_bits - 1)) in
      if q.l0.(w0) land b0 <> 0 then begin
        q.l0.(w0) <- q.l0.(w0) land lnot b0;
        if q.l0.(w0) = 0 then begin
          let w1 = i lsr lvl1_shift in
          q.l1.(w1) <- q.l1.(w1) land lnot (1 lsl (w0 land (word_bits - 1)))
        end;
        q.card <- q.card - 1
      end
    end

  let cardinal q = q.card
  let is_empty q = q.card = 0

  let lowest_bit_index w =
    let rec go w i = if w land 1 <> 0 then i else go (w lsr 1) (i + 1) in
    go (w land -w) 0

  (* Smallest member >= [i], or None. Used as the run-queue cursor: the
     round steps threads in ascending tid order while wakes and forks
     mutate the set behind the cursor. *)
  let next_geq q i =
    let i = max i 0 in
    let nwords0 = Array.length q.l0 in
    let w0 = i lsr lvl0_shift in
    if w0 >= nwords0 then None
    else
      (* Bits >= i in its own level-0 word first. *)
      let masked = q.l0.(w0) land lnot ((1 lsl (i land (word_bits - 1))) - 1) in
      if masked <> 0 then
        Some ((w0 lsl lvl0_shift) lor lowest_bit_index masked)
      else begin
        (* Then the level-1 summary, starting at w0 + 1. *)
        let nwords1 = Array.length q.l1 in
        let start = w0 + 1 in
        let w1 = start lsr lvl0_shift in
        let result = ref None in
        (try
           for j = w1 to nwords1 - 1 do
             let m =
               if j = w1 then
                 q.l1.(j) land lnot ((1 lsl (start land (word_bits - 1))) - 1)
               else q.l1.(j)
             in
             if m <> 0 then begin
               let w0' = (j lsl lvl0_shift) lor lowest_bit_index m in
               result :=
                 Some ((w0' lsl lvl0_shift) lor lowest_bit_index q.l0.(w0'));
               raise Exit
             end
           done
         with Exit -> ());
        !result
      end

  let min_elt q = next_geq q 0

  let iter f q =
    let rec go i =
      match next_geq q i with
      | None -> ()
      | Some j ->
          f j;
          go (j + 1)
    in
    go 0

  let to_list q =
    let acc = ref [] in
    iter (fun i -> acc := i :: !acc) q;
    List.rev !acc
end

(* ------------------------------------------------------------------ *)
(* Heap                                                                *)
(* ------------------------------------------------------------------ *)

module Heap = struct
  (* Min-heap of (key, payload) pairs, ordered by key then payload so
     equal wake-times pop in tid order (the seed woke due sleepers in tid
     order). Deletion is lazy: the schedulers validate the payload's
     state when an entry surfaces and drop stale ones. *)
  type t = {
    mutable keys : int array;
    mutable vals : int array;
    mutable len : int;
  }

  let create ?(capacity = 16) () =
    let cap = max 1 capacity in
    { keys = Array.make cap 0; vals = Array.make cap 0; len = 0 }

  let length h = h.len
  let is_empty h = h.len = 0

  let less h i j =
    h.keys.(i) < h.keys.(j)
    || (h.keys.(i) = h.keys.(j) && h.vals.(i) < h.vals.(j))

  let swap h i j =
    let k = h.keys.(i) and v = h.vals.(i) in
    h.keys.(i) <- h.keys.(j);
    h.vals.(i) <- h.vals.(j);
    h.keys.(j) <- k;
    h.vals.(j) <- v

  let push h key value =
    if h.len = Array.length h.keys then begin
      let n = Array.length h.keys in
      let keys' = Array.make (2 * n) 0 and vals' = Array.make (2 * n) 0 in
      Array.blit h.keys 0 keys' 0 n;
      Array.blit h.vals 0 vals' 0 n;
      h.keys <- keys';
      h.vals <- vals'
    end;
    h.keys.(h.len) <- key;
    h.vals.(h.len) <- value;
    h.len <- h.len + 1;
    let i = ref (h.len - 1) in
    while !i > 0 && less h !i ((!i - 1) / 2) do
      swap h !i ((!i - 1) / 2);
      i := (!i - 1) / 2
    done

  let peek h = if h.len = 0 then None else Some (h.keys.(0), h.vals.(0))

  let pop h =
    if h.len = 0 then None
    else begin
      let top = (h.keys.(0), h.vals.(0)) in
      h.len <- h.len - 1;
      if h.len > 0 then begin
        h.keys.(0) <- h.keys.(h.len);
        h.vals.(0) <- h.vals.(h.len);
        let i = ref 0 in
        let continue = ref true in
        while !continue do
          let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
          let smallest = ref !i in
          if l < h.len && less h l !smallest then smallest := l;
          if r < h.len && less h r !smallest then smallest := r;
          if !smallest <> !i then begin
            swap h !i !smallest;
            i := !smallest
          end
          else continue := false
        done
      end;
      Some top
    end
end
