(* The flight recorder: a fixed-size ring buffer of structured events
   shared by both abstract machines and all four IO layers, plus the
   provenance registry that lets a surfaced exception be printed with
   the raise site it came from.

   The contract that keeps this zero-overhead when off: every
   instrumented hot path is gated by exactly one [if Obs.on tr] branch,
   and no event value is allocated unless that branch is taken. The
   provenance registry is the one always-on piece — it is touched only
   on raise paths, which are off the normal-transition fast path by
   construction. *)

module Exn = Lang.Exn

(* ------------------------------------------------------------------ *)
(* Provenance                                                          *)
(* ------------------------------------------------------------------ *)

type origin = {
  label : string;  (** Static label of the raise site (e.g. ["div"]). *)
  depth : int;  (** Evaluation-stack depth when the raise fired. *)
  step : int;  (** Machine step (0 in the denotational layer). *)
}

let origin ~label ~depth ~step = { label; depth; step }

let pp_origin ppf o =
  if o.step = 0 && o.depth = 0 then Fmt.string ppf o.label
  else Fmt.pf ppf "%s@@step:%d/depth:%d" o.label o.step o.depth

type provenance = (Exn.t, origin) Hashtbl.t
(** Exception constant -> origin of its most recent raise. Keyed on the
    constant itself: two sites raising the same constant overwrite each
    other, which is exactly the "representative member" the machine
    computes with (Section 3.5). *)

let new_provenance () : provenance = Hashtbl.create 16
let set_origin (p : provenance) e o = Hashtbl.replace p e o
let find_origin (p : provenance) e = Hashtbl.find_opt p e

let origins (p : provenance) : (Exn.t * origin) list =
  Hashtbl.fold (fun e o acc -> (e, o) :: acc) p []
  |> List.sort (fun (a, _) (b, _) -> Stdlib.compare a b)

let pp_exn_with (p : provenance) ppf e =
  match find_origin p e with
  | Some o -> Fmt.pf ppf "%a \xe2\x86\x90 %a" Exn.pp e pp_origin o
  | None -> Exn.pp ppf e

(* ------------------------------------------------------------------ *)
(* Events                                                              *)
(* ------------------------------------------------------------------ *)

type event =
  | Ev_raise of Exn.t * origin  (** A raise fired at its origin. *)
  | Ev_rethrow of Exn.t * origin
      (** A poisoned thunk was re-entered: the original raise replays. *)
  | Ev_catch of Exn.t option
      (** A catch mark returned: [Some e] caught, [None] normal value. *)
  | Ev_poison of int * Exn.t
      (** Synchronous unwinding overwrote the thunk at this address. *)
  | Ev_pause of int  (** Async unwinding left a resumable pause cell. *)
  | Ev_resume of int  (** A pause cell was re-entered and resumed. *)
  | Ev_mask_push
  | Ev_mask_pop
  | Ev_async of Exn.t  (** An asynchronous event was delivered. *)
  | Ev_gc of int * int  (** Collection: heap cells before/after. *)
  | Ev_acquire  (** A bracket acquire completed (release registered). *)
  | Ev_release  (** A bracket release ran (either exit path). *)
  | Ev_oracle_pick of Exn.t * Exn.t list
      (** [getException]'s oracle chose a member; the un-chosen members
          of the set ride along (empty for [All]). *)
  | Ev_throwto of int * int * Exn.t
      (** [throwTo]: source thread, target thread, exception sent. *)
  | Ev_kill_delivered of int * Exn.t
      (** A thread-targeted asynchronous exception reached its target
          (after any masked deferral). *)
  | Ev_blocked_recover of int
      (** An irrecoverably blocked thread was woken exceptionally with
          [BlockedIndefinitely] instead of deadlocking the program. *)
  | Ev_io of string  (** Other IO-layer transition (timeout, fork...). *)
  | Ev_lint_fail of string * string
      (** The post-pass IR linter rejected an optimizer pass's output:
          pass name, first violation. *)

let pp_event ppf = function
  | Ev_raise (e, o) -> Fmt.pf ppf "raise %a \xe2\x86\x90 %a" Exn.pp e pp_origin o
  | Ev_rethrow (e, o) ->
      Fmt.pf ppf "rethrow %a \xe2\x86\x90 %a" Exn.pp e pp_origin o
  | Ev_catch (Some e) -> Fmt.pf ppf "catch %a" Exn.pp e
  | Ev_catch None -> Fmt.string ppf "catch (normal)"
  | Ev_poison (a, e) -> Fmt.pf ppf "poison @@%d with %a" a Exn.pp e
  | Ev_pause a -> Fmt.pf ppf "pause @@%d" a
  | Ev_resume a -> Fmt.pf ppf "resume @@%d" a
  | Ev_mask_push -> Fmt.string ppf "mask push"
  | Ev_mask_pop -> Fmt.string ppf "mask pop"
  | Ev_async e -> Fmt.pf ppf "async %a" Exn.pp e
  | Ev_gc (b, a) -> Fmt.pf ppf "gc %d \xe2\x86\x92 %d cells" b a
  | Ev_acquire -> Fmt.string ppf "bracket acquire"
  | Ev_release -> Fmt.string ppf "bracket release"
  | Ev_oracle_pick (e, []) -> Fmt.pf ppf "oracle pick %a" Exn.pp e
  | Ev_oracle_pick (e, rest) ->
      Fmt.pf ppf "oracle pick %a (not: %a)" Exn.pp e
        Fmt.(list ~sep:comma Exn.pp)
        rest
  | Ev_throwto (src, dst, e) ->
      Fmt.pf ppf "throwTo t%d \xe2\x86\x92 t%d: %a" src dst Exn.pp e
  | Ev_kill_delivered (t, e) ->
      Fmt.pf ppf "deliver to t%d: %a" t Exn.pp e
  | Ev_blocked_recover t -> Fmt.pf ppf "t%d blocked-indefinitely recovery" t
  | Ev_io s -> Fmt.pf ppf "io %s" s
  | Ev_lint_fail (pass, v) -> Fmt.pf ppf "lint FAIL after %s: %s" pass v

(* ------------------------------------------------------------------ *)
(* The ring buffer                                                     *)
(* ------------------------------------------------------------------ *)

type t = {
  mutable on : bool;
  buf : event array;
  mutable next : int;  (** Write cursor. *)
  mutable total : int;  (** Events recorded over the recorder's life. *)
}

let create ?(capacity = 256) ?(on = false) () =
  { on; buf = Array.make (max 1 capacity) Ev_mask_pop; next = 0; total = 0 }

let on t = t.on
let enable t = t.on <- true
let disable t = t.on <- false
let capacity t = Array.length t.buf
let seen t = t.total

let clear t =
  t.next <- 0;
  t.total <- 0

let record t ev =
  t.buf.(t.next) <- ev;
  t.next <- (t.next + 1) mod Array.length t.buf;
  t.total <- t.total + 1

(* Retained events, oldest first. *)
let events t =
  let cap = Array.length t.buf in
  let n = min t.total cap in
  List.init n (fun i -> t.buf.(((t.next - n + i) mod cap + cap) mod cap))

(* ------------------------------------------------------------------ *)
(* Crash dumps                                                         *)
(* ------------------------------------------------------------------ *)

exception Machine_invariant of string
(** A broken machine invariant (an unwind that cannot happen, a return
    into an empty stack mid-step): fatal, but carries a full flight
    recorder dump instead of an anonymous assertion. *)

let dump ?(last = 32) ?(extra = []) ~note t =
  let buf = Buffer.create 512 in
  let ppf = Fmt.with_buffer buf in
  Fmt.pf ppf "=== flight recorder ===@\n%s@\n" note;
  List.iter (fun (k, v) -> Fmt.pf ppf "%s: %s@\n" k v) extra;
  if not t.on then
    Fmt.pf ppf "(recorder was off: enable tracing for an event history)@\n"
  else begin
    let evs = events t in
    let shown = min last (List.length evs) in
    let evs =
      (* Keep the newest [last] of the retained window. *)
      List.filteri (fun i _ -> i >= List.length evs - shown) evs
    in
    Fmt.pf ppf "%d events recorded (capacity %d), last %d:@\n" t.total
      (capacity t) shown;
    List.iteri
      (fun i ev ->
        Fmt.pf ppf "  [%d] %a@\n" (t.total - shown + i) pp_event ev)
      evs
  end;
  Fmt.flush ppf ();
  Buffer.contents buf
