(** The flight recorder: cross-layer observability for the imprecise
    exception machinery.

    Three pieces, shared by {!Machine.Stg}, {!Machine.Stg_ref},
    {!Semantics.Iosem}, {!Semantics.Conc}, {!Machine.Machine_io} and
    {!Machine.Machine_conc}:

    - a fixed-size ring buffer of structured {!event}s, gated by one
      branch on {!on} so instrumented hot paths cost nothing when the
      recorder is disabled (no event is even allocated);
    - exception {e provenance}: an {!origin} (raise-site label, stack
      depth, step number) registered per exception constant, so the
      member [getException] surfaces can be printed with where it came
      from — and, via {!Semantics.Exn_set.pp_annotated}, alongside the
      un-chosen members of its set;
    - {!dump}: the crash-dump formatter used on uncaught exceptions,
      fuel exhaustion and broken machine invariants
      ({!Machine_invariant}). *)

(** {1 Provenance} *)

type origin = {
  label : string;  (** Static label of the raise site (e.g. ["div"]). *)
  depth : int;  (** Evaluation-stack depth when the raise fired. *)
  step : int;  (** Machine step number (0 in the denotational layer). *)
}

val origin : label:string -> depth:int -> step:int -> origin
val pp_origin : origin Fmt.t

type provenance
(** Mutable registry: exception constant -> origin of its most recent
    raise (most-recent-wins, mirroring the machine's single
    representative member, Section 3.5). *)

val new_provenance : unit -> provenance
val set_origin : provenance -> Lang.Exn.t -> origin -> unit
val find_origin : provenance -> Lang.Exn.t -> origin option

val origins : provenance -> (Lang.Exn.t * origin) list
(** All registered origins, in a deterministic order. *)

val pp_exn_with : provenance -> Lang.Exn.t Fmt.t
(** Print an exception annotated with its origin, when one is known. *)

(** {1 Events} *)

type event =
  | Ev_raise of Lang.Exn.t * origin  (** A raise fired at its origin. *)
  | Ev_rethrow of Lang.Exn.t * origin
      (** A poisoned thunk was re-entered: the original raise replays. *)
  | Ev_catch of Lang.Exn.t option
      (** A catch mark returned: [Some e] caught, [None] normal value. *)
  | Ev_poison of int * Lang.Exn.t
      (** Synchronous unwinding overwrote the thunk at this address. *)
  | Ev_pause of int  (** Async unwinding left a resumable pause cell. *)
  | Ev_resume of int  (** A pause cell was re-entered and resumed. *)
  | Ev_mask_push
  | Ev_mask_pop
  | Ev_async of Lang.Exn.t  (** An asynchronous event was delivered. *)
  | Ev_gc of int * int  (** Collection: heap cells before/after. *)
  | Ev_acquire  (** A bracket acquire completed (release registered). *)
  | Ev_release  (** A bracket release ran (either exit path). *)
  | Ev_oracle_pick of Lang.Exn.t * Lang.Exn.t list
      (** [getException]'s oracle chose a member; the un-chosen members
          of the set ride along (empty for [All]). *)
  | Ev_throwto of int * int * Lang.Exn.t
      (** [throwTo]: source thread, target thread, exception sent. *)
  | Ev_kill_delivered of int * Lang.Exn.t
      (** A thread-targeted asynchronous exception reached its target
          thread (after any masked deferral). *)
  | Ev_blocked_recover of int
      (** An irrecoverably blocked thread was woken exceptionally with
          [BlockedIndefinitely] instead of deadlocking the program. *)
  | Ev_io of string  (** Other IO-layer transition (timeout, fork...). *)
  | Ev_lint_fail of string * string
      (** The post-pass IR linter rejected an optimizer pass's output:
          pass name, first violation. Recorded just before the pipeline
          aborts with a [Transform.Lint.Lint_error] crash dump. *)

val pp_event : event Fmt.t

(** {1 The recorder} *)

type t
(** A ring-buffer recorder. Disabled recorders ignore nothing — callers
    must gate with [if Obs.on tr then Obs.record tr (...)] so the event
    is not even allocated when tracing is off. *)

val create : ?capacity:int -> ?on:bool -> unit -> t
(** Default capacity 256 events, default off. *)

val on : t -> bool
(** The one branch instrumented hot paths pay when tracing is off. *)

val enable : t -> unit
val disable : t -> unit

val record : t -> event -> unit
(** Write an event (unconditionally — gate with {!on} at the call
    site). Overwrites the oldest event when the ring is full. *)

val seen : t -> int
(** Total events recorded over the recorder's life (not capped). *)

val capacity : t -> int

val events : t -> event list
(** The retained window (at most [capacity] events), oldest first. *)

val clear : t -> unit

(** {1 Crash dumps} *)

exception Machine_invariant of string
(** A broken machine invariant (an unwind that cannot happen, a return
    into an empty stack mid-step): fatal, but carries a full flight
    recorder dump instead of an anonymous assertion. *)

val dump : ?last:int -> ?extra:(string * string) list -> note:string ->
  t -> string
(** Format the last [last] (default 32) events plus caller-supplied
    [extra] key/value lines (stats snapshot, heap summary) under a
    [note] headline. Usable whether or not the recorder is on. *)
