open Imprecise

let () =
  (* timeout around a blocking takeMVar: should expire to Nothing, or deadlock? *)
  let src =
    "newEmptyMVar >>= \\mv -> timeout 5 (takeMVar mv) >>= \\r -> case r of \
     { Nothing -> putChar 'T' >>= \\u -> return 0 ; Just x -> return 1 }"
  in
  let r = Conc.run (parse src) in
  Fmt.pr "conc: %a out=%S@." Conc.pp_outcome r.Conc.outcome
    (Conc.output_string_of r);
  let m = Machine_conc.run (parse src) in
  Fmt.pr "machine_conc: %a out=%S@." Machine_conc.pp_outcome
    m.Machine_conc.outcome m.Machine_conc.output
