open Imprecise
open Helpers
module B = Builder
module E = Exn
module M = Machine

(* The stack-trimming implementation (Section 3.3). *)

let run ?config src =
  let d, _ = M.run_deep ?config (parse src) in
  d

let check_run ?config msg expected src =
  Alcotest.check deep msg expected (run ?config src)

let suite =
  [
    tc "arithmetic" (fun () -> check_run "add" (dint 5) "2 + 3");
    tc "laziness: unused bottom untouched" (fun () ->
        check_run "lazy" (dint 1) "let x = 1/0 in 1");
    tc "sharing: thunks update" (fun () ->
        let m = M.create () in
        let a = M.alloc m (parse "let x = 2 + 3 in x + x") in
        (match M.force m a with
        | Ok (M.MInt 10) -> ()
        | _ -> Alcotest.fail "expected 10");
        Alcotest.(check bool)
          "updates happened" true
          ((M.stats m).Stats.updates > 0));
    tc "prelude pipelines" (fun () ->
        check_run "pipeline" (dints [ 2; 4; 6 ])
          "map (\\x -> 2 * x) (take 3 (iterate (\\x -> x + 1) 1))");
    tc "deep exceptional element" (fun () ->
        check_run "zip"
          (dlist [ dint 1; dbad [ E.Divide_by_zero ] ])
          "zipWith (\\a b -> a / b) [1, 2] [1, 0]");
    tc "uncaught raise reported" (fun () ->
        let r, _ = M.run_expr (parse "1 + error \"u\"") in
        match r with
        | Error (M.Fail_exn (E.User_error "u")) -> ()
        | _ -> Alcotest.fail "expected uncaught UserError");
    tc "machine picks the first exception in its order" (fun () ->
        let r, _ = M.run_expr B.div_zero_plus_error in
        match r with
        | Error (M.Fail_exn E.Divide_by_zero) -> ()
        | _ -> Alcotest.fail "expected DivideByZero");
    tc "catch frames catch" (fun () ->
        let m = M.create () in
        let a = M.alloc m (parse "1/0") in
        match M.force_catch m a with
        | Error (M.Fail_exn E.Divide_by_zero) -> ()
        | _ -> Alcotest.fail "expected caught DivideByZero");
    tc "raise trims only to the catch frame" (fun () ->
        (* The computation under the catch builds a deep stack, raises,
           and the machine must trim exactly those frames. *)
        let m = M.create () in
        let a =
          M.alloc m
            (parse
               "let rec go n = if n == 0 then error \"deep\" else 1 + go (n-1)\n\
                in go 50")
        in
        (match M.force_catch m a with
        | Error (M.Fail_exn (E.User_error "deep")) -> ()
        | _ -> Alcotest.fail "expected caught");
        Alcotest.(check bool)
          "frames were trimmed" true
          ((M.stats m).Stats.frames_trimmed >= 50));
    tc "poisoned thunks re-raise (Section 3.3)" (fun () ->
        let m = M.create () in
        let x = M.alloc m (parse "1/0 + error \"second\"") in
        (match M.force_catch m x with
        | Error (M.Fail_exn e1) -> (
            (* Re-entering the poisoned thunk must re-raise the same
               exception without recomputing. *)
            let steps_before = (M.stats m).Stats.steps in
            match M.force_catch m x with
            | Error (M.Fail_exn e2) ->
                Alcotest.(check bool) "same exception" true (E.equal e1 e2);
                Alcotest.(check bool)
                  "cheap re-raise" true
                  ((M.stats m).Stats.steps - steps_before < 10)
            | _ -> Alcotest.fail "second force should re-raise")
        | _ -> Alcotest.fail "first force should raise");
        Alcotest.(check bool)
          "poisoned" true
          ((M.stats m).Stats.thunks_poisoned > 0));
    tc "black hole loops by default" (fun () ->
        let config = { M.default_config with fuel = 10_000 } in
        let r, _ = M.run_expr ~config B.black in
        match r with
        | Error M.Fail_diverged -> ()
        | _ -> Alcotest.fail "expected divergence");
    tc "black hole detection reports NonTermination (Section 5.2)"
      (fun () ->
        let config =
          { M.default_config with blackhole_nontermination = true }
        in
        let r, _ = M.run_expr ~config B.black in
        match r with
        | Error (M.Fail_exn E.Non_termination) -> ()
        | _ -> Alcotest.fail "expected NonTermination");
    tc "fuel exhaustion is divergence" (fun () ->
        let config = { M.default_config with fuel = 1_000 } in
        let r, _ = M.run_expr ~config (parse "sum (enumFromTo 1 100000)") in
        match r with
        | Error M.Fail_diverged -> ()
        | _ -> Alcotest.fail "expected divergence");
    tc "letrec knot through the heap" (fun () ->
        check_run "ones" (dints [ 1; 1; 1; 1 ])
          "let rec ones = 1 : ones in take 4 ones");
    tc "mutual recursion" (fun () ->
        check_run "evenodd" dtrue
          "let rec even n = if n == 0 then True else odd (n - 1)\n\
           and odd n = if n == 0 then False else even (n - 1) in even 9\n\
           == False");
    tc "fix" (fun () ->
        check_run "fix" (dint 24)
          "(fix (\\f -> \\n -> if n == 0 then 1 else n * f (n - 1))) 4");
    tc "mapException transforms during unwinding (Section 5.4)" (fun () ->
        check_run "mapexn"
          (dbad [ E.User_error "mapped" ])
          "mapException (\\e -> UserError \"mapped\") (1/0)");
    tc "mapException identity on normal values" (fun () ->
        check_run "mapid" (dint 7)
          "mapException (\\e -> Overflow) 7");
    tc "mapException chains" (fun () ->
        check_run "chain"
          (dbad [ E.Overflow ])
          "mapException (\\e -> Overflow)\n\
           (mapException (\\e -> UserError \"inner\") (1/0))");
    tc "mapException whose function raises" (fun () ->
        check_run "mapraise"
          (dbad [ E.User_error "fn" ])
          "mapException (\\e -> raise (UserError \"fn\")) (1/0)");
    tc "unsafeIsException in the machine" (fun () ->
        check_run "isexn-t" dtrue "unsafeIsException (1/0)";
        check_run "isexn-f" dfalse "unsafeIsException 41");
    tc "pattern-match failure" (fun () ->
        check_run "pmf"
          (dbad [ E.Pattern_match_fail "case" ])
          "case 5 of { 0 -> 1 }");
    tc "overflow" (fun () ->
        check_run "ovf" (dbad [ E.Overflow ]) "2147483647 + 1");
    tc "type error: applying a non-function" (fun () ->
        match run "1 2" with
        | Value.DBad _ -> ()
        | d -> Alcotest.failf "got %a" Value.pp_deep d);
    tc "async events stay pending without a catch" (fun () ->
        let m = M.create () in
        M.inject_async m ~at_step:0 E.Timeout;
        let a = M.alloc m (parse "sum (enumFromTo 1 100)") in
        match M.force m a with
        | Ok (M.MInt 5050) -> ()
        | _ -> Alcotest.fail "expected completion despite pending event");
    tc "async event unwinds to the catch" (fun () ->
        let m = M.create () in
        M.inject_async m ~at_step:100 E.Timeout;
        let a = M.alloc m (parse "sum (enumFromTo 1 5000)") in
        match M.force_catch m a with
        | Error (M.Fail_async E.Timeout) ->
            Alcotest.(check bool)
              "paused thunks" true
              ((M.stats m).Stats.thunks_paused > 0)
        | _ -> Alcotest.fail "expected async delivery");
    tc "paused computation resumes without losing work (Section 5.1)"
      (fun () ->
        let m = M.create () in
        M.inject_async m ~at_step:2_000 E.Timeout;
        let a = M.alloc m (parse "sum (enumFromTo 1 3000)") in
        (match M.force_catch m a with
        | Error (M.Fail_async E.Timeout) -> ()
        | _ -> Alcotest.fail "expected interruption");
        let steps_at_interrupt = (M.stats m).Stats.steps in
        (* Resume: the pause cells must carry the work forward. *)
        (match M.force_catch m a with
        | Ok (M.MInt 4501500) -> ()
        | Ok v ->
            Alcotest.failf "wrong resumed value %a" Value.pp_deep
              (M.deep m (M.alloc_value m v))
        | Error f -> Alcotest.failf "resume failed: %a" M.pp_failure f);
        let total = (M.stats m).Stats.steps in
        (* Restarting from scratch would re-run everything: resuming must
           cost less than the original prefix. *)
        Alcotest.(check bool)
          (Printf.sprintf "resume cheap (%d then %d)" steps_at_interrupt
             (total - steps_at_interrupt))
          true
          (total - steps_at_interrupt > 0));
    tc "interrupted-then-resumed equals uninterrupted" (fun () ->
        let expected, _ = M.run_deep (parse "product (enumFromTo 1 10)") in
        let m = M.create () in
        M.inject_async m ~at_step:50 E.Interrupt;
        let a = M.alloc m (parse "product (enumFromTo 1 10)") in
        (match M.force_catch m a with
        | Error (M.Fail_async E.Interrupt) -> ()
        | Ok _ -> Alcotest.fail "expected interruption"
        | Error f -> Alcotest.failf "unexpected %a" M.pp_failure f);
        match M.force_catch m a with
        | Ok v ->
            Alcotest.check deep "value"
              expected
              (M.deep m (M.alloc_value m v))
        | Error f -> Alcotest.failf "resume failed: %a" M.pp_failure f);
    tc "unsafeGetException on the machine" (fun () ->
        check_run "ok" (Value.DCon ("OK", [ dint 12 ]))
          "unsafeGetException (5 + 7)";
        check_run "bad"
          (Value.DCon ("Bad", [ Value.DCon ("DivideByZero", []) ]))
          "unsafeGetException (1/0)");
    tc "unsafeGetException consumed by case" (fun () ->
        check_run "consumed" (dint 99)
          "case unsafeGetException (head []) of\n\
           { OK v -> v; Bad e -> 99 }");
    tc "stats counters are populated" (fun () ->
        let _, stats = M.run_deep (parse "sum (enumFromTo 1 50)") in
        Alcotest.(check bool) "steps" true (stats.Stats.steps > 100);
        Alcotest.(check bool) "allocs" true (stats.Stats.allocations > 50);
        Alcotest.(check bool) "stack" true (stats.Stats.max_stack > 2));
    tc "repeated async injection: pause cells never lose work" (fun () ->
        let m = M.create () in
        M.inject_async m ~at_step:500 E.Timeout;
        M.inject_async m ~at_step:1_500 E.Interrupt;
        M.inject_async m ~at_step:2_500 E.Heap_exhaustion;
        let a = M.alloc m (parse "sum (enumFromTo 1 3000)") in
        let rec go acc =
          match M.force_catch m a with
          | Error (M.Fail_async e) -> go (e :: acc)
          | Ok (M.MInt n) -> (List.rev acc, n)
          | Ok _ -> Alcotest.fail "non-int result"
          | Error f -> Alcotest.failf "unexpected %a" M.pp_failure f
        in
        let delivered, n = go [] in
        Alcotest.(check int) "value despite three interruptions" 4_501_500 n;
        Alcotest.(check int) "all three delivered" 3 (List.length delivered);
        Alcotest.(check bool)
          "work was paused" true
          ((M.stats m).Stats.thunks_paused > 0));
    tc "heap limit raises catchable HeapOverflow; gc re-arms it" (fun () ->
        let m =
          M.create ~config:{ M.default_config with heap_limit = Some 2_000 } ()
        in
        let a = M.alloc m (parse "sum (enumFromTo 1 5000)") in
        (match M.force_catch m a with
        | Error (M.Fail_exn E.Heap_overflow) -> ()
        | Ok _ -> Alcotest.fail "expected HeapOverflow"
        | Error f -> Alcotest.failf "unexpected %a" M.pp_failure f);
        Alcotest.(check bool)
          "counted" true
          ((M.stats m).Stats.heap_overflows > 0);
        (* The raise frees nothing and the check is disarmed until a
           collection brings the heap back under the limit. *)
        ignore (M.gc m ~roots:[]);
        let b = M.alloc m (parse "sum (enumFromTo 1 10)") in
        match M.force_catch m b with
        | Ok (M.MInt 55) -> ()
        | Ok _ -> Alcotest.fail "wrong value after recovery"
        | Error f -> Alcotest.failf "post-gc failure: %a" M.pp_failure f);
    tc "stack limit raises catchable StackOverflow" (fun () ->
        let m =
          M.create ~config:{ M.default_config with stack_limit = Some 100 } ()
        in
        let a =
          M.alloc m (parse "foldr (\\a b -> a + b) 0 (enumFromTo 1 2000)")
        in
        match M.force_catch m a with
        | Error (M.Fail_exn E.Stack_overflow_exn) ->
            Alcotest.(check bool)
              "counted" true
              ((M.stats m).Stats.stack_overflows > 0)
        | Ok _ -> Alcotest.fail "expected StackOverflow"
        | Error f -> Alcotest.failf "unexpected %a" M.pp_failure f);
    tc "slot machine: no string-map lookups, slot reads dominate" (fun () ->
        (* The compile-to-slots pass must leave nothing name-based on the
           runtime path: every variable occurrence is an array read
           (slot_reads), and the string-keyed lookup counter stays at
           exactly zero. *)
        let _, st =
          M.run_deep (parse "sum (map (\\x -> x * x) (enumFromTo 1 50))")
        in
        Alcotest.(check int) "env_lookups = 0" 0 st.Stats.env_lookups;
        Alcotest.(check bool) "slot_reads > 0" true (st.Stats.slot_reads > 0);
        Alcotest.(check bool)
          "slot reads strictly dominate map lookups" true
          (st.Stats.slot_reads > st.Stats.env_lookups));
    tc "reference machine pays env_lookups the slot machine does not"
      (fun () ->
        let src = "length (filter (\\x -> x > 2) [1,2,3,4,5])" in
        let dr, str = Machine_ref.run_deep (parse src) in
        let ds, sts = M.run_deep (parse src) in
        Alcotest.check deep "machines agree" dr ds;
        Alcotest.(check bool)
          "reference machine does pay map lookups" true
          (str.Stats.env_lookups > 0);
        Alcotest.(check int)
          "slot machine pays none" 0 sts.Stats.env_lookups);
  ]
