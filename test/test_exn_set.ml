open Imprecise
module ES = Exn_set

let gen_exn : Exn.t QCheck2.Gen.t = QCheck2.Gen.oneofl Exn.all_known

let gen_set : ES.t QCheck2.Gen.t =
  QCheck2.Gen.(
    frequency
      [
        (1, return ES.All);
        (1, return ES.empty);
        (6, map ES.of_list (list_size (int_range 0 5) gen_exn));
      ])

let print_set = Fmt.str "%a" ES.pp
let print_set2 = QCheck2.Print.pair print_set print_set
let print_set3 =
  QCheck2.Print.triple print_set print_set print_set

let q ?(count = 500) name gen print prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~name ~count ~print gen prop)

let suite =
  [
    Helpers.tc "bottom is All" (fun () ->
        Alcotest.(check bool) "all" true (ES.is_all ES.bottom));
    Helpers.tc "empty is not All and is empty" (fun () ->
        Alcotest.(check bool) "not all" false (ES.is_all ES.empty);
        Alcotest.(check bool) "empty" true (ES.is_empty ES.empty));
    Helpers.tc "All contains everything" (fun () ->
        List.iter
          (fun e -> Alcotest.(check bool) "mem" true (ES.mem e ES.All))
          Exn.all_known);
    Helpers.tc "union with All is All" (fun () ->
        Alcotest.check Helpers.exn_set "union" ES.All
          (ES.union ES.All (ES.singleton Exn.Overflow)));
    Helpers.tc "ordering is reverse inclusion" (fun () ->
        let s1 = ES.of_list [ Exn.Overflow; Exn.Divide_by_zero ] in
        let s2 = ES.singleton Exn.Overflow in
        Alcotest.(check bool) "bigger set is lower" true (ES.leq s1 s2);
        Alcotest.(check bool) "smaller set is not lower" false (ES.leq s2 s1));
    Helpers.tc "bottom below empty" (fun () ->
        Alcotest.(check bool) "leq" true (ES.leq ES.bottom ES.empty));
    Helpers.tc "choose on All is NonTermination" (fun () ->
        Alcotest.(check bool)
          "choose" true
          (ES.choose ES.All = Some Exn.Non_termination));
    Helpers.tc "choose on empty is None" (fun () ->
        Alcotest.(check bool) "choose" true (ES.choose ES.empty = None));
    Helpers.tc "has_non_termination" (fun () ->
        Alcotest.(check bool) "all" true (ES.has_non_termination ES.All);
        Alcotest.(check bool)
          "finite without" false
          (ES.has_non_termination (ES.singleton Exn.Overflow));
        Alcotest.(check bool)
          "finite with" true
          (ES.has_non_termination (ES.singleton Exn.Non_termination)));
    Helpers.tc "map on All stays All" (fun () ->
        Alcotest.check Helpers.exn_set "map" ES.All
          (ES.map (fun _ -> Exn.Overflow) ES.All));
    Helpers.tc "map collapses members" (fun () ->
        Alcotest.check Helpers.exn_set "map"
          (ES.singleton Exn.Overflow)
          (ES.map
             (fun _ -> Exn.Overflow)
             (ES.of_list [ Exn.Divide_by_zero; Exn.User_error "x" ])));
    Helpers.tc "drop_async removes async members" (fun () ->
        Alcotest.check Helpers.exn_set "drop"
          (ES.singleton Exn.Overflow)
          (ES.drop_async (ES.of_list [ Exn.Overflow; Exn.Timeout ]));
        (* Synchronous members are kept — the direction the old
           [filter_async] name obscured. *)
        Alcotest.check Helpers.exn_set "keeps sync"
          (ES.of_list [ Exn.Overflow; Exn.Divide_by_zero ])
          (ES.drop_async
             (ES.of_list
                [ Exn.Overflow; Exn.Divide_by_zero; Exn.Interrupt ]));
        Alcotest.check Helpers.exn_set "All unchanged" ES.All
          (ES.drop_async ES.All));
    Helpers.tc "keep_async is the complement of drop_async" (fun () ->
        let s =
          ES.of_list [ Exn.Overflow; Exn.Timeout; Exn.Interrupt ]
        in
        Alcotest.check Helpers.exn_set "keep"
          (ES.of_list [ Exn.Timeout; Exn.Interrupt ])
          (ES.keep_async s);
        Alcotest.check Helpers.exn_set "union restores"
          s
          (ES.union (ES.drop_async s) (ES.keep_async s));
        Alcotest.check Helpers.exn_set "All unchanged" ES.All
          (ES.keep_async ES.All));
    Helpers.tc "cardinal" (fun () ->
        Alcotest.(check (option int)) "all" None (ES.cardinal ES.All);
        Alcotest.(check (option int))
          "two" (Some 2)
          (ES.cardinal (ES.of_list [ Exn.Overflow; Exn.Interrupt ])));
    (* Lattice laws. *)
    q "union is commutative"
      QCheck2.Gen.(pair gen_set gen_set)
      print_set2
      (fun (a, b) -> ES.equal (ES.union a b) (ES.union b a));
    q "union is associative"
      QCheck2.Gen.(triple gen_set gen_set gen_set)
      print_set3
      (fun (a, b, c) ->
        ES.equal (ES.union a (ES.union b c)) (ES.union (ES.union a b) c));
    q "union is idempotent" gen_set print_set (fun a ->
        ES.equal (ES.union a a) a);
    q "union is the meet: below both operands"
      QCheck2.Gen.(pair gen_set gen_set)
      print_set2
      (fun (a, b) ->
        ES.leq (ES.union a b) a && ES.leq (ES.union a b) b);
    q "leq is reflexive" gen_set print_set (fun a -> ES.leq a a);
    q "leq is antisymmetric"
      QCheck2.Gen.(pair gen_set gen_set)
      print_set2
      (fun (a, b) -> (not (ES.leq a b && ES.leq b a)) || ES.equal a b);
    q "leq is transitive"
      QCheck2.Gen.(triple gen_set gen_set gen_set)
      print_set3
      (fun (a, b, c) ->
        (not (ES.leq a b && ES.leq b c)) || ES.leq a c);
    q "bottom is least" gen_set print_set (fun a -> ES.leq ES.bottom a);
    q "empty is greatest" gen_set print_set (fun a -> ES.leq a ES.empty);
    q "chosen member is a member" gen_set print_set (fun a ->
        match ES.choose a with
        | None -> ES.is_empty a
        | Some e -> ES.mem e a);
    (* drop_async/keep_async partition the set (Section 5.1), and the
       partition interacts with map — the core of mapException. *)
    q "drop/keep async partition the set" gen_set print_set (fun a ->
        if ES.is_all a then
          ES.is_all (ES.drop_async a) && ES.is_all (ES.keep_async a)
        else
          ES.equal a (ES.union (ES.drop_async a) (ES.keep_async a))
          &&
          match ES.elements (ES.drop_async a) with
          | None -> false
          | Some kept ->
              List.for_all (fun e -> not (ES.mem e (ES.keep_async a))) kept);
    q "drop_async keeps exactly the synchronous members" gen_set print_set
      (fun a ->
        match (ES.elements a, ES.elements (ES.drop_async a)) with
        | None, None -> true
        | Some es, Some kept ->
            List.for_all (fun e -> Exn.is_synchronous e) kept
            && List.for_all
                 (fun e -> Exn.is_asynchronous e || List.mem e kept)
                 es
        | _ -> false);
    q "map to an async constant lands in keep_async" gen_set print_set
      (fun a ->
        let m = ES.map (fun _ -> Exn.Interrupt) a in
        if ES.is_all a then ES.is_all m
        else
          ES.is_empty (ES.drop_async m)
          && (ES.is_empty a
             || ES.equal (ES.keep_async m) (ES.singleton Exn.Interrupt)));
    q "map to a sync constant lands in drop_async" gen_set print_set
      (fun a ->
        let m = ES.map (fun _ -> Exn.Overflow) a in
        if ES.is_all a then ES.is_all m
        else
          ES.is_empty (ES.keep_async m)
          && (ES.is_empty a
             || ES.equal (ES.drop_async m) (ES.singleton Exn.Overflow)));
  ]
