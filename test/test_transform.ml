open Imprecise
open Helpers
open Syntax
module B = Builder
module E = Exn

let suite =
  [
    tc "beta applies" (fun () ->
        match Rules.beta.Rules.applies (App (B.lam "x" B.(var "x" + int 1), B.int 2)) with
        | Some r -> Alcotest.check expr "beta" B.(int 2 + int 1) r
        | None -> Alcotest.fail "should apply");
    tc "beta does not apply to non-redexes" (fun () ->
        Alcotest.(check bool)
          "no" true
          (Rules.beta.Rules.applies (B.int 1) = None));
    tc "plus_commute swaps" (fun () ->
        match Rules.plus_commute.Rules.applies B.(int 1 + int 2) with
        | Some r -> Alcotest.check expr "swap" B.(int 2 + int 1) r
        | None -> Alcotest.fail "should apply");
    tc "case_switch pushes the application in" (fun () ->
        let lhs =
          App
            ( Case
                ( B.true_,
                  [
                    { pat = Pcon ("True", []); rhs = Var "f" };
                    { pat = Pcon ("False", []); rhs = Var "g" };
                  ] ),
              Var "x" )
        in
        match Rules.case_switch.Rules.applies lhs with
        | Some (Case (_, alts)) ->
            Alcotest.(check int) "two alts" 2 (List.length alts);
            List.iter
              (fun a ->
                match a.rhs with
                | App (_, Var "x") -> ()
                | _ -> Alcotest.fail "expected pushed application")
              alts
        | _ -> Alcotest.fail "should apply");
    tc "case_switch refuses capture" (fun () ->
        let lhs =
          App
            ( Case
                ( B.true_,
                  [ { pat = Pcon ("Just", [ "x" ]); rhs = Var "x" } ] ),
              Var "x" )
        in
        Alcotest.(check bool)
          "refuses" true
          (Rules.case_switch.Rules.applies lhs = None));
    tc "paper 4.5: case_switch loses exactly the argument's exceptions"
      (fun () ->
        (* lhs = (case raise E of {...->\v.1}) (raise X): Bad {E, X}
           rhs = case raise E of {...-> (\v.1) (raise X)}: Bad {E}. *)
        let lhs = List.hd Rules.case_switch.Rules.instances in
        let rhs = Option.get (Rules.case_switch.Rules.applies lhs) in
        Alcotest.check exn_set "lhs"
          (Exn_set.of_list [ E.User_error "E"; E.User_error "X" ])
          (Denot.exception_set lhs);
        Alcotest.check exn_set "rhs"
          (Exn_set.of_list [ E.User_error "E" ])
          (Denot.exception_set rhs);
        Alcotest.check verdict "refines" Refine.Refines
          (Refine.compare_denot lhs rhs));
    tc "case_commute swaps independent scrutinees" (fun () ->
        let lhs = List.hd Rules.case_commute.Rules.instances in
        match Rules.case_commute.Rules.applies lhs with
        | Some (Case (s2, _)) ->
            Alcotest.check expr "outer is y" (B.pair (B.int 3) (B.int 4)) s2
        | _ -> Alcotest.fail "should apply");
    tc "error_collapse is invalid (the lost law)" (fun () ->
        let lhs = B.error "This" in
        let rhs = Option.get (Rules.error_collapse.Rules.applies lhs) in
        Alcotest.check verdict "incomparable" Refine.Incomparable
          (Refine.compare_denot lhs rhs));
    tc "case_of_known_constructor selects and binds lazily" (fun () ->
        let lhs =
          Case
            ( B.pair (B.int 1) B.(int 1 / int 0),
              [ { pat = Pcon ("Pair", [ "a"; "b" ]); rhs = Var "a" } ] )
        in
        let rhs = Option.get (Rules.case_of_known_constructor.Rules.applies lhs) in
        Alcotest.check deep "lazy fields" (dint 1) (Denot.run_deep rhs));
    tc "dead_let drops" (fun () ->
        let lhs = Let ("x", B.loop, B.int 1) in
        Alcotest.check expr "drop" (B.int 1)
          (Option.get (Rules.dead_let.Rules.applies lhs)));
    tc "dead_let keeps used bindings" (fun () ->
        Alcotest.(check bool)
          "keeps" true
          (Rules.dead_let.Rules.applies (Let ("x", B.int 1, Var "x")) = None));
    tc "strictness_cbv converts demanded lets to case" (fun () ->
        let lhs = Let ("x", B.int 1, B.(var "x" + int 2)) in
        match Rules.strictness_cbv.Rules.applies lhs with
        | Some (Case (Lit (Lit_int 1), [ { pat = Pany (Some "x"); _ } ])) ->
            ()
        | _ -> Alcotest.fail "expected let-to-case");
    tc "strictness_cbv skips lazy bindings" (fun () ->
        Alcotest.(check bool)
          "skips" true
          (Rules.strictness_cbv.Rules.applies
             (Let ("x", B.int 1, B.int 2))
          = None));
    tc "every rule's instances fire at the root" (fun () ->
        List.iter
          (fun (r : Rules.rule) ->
            List.iter
              (fun inst ->
                if r.Rules.applies inst = None then
                  Alcotest.failf "rule %s: instance does not fire"
                    r.Rules.name)
              r.Rules.instances)
          Rules.all);
    (* Rewrite combinators. *)
    tc "bottom_up counts sites" (fun () ->
        let e = B.(int 1 + int 2 + (int 3 + int 4)) in
        let _, n = Rewrite.bottom_up Rules.plus_commute.Rules.applies e in
        Alcotest.(check int) "three" 3 n);
    tc "fixpoint terminates on non-confluent rules" (fun () ->
        (* plus_commute flips forever; max_rounds bounds it. *)
        let e = B.(int 1 + int 2) in
        let _, n =
          Rewrite.fixpoint ~max_rounds:4 Rules.plus_commute.Rules.applies e
        in
        Alcotest.(check int) "rounds" 4 n);
    tc "first_site rewrites exactly one site" (fun () ->
        let e = B.(int 1 + int 2 + (int 3 + int 4)) in
        match Rewrite.first_site Rules.plus_commute.Rules.applies e with
        | Some e' ->
            let _, remaining =
              Rewrite.bottom_up Rules.plus_commute.Rules.applies e'
            in
            Alcotest.(check int) "others untouched" 3 remaining
        | None -> Alcotest.fail "should fire");
    tc "subterms includes the root" (fun () ->
        let e = B.(int 1 + int 2) in
        Alcotest.(check int) "count" 3 (List.length (Rewrite.subterms e)));
    (* Pipeline. *)
    tc "simplify removes beta redexes and dead lets" (fun () ->
        let e =
          Let
            ( "dead",
              B.loop,
              App (B.lam "x" B.(var "x" + int 1), B.int 41) )
        in
        let e', n = Pipeline.simplify_pass e in
        Alcotest.(check bool) "fired" true (n >= 2);
        Alcotest.check deep "meaning" (dint 42) (Denot.run_deep e'));
    tc "cbv pass counts applied and blocked sites" (fun () ->
        let e =
          Let
            ( "a",
              B.(int 1 / int 0),
              Let ("b", B.int 2, B.(var "a" + var "b")) )
        in
        let _, applied_imp, blocked_imp = Pipeline.cbv_pass Pipeline.Imprecise e in
        let _, applied_fix, blocked_fix =
          Pipeline.cbv_pass Pipeline.Fixed_order_with_effect_analysis e
        in
        Alcotest.(check int) "imprecise applies both" 2 applied_imp;
        Alcotest.(check int) "imprecise blocks none" 0 blocked_imp;
        (* Fixed order can only move the provably pure binding b; 1/0 is
           blocked. b = 2 is a literal... bound to 2, pure. *)
        Alcotest.(check int) "fixed applies one" 1 applied_fix;
        Alcotest.(check int) "fixed blocks one" 1 blocked_fix);
    tc "imprecise pipeline preserves meaning on goldens" (fun () ->
        let goldens =
          [
            ("sum (enumFromTo 1 20)", dint 210);
            ("let x = 2 + 3 in x * x", dint 25);
            ("zipWith (\\a b -> a + b) [1,2] [10,20]", dints [ 11; 22 ]);
            ("1/0 + error \"Urk\"",
             dbad [ E.Divide_by_zero; E.User_error "Urk" ]);
          ]
        in
        List.iter
          (fun (src, expected) ->
            let e = parse src in
            let e', _ = Pipeline.optimize Pipeline.Imprecise e in
            Alcotest.(check bool)
              (Printf.sprintf "refines: %s" src)
              true
              (Value.deep_leq expected (Denot.run_deep e')))
          goldens);
    tc "count_cbv_opportunities: imprecise >= fixed" (fun () ->
        let e =
          parse
            "let a = sum (enumFromTo 1 10) in\n\
             let b = 1 in\n\
             a + b"
        in
        let imp, fix = Pipeline.count_cbv_opportunities e in
        Alcotest.(check bool)
          (Printf.sprintf "imp %d >= fix %d" imp fix)
          true (imp >= fix));
    tc "count_cbv_opportunities equals the reports' own cbv sites" (fun () ->
        (* The headline C8 numbers are read off the optimize reports, so
           they can never drift from the pipeline's own accounting. *)
        let e =
          parse "let a = sum (enumFromTo 1 10) in let b = 1 in a + b"
        in
        let imp, fix = Pipeline.count_cbv_opportunities e in
        let _, ri = Pipeline.optimize ~lint:false Pipeline.Imprecise e in
        let _, rf =
          Pipeline.optimize ~lint:false
            Pipeline.Fixed_order_with_effect_analysis e
        in
        Alcotest.(check int)
          "imprecise" (List.assoc "cbv" ri.Pipeline.sites) imp;
        Alcotest.(check int) "fixed" (List.assoc "cbv" rf.Pipeline.sites) fix);
    tc "report counts the rounds actually executed" (fun () ->
        (* A literal program: round 1 prunes the prelude away, round 2
           is the no-change round that stops the driver. *)
        let _, r = Pipeline.optimize Pipeline.Imprecise (parse "42") in
        Alcotest.(check int) "literal takes two rounds" 2 r.Pipeline.rounds;
        let _, r =
          Pipeline.optimize Pipeline.Imprecise (parse "sum (enumFromTo 1 20)")
        in
        Alcotest.(check bool)
          (Printf.sprintf "bounded rounds (got %d)" r.Pipeline.rounds)
          true
          (r.Pipeline.rounds >= 2 && r.Pipeline.rounds <= 8));
    tc "optimizer idempotence: a fixpoint re-optimises to itself" (fun () ->
        List.iter
          (fun src ->
            let e = parse src in
            let o1, _ = Pipeline.optimize Pipeline.Imprecise e in
            let o2, _ = Pipeline.optimize Pipeline.Imprecise o1 in
            Alcotest.check expr (Printf.sprintf "idempotent: %s" src) o1 o2)
          [
            "sum (enumFromTo 1 20)";
            "let x = 2 + 3 in x * x";
            "zipWith (\\a b -> a + b) [1,2] [10,20]";
            "case (1 / 0, 2) of { Pair a b -> b }";
          ]);
    tc "lint ablations: every broken pass is caught and blamed by name"
      (fun () ->
        let cases =
          [
            ("unbind-var", "scope", "let x = sum (enumFromTo 1 3) in x + x");
            ("drop-con-arg", "arity", "1 : 2 : []");
            ( "dup-pattern-binder",
              "binder-uniqueness",
              "case enumFromTo 1 2 of { Cons h t -> h; Nil -> 0 }" );
            ("int-to-string", "type-preservation", "sum (enumFromTo 1 3)");
          ]
        in
        List.iter
          (fun (abl, cat, src) ->
            Alcotest.(check bool)
              (abl ^ " is a published ablation")
              true
              (List.mem abl Pipeline.ablations);
            match
              Pipeline.optimize ~break_pass:abl Pipeline.Imprecise (parse src)
            with
            | exception Lint.Lint_error { pass; violations; _ } ->
                Alcotest.(check string) (abl ^ ": blamed pass") abl pass;
                Alcotest.(check bool)
                  (Printf.sprintf "%s: fires the %s check" abl cat)
                  true
                  (List.exists (fun v -> String.equal v.Lint.check cat)
                     violations)
            | _ -> Alcotest.failf "%s: lint did not fire" abl)
          cases);
    tc "case-of-known skips a same-name wrong-arity alternative" (fun () ->
        (* A [Pcon] alternative at the wrong arity is legal unreachable
           input: the machines fall through it, so case-of-known must
           too — and the linter must tolerate it. *)
        let scrut = Con ("Cons", [ B.int 7; Con ("Nil", []) ]) in
        let wrong = { pat = Pcon ("Cons", [ "h" ]); rhs = Var "h" } in
        let deflt = { pat = Pany None; rhs = B.int 99 } in
        let right = { pat = Pcon ("Cons", [ "h"; "t" ]); rhs = Var "h" } in
        let to_default = Case (scrut, [ wrong; deflt ]) in
        let to_right = Case (scrut, [ wrong; right; deflt ]) in
        List.iter
          (fun (name, e, expected) ->
            let e', n = Pipeline.simplify_pass e in
            Alcotest.(check bool) (name ^ ": fired") true (n > 0);
            Alcotest.check deep (name ^ ": matches the machines") expected
              (Denot.run_deep e');
            Alcotest.check deep (name ^ ": meaning unchanged")
              (Denot.run_deep e) (Denot.run_deep e');
            (* The full linted pipeline accepts the wrong-arity input. *)
            let o, _ = Pipeline.optimize Pipeline.Imprecise e in
            Alcotest.check deep (name ^ ": linted pipeline agrees") expected
              (Denot.run_deep o))
          [
            ("falls to default", to_default, dint 99);
            ("falls to matching alt", to_right, dint 7);
          ]);
  ]
