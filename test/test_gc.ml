open Imprecise
open Helpers
module M = Machine
module E = Exn

(* The machine's copying collector. *)

let suite =
  [
    tc "collection shrinks a garbage-heavy heap" (fun () ->
        let m = M.create () in
        let a = M.alloc m (parse "sum (enumFromTo 1 300)") in
        (match M.force m a with
        | Ok (M.MInt 45150) -> ()
        | _ -> Alcotest.fail "value");
        let before = M.heap_size m in
        (match M.gc m ~roots:[ a ] with
        | [ a' ] -> (
            let after = M.heap_size m in
            Alcotest.(check bool)
              (Printf.sprintf "shrank %d -> %d" before after)
              true
              (after < before / 10);
            match M.force m a' with
            | Ok (M.MInt 45150) -> ()
            | _ -> Alcotest.fail "value after gc")
        | _ -> Alcotest.fail "roots");
        Alcotest.(check int) "collections counted" 1
          (M.stats m).Stats.collections);
    tc "roots are relocated in order" (fun () ->
        let m = M.create () in
        let a = M.alloc m (parse "1 + 1") in
        let b = M.alloc m (parse "2 + 2") in
        (match (M.force m a, M.force m b) with
        | Ok (M.MInt 2), Ok (M.MInt 4) -> ()
        | _ -> Alcotest.fail "values");
        match M.gc m ~roots:[ a; b ] with
        | [ a'; b' ] -> (
            match (M.force m a', M.force m b') with
            | Ok (M.MInt 2), Ok (M.MInt 4) -> ()
            | _ -> Alcotest.fail "values after gc")
        | _ -> Alcotest.fail "roots");
    tc "lazy structures survive collection unevaluated" (fun () ->
        let m = M.create () in
        let a =
          M.alloc m (parse "take 3 (iterate (\\x -> x * 2) 1)")
        in
        (* Force only the WHNF, collect, then force deeply. *)
        (match M.force m a with Ok (M.MCon _) -> () | _ ->
          Alcotest.fail "whnf");
        (match M.gc m ~roots:[ a ] with
        | [ a' ] ->
            Alcotest.check deep "deep after gc" (dints [ 1; 2; 4 ])
              (M.deep m a')
        | _ -> Alcotest.fail "roots");
        ());
    tc "cycles survive collection" (fun () ->
        let m = M.create () in
        let a = M.alloc m (parse "let rec ones = 1 : ones in ones") in
        (match M.force m a with Ok _ -> () | Error _ -> Alcotest.fail "f");
        match M.gc m ~roots:[ a ] with
        | [ a' ] -> (
            (* take from the cyclic structure after collection *)
            let taker =
              M.alloc_app m
                (M.alloc m (parse "take 4"))
                a'
            in
            match M.force m taker with
            | Ok _ ->
                Alcotest.check deep "cyclic" (dints [ 1; 1; 1; 1 ])
                  (M.deep m taker)
            | Error f -> Alcotest.failf "take: %a" M.pp_failure f)
        | _ -> Alcotest.fail "roots");
    tc "poisoned thunks survive collection" (fun () ->
        let m = M.create () in
        let a = M.alloc m (parse "1/0") in
        (match M.force_catch m a with
        | Error (M.Fail_exn E.Divide_by_zero) -> ()
        | _ -> Alcotest.fail "catch");
        match M.gc m ~roots:[ a ] with
        | [ a' ] -> (
            match M.force_catch m a' with
            | Error (M.Fail_exn E.Divide_by_zero) -> ()
            | _ -> Alcotest.fail "re-raise after gc")
        | _ -> Alcotest.fail "roots");
    tc "paused (interrupted) computations resume across collection"
      (fun () ->
        let m = M.create () in
        M.inject_async m ~at_step:2_000 E.Timeout;
        let a = M.alloc m (parse "sum (enumFromTo 1 3000)") in
        (match M.force_catch m a with
        | Error (M.Fail_async E.Timeout) -> ()
        | _ -> Alcotest.fail "interrupt");
        match M.gc m ~roots:[ a ] with
        | [ a' ] -> (
            match M.force_catch m a' with
            | Ok (M.MInt 4501500) -> ()
            | _ -> Alcotest.fail "resume after gc")
        | _ -> Alcotest.fail "roots");
    tc "pause cells are traced and survive relocation" (fun () ->
        (* Satellite of the async-exception work: an interrupt mid-sum
           parks a pause cell (Ev_pause); the cell must survive the
           copying collector and resume (Ev_resume) to the exact value,
           proving relocation preserved the captured continuation. *)
        let trace = Obs.create ~on:true () in
        let m = M.create ~trace () in
        M.inject_async m ~at_step:2_000 E.Timeout;
        let a = M.alloc m (parse "sum (enumFromTo 1 3000)") in
        (match M.force_catch m a with
        | Error (M.Fail_async E.Timeout) -> ()
        | _ -> Alcotest.fail "interrupt");
        let paused =
          List.exists
            (function Obs.Ev_pause _ -> true | _ -> false)
            (Obs.events trace)
        in
        Alcotest.(check bool) "pause recorded" true paused;
        match M.gc m ~roots:[ a ] with
        | [ a' ] -> (
            (match M.force_catch m a' with
            | Ok (M.MInt 4501500) -> ()
            | _ -> Alcotest.fail "resume after gc");
            let resumed =
              List.exists
                (function Obs.Ev_resume _ -> true | _ -> false)
                (Obs.events trace)
            in
            Alcotest.(check bool) "resume recorded" true resumed)
        | _ -> Alcotest.fail "roots");
    tc "unrooted data is dropped" (fun () ->
        let m = M.create () in
        let _garbage = M.alloc m (parse "sum (enumFromTo 1 100)") in
        let keep = M.alloc_value m (M.MInt 7) in
        (match M.gc m ~roots:[ keep ] with
        | [ k ] ->
            Alcotest.(check int) "one live cell" 1 (M.heap_size m);
            (match M.force m k with
            | Ok (M.MInt 7) -> ()
            | _ -> Alcotest.fail "kept value")
        | _ -> Alcotest.fail "roots"));
    tc "IO driver with gc_every produces identical results" (fun () ->
        let src =
          "mapM (\\x -> getException (100 / x)) [5, 0, 2] >>= \\rs ->\n\
           mapM2 (\\r -> case r of { OK v -> putInt v >> putChar ' ';\n\
           Bad e -> putChar '!' }) rs"
        in
        let plain = Machine_io.run (parse src) in
        let with_gc = Machine_io.run ~gc_every:3 (parse src) in
        Alcotest.(check string)
          "same output" plain.Machine_io.output with_gc.Machine_io.output;
        Alcotest.(check bool)
          "collections ran" true
          (with_gc.Machine_io.stats.Stats.collections > 0));
    tc "repeated collection is idempotent on live size" (fun () ->
        let m = M.create () in
        let a = M.alloc m (parse "take 5 (iterate (\\x -> x + 1) 0)") in
        (match M.force m a with Ok _ -> () | Error _ -> Alcotest.fail "f");
        match M.gc m ~roots:[ a ] with
        | [ a1 ] -> (
            let s1 = M.heap_size m in
            match M.gc m ~roots:[ a1 ] with
            | [ a2 ] ->
                let s2 = M.heap_size m in
                Alcotest.(check int) "stable" s1 s2;
                Alcotest.check deep "value" (dints [ 0; 1; 2; 3; 4 ])
                  (M.deep m a2)
            | _ -> Alcotest.fail "roots2")
        | _ -> Alcotest.fail "roots1");
    tc "heap-overflow latch re-arms across two recovery cycles" (fun () ->
        (* Regression for the [heap_check_armed] latch: HeapOverflow is
           raised once per exhaustion (the latch disarms so unwinding
           itself can allocate), and a collection must re-arm it so a
           *second* exhaustion raises again instead of growing without
           bound — two full overflow -> recover -> overflow cycles. *)
        let config = { M.default_config with heap_limit = Some 800 } in
        let m = M.create ~config () in
        let overflow_once tag =
          let a = M.alloc m (parse "sum (enumFromTo 1 2000)") in
          match M.force_catch m a with
          | Error (M.Fail_exn E.Heap_overflow) -> ()
          | Ok _ -> Alcotest.failf "%s: expected overflow, got a value" tag
          | Error f -> Alcotest.failf "%s: unexpected %a" tag M.pp_failure f
        in
        overflow_once "first cycle";
        (* Recover: drop everything and collect, which re-arms the
           latch alongside freeing the heap. *)
        (match M.gc m ~roots:[] with
        | [] -> ()
        | _ -> Alcotest.fail "no roots requested");
        Alcotest.(check bool) "heap freed" true (M.heap_size m < 100);
        (* A small allocation must now succeed... *)
        (match M.force m (M.alloc m (parse "1 + 2")) with
        | Ok (M.MInt 3) -> ()
        | _ -> Alcotest.fail "small alloc after recovery");
        (* ...and a second exhaustion must raise again, proving the
           latch re-armed rather than staying disarmed after cycle one. *)
        overflow_once "second cycle";
        Alcotest.(check int) "two overflows counted" 2
          (M.stats m).Stats.heap_overflows);
  ]
