open Imprecise
open Helpers
module E = Exn
module M = Machine
module MR = Machine_ref
module B = Bytecode

(* Differential suite for the flat bytecode backend: compiled dispatch
   with superinstructions and inline caches must be observationally
   identical to the slot machine (both are deterministic left-to-right
   call-by-need evaluators of the same resolved IR) and must still
   refine the denotational semantics. The satellite checks ride along:
   the new [Stats] counters are zero on every non-bytecode machine, the
   heap latch recovers in-request, and interrupt/resume works
   mid-dispatch. *)

let config = { M.default_config with M.fuel = 2_000_000 }
let denot_config = Denot.with_fuel 20_000

let bc_machine e =
  let m = B.create ~config (B.compile_expr e) in
  (m, B.entry m)

let bc_deep e =
  let m, a = bc_machine e in
  (B.deep ~depth:24 m a, B.stats m)

let slot_deep e = M.run_deep ~config ~depth:24 e
let denot_deep e = Denot.run_deep ~config:denot_config ~depth:24 e

let rec mentions_all = function
  | Value.DBad s -> Exn_set.is_all s
  | Value.DCon (_, ds) -> List.exists mentions_all ds
  | Value.DInt _ | Value.DChar _ | Value.DString _ | Value.DFun | Value.DCut
    ->
      false

(* The exception machinery must fire identically: same catch marks, same
   thunks poisoned while unwinding, same async deliveries. (Dispatch
   counts differ by design — superinstructions fuse transitions — so
   step-dependent counters are not compared on arbitrary terms.) *)
let check_stats_parity (stb : Stats.t) (sts : Stats.t) =
  let pair name a b =
    if a <> b then
      QCheck2.Test.fail_reportf "stats parity: %s %d (bytecode) vs %d (slot)"
        name a b
    else true
  in
  pair "catches" stb.Stats.catches sts.Stats.catches
  && pair "thunks_poisoned" stb.Stats.thunks_poisoned
       sts.Stats.thunks_poisoned
  && pair "async_delivered" stb.Stats.async_delivered
       sts.Stats.async_delivered

let machines_agree w =
  let db, stb = bc_deep w in
  let ds, sts = slot_deep w in
  (* The bytecode runtime path must never touch a string-keyed map, and
     every transition must be accounted as a dispatch. *)
  if stb.Stats.env_lookups <> 0 then
    QCheck2.Test.fail_reportf "bytecode machine paid %d env_lookups"
      stb.Stats.env_lookups;
  if stb.Stats.bc_dispatches <> stb.Stats.steps then
    QCheck2.Test.fail_reportf "dispatches %d <> steps %d"
      stb.Stats.bc_dispatches stb.Stats.steps;
  if mentions_all db || mentions_all ds then true
  else if Value.deep_equal db ds then check_stats_parity stb sts
  else
    QCheck2.Test.fail_reportf "bytecode: %a@.slot:     %a" Value.pp_deep db
      Value.pp_deep ds

(* The six PR 4 bug classes, replayed against the new backend: each of
   these programs caught a real divergence between evaluators once, so
   the bytecode machine must reproduce today's agreed-on answer exactly. *)
let pr4_reproducers =
  [
    (* Raise-message skew: a non-exception payload must report the
       denotational semantics' uniform message. *)
    "raise 42";
    (* Exceptional raise payloads must propagate their own exception,
       not be squashed into the outer raise. *)
    "raise (UserError (error \"inner\"))";
    (* Prim type errors must unwind like ordinary raises — visible to
       mapException and to poisoning. *)
    "mapException (\\e -> UserError \"wrapped\") (head 5)";
    (* Nullary constructors compare by name (interning order is not
       lexicographic) — the pretty-printer bug's machine-side twin. *)
    "if False < True then 1 else 2";
    (* case_switch's latent-lambda exceptions: a raising scrutinee under
       an applied case. *)
    "(case 1 / 0 of { x -> \\y -> y + x }) 3";
    (* Case match failure applies the Section 4.3 finding union: the
       scrutinee's exceptions join PatternMatchFail. *)
    "case Just (1 / 0) of { Nothing -> 0 }";
  ]

let interrupted_resume_agree src =
  let expected, _ = M.run_deep (parse src) in
  let m, a = bc_machine (parse src) in
  B.inject_async m ~at_step:50 E.Interrupt;
  (match B.force_catch m a with
  | Error (B.Fail_async E.Interrupt) -> ()
  | Ok _ -> Alcotest.fail "bytecode: expected interruption"
  | Error f -> Alcotest.failf "bytecode: unexpected %a" B.pp_failure f);
  Alcotest.(check bool)
    "bytecode machine paused work" true
    ((B.stats m).Stats.thunks_paused > 0);
  match B.force_catch m a with
  | Ok _ -> Alcotest.check deep "resume = uninterrupted" expected (B.deep m a)
  | Error f -> Alcotest.failf "bytecode: resume failed: %a" B.pp_failure f

let suite =
  [
    qtest ~count:200 "bytecode agrees with the slot machine (int)"
      (Gen.gen_int ())
      (fun e -> machines_agree (Prelude.wrap e));
    qtest ~count:120 "bytecode agrees with the slot machine (list)"
      (Gen.gen_list ())
      (fun e -> machines_agree (Prelude.wrap e));
    qtest ~count:120 "bytecode refines the denotation"
      (Gen.gen_int ())
      (fun e ->
        let w = Prelude.wrap e in
        let d, _ = bc_deep w in
        implements d (denot_deep w));
    qtest ~count:100 "machines report the same caught representative"
      (Gen.gen_int ())
      (fun e ->
        let w = Prelude.wrap e in
        let rb =
          let m, a = bc_machine w in
          B.force_catch m a
        in
        let rs =
          let m = M.create ~config () in
          M.force_catch m (M.alloc m w)
        in
        match (rb, rs) with
        | Error (B.Fail_exn e1), Error (M.Fail_exn e2) -> E.equal e1 e2
        | Error B.Fail_diverged, _ | _, Error M.Fail_diverged -> true
        | Ok _, Ok _ -> true
        | _ -> false);
    tc "PR 4 bug reproducers: bytecode vs slot vs ref vs denot" (fun () ->
        List.iter
          (fun src ->
            let w = parse src in
            let db, _ = bc_deep w in
            let ds, _ = slot_deep w in
            let dr, _ = MR.run_deep ~depth:24 w in
            Alcotest.check deep (src ^ ": bytecode = slot") ds db;
            Alcotest.check deep (src ^ ": bytecode = ref") dr db;
            Alcotest.(check bool)
              (src ^ ": bytecode ⊑ denot")
              true
              (implements db (denot_deep w)))
          pr4_reproducers);
    tc "stats: non-bytecode machines report zero bytecode counters"
      (fun () ->
        (* Satellite parity: [bc_dispatches]/[ic_hits]/[ic_misses] are
           the bytecode backend's own; every other machine must leave
           them at exactly zero, while the bytecode machine accounts
           every transition as a dispatch. *)
        let src = "sum (map (\\x -> x * x) (enumFromTo 1 50))" in
        let _, sts = slot_deep (parse src) in
        let _, str = MR.run_deep ~depth:24 (parse src) in
        Alcotest.(check int) "slot dispatches" 0 sts.Stats.bc_dispatches;
        Alcotest.(check int) "slot ic hits" 0 sts.Stats.ic_hits;
        Alcotest.(check int) "slot ic misses" 0 sts.Stats.ic_misses;
        Alcotest.(check int) "ref dispatches" 0 str.Stats.bc_dispatches;
        Alcotest.(check int) "ref ic hits" 0 str.Stats.ic_hits;
        Alcotest.(check int) "ref ic misses" 0 str.Stats.ic_misses;
        let _, stb = bc_deep (parse src) in
        Alcotest.(check bool) "bytecode dispatched" true
          (stb.Stats.bc_dispatches > 0);
        Alcotest.(check int) "dispatches = steps" stb.Stats.steps
          stb.Stats.bc_dispatches;
        Alcotest.(check bool) "inline caches hit" true
          (stb.Stats.ic_hits > stb.Stats.ic_misses));
    tc "heap latch: catchable overflow, in-request recovery" (fun () ->
        (* The latch fires once, the raise is caught in-program by
           unsafeGetException, and the handler arm keeps allocating —
           mirroring the serve daemon's quota-recovery bar. *)
        let cfg = { config with M.heap_limit = Some 2_000 } in
        let src =
          "case unsafeGetException (length (replicate 100000 1)) of { OK n \
           -> 0 - 1; Bad e -> 40 + 2 }"
        in
        let m = B.create ~config:cfg (B.compile_expr (parse src)) in
        let a = B.entry m in
        (match B.force_catch m a with
        | Ok (B.MInt 42) -> ()
        | Ok _ -> Alcotest.fail "expected 42"
        | Error f -> Alcotest.failf "unexpected %a" B.pp_failure f);
        Alcotest.(check bool) "latch fired once" true
          ((B.stats m).Stats.heap_overflows = 1);
        (* After collection brings the heap back under the limit, the
           latch is re-armed and fires again on the next bomb. *)
        let roots = B.gc m ~roots:[] in
        Alcotest.(check (list int)) "no roots survive" [] roots;
        let b = B.entry m in
        (match B.force_catch m b with
        | Ok (B.MInt 42) -> ()
        | Ok _ -> Alcotest.fail "expected 42 after gc"
        | Error f -> Alcotest.failf "after gc: %a" B.pp_failure f);
        Alcotest.(check int) "latch re-armed and fired again" 2
          (B.stats m).Stats.heap_overflows);
    tc "stack latch agrees with the slot machine" (fun () ->
        let cfg = { config with M.stack_limit = Some 400 } in
        let src = "sum (enumFromTo 1 20000)" in
        let rb =
          let m = B.create ~config:cfg (B.compile_expr (parse src)) in
          B.force_catch m (B.entry m)
        in
        let rs =
          let m = M.create ~config:cfg () in
          M.force_catch m (M.alloc m (parse src))
        in
        match (rb, rs) with
        | Error (B.Fail_exn e1), Error (M.Fail_exn e2) ->
            Alcotest.(check bool)
              (Fmt.str "both overflow: %a vs %a" E.pp e1 E.pp e2)
              true
              (E.equal e1 e2 && E.equal e1 E.Stack_overflow_exn)
        | _ -> Alcotest.fail "expected StackOverflow from both machines");
    tc "async interruption and resume mid-dispatch" (fun () ->
        interrupted_resume_agree "product (enumFromTo 1 10)");
    tc "async interruption under a deeper pipeline" (fun () ->
        interrupted_resume_agree
          "sum (map (\\x -> x * x) (enumFromTo 1 40))");
    tc "pause cells survive a collection" (fun () ->
        let m, a = bc_machine (parse "sum (enumFromTo 1 3000)") in
        B.inject_async m ~at_step:2_000 E.Interrupt;
        (match B.force_catch m a with
        | Error (B.Fail_async E.Interrupt) -> ()
        | r ->
            Alcotest.failf "expected interruption, got %a"
              Fmt.(result ~ok:nop ~error:B.pp_failure)
              (Result.map ignore r));
        let before = B.heap_size m in
        (match B.gc m ~roots:[ a ] with
        | [ a' ] ->
            Alcotest.(check bool) "collection shrank the heap" true
              (B.heap_size m <= before);
            (match B.force_catch m a' with
            | Ok _ ->
                Alcotest.check deep "resumed across gc"
                  (Value.DInt 4_501_500) (B.deep m a')
            | Error f -> Alcotest.failf "resume failed: %a" B.pp_failure f)
        | _ -> Alcotest.fail "root count");
        ());
    tc "exception-path stats match across machines" (fun () ->
        (* Curated exception paths with identical stack shapes: the
           unwinding machinery must do exactly the same amount of work
           on both backends — frames trimmed, thunks poisoned, catch
           marks consulted, async events delivered. *)
        List.iter
          (fun (src, async) ->
            let run_bc () =
              let m, a = bc_machine (parse src) in
              Option.iter
                (fun (k, x) -> B.inject_async m ~at_step:k x)
                async;
              ignore (B.force_catch m a);
              B.stats m
            in
            let run_slot () =
              let m = M.create ~config () in
              Option.iter
                (fun (k, x) -> M.inject_async m ~at_step:k x)
                async;
              ignore (M.force_catch m (M.alloc m (parse src)));
              M.stats m
            in
            let stb = run_bc () and sts = run_slot () in
            let check name a b =
              Alcotest.(check int) (Printf.sprintf "%s: %s" src name) b a
            in
            check "catches" stb.Stats.catches sts.Stats.catches;
            check "thunks_poisoned" stb.Stats.thunks_poisoned
              sts.Stats.thunks_poisoned;
            check "async_delivered" stb.Stats.async_delivered
              sts.Stats.async_delivered)
          [
            ("1/0", None);
            ("head []", None);
            ("sum [1, 2, 1/0, 4]", None);
            ("let rec go n = if n == 0 then error \"deep\" \
              else 1 + go (n - 1) in go 500", None);
            ("sum (enumFromTo 1 3000)", Some (2_000, E.Timeout));
          ]);
    tc "inline caches: monomorphic sites hit after the first miss"
      (fun () ->
        let _, st = bc_deep (parse "sum (enumFromTo 1 500)") in
        Alcotest.(check bool)
          (Printf.sprintf "hits %d > 10 * misses %d" st.Stats.ic_hits
             st.Stats.ic_misses)
          true
          (st.Stats.ic_hits > 10 * st.Stats.ic_misses));
    tc "compile once, run on many machines (shared program + caches)"
      (fun () ->
        (* The program (with its inline caches) is shared: a second
           machine starts with warm caches and must answer the same. *)
        let prog = B.compile_expr (parse "sum (enumFromTo 1 200)") in
        let run () =
          let m = B.create ~config prog in
          (B.deep m (B.entry m), (B.stats m).Stats.ic_misses)
        in
        let d1, misses1 = run () in
        let d2, misses2 = run () in
        Alcotest.check deep "same answer" d1 d2;
        Alcotest.check deep "right answer" (Value.DInt 20_100) d1;
        Alcotest.(check bool)
          (Printf.sprintf "second run misses %d <= first run misses %d"
             misses2 misses1)
          true (misses2 <= misses1));
  ]
