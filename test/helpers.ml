(* Shared helpers for the test suites. *)
open Imprecise

let parse = Imprecise.parse
let parse_raw = Imprecise.parse_raw

(* Alcotest testables *)

let deep : Value.deep Alcotest.testable =
  Alcotest.testable Value.pp_deep Value.deep_equal

let expr : Syntax.expr Alcotest.testable =
  Alcotest.testable Pretty.pp_expr Syntax.equal

let expr_alpha : Syntax.expr Alcotest.testable =
  Alcotest.testable Pretty.pp_expr Subst.alpha_equal

let exn_set : Exn_set.t Alcotest.testable =
  Alcotest.testable Exn_set.pp Exn_set.equal

let fixed_outcome : Fixed.outcome Alcotest.testable =
  Alcotest.testable Fixed.pp_outcome Fixed.outcome_equal

let verdict : Refine.verdict Alcotest.testable =
  Alcotest.testable Refine.pp_verdict Refine.verdict_equal

let status : Rules.status Alcotest.testable =
  Alcotest.testable Rules.pp_status Rules.status_equal

(* Deep-evaluation shorthands *)

let ev ?config ?depth src = Denot.run_deep ?config ?depth (parse src)
let ev_expr ?config ?depth e = Denot.run_deep ?config ?depth e

let dint n = Value.DInt n
let dbad es = Value.DBad (Exn_set.of_list es)
let dbad_all = Value.DBad Exn_set.All
let dtrue = Value.DCon ("True", [])
let dfalse = Value.DCon ("False", [])

let rec dlist = function
  | [] -> Value.DCon ("Nil", [])
  | d :: rest -> Value.DCon ("Cons", [ d; dlist rest ])

let dints ns = dlist (List.map dint ns)

let check_ev ?config msg expected src =
  Alcotest.check deep msg expected (ev ?config src)

let tc name f = Alcotest.test_case name `Quick f

(* QCheck integration *)

let qtest_gen ?(count = 200) ?print name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~name ~count ?print gen prop)

let qtest ?count name gen prop =
  qtest_gen ?count ~print:Gen.print_expr name gen prop

let print_expr_pair = QCheck2.Print.pair Gen.print_expr Gen.print_expr

(* The "implements" relation between a machine/fixed result and the
   imprecise denotation (C13) — promoted to the library proper so tests
   and the fuzzer share one checker. *)
let implements = Refine.implements_deep
