open Imprecise
open Helpers
module E = Exn

(* The concurrency extension of Section 4.4's closing remark: forkIO and
   MVars over the same denotational values as Iosem. *)

let run ?config ?input src = Conc.run ?config ?input (parse src)

let check_done msg expected (r : Conc.result) =
  match r.Conc.outcome with
  | Conc.Done d -> Alcotest.check deep msg expected d
  | o -> Alcotest.failf "%s: unexpected %a" msg Conc.pp_outcome o

let suite =
  [
    tc "single-threaded programs behave as in Iosem" (fun () ->
        check_done "ret" (dint 8) (run "return 3 >>= \\x -> return (x + 5)");
        let r = run ~input:"z" "getChar >>= \\c -> putChar c" in
        Alcotest.(check string) "echo" "z" (Conc.output_string_of r));
    tc "forkIO returns unit to the parent" (fun () ->
        check_done "fork" (dint 5) (run "forkIO (return 1) >> return 5"));
    tc "writers interleave round-robin" (fun () ->
        let r =
          run
            "forkIO (putChar 'a' >> putChar 'b' >> putChar 'c') >>\n\
             putChar 'x' >> putChar 'y' >> putChar 'z' >> return 0"
        in
        Alcotest.(check string) "interleaved" "xaybzc"
          (Conc.output_string_of r);
        Alcotest.(check int) "threads" 2 r.Conc.threads_spawned);
    tc "MVar rendezvous" (fun () ->
        check_done "mv" (dint 42)
          (run
             "newEmptyMVar >>= \\mv -> forkIO (putMVar mv 42) >>\n\
              takeMVar mv >>= \\v -> return v"));
    tc "ping-pong through two MVars" (fun () ->
        check_done "pp" (dint 42)
          (run
             "newEmptyMVar >>= \\a -> newEmptyMVar >>= \\b ->\n\
              forkIO (takeMVar a >>= \\x -> putMVar b (x + 1)) >>\n\
              putMVar a 41 >> takeMVar b >>= \\r -> return r"));
    tc "takeMVar blocks until a put" (fun () ->
        (* Child delays its put behind some busywork; main still gets it. *)
        check_done "delayed" (dint 7)
          (run
             "newEmptyMVar >>= \\mv ->\n\
              forkIO (putInt (sum (enumFromTo 1 50)) >> putMVar mv 7) >>\n\
              takeMVar mv >>= \\v -> return v"));
    tc "putMVar blocks while full" (fun () ->
        (* The second put waits until main takes; order of takes proves
           the first put went through first. *)
        check_done "full" (Value.DCon ("Pair", [ dint 1; dint 2 ]))
          (run
             "newEmptyMVar >>= \\mv ->\n\
              forkIO (putMVar mv 1 >> putMVar mv 2) >>\n\
              takeMVar mv >>= \\x -> takeMVar mv >>= \\y ->\n\
              return (x, y)"));
    tc "an irrecoverably blocked thread dies of BlockedIndefinitely" (fun () ->
        (* Previously a global Deadlock; now the blocked thread receives
           the catchable BlockedIndefinitely, uncaught here. *)
        match (run "newEmptyMVar >>= \\mv -> takeMVar mv").Conc.outcome with
        | Conc.Uncaught E.Blocked_indefinitely -> ()
        | o -> Alcotest.failf "unexpected %a" Conc.pp_outcome o);
    tc "two takers: the starved second take gets BlockedIndefinitely"
      (fun () ->
        match
          (run
             "newEmptyMVar >>= \\mv -> putMVar mv 1 >>\n\
              takeMVar mv >>= \\a -> takeMVar mv")
            .Conc.outcome
        with
        | Conc.Uncaught E.Blocked_indefinitely -> ()
        | o -> Alcotest.failf "unexpected %a" Conc.pp_outcome o);
    tc "BlockedIndefinitely is caught at getException; fallback completes"
      (fun () ->
        let src =
          "newEmptyMVar >>= \\mv -> getException (takeMVar mv) >>= \\r ->\n\
           case r of { OK x -> return 0 ; Bad e ->\n\
           (if eqExn e BlockedIndefinitely then putChar 'f' else putChar \
           '?') >>= \\u -> return 7 }"
        in
        let r = run src in
        check_done "fallback ran" (dint 7) r;
        Alcotest.(check string) "marker" "f" (Conc.output_string_of r);
        Alcotest.(check int)
          "recovery counted" 1 r.Conc.counters.Io.blocked_recoveries;
        let m = Machine_conc.run (parse src) in
        (match m.Machine_conc.outcome with
        | Machine_conc.Done d -> Alcotest.check deep "machine" (dint 7) d
        | o -> Alcotest.failf "unexpected %a" Machine_conc.pp_outcome o);
        Alcotest.(check string) "machine marker" "f" m.Machine_conc.output);
    tc "Deadlock survives only when every blocked thread is masked"
      (fun () ->
        (* A masked blocked thread defers BlockedIndefinitely forever, so
           the old global outcome is still reachable. *)
        let src = "newEmptyMVar >>= \\mv -> mask (takeMVar mv)" in
        (match (run src).Conc.outcome with
        | Conc.Deadlock -> ()
        | o -> Alcotest.failf "unexpected %a" Conc.pp_outcome o);
        match (Machine_conc.run (parse src)).Machine_conc.outcome with
        | Machine_conc.Deadlock -> ()
        | o -> Alcotest.failf "unexpected %a" Machine_conc.pp_outcome o);
    tc "a child's uncaught exception kills only that thread" (fun () ->
        let r = run "forkIO (putInt (1/0)) >> putChar 'k' >> return 5" in
        check_done "main survives" (dint 5) r;
        Alcotest.(check string) "output" "k" (Conc.output_string_of r);
        Alcotest.(check bool)
          "death recorded" true
          (List.exists
             (function Conc.E_thread_died (1, _) -> true | _ -> false)
             r.Conc.trace));
    tc "the main thread's uncaught exception ends the program" (fun () ->
        match (run "putChar (head []) >> return 1").Conc.outcome with
        | Conc.Uncaught (E.Pattern_match_fail "head") -> ()
        | o -> Alcotest.failf "unexpected %a" Conc.pp_outcome o);
    tc "getException works per-thread" (fun () ->
        check_done "catch" (dint 99)
          (run
             "newEmptyMVar >>= \\mv ->\n\
              forkIO (getException (1/0) >>= \\r ->\n\
              case r of { OK v -> putMVar mv v; Bad e -> putMVar mv 99 }) >>\n\
              takeMVar mv >>= \\v -> return v"));
    tc "worker pool sums through an MVar" (fun () ->
        (* Three workers deposit partial sums; main collects. *)
        check_done "pool" (dint 600)
          (run
             "newEmptyMVar >>= \\mv ->\n\
              forkIO (putMVar mv 100) >>\n\
              forkIO (putMVar mv 200) >>\n\
              forkIO (putMVar mv 300) >>\n\
              takeMVar mv >>= \\a -> takeMVar mv >>= \\b ->\n\
              takeMVar mv >>= \\c -> return (a + b + c)"));
    tc "fork inherits lazy shared structure" (fun () ->
        (* The shared thunk is forced once; both threads see the value. *)
        check_done "shared" (Value.DCon ("Pair", [ dint 5050; dint 5050 ]))
          (run
             "let s = sum (enumFromTo 1 100) in\n\
              newEmptyMVar >>= \\mv ->\n\
              forkIO (putMVar mv s) >>\n\
              takeMVar mv >>= \\a -> return (a, s)"));
    tc "scheduler budget reports divergence" (fun () ->
        match
          (Conc.run ~max_steps:100
             (parse "let rec spin = return 1 >>= \\x -> spin in spin"))
            .Conc.outcome
        with
        | Conc.Diverged -> ()
        | o -> Alcotest.failf "unexpected %a" Conc.pp_outcome o);
    tc "MVar operations are typed (MVar a)" (fun () ->
        (match Infer.check_string "\\mv -> takeMVar mv" with
        | Ok t ->
            Alcotest.(check string) "take" "MVar 'a -> IO 'a"
              (Infer.ty_to_string t)
        | Error e -> Alcotest.failf "%a" Infer.pp_error e);
        (match Infer.check_string "newEmptyMVar >>= \\mv -> putMVar mv 3" with
        | Ok t ->
            Alcotest.(check string) "put" "IO Unit" (Infer.ty_to_string t)
        | Error e -> Alcotest.failf "%a" Infer.pp_error e);
        match Infer.check_string "putMVar 3 4" with
        | Ok t -> Alcotest.failf "ill-typed accepted: %s" (Infer.ty_to_string t)
        | Error _ -> ());
    (* The machine implementation of the same extension. *)
    tc "machine: MVar rendezvous" (fun () ->
        let r =
          Machine_conc.run
            (parse
               "newEmptyMVar >>= \\mv -> forkIO (putMVar mv 42) >>\n\
                takeMVar mv >>= \\v -> return v")
        in
        match r.Machine_conc.outcome with
        | Machine_conc.Done d -> Alcotest.check deep "42" (dint 42) d
        | o -> Alcotest.failf "unexpected %a" Machine_conc.pp_outcome o);
    tc "machine: thunks are shared across threads" (fun () ->
        (* The shared sum is computed once: with sharing, total steps stay
           well below two full evaluations. *)
        let r =
          Machine_conc.run
            (parse
               "let s = sum (enumFromTo 1 500) in\n\
                newEmptyMVar >>= \\mv -> forkIO (putMVar mv s) >>\n\
                takeMVar mv >>= \\a -> return (a + s)")
        in
        (match r.Machine_conc.outcome with
        | Machine_conc.Done d -> Alcotest.check deep "sum" (dint 250500) d
        | o -> Alcotest.failf "unexpected %a" Machine_conc.pp_outcome o);
        let single, single_stats =
          Machine.run_deep (parse "sum (enumFromTo 1 500)")
        in
        Alcotest.check deep "single" (dint 125250) single;
        Alcotest.(check bool)
          "shared work" true
          (r.Machine_conc.stats.Stats.steps
          < 2 * single_stats.Stats.steps));
    tc "semantic and machine concurrency agree on a battery" (fun () ->
        let battery =
          [
            "return (1 + 1)";
            "forkIO (return 1) >> return 5";
            "newEmptyMVar >>= \\mv -> forkIO (putMVar mv 7) >>\n\
             takeMVar mv >>= \\v -> return v";
            "newEmptyMVar >>= \\mv -> takeMVar mv";
            "forkIO (putChar 'a' >> putChar 'b') >>\n\
             putChar 'x' >> putChar 'y' >> return 0";
            "newEmptyMVar >>= \\a -> newEmptyMVar >>= \\b ->\n\
             forkIO (takeMVar a >>= \\x -> putMVar b (x * 2)) >>\n\
             putMVar a 21 >> takeMVar b >>= \\r -> return r";
            (* A self-throw is synchronous in both layers. *)
            "getException (myThreadId >>= \\t -> throwTo t (UserError \
             \"boom\") >>= \\u -> return 1) >>= \\r ->\n\
             case r of { OK x -> return x ; Bad e -> return 77 }";
            (* Blocked-forever recovers identically in both layers. *)
            "newEmptyMVar >>= \\mv -> getException (takeMVar mv) >>= \\r \
             ->\n\
             case r of { OK x -> return x ; Bad e -> return 5 }";
          ]
        in
        List.iter
          (fun src ->
            let sem = Conc.run (parse src) in
            let mach = Machine_conc.run (parse src) in
            let agree =
              match (sem.Conc.outcome, mach.Machine_conc.outcome) with
              | Conc.Done d1, Machine_conc.Done d2 -> Value.deep_equal d1 d2
              | Conc.Deadlock, Machine_conc.Deadlock -> true
              | Conc.Uncaught e1, Machine_conc.Uncaught e2 -> Exn.equal e1 e2
              | Conc.Diverged, Machine_conc.Diverged -> true
              | _ -> false
            in
            Alcotest.(check bool)
              (Printf.sprintf "outcome of %s" src)
              true agree;
            Alcotest.(check string)
              (Printf.sprintf "output of %s" src)
              (Conc.output_string_of sem)
              mach.Machine_conc.output)
          battery);
    tc "a bottom transition does not starve later transitions" (fun () ->
        (* putInt (1/0) explores reverse of an undefined list: its
           denotation is bottom and burns a full tank; the refill keeps
           the rest of the program healthy. *)
        let r =
          Conc.run
            ~config:(Denot.with_fuel 20_000)
            (parse
               "forkIO (putInt (1/0)) >>\n\
                putInt (sum (enumFromTo 1 100)) >> return 1")
        in
        check_done "healthy" (dint 1) r;
        Alcotest.(check string) "output" "5050" (Conc.output_string_of r));
    tc "a forked thread's bracket releases before the join" (fun () ->
        let r =
          run
            "newEmptyMVar >>= \\mv -> forkIO (bracket (putChar 'A' >>= \\u \
             -> return 1) (\\r -> putChar 'R') (\\r -> putChar 'B' >>= \\u \
             -> return 2) >>= \\x -> putMVar mv x) >>= \\u -> takeMVar mv \
             >>= \\y -> putChar 'J' >>= \\u2 -> return y"
        in
        check_done "joined with the use result" (dint 2) r;
        let out = Conc.output_string_of r in
        Alcotest.(check bool)
          "release before join" true
          (String.index out 'R' < String.index out 'J');
        Alcotest.(check int) "entered" 1 r.Conc.counters.Io.brackets_entered;
        Alcotest.(check int) "released" 1
          r.Conc.counters.Io.brackets_released);
    tc "retry backoff sleeps without deadlocking the scheduler" (fun () ->
        (* The only thread sleeps between attempts: the scheduler must
           fast-forward the clock, not report deadlock. *)
        let r = run "retryWithBackoff 2 10 (seq (head []) (return 0))" in
        match r.Conc.outcome with
        | Conc.Uncaught (E.Pattern_match_fail _) -> ()
        | o -> Alcotest.failf "unexpected %a" Conc.pp_outcome o);
    tc "per-thread masks are independent" (fun () ->
        (* The child masks; the parent stays interruptible, so the
           injected event lands on the parent's getException while the
           child completes untouched. *)
        let r =
          Conc.run
            ~async:[ (0, E.Interrupt) ]
            (parse
               "forkIO (mask (getException 1 >>= \\a -> putChar 'M' >>= \
                \\u -> return 0)) >>= \\u -> getException 2 >>= \\b -> \
                case b of { Bad e -> putChar '!' >>= \\u2 -> return 1 ; OK \
                x -> putChar '.' >>= \\u2 -> return 2 }"
        )
        in
        check_done "parent took the event" (dint 1) r;
        let out = Conc.output_string_of r in
        Alcotest.(check bool) "child finished" true (String.contains out 'M');
        Alcotest.(check bool) "parent interrupted" true
          (String.contains out '!'));
    tc "a seeded oracle replays the same schedule" (fun () ->
        (* The oracle owns every nondeterministic choice, so two runs
           with the same seed must agree on outcome, output and thread
           accounting — the property the fuzzer's replay depends on. *)
        let racy =
          parse
            "newEmptyMVar >>= \\mv ->\n\
             forkIO (putChar 'a' >>= \\u -> putMVar mv (1/0)) >>= \\u ->\n\
             forkIO (putChar 'b' >>= \\u -> putMVar mv 2) >>= \\u ->\n\
             takeMVar mv >>= \\x -> getException x >>= \\r ->\n\
             case r of { Bad e -> return 0 ; OK v -> return v }"
        in
        let go seed = Conc.run ~oracle:(Oracle.create ~seed) racy in
        List.iter
          (fun seed ->
            let r1 = go seed and r2 = go seed in
            let ok =
              match (r1.Conc.outcome, r2.Conc.outcome) with
              | Conc.Done d1, Conc.Done d2 -> Value.deep_equal d1 d2
              | o1, o2 -> o1 = o2
            in
            Alcotest.(check bool)
              (Printf.sprintf "outcome deterministic (seed %d)" seed)
              true ok;
            Alcotest.(check string)
              (Printf.sprintf "output deterministic (seed %d)" seed)
              (Conc.output_string_of r1)
              (Conc.output_string_of r2);
            Alcotest.(check int)
              (Printf.sprintf "threads deterministic (seed %d)" seed)
              r1.Conc.threads_spawned r2.Conc.threads_spawned)
          [ 1; 7; 42; 1999 ]);
    tc "killThread on yourself is ThreadKilled, even under mask" (fun () ->
        (* Section 5.1-style asynchronous exceptions, self-directed: a
           self-throw is synchronous and ignores the mask depth. *)
        let plain =
          "getException (myThreadId >>= \\t -> killThread t >>= \\u -> \
           return 1) >>= \\r -> case r of { OK x -> return 0 ; Bad e -> (if \
           eqExn e ThreadKilled then return 7 else return 8) }"
        in
        let masked =
          "mask (getException (myThreadId >>= \\t -> killThread t >>= \\u \
           -> return 1)) >>= \\r -> case r of { OK x -> return 0 ; Bad e \
           -> return 3 }"
        in
        check_done "caught as ThreadKilled" (dint 7) (run plain);
        check_done "mask does not defer a self-throw" (dint 3) (run masked);
        List.iter
          (fun (src, expect) ->
            match (Machine_conc.run (parse src)).Machine_conc.outcome with
            | Machine_conc.Done d -> Alcotest.check deep "machine" expect d
            | o -> Alcotest.failf "unexpected %a" Machine_conc.pp_outcome o)
          [ (plain, dint 7); (masked, dint 3) ]);
    tc "throwTo to a finished thread is a no-op" (fun () ->
        (* The child hands its ThreadId over an MVar and exits; by the
           time the parent throws, the target is dead — like GHC, the
           send just evaporates. *)
        let src =
          "newEmptyMVar >>= \\mv ->\n\
           forkIO (myThreadId >>= \\t -> putMVar mv t) >>= \\u ->\n\
           takeMVar mv >>= \\t ->\n\
           putInt (sum (enumFromTo 1 100)) >>= \\u2 ->\n\
           killThread t >>= \\u3 -> putChar 'd' >>= \\u4 -> return 9"
        in
        let r = run src in
        check_done "parent unaffected" (dint 9) r;
        Alcotest.(check string) "output" "5050d" (Conc.output_string_of r);
        let m = Machine_conc.run (parse src) in
        (match m.Machine_conc.outcome with
        | Machine_conc.Done d -> Alcotest.check deep "machine" (dint 9) d
        | o -> Alcotest.failf "unexpected %a" Machine_conc.pp_outcome o);
        Alcotest.(check string) "machine output" "5050d" m.Machine_conc.output);
    tc "a forked child inherits the parent's mask depth" (fun () ->
        (* Forked under mask, the child is born protected: a scheduled
           kill stays pending forever and the child's output survives
           complete. The unmasked twin is torn by the same schedule. *)
        let masked =
          "mask (forkIO (putChar 'w' >> putChar 'x' >> putChar 'y' >> \
           putChar 'z')) >>= \\u -> putInt (sum (enumFromTo 1 50)) >>= \
           \\u2 -> return 3"
        in
        let unmasked =
          "forkIO (putChar 'w' >> putChar 'x' >> putChar 'y' >> putChar \
           'z') >>= \\u -> putInt (sum (enumFromTo 1 50)) >>= \\u2 -> \
           return 3"
        in
        (* Clocks count micro-transitions, which differ per layer; a
           spread of thresholds guarantees at least one entry falls due
           while the child is alive (earlier entries aimed at a tid not
           yet spawned are dropped, like a dead throwTo). *)
        let kills =
          [ (2, 1, E.Thread_killed); (4, 1, E.Thread_killed);
            (6, 1, E.Thread_killed) ]
        in
        let rm = Conc.run ~kills (parse masked) in
        check_done "masked child's parent" (dint 3) rm;
        let out = Conc.output_string_of rm in
        List.iter
          (fun c ->
            Alcotest.(check bool)
              (Printf.sprintf "masked child wrote %c" c)
              true (String.contains out c))
          [ 'w'; 'x'; 'y'; 'z' ];
        Alcotest.(check int)
          "deferred forever" 0 rm.Conc.counters.Io.throwtos_delivered;
        let ru = Conc.run ~kills (parse unmasked) in
        check_done "unmasked child's parent" (dint 3) ru;
        Alcotest.(check int)
          "kill delivered" 1 ru.Conc.counters.Io.throwtos_delivered;
        Alcotest.(check bool)
          "child torn" false
          (String.contains (Conc.output_string_of ru) 'z');
        (* Machine layer: same story, transition-counted schedule. *)
        let mm = Machine_conc.run ~kills (parse masked) in
        (match mm.Machine_conc.outcome with
        | Machine_conc.Done d -> Alcotest.check deep "machine masked" (dint 3) d
        | o -> Alcotest.failf "unexpected %a" Machine_conc.pp_outcome o);
        List.iter
          (fun c ->
            Alcotest.(check bool)
              (Printf.sprintf "machine masked child wrote %c" c)
              true
              (String.contains mm.Machine_conc.output c))
          [ 'w'; 'x'; 'y'; 'z' ];
        let mu = Machine_conc.run ~kills (parse unmasked) in
        (match mu.Machine_conc.outcome with
        | Machine_conc.Done d ->
            Alcotest.check deep "machine unmasked" (dint 3) d
        | o -> Alcotest.failf "unexpected %a" Machine_conc.pp_outcome o);
        Alcotest.(check int)
          "machine kill delivered" 1
          mu.Machine_conc.stats.Stats.throwtos_delivered;
        Alcotest.(check bool)
          "machine child torn" false
          (String.contains mu.Machine_conc.output 'z'));
    tc "a killed worker leaves the supervisor a catchable blocked join"
      (fun () ->
        (* The kill schedule murders the worker mid-sum; the join on its
           MVar then blocks forever, BlockedIndefinitely lands at the
           supervisor's getException, and the fallback completes. *)
        let src =
          "newEmptyMVar >>= \\mv ->\n\
           forkIO (putInt (sum (enumFromTo 1 200)) >>= \\u -> putMVar mv \
           1) >>= \\u ->\n\
           getException (takeMVar mv) >>= \\r ->\n\
           case r of { OK x -> return x ; Bad e -> putChar 'F' >>= \\u2 -> \
           return 42 }"
        in
        let kills =
          [ (3, 1, E.Thread_killed); (5, 1, E.Thread_killed);
            (7, 1, E.Thread_killed) ]
        in
        let r = Conc.run ~kills (parse src) in
        check_done "fallback value" (dint 42) r;
        Alcotest.(check bool)
          "fallback marker" true
          (String.contains (Conc.output_string_of r) 'F');
        Alcotest.(check int)
          "kill delivered" 1 r.Conc.counters.Io.throwtos_delivered;
        Alcotest.(check int)
          "blocked join recovered" 1 r.Conc.counters.Io.blocked_recoveries;
        let m = Machine_conc.run ~kills (parse src) in
        (match m.Machine_conc.outcome with
        | Machine_conc.Done d -> Alcotest.check deep "machine" (dint 42) d
        | o -> Alcotest.failf "unexpected %a" Machine_conc.pp_outcome o);
        Alcotest.(check int)
          "machine kill delivered" 1
          m.Machine_conc.stats.Stats.throwtos_delivered;
        Alcotest.(check int)
          "machine blocked join recovered" 1
          m.Machine_conc.stats.Stats.blocked_recoveries);
    tc "failing outcomes keep the output accumulated so far" (fun () ->
        (* Uncaught and Deadlock results still carry the partial output
           and stats — a crashed program's trail is not discarded. *)
        let uncaught =
          "putChar 'a' >>= \\u -> putChar 'b' >>= \\u2 -> putChar (head [])"
        in
        let r = run uncaught in
        (match r.Conc.outcome with
        | Conc.Uncaught (E.Pattern_match_fail "head") -> ()
        | o -> Alcotest.failf "unexpected %a" Conc.pp_outcome o);
        Alcotest.(check string) "partial output" "ab"
          (Conc.output_string_of r);
        let m = Machine_conc.run (parse uncaught) in
        (match m.Machine_conc.outcome with
        | Machine_conc.Uncaught (E.Pattern_match_fail "head") -> ()
        | o -> Alcotest.failf "unexpected %a" Machine_conc.pp_outcome o);
        Alcotest.(check string) "machine partial output" "ab"
          m.Machine_conc.output;
        Alcotest.(check bool)
          "stats survive the crash" true
          (m.Machine_conc.stats.Stats.steps > 0);
        let stuck =
          "putChar 'a' >>= \\u -> newEmptyMVar >>= \\mv -> mask (takeMVar \
           mv)"
        in
        let rd = run stuck in
        (match rd.Conc.outcome with
        | Conc.Deadlock -> ()
        | o -> Alcotest.failf "unexpected %a" Conc.pp_outcome o);
        Alcotest.(check string) "deadlock keeps output" "a"
          (Conc.output_string_of rd);
        let md = Machine_conc.run (parse stuck) in
        (match md.Machine_conc.outcome with
        | Machine_conc.Deadlock -> ()
        | o -> Alcotest.failf "unexpected %a" Machine_conc.pp_outcome o);
        Alcotest.(check string) "machine deadlock keeps output" "a"
          md.Machine_conc.output);
  ]
