(* The cross-layer fault-injection harness: seeded schedules of async
   events, resource limits, starved fuel and truncated input, run over
   every IO layer, must never violate the exception-safety invariants. *)
open Imprecise
open Helpers

let show_violations vs =
  String.concat "\n" (List.filteri (fun i _ -> i < 8) vs)

let suite =
  [
    tc "template library covers all layers" (fun () ->
        Alcotest.(check bool)
          "has concurrent-only template" true
          (List.exists (fun t -> t.Faultinject.conc_only)
             Faultinject.templates);
        Alcotest.(check bool)
          "has at least a dozen templates" true
          (List.length Faultinject.templates >= 12));
    tc "zero-fault baselines agree across layers" (fun () ->
        List.iter
          (fun t ->
            let _, vs = Faultinject.baseline t in
            Alcotest.(check (list string))
              ("baseline " ^ t.Faultinject.name)
              [] vs)
          Faultinject.templates);
    tc "supervisor recovers from HeapOverflow" (fun () ->
        let _, vs = Faultinject.check_supervisor () in
        Alcotest.(check (list string)) "supervisor" [] vs);
    tc "250 seeded fault schedules, no violations" (fun () ->
        let r = Faultinject.run_suite ~count:250 () in
        if r.Faultinject.violations <> [] then
          Alcotest.failf "%a:@.%s" Faultinject.pp_report r
            (show_violations r.Faultinject.violations);
        Alcotest.(check bool)
          "ran at least 200 schedules plus baselines" true
          (r.Faultinject.runs >= 200);
        Alcotest.(check bool) "checks counted" true (r.Faultinject.checks > 0));
    tc "100 seeded kill schedules respect the invariants" (fun () ->
        (* The throwTo/killThread fault axis specifically: generate
           schedules until 100 of them carry thread-targeted kills, and
           check every applicable concurrent layer. *)
        let conc_templates =
          List.filter (fun t -> t.Faultinject.conc_only) Faultinject.templates
        in
        Alcotest.(check bool)
          "concurrent templates exist" true
          (conc_templates <> []);
        let scheduled = ref 0 and checks = ref 0 and vs = ref [] in
        let seed = ref 0 in
        while !scheduled < 100 && !seed < 10_000 do
          List.iter
            (fun t ->
              if !scheduled < 100 then
                let f = Faultinject.gen_fault ~seed:!seed t in
                if f.Faultinject.kills <> [] then begin
                  incr scheduled;
                  List.iter
                    (fun layer ->
                      let n, v = Faultinject.check_one t f layer in
                      checks := !checks + n;
                      vs := v @ !vs)
                    (Faultinject.layers_for t)
                end)
            conc_templates;
          incr seed
        done;
        Alcotest.(check int) "kill schedules executed" 100 !scheduled;
        if !vs <> [] then
          Alcotest.failf "%d violations:@.%s" (List.length !vs)
            (show_violations !vs);
        Alcotest.(check bool) "checks counted" true (!checks > 0));
  ]
