let () =
  Alcotest.run "imprecise"
    [
      ("lexer", Test_lexer.suite);
      ("parser", Test_parser.suite);
      ("pretty", Test_pretty.suite);
      ("subst", Test_subst.suite);
      ("exn_set", Test_exn_set.suite);
      ("types", Test_types.suite);
      ("lang_misc", Test_lang_misc.suite);
      ("denot", Test_denot.suite);
      ("fixed", Test_fixed.suite);
      ("exval", Test_exval.suite);
      ("iosem", Test_iosem.suite);
      ("oracle", Test_oracle.suite);
      ("conc", Test_conc.suite);
      ("programs", Test_programs.suite);
      ("machine", Test_machine.suite);
      ("resolve", Test_resolve.suite);
      ("bytecode", Test_bytecode.suite);
      ("machine_io", Test_machine_io.suite);
      ("gc", Test_gc.suite);
      ("strictness", Test_strictness.suite);
      ("exn_analysis", Test_exn_analysis.suite);
      ("transform", Test_transform.suite);
      ("laws", Test_laws.suite);
      ("ablation", Test_ablation.suite);
      ("prelude", Test_prelude.suite);
      ("props", Test_props.suite);
      ("diff", Test_diff.suite);
      ("faultinject", Test_faultinject.suite);
      ("obs", Test_obs.suite);
      ("fuzz", Test_fuzz.suite);
      ("serve", Test_serve.suite);
      ("reentrancy", Test_reentrancy.suite);
      ("conc_scale", Test_conc_scale.suite);
      ("supervision", Test_supervision.suite);
    ]
