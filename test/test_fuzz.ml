open Imprecise
open Helpers

(* The fuzzing subsystem, turned on itself: a clean mini-campaign must
   pass with near-total event coverage, a deliberately reintroduced
   paper bug must be caught and minimised to a tiny witness, and the
   pieces the campaign relies on (deterministic replay, corpus file
   format, terminating greedy shrink) are checked in isolation. *)

let campaign ?(runs = 120) ?(seed = 7) ?vconfig () =
  let cfg =
    {
      Fuzz.default_config with
      seed;
      runs;
      vconfig = Option.value vconfig ~default:Differ.default_vconfig;
    }
  in
  Fuzz.run cfg

let suite =
  [
    tc "clean mini-campaign passes with full event coverage" (fun () ->
        let r = campaign () in
        List.iter
          (fun (c : Fuzz.crash) ->
            Alcotest.failf "unexpected crash [%s]: %s" c.Fuzz.check
              c.Fuzz.detail)
          r.Fuzz.crashes;
        Alcotest.(check bool) "campaign passed" true (Fuzz.passed r);
        Alcotest.(check bool)
          (Printf.sprintf "event-kind coverage >90%% (missing: %s)"
             (String.concat ", " (Coverage.missing_kinds r.Fuzz.coverage)))
          true
          (Coverage.kind_coverage r.Fuzz.coverage > 0.9);
        (* Every rule the algebra claims invalid must have been
           witnessed as an actual inequality, not just not-checked. *)
        Alcotest.(check (list string))
          "all claimed-invalid rules witnessed" []
          (Metamorph.unwitnessed r.Fuzz.meta));
    tc "injected no-poison bug is caught and minimised small" (fun () ->
        let vconfig =
          match Fuzz.inject_bug "no-poison" Differ.default_vconfig with
          | Ok v -> v
          | Error e -> Alcotest.fail e
        in
        let r = campaign ~runs:80 ~seed:42 ~vconfig () in
        Alcotest.(check bool) "campaign failed" false (Fuzz.passed r);
        let c =
          match
            List.find_opt
              (fun (c : Fuzz.crash) ->
                String.equal c.Fuzz.check "stg-implements-denot"
                || String.equal c.Fuzz.check "stg-ref-implements-denot")
              r.Fuzz.crashes
          with
          | Some c -> c
          | None -> Alcotest.fail "no implements-denot crash reported"
        in
        Alcotest.(check bool)
          (Printf.sprintf "witness minimised to <=10 nodes, got %d: %s"
             c.Fuzz.minimized_size
             (Pretty.expr_to_string c.Fuzz.minimized))
          true
          (c.Fuzz.minimized_size <= 10);
        Alcotest.(check bool) "flight-recorder dump attached" true
          (Option.is_some c.Fuzz.dump));
    tc "campaigns replay deterministically for a fixed seed" (fun () ->
        let r1 = campaign ~runs:80 ~seed:3 () in
        let r2 = campaign ~runs:80 ~seed:3 () in
        Alcotest.(check int) "runs" r1.Fuzz.total_runs r2.Fuzz.total_runs;
        Alcotest.(check int) "generated" r1.Fuzz.generated r2.Fuzz.generated;
        Alcotest.(check int) "retained" r1.Fuzz.retained r2.Fuzz.retained;
        Alcotest.(check int) "crashes" 0 (List.length r1.Fuzz.crashes);
        let s1 = Coverage.signature r1.Fuzz.coverage in
        let s2 = Coverage.signature r2.Fuzz.coverage in
        Alcotest.(check (pair int int)) "coverage signature" s1 s2);
    tc "corpus entries round-trip through the file format" (fun () ->
        List.iter
          (fun (e : Corpus.entry) ->
            match Corpus.of_text ~name:e.Corpus.name (Corpus.to_text e) with
            | Error msg -> Alcotest.failf "%s: %s" e.Corpus.name msg
            | Ok e' ->
                Alcotest.(check string)
                  (e.Corpus.name ^ " mode")
                  (Corpus.mode_name e.Corpus.mode)
                  (Corpus.mode_name e'.Corpus.mode);
                Alcotest.check expr_alpha (e.Corpus.name ^ " expr")
                  e.Corpus.expr e'.Corpus.expr)
          (Corpus.dictionary ()));
    Helpers.qtest ~count:150 "greedy shrink minimisation terminates"
      (Gen.gen_int ())
      (fun e ->
        (* Any loop that replaces a term by one of its shrink candidates
           terminates: candidates strictly decrease the size measure. *)
        let start = Syntax.size e in
        let rec go cur steps =
          if steps > start + 8 then None
          else
            match Gen.shrink cur with
            | [] -> Some cur
            | c :: _ -> go c (steps + 1)
        in
        match go e 0 with
        | None -> false
        | Some final -> Syntax.size final <= start);
  ]
