open Imprecise
open Helpers
module B = Builder
module E = Exn

(* Cross-cutting semantic properties (experiments C2, C4, C13). *)

let cfg20 = Denot.with_fuel 12_000

let eq_denot a b =
  Value.deep_equal
    (Denot.run_deep ~config:cfg20 a)
    (Denot.run_deep ~config:cfg20 b)

let suite =
  [
    (* C2: + is commutative under the imprecise semantics, on arbitrary
       exception-raising operands. *)
    qtest_gen ~count:150 ~print:print_expr_pair
      "+ is commutative (the paper's motivating law)"
      QCheck2.Gen.(pair (Gen.gen_int ()) (Gen.gen_int ()))
      (fun (a, b) ->
        eq_denot (Prelude.wrap B.(a + b)) (Prelude.wrap B.(b + a)));
    qtest_gen ~count:100 ~print:print_expr_pair
      "* is commutative"
      QCheck2.Gen.(pair (Gen.gen_int ()) (Gen.gen_int ()))
      (fun (a, b) ->
        eq_denot (Prelude.wrap B.(a * b)) (Prelude.wrap B.(b * a)));
    tc "+ is NOT associative (checked arithmetic, a deliberate non-law)"
      (fun () ->
        (* (big + big) + (-big) overflows on the left association only.
           The imprecise semantics is honest about this: the two
           groupings denote different values. *)
        let big = B.int 2000000000 and minus_big = B.int (-2000000000) in
        let lhs = B.(big + big + minus_big)
        and rhs = B.(big + (big + minus_big)) in
        Alcotest.check deep "lhs overflows" (dbad [ E.Overflow ])
          (Denot.run_deep lhs);
        Alcotest.check deep "rhs fine" (dint 2000000000)
          (Denot.run_deep rhs));
    (* C4: both-scrutinised case commuting. *)
    qtest_gen ~count:80 ~print:print_expr_pair
      "independent strict pairs commute (paper section 4)"
      QCheck2.Gen.(pair (Gen.gen_int ()) (Gen.gen_int ()))
      (fun (x, y) ->
        let nested a b inner =
          Syntax.Case
            ( B.pair a (B.int 0),
              [
                {
                  Syntax.pat = Syntax.Pcon ("Pair", [ "p1"; "q1" ]);
                  rhs =
                    Syntax.Case
                      ( B.pair b (B.int 0),
                        [
                          {
                            Syntax.pat = Syntax.Pcon ("Pair", [ "p2"; "q2" ]);
                            rhs = inner;
                          };
                        ] );
                };
              ] )
        in
        (* seq both pair components so the scrutinees' exceptions are
           actually demanded in both orders. *)
        let body1 = B.(seq (var "p1") (seq (var "p2") (int 1))) in
        let body2 = B.(seq (var "p2") (seq (var "p1") (int 1))) in
        eq_denot
          (Prelude.wrap (nested x y body1))
          (Prelude.wrap (nested y x body2)));
    (* Beta. *)
    qtest_gen ~count:100 ~print:print_expr_pair
      "beta reduction preserves the denotation"
      QCheck2.Gen.(pair (Gen.gen Gen.T_fun_ii) (Gen.gen_int ()))
      (fun (f, a) ->
        match f with
        | Syntax.Lam (x, body) ->
            eq_denot
              (Prelude.wrap (Syntax.App (f, a)))
              (Prelude.wrap (Subst.subst x a body))
        | _ -> true);
    (* Laziness. *)
    qtest ~count:100 "unused function arguments never matter"
      (Gen.gen_int ())
      (fun junk ->
        eq_denot
          (Prelude.wrap (Syntax.App (B.lam "ignored" (B.int 7), junk)))
          (B.int 7));
    qtest ~count:80 "constructors never raise at WHNF" (Gen.gen_int ())
      (fun e ->
        match Denot.run ~config:cfg20 (Prelude.wrap (B.cons e B.nil)) with
        | exception _ -> false
        | Value.Ok_v _ -> true
        | Value.Bad _ -> false);
    (* The semantic exception set only grows when raises are added. *)
    qtest ~count:80 "seq of a term with itself has the same set"
      (Gen.gen_int ())
      (fun e ->
        (* [seq e e] evaluates [e] twice, so near the fuel bound the two
           sides can disagree spuriously. Skip terms whose set has not
           converged (it still changes when the fuel doubles), and give
           the doubled term double fuel. *)
        let w = Prelude.wrap e in
        let s1 = Denot.exception_set ~config:cfg20 w in
        let s2 = Denot.exception_set ~config:(Denot.with_fuel 24_000) w in
        (not (Exn_set.equal s1 s2))
        || Exn_set.equal s2
             (Denot.exception_set
                ~config:(Denot.with_fuel 48_000)
                (Prelude.wrap (B.seq e e))));
    (* getException in the IO monad restores beta (Section 3.5): the
       substituted and shared forms perform identically under the same
       oracle. *)
    qtest_gen ~count:60
      ~print:QCheck2.Print.int
      "IO-monad getException makes the paper's beta example deterministic"
      QCheck2.Gen.(int_range 0 1000)
      (fun seed ->
        let shared =
          parse
            "let x = (1/0) + error \"Urk\" in\n\
             getException x >>= \\v1 ->\n\
             getException x >>= \\v2 ->\n\
             return (eqExVal (\\a b -> a == b) v1 v2)"
        in
        let substituted =
          parse
            "getException ((1/0) + error \"Urk\") >>= \\v1 ->\n\
             getException ((1/0) + error \"Urk\") >>= \\v2 ->\n\
             return (eqExVal (\\a b -> a == b) v1 v2)"
        in
        let run e = Io.run ~oracle:(Oracle.create ~seed) e in
        let outcome e = Fmt.str "%a" Io.pp_outcome (run e).Io.outcome in
        (* β holds: same oracle sequence, same answers. *)
        String.equal (outcome shared) (outcome substituted));
    (* The machine's chosen representative is always in the semantic set
       (the Section 3.5 "single member" claim). *)
    qtest ~count:100 "machine exception is a member of the semantic set"
      (Gen.gen_int ())
      (fun e ->
        let w = Prelude.wrap e in
        match Machine.run_expr w with
        | Error (Machine.Fail_exn exn), _ ->
            Exn_set.mem exn (Denot.exception_set ~config:cfg20 w)
            || Exn_set.is_all (Denot.exception_set ~config:cfg20 w)
        | (Ok _ | Error _), _ -> true);
  ]
