open Imprecise
module B = Builder

let roundtrip e =
  let printed = Pretty.expr_to_string e in
  match Parser.parse_expr printed with
  | parsed -> Subst.alpha_equal e parsed
  | exception Parser.Error (msg, l, c) ->
      Alcotest.failf "re-parse failed (%d:%d %s) on:\n%s" l c msg printed

let check_rt name e =
  Helpers.tc name (fun () ->
      Alcotest.(check bool)
        (Printf.sprintf "roundtrip %s" (Pretty.expr_to_string e))
        true (roundtrip e))

let check_str name expected e =
  Helpers.tc name (fun () ->
      Alcotest.(check string) "printed" expected (Pretty.expr_to_string e))

let suite =
  [
    check_str "int" "42" (B.int 42);
    check_str "addition" "1 + 2" B.(int 1 + int 2);
    check_str "precedence parens" "(1 + 2) * 3" B.((int 1 + int 2) * int 3);
    check_str "no spurious parens" "1 + 2 * 3" B.(int 1 + int 2 * int 3);
    check_str "application" "f x y"
      (Syntax.App (Syntax.App (B.var "f", B.var "x"), B.var "y"));
    check_str "nested application parens" "f (g x)"
      (Syntax.App (B.var "f", Syntax.App (B.var "g", B.var "x")));
    check_str "list literal" "[1, 2]" (B.list [ B.int 1; B.int 2 ]);
    check_str "pair" "(1, 2)" (B.pair (B.int 1) (B.int 2));
    check_str "cons chain" "1 : xs" (B.cons (B.int 1) (B.var "xs"));
    check_str "lambda" "\\x y -> x" (B.lams [ "x"; "y" ] (B.var "x"));
    check_str "raise" "raise DivideByZero" (B.raise_exn Exn.Divide_by_zero);
    check_rt "roundtrip let" (Syntax.Let ("x", B.int 1, B.(var "x" + int 2)));
    check_rt "roundtrip letrec"
      (B.letrec [ ("f", B.lam "n" (B.var "n")) ] (B.var "f"));
    check_rt "roundtrip case"
      (B.case (B.var "xs")
         [
           (B.pcon "Nil" [], B.int 0);
           (B.pcon "Cons" [ "y"; "ys" ], B.var "y");
         ]);
    check_rt "roundtrip if" (B.if_ B.true_ (B.int 1) (B.int 2));
    check_rt "roundtrip seq" (B.seq (B.var "a") (B.var "b"));
    check_rt "roundtrip fix" (B.fix (B.lam "x" (B.var "x")));
    check_rt "roundtrip bind"
      (B.io_bind B.get_char (B.lam "c" (B.io_return (B.var "c"))));
    check_rt "roundtrip strings and chars"
      (B.pair (B.str "a\nb\"c") (B.char '\t'));
    check_rt "roundtrip paper example" B.div_zero_plus_error;
    check_rt "roundtrip black" B.black;
    Helpers.qtest ~count:200 "print/parse roundtrip on random int terms"
      (Gen.gen_int ()) roundtrip;
    Helpers.qtest ~count:200 "print/parse roundtrip on random list terms"
      (Gen.gen_list ()) roundtrip;
    Helpers.qtest ~count:200 "print/parse roundtrip on random IO programs"
      (Gen.gen_io ()) roundtrip;
    Helpers.qtest ~count:200
      "print/parse roundtrip on random concurrent programs" (Gen.gen_conc ())
      roundtrip;
    check_rt "roundtrip mapException"
      (B.map_exception
         (B.lam "e" (B.con "Overflow" []))
         B.div_zero_plus_error);
    check_rt "roundtrip mask and bracket"
      (B.io_bind
         (B.con "Mask" [ B.io_return (B.int 1) ])
         (B.lam "u"
            (B.con "Bracket"
               [
                 B.io_return (B.int 2); B.lam "r" (B.io_return (B.var "r"));
                 B.lam "r" (B.io_return (B.int 0));
               ])));
    Helpers.qtest ~count:60 "printed prelude-free terms re-evaluate equally"
      (Gen.gen ~cfg:{ Gen.default_cfg with use_prelude = false } Gen.T_int)
      (fun e ->
        let e' = Parser.parse_expr (Pretty.expr_to_string e) in
        let cfg = Denot.with_fuel 10_000 in
        Value.deep_equal
          (Denot.run_deep ~config:cfg e)
          (Denot.run_deep ~config:cfg e'));
  ]
