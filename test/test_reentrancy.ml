open Imprecise
open Helpers

(* Re-entrancy: the serve daemon interleaves many paused machines in
   one process, so nothing machine-level may live in hidden module
   globals. Two machines paused and resumed in alternation must behave
   exactly like each running alone, and two resolution contexts must
   never bleed constructor tags into each other. *)

(* Run [src] to completion on a fresh machine, pausing it [pauses]
   times via injected slice interrupts, optionally calling [between]
   at every pause (this is where the interleaved other machine runs).
   Returns the deep value and the machine's final stats. *)
let run_sliced ?(pauses = 0) ?(slice = 500) ?(between = fun () -> ()) src =
  let m = Machine.create () in
  let a = Machine.alloc m (parse src) in
  let rec go remaining =
    if remaining > 0 then
      Machine.inject_async m
        ~at_step:((Machine.stats m).Stats.steps + slice)
        Exn.Timeout;
    match Machine.force_catch m a with
    | Ok _ -> (Machine.deep m a, Machine.stats m)
    | Error (Machine.Fail_async Exn.Timeout) when remaining > 0 ->
        between ();
        go (remaining - 1)
    | Error f -> Alcotest.failf "unexpected failure: %a" Machine.pp_failure f
  in
  go pauses

let suite =
  [
    tc "two interleaved paused machines match their solo baselines"
      (fun () ->
        (* Baselines: each program alone, no pausing. *)
        let v1_solo, s1_solo = run_sliced "sum (enumFromTo 1 300)" in
        let v2_solo, s2_solo =
          run_sliced "length (filter (\\x -> x > 5) (enumFromTo 1 40))"
        in
        (* Interleaved: machine 1 pauses five times; at every pause,
           machine 2 runs a full sliced evaluation of its own. *)
        let inner = ref [] in
        let v1, s1 =
          run_sliced ~pauses:5
            ~between:(fun () ->
              inner :=
                run_sliced ~pauses:2
                  "length (filter (\\x -> x > 5) (enumFromTo 1 40))"
                :: !inner)
            "sum (enumFromTo 1 300)"
        in
        Alcotest.check deep "outer value unchanged" v1_solo v1;
        List.iter
          (fun (v2, s2) ->
            Alcotest.check deep "inner value unchanged" v2_solo v2;
            Alcotest.(check int) "inner heap counter isolated"
              s2_solo.Stats.allocations s2.Stats.allocations)
          !inner;
        Alcotest.(check int) "five inner runs happened" 5
          (List.length !inner);
        (* The outer machine's work is its own: pausing adds only the
           bounded unwind/rebuild cost, never the other machine's
           steps. Allocations are exactly identical — pause cells are
           heap-free bookkeeping on the paused stack. *)
        Alcotest.(check int) "outer allocations unchanged"
          s1_solo.Stats.allocations s1.Stats.allocations;
        Alcotest.(check bool) "outer steps within pause overhead" true
          (s1.Stats.steps >= s1_solo.Stats.steps
          && s1.Stats.steps <= s1_solo.Stats.steps + (5 * 100)));
    tc "resolution contexts do not bleed constructor tags" (fun () ->
        let c1 = Resolve.new_context () in
        let c2 = Resolve.new_context () in
        (* Fresh names interned in one context in one order... *)
        let a1 = Resolve.con_tag ~ctx:c1 "Alpha" in
        let b1 = Resolve.con_tag ~ctx:c1 "Beta" in
        (* ...and the opposite order in the other. *)
        let b2 = Resolve.con_tag ~ctx:c2 "Beta" in
        let a2 = Resolve.con_tag ~ctx:c2 "Alpha" in
        Alcotest.(check bool) "c1 ordering" true (a1 < b1);
        Alcotest.(check bool) "c2 ordering" true (b2 < a2);
        Alcotest.(check int) "first fresh tag identical" a1 b2;
        Alcotest.(check string) "c1 names its own tags" "Alpha"
          (Resolve.con_name ~ctx:c1 a1);
        Alcotest.(check string) "c2 names its own tags" "Beta"
          (Resolve.con_name ~ctx:c2 b2);
        (* Builtins are pre-interned identically everywhere, so machine
           drivers can rely on the t_* tags in any context. *)
        Alcotest.(check int) "builtin tags stable across contexts"
          (Resolve.con_tag ~ctx:c1 "Cons")
          (Resolve.con_tag ~ctx:c2 "Cons");
        Alcotest.(check int) "and equal to the global ones"
          Resolve.t_cons
          (Resolve.con_tag ~ctx:c1 "Cons"));
    tc "resolution is deterministic: same source, identical IR" (fun () ->
        (* The compiled-program cache substitutes a cached IR for a
           fresh resolution, so resolving twice must yield structurally
           identical results — including raise-site numbering, which
           restarts per call. *)
        List.iter
          (fun src ->
            let e = parse src in
            let r1 = Resolve.expr e and r2 = Resolve.expr e in
            Alcotest.(check bool)
              (Printf.sprintf "deterministic: %s" src)
              true (r1 = r2))
          [
            "sum (enumFromTo 1 10)";
            "1/0 + error \"Urk\"";
            "case unsafeGetException (head Nil) of { OK v -> v; Bad e -> 0 }";
            "let rec go n = if n > 0 then go (n - 1) else 0 in go 3";
          ]);
    tc "machines on distinct contexts evaluate independently" (fun () ->
        (* A machine carries its resolution context: two machines on two
           fresh contexts, each using constructors the other also
           interned (in a different order), both answer correctly. *)
        let eval_in ctx src =
          let m = Machine.create ~rctx:ctx () in
          let a = Machine.alloc_resolved m (Resolve.expr ~ctx (parse src)) in
          match Machine.force_catch m a with
          | Ok _ -> Machine.deep m a
          | Error f ->
              Alcotest.failf "unexpected failure: %a" Machine.pp_failure f
        in
        let c1 = Resolve.new_context () in
        let c2 = Resolve.new_context () in
        (* Skew the fresh-tag numbering between the contexts first. *)
        ignore (Resolve.con_tag ~ctx:c2 "Skew");
        let src = "case Just 7 of { Just x -> x + 1; Nothing -> 0 }" in
        Alcotest.check deep "c1" (dint 8) (eval_in c1 src);
        Alcotest.check deep "c2" (dint 8) (eval_in c2 src));
  ]
