open Imprecise
open Helpers

(* The serve engine: the line protocol, per-request quota enforcement,
   wall-clock timeouts over pause cells, admission control, memory-
   pressure eviction, the compiled-program cache, and — the acceptance
   bar — one engine surviving hundreds of mixed hostile requests with
   zero restarts while well-behaved requests keep answering exactly
   what one-shot evaluation answers. *)

let flat s =
  String.map (function '\n' | '\r' -> ' ' | c -> c) s

(* Submit one request: the eval header, the program lines, the dot. *)
let submit sess id opts src =
  Serve.feed sess
    (if opts = "" then Printf.sprintf "eval %s" id
     else Printf.sprintf "eval %s %s" id opts);
  List.iter (Serve.feed sess) (String.split_on_char '\n' src);
  Serve.feed sess "."

(* Submit, run to completion, expect exactly one reply. *)
let eval_one engine sess id opts src =
  submit sess id opts src;
  Serve.run_all engine;
  match Serve.drain sess with
  | [ r ] -> r
  | rs -> Alcotest.failf "%s: expected one reply, got %d" id (List.length rs)

let starts_with prefix s =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix

let check_prefix what prefix reply =
  Alcotest.(check bool)
    (Printf.sprintf "%s: got %S want prefix %S" what reply prefix)
    true (starts_with prefix reply)

(* One-shot reference evaluation, formatted exactly like a serve
   reply: the differential oracle for well-behaved requests. *)
let reference id e =
  let m = Machine.create () in
  let a = Machine.alloc m e in
  match Machine.force_catch m a with
  | Ok _ ->
      Printf.sprintf "ok %s %s" id
        (flat (Fmt.str "%a" Value.pp_deep (Machine.deep m a)))
  | Error (Machine.Fail_exn x) | Error (Machine.Fail_async x) ->
      Printf.sprintf "err %s exn class=%s %s" id (Exn.class_name x)
        (flat (Fmt.str "%a" Exn.pp x))
  | Error Machine.Fail_diverged ->
      (* Matches the serve reply's detail for fuel exhaustion. *)
      Printf.sprintf "err %s quota:fuel diverged-or-exhausted" id

(* The canonical killers (each breaches exactly one defence). *)
let heapbomb = ("heap=2000", "length (replicate 100000 1)")
let stackbomb = ("stack=500 fuel=5000000 heap=2000000", "sum (enumFromTo 1 20000)")
let fuelburn = ("fuel=20000", "sum (enumFromTo 1 200000)")
let blackhole = ("", "let rec black = black + 1 in black")

let spinner =
  ("fuel=1000000000 timeout=200", "let rec go n = if n > 0 then go n else 0 in go 1")

let suite =
  [
    tc "protocol: ping, stats, quit, proto errors" (fun () ->
        let engine = Serve.create () in
        let sess = Serve.session engine in
        Serve.feed sess "ping";
        Alcotest.(check (list string)) "pong" [ "pong" ] (Serve.drain sess);
        Serve.feed sess "stats";
        (match Serve.drain sess with
        | [ s ] -> check_prefix "stats is JSON" "{\"requests\":" s
        | rs -> Alcotest.failf "stats: %d replies" (List.length rs));
        Serve.feed sess "frobnicate";
        (match Serve.drain sess with
        | [ r ] -> check_prefix "unknown verb" "err - proto" r
        | rs -> Alcotest.failf "verb: %d replies" (List.length rs));
        Serve.feed sess "eval";
        (match Serve.drain sess with
        | [ r ] -> check_prefix "eval without id" "err - proto" r
        | rs -> Alcotest.failf "eval: %d replies" (List.length rs));
        Alcotest.(check int)
          "proto errors counted" 2 (Serve.counters engine).Serve.proto_errors;
        Serve.feed sess "quit";
        Alcotest.(check (list string)) "bye" [ "bye" ] (Serve.drain sess);
        Alcotest.(check bool) "closed" true (Serve.closed sess);
        (* A closed session ignores further input. *)
        Serve.feed sess "ping";
        Alcotest.(check (list string)) "silent" [] (Serve.drain sess));
    tc "parse errors answer [parse], daemon continues" (fun () ->
        let engine = Serve.create () in
        let sess = Serve.session engine in
        check_prefix "parse" "err p1 parse"
          (eval_one engine sess "p1" "" "let let let");
        Alcotest.(check string) "next request fine" "ok p2 7"
          (eval_one engine sess "p2" "" "3 + 4"));
    tc "differential: dictionary replies match one-shot evaluation"
      (fun () ->
        let engine = Serve.create () in
        let sess = Serve.session engine in
        let pure =
          List.filter
            (fun e ->
              match e.Corpus.mode with
              | Corpus.M_int | Corpus.M_list | Corpus.M_any -> true
              | _ -> false)
            (Corpus.dictionary ())
        in
        Alcotest.(check bool) "dictionary non-trivial" true
          (List.length pure > 10);
        List.iter
          (fun round ->
            List.iteri
              (fun i e ->
                let id = Printf.sprintf "%s%d" round i in
                let want = reference id (Prelude.wrap e.Corpus.expr) in
                let got =
                  eval_one engine sess id ""
                    (Pretty.expr_to_string e.Corpus.expr)
                in
                Alcotest.(check string) id want got)
              pure)
          [ "a"; "b" ];
        let c = Serve.counters engine in
        Alcotest.(check bool) "second round hit the cache" true
          (c.Serve.cache_hits >= List.length pure);
        Alcotest.(check int) "no crashes" 0 c.Serve.crashes);
    tc "quota kills: heap, stack, fuel, black hole" (fun () ->
        let engine = Serve.create () in
        let sess = Serve.session engine in
        let kill id (opts, src) kind =
          check_prefix id ("err " ^ id ^ " " ^ kind)
            (eval_one engine sess id opts src)
        in
        kill "h" heapbomb "quota:heap";
        kill "s" stackbomb "quota:stack";
        kill "f" fuelburn "quota:fuel";
        kill "b" blackhole "quota:fuel";
        let c = Serve.counters engine in
        Alcotest.(check int) "heap" 1 c.Serve.quota_heap;
        Alcotest.(check int) "stack" 1 c.Serve.quota_stack;
        Alcotest.(check int) "fuel" 2 c.Serve.quota_fuel;
        Alcotest.(check int) "no crashes" 0 c.Serve.crashes;
        (* The daemon still answers afterwards. *)
        Alcotest.(check string) "alive" "ok z 5050"
          (eval_one engine sess "z" "" "sum (enumFromTo 1 100)"));
    tc "timeout: injected clock, pause-cell suspension" (fun () ->
        (* A fake clock the test advances by hand: the spinner runs
           under a 100ms deadline; while the clock stands still it just
           keeps getting sliced and requeued, and the moment the clock
           jumps past the deadline the next slice boundary answers
           [timeout]. *)
        let t = ref 0L in
        let cfg =
          { Serve.default_config with Serve.now = (fun () -> !t) }
        in
        let engine = Serve.create ~config:cfg () in
        let sess = Serve.session engine in
        submit sess "spin" "fuel=1000000000 timeout=100"
          "let rec go n = if n > 0 then go n else 0 in go 1";
        (* A few quanta with time frozen: still inflight, no reply. *)
        for _ = 1 to 3 do
          ignore (Serve.tick engine)
        done;
        Alcotest.(check int) "still inflight" 1 (Serve.inflight engine);
        Alcotest.(check (list string)) "no reply yet" [] (Serve.drain sess);
        (* Advance past the 100ms deadline; the next slice kills it. *)
        t := 200_000_000L;
        Serve.run_all engine;
        (match Serve.drain sess with
        | [ r ] -> check_prefix "timeout" "err spin timeout" r
        | rs -> Alcotest.failf "%d replies" (List.length rs));
        Alcotest.(check int) "timeout counted" 1
          (Serve.counters engine).Serve.timeouts);
    tc "admission control: overloaded past max_inflight" (fun () ->
        let cfg = { Serve.default_config with Serve.max_inflight = 2 } in
        let engine = Serve.create ~config:cfg () in
        let sess = Serve.session engine in
        submit sess "a" "" "1 + 1";
        submit sess "b" "" "2 + 2";
        submit sess "c" "" "3 + 3";
        (* The third was shed immediately, before any tick. *)
        (match Serve.drain sess with
        | [ r ] -> check_prefix "shed" "err c overloaded" r
        | rs -> Alcotest.failf "%d early replies" (List.length rs));
        Serve.run_all engine;
        Alcotest.(check (list string)) "admitted ones answer"
          [ "ok a 2"; "ok b 4" ]
          (List.sort compare (Serve.drain sess));
        Alcotest.(check int) "shed counted" 1
          (Serve.counters engine).Serve.sheds);
    tc "load shedding: oldest paused request evicted under memory pressure"
      (fun () ->
        (* Two allocation-heavy requests under a tiny paused-heap
           budget: once both are paused, the older one is evicted; the
           younger still finishes with the right answer. *)
        let cfg =
          {
            Serve.default_config with
            Serve.mem_budget = 500;
            Serve.heap = 1_000_000;
            Serve.fuel = 100_000_000;
            Serve.timeout_ms = 0;
            Serve.slice = 512;
          }
        in
        let engine = Serve.create ~config:cfg () in
        let sess = Serve.session engine in
        submit sess "old" "" "sum (enumFromTo 1 30000)";
        submit sess "young" "" "sum (enumFromTo 1 200)";
        Serve.run_all engine;
        (match List.sort compare (Serve.drain sess) with
        | [ ev; ok ] ->
            check_prefix "oldest evicted" "err old evicted" ev;
            Alcotest.(check string) "survivor exact" "ok young 20100" ok
        | rs -> Alcotest.failf "%d replies" (List.length rs));
        Alcotest.(check int) "eviction counted" 1
          (Serve.counters engine).Serve.evictions);
    tc "compiled-program cache: hits, LRU eviction" (fun () ->
        let cfg = { Serve.default_config with Serve.cache_capacity = 2 } in
        let engine = Serve.create ~config:cfg () in
        let sess = Serve.session engine in
        let run id src = ignore (eval_one engine sess id "" src) in
        run "a1" "1 + 1";
        run "a2" "1 + 1";
        let c = Serve.counters engine in
        Alcotest.(check int) "hit on resubmission" 1 c.Serve.cache_hits;
        Alcotest.(check int) "one compilation" 1 c.Serve.cache_misses;
        (* Two more distinct programs overflow capacity 2 and evict the
           least recently used entry. *)
        run "b" "2 + 2";
        run "c" "3 + 3";
        Alcotest.(check bool) "LRU eviction counted" true
          (c.Serve.cache_evictions >= 1);
        Alcotest.(check bool) "cache bounded" true
          (Serve.cache_size engine <= 2);
        (* The evicted program recompiles and still answers. *)
        run "a3" "1 + 1";
        Alcotest.(check bool) "recompiled" true (c.Serve.cache_misses >= 3));
    tc "quota recovery: heap latch re-arms across sequential requests"
      (fun () ->
        (* Satellite 3: repeated heap-latch trips on one engine. Every
           odd request is a heap bomb, every even request must still
           answer exactly right — no poisoned heap bleeds across
           requests, the latch re-arms every time. *)
        let engine = Serve.create () in
        let sess = Serve.session engine in
        let opts, bomb = heapbomb in
        for i = 1 to 8 do
          check_prefix
            (Printf.sprintf "bomb %d" i)
            (Printf.sprintf "err b%d quota:heap" i)
            (eval_one engine sess (Printf.sprintf "b%d" i) opts bomb);
          Alcotest.(check string)
            (Printf.sprintf "good %d" i)
            (Printf.sprintf "ok g%d 5050" i)
            (eval_one engine sess
               (Printf.sprintf "g%d" i)
               "" "sum (enumFromTo 1 100)")
        done;
        let c = Serve.counters engine in
        Alcotest.(check int) "eight trips" 8 c.Serve.quota_heap;
        Alcotest.(check int) "eight recoveries" 8 c.Serve.ok;
        Alcotest.(check int) "no crashes" 0 c.Serve.crashes);
    tc "quota recovery: in-request catch of the heap latch" (fun () ->
        (* unsafeGetException turns the latch's Heap_overflow into a
           value; after the latch fires the same request keeps
           allocating (the handler arm) and answers ok. *)
        let engine = Serve.create () in
        let sess = Serve.session engine in
        Alcotest.(check string) "caught in-request" "ok r 42"
          (eval_one engine sess "r" "heap=2000"
             "case unsafeGetException (length (replicate 100000 1)) of { \
              OK n -> 0 - 1; Bad e -> 40 + 2 }");
        Alcotest.(check string) "next request unaffected" "ok n 5050"
          (eval_one engine sess "n" "" "sum (enumFromTo 1 100)"));
    tc "survival: 200 mixed hostile requests, zero restarts" (fun () ->
        (* The acceptance bar: one engine, one session, 200 requests
           cycling through every kill mode with well-behaved requests
           interleaved; every well-behaved reply is differentially
           checked against one-shot evaluation, and the daemon never
           crashes or restarts (it is the same OCaml value throughout —
           surviving is simply never raising). *)
        let engine = Serve.create () in
        let sess = Serve.session engine in
        let goods =
          [
            "sum (enumFromTo 1 50)";
            "length (map (\\x -> x * x) (enumFromTo 1 20))";
            "1/0 + error \"Urk\"";
            "take 3 (iterate (\\x -> x * 2) 1)";
          ]
        in
        let kills = [ heapbomb; stackbomb; fuelburn; blackhole; spinner ] in
        let answered = ref 0 in
        let expected_ok = ref 0 in
        for i = 0 to 199 do
          let id = Printf.sprintf "r%d" i in
          let reply =
            if i mod 2 = 0 then begin
              let src = List.nth goods (i / 2 mod List.length goods) in
              let want = reference id (parse src) in
              if starts_with "ok" want then incr expected_ok;
              let got = eval_one engine sess id "" src in
              Alcotest.(check string) id want got;
              got
            end
            else begin
              let opts, src = List.nth kills (i / 2 mod List.length kills) in
              let got = eval_one engine sess id opts src in
              check_prefix id ("err " ^ id) got;
              got
            end
          in
          if reply <> "" then incr answered
        done;
        let c = Serve.counters engine in
        Alcotest.(check int) "every request answered" 200 !answered;
        Alcotest.(check int) "200 admitted" 200 c.Serve.requests;
        (* One of the four well-behaved programs legitimately answers
           [err .. exn ..] (its value IS an exception), so the ok count
           is what the one-shot references predict, not a flat 100. *)
        Alcotest.(check int) "ok count as predicted" !expected_ok c.Serve.ok;
        Alcotest.(check int) "zero crashes" 0 c.Serve.crashes;
        Alcotest.(check bool) "every kill mode exercised" true
          (c.Serve.quota_heap > 0 && c.Serve.quota_stack > 0
          && c.Serve.quota_fuel > 0 && c.Serve.timeouts > 0);
        Alcotest.(check int) "queue drained" 0 (Serve.inflight engine));
    tc "backend differential: slot and bytecode engines answer alike"
      (fun () ->
        (* Satellite: one corpus, two engines — the same requests go
           through [--backend slot] and [--backend bytecode] and every
           reply pair must agree. [ok] and [err .. exn] replies are
           compared exactly (same deep value, same exception). Fault
           replies are compared by id and kind: the detail field embeds
           backend-dependent cost numbers (steps at the timeout slice,
           cells at the latch), which differ because superinstructions
           fuse transitions. *)
        let mk backend =
          Serve.create
            ~config:{ Serve.default_config with Serve.backend } ()
        in
        let slot = mk Serve.Slot and bc = mk Serve.Bytecode in
        let s_slot = Serve.session slot and s_bc = Serve.session bc in
        let kind_of r =
          match String.split_on_char ' ' r with
          | verb :: id :: rest -> (
              ( verb,
                id,
                match rest with k :: _ -> k | [] -> "" ))
          | _ -> ("", "", "")
        in
        let agree id opts src =
          let r_slot = eval_one slot s_slot id opts src in
          let r_bc = eval_one bc s_bc id opts src in
          let verb, _, kind = kind_of r_slot in
          if verb = "ok" || (verb = "err" && kind = "exn") then
            Alcotest.(check string) (id ^ ": exact") r_slot r_bc
          else
            let verb', id', kind' = kind_of r_bc in
            Alcotest.(check (triple string string string))
              (Printf.sprintf "%s: fault kind (%s vs %s)" id r_slot r_bc)
              (verb, id, kind)
              (verb', id', kind')
        in
        let pure =
          List.filter
            (fun e ->
              match e.Corpus.mode with
              | Corpus.M_int | Corpus.M_list | Corpus.M_any -> true
              | _ -> false)
            (Corpus.dictionary ())
        in
        List.iteri
          (fun i e ->
            agree
              (Printf.sprintf "d%d" i)
              ""
              (Pretty.expr_to_string e.Corpus.expr))
          pure;
        (* The fault modes: every quota and timeout defence classifies
           identically on both backends. *)
        List.iteri
          (fun i (opts, src) ->
            agree (Printf.sprintf "k%d" i) opts src)
          [ heapbomb; stackbomb; fuelburn; blackhole; spinner ];
        let cs = Serve.counters slot and cb = Serve.counters bc in
        Alcotest.(check int) "same ok count" cs.Serve.ok cb.Serve.ok;
        Alcotest.(check int) "same exn count" cs.Serve.failed cb.Serve.failed;
        Alcotest.(check int) "same heap kills" cs.Serve.quota_heap
          cb.Serve.quota_heap;
        Alcotest.(check int) "same stack kills" cs.Serve.quota_stack
          cb.Serve.quota_stack;
        Alcotest.(check int) "same fuel kills" cs.Serve.quota_fuel
          cb.Serve.quota_fuel;
        Alcotest.(check int) "same timeouts" cs.Serve.timeouts
          cb.Serve.timeouts;
        Alcotest.(check int) "no crashes (slot)" 0 cs.Serve.crashes;
        Alcotest.(check int) "no crashes (bytecode)" 0 cb.Serve.crashes;
        (* The bytecode engine really ran bytecode. *)
        Alcotest.(check bool) "bytecode dispatches counted" true
          ((Serve.machine_totals bc).Stats.bc_dispatches > 0);
        Alcotest.(check int) "slot engine reports zero dispatches" 0
          (Serve.machine_totals slot).Stats.bc_dispatches);
    tc "backend bytecode: quota recovery and cache survive" (fun () ->
        (* The bytecode engine under the hostile-request drumbeat: latch
           trips, in-request catches, and resubmission cache hits — the
           compiled-program cache now stores bytecode programs. *)
        let engine =
          Serve.create
            ~config:
              { Serve.default_config with Serve.backend = Serve.Bytecode }
            ()
        in
        let sess = Serve.session engine in
        let opts, bomb = heapbomb in
        for i = 1 to 4 do
          check_prefix
            (Printf.sprintf "bomb %d" i)
            (Printf.sprintf "err b%d quota:heap" i)
            (eval_one engine sess (Printf.sprintf "b%d" i) opts bomb);
          Alcotest.(check string)
            (Printf.sprintf "good %d" i)
            (Printf.sprintf "ok g%d 5050" i)
            (eval_one engine sess
               (Printf.sprintf "g%d" i)
               "" "sum (enumFromTo 1 100)")
        done;
        Alcotest.(check string) "caught in-request" "ok r 42"
          (eval_one engine sess "r" "heap=2000"
             "case unsafeGetException (length (replicate 100000 1)) of { \
              OK n -> 0 - 1; Bad e -> 40 + 2 }");
        let c = Serve.counters engine in
        Alcotest.(check int) "four trips" 4 c.Serve.quota_heap;
        Alcotest.(check bool) "resubmissions hit the cache" true
          (c.Serve.cache_hits >= 6);
        Alcotest.(check int) "no crashes" 0 c.Serve.crashes);
    tc "crash barrier: machine invariant violation answers [crash]"
      (fun () ->
        (* Nothing in the language can trip the barrier from outside —
           that is rather the point — so the test reaches into the
           request's machine via the injected clock hook, the one piece
           of engine-visible code a test controls, and raises from
           there mid-request. The daemon must convert it into a [crash]
           reply and keep serving. *)
        let calls = ref 0 in
        let cfg =
          {
            Serve.default_config with
            Serve.now =
              (fun () ->
                incr calls;
                if !calls = 2 then failwith "injected fault"
                else Serve.default_now ());
          }
        in
        let engine = Serve.create ~config:cfg () in
        let sess = Serve.session engine in
        check_prefix "crash reply" "err c1 crash"
          (eval_one engine sess "c1" "timeout=1000" "sum (enumFromTo 1 100)");
        Alcotest.(check int) "crash counted" 1
          (Serve.counters engine).Serve.crashes;
        Alcotest.(check string) "daemon survives its own barrier"
          "ok c2 5050"
          (eval_one engine sess "c2" "timeout=0" "sum (enumFromTo 1 100)"));
    tc "stats verb reflects the counters" (fun () ->
        let engine = Serve.create () in
        let sess = Serve.session engine in
        ignore (eval_one engine sess "a" "" "1 + 2");
        let opts, bomb = heapbomb in
        ignore (eval_one engine sess "b" opts bomb);
        Serve.feed sess "stats";
        match Serve.drain sess with
        | [ s ] ->
            let has needle =
              Alcotest.(check bool)
                (Printf.sprintf "stats contains %s" needle)
                true
                (let n = String.length needle and l = String.length s in
                 let rec go i =
                   i + n <= l && (String.sub s i n = needle || go (i + 1))
                 in
                 go 0)
            in
            has "\"requests\":2";
            has "\"ok\":1";
            has "\"quota_heap\":1";
            has "\"machine\":"
        | rs -> Alcotest.failf "stats: %d replies" (List.length rs));
    tc "optimize: optimized replies equal unoptimized, both backends"
      (fun () ->
        (* The differential for [serve --optimize]: the same programs
           through an optimizing and a plain engine must answer
           identically on each backend. Programs here have one
           deterministic outcome — optimisation may legally {e refine}
           a multi-exception set, which would be a refinement check,
           not an equality. *)
        List.iter
          (fun backend ->
            let mk optimize =
              Serve.create
                ~config:
                  { Serve.default_config with Serve.backend; optimize }
                ()
            in
            let eng_o = mk true and eng_u = mk false in
            let s_o = Serve.session eng_o and s_u = Serve.session eng_u in
            List.iteri
              (fun i src ->
                let id = Printf.sprintf "d%d" i in
                let r_o = eval_one eng_o s_o id "" src in
                let r_u = eval_one eng_u s_u id "" src in
                Alcotest.(check string)
                  (Printf.sprintf "%s: %s" (flat src) r_u)
                  r_u r_o)
              [
                "sum (enumFromTo 1 50)";
                "let x = 2 + 3 in x * x";
                "zipWith (\\a b -> a + b) [1,2] [10,20]";
                "case (1 / 0, 2) of { Pair a b -> b }";
                "head []";
                "1 / 0";
              ];
            Alcotest.(check int)
              "no lint rejects" 0
              (Serve.counters eng_o).Serve.lint_rejects)
          [ Serve.Slot; Serve.Bytecode ]);
    tc "optimize: compiled-program cache still hits under -O" (fun () ->
        (* The cache key is mode-prefixed (O1:/O0:), so an optimizing
           engine caches the optimised compilation and reuses it. *)
        let engine =
          Serve.create
            ~config:{ Serve.default_config with Serve.optimize = true }
            ()
        in
        let sess = Serve.session engine in
        let payload r =
          match String.split_on_char ' ' r with
          | verb :: _id :: rest -> verb :: rest
          | parts -> parts
        in
        let r1 = eval_one engine sess "c1" "" "sum (enumFromTo 1 50)" in
        let r2 = eval_one engine sess "c2" "" "sum (enumFromTo 1 50)" in
        Alcotest.(check (list string))
          "same answer from the cache" (payload r1) (payload r2);
        Alcotest.(check int) "second request hit the cache" 1
          (Serve.counters engine).Serve.cache_hits);
  ]
