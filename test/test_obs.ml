open Imprecise
open Helpers
module M = Machine
module E = Exn
module Mio = Machine_io

(* The flight recorder itself, and its wiring into the machines and the
   IO layers: ring-buffer mechanics, the tracing-off fast path, raise
   provenance, re-raise origin replay, oracle-pick events, bracket
   event balance and crash-dump formatting. *)

let raise_label = function
  | Obs.Ev_raise (e, o) -> Some (e, o.Obs.label)
  | _ -> None

let suite =
  [
    tc "ring buffer wraps, keeping the newest events" (fun () ->
        let tr = Obs.create ~capacity:4 ~on:true () in
        for i = 0 to 9 do
          Obs.record tr (Obs.Ev_pause i)
        done;
        Alcotest.(check int) "seen counts every record" 10 (Obs.seen tr);
        Alcotest.(check int) "capacity" 4 (Obs.capacity tr);
        let kept =
          List.map
            (function Obs.Ev_pause i -> i | _ -> Alcotest.fail "event")
            (Obs.events tr)
        in
        Alcotest.(check (list int)) "newest four, oldest first"
          [ 6; 7; 8; 9 ] kept;
        Obs.clear tr;
        Alcotest.(check int) "clear resets" 0
          (List.length (Obs.events tr)));
    tc "a disabled recorder sees nothing from an exceptional run"
      (fun () ->
        (* The default machine recorder is off: even a run full of
           raises, poisonings and catches must record zero events —
           the instrumentation is a single untaken branch. *)
        let m = M.create () in
        (match M.force_catch m (M.alloc m (parse "sum [1, 1/0, 3]")) with
        | Error (M.Fail_exn E.Divide_by_zero) -> ()
        | _ -> Alcotest.fail "catch");
        Alcotest.(check int) "no events" 0 (Obs.seen (M.trace m)));
    tc "machine raises carry their raise-site label" (fun () ->
        let tr = Obs.create ~on:true () in
        let m = M.create ~trace:tr () in
        (match M.force_catch m (M.alloc m (parse "1/0")) with
        | Error (M.Fail_exn E.Divide_by_zero) -> ()
        | _ -> Alcotest.fail "catch");
        (match List.filter_map raise_label (Obs.events tr) with
        | [ (E.Divide_by_zero, "div") ] -> ()
        | _ -> Alcotest.fail "expected one raise labelled div");
        (match M.origin_of m E.Divide_by_zero with
        | Some o ->
            Alcotest.(check string) "origin label" "div" o.Obs.label;
            Alcotest.(check bool) "step recorded" true (o.Obs.step > 0)
        | None -> Alcotest.fail "origin registered");
        (* The catch mark's return is on the record too. *)
        Alcotest.(check bool) "catch event" true
          (List.exists
             (function
               | Obs.Ev_catch (Some E.Divide_by_zero) -> true
               | _ -> false)
             (Obs.events tr)));
    tc "re-entering a poisoned thunk replays the original origin"
      (fun () ->
        let tr = Obs.create ~on:true () in
        let m = M.create ~trace:tr () in
        let a = M.alloc m (parse "1/0") in
        (match M.force_catch m a with
        | Error (M.Fail_exn E.Divide_by_zero) -> ()
        | _ -> Alcotest.fail "first");
        let origin0 =
          match M.origin_of m E.Divide_by_zero with
          | Some o -> o
          | None -> Alcotest.fail "origin after first raise"
        in
        (* Second force re-enters the [Cell_raise]: no fresh raise, a
           rethrow that replays the recorded origin. *)
        (match M.force_catch m a with
        | Error (M.Fail_exn E.Divide_by_zero) -> ()
        | _ -> Alcotest.fail "second");
        let rethrows =
          List.filter_map
            (function
              | Obs.Ev_rethrow (E.Divide_by_zero, o) -> Some o
              | _ -> None)
            (Obs.events tr)
        in
        match rethrows with
        | [ o ] ->
            Alcotest.(check string) "same label" origin0.Obs.label
              o.Obs.label;
            Alcotest.(check int) "same step" origin0.Obs.step o.Obs.step
        | _ -> Alcotest.fail "expected exactly one rethrow");
    tc "oracle picks record the un-chosen members" (fun () ->
        let tr = Obs.create ~on:true () in
        let r =
          Io.run ~trace:tr
            (parse
               "getException (1/0 + error \"Urk\") >>= \\v -> return 0")
        in
        (match r.Io.outcome with
        | Io.Done _ -> ()
        | o -> Alcotest.failf "outcome: %a" Io.pp_outcome o);
        let picks =
          List.filter_map
            (function
              | Obs.Ev_oracle_pick (x, rest) -> Some (x, rest)
              | _ -> None)
            (Obs.events tr)
        in
        match picks with
        | [ (chosen, unchosen) ] ->
            (* Two members in the set: whichever the oracle chose, the
               other one must ride along as un-chosen. *)
            Alcotest.(check int) "one un-chosen" 1 (List.length unchosen);
            Alcotest.(check bool) "disjoint" false
              (List.mem chosen unchosen)
        | _ -> Alcotest.fail "expected exactly one oracle pick");
    tc "machine_io brackets balance acquire and release events"
      (fun () ->
        let tr = Obs.create ~on:true () in
        let r =
          Mio.run ~trace:tr
            (parse
               "bracket (putChar 'A' >>= \\u -> return 1) (\\r -> \
                putChar 'R') (\\r -> 1/0)")
        in
        (match r.Mio.outcome with
        | Mio.Uncaught E.Divide_by_zero -> ()
        | o -> Alcotest.failf "outcome: %a" Mio.pp_outcome o);
        let count p = List.length (List.filter p (Obs.events tr)) in
        Alcotest.(check int) "acquires" 1
          (count (function Obs.Ev_acquire -> true | _ -> false));
        Alcotest.(check int) "releases" 1
          (count (function Obs.Ev_release -> true | _ -> false));
        (* The release ran on the exceptional path: the raise is on the
           same record. *)
        Alcotest.(check bool) "raise recorded" true
          (count (function Obs.Ev_raise _ -> true | _ -> false) > 0));
    tc "dump formats the note, extras and recent events" (fun () ->
        let tr = Obs.create ~on:true () in
        Obs.record tr
          (Obs.Ev_raise
             (E.Overflow, Obs.origin ~label:"arith-overflow" ~depth:3
                ~step:42));
        Obs.record tr (Obs.Ev_catch (Some E.Overflow));
        let d =
          Obs.dump ~extra:[ ("steps", "42"); ("heap", "17 cells") ]
            ~note:"test crash" tr
        in
        let contains hay needle =
          let nh = String.length hay and nn = String.length needle in
          let rec go i =
            if i + nn > nh then false
            else String.sub hay i nn = needle || go (i + 1)
          in
          go 0
        in
        let has needle =
          Alcotest.(check bool)
            (Printf.sprintf "dump mentions %S" needle)
            true (contains d needle)
        in
        has "test crash";
        has "steps";
        has "arith-overflow";
        has "Overflow");
  ]
