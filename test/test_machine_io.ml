open Imprecise
open Helpers
module E = Exn
module Mio = Machine_io

let run ?config ?input ?async src = Mio.run ?config ?input ?async (parse src)

let check_done msg expected (r : Mio.result) =
  match r.outcome with
  | Mio.Done d -> Alcotest.check deep msg expected d
  | o -> Alcotest.failf "%s: unexpected %a" msg Mio.pp_outcome o

let suite =
  [
    tc "return" (fun () -> check_done "ret" (dint 5) (run "return (2+3)"));
    tc "echo" (fun () ->
        let r =
          run ~input:"hi"
            "getChar >>= \\a -> getChar >>= \\b -> putChar b >> putChar a"
        in
        Alcotest.(check string) "out" "ih" r.Mio.output;
        Alcotest.(check int) "reads" 2 r.Mio.reads);
    tc "putLine showInt" (fun () ->
        let r = run "putLine (showInt 9876)" in
        Alcotest.(check string) "out" "9876\n" r.Mio.output);
    tc "getException catches on the machine" (fun () ->
        check_done "catch"
          (Value.DCon ("Bad", [ Value.DCon ("DivideByZero", []) ]))
          (run "getException (1/0 + error \"Urk\") >>= \\v -> return v"));
    tc "the machine representative is deterministic" (fun () ->
        let once () =
          Fmt.str "%a"
            Mio.pp_outcome
            (run "getException (1/0 + error \"Urk\") >>= \\v -> return v")
              .Mio.outcome
        in
        Alcotest.(check string) "same" (once ()) (once ()));
    tc "uncaught exception" (fun () ->
        match (run "putInt (1/0)").Mio.outcome with
        | Mio.Uncaught E.Divide_by_zero -> ()
        | o -> Alcotest.failf "unexpected %a" Mio.pp_outcome o);
    tc "getChar end of input is stuck" (fun () ->
        match (run "getChar").Mio.outcome with
        | Mio.Stuck _ -> ()
        | o -> Alcotest.failf "unexpected %a" Mio.pp_outcome o);
    tc "async timeout delivered at getException, work resumes" (fun () ->
        let r =
          run
            ~async:[ (500, E.Timeout) ]
            "getException (sum (enumFromTo 1 2000)) >>= \\v1 ->\n\
             getException (sum (enumFromTo 1 2000)) >>= \\v2 ->\n\
             return (Pair v1 v2)"
        in
        check_done "pair"
          (Value.DCon
             ( "Pair",
               [
                 Value.DCon ("Bad", [ Value.DCon ("Timeout", []) ]);
                 Value.DCon ("OK", [ dint 2001000 ]);
               ] ))
          r;
        Alcotest.(check bool)
          "pause cells were created" true
          (r.Mio.stats.Stats.thunks_paused > 0));
    tc "poisoned thunk: same exception at both catches" (fun () ->
        check_done "same"
          dtrue
          (run
             "let x = 1/0 + error \"u\" in\n\
              getException x >>= \\v1 -> getException x >>= \\v2 ->\n\
              return (eqExVal (\\a b -> a == b) v1 v2)"));
    tc "mapM over machine IO" (fun () ->
        check_done "mapM" (dints [ 10; 20 ])
          (run "mapM (\\x -> return (10 * x)) [1, 2]"));
    tc "io divergence budget" (fun () ->
        let r =
          Mio.run ~max_transitions:40
            (parse "let rec spin = return 1 >>= \\x -> spin in spin")
        in
        match r.Mio.outcome with
        | Mio.Io_diverged -> ()
        | o -> Alcotest.failf "unexpected %a" Mio.pp_outcome o);
    tc "machine IO agrees with semantic IO on a program battery" (fun () ->
        let programs =
          [
            "return (1 + 1)";
            "putInt 42";
            "putLine (showInt (sum (enumFromTo 1 10)))";
            "getException (1/0) >>= \\v -> return v";
            "getException (head []) >>= \\v -> return v";
            "mapM2 (\\c -> putChar c) (showInt 123)";
            "ioSeq [putChar 'a', putChar 'b']";
          ]
        in
        List.iter
          (fun src ->
            let sem = Io.run (parse src) in
            let mach = run src in
            Alcotest.(check string)
              (Printf.sprintf "output of %s" src)
              (Io.output_string_of sem) mach.Mio.output;
            let comparable =
              match (sem.Io.outcome, mach.Mio.outcome) with
              | Io.Done d1, Mio.Done d2 -> Value.deep_equal d1 d2
              | Io.Uncaught e1, Mio.Uncaught e2 -> E.equal e1 e2
              | Io.Io_diverged, Mio.Io_diverged -> true
              | Io.Stuck _, Mio.Stuck _ -> true
              | _ -> false
            in
            Alcotest.(check bool)
              (Printf.sprintf "outcome of %s" src)
              true comparable)
          programs);
    tc "bracket releases exactly once (stats)" (fun () ->
        let r =
          run
            "bracket (putChar 'A' >>= \\u -> return 1) (\\r -> putChar 'R') \
             (\\r -> putChar 'U' >>= \\u -> return 9)"
        in
        check_done "v" (dint 9) r;
        Alcotest.(check string) "order" "AUR" r.Mio.output;
        Alcotest.(check int) "entered" 1 r.Mio.stats.Stats.brackets_entered;
        Alcotest.(check int) "released" 1 r.Mio.stats.Stats.brackets_released);
    tc "bracket frames survive collections (gc_every)" (fun () ->
        let r =
          Mio.run ~gc_every:3
            (parse
               "bracket (putChar 'A' >>= \\u -> return 1) (\\r -> putChar \
                'R') (\\r -> putList (showInt (sum (enumFromTo 1 100))))")
        in
        (match r.Mio.outcome with
        | Mio.Done _ -> ()
        | o -> Alcotest.failf "unexpected %a" Mio.pp_outcome o);
        Alcotest.(check string) "out" "A5050R" r.Mio.output;
        Alcotest.(check int) "released" 1 r.Mio.stats.Stats.brackets_released);
    tc "timeout fires on the machine clock and releases" (fun () ->
        let r =
          run
            "timeout 6 (bracket (putChar 'A' >>= \\u -> return 1) (\\r -> \
             putChar 'R') (\\r -> putList (replicate 30 'x'))) >>= \\mv -> \
             case mv of { Nothing -> putChar 'T' >>= \\u -> return 0 ; \
             Just v -> return v }"
        in
        check_done "timed out" (dint 0) r;
        Alcotest.(check int) "fired" 1 r.Mio.stats.Stats.timeouts_fired;
        Alcotest.(check bool) "released" true (String.contains r.Mio.output 'R'));
    tc "mask defers injected events on the machine" (fun () ->
        let r =
          run
            ~async:[ (0, E.Interrupt) ]
            "mask (getException 1 >>= \\a -> putChar 'M' >>= \\u -> return \
             0) >>= \\w -> getException 2 >>= \\b -> case b of { Bad e -> \
             putChar '!' >>= \\u -> return 1 ; OK x -> putChar '.' >>= \\u \
             -> return 2 }"
        in
        check_done "deferred" (dint 1) r;
        Alcotest.(check string) "out" "M!" r.Mio.output;
        Alcotest.(check int) "delivered once" 1
          r.Mio.stats.Stats.async_delivered;
        Alcotest.(check bool)
          "masked sections counted" true
          (r.Mio.stats.Stats.masked_sections > 0));
    tc "retryWithBackoff succeeds once the input changes" (fun () ->
        let r =
          run ~input:"xxy"
            "retryWithBackoff 3 2 (getChar >>= \\c -> case c of { 'x' -> \
             seq (1/0) (return 0) ; z -> return 99 })"
        in
        check_done "third attempt" (dint 99) r;
        Alcotest.(check int) "three reads" 3 r.Mio.reads);
    tc "heap limit surfaces as catchable HeapOverflow; supervisor recovers"
      (fun () ->
        let r =
          Mio.run
            ~config:{ Machine.default_config with heap_limit = Some 2_500 }
            (parse
               "getException (seq (sum (enumFromTo 1 5000)) 1) >>= \\v -> \
                case v of { OK x -> putChar 'O' >>= \\u -> return 0 ; Bad \
                e -> case e of { HeapOverflow -> putChar 'H' >>= \\u -> \
                getException (seq (sum (enumFromTo 1 10)) 2) >>= \\w -> \
                (case w of { OK y -> putChar 'K' ; Bad e2 -> putChar 'Z' \
                }) >>= \\u2 -> return 1 ; z -> putChar 'Y' >>= \\u -> \
                return 0 } }")
        in
        check_done "recovered" (dint 1) r;
        Alcotest.(check string) "caught then retried smaller" "HK" r.Mio.output;
        Alcotest.(check bool)
          "overflow counted" true
          (r.Mio.stats.Stats.heap_overflows > 0));
    tc "stack limit surfaces as catchable StackOverflow" (fun () ->
        let r =
          Mio.run
            ~config:{ Machine.default_config with stack_limit = Some 100 }
            (parse
               "getException (foldr (\\a b -> a + b) 0 (enumFromTo 1 \
                2000)) >>= \\v -> case v of { Bad e -> case e of { \
                StackOverflow -> putChar 'S' >>= \\u -> return 1 ; z -> \
                return 0 } ; OK x -> return 2 }")
        in
        check_done "caught" (dint 1) r;
        Alcotest.(check string) "marker" "S" r.Mio.output;
        Alcotest.(check bool)
          "overflow counted" true
          (r.Mio.stats.Stats.stack_overflows > 0));
  ]
