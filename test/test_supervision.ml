open Imprecise
open Helpers
module E = Exn

(* The open exception vocabulary and its robustness runtime: user-declared
   exception constructors, SomeException, typed handlers ([catches]/[try]),
   [evaluate]'s precise forcing point, and the OTP-style supervision tree
   with one_for_one / one_for_all / rest_for_one restart strategies,
   max-restart-intensity windows and exponential backoff. Every scenario
   runs on both concurrent layers; the pure vocabulary is checked across
   the denotational semantics and all three machine backends. *)

let prog src = Imprecise.parse_program src

let conc_done msg expected (r : Conc.result) =
  match r.Conc.outcome with
  | Conc.Done d -> Alcotest.check deep msg expected d
  | o -> Alcotest.failf "%s: unexpected %a" msg Conc.pp_outcome o

let mach_done msg expected (r : Machine_conc.result) =
  match r.Machine_conc.outcome with
  | Machine_conc.Done d -> Alcotest.check deep msg expected d
  | o -> Alcotest.failf "%s: unexpected %a" msg Machine_conc.pp_outcome o

(* Run a whole program on both concurrent layers and require the same
   deep result from each. *)
let both_conc msg expected src =
  let e = prog src in
  conc_done (msg ^ " (semantic)") expected (Conc.run e);
  mach_done (msg ^ " (machine)") expected
    (Machine_conc.run ~check_invariants:true e)

(* Run a program on the sequential IO layers (semantic LTS + slot
   machine driver) and require the same deep result. *)
let both_io msg expected src =
  let e = prog src in
  (match (Io.run e).Io.outcome with
  | Io.Done d -> Alcotest.check deep (msg ^ " (iosem)") expected d
  | o -> Alcotest.failf "%s: unexpected %a" msg Io.pp_outcome o);
  match (Machine_io.run e).Machine_io.outcome with
  | Machine_io.Done d -> Alcotest.check deep (msg ^ " (machine_io)") expected d
  | o -> Alcotest.failf "%s: unexpected %a" msg Machine_io.pp_outcome o

let suite =
  [
    (* ------------------------------------------------------------ *)
    (* Open vocabulary: declarations, payloads, the lattice.         *)
    tc "declared exceptions are ordinary exception-set members" (fun () ->
        let e = prog "exception TBoom of Int;\nmain = raise (TBoom 3);" in
        Alcotest.check deep "denot"
          (Value.DBad
             (Exn_set.singleton
                (E.User_exception ("TBoom", Some (E.P_int 3)))))
          (Denot.run_deep e);
        (* All three machine backends agree on the member. *)
        let slot, _ = Machine.run_deep e in
        Alcotest.check deep "slot"
          (Value.DBad
             (Exn_set.singleton
                (E.User_exception ("TBoom", Some (E.P_int 3)))))
          slot;
        let r, _ = Machine_ref.run_deep e in
        Alcotest.check deep "stg_ref"
          (Value.DBad
             (Exn_set.singleton
                (E.User_exception ("TBoom", Some (E.P_int 3)))))
          r;
        let bm = Bytecode.create (Bytecode.compile_expr e) in
        Alcotest.check deep "bytecode"
          (Value.DBad
             (Exn_set.singleton
                (E.User_exception ("TBoom", Some (E.P_int 3)))))
          (Bytecode.deep bm (Bytecode.entry bm)));
    tc "user exceptions join the set lattice like builtins" (fun () ->
        let e =
          prog
            "exception TLeft of String;\n\
             exception TRight;\n\
             main = raise (TLeft \"a\") + raise TRight;"
        in
        Alcotest.check deep "union"
          (Value.DBad
             (Exn_set.of_list
                [
                  E.User_exception ("TLeft", Some (E.P_string "a"));
                  E.User_exception ("TRight", None);
                ]))
          (Denot.run_deep e));
    tc "payload kind clashes are rejected at declaration" (fun () ->
        match prog "exception TBoom of String;\nmain = return 0;" with
        | exception Imprecise.Parse_error _ -> ()
        | _ -> Alcotest.fail "redeclaring TBoom at String must fail");
    tc "a payload of the wrong kind is a runtime type error" (fun () ->
        let e =
          prog "exception TKindI of Int;\nmain = raise (TKindI \"s\");"
        in
        Alcotest.check deep "kind mismatch"
          (Value.DBad
             (Exn_set.singleton
                (E.Type_error "TKindI is not an exception constructor")))
          (Denot.run_deep e));
    (* ------------------------------------------------------------ *)
    (* evaluate: the precise forcing point.                          *)
    tc "evaluate forces at perform time, catchably" (fun () ->
        both_io "caught" (dint 99)
          "main = catchIO (evaluate (1 / 0)) (\\e -> return 99);";
        both_io "ok path" (dint 5) "main = evaluate (2 + 3);");
    tc "evaluate is distinct from seq-then-return as a value" (fun () ->
        (* As pure values: [evaluate (raise X)] is a WHNF constructor,
           [seq (raise X) (return ...)] is Bad. The law table claims
           Invalid in all three designs; this is the witness. *)
        both_io "constructor survives seq" (dint 1)
          "main = seq (evaluate (1 / 0)) (return 1);";
        (* Performed, the two agree: the exception surfaces either way. *)
        both_io "performed agree (evaluate)" (dint 7)
          "main = catchIO (evaluate (1 / 0) >>= \\x -> return x)\n\
          \               (\\e -> return 7);";
        both_io "performed agree (seq)" (dint 7)
          "main = catchIO (seq (1 / 0) (return (1 / 0)) >>= \\x -> return x)\n\
          \               (\\e -> return 7);");
    tc "throwIO raises precisely" (fun () ->
        both_io "throwIO" (dint 11)
          "exception TThrow of Int;\n\
           main = catchIO (throwIO (TThrow 4) >>= \\u -> return 0)\n\
          \                (\\e -> case e of { TThrow n -> return (n + 7);\n\
          \                                    z -> return 0 });");
    (* ------------------------------------------------------------ *)
    (* Typed handlers: catches / try / SomeException.                *)
    tc "catches dispatches to the first matching handler" (fun () ->
        both_io "second handler" (dint 21)
          "exception THa of Int;\n\
           main = catches (throwIO (THa 7))\n\
          \  [ handler matchUserError (\\s -> return 0),\n\
          \    handler (\\e -> case e of { THa n -> Just n; z -> Nothing })\n\
          \            (\\n -> return (n * 3)) ];");
    tc "catches falls through to rethrow when nothing matches" (fun () ->
        both_io "outer catch sees it" (dint 5)
          "exception THb;\n\
           main = catchIO\n\
          \  (catches (throwIO THb) [ handler matchArith (\\e -> return 0) ])\n\
          \  (\\e -> case e of { THb -> return 5; z -> return 0 });");
    tc "matchAny and SomeException round-trip" (fun () ->
        both_io "matchAny" (dtrue)
          "main = catches (throwIO Overflow)\n\
          \  [ handler matchAny (\\e ->\n\
          \      case fromException (toException e) of {\n\
          \        Just e2 -> return (eqExn e e2);\n\
          \        Nothing -> return False }) ];");
    tc "try returns Right on success, Left on failure" (fun () ->
        both_io "try" (Value.DCon ("Pair", [ dint 1; dint 2 ]))
          "exception THc of Int;\n\
           main = try (return 1) >>= \\a ->\n\
          \       try (throwIO (THc 2)) >>= \\b ->\n\
          \       case a of { Right x -> case b of {\n\
          \         Left e -> case e of { THc n -> return (x, n);\n\
          \                               z -> return (0, 0) };\n\
          \         Right y -> return (0, 0) };\n\
          \         Left e2 -> return (0, 0) };");
    tc "typed handlers behave identically on the concurrent layers"
      (fun () ->
        both_conc "conc catches" (dint 21)
          "exception THd of Int;\n\
           main = catches (throwIO (THd 7))\n\
          \  [ handler (\\e -> case e of { THd n -> Just n; z -> Nothing })\n\
          \            (\\n -> return (n * 3)) ];");
    (* ------------------------------------------------------------ *)
    (* Supervision trees.                                            *)
    tc "one_for_one restarts only the failing child" (fun () ->
        (* The child fails twice, then succeeds; the supervisor restarts
           it each time. The counter records three runs. *)
        both_conc "restart count" (dint 3)
          "exception TFlaky of Int;\n\
           main =\n\
          \  newEmptyMVar >>= \\c -> putMVar c 0 >>= \\u ->\n\
          \  supervisorTree OneForOne 5 100\n\
          \    [ takeMVar c >>= \\n -> putMVar c (n + 1) >>= \\u2 ->\n\
          \      if n < 2 then throwIO (TFlaky n) else return n ]\n\
          \  >>= \\u3 -> takeMVar c;");
    tc "one_for_all restarts the whole group" (fun () ->
        (* Child 0 fails on its first run only; child 1 merely counts its
           spawns. After the group restart both have run twice. *)
        both_conc "sibling respawned" (dtrue)
          "exception TOnce;\n\
           main =\n\
          \  newEmptyMVar >>= \\flag -> putMVar flag 0 >>= \\u0 ->\n\
          \  newEmptyMVar >>= \\runs -> putMVar runs 0 >>= \\u1 ->\n\
          \  supervisorTree OneForAll 3 100\n\
          \    [ takeMVar flag >>= \\f -> putMVar flag 1 >>= \\u2 ->\n\
          \      if f == 0 then throwIO TOnce else return 0,\n\
          \      takeMVar runs >>= \\n -> putMVar runs (n + 1) ]\n\
          \  >>= \\u3 -> takeMVar runs >>= \\n -> return (n >= 2);");
    tc "rest_for_one restarts the failing child and its successors"
      (fun () ->
        (* Three children: 0 counts, 1 fails once, 2 counts. Only the
           children at and after the failure restart, so 0 runs once
           while 2 runs at least twice. Child 2 busyworks first so its
           first generation is still live when 1 fails. *)
        both_conc "prefix kept, suffix respawned" (dtrue)
          "exception TRest;\n\
           main =\n\
          \  newEmptyMVar >>= \\c0 -> putMVar c0 0 >>= \\u0 ->\n\
          \  newEmptyMVar >>= \\flag -> putMVar flag 0 >>= \\u1 ->\n\
          \  newEmptyMVar >>= \\c2 -> putMVar c2 0 >>= \\u2 ->\n\
          \  supervisorTree RestForOne 3 100\n\
          \    [ takeMVar c0 >>= \\n -> putMVar c0 (n + 1),\n\
          \      takeMVar flag >>= \\f -> putMVar flag 1 >>= \\u3 ->\n\
          \      if f == 0 then throwIO TRest else return 0,\n\
          \      seq (sum (enumFromTo 1 40))\n\
          \          (takeMVar c2 >>= \\n -> putMVar c2 (n + 1)) ]\n\
          \  >>= \\u4 ->\n\
          \  takeMVar c0 >>= \\a -> takeMVar c2 >>= \\b ->\n\
          \  return (if a == 1 then b >= 2 else False);");
    tc "restart intensity exhaustion sheds load with SupervisorLimit"
      (fun () ->
        (* A child that always fails: maxR restarts inside the window,
           then the supervisor gives up, kills the others and raises
           SupervisorLimit with the window census. *)
        both_conc "limit census" (dint 3)
          "exception TStorm;\n\
           main = catchIO\n\
          \  (supervisorTree OneForOne 3 10 [ throwIO TStorm ])\n\
          \  (\\e -> case matchSupervisorLimit e of {\n\
          \           Just n -> return n; Nothing -> return (0 - 1) });");
    tc "SupervisorLimit is typed and catchable by a handler" (fun () ->
        both_conc "catches SupervisorLimit" (dint 1)
          "exception TStorm2;\n\
           main = catches\n\
          \  (supervisorTree OneForOne 1 10 [ throwIO TStorm2 ])\n\
          \  [ handler matchSupervisorLimit (\\n -> return n) ];");
    tc "exponential backoff retries inside the child first" (fun () ->
        (* retries=2 means each generation attempts the action three
           times (backoff 1, 2 steps) before reporting failure; with
           maxR=1 the second generation exhausts the window. Six
           attempts total. *)
        both_conc "attempt census" (dint 6)
          "exception TBack;\n\
           main =\n\
          \  newEmptyMVar >>= \\c -> putMVar c 0 >>= \\u ->\n\
          \  catchIO\n\
          \    (supervisorTreeB OneForOne 1 100 2 1\n\
          \       [ takeMVar c >>= \\n -> putMVar c (n + 1) >>= \\u2 ->\n\
          \         throwIO TBack ])\n\
          \    (\\e -> return 0)\n\
          \  >>= \\u3 -> takeMVar c;");
    tc "a supervised tree of healthy children just completes" (fun () ->
        both_conc "all healthy" (dint 6)
          "main =\n\
          \  newEmptyMVar >>= \\acc -> putMVar acc 0 >>= \\u ->\n\
          \  supervisorTree OneForOne 1 10\n\
          \    [ takeMVar acc >>= \\n -> putMVar acc (n + 1),\n\
          \      takeMVar acc >>= \\n -> putMVar acc (n + 2),\n\
          \      takeMVar acc >>= \\n -> putMVar acc (n + 3) ]\n\
          \  >>= \\u2 -> takeMVar acc;");
  ]
